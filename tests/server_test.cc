// Serving-layer tests: the transport-free QueryService path (parse ->
// canonicalize -> cache -> admit -> execute), the LRU/admission pieces
// in isolation, and the real TCP server + client over an ephemeral
// port, including the drain sequence and deadline cancellation.

#include "server/service.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/admission.h"
#include "server/client.h"
#include "server/http.h"
#include "server/json.h"
#include "server/result_cache.h"
#include "server/server.h"

namespace cfq::server {
namespace {

// --- JSON codec ------------------------------------------------------

TEST(JsonTest, RoundTripsValues) {
  const std::string text =
      R"({"a":[1,2.5,-3],"b":{"nested":true},"c":null,"d":"x\ny"})";
  auto value = JsonValue::Parse(text);
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(value->Write(), text);
}

TEST(JsonTest, ParsesEscapesAndSurrogatePairs) {
  auto value = JsonValue::Parse(R"({"s":"aé😀\t"})");
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(value->GetString("s", ""), "a\xC3\xA9\xF0\x9F\x98\x80\t");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("nulll").ok());
}

TEST(JsonTest, TypedAccessorsFallBack) {
  auto value = JsonValue::Parse(R"({"n":7,"s":"x","b":true})");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->GetInt("n", 0), 7);
  EXPECT_EQ(value->GetInt("missing", -1), -1);
  EXPECT_EQ(value->GetString("n", "fallback"), "fallback");  // Wrong type.
  EXPECT_TRUE(value->GetBool("b", false));
}

// --- ResultCache -----------------------------------------------------

std::shared_ptr<const CachedAnswer> Answer(const std::string& tag) {
  auto answer = std::make_shared<CachedAnswer>();
  answer->canonical_query = tag;
  return answer;
}

TEST(ResultCacheTest, LruEvictionOrder) {
  ResultCache cache(2);
  cache.Put("a", Answer("a"));
  cache.Put("b", Answer("b"));
  ASSERT_NE(cache.Get("a"), nullptr);  // "a" is now most recent.
  cache.Put("c", Answer("c"));         // Evicts "b".
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCacheTest, CountsHitsAndMissesIntoRegistry) {
  obs::MetricsRegistry metrics;
  ResultCache cache(4, &metrics);
  EXPECT_EQ(cache.Get("missing"), nullptr);
  cache.Put("k", Answer("k"));
  EXPECT_NE(cache.Get("k"), nullptr);
  EXPECT_EQ(metrics.counter("server.cache.hits"), 1u);
  EXPECT_EQ(metrics.counter("server.cache.misses"), 1u);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.Put("k", Answer("k"));
  EXPECT_EQ(cache.Get("k"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

// --- AdmissionController ---------------------------------------------

TEST(AdmissionTest, RejectsWhenQueueFull) {
  AdmissionController admission(/*max_concurrent=*/1, /*max_queued=*/0);
  auto first = admission.Admit(nullptr);
  ASSERT_TRUE(first.ok());
  auto second = admission.Admit(nullptr);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(admission.rejected_total(), 1u);
  first->Release();
  EXPECT_TRUE(admission.Admit(nullptr).ok());
}

TEST(AdmissionTest, WaiterTimesOutOnDeadline) {
  AdmissionController admission(1, 4);
  auto held = admission.Admit(nullptr);
  ASSERT_TRUE(held.ok());
  CancelToken cancel;
  cancel.SetDeadline(std::chrono::milliseconds(50));
  auto waited = admission.Admit(&cancel);
  EXPECT_FALSE(waited.ok());
  EXPECT_EQ(waited.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(AdmissionTest, ShutdownReleasesWaiters) {
  AdmissionController admission(1, 4);
  auto held = admission.Admit(nullptr);
  ASSERT_TRUE(held.ok());
  std::thread closer([&admission] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    admission.Shutdown();
  });
  auto waited = admission.Admit(nullptr);
  closer.join();
  EXPECT_FALSE(waited.ok());
  EXPECT_EQ(admission.queued(), 0u);
}

// --- QueryService (transport-free) -----------------------------------

constexpr char kQuery[] =
    "freq(S, 30) & freq(T, 30) & max(S.Price) <= min(T.Price)";

JsonValue GenRequest(const std::string& name) {
  JsonValue::Object request;
  request["cmd"] = "gen";
  request["dataset"] = name;
  request["num_transactions"] = static_cast<int64_t>(400);
  request["num_items"] = static_cast<int64_t>(40);
  request["num_patterns"] = static_cast<int64_t>(20);
  return request;
}

JsonValue QueryRequest(const std::string& name, const std::string& query) {
  JsonValue::Object request;
  request["cmd"] = "query";
  request["dataset"] = name;
  request["query"] = query;
  request["max_rows"] = static_cast<int64_t>(50);
  return request;
}

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : service_(Options(), &metrics_) {}

  static ServiceOptions Options() {
    ServiceOptions options;
    options.cache_capacity = 8;
    options.max_concurrent = 2;
    options.max_queued = 2;
    return options;
  }

  obs::MetricsRegistry metrics_;
  QueryService service_;
};

TEST_F(ServiceTest, UnknownCommandAndDatasetErrors) {
  JsonValue::Object bogus;
  bogus["cmd"] = "frobnicate";
  EXPECT_EQ(service_.Handle(std::move(bogus)).GetString("status", ""),
            "BAD_REQUEST");
  EXPECT_EQ(
      service_.Handle(QueryRequest("nope", kQuery)).GetString("status", ""),
      "NOT_FOUND");
}

TEST_F(ServiceTest, ParseErrorsAreIsolated) {
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  EXPECT_EQ(
      service_.Handle(QueryRequest("d", "freq(S &")).GetString("status", ""),
      "PARSE_ERROR");
  // The connection-level state is fine: a good query still runs.
  EXPECT_EQ(
      service_.Handle(QueryRequest("d", kQuery)).GetString("status", ""),
      "OK");
}

TEST_F(ServiceTest, RepeatedQueryIsServedFromCacheWithIdenticalRows) {
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  JsonValue cold = service_.Handle(QueryRequest("d", kQuery));
  ASSERT_EQ(cold.GetString("status", ""), "OK");
  EXPECT_FALSE(cold.GetBool("cached", true));

  // Same query, different spelling: extra whitespace + reordered
  // commutative conjuncts.
  JsonValue hit = service_.Handle(QueryRequest(
      "d", "max(S.Price)<=min(T.Price)   & freq(T, 30) & freq(S, 30)"));
  ASSERT_EQ(hit.GetString("status", ""), "OK");
  EXPECT_TRUE(hit.GetBool("cached", false));
  EXPECT_EQ(hit.GetString("canonical_query", "h"),
            cold.GetString("canonical_query", "c"));
  ASSERT_NE(hit.Find("rows"), nullptr);
  EXPECT_EQ(hit.Find("rows")->Write(), cold.Find("rows")->Write());
  EXPECT_EQ(service_.cache().hits(), 1u);
}

TEST_F(ServiceTest, RebindingDatasetInvalidatesCache) {
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  ASSERT_EQ(
      service_.Handle(QueryRequest("d", kQuery)).GetString("status", ""),
      "OK");
  // Re-generate under the same name: new generation id, so the repeat
  // must MISS even though name and query text are unchanged.
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  JsonValue repeat = service_.Handle(QueryRequest("d", kQuery));
  ASSERT_EQ(repeat.GetString("status", ""), "OK");
  EXPECT_FALSE(repeat.GetBool("cached", true));
  EXPECT_EQ(repeat.GetInt("generation", -1), 2);
}

TEST_F(ServiceTest, StrategiesShareNoCacheEntriesButAgreeOnAnswers) {
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  JsonValue optimized = service_.Handle(QueryRequest("d", kQuery));
  JsonValue request = QueryRequest("d", kQuery);
  JsonValue::Object with_strategy = request.as_object();
  with_strategy["strategy"] = "apriori";
  JsonValue apriori = service_.Handle(std::move(with_strategy));
  ASSERT_EQ(apriori.GetString("status", ""), "OK");
  EXPECT_FALSE(apriori.GetBool("cached", true));  // Different cache key.
  EXPECT_EQ(apriori.GetInt("num_pairs", -1),
            optimized.GetInt("num_pairs", -2));
}

TEST_F(ServiceTest, DropThenQueryIsNotFound) {
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  JsonValue::Object drop;
  drop["cmd"] = "drop";
  drop["dataset"] = "d";
  EXPECT_EQ(service_.Handle(std::move(drop)).GetString("status", ""), "OK");
  EXPECT_EQ(
      service_.Handle(QueryRequest("d", kQuery)).GetString("status", ""),
      "NOT_FOUND");
}

TEST_F(ServiceTest, StatsExposesCacheCountersAndPrometheus) {
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  (void)service_.Handle(QueryRequest("d", kQuery));
  (void)service_.Handle(QueryRequest("d", kQuery));
  JsonValue::Object stats_request;
  stats_request["cmd"] = "stats";
  JsonValue stats = service_.Handle(std::move(stats_request));
  ASSERT_EQ(stats.GetString("status", ""), "OK");
  const JsonValue* cache = stats.Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->GetInt("hits", -1), 1);
  EXPECT_EQ(cache->GetInt("misses", -1), 1);
  const std::string prometheus = stats.GetString("prometheus", "");
  EXPECT_NE(prometheus.find("cfq_server_cache_hits 1"), std::string::npos)
      << prometheus;
}

JsonValue AppendRequest(const std::string& name) {
  // A handful of transactions over the GenRequest item universe.
  auto request = JsonValue::Parse(
      R"({"cmd":"append","dataset":")" + name +
      R"(","transactions":[[1,2,3],[4,5],[1,2,3,4],[7,8,9],[1,3,5]]})");
  EXPECT_TRUE(request.ok());
  return std::move(request).value();
}

TEST_F(ServiceTest, AppendBumpsGenerationAndMissesStaleCache) {
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  JsonValue cold = service_.Handle(QueryRequest("d", kQuery));
  ASSERT_EQ(cold.GetString("status", ""), "OK");
  EXPECT_EQ(cold.GetString("source", ""), "cold");

  JsonValue appended = service_.Handle(AppendRequest("d"));
  ASSERT_EQ(appended.GetString("status", ""), "OK");
  EXPECT_EQ(appended.GetInt("appended", -1), 5);
  EXPECT_GT(appended.GetInt("generation", -1), cold.GetInt("generation", 99));
  EXPECT_EQ(appended.GetInt("num_transactions", -1), 405);

  // The generation is part of the cache key: the same query text must
  // recompute against the grown data.
  JsonValue repeat = service_.Handle(QueryRequest("d", kQuery));
  ASSERT_EQ(repeat.GetString("status", ""), "OK");
  EXPECT_FALSE(repeat.GetBool("cached", true));
  EXPECT_EQ(metrics_.counter("server.datasets.appends"), 1u);
  EXPECT_EQ(metrics_.counter("server.datasets.appended_transactions"), 5u);
}

TEST_F(ServiceTest, AppendValidatesRequestShape) {
  JsonValue::Object no_txns;
  no_txns["cmd"] = "append";
  no_txns["dataset"] = "d";
  EXPECT_EQ(service_.Handle(std::move(no_txns)).GetString("status", ""),
            "BAD_REQUEST");
  EXPECT_EQ(service_.Handle(AppendRequest("ghost")).GetString("status", ""),
            "NOT_FOUND");
  auto bad_item = JsonValue::Parse(
      R"({"cmd":"append","dataset":"d","transactions":[[1,-2]]})");
  ASSERT_TRUE(bad_item.ok());
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  EXPECT_EQ(service_.Handle(std::move(bad_item).value())
                .GetString("status", ""),
            "BAD_REQUEST");
}

// The serving loop the incremental subsystem exists for: cold mine
// once, serve repeats from the result cache, and after an append ride
// the maintained state instead of re-mining — with the three source
// labels distinguishing the paths and the answers staying identical to
// a from-scratch strategy at every generation.
TEST_F(ServiceTest, IncrementalStrategyRefreshesAcrossAppends) {
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  JsonValue request = QueryRequest("d", kQuery);
  JsonValue::Object incremental = request.as_object();
  incremental["strategy"] = "incremental";

  JsonValue cold = service_.Handle(JsonValue(incremental));
  ASSERT_EQ(cold.GetString("status", ""), "OK");
  EXPECT_EQ(cold.GetString("source", ""), "cold");
  EXPECT_EQ(service_.state_cache().size(), 1u);

  JsonValue hit = service_.Handle(JsonValue(incremental));
  ASSERT_EQ(hit.GetString("status", ""), "OK");
  EXPECT_EQ(hit.GetString("source", ""), "hit");
  EXPECT_TRUE(hit.GetBool("cached", false));

  for (int round = 0; round < 3; ++round) {
    ASSERT_EQ(service_.Handle(AppendRequest("d")).GetString("status", ""),
              "OK");
    JsonValue refreshed = service_.Handle(JsonValue(incremental));
    ASSERT_EQ(refreshed.GetString("status", ""), "OK");
    EXPECT_FALSE(refreshed.GetBool("cached", true));
    EXPECT_EQ(refreshed.GetString("source", ""), "incremental-refresh")
        << "round " << round;

    // Byte-identical to mining the grown database from scratch.
    JsonValue::Object apriori = request.as_object();
    apriori["strategy"] = "apriori";
    JsonValue scratch = service_.Handle(std::move(apriori));
    ASSERT_EQ(scratch.GetString("status", ""), "OK");
    EXPECT_EQ(refreshed.Find("rows")->Write(), scratch.Find("rows")->Write());
    EXPECT_EQ(refreshed.GetInt("num_pairs", -1),
              scratch.GetInt("num_pairs", -2));
    EXPECT_EQ(refreshed.GetInt("s_sets", -1), scratch.GetInt("s_sets", -2));
    EXPECT_EQ(refreshed.GetInt("t_sets", -1), scratch.GetInt("t_sets", -2));
  }
  EXPECT_GE(metrics_.counter("server.reuse.incremental_refresh"), 3u);
  EXPECT_GE(metrics_.counter("server.reuse.cold"), 1u);
  EXPECT_GE(metrics_.counter("server.reuse.hit"), 1u);
  EXPECT_GE(metrics_.counter("incr.refreshes"), 3u);
}

TEST_F(ServiceTest, DropPurgesAnswersAndStates) {
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  JsonValue request = QueryRequest("d", kQuery);
  JsonValue::Object incremental = request.as_object();
  incremental["strategy"] = "incremental";
  ASSERT_EQ(service_.Handle(JsonValue(incremental)).GetString("status", ""),
            "OK");
  ASSERT_EQ(
      service_.Handle(QueryRequest("d", kQuery)).GetString("status", ""),
      "OK");
  ASSERT_GE(service_.cache().size(), 2u);
  ASSERT_EQ(service_.state_cache().size(), 1u);

  JsonValue::Object drop;
  drop["cmd"] = "drop";
  drop["dataset"] = "d";
  JsonValue dropped = service_.Handle(std::move(drop));
  ASSERT_EQ(dropped.GetString("status", ""), "OK");
  EXPECT_EQ(dropped.GetInt("purged_answers", -1), 2);
  EXPECT_EQ(dropped.GetInt("purged_states", -1), 1);
  EXPECT_EQ(service_.cache().size(), 0u);
  EXPECT_EQ(service_.state_cache().size(), 0u);
  EXPECT_EQ(metrics_.counter("server.cache.evict.dropped"), 2u);
  EXPECT_EQ(metrics_.counter("incr.state_cache.purged"), 1u);
}

// The ISSUE's cancellation case: a tiny deadline on a large synthetic
// dataset must produce a clean TIMEOUT response, leak nothing, and
// leave the service fully usable — the next (smaller) query runs
// normally and its metrics/tracer identities are intact.
TEST_F(ServiceTest, TimedOutQueryLeavesServiceHealthy) {
  JsonValue::Object gen = GenRequest("big").as_object();
  gen["num_transactions"] = static_cast<int64_t>(4000);
  gen["num_items"] = static_cast<int64_t>(120);
  gen["num_patterns"] = static_cast<int64_t>(60);
  ASSERT_EQ(service_.Handle(std::move(gen)).GetString("status", ""), "OK");

  JsonValue request = QueryRequest(
      "big", "freq(S, 2) & freq(T, 2) & sum(S.Price) <= sum(T.Price)");
  JsonValue::Object timed = request.as_object();
  timed["deadline_ms"] = static_cast<int64_t>(1);
  JsonValue timeout = service_.Handle(std::move(timed));
  EXPECT_EQ(timeout.GetString("status", ""), "TIMEOUT");
  EXPECT_NE(timeout.GetString("error", "").find("DEADLINE_EXCEEDED"),
            std::string::npos);

  // No permit leaked: both slots are free again, so two concurrent
  // admissions succeed immediately.
  EXPECT_EQ(service_.admission().active(), 0u);
  EXPECT_EQ(service_.admission().queued(), 0u);

  // Nothing was cached for the aborted query.
  EXPECT_EQ(service_.cache().size(), 0u);

  // The next query (tighter support: small lattice) runs to completion
  // on the same dataset, and its stats merge under the same metric
  // names the timed-out attempt would have used.
  JsonValue ok = service_.Handle(
      QueryRequest("big", "freq(S, 300) & freq(T, 300) & "
                          "max(S.Price) <= min(T.Price)"));
  ASSERT_EQ(ok.GetString("status", ""), "OK");
  EXPECT_EQ(metrics_.counter("server.query.timeouts"), 1u);
  EXPECT_EQ(metrics_.counter("server.queries_total"), 1u);
  EXPECT_GT(metrics_.counter("s.sets_counted"), 0u);
}

// --- Query tracing + flight recorder ---------------------------------

TEST_F(ServiceTest, EveryQueryResponseCarriesTraceIdAndPhases) {
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  JsonValue ok = service_.Handle(QueryRequest("d", kQuery));
  ASSERT_EQ(ok.GetString("status", ""), "OK");
  const JsonValue* trace = ok.Find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_GT(trace->GetInt("id", 0), 0);
  const JsonValue* phases = trace->Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_TRUE(phases->is_object());
  // The cold path ran the full pipeline: every top-level phase named.
  for (const char* phase :
       {"catalog", "parse", "cache", "admission", "plan", "execute",
        "render"}) {
    EXPECT_NE(phases->Find(phase), nullptr) << phase;
  }

  // Error responses are traced too, with distinct monotone ids.
  JsonValue missing = service_.Handle(QueryRequest("ghost", kQuery));
  ASSERT_EQ(missing.GetString("status", ""), "NOT_FOUND");
  const JsonValue* error_trace = missing.Find("trace");
  ASSERT_NE(error_trace, nullptr);
  EXPECT_GT(error_trace->GetInt("id", 0), trace->GetInt("id", 0));
  // And error traces are retained by the recorder alongside successes.
  EXPECT_EQ(service_.flight_recorder().Summary().recorded_total, 2u);
}

TEST_F(ServiceTest, ClientTraceIdIsEchoed) {
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  JsonValue::Object request = QueryRequest("d", kQuery).as_object();
  request["trace_id"] = "req-abc-123";
  JsonValue response = service_.Handle(std::move(request));
  ASSERT_EQ(response.GetString("status", ""), "OK");
  const JsonValue* trace = response.Find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->GetString("client_trace_id", ""), "req-abc-123");
  const auto traces = service_.flight_recorder().Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].client_trace_id, "req-abc-123");
}

// The acceptance bar for phase attribution: on a refresh-path query the
// named top-level phases account for >= 95% of the reported wall time.
TEST_F(ServiceTest, PhasesAttributeRefreshWallTime) {
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  JsonValue::Object incremental = QueryRequest("d", kQuery).as_object();
  incremental["strategy"] = "incremental";
  ASSERT_EQ(service_.Handle(JsonValue(incremental)).GetString("status", ""),
            "OK");
  ASSERT_EQ(service_.Handle(AppendRequest("d")).GetString("status", ""),
            "OK");
  JsonValue refreshed = service_.Handle(JsonValue(incremental));
  ASSERT_EQ(refreshed.GetString("status", ""), "OK");
  ASSERT_EQ(refreshed.GetString("source", ""), "incremental-refresh");

  const JsonValue* phases = refreshed.Find("trace")->Find("phases");
  ASSERT_NE(phases, nullptr);
  double attributed = 0;
  bool saw_refresh_detail = false;
  for (const auto& [name, seconds] : phases->as_object()) {
    ASSERT_TRUE(seconds.is_number()) << name;
    if (name.find('.') == std::string::npos) {
      attributed += seconds.as_number();
    }
    if (name.rfind("execute.refresh", 0) == 0) saw_refresh_detail = true;
  }
  const double elapsed = refreshed.GetNumber("elapsed_seconds", 0.0);
  ASSERT_GT(elapsed, 0.0);
  EXPECT_GE(attributed, 0.95 * elapsed)
      << "attributed " << attributed << "s of " << elapsed << "s";
  EXPECT_TRUE(saw_refresh_detail)
      << "refresh sub-phases missing from " << phases->Write();
}

TEST_F(ServiceTest, DumpTraceCommandYieldsParseableChromeTrace) {
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  ASSERT_EQ(
      service_.Handle(QueryRequest("d", kQuery)).GetString("status", ""),
      "OK");
  JsonValue::Object dump;
  dump["cmd"] = "dumptrace";
  JsonValue response = service_.Handle(std::move(dump));
  ASSERT_EQ(response.GetString("status", ""), "OK");
  EXPECT_EQ(response.GetInt("traces", -1), 1);
  auto doc = JsonValue::Parse(response.GetString("chrome_trace", ""));
  ASSERT_TRUE(doc.ok()) << doc.status();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->as_array().empty());
}

TEST(ServiceSlowQueryTest, BelowThresholdQueriesArePinnedAsSlow) {
  ServiceOptions options;
  options.slow_query_threshold_seconds = 0.0;  // Everything is "slow".
  obs::MetricsRegistry metrics;
  QueryService service(options, &metrics);
  ASSERT_EQ(service.Handle(GenRequest("d")).GetString("status", ""), "OK");
  JsonValue response = service.Handle(QueryRequest("d", kQuery));
  ASSERT_EQ(response.GetString("status", ""), "OK");
  EXPECT_TRUE(response.Find("trace")->GetBool("slow", false));
  const auto summary = service.flight_recorder().Summary();
  EXPECT_EQ(summary.slow_total, 1u);
  EXPECT_EQ(summary.slow_size, 1u);
}

TEST_F(ServiceTest, AdmissionObservesQueueWaitPerAdmittedQuery) {
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  ASSERT_EQ(
      service_.Handle(QueryRequest("d", kQuery)).GetString("status", ""),
      "OK");
  // One observation per admitted query — the free-slot fast path
  // observes 0s so the histogram count equals the admission count.
  EXPECT_EQ(
      metrics_.histogram("server.admission.queue_wait_seconds").count(), 1u);
}

// --- HTTP telemetry endpoint -----------------------------------------

// Minimal raw-socket GET against the telemetry listener; returns the
// full response (status line + headers + body).
std::string HttpGet(uint16_t port, const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  const std::string request = request_line + "\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class HttpTelemetryTest : public ::testing::Test {
 protected:
  HttpTelemetryTest() : service_(ServiceOptions{}, &metrics_) {}

  void SetUp() override {
    server_ = std::make_unique<HttpServer>(
        HttpOptions{},  // port 0 = ephemeral.
        [this](const std::string& path) { return service_.HandleHttp(path); });
    ASSERT_TRUE(server_->Start().ok());
  }

  obs::MetricsRegistry metrics_;
  QueryService service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpTelemetryTest, HealthzFlipsTo503OnDrain) {
  const std::string healthy = HttpGet(server_->port(), "GET /healthz HTTP/1.0");
  EXPECT_NE(healthy.find("200 OK"), std::string::npos) << healthy;
  EXPECT_NE(healthy.find("ok"), std::string::npos);
  service_.BeginDrain();
  const std::string draining =
      HttpGet(server_->port(), "GET /healthz HTTP/1.0");
  EXPECT_NE(draining.find("503"), std::string::npos) << draining;
  EXPECT_NE(draining.find("draining"), std::string::npos);
}

TEST_F(HttpTelemetryTest, MetricsServesLivePrometheusText) {
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  ASSERT_EQ(
      service_.Handle(QueryRequest("d", kQuery)).GetString("status", ""),
      "OK");
  ASSERT_EQ(
      service_.Handle(QueryRequest("d", kQuery)).GetString("status", ""),
      "OK");
  const std::string response =
      HttpGet(server_->port(), "GET /metrics HTTP/1.0");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  // Live counters from the same registry --metrics-out flushes.
  EXPECT_NE(response.find("cfq_server_cache_hits 1"), std::string::npos)
      << response;
  EXPECT_NE(response.find("cfq_server_queries_total 2"), std::string::npos);
  EXPECT_NE(response.find("# TYPE cfq_server_query_seconds_cold histogram"),
            std::string::npos);
}

TEST_F(HttpTelemetryTest, StatsServesJsonSummaries) {
  const std::string response =
      HttpGet(server_->port(), "GET /stats?pretty=1 HTTP/1.0");
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  auto stats = JsonValue::Parse(response.substr(body_at + 4));
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->GetString("status", ""), "OK");
  for (const char* section :
       {"cache", "admission", "state_cache", "flight_recorder"}) {
    EXPECT_NE(stats->Find(section), nullptr) << section;
  }
}

TEST_F(HttpTelemetryTest, TraceServesChromeDumpAndBadPathsGetErrors) {
  ASSERT_EQ(service_.Handle(GenRequest("d")).GetString("status", ""), "OK");
  ASSERT_EQ(
      service_.Handle(QueryRequest("d", kQuery)).GetString("status", ""),
      "OK");
  const std::string trace = HttpGet(server_->port(), "GET /trace HTTP/1.0");
  const size_t body_at = trace.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  auto doc = JsonValue::Parse(trace.substr(body_at + 4));
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_FALSE(doc->Find("traceEvents")->as_array().empty());

  EXPECT_NE(HttpGet(server_->port(), "GET /nope HTTP/1.0").find("404"),
            std::string::npos);
  EXPECT_NE(HttpGet(server_->port(), "POST /metrics HTTP/1.0").find("405"),
            std::string::npos);
  EXPECT_NE(HttpGet(server_->port(), "garbage").find("400"),
            std::string::npos);
}

// --- TCP server + client ---------------------------------------------

class TcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServiceOptions service_options;
    service_options.cache_capacity = 8;
    service_ = std::make_unique<QueryService>(service_options, &metrics_);
    ServerOptions server_options;  // port 0 = ephemeral.
    server_ = std::make_unique<Server>(server_options, service_.get());
    ASSERT_TRUE(server_->Start().ok());
  }

  Client MustConnect() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }

  obs::MetricsRegistry metrics_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(TcpTest, PingAndQueryOverTheWire) {
  Client client = MustConnect();
  JsonValue::Object ping;
  ping["cmd"] = "ping";
  auto pong = client.Call(std::move(ping));
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_EQ(pong->GetString("status", ""), "OK");

  ASSERT_TRUE(client.Call(GenRequest("d")).ok());
  auto cold = client.Call(QueryRequest("d", kQuery));
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->GetString("status", ""), "OK");
  auto hit = client.Call(QueryRequest("d", kQuery));
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->GetBool("cached", false));
  EXPECT_EQ(hit->Find("rows")->Write(), cold->Find("rows")->Write());
}

TEST_F(TcpTest, MalformedLineGetsBadRequestAndConnectionSurvives) {
  Client client = MustConnect();
  auto garbage = client.CallRaw("this is not json");
  ASSERT_TRUE(garbage.ok()) << garbage.status();
  EXPECT_NE(garbage->find("BAD_REQUEST"), std::string::npos);
  JsonValue::Object ping;
  ping["cmd"] = "ping";
  auto pong = client.Call(std::move(ping));
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->GetString("status", ""), "OK");
}

TEST_F(TcpTest, ConnectionFaultsAreCounted) {
  Client client = MustConnect();
  ASSERT_TRUE(client.CallRaw("definitely not json").ok());
  EXPECT_GE(metrics_.counter("server.conn.errors"), 1u);
}

TEST_F(TcpTest, ErrorsAreIsolatedPerConnection) {
  Client bad = MustConnect();
  Client good = MustConnect();
  ASSERT_TRUE(bad.CallRaw("{{{{").ok());
  bad.Close();  // Abrupt disconnect.
  JsonValue::Object ping;
  ping["cmd"] = "ping";
  auto pong = good.Call(std::move(ping));
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_EQ(pong->GetString("status", ""), "OK");
}

TEST_F(TcpTest, ShutdownCommandDrains) {
  Client client = MustConnect();
  JsonValue::Object shutdown;
  shutdown["cmd"] = "shutdown";
  auto response = client.Call(std::move(shutdown));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->GetString("status", ""), "OK");
  server_->Wait();  // Returns once every connection thread joined.
  // New connections are refused (or reset) after the drain.
  auto late = Client::Connect("127.0.0.1", server_->port());
  if (late.ok()) {
    JsonValue::Object ping;
    ping["cmd"] = "ping";
    EXPECT_FALSE(late->Call(std::move(ping)).ok());
  }
}

TEST_F(TcpTest, RequestShutdownFinishesInFlightQueries) {
  Client client = MustConnect();
  ASSERT_TRUE(client.Call(GenRequest("d")).ok());
  // Start a query, then request the drain from another thread while it
  // is (likely) still executing; the response must still arrive.
  std::thread drainer([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server_->RequestShutdown();
  });
  auto response = client.Call(QueryRequest("d", kQuery));
  drainer.join();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->GetString("status", ""), "OK");
  server_->Wait();
}

}  // namespace
}  // namespace cfq::server
