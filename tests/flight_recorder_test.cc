// Tests for the slow-query flight recorder (src/obs/flight_recorder.h):
// ring retention, slow-query pinning, snapshot dedup, and the Chrome
// trace dump — which must be valid JSON (checked with the server's own
// parser) with each query's spans nested under its own pid lane.

#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "server/json.h"

namespace cfq::obs {
namespace {

CompletedQueryTrace MakeTrace(FlightRecorder* recorder, double elapsed,
                              const std::string& dataset = "demo") {
  CompletedQueryTrace trace;
  trace.id = recorder->NextTraceId();
  trace.start_us = recorder->NowMicros();
  trace.elapsed_seconds = elapsed;
  trace.dataset = dataset;
  trace.strategy = "optimized";
  trace.source = "cold";
  trace.status = "OK";
  return trace;
}

TEST(PhaseAccumulatorTest, MergesRepeatedNamesAndSumsTopLevelOnly) {
  PhaseAccumulator phases;
  phases.Add("parse", 0.25);
  phases.Add("execute", 1.0);
  phases.Add("execute", 0.5);                   // Merged, not duplicated.
  phases.Add("execute.refresh.recount", 10.0);  // Dotted: excluded.
  ASSERT_EQ(phases.phases().size(), 3u);
  EXPECT_EQ(phases.phases()[1].name, "execute");
  EXPECT_DOUBLE_EQ(phases.phases()[1].seconds, 1.5);
  EXPECT_DOUBLE_EQ(phases.TopLevelSeconds(), 1.75);
}

TEST(ScopedPhaseTest, RecordsSpanAndAccumulates) {
  PhaseAccumulator phases;
  Tracer tracer(64);
  {
    ScopedPhase phase(&phases, &tracer, "execute");
  }
  ASSERT_EQ(phases.phases().size(), 1u);
  EXPECT_EQ(phases.phases()[0].name, "execute");
  EXPECT_GE(phases.phases()[0].seconds, 0.0);
  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, EventPhase::kSpanBegin);
  EXPECT_EQ(events[1].phase, EventPhase::kSpanEnd);
}

TEST(ScopedPhaseTest, ExplicitEndIsIdempotent) {
  PhaseAccumulator phases;
  ScopedPhase phase(&phases, nullptr, "parse");
  phase.End();
  phase.End();  // Destructor will be the third End(); still one entry.
  ASSERT_EQ(phases.phases().size(), 1u);
}

TEST(FlightRecorderTest, RecentRingIsBounded) {
  FlightRecorderOptions options;
  options.recent_capacity = 3;
  options.slow_capacity = 3;
  options.slow_threshold_seconds = 100.0;  // Nothing qualifies as slow.
  FlightRecorder recorder(options);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(MakeTrace(&recorder, 0.001));
  }
  const FlightRecorderSummary summary = recorder.Summary();
  EXPECT_EQ(summary.recorded_total, 10u);
  EXPECT_EQ(summary.slow_total, 0u);
  EXPECT_EQ(summary.recent_size, 3u);
  EXPECT_EQ(summary.slow_size, 0u);
  // The survivors are the newest three, ascending by id.
  const auto traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].id, 8u);
  EXPECT_EQ(traces[2].id, 10u);
}

TEST(FlightRecorderTest, SlowQueriesOutliveTheRecentRing) {
  FlightRecorderOptions options;
  options.recent_capacity = 2;
  options.slow_capacity = 4;
  options.slow_threshold_seconds = 0.5;
  FlightRecorder recorder(options);
  recorder.Record(MakeTrace(&recorder, 2.0, "slowset"));  // id 1: slow.
  for (int i = 0; i < 8; ++i) {
    recorder.Record(MakeTrace(&recorder, 0.001));  // Rotates recent ring.
  }
  const FlightRecorderSummary summary = recorder.Summary();
  EXPECT_EQ(summary.slow_total, 1u);
  EXPECT_EQ(summary.slow_size, 1u);
  const auto traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 3u);  // 2 recent + 1 pinned slow.
  EXPECT_EQ(traces[0].id, 1u);
  EXPECT_TRUE(traces[0].slow);
  EXPECT_EQ(traces[0].dataset, "slowset");
}

TEST(FlightRecorderTest, SnapshotDeduplicatesSlowAlsoInRecent) {
  FlightRecorder recorder(
      FlightRecorderOptions{/*recent_capacity=*/8, /*slow_capacity=*/8,
                            /*slow_threshold_seconds=*/0.5});
  recorder.Record(MakeTrace(&recorder, 2.0));  // Slow AND still recent.
  recorder.Record(MakeTrace(&recorder, 0.001));
  const auto traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].id, 1u);
  EXPECT_EQ(traces[1].id, 2u);
}

// The dump must be one JSON document whose traceEvents nest each
// query's spans (query root -> phase -> level) under that query's pid.
TEST(FlightRecorderTest, ChromeDumpParsesAndNestsPerQuery) {
  FlightRecorder recorder;
  for (int q = 0; q < 2; ++q) {
    CompletedQueryTrace trace = MakeTrace(&recorder, 0.25, "demo");
    Tracer tracer(256);
    tracer.BeginSpan("query");
    tracer.BeginSpan("execute");
    tracer.BeginSpan("refresh.level");
    LevelEvent level;
    level.var = 'S';
    level.level = 1;
    level.candidates = 10;
    level.counted = 10;
    level.frequent = 7;
    tracer.RecordLevel(level);
    tracer.EndSpan("refresh.level");
    tracer.EndSpan("execute");
    tracer.EndSpan("query");
    trace.events = tracer.Events();
    trace.phases.push_back(QueryPhase{"execute", 0.2});
    recorder.Record(std::move(trace));
  }

  std::ostringstream os;
  recorder.WriteChromeTrace(os);
  auto doc = server::JsonValue::Parse(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status();
  const server::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Walk per-pid span stacks: every B needs a matching E, names must
  // nest, and each pid lane needs a process_name metadata record.
  std::map<int64_t, std::vector<std::string>> stacks;
  std::map<int64_t, std::string> process_names;
  std::map<int64_t, std::vector<std::string>> roots;
  for (const server::JsonValue& event : events->as_array()) {
    ASSERT_TRUE(event.is_object());
    const std::string ph = event.GetString("ph", "");
    const int64_t pid = event.GetInt("pid", -1);
    const std::string name = event.GetString("name", "");
    if (ph == "M") {
      if (name == "process_name") {
        const server::JsonValue* event_args = event.Find("args");
        ASSERT_NE(event_args, nullptr);
        process_names[pid] = event_args->GetString("name", "");
      }
      continue;
    }
    if (ph == "B") {
      if (stacks[pid].empty()) roots[pid].push_back(name);
      stacks[pid].push_back(name);
    } else if (ph == "E") {
      ASSERT_FALSE(stacks[pid].empty()) << "unbalanced E for " << name;
      EXPECT_EQ(stacks[pid].back(), name);
      stacks[pid].pop_back();
    }
  }
  ASSERT_EQ(stacks.size(), 2u);  // One lane per query.
  for (const auto& [pid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span in pid " << pid;
    // The query root is the only top-of-stack span in its lane.
    ASSERT_EQ(roots[pid].size(), 1u);
    EXPECT_EQ(roots[pid][0], "query");
    EXPECT_NE(process_names[pid].find("query "), std::string::npos);
  }
}

TEST(FlightRecorderTest, ChromeDumpEscapesMetadataStrings) {
  FlightRecorder recorder;
  CompletedQueryTrace trace = MakeTrace(&recorder, 0.1, "we\"ird\\name");
  recorder.Record(std::move(trace));
  std::ostringstream os;
  recorder.WriteChromeTrace(os);
  auto doc = server::JsonValue::Parse(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status();
}

TEST(FlightRecorderTest, EmptyRecorderDumpsValidDocument) {
  FlightRecorder recorder;
  std::ostringstream os;
  recorder.WriteChromeTrace(os);
  auto doc = server::JsonValue::Parse(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status();
  const server::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->as_array().empty());
}

}  // namespace
}  // namespace cfq::obs
