#include "obs/trace.h"

#include <algorithm>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/analyze.h"
#include "core/executor.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace cfq {
namespace {

struct Instance {
  TransactionDb db{0};
  ItemCatalog catalog{0};
  CfqQuery query;
};

// Small random instance with a sum-vs-sum 2-var constraint, the query
// shape that exercises every pruning mechanism (1-var pushdown,
// induced/loose reductions, Jmax dovetailing).
Instance MakeInstance(int seed) {
  Instance inst;
  const size_t n = 12;
  inst.db = TransactionDb(n);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> len(1, 6);
  std::uniform_int_distribution<ItemId> item(0, n - 1);
  for (int t = 0; t < 100; ++t) {
    std::vector<ItemId> txn(static_cast<size_t>(len(rng)));
    for (auto& x : txn) x = item(rng);
    inst.db.Add(std::move(txn));
  }
  inst.catalog = ItemCatalog(n);
  std::vector<AttrValue> price(n);
  std::uniform_int_distribution<int> price_dist(1, 9);
  for (size_t i = 0; i < n; ++i) price[i] = price_dist(rng);
  EXPECT_TRUE(inst.catalog.AddNumericAttr("Price", price).ok());
  for (ItemId i = 0; i < n; ++i) {
    inst.query.s_domain.push_back(i);
    inst.query.t_domain.push_back(i);
  }
  inst.query.min_support_s = 4;
  inst.query.min_support_t = 4;
  inst.query.two_var.push_back(
      MakeAgg2(AggFn::kSum, "Price", CmpOp::kLe, AggFn::kSum, "Price"));
  return inst;
}

std::vector<obs::TraceEvent> TracedRun(Instance* inst, obs::Tracer* tracer,
                                       StrategyStats* stats = nullptr,
                                       size_t threads = 1,
                                       obs::MetricsRegistry* metrics = nullptr) {
  PlanOptions options;
  options.tracer = tracer;
  options.threads = threads;
  options.metrics = metrics;
  auto result = ExecuteOptimized(&inst->db, inst->catalog, inst->query, options);
  EXPECT_TRUE(result.ok()) << result.status();
  if (stats != nullptr && result.ok()) *stats = result->stats;
  return tracer->Events();
}

// (a) Per-level attribution identity: everything generated was either
// attributed to a pruning mechanism or counted.
TEST(TraceTest, LevelPruningSumsToGeneratedMinusCounted) {
  for (int seed = 0; seed < 5; ++seed) {
    Instance inst = MakeInstance(seed);
    obs::Tracer tracer;
    size_t level_events = 0;
    for (const obs::TraceEvent& e : TracedRun(&inst, &tracer)) {
      const auto* level = std::get_if<obs::LevelEvent>(&e.payload);
      if (level == nullptr) continue;
      ++level_events;
      EXPECT_EQ(level->candidates - level->pruned_by.Total(), level->counted)
          << "var " << level->var << " level " << level->level;
      EXPECT_LE(level->frequent, level->counted);
    }
    EXPECT_GT(level_events, 0u) << "seed " << seed;
  }
}

// Same identity on the merged per-level stats (what --metrics exports).
TEST(TraceTest, StatsPruningIdentity) {
  Instance inst = MakeInstance(1);
  obs::Tracer tracer;
  StrategyStats stats;
  TracedRun(&inst, &tracer, &stats);
  for (const CccStats* side : {&stats.s, &stats.t}) {
    ASSERT_EQ(side->generated_per_level.size(),
              side->candidates_per_level.size());
    for (size_t i = 0; i < side->generated_per_level.size(); ++i) {
      EXPECT_EQ(side->generated_per_level[i] -
                    side->pruned_per_level[i].Total(),
                side->candidates_per_level[i]);
    }
  }
}

// (b) Theorem 5: each source variable's V^k series is non-increasing.
TEST(TraceTest, VkSeriesNonIncreasing) {
  for (int seed = 0; seed < 5; ++seed) {
    Instance inst = MakeInstance(seed);
    obs::Tracer tracer;
    double last_s = std::numeric_limits<double>::infinity();
    double last_t = std::numeric_limits<double>::infinity();
    for (const obs::TraceEvent& e : TracedRun(&inst, &tracer)) {
      const auto* jmax = std::get_if<obs::JmaxEvent>(&e.payload);
      if (jmax == nullptr) continue;
      double& last = jmax->source_var == 'S' ? last_s : last_t;
      EXPECT_LE(jmax->v_k, last)
          << "source " << jmax->source_var << " level " << jmax->level;
      last = jmax->v_k;
    }
  }
}

// Minimal JSON well-formedness checker: brackets/braces balance outside
// strings, strings terminate, no trailing garbage.
bool ValidJson(const std::string& text, std::string* error) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        *error = "control character inside string at offset " +
                 std::to_string(i);
        return false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
      case ']': {
        const char open = c == '}' ? '{' : '[';
        if (stack.empty() || stack.back() != open) {
          *error = "unbalanced bracket at offset " + std::to_string(i);
          return false;
        }
        stack.pop_back();
        break;
      }
      default:
        break;
    }
  }
  if (in_string) {
    *error = "unterminated string";
    return false;
  }
  if (!stack.empty()) {
    *error = "unclosed brackets";
    return false;
  }
  return true;
}

// (c) The Chrome trace export is well-formed and every span that begins
// also ends.
TEST(TraceTest, ChromeTraceValidJsonWithBalancedSpans) {
  Instance inst = MakeInstance(2);
  obs::Tracer tracer;
  const std::vector<obs::TraceEvent> events = TracedRun(&inst, &tracer);
  EXPECT_EQ(tracer.dropped(), 0u);

  int64_t depth = 0;
  uint64_t begins = 0;
  uint64_t ends = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.phase == obs::EventPhase::kSpanBegin) {
      ++begins;
      ++depth;
    } else if (e.phase == obs::EventPhase::kSpanEnd) {
      ++ends;
      --depth;
    }
    EXPECT_GE(depth, 0);
  }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);

  std::ostringstream chrome;
  obs::WriteChromeTrace(events, chrome);
  std::string error;
  EXPECT_TRUE(ValidJson(chrome.str(), &error)) << error;
  // The B/E pairs survive the export too.
  size_t exported_begins = 0;
  size_t exported_ends = 0;
  const std::string text = chrome.str();
  for (size_t pos = 0; (pos = text.find("\"ph\":\"", pos)) != std::string::npos;
       pos += 6) {
    const char phase = text[pos + 6];
    if (phase == 'B') ++exported_begins;
    if (phase == 'E') ++exported_ends;
  }
  EXPECT_EQ(exported_begins, begins);
  EXPECT_EQ(exported_ends, ends);

  std::ostringstream jsonl;
  obs::WriteTraceJsonl(events, jsonl);
  std::string line;
  std::istringstream lines(jsonl.str());
  size_t line_count = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++line_count;
    EXPECT_TRUE(ValidJson(line, &error)) << error << ": " << line;
  }
  EXPECT_EQ(line_count, events.size());
}

// The EXPLAIN ANALYZE renderer shows every mechanism column and the
// metrics export round-trips the headline counters.
TEST(TraceTest, AnalyzeRenderAndMetricsExport) {
  Instance inst = MakeInstance(3);
  obs::Tracer tracer;
  StrategyStats stats;
  const std::vector<obs::TraceEvent> events = TracedRun(&inst, &tracer, &stats);

  const std::string table = RenderExplainAnalyze(stats, events);
  for (size_t m = 0; m < obs::kNumMechanisms; ++m) {
    EXPECT_NE(table.find(obs::MechanismName(static_cast<obs::Mechanism>(m))),
              std::string::npos);
  }
  EXPECT_NE(table.find("V^k"), std::string::npos);

  obs::MetricsRegistry registry;
  ExportMetrics(stats, &registry);
  EXPECT_EQ(registry.counter("s.sets_counted"), stats.s.sets_counted);
  EXPECT_EQ(registry.counter("t.sets_counted"), stats.t.sets_counted);
  EXPECT_EQ(registry.counter("pair_checks"), stats.pair_checks);
  std::ostringstream jsonl;
  registry.WriteJsonl(jsonl);
  std::string line;
  std::istringstream lines(jsonl.str());
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::string error;
    EXPECT_TRUE(ValidJson(line, &error)) << error << ": " << line;
  }
}

// The ring buffer wraps instead of growing; dropped() reports the loss.
TEST(TraceTest, RingBufferWrapCountsDropped) {
  obs::Tracer tracer(/*capacity=*/8);
  for (int i = 0; i < 20; ++i) tracer.Instant("tick");
  EXPECT_EQ(tracer.Events().size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
}

// Concurrent writers never lose or duplicate a slot: with capacity for
// everything, every event survives; past capacity, kept + dropped adds
// up exactly.
TEST(TraceTest, ConcurrentWritersAccountForEveryEvent) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  {
    obs::Tracer tracer(/*capacity=*/kThreads * kPerThread);
    std::vector<std::thread> writers;
    for (int w = 0; w < kThreads; ++w) {
      writers.emplace_back([&tracer] {
        for (int i = 0; i < kPerThread; ++i) tracer.Instant("tick");
      });
    }
    for (std::thread& w : writers) w.join();
    EXPECT_EQ(tracer.Events().size(),
              static_cast<size_t>(kThreads * kPerThread));
    EXPECT_EQ(tracer.dropped(), 0u);
  }
  {
    obs::Tracer tracer(/*capacity=*/64);
    std::vector<std::thread> writers;
    for (int w = 0; w < kThreads; ++w) {
      writers.emplace_back([&tracer] {
        for (int i = 0; i < kPerThread; ++i) tracer.Instant("tick");
      });
    }
    for (std::thread& w : writers) w.join();
    EXPECT_EQ(tracer.Events().size(), 64u);
    EXPECT_EQ(tracer.dropped(),
              static_cast<uint64_t>(kThreads * kPerThread - 64));
  }
}

// The attribution identity generated - pruned = counted must hold at
// every level no matter how many threads mined, and the level events
// themselves must be identical to the serial run's.
TEST(TraceTest, LevelIdentityHoldsUnderConcurrentMining) {
  auto level_events = [](const std::vector<obs::TraceEvent>& events) {
    std::vector<obs::LevelEvent> out;
    for (const obs::TraceEvent& e : events) {
      if (const auto* level = std::get_if<obs::LevelEvent>(&e.payload)) {
        out.push_back(*level);
      }
    }
    std::sort(out.begin(), out.end(),
              [](const obs::LevelEvent& a, const obs::LevelEvent& b) {
                return std::tie(a.var, a.level) < std::tie(b.var, b.level);
              });
    return out;
  };
  for (int seed = 0; seed < 3; ++seed) {
    Instance serial_inst = MakeInstance(seed);
    obs::Tracer serial_tracer;
    const auto serial = level_events(TracedRun(&serial_inst, &serial_tracer));
    for (size_t threads : {2u, 8u}) {
      Instance inst = MakeInstance(seed);
      obs::Tracer tracer;
      const auto parallel =
          level_events(TracedRun(&inst, &tracer, nullptr, threads));
      ASSERT_EQ(parallel.size(), serial.size()) << "threads " << threads;
      for (size_t i = 0; i < parallel.size(); ++i) {
        const obs::LevelEvent& p = parallel[i];
        const obs::LevelEvent& q = serial[i];
        EXPECT_EQ(p.candidates - p.pruned_by.Total(), p.counted)
            << "var " << p.var << " level " << p.level;
        EXPECT_EQ(p.var, q.var);
        EXPECT_EQ(p.level, q.level);
        EXPECT_EQ(p.candidates, q.candidates);
        EXPECT_EQ(p.counted, q.counted);
        EXPECT_EQ(p.frequent, q.frequent);
        EXPECT_EQ(p.pruned_by.Total(), q.pruned_by.Total());
      }
    }
  }
}

// Recording latency histograms must not disturb the attribution
// identity, and the histograms themselves must be structurally
// deterministic: every level that counted candidates observed exactly
// one latency sample per side, serial or concurrent alike.
TEST(TraceTest, PruningIdentityHoldsWithMetricsEnabled) {
  for (size_t threads : {1u, 4u}) {
    Instance inst = MakeInstance(1);
    obs::Tracer tracer;
    obs::MetricsRegistry registry;
    StrategyStats stats;
    TracedRun(&inst, &tracer, &stats, threads, &registry);
    for (const CccStats* side : {&stats.s, &stats.t}) {
      for (size_t i = 0; i < side->generated_per_level.size(); ++i) {
        EXPECT_EQ(side->generated_per_level[i] -
                      side->pruned_per_level[i].Total(),
                  side->candidates_per_level[i])
            << "threads " << threads;
      }
    }
    // One count-latency observation per mined level, per side.
    EXPECT_EQ(registry.histogram("s.level.count_seconds").count(),
              stats.s.candidates_per_level.size())
        << "threads " << threads;
    EXPECT_EQ(registry.histogram("t.level.count_seconds").count(),
              stats.t.candidates_per_level.size())
        << "threads " << threads;
    // Every database scan observed its byte volume.
    EXPECT_EQ(registry.histogram("scan.bytes").count(),
              stats.s.io.scans + stats.t.io.scans)
        << "threads " << threads;
    EXPECT_EQ(registry.histogram("pair.form_seconds").count(), 1u)
        << "threads " << threads;
  }
}

// StrategyStats::MergeFrom doubles every additive field.
TEST(TraceTest, StrategyStatsMergeFrom) {
  Instance inst = MakeInstance(4);
  obs::Tracer tracer;
  StrategyStats stats;
  TracedRun(&inst, &tracer, &stats);
  StrategyStats merged = stats;
  merged.MergeFrom(stats);
  EXPECT_EQ(merged.s.sets_counted, 2 * stats.s.sets_counted);
  EXPECT_EQ(merged.t.constraint_checks, 2 * stats.t.constraint_checks);
  EXPECT_EQ(merged.s.io.scans, 2 * stats.s.io.scans);
  EXPECT_EQ(merged.s.io.pages_read, 2 * stats.s.io.pages_read);
  EXPECT_EQ(merged.pair_checks, 2 * stats.pair_checks);
  EXPECT_DOUBLE_EQ(merged.elapsed_seconds, 2 * stats.elapsed_seconds);
  ASSERT_EQ(merged.s.generated_per_level.size(),
            stats.s.generated_per_level.size());
  for (size_t i = 0; i < merged.s.generated_per_level.size(); ++i) {
    EXPECT_EQ(merged.s.generated_per_level[i],
              2 * stats.s.generated_per_level[i]);
    EXPECT_EQ(merged.s.pruned_per_level[i].Total(),
              2 * stats.s.pruned_per_level[i].Total());
  }
}

}  // namespace
}  // namespace cfq
