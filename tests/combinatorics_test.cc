#include "common/combinatorics.h"

#include <limits>

#include <gtest/gtest.h>

namespace cfq {
namespace {

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(BinomialSaturating(0, 0), 1u);
  EXPECT_EQ(BinomialSaturating(5, 0), 1u);
  EXPECT_EQ(BinomialSaturating(5, 5), 1u);
  EXPECT_EQ(BinomialSaturating(5, 1), 5u);
  EXPECT_EQ(BinomialSaturating(5, 2), 10u);
  EXPECT_EQ(BinomialSaturating(6, 3), 20u);
  EXPECT_EQ(BinomialSaturating(10, 4), 210u);
}

TEST(BinomialTest, KGreaterThanNIsZero) {
  EXPECT_EQ(BinomialSaturating(3, 4), 0u);
  EXPECT_EQ(BinomialSaturating(0, 1), 0u);
}

TEST(BinomialTest, SymmetricInK) {
  for (uint64_t n = 0; n <= 20; ++n) {
    for (uint64_t k = 0; k <= n; ++k) {
      EXPECT_EQ(BinomialSaturating(n, k), BinomialSaturating(n, n - k));
    }
  }
}

TEST(BinomialTest, PascalIdentity) {
  for (uint64_t n = 1; n <= 30; ++n) {
    for (uint64_t k = 1; k <= n; ++k) {
      EXPECT_EQ(BinomialSaturating(n, k),
                BinomialSaturating(n - 1, k - 1) + BinomialSaturating(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialTest, LargeExactValue) {
  EXPECT_EQ(BinomialSaturating(52, 5), 2598960u);
  EXPECT_EQ(BinomialSaturating(60, 30), 118264581564861424ull);
}

TEST(BinomialTest, SaturatesInsteadOfOverflowing) {
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  EXPECT_EQ(BinomialSaturating(200, 100), kMax);
  EXPECT_EQ(BinomialSaturating(1000, 500), kMax);
  // C(68,34) overflows 64 bits; C(66,33) does not.
  EXPECT_LT(BinomialSaturating(66, 33), kMax);
}

// Figure 5's worked example: k=4, N=17 frequent 4-sets containing t1.
// C(6,3)=20 > 17 so no frequent 7-set; C(5,3)=10 <= 17 allows size 6,
// hence J = 2.
TEST(LargestJTest, PaperWorkedExample) {
  EXPECT_EQ(LargestJForCount(17, 4, 1000), 2);
}

TEST(LargestJTest, ZeroCountMeansNoSet) {
  EXPECT_EQ(LargestJForCount(0, 3, 100), -1);
}

TEST(LargestJTest, OneOccurrenceAllowsNoGrowth) {
  // C(k-1, k-1) = 1 <= 1 but C(k, k-1) = k > 1 for k >= 2.
  EXPECT_EQ(LargestJForCount(1, 4, 100), 0);
  EXPECT_EQ(LargestJForCount(1, 2, 100), 0);
}

TEST(LargestJTest, DefinitionHolds) {
  for (uint64_t k = 1; k <= 6; ++k) {
    for (uint64_t count = 1; count <= 200; count += 7) {
      const int64_t j = LargestJForCount(count, k, 64);
      ASSERT_GE(j, 0);
      EXPECT_GE(count, BinomialSaturating(k + static_cast<uint64_t>(j) - 1,
                                          k - 1));
      if (static_cast<uint64_t>(j) < 64) {
        EXPECT_LT(count, BinomialSaturating(k + static_cast<uint64_t>(j),
                                            k - 1));
      }
    }
  }
}

TEST(LargestJTest, MonotoneInCount) {
  for (uint64_t k = 2; k <= 5; ++k) {
    int64_t prev = -1;
    for (uint64_t count = 1; count <= 500; ++count) {
      const int64_t j = LargestJForCount(count, k, 64);
      EXPECT_GE(j, prev);
      prev = j;
    }
  }
}

TEST(LargestJTest, CappedByMaxJ) {
  EXPECT_EQ(LargestJForCount(1000000, 2, 3), 3);
}

}  // namespace
}  // namespace cfq
