// Correctness gate for the incremental mining subsystem: a refreshed
// MiningState must be bit-identical — same levels, same sets in the
// same order, same supports — to mining the grown database from
// scratch, and the answers derived from it must match the baseline
// executor exactly. Held across all three counter backends at threads
// {1, 8}, over three appended deltas including one that demotes
// previously frequent sets (via a raised threshold).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/executor.h"
#include "data/attribute_gen.h"
#include "data/synthetic_gen.h"
#include "incremental/answer.h"
#include "incremental/delta_log.h"
#include "incremental/mining_state.h"
#include "incremental/refresh.h"
#include "incremental/reuse.h"
#include "incremental/state_cache.h"

namespace cfq {
namespace {

using incremental::AnswerFromState;
using incremental::BuildMiningState;
using incremental::DeltaLog;
using incremental::IncrOptions;
using incremental::MiningState;
using incremental::MiningStateCache;
using incremental::RefreshMiningState;
using incremental::RefreshOutcome;
using incremental::ReuseStats;
using incremental::StateAnswerContext;
using incremental::StateAnswerOptions;
using incremental::StatesIdentical;
using incremental::Summarize;

constexpr size_t kNumItems = 60;
constexpr size_t kBaseTxns = 250;
// Three appended deltas; the database ends at 400 transactions.
constexpr size_t kCuts[] = {kBaseTxns, 300, 350, 400};

// The full 400-transaction database every test slices prefixes of, plus
// the (append-invariant) item catalog.
struct TestData {
  TransactionDb full{kNumItems};
  ItemCatalog catalog{kNumItems};
};

TestData MakeData() {
  TestData data;
  QuestParams params;
  params.num_transactions = kCuts[3];
  params.num_items = kNumItems;
  params.num_patterns = 30;
  params.avg_transaction_size = 8;
  params.avg_pattern_size = 3;
  params.seed = 77;
  auto db = GenerateQuestDb(params);
  EXPECT_TRUE(db.ok());
  data.full = std::move(db).value();
  EXPECT_TRUE(
      AssignUniformPrices(&data.catalog, "Price", 1, 1000, 78).ok());
  std::vector<int32_t> types(kNumItems);
  for (size_t i = 0; i < types.size(); ++i) {
    types[i] = static_cast<int32_t>(i % 5);
  }
  EXPECT_TRUE(
      data.catalog.AddCategoricalAttr("Type", std::move(types)).ok());
  return data;
}

TransactionDb Prefix(const TransactionDb& full, size_t n) {
  TransactionDb db(full.num_items());
  for (size_t tid = 0; tid < n; ++tid) db.Add(full.transaction(tid));
  return db;
}

// Appends full's [from, to) tail onto db, the way the serving catalog
// grows a dataset.
void AppendSlice(TransactionDb* db, const TransactionDb& full, size_t from,
                 size_t to) {
  std::vector<std::vector<ItemId>> batch;
  batch.reserve(to - from);
  for (size_t tid = from; tid < to; ++tid) {
    const Itemset& txn = full.transaction(tid);
    batch.emplace_back(txn.begin(), txn.end());
  }
  db->Append(batch);
}

Itemset FullDomain() {
  Itemset domain;
  for (ItemId i = 0; i < kNumItems; ++i) domain.push_back(i);
  return domain;
}

// The threshold at each generation. Raising it at the second delta is
// what makes that delta demote previously frequent sets (appends alone
// can only grow absolute supports).
uint64_t MinsupAt(size_t generation) { return generation >= 2 ? 30 : 22; }

CfqQuery MakeQuery(uint64_t minsup) {
  CfqQuery query;
  query.s_domain = FullDomain();
  query.t_domain = FullDomain();
  query.min_support_s = minsup;
  // The state is mined at min(s, t); a higher T threshold exercises the
  // per-side re-filtering.
  query.min_support_t = minsup + 4;
  query.one_var.push_back(
      MakeAgg1(Var::kS, AggFn::kMax, "Price", CmpOp::kLe, 800));
  query.two_var.push_back(
      MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price"));
  return query;
}

void ExpectSameSets(const std::vector<FrequentSet>& got,
                    const std::vector<FrequentSet>& want,
                    const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].items, want[i].items) << label << " set " << i;
    EXPECT_EQ(got[i].support, want[i].support) << label << " set " << i;
  }
}

struct Config {
  CounterKind counter;
  size_t threads;
  std::string label;
};

std::vector<Config> AllConfigs() {
  return {
      {CounterKind::kHash, 1, "hash/t1"},
      {CounterKind::kHash, 8, "hash/t8"},
      {CounterKind::kHashTree, 1, "hashtree/t1"},
      {CounterKind::kHashTree, 8, "hashtree/t8"},
      {CounterKind::kBitmap, 1, "bitmap/t1"},
      {CounterKind::kBitmap, 8, "bitmap/t8"},
  };
}

// The ISSUE's acceptance gate: refresh == scratch (states, per-level
// counted totals, side sets, answer pairs) across three deltas, all
// backends, threads {1, 8}. The generation-2 delta raises the
// threshold and must demote.
TEST(IncrementalRefreshTest, IdenticalToScratchAcrossDeltasAllBackends) {
  const TestData data = MakeData();
  const Itemset domain = FullDomain();
  for (const Config& config : AllConfigs()) {
    SCOPED_TRACE(config.label);
    ThreadPool pool(config.threads);
    IncrOptions options;
    options.counter = config.counter;
    options.pool = config.threads > 1 ? &pool : nullptr;

    TransactionDb db = Prefix(data.full, kBaseTxns);
    auto state = BuildMiningState(&db, domain, MinsupAt(0), 0, options);
    ASSERT_TRUE(state.ok()) << state.status();
    bool saw_demotion = false;

    for (size_t generation = 1; generation <= 3; ++generation) {
      SCOPED_TRACE("generation " + std::to_string(generation));
      const size_t from = kCuts[generation - 1];
      const size_t to = kCuts[generation];
      AppendSlice(&db, data.full, from, to);

      auto refreshed = RefreshMiningState(state.value(), &db, from, to,
                                          generation, MinsupAt(generation),
                                          options);
      ASSERT_TRUE(refreshed.ok()) << refreshed.status();
      saw_demotion |= refreshed->stats.demoted > 0;

      TransactionDb scratch_db = Prefix(data.full, to);
      auto scratch = BuildMiningState(&scratch_db, domain,
                                      MinsupAt(generation), generation,
                                      options);
      ASSERT_TRUE(scratch.ok()) << scratch.status();

      const MiningState& incr = refreshed->state;
      EXPECT_TRUE(StatesIdentical(incr, scratch.value()))
          << "refresh " << Summarize(incr) << " vs scratch "
          << Summarize(scratch.value());
      // Per-level counted totals, spelled out so a divergence names the
      // level that drifted.
      ASSERT_EQ(incr.levels.size(), scratch->levels.size());
      for (size_t k = 0; k < incr.levels.size(); ++k) {
        EXPECT_EQ(incr.levels[k].frequent.size(),
                  scratch->levels[k].frequent.size())
            << "frequent at level " << k + 1;
        EXPECT_EQ(incr.levels[k].border.size(),
                  scratch->levels[k].border.size())
            << "border at level " << k + 1;
      }

      // The answers riding the maintained state must equal the
      // generate-and-test baseline on the grown database: same side
      // sets, same pairs.
      const CfqQuery query = MakeQuery(MinsupAt(generation));
      auto from_state = AnswerFromState(incr, data.catalog, query);
      ASSERT_TRUE(from_state.ok()) << from_state.status();
      PlanOptions plan_options;
      plan_options.counter = config.counter;
      plan_options.threads = config.threads;
      auto baseline =
          ExecuteAprioriPlus(&db, data.catalog, query, plan_options);
      ASSERT_TRUE(baseline.ok()) << baseline.status();
      ExpectSameSets(from_state->s_sets, baseline->s_sets, "s_sets");
      ExpectSameSets(from_state->t_sets, baseline->t_sets, "t_sets");
      EXPECT_EQ(AnswerPairs(from_state.value()),
                AnswerPairs(baseline.value()));

      state = std::move(refreshed).value().state;
    }
    EXPECT_TRUE(saw_demotion)
        << "the raised-threshold delta was expected to demote";
  }
}

// An empty delta with a raised threshold is the pure re-threshold
// refresh: nothing is recounted or freshly counted, old supports are
// reused verbatim, and sets below the new bar demote.
TEST(IncrementalRefreshTest, EmptyDeltaRethresholdReusesAndDemotes) {
  const TestData data = MakeData();
  TransactionDb db = Prefix(data.full, kBaseTxns);
  auto state = BuildMiningState(&db, FullDomain(), 22, 0);
  ASSERT_TRUE(state.ok()) << state.status();

  auto refreshed =
      RefreshMiningState(state.value(), &db, kBaseTxns, kBaseTxns, 1, 30);
  ASSERT_TRUE(refreshed.ok()) << refreshed.status();
  EXPECT_EQ(refreshed->stats.recounted, 0u);
  EXPECT_EQ(refreshed->stats.fresh, 0u);
  EXPECT_GT(refreshed->stats.reused, 0u);
  EXPECT_GT(refreshed->stats.demoted, 0u);
  EXPECT_EQ(refreshed->stats.delta_transactions, 0u);

  auto scratch = BuildMiningState(&db, FullDomain(), 30, 1);
  ASSERT_TRUE(scratch.ok());
  EXPECT_TRUE(StatesIdentical(refreshed->state, scratch.value()));
}

TEST(IncrementalRefreshTest, RejectsMisalignedDelta) {
  const TestData data = MakeData();
  TransactionDb db = Prefix(data.full, kCuts[1]);
  auto state = BuildMiningState(&db, FullDomain(), 22, 0);
  ASSERT_TRUE(state.ok());

  // Delta not starting at the state's boundary.
  EXPECT_EQ(RefreshMiningState(state.value(), &db, kCuts[1] - 10, kCuts[1], 1,
                               22)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Delta not ending at the database tail.
  EXPECT_EQ(RefreshMiningState(state.value(), &db, kCuts[1], kCuts[1] + 5, 1,
                               22)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Zero threshold.
  EXPECT_EQ(
      RefreshMiningState(state.value(), &db, kCuts[1], kCuts[1], 1, 0)
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(StateAnswerTest, RejectsQueriesTheStateCannotCover) {
  const TestData data = MakeData();
  TransactionDb db = Prefix(data.full, kBaseTxns);
  auto state = BuildMiningState(&db, FullDomain(), 22, 0);
  ASSERT_TRUE(state.ok());

  // Side threshold below the state's: sets between the two thresholds
  // were never retained as frequent.
  CfqQuery below = MakeQuery(22);
  below.min_support_s = 10;
  EXPECT_EQ(AnswerFromState(state.value(), data.catalog, below)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Domain item outside the state's domain.
  CfqQuery wider = MakeQuery(22);
  wider.s_domain.push_back(static_cast<ItemId>(kNumItems + 3));
  EXPECT_EQ(AnswerFromState(state.value(), data.catalog, wider)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(StateAnswerTest, CrossProductQueryMatchesBaseline) {
  const TestData data = MakeData();
  TransactionDb db = Prefix(data.full, kBaseTxns);
  auto state = BuildMiningState(&db, FullDomain(), 25, 0);
  ASSERT_TRUE(state.ok());

  CfqQuery query;
  query.s_domain = FullDomain();
  query.t_domain = FullDomain();
  query.min_support_s = 25;
  query.min_support_t = 30;
  query.one_var.push_back(
      MakeAgg1(Var::kT, AggFn::kMin, "Price", CmpOp::kGe, 150));

  auto from_state = AnswerFromState(state.value(), data.catalog, query);
  ASSERT_TRUE(from_state.ok()) << from_state.status();
  EXPECT_TRUE(from_state->cross_product);
  EXPECT_TRUE(from_state->pairs.empty());
  auto baseline = ExecuteAprioriPlus(&db, data.catalog, query);
  ASSERT_TRUE(baseline.ok());
  ExpectSameSets(from_state->s_sets, baseline->s_sets, "s_sets");
  ExpectSameSets(from_state->t_sets, baseline->t_sets, "t_sets");
}

// The lineage-shared context turns a refresh that left most levels
// untouched into mostly cache hits: reductions key off the L1
// fingerprints, V^k entries off each level's frequent itemsets.
TEST(StateAnswerTest, ContextReusesDerivationsAcrossGenerations) {
  const TestData data = MakeData();
  TransactionDb db = Prefix(data.full, kBaseTxns);
  auto state = BuildMiningState(&db, FullDomain(), 22, 0);
  ASSERT_TRUE(state.ok());

  // A sum-bearing 2-var constraint so the V^k audit series is in play.
  CfqQuery query = MakeQuery(22);
  query.two_var.push_back(
      MakeAgg2(AggFn::kSum, "Price", CmpOp::kLe, AggFn::kSum, "Price"));

  auto ctx = std::make_shared<StateAnswerContext>();
  ReuseStats first;
  StateAnswerOptions options;
  options.ctx = ctx.get();
  options.reuse = &first;
  auto a = AnswerFromState(state.value(), data.catalog, query, options);
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_GT(first.vk_levels_recomputed, 0u);

  // Identical repeat: everything derivable comes from the context.
  ReuseStats repeat;
  options.reuse = &repeat;
  auto b = AnswerFromState(state.value(), data.catalog, query, options);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(repeat.vk_levels_recomputed, 0u);
  EXPECT_GT(repeat.vk_levels_reused, 0u);
  EXPECT_EQ(repeat.reductions_recomputed, 0u);
  EXPECT_GT(repeat.reductions_reused, 0u);
  EXPECT_EQ(AnswerPairs(a.value()), AnswerPairs(b.value()));

  // A small append, then the same query at the new generation: levels
  // whose frequent sets survived unchanged hit the V^k cache.
  AppendSlice(&db, data.full, kBaseTxns, kBaseTxns + 10);
  auto refreshed = RefreshMiningState(state.value(), &db, kBaseTxns,
                                      kBaseTxns + 10, 1, 22);
  ASSERT_TRUE(refreshed.ok()) << refreshed.status();
  ReuseStats after;
  options.reuse = &after;
  auto c = AnswerFromState(refreshed->state, data.catalog, query, options);
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_GT(after.vk_levels_reused + after.reductions_reused, 0u);
}

TEST(DeltaLogTest, LineageAndSpans) {
  DeltaLog log = DeltaLog::Base(5, 1000);
  EXPECT_EQ(log.base_generation(), 5u);
  EXPECT_EQ(log.generation(), 5u);
  EXPECT_TRUE(log.Contains(5));
  EXPECT_FALSE(log.Contains(6));
  ASSERT_TRUE(log.SizeAt(5).has_value());
  EXPECT_EQ(log.SizeAt(5).value(), 1000u);

  DeltaLog g7 = log.Extend(7, 50);
  DeltaLog g9 = g7.Extend(9, 25);
  EXPECT_EQ(g9.generation(), 9u);
  EXPECT_EQ(g9.SizeAt(7).value(), 1050u);
  EXPECT_EQ(g9.SizeAt(9).value(), 1075u);
  EXPECT_FALSE(g9.SizeAt(8).has_value());

  auto span = g9.Between(5, 9);
  ASSERT_TRUE(span.has_value());
  EXPECT_EQ(span->tid_begin, 1000u);
  EXPECT_EQ(span->tid_end, 1075u);
  EXPECT_EQ(span->size(), 75u);
  auto empty = g9.Between(7, 7);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
  EXPECT_FALSE(g9.Between(9, 7).has_value());
  EXPECT_FALSE(g9.Between(6, 9).has_value());

  const std::vector<uint64_t> newest_first = g9.GenerationsNewestFirst();
  ASSERT_EQ(newest_first.size(), 3u);
  EXPECT_EQ(newest_first[0], 9u);
  EXPECT_EQ(newest_first[1], 7u);
  EXPECT_EQ(newest_first[2], 5u);
}

MiningState TinyState(uint64_t generation, uint64_t minsup,
                      uint64_t num_transactions) {
  MiningState state;
  state.generation = generation;
  state.min_support = minsup;
  state.num_transactions = num_transactions;
  state.domain = {0, 1, 2};
  return state;
}

TEST(MiningStateCacheTest, ExactGetAndAncestorSearch) {
  MiningStateCache cache(4);
  auto ctx = std::make_shared<StateAnswerContext>();
  cache.Put("demo", TinyState(5, 20, 1000), ctx);
  cache.Put("demo", TinyState(5, 30, 1000), ctx);
  cache.Put("other", TinyState(5, 20, 64), ctx);

  auto exact = cache.Get("demo", 5, 20);
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(exact->state.min_support, 20u);
  EXPECT_EQ(cache.Get("demo", 5, 25), nullptr);

  DeltaLog log = DeltaLog::Base(5, 1000).Extend(7, 50).Extend(9, 25);
  // Ancestor for gen 9 @ minsup 25: gen 5 is the only cached
  // generation; of its two thresholds only 20 <= 25 qualifies.
  auto ancestor = cache.FindAncestor("demo", log, 9, 25);
  ASSERT_NE(ancestor, nullptr);
  EXPECT_EQ(ancestor->state.generation, 5u);
  EXPECT_EQ(ancestor->state.min_support, 20u);
  // Requiring a lower threshold than anything cached: no ancestor (FUP
  // can raise a threshold, never lower it).
  EXPECT_EQ(cache.FindAncestor("demo", log, 9, 15), nullptr);

  // A newer cached generation wins over an older one.
  cache.Put("demo", TinyState(7, 25, 1050), ctx);
  auto newer = cache.FindAncestor("demo", log, 9, 30);
  ASSERT_NE(newer, nullptr);
  EXPECT_EQ(newer->state.generation, 7u);

  EXPECT_EQ(cache.PurgeDataset("demo"), 3u);
  EXPECT_EQ(cache.FindAncestor("demo", log, 9, 30), nullptr);
  EXPECT_NE(cache.Get("other", 5, 20), nullptr);
}

TEST(MiningStateCacheTest, EvictsLeastRecentlyUsed) {
  MiningStateCache cache(2);
  auto ctx = std::make_shared<StateAnswerContext>();
  cache.Put("a", TinyState(1, 10, 100), ctx);
  cache.Put("b", TinyState(2, 10, 100), ctx);
  ASSERT_NE(cache.Get("a", 1, 10), nullptr);  // a is now most recent.
  cache.Put("c", TinyState(3, 10, 100), ctx);
  EXPECT_EQ(cache.Get("b", 2, 10), nullptr);
  EXPECT_NE(cache.Get("a", 1, 10), nullptr);
  EXPECT_NE(cache.Get("c", 3, 10), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
}

}  // namespace
}  // namespace cfq
