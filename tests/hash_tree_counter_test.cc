#include "mining/hash_tree_counter.h"

#include <random>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic_gen.h"
#include "mining/apriori.h"

namespace cfq {
namespace {

TransactionDb RandomDb(int seed, size_t num_items, size_t num_txns,
                       int max_len = 8) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> len(1, max_len);
  std::uniform_int_distribution<ItemId> item(
      0, static_cast<ItemId>(num_items - 1));
  TransactionDb db(num_items);
  for (size_t t = 0; t < num_txns; ++t) {
    std::vector<ItemId> txn(static_cast<size_t>(len(rng)));
    for (auto& x : txn) x = item(rng);
    db.Add(std::move(txn));
  }
  return db;
}

TEST(HashTreeCounterTest, SingletonSupports) {
  TransactionDb db(3);
  db.Add({0, 1});
  db.Add({1});
  db.Add({1, 2});
  HashTreeCounter counter(&db);
  CccStats stats;
  EXPECT_EQ(counter.Count({{0}, {1}, {2}}, &stats),
            (std::vector<uint64_t>{1, 3, 1}));
  EXPECT_EQ(stats.sets_counted, 3u);
  EXPECT_EQ(stats.io.scans, 1u);
}

TEST(HashTreeCounterTest, NoDoubleCountingUnderCollisions) {
  // branch = 1 forces every path into the same chain of nodes: all
  // candidates share all leaves reachable along any item choice, the
  // worst case for duplicate leaf visits.
  TransactionDb db(6);
  db.Add({0, 1, 2, 3, 4, 5});
  db.Add({0, 2, 4});
  HashTreeCounter counter(&db, /*branch=*/1, /*leaf_capacity=*/1);
  const std::vector<Itemset> candidates{{0, 2}, {0, 4}, {2, 4}, {1, 3}};
  EXPECT_EQ(counter.Count(candidates, nullptr),
            (std::vector<uint64_t>{2, 2, 2, 1}));
}

TEST(HashTreeCounterTest, TinyLeafCapacityStillExact) {
  TransactionDb db = RandomDb(3, 10, 150);
  HashTreeCounter tiny(&db, /*branch=*/2, /*leaf_capacity=*/1);
  HashTreeCounter big(&db, /*branch=*/64, /*leaf_capacity=*/1024);
  std::vector<Itemset> candidates;
  for (ItemId a = 0; a < 10; ++a) {
    for (ItemId b = a + 1; b < 10; ++b) candidates.push_back({a, b});
  }
  const auto s1 = tiny.Count(candidates, nullptr);
  const auto s2 = big.Count(candidates, nullptr);
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(s1[i], db.CountSupport(candidates[i]));
    EXPECT_EQ(s2[i], s1[i]);
  }
}

class HashTreeCrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(HashTreeCrossCheckTest, MatchesNaiveOnRandomData) {
  TransactionDb db = RandomDb(GetParam(), 15, 250, 10);
  std::mt19937 rng(GetParam() + 77);
  std::uniform_int_distribution<ItemId> item(0, 14);
  for (size_t k = 1; k <= 5; ++k) {
    std::vector<Itemset> candidates;
    std::set<Itemset> seen;
    const size_t want = k == 1 ? 12 : 30;
    int attempts = 0;
    while (candidates.size() < want && attempts++ < 10000) {
      std::vector<ItemId> raw(k);
      for (auto& x : raw) x = item(rng);
      Itemset c = MakeItemset(raw);
      if (c.size() == k && seen.insert(c).second) candidates.push_back(c);
    }
    std::sort(candidates.begin(), candidates.end());
    HashTreeCounter counter(&db);
    const auto supports = counter.Count(candidates, nullptr);
    for (size_t i = 0; i < candidates.size(); ++i) {
      EXPECT_EQ(supports[i], db.CountSupport(candidates[i]))
          << ToString(candidates[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashTreeCrossCheckTest,
                         ::testing::Range(0, 8));

TEST(HashTreeCounterTest, MiningWithHashTreeMatchesBitmap) {
  QuestParams params;
  params.num_transactions = 400;
  params.num_items = 40;
  params.num_patterns = 20;
  params.seed = 5;
  auto generated = GenerateQuestDb(params);
  ASSERT_TRUE(generated.ok());
  TransactionDb db = std::move(generated).value();
  Itemset domain;
  for (ItemId i = 0; i < 40; ++i) domain.push_back(i);

  AprioriOptions tree_options;
  tree_options.counter = CounterKind::kHashTree;
  AprioriOptions bitmap_options;
  bitmap_options.counter = CounterKind::kBitmap;
  auto a = MineFrequent(&db, domain, 10, tree_options);
  auto b = MineFrequent(&db, domain, 10, bitmap_options);
  ASSERT_EQ(a.frequent.size(), b.frequent.size());
  for (size_t i = 0; i < a.frequent.size(); ++i) {
    EXPECT_EQ(a.frequent[i].items, b.frequent[i].items);
    EXPECT_EQ(a.frequent[i].support, b.frequent[i].support);
  }
}

TEST(HashTreeCounterTest, EmptyCandidates) {
  TransactionDb db(3);
  db.Add({0});
  HashTreeCounter counter(&db);
  EXPECT_TRUE(counter.Count({}, nullptr).empty());
}

}  // namespace
}  // namespace cfq
