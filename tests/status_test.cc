#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace cfq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctions) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::NotFound("missing attribute");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing attribute");
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::OutOfRange("boom"); };
  auto wrapper = [&]() -> Status {
    CFQ_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOut) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool ok) -> Result<int> {
    if (ok) return 7;
    return Status::NotFound("nope");
  };
  auto use = [&](bool ok) -> Result<int> {
    CFQ_ASSIGN_OR_RETURN(int v, produce(ok));
    return v * 2;
  };
  ASSERT_TRUE(use(true).ok());
  EXPECT_EQ(use(true).value(), 14);
  EXPECT_EQ(use(false).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace cfq
