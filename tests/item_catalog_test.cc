#include "data/item_catalog.h"

#include <gtest/gtest.h>

namespace cfq {
namespace {

ItemCatalog MakeCatalog() {
  ItemCatalog catalog(4);
  EXPECT_TRUE(catalog.AddNumericAttr("Price", {10, 20, 30, 40}).ok());
  EXPECT_TRUE(catalog
                  .AddCategoricalAttr("Type", {0, 1, 0, 1},
                                      {"Snacks", "Beers"})
                  .ok());
  return catalog;
}

TEST(ItemCatalogTest, NumericValues) {
  const ItemCatalog catalog = MakeCatalog();
  auto v = catalog.Value("Price", 2);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 30);
}

TEST(ItemCatalogTest, CategoricalValues) {
  const ItemCatalog catalog = MakeCatalog();
  auto v = catalog.Value("Type", 1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 1);
  EXPECT_EQ(catalog.ValueName("Type", 1), "Beers");
  EXPECT_EQ(catalog.ValueName("Type", 0), "Snacks");
}

TEST(ItemCatalogTest, ItemPseudoAttribute) {
  const ItemCatalog catalog = MakeCatalog();
  EXPECT_TRUE(catalog.HasAttr(kItemAttr));
  auto v = catalog.Value(kItemAttr, 3);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 3);
}

TEST(ItemCatalogTest, UnknownAttributeIsNotFound) {
  const ItemCatalog catalog = MakeCatalog();
  EXPECT_FALSE(catalog.HasAttr("Weight"));
  EXPECT_EQ(catalog.Value("Weight", 0).status().code(), StatusCode::kNotFound);
}

TEST(ItemCatalogTest, OutOfRangeItem) {
  const ItemCatalog catalog = MakeCatalog();
  EXPECT_EQ(catalog.Value("Price", 4).status().code(),
            StatusCode::kOutOfRange);
}

TEST(ItemCatalogTest, WrongColumnLengthRejected) {
  ItemCatalog catalog(3);
  EXPECT_EQ(catalog.AddNumericAttr("Price", {1, 2}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog.AddCategoricalAttr("Type", {0, 1, 2, 3}).code(),
            StatusCode::kInvalidArgument);
}

TEST(ItemCatalogTest, ReservedNameRejected) {
  ItemCatalog catalog(1);
  EXPECT_EQ(catalog.AddNumericAttr(kItemAttr, {1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog.AddCategoricalAttr(kItemAttr, {0}).code(),
            StatusCode::kInvalidArgument);
}

TEST(ItemCatalogTest, ReplacingColumnChangesKind) {
  ItemCatalog catalog(2);
  ASSERT_TRUE(catalog.AddNumericAttr("X", {1.5, 2.5}).ok());
  ASSERT_TRUE(catalog.AddCategoricalAttr("X", {7, 8}).ok());
  auto v = catalog.Value("X", 0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 7);
}

TEST(ItemCatalogTest, ProjectPreservesDuplicatesAndOrder) {
  ItemCatalog catalog(3);
  ASSERT_TRUE(catalog.AddNumericAttr("P", {5, 5, 9}).ok());
  auto proj = catalog.Project("P", {0, 1, 2});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj.value(), (std::vector<AttrValue>{5, 5, 9}));
}

TEST(ItemCatalogTest, ProjectEmptySet) {
  const ItemCatalog catalog = MakeCatalog();
  auto proj = catalog.Project("Price", {});
  ASSERT_TRUE(proj.ok());
  EXPECT_TRUE(proj.value().empty());
}

TEST(ItemCatalogTest, ProjectOutOfRange) {
  const ItemCatalog catalog = MakeCatalog();
  EXPECT_FALSE(catalog.Project("Price", {9}).ok());
}

TEST(ItemCatalogTest, SelectRange) {
  const ItemCatalog catalog = MakeCatalog();
  auto sel = catalog.SelectRange("Price", 15, 35);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value(), (Itemset{1, 2}));
  auto all = catalog.SelectRange("Price", 0, 100);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), (Itemset{0, 1, 2, 3}));
  auto none = catalog.SelectRange("Price", 99, 100);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

TEST(ItemCatalogTest, ValueNameFallsBackToNumber) {
  const ItemCatalog catalog = MakeCatalog();
  EXPECT_EQ(catalog.ValueName("Price", 30), "30");
  EXPECT_EQ(catalog.ValueName("Type", 9), "9");  // Unnamed code.
}

}  // namespace
}  // namespace cfq
