#include "core/jmax.h"

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "data/transaction_db.h"

namespace cfq {
namespace {

std::vector<FrequentSet> OfSize(const std::vector<FrequentSet>& sets,
                                size_t k) {
  std::vector<FrequentSet> out;
  for (const FrequentSet& f : sets) {
    if (f.items.size() == k) out.push_back(f);
  }
  return out;
}

// Random database + brute-force frequent sets for property checks.
struct Instance {
  TransactionDb db{0};
  ItemCatalog catalog{0};
  Itemset domain;
  std::vector<FrequentSet> frequent;
};

Instance MakeInstance(int seed, uint64_t min_support) {
  Instance inst;
  const size_t n = 9;
  inst.db = TransactionDb(n);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> len(2, 7);
  std::uniform_int_distribution<ItemId> item(0, n - 1);
  for (int t = 0; t < 80; ++t) {
    std::vector<ItemId> txn(static_cast<size_t>(len(rng)));
    for (auto& x : txn) x = item(rng);
    inst.db.Add(std::move(txn));
  }
  inst.catalog = ItemCatalog(n);
  std::vector<AttrValue> values(n);
  std::uniform_int_distribution<int> value(1, 20);
  for (auto& v : values) v = value(rng);
  EXPECT_TRUE(inst.catalog.AddNumericAttr("B", values).ok());
  for (ItemId i = 0; i < n; ++i) inst.domain.push_back(i);
  inst.frequent = MineFrequentBruteForce(inst.db, inst.domain, min_support);
  return inst;
}

TEST(JmaxTest, EmptyLevelGivesMinusOne) {
  const JmaxBound bound = ComputeJmax({}, 3);
  EXPECT_EQ(bound.jmax, -1);
  EXPECT_TRUE(bound.elements.empty());
}

TEST(JmaxTest, SingleSetAllowsNoGrowth) {
  // One frequent 2-set: each element appears once; J = 0 (a set of size
  // 3 containing it would need C(2,1)=2 frequent 2-subsets).
  const std::vector<FrequentSet> level{{Itemset{1, 2}, 5}};
  const JmaxBound bound = ComputeJmax(level, 2);
  EXPECT_EQ(bound.jmax, 0);
  EXPECT_EQ(bound.elements, (std::vector<ItemId>{1, 2}));
}

TEST(JmaxTest, PaperExampleSeventeenSetsOfSizeFour) {
  // Figure 5's example: an element in 17 frequent 4-sets has J = 2.
  std::vector<FrequentSet> level;
  // Build 17 distinct 4-sets all containing item 0.
  for (ItemId a = 1; level.size() < 17; ++a) {
    for (ItemId b = a + 1; b <= a + 4 && level.size() < 17; ++b) {
      level.push_back(FrequentSet{MakeItemset({0, a, b, b + 10}), 3});
    }
  }
  const JmaxBound bound = ComputeJmax(level, 4);
  // Item 0 appears in all 17 sets: J_0 = 2.
  auto it = std::find(bound.elements.begin(), bound.elements.end(), 0u);
  ASSERT_NE(it, bound.elements.end());
  EXPECT_EQ(bound.j_per_element[static_cast<size_t>(
                it - bound.elements.begin())],
            2);
}

// Property (Figure 5's purpose): k + Jmax^k bounds the size of the
// largest frequent set.
class JmaxBoundPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(JmaxBoundPropertyTest, BoundsLargestFrequentSet) {
  const Instance inst = MakeInstance(GetParam(), 4);
  size_t largest = 0;
  for (const FrequentSet& f : inst.frequent) {
    largest = std::max(largest, f.items.size());
  }
  for (size_t k = 2; k <= largest; ++k) {
    const auto level = OfSize(inst.frequent, k);
    if (level.empty()) continue;
    const JmaxBound bound = ComputeJmax(level, k);
    ASSERT_GE(bound.jmax, 0);
    EXPECT_GE(k + static_cast<size_t>(bound.jmax), largest)
        << "k=" << k << " jmax=" << bound.jmax << " largest=" << largest;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JmaxBoundPropertyTest, ::testing::Range(0, 10));

// Lemma 5: the per-element bounds shrink as k increases (where the
// element still appears).
class JmaxLemma5Test : public ::testing::TestWithParam<int> {};

TEST_P(JmaxLemma5Test, BoundsShrinkAcrossLevels) {
  const Instance inst = MakeInstance(GetParam() + 50, 3);
  size_t largest = 0;
  for (const FrequentSet& f : inst.frequent) {
    largest = std::max(largest, f.items.size());
  }
  for (size_t k = 2; k + 1 <= largest; ++k) {
    const auto level_k = OfSize(inst.frequent, k);
    const auto level_k1 = OfSize(inst.frequent, k + 1);
    if (level_k.empty() || level_k1.empty()) continue;
    const JmaxBound a = ComputeJmax(level_k, k);
    const JmaxBound b = ComputeJmax(level_k1, k + 1);
    // Compare k + J (the implied size bound): it must not grow.
    EXPECT_LE(k + 1 + static_cast<size_t>(b.jmax),
              k + static_cast<size_t>(a.jmax) + 1)
        << "k=" << k;
    // Lemma 5 as stated: J^{k+1} < J^k elementwise where defined and
    // J^k > 0.
    for (size_t e = 0; e < b.elements.size(); ++e) {
      const ItemId item = b.elements[e];
      auto it = std::find(a.elements.begin(), a.elements.end(), item);
      if (it == a.elements.end()) continue;
      const int64_t jk =
          a.j_per_element[static_cast<size_t>(it - a.elements.begin())];
      const int64_t jk1 = b.j_per_element[e];
      if (jk > 0) {
        EXPECT_LT(jk1, jk) << "item " << item << " k=" << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JmaxLemma5Test, ::testing::Range(0, 10));

// Lemma 6: V^k bounds sum(T.B) for every frequent T-set of size >= k.
class VkSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(VkSoundnessTest, VkBoundsAllLargerFrequentSums) {
  const Instance inst = MakeInstance(GetParam() + 100, 4);
  for (size_t k = 2; k <= 4; ++k) {
    const auto level = OfSize(inst.frequent, k);
    if (level.empty()) continue;
    auto vk = ComputeVk(level, k, "B", inst.catalog);
    ASSERT_TRUE(vk.ok());
    for (const FrequentSet& f : inst.frequent) {
      if (f.items.size() < k) continue;
      double sum = 0;
      for (ItemId i : f.items) sum += inst.catalog.ValueUnchecked("B", i);
      EXPECT_LE(sum, vk.value() + 1e-9)
          << "k=" << k << " set=" << ToString(f.items);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VkSoundnessTest, ::testing::Range(0, 12));

// Lemma 7: the V^k series is non-increasing.
class VkMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(VkMonotoneTest, SeriesDoesNotIncrease) {
  const Instance inst = MakeInstance(GetParam() + 150, 3);
  double previous = std::numeric_limits<double>::infinity();
  for (size_t k = 2; k <= 5; ++k) {
    const auto level = OfSize(inst.frequent, k);
    if (level.empty()) break;
    auto vk = ComputeVk(level, k, "B", inst.catalog);
    ASSERT_TRUE(vk.ok());
    EXPECT_LE(vk.value(), previous + 1e-9) << "k=" << k;
    previous = vk.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VkMonotoneTest, ::testing::Range(0, 10));

// Per-element J variant is at least as tight as the paper's global Jmax.
class VkPerElementTest : public ::testing::TestWithParam<int> {};

TEST_P(VkPerElementTest, PerElementNoLooserAndStillSound) {
  const Instance inst = MakeInstance(GetParam() + 200, 4);
  JmaxOptions per_element;
  per_element.per_element_j = true;
  for (size_t k = 2; k <= 3; ++k) {
    const auto level = OfSize(inst.frequent, k);
    if (level.empty()) continue;
    auto paper = ComputeVk(level, k, "B", inst.catalog);
    auto tight = ComputeVk(level, k, "B", inst.catalog, per_element);
    ASSERT_TRUE(paper.ok());
    ASSERT_TRUE(tight.ok());
    EXPECT_LE(tight.value(), paper.value() + 1e-9);
    for (const FrequentSet& f : inst.frequent) {
      if (f.items.size() < k) continue;
      double sum = 0;
      for (ItemId i : f.items) sum += inst.catalog.ValueUnchecked("B", i);
      EXPECT_LE(sum, tight.value() + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VkPerElementTest, ::testing::Range(0, 8));

TEST(VkTest, EmptyLevelGivesZero) {
  ItemCatalog catalog(2);
  ASSERT_TRUE(catalog.AddNumericAttr("B", {1, 2}).ok());
  auto vk = ComputeVk({}, 3, "B", catalog);
  ASSERT_TRUE(vk.ok());
  EXPECT_EQ(vk.value(), 0.0);
}

TEST(VkTest, UnknownAttributeFails) {
  ItemCatalog catalog(2);
  EXPECT_FALSE(ComputeVk({{Itemset{0, 1}, 3}}, 2, "B", catalog).ok());
}

TEST(VkTest, WorkedExampleMatchesFigure6Arithmetic) {
  // Three frequent 2-sets over items {0,1,2} with B = {10, 20, 30}:
  // {0,1}, {0,2}, {1,2}. Each element is in two 2-sets: J = 1
  // (C(2,1)=2 needed for j=1; C(3,1)=3 > 2 for j=2).
  ItemCatalog catalog(3);
  ASSERT_TRUE(catalog.AddNumericAttr("B", {10, 20, 30}).ok());
  const std::vector<FrequentSet> level{
      {Itemset{0, 1}, 3}, {Itemset{0, 2}, 3}, {Itemset{1, 2}, 3}};
  const JmaxBound bound = ComputeJmax(level, 2);
  EXPECT_EQ(bound.jmax, 1);
  // Item 0: best 2-set {0,2} (sum 40), E={1}, MaxSum = 40+20 = 60.
  // Item 1: best {1,2} (sum 50), E={0}, 50+10 = 60.
  // Item 2: best {1,2} (sum 50), E={0}, 50+10 = 60.  V^2 = 60.
  auto vk = ComputeVk(level, 2, "B", catalog);
  ASSERT_TRUE(vk.ok());
  EXPECT_EQ(vk.value(), 60);
}

}  // namespace
}  // namespace cfq
