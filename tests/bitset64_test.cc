#include "common/bitset64.h"

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd.h"

namespace cfq {
namespace {

TEST(Bitset64Test, StartsCleared) {
  Bitset64 b(100);
  EXPECT_EQ(b.num_bits(), 100u);
  EXPECT_EQ(b.Count(), 0u);
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(Bitset64Test, SetClearTest) {
  Bitset64 b(70);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(69);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(69));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(Bitset64Test, AndWith) {
  Bitset64 a(130), b(130);
  a.Set(0);
  a.Set(64);
  a.Set(128);
  b.Set(64);
  b.Set(129);
  a.AndWith(b);
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_TRUE(a.Test(64));
}

TEST(Bitset64Test, AndCountMatchesAndInto) {
  Bitset64 a(200), b(200), out;
  for (size_t i = 0; i < 200; i += 3) a.Set(i);
  for (size_t i = 0; i < 200; i += 5) b.Set(i);
  const size_t count = Bitset64::AndCount(a, b);
  const size_t into = Bitset64::AndInto(a, b, &out);
  EXPECT_EQ(count, into);
  EXPECT_EQ(out.Count(), count);
  // Multiples of 15 in [0, 200): 0, 15, ..., 195.
  EXPECT_EQ(count, 14u);
}

TEST(Bitset64Test, EqualityOperator) {
  Bitset64 a(10), b(10), c(11);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  a.Set(3);
  EXPECT_FALSE(a == b);
  b.Set(3);
  EXPECT_EQ(a, b);
}

TEST(Bitset64Test, ZeroBits) {
  Bitset64 b(0);
  EXPECT_EQ(b.Count(), 0u);
  Bitset64 other(0), out;
  EXPECT_EQ(Bitset64::AndCount(b, other), 0u);
  EXPECT_EQ(Bitset64::AndInto(b, other, &out), 0u);
}

class Bitset64PropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(Bitset64PropertyTest, MatchesReferenceVectorBool) {
  const size_t n = GetParam();
  std::mt19937 rng(n);
  std::bernoulli_distribution flip(0.3);
  Bitset64 a(n), b(n);
  std::vector<bool> ra(n), rb(n);
  for (size_t i = 0; i < n; ++i) {
    if (flip(rng)) {
      a.Set(i);
      ra[i] = true;
    }
    if (flip(rng)) {
      b.Set(i);
      rb[i] = true;
    }
  }
  size_t expected_and = 0, expected_a = 0;
  for (size_t i = 0; i < n; ++i) {
    expected_and += (ra[i] && rb[i]) ? 1 : 0;
    expected_a += ra[i] ? 1 : 0;
  }
  EXPECT_EQ(a.Count(), expected_a);
  EXPECT_EQ(Bitset64::AndCount(a, b), expected_and);
  Bitset64 out;
  EXPECT_EQ(Bitset64::AndInto(a, b, &out), expected_and);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out.Test(i), ra[i] && rb[i]) << "bit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Bitset64PropertyTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 1000));

// --- Tail invariant and kernel cross-checks --------------------------

// All bits at positions >= num_bits() in the last word must be zero
// (the header's documented invariant; the kernels count unmasked).
void ExpectZeroTail(const Bitset64& b) {
  if (b.num_bits() % 64 == 0 || b.num_words() == 0) return;
  const uint64_t tail_mask = ~((uint64_t{1} << (b.num_bits() % 64)) - 1);
  EXPECT_EQ(b.words()[b.num_words() - 1] & tail_mask, 0u)
      << "stale tail bits at num_bits=" << b.num_bits();
}

Bitset64 RandomBitset(size_t n, uint32_t seed, double density = 0.5) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution flip(density);
  Bitset64 b(n);
  for (size_t i = 0; i < n; ++i) {
    if (flip(rng)) b.Set(i);
  }
  return b;
}

TEST(Bitset64Test, ResizeShrinkThenGrowClearsAbandonedBits) {
  Bitset64 b(130);
  for (size_t i = 0; i < 130; ++i) b.Set(i);
  b.Resize(70);
  ExpectZeroTail(b);
  EXPECT_EQ(b.Count(), 70u);
  b.Resize(130);
  ExpectZeroTail(b);
  // The bits dropped by the shrink must not resurface.
  EXPECT_EQ(b.Count(), 70u);
  for (size_t i = 70; i < 130; ++i) EXPECT_FALSE(b.Test(i)) << "bit " << i;
}

TEST(Bitset64Test, ResizeToZeroAndBack) {
  Bitset64 b(65);
  b.Set(64);
  b.Resize(0);
  EXPECT_EQ(b.Count(), 0u);
  b.Resize(65);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_FALSE(b.Test(64));
}

TEST(Bitset64Test, AndCountManyMatchesPairwise) {
  const size_t n = 517;
  const Bitset64 base = RandomBitset(n, 1);
  std::vector<Bitset64> others;
  std::vector<const Bitset64*> ptrs;
  for (uint32_t j = 0; j < 19; ++j) {
    others.push_back(RandomBitset(n, 100 + j));
  }
  for (const Bitset64& o : others) ptrs.push_back(&o);
  std::vector<uint64_t> counts(ptrs.size(), ~uint64_t{0});
  Bitset64::AndCountMany(base, ptrs.data(), ptrs.size(), counts.data());
  for (size_t j = 0; j < ptrs.size(); ++j) {
    EXPECT_EQ(counts[j], Bitset64::AndCount(base, others[j])) << "other " << j;
  }
}

TEST(Bitset64Test, CountRangeMatchesReferenceLoop) {
  const size_t n = 300;
  const Bitset64 a = RandomBitset(n, 2);
  const Bitset64 b = RandomBitset(n, 3);
  for (size_t begin : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                       size_t{65}, size_t{190}, size_t{299}, size_t{300}}) {
    for (size_t end : {begin, begin + 1, size_t{64}, size_t{128}, size_t{191},
                       size_t{300}, size_t{1000}}) {
      if (end < begin) continue;
      size_t expect_count = 0, expect_and = 0;
      for (size_t i = begin; i < std::min(end, n); ++i) {
        expect_count += a.Test(i) ? 1 : 0;
        expect_and += (a.Test(i) && b.Test(i)) ? 1 : 0;
      }
      EXPECT_EQ(a.CountRange(begin, end), expect_count)
          << "[" << begin << ", " << end << ")";
      EXPECT_EQ(Bitset64::AndCountRange(a, b, begin, end), expect_and)
          << "[" << begin << ", " << end << ")";
    }
  }
}

// Sweeps every size 0..256 plus large odd stragglers, checking the
// active (possibly vectorized) kernel against a bit-at-a-time reference
// AND against the pinned scalar kernel. This is the identity contract:
// every kernel computes the same exact integers.
TEST(Bitset64KernelTest, ExhaustiveSizeSweepScalarVsActive) {
  const simd::Kernel active = simd::ActiveKernel();
  std::vector<size_t> sizes;
  for (size_t n = 0; n <= 256; ++n) sizes.push_back(n);
  for (size_t n : {size_t{1000}, size_t{4097}, size_t{10007}}) {
    sizes.push_back(n);
  }
  for (size_t n : sizes) {
    const Bitset64 a = RandomBitset(n, static_cast<uint32_t>(n) * 2 + 1);
    const Bitset64 b = RandomBitset(n, static_cast<uint32_t>(n) * 2 + 2);
    ExpectZeroTail(a);
    ExpectZeroTail(b);

    size_t ref_a = 0, ref_and = 0;
    for (size_t i = 0; i < n; ++i) {
      ref_a += a.Test(i) ? 1 : 0;
      ref_and += (a.Test(i) && b.Test(i)) ? 1 : 0;
    }

    ASSERT_TRUE(simd::SetKernel(simd::KernelName(active)));
    const size_t active_count = a.Count();
    const size_t active_and = Bitset64::AndCount(a, b);
    Bitset64 active_out;
    const size_t active_into = Bitset64::AndInto(a, b, &active_out);

    ASSERT_TRUE(simd::SetKernel("scalar"));
    const size_t scalar_count = a.Count();
    const size_t scalar_and = Bitset64::AndCount(a, b);
    Bitset64 scalar_out;
    const size_t scalar_into = Bitset64::AndInto(a, b, &scalar_out);
    ASSERT_TRUE(simd::SetKernel(simd::KernelName(active)));

    EXPECT_EQ(active_count, ref_a) << "n=" << n;
    EXPECT_EQ(active_and, ref_and) << "n=" << n;
    EXPECT_EQ(active_into, ref_and) << "n=" << n;
    EXPECT_EQ(scalar_count, active_count) << "n=" << n;
    EXPECT_EQ(scalar_and, active_and) << "n=" << n;
    EXPECT_EQ(scalar_into, active_into) << "n=" << n;
    EXPECT_EQ(scalar_out, active_out) << "n=" << n;
  }
}

TEST(Bitset64KernelTest, AndCountManyScalarVsActive) {
  const simd::Kernel active = simd::ActiveKernel();
  for (size_t n : {size_t{0}, size_t{1}, size_t{64}, size_t{65}, size_t{255},
                   size_t{256}, size_t{1000}, size_t{4097}}) {
    const Bitset64 base = RandomBitset(n, static_cast<uint32_t>(n) + 7);
    std::vector<Bitset64> others;
    std::vector<const Bitset64*> ptrs;
    for (uint32_t j = 0; j < 9; ++j) {
      others.push_back(RandomBitset(n, static_cast<uint32_t>(n) * 10 + j));
    }
    for (const Bitset64& o : others) ptrs.push_back(&o);

    std::vector<uint64_t> active_counts(ptrs.size(), 0);
    ASSERT_TRUE(simd::SetKernel(simd::KernelName(active)));
    Bitset64::AndCountMany(base, ptrs.data(), ptrs.size(),
                           active_counts.data());

    std::vector<uint64_t> scalar_counts(ptrs.size(), 0);
    ASSERT_TRUE(simd::SetKernel("scalar"));
    Bitset64::AndCountMany(base, ptrs.data(), ptrs.size(),
                           scalar_counts.data());
    ASSERT_TRUE(simd::SetKernel(simd::KernelName(active)));

    EXPECT_EQ(active_counts, scalar_counts) << "n=" << n;
    for (size_t j = 0; j < ptrs.size(); ++j) {
      EXPECT_EQ(active_counts[j], Bitset64::AndCount(base, others[j]))
          << "n=" << n << " other " << j;
    }
  }
}

}  // namespace
}  // namespace cfq
