#include "common/bitset64.h"

#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace cfq {
namespace {

TEST(Bitset64Test, StartsCleared) {
  Bitset64 b(100);
  EXPECT_EQ(b.num_bits(), 100u);
  EXPECT_EQ(b.Count(), 0u);
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(Bitset64Test, SetClearTest) {
  Bitset64 b(70);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(69);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(69));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(Bitset64Test, AndWith) {
  Bitset64 a(130), b(130);
  a.Set(0);
  a.Set(64);
  a.Set(128);
  b.Set(64);
  b.Set(129);
  a.AndWith(b);
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_TRUE(a.Test(64));
}

TEST(Bitset64Test, AndCountMatchesAndInto) {
  Bitset64 a(200), b(200), out;
  for (size_t i = 0; i < 200; i += 3) a.Set(i);
  for (size_t i = 0; i < 200; i += 5) b.Set(i);
  const size_t count = Bitset64::AndCount(a, b);
  const size_t into = Bitset64::AndInto(a, b, &out);
  EXPECT_EQ(count, into);
  EXPECT_EQ(out.Count(), count);
  // Multiples of 15 in [0, 200): 0, 15, ..., 195.
  EXPECT_EQ(count, 14u);
}

TEST(Bitset64Test, EqualityOperator) {
  Bitset64 a(10), b(10), c(11);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  a.Set(3);
  EXPECT_FALSE(a == b);
  b.Set(3);
  EXPECT_EQ(a, b);
}

TEST(Bitset64Test, ZeroBits) {
  Bitset64 b(0);
  EXPECT_EQ(b.Count(), 0u);
  Bitset64 other(0), out;
  EXPECT_EQ(Bitset64::AndCount(b, other), 0u);
  EXPECT_EQ(Bitset64::AndInto(b, other, &out), 0u);
}

class Bitset64PropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(Bitset64PropertyTest, MatchesReferenceVectorBool) {
  const size_t n = GetParam();
  std::mt19937 rng(n);
  std::bernoulli_distribution flip(0.3);
  Bitset64 a(n), b(n);
  std::vector<bool> ra(n), rb(n);
  for (size_t i = 0; i < n; ++i) {
    if (flip(rng)) {
      a.Set(i);
      ra[i] = true;
    }
    if (flip(rng)) {
      b.Set(i);
      rb[i] = true;
    }
  }
  size_t expected_and = 0, expected_a = 0;
  for (size_t i = 0; i < n; ++i) {
    expected_and += (ra[i] && rb[i]) ? 1 : 0;
    expected_a += ra[i] ? 1 : 0;
  }
  EXPECT_EQ(a.Count(), expected_a);
  EXPECT_EQ(Bitset64::AndCount(a, b), expected_and);
  Bitset64 out;
  EXPECT_EQ(Bitset64::AndInto(a, b, &out), expected_and);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out.Test(i), ra[i] && rb[i]) << "bit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Bitset64PropertyTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 1000));

}  // namespace
}  // namespace cfq
