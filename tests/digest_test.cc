// The result digest (obs/digest.h, core/analyze.h DigestCfqResult):
// FNV-1a-64 over the canonically ordered answer rows. Covers the hash
// primitive against the published FNV-1a test vectors, the definition
// invariants (row order independence, '\n' framing, hex rendering),
// and the identity that makes the digest useful: the same workload
// digests identically across all three counter backends, across
// thread counts, and with the scalar counting kernel pinned versus
// the build's default dispatch.

#include "obs/digest.h"

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd.h"
#include "core/analyze.h"
#include "core/executor.h"
#include "mining/counter.h"

namespace cfq {
namespace {

// --- FNV-1a primitive -------------------------------------------------

TEST(Fnv1aTest, MatchesPublishedVectors) {
  // The canonical FNV-1a 64-bit test vectors (Fowler/Noll/Vo).
  obs::Fnv1a empty;
  EXPECT_EQ(empty.digest(), 0xcbf29ce484222325ULL);

  obs::Fnv1a a;
  a.Update("a");
  EXPECT_EQ(a.digest(), 0xaf63dc4c8601ec8cULL);

  obs::Fnv1a foobar;
  foobar.Update("foobar");
  EXPECT_EQ(foobar.digest(), 0x85944171f73967e8ULL);
}

TEST(Fnv1aTest, IncrementalUpdatesMatchOneShot) {
  obs::Fnv1a split;
  split.Update("foo");
  split.Update("bar");
  obs::Fnv1a whole;
  whole.Update("foobar");
  EXPECT_EQ(split.digest(), whole.digest());
}

TEST(DigestHexTest, SixteenLowercaseHexDigits) {
  EXPECT_EQ(obs::DigestHex(0xcbf29ce484222325ULL), "cbf29ce484222325");
  EXPECT_EQ(obs::DigestHex(0x1ULL), "0000000000000001");
}

// --- Row digest definition -------------------------------------------

TEST(RowsDigestTest, EmptyResultIsOffsetBasis) {
  EXPECT_EQ(obs::DigestRows({}), 0xcbf29ce484222325ULL);
  EXPECT_EQ(obs::RowsDigestHex({}), "cbf29ce484222325");
}

TEST(RowsDigestTest, OrderIndependent) {
  const std::vector<std::string> forward = {"1 2;3;10;20", "4;5 6;7;8"};
  const std::vector<std::string> reversed = {"4;5 6;7;8", "1 2;3;10;20"};
  EXPECT_EQ(obs::DigestRows(forward), obs::DigestRows(reversed));
}

TEST(RowsDigestTest, SensitiveToContentAndFraming) {
  EXPECT_NE(obs::DigestRows({"a", "b"}), obs::DigestRows({"a", "c"}));
  // '\n' framing: {"ab"} must not collide with {"a", "b"}.
  EXPECT_NE(obs::DigestRows({"ab"}), obs::DigestRows({"a", "b"}));
  // A duplicated row changes the digest (the answer is a multiset of
  // rendered rows, even though real answers never repeat).
  EXPECT_NE(obs::DigestRows({"a"}), obs::DigestRows({"a", "a"}));
}

// --- Cross-backend / cross-thread / cross-kernel identity ------------

struct Instance {
  TransactionDb db{0};
  ItemCatalog catalog{0};
  CfqQuery query;
};

// Big enough that the counters shard and the SIMD kernels engage, with
// both a 1-var and a 2-var constraint in play.
Instance MakeInstance(int seed) {
  Instance inst;
  const size_t n = 14;
  const size_t num_txns = 1200;
  inst.db = TransactionDb(n);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> len(1, 7);
  std::uniform_int_distribution<ItemId> item(0, static_cast<ItemId>(n - 1));
  for (size_t t = 0; t < num_txns; ++t) {
    std::vector<ItemId> txn(static_cast<size_t>(len(rng)));
    for (auto& x : txn) x = item(rng);
    inst.db.Add(std::move(txn));
  }
  inst.catalog = ItemCatalog(n);
  std::vector<AttrValue> price(n);
  std::uniform_int_distribution<int> price_dist(1, 9);
  for (size_t i = 0; i < n; ++i) price[i] = price_dist(rng);
  EXPECT_TRUE(inst.catalog.AddNumericAttr("Price", price).ok());
  for (ItemId i = 0; i < n; ++i) {
    inst.query.s_domain.push_back(i);
    inst.query.t_domain.push_back(i);
  }
  inst.query.min_support_s = num_txns / 25;
  inst.query.min_support_t = num_txns / 12;
  inst.query.two_var.push_back(
      MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price"));
  return inst;
}

std::string DigestWith(Instance* inst, CounterKind counter, size_t threads) {
  PlanOptions options;
  options.counter = counter;
  options.threads = threads;
  auto result = ExecuteOptimized(&inst->db, inst->catalog, inst->query,
                                 options);
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return "";
  return DigestCfqResult(result.value());
}

TEST(DigestIdentityTest, StableAcrossBackendsThreadsAndKernels) {
  Instance inst = MakeInstance(1234);
  const std::string baseline =
      DigestWith(&inst, CounterKind::kBitmap, /*threads=*/1);
  ASSERT_EQ(baseline.size(), 16u);
  ASSERT_NE(baseline, "cbf29ce484222325") << "workload produced no answers";

  const CounterKind backends[] = {CounterKind::kBitmap, CounterKind::kHash,
                                  CounterKind::kHashTree};
  const size_t thread_counts[] = {1, 8};
  for (CounterKind backend : backends) {
    for (size_t threads : thread_counts) {
      EXPECT_EQ(DigestWith(&inst, backend, threads), baseline)
          << "backend " << static_cast<int>(backend) << " threads "
          << threads;
    }
  }

  // Scalar kernel pinned vs whatever this build/CPU dispatched to.
  const std::string default_kernel =
      simd::KernelName(simd::ActiveKernel());
  ASSERT_TRUE(simd::SetKernel("scalar"));
  for (CounterKind backend : backends) {
    EXPECT_EQ(DigestWith(&inst, backend, /*threads=*/8), baseline)
        << "scalar kernel, backend " << static_cast<int>(backend);
  }
  ASSERT_TRUE(simd::SetKernel(default_kernel.c_str()));
}

// The digest reaches StrategyStats through the rendering surfaces and
// survives MergeFrom (first non-empty wins).
TEST(DigestIdentityTest, MergeFromKeepsFirstDigest) {
  StrategyStats a;
  a.result_digest = "aaaaaaaaaaaaaaaa";
  StrategyStats b;
  b.result_digest = "bbbbbbbbbbbbbbbb";
  a.MergeFrom(b);
  EXPECT_EQ(a.result_digest, "aaaaaaaaaaaaaaaa");
  StrategyStats c;
  c.MergeFrom(b);
  EXPECT_EQ(c.result_digest, "bbbbbbbbbbbbbbbb");
}

}  // namespace
}  // namespace cfq
