#include "rules/rule_gen.h"

#include <gtest/gtest.h>

namespace cfq {
namespace {

// Hand-checkable database:
//   t0 {0,1,2}  t1 {0,1}  t2 {0,2}  t3 {1,2}  t4 {0,1,2}
TransactionDb MakeDb() {
  TransactionDb db(3);
  db.Add({0, 1, 2});
  db.Add({0, 1});
  db.Add({0, 2});
  db.Add({1, 2});
  db.Add({0, 1, 2});
  return db;
}

// A CfqResult with s_sets {0}, t_sets {1}, {2}, all pairs.
CfqResult MakeResult() {
  CfqResult result;
  result.s_sets.push_back(FrequentSet{{0}, 4});
  result.t_sets.push_back(FrequentSet{{1}, 4});
  result.t_sets.push_back(FrequentSet{{2}, 4});
  result.pairs = {{0, 0}, {0, 1}};
  return result;
}

TEST(RulesTest, HandComputedMeasures) {
  TransactionDb db = MakeDb();
  const CfqResult result = MakeResult();
  auto rules = FormRules(&db, result);
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 2u);
  // {0} => {1}: support({0,1}) = 3, conf = 3/4, lift = (3/4)/(4/5).
  const AssociationRule& r = (*rules)[0];
  EXPECT_EQ(r.antecedent, Itemset{0});
  EXPECT_EQ(r.support_union, 3u);
  EXPECT_DOUBLE_EQ(r.confidence, 0.75);
  EXPECT_DOUBLE_EQ(r.support, 3.0 / 5);
  EXPECT_DOUBLE_EQ(r.lift, 0.75 / (4.0 / 5));
}

TEST(RulesTest, SortedByConfidenceDescending) {
  TransactionDb db = MakeDb();
  CfqResult result = MakeResult();
  // Make {0} => {2} weaker: support({0,2}) = 3 as well, so add a
  // stronger pair via t_sets[0] with smaller consequent support.
  auto rules = FormRules(&db, result);
  ASSERT_TRUE(rules.ok());
  for (size_t i = 1; i < rules->size(); ++i) {
    EXPECT_GE((*rules)[i - 1].confidence, (*rules)[i].confidence);
  }
}

TEST(RulesTest, MinConfidenceFilters) {
  TransactionDb db = MakeDb();
  const CfqResult result = MakeResult();
  RuleOptions options;
  options.min_confidence = 0.9;
  auto rules = FormRules(&db, result, options);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());  // Both rules have conf 0.75.
}

TEST(RulesTest, MinLiftFilters) {
  TransactionDb db = MakeDb();
  const CfqResult result = MakeResult();
  RuleOptions options;
  options.min_lift = 1.0;
  auto rules = FormRules(&db, result, options);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());  // Lift is 0.9375 for both.
}

TEST(RulesTest, TopKTruncates) {
  TransactionDb db = MakeDb();
  const CfqResult result = MakeResult();
  RuleOptions options;
  options.top_k = 1;
  auto rules = FormRules(&db, result, options);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 1u);
}

TEST(RulesTest, OverlappingPairsSkippedByDefault) {
  TransactionDb db = MakeDb();
  CfqResult result;
  result.s_sets.push_back(FrequentSet{{0, 1}, 3});
  result.t_sets.push_back(FrequentSet{{1, 2}, 3});
  result.pairs = {{0, 0}};  // S and T share item 1.
  auto rules = FormRules(&db, result);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());

  RuleOptions allow;
  allow.require_disjoint = false;
  auto overlapping = FormRules(&db, result, allow);
  ASSERT_TRUE(overlapping.ok());
  ASSERT_EQ(overlapping->size(), 1u);
  // Union {0,1,2} has support 2.
  EXPECT_EQ((*overlapping)[0].support_union, 2u);
}

TEST(RulesTest, CrossProductResultExpandsAllPairs) {
  TransactionDb db = MakeDb();
  CfqResult result = MakeResult();
  result.pairs.clear();
  result.cross_product = true;
  auto rules = FormRules(&db, result);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 2u);  // 1 s_set x 2 t_sets.
}

TEST(RulesTest, EmptyDatabaseIsError) {
  TransactionDb db(3);
  const CfqResult result = MakeResult();
  EXPECT_FALSE(FormRules(&db, result).ok());
}

TEST(RulesTest, EmptyResultYieldsNoRules) {
  TransactionDb db = MakeDb();
  CfqResult result;
  auto rules = FormRules(&db, result);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
}

TEST(RulesTest, ToStringRendering) {
  AssociationRule rule;
  rule.antecedent = {1};
  rule.consequent = {2};
  rule.confidence = 0.5;
  rule.lift = 2;
  const std::string text = ToString(rule);
  EXPECT_NE(text.find("{1} => {2}"), std::string::npos);
  EXPECT_NE(text.find("conf 0.5"), std::string::npos);
}

TEST(RulesTest, UnionCountsMatchDbAcrossBackends) {
  TransactionDb db = MakeDb();
  const CfqResult result = MakeResult();
  for (CounterKind kind :
       {CounterKind::kHash, CounterKind::kHashTree, CounterKind::kBitmap}) {
    RuleOptions options;
    options.counter = kind;
    auto rules = FormRules(&db, result, options);
    ASSERT_TRUE(rules.ok());
    for (const AssociationRule& r : *rules) {
      EXPECT_EQ(r.support_union,
                db.CountSupport(Union(r.antecedent, r.consequent)));
    }
  }
}

}  // namespace
}  // namespace cfq
