// Workload capture and replay: the AuditRecord JSONL codec, the
// AuditLog writer (rotation, restart numbering, flush), the reader's
// malformed-line tolerance, and the QueryService integration — every
// served query (success or error) lands in the log with the same
// digest the response carried, and BeginDrain flushes it.

#include "server/audit_log.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "server/json.h"
#include "server/service.h"

namespace cfq::server {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "cfq_audit_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

AuditRecord SampleRecord() {
  AuditRecord r;
  r.ts_us = 1700000000123456;
  r.trace_id = 42;
  r.client_trace_id = "client-7";
  r.dataset = "demo";
  r.generation = 3;
  r.strategy = "optimized";
  r.status = "OK";
  r.source = "cold";
  r.cached = false;
  r.query = "{(S, T) | freq(S, 30) & freq(T, 30)}";
  r.digest = "8d6025c924fe06c3";
  r.rows = 10;
  r.num_pairs = 25;
  r.max_rows = 10;
  r.deadline_ms = 5000;
  r.elapsed_seconds = 0.125;
  r.phases["parse"] = 0.001;
  r.phases["execute"] = 0.1;
  return r;
}

// --- AuditRecord codec ------------------------------------------------

TEST(AuditRecordTest, RoundTripsAllFields) {
  const AuditRecord r = SampleRecord();
  auto parsed = AuditRecord::Parse(r.ToJsonLine());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->ts_us, r.ts_us);
  EXPECT_EQ(parsed->trace_id, r.trace_id);
  EXPECT_EQ(parsed->client_trace_id, r.client_trace_id);
  EXPECT_EQ(parsed->dataset, r.dataset);
  EXPECT_EQ(parsed->generation, r.generation);
  EXPECT_EQ(parsed->strategy, r.strategy);
  EXPECT_EQ(parsed->status, r.status);
  EXPECT_EQ(parsed->source, r.source);
  EXPECT_EQ(parsed->cached, r.cached);
  EXPECT_EQ(parsed->query, r.query);
  EXPECT_EQ(parsed->digest, r.digest);
  EXPECT_EQ(parsed->rows, r.rows);
  EXPECT_EQ(parsed->num_pairs, r.num_pairs);
  EXPECT_EQ(parsed->max_rows, r.max_rows);
  EXPECT_EQ(parsed->deadline_ms, r.deadline_ms);
  EXPECT_DOUBLE_EQ(parsed->elapsed_seconds, r.elapsed_seconds);
  ASSERT_EQ(parsed->phases.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->phases.at("parse").as_number(), 0.001);
}

TEST(AuditRecordTest, RejectsMalformedAndIncompleteLines) {
  EXPECT_FALSE(AuditRecord::Parse("not json").ok());
  EXPECT_FALSE(AuditRecord::Parse("[1,2,3]").ok());
  // Missing each required field in turn.
  EXPECT_FALSE(
      AuditRecord::Parse(R"({"query":"q","status":"OK"})").ok());
  EXPECT_FALSE(
      AuditRecord::Parse(R"({"dataset":"d","status":"OK"})").ok());
  EXPECT_FALSE(
      AuditRecord::Parse(R"({"dataset":"d","query":"q"})").ok());
  EXPECT_TRUE(AuditRecord::Parse(
                  R"({"dataset":"d","query":"q","status":"OK"})")
                  .ok());
}

// --- AuditLog writer --------------------------------------------------

TEST(AuditLogTest, AppendsAndReadsBack) {
  const std::string dir = TempDir("append");
  AuditLog log(AuditLogOptions{dir, 64});
  ASSERT_TRUE(log.Open().ok());
  log.Append(SampleRecord());
  log.Append(SampleRecord());
  log.Flush();
  EXPECT_EQ(log.appended(), 2u);
  EXPECT_EQ(log.errors(), 0u);

  AuditReadStats stats;
  auto records = ReadAuditLog(dir, &stats);
  ASSERT_TRUE(records.ok()) << records.status();
  EXPECT_EQ(records->size(), 2u);
  EXPECT_EQ(stats.files, 1u);
  EXPECT_EQ(stats.malformed, 0u);
}

TEST(AuditLogTest, RotatesPastThresholdAndReadsInOrder) {
  const std::string dir = TempDir("rotate");
  // 1 MB threshold; ~4000 records of ~400 bytes crosses it once.
  AuditLog log(AuditLogOptions{dir, 1});
  ASSERT_TRUE(log.Open().ok());
  AuditRecord r = SampleRecord();
  r.query.assign(300, 'q');
  const size_t n = 4000;
  for (size_t i = 0; i < n; ++i) {
    r.ts_us = static_cast<int64_t>(i);  // Read-back order check.
    log.Append(r);
  }
  log.Flush();
  EXPECT_GE(log.rotations(), 1u);
  EXPECT_EQ(log.appended(), n);

  AuditReadStats stats;
  auto records = ReadAuditLog(dir, &stats);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), n);
  EXPECT_GE(stats.files, 2u);
  // Directory reads concatenate rotation files in name order, which is
  // append order.
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ((*records)[i].ts_us, static_cast<int64_t>(i));
  }
}

TEST(AuditLogTest, ReopenNumbersPastExistingFiles) {
  const std::string dir = TempDir("reopen");
  {
    AuditLog log(AuditLogOptions{dir, 64});
    ASSERT_TRUE(log.Open().ok());
    log.Append(SampleRecord());
  }
  AuditLog second(AuditLogOptions{dir, 64});
  ASSERT_TRUE(second.Open().ok());
  EXPECT_NE(second.current_path().find("audit-000002.jsonl"),
            std::string::npos);
  second.Append(SampleRecord());
  second.Flush();

  auto records = ReadAuditLog(dir, nullptr);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

TEST(AuditLogTest, ReaderSkipsButCountsMalformedLines) {
  const std::string dir = TempDir("malformed");
  AuditLog log(AuditLogOptions{dir, 64});
  ASSERT_TRUE(log.Open().ok());
  log.Append(SampleRecord());
  log.Flush();
  {
    // A torn final line, as a crashed daemon would leave.
    std::ofstream out(log.current_path(), std::ios::app);
    out << "{\"dataset\":\"demo\",\"query\":\"tru";
  }
  AuditReadStats stats;
  auto records = ReadAuditLog(dir, &stats);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);
  EXPECT_EQ(stats.malformed, 1u);
}

TEST(AuditLogTest, ReadFailsOnMissingPathAndEmptyDir) {
  EXPECT_FALSE(ReadAuditLog("/nonexistent/audit.jsonl", nullptr).ok());
  const std::string dir = TempDir("empty");
  std::filesystem::create_directories(dir);
  EXPECT_FALSE(ReadAuditLog(dir, nullptr).ok());
}

// --- QueryService integration ----------------------------------------

JsonValue GenRequest(const std::string& name) {
  JsonValue::Object request;
  request["cmd"] = "gen";
  request["dataset"] = name;
  request["num_transactions"] = static_cast<int64_t>(400);
  request["num_items"] = static_cast<int64_t>(40);
  request["num_patterns"] = static_cast<int64_t>(20);
  return request;
}

JsonValue QueryRequest(const std::string& name, const std::string& query) {
  JsonValue::Object request;
  request["cmd"] = "query";
  request["dataset"] = name;
  request["query"] = query;
  return request;
}

constexpr char kQuery[] =
    "freq(S, 30) & freq(T, 30) & max(S.Price) <= min(T.Price)";

TEST(ServiceAuditTest, CapturesServedQueriesWithDigests) {
  const std::string dir = TempDir("service");
  ServiceOptions options;
  options.audit_log_dir = dir;
  obs::MetricsRegistry metrics;
  QueryService service(options, &metrics);
  ASSERT_NE(service.audit_log(), nullptr);

  ASSERT_EQ(service.Handle(GenRequest("d")).GetString("status", ""), "OK");
  const JsonValue cold = service.Handle(QueryRequest("d", kQuery));
  ASSERT_EQ(cold.GetString("status", ""), "OK");
  const std::string digest = cold.GetString("digest", "");
  ASSERT_EQ(digest.size(), 16u);

  // A cache hit returns the identical digest without recomputation,
  // and an error query is captured too.
  const JsonValue hit = service.Handle(QueryRequest("d", kQuery));
  EXPECT_TRUE(hit.GetBool("cached", false));
  EXPECT_EQ(hit.GetString("digest", ""), digest);
  EXPECT_EQ(service.Handle(QueryRequest("d", "freq(S &"))
                .GetString("status", ""),
            "PARSE_ERROR");

  // BeginDrain is the flush hook shared by every drain path.
  service.BeginDrain();

  auto records = ReadAuditLog(dir, nullptr);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].status, "OK");
  EXPECT_EQ((*records)[0].digest, digest);
  EXPECT_FALSE((*records)[0].cached);
  EXPECT_EQ((*records)[0].source, "cold");
  // The captured query is the canonical text, replayable as-is.
  EXPECT_EQ((*records)[0].query,
            cold.GetString("canonical_query", "missing"));
  EXPECT_TRUE((*records)[1].cached);
  EXPECT_EQ((*records)[1].digest, digest);
  EXPECT_EQ((*records)[1].source, "hit");
  EXPECT_EQ((*records)[2].status, "PARSE_ERROR");
  EXPECT_TRUE((*records)[2].digest.empty());
  EXPECT_EQ(metrics.counter("server.audit.appended"), 3u);
}

TEST(ServiceAuditTest, NoAuditDirMeansNoLog) {
  obs::MetricsRegistry metrics;
  QueryService service(ServiceOptions{}, &metrics);
  EXPECT_EQ(service.audit_log(), nullptr);
  // Queries still carry digests without capture enabled.
  ASSERT_EQ(service.Handle(GenRequest("d")).GetString("status", ""), "OK");
  EXPECT_EQ(service.Handle(QueryRequest("d", kQuery))
                .GetString("digest", "")
                .size(),
            16u);
}

TEST(ServiceAuditTest, HealthzCarriesUptimeAndCatalogWatermark) {
  obs::MetricsRegistry metrics;
  QueryService service(ServiceOptions{}, &metrics);
  ASSERT_EQ(service.Handle(GenRequest("d")).GetString("status", ""), "OK");
  const HttpResponse health = service.HandleHttp("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body.rfind("ok ", 0), 0u) << health.body;
  EXPECT_NE(health.body.find("uptime_seconds="), std::string::npos);
  EXPECT_NE(health.body.find("datasets=1"), std::string::npos);
  EXPECT_NE(health.body.find("max_generation=1"), std::string::npos);
}

}  // namespace
}  // namespace cfq::server
