#include "constraints/agg.h"

#include <gtest/gtest.h>

namespace cfq {
namespace {

TEST(AggTest, MinMax) {
  auto min = Aggregate(AggFn::kMin, {3, 1, 2});
  auto max = Aggregate(AggFn::kMax, {3, 1, 2});
  ASSERT_TRUE(min.ok());
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(min.value(), 1);
  EXPECT_EQ(max.value(), 3);
}

TEST(AggTest, SumAndAvgArePerItem) {
  // Duplicate values both count: sum/avg aggregate the multiset.
  auto sum = Aggregate(AggFn::kSum, {5, 5, 10});
  auto avg = Aggregate(AggFn::kAvg, {5, 5, 10});
  ASSERT_TRUE(sum.ok());
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(sum.value(), 20);
  EXPECT_NEAR(avg.value(), 20.0 / 3, 1e-12);
}

TEST(AggTest, CountIsDistinct) {
  // count(S.Type) counts distinct values (the paper's class constraint).
  auto count = Aggregate(AggFn::kCount, {2, 2, 2});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 1);
  count = Aggregate(AggFn::kCount, {1, 2, 2, 3});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 3);
}

TEST(AggTest, EmptyProjection) {
  EXPECT_EQ(Aggregate(AggFn::kSum, {}).value(), 0);
  EXPECT_EQ(Aggregate(AggFn::kCount, {}).value(), 0);
  EXPECT_EQ(Aggregate(AggFn::kMin, {}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Aggregate(AggFn::kMax, {}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Aggregate(AggFn::kAvg, {}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AggTest, SingletonAggregatesCoincide) {
  for (AggFn fn : {AggFn::kMin, AggFn::kMax, AggFn::kSum, AggFn::kAvg}) {
    auto v = Aggregate(fn, {7});
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), 7) << AggFnName(fn);
  }
}

TEST(AggTest, NegativeValues) {
  EXPECT_EQ(Aggregate(AggFn::kMin, {-5, 3}).value(), -5);
  EXPECT_EQ(Aggregate(AggFn::kSum, {-5, 3}).value(), -2);
}

TEST(AggTest, AggFnNames) {
  EXPECT_STREQ(AggFnName(AggFn::kMin), "min");
  EXPECT_STREQ(AggFnName(AggFn::kMax), "max");
  EXPECT_STREQ(AggFnName(AggFn::kSum), "sum");
  EXPECT_STREQ(AggFnName(AggFn::kAvg), "avg");
  EXPECT_STREQ(AggFnName(AggFn::kCount), "count");
}

TEST(AggTest, AggregateOverProjectsCatalog) {
  ItemCatalog catalog(3);
  ASSERT_TRUE(catalog.AddNumericAttr("Price", {10, 20, 30}).ok());
  auto v = AggregateOver(AggFn::kSum, "Price", {0, 2}, catalog);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 40);
  EXPECT_FALSE(AggregateOver(AggFn::kSum, "Nope", {0}, catalog).ok());
}

}  // namespace
}  // namespace cfq
