// End-to-end tests on Quest-generated data, shaped like the paper's
// Section 7 experiments (scaled down for CI).

#include <gtest/gtest.h>

#include "core/executor.h"
#include "data/attribute_gen.h"
#include "data/synthetic_gen.h"

namespace cfq {
namespace {

struct Workbench {
  TransactionDb db{0};
  ItemCatalog catalog{100};
  ExperimentDomains domains;
};

Workbench MakeFig8aBench(int64_t t_price_hi) {
  Workbench w;
  QuestParams params;
  params.num_transactions = 1500;
  params.num_items = 100;
  params.num_patterns = 60;
  params.avg_transaction_size = 8;
  params.avg_pattern_size = 3;
  params.seed = 21;
  auto db = GenerateQuestDb(params);
  EXPECT_TRUE(db.ok());
  w.db = std::move(db).value();
  w.catalog = ItemCatalog(100);
  EXPECT_TRUE(AssignSplitUniformPrices(&w.catalog, "Price", 400, 1000, 0,
                                       t_price_hi, 5, &w.domains)
                  .ok());
  return w;
}

// Section 7.1: a single quasi-succinct constraint
// max(S.Price) <= min(T.Price).
TEST(IntegrationTest, Fig8aShapeOptimizedMatchesBaselineAndPrunes) {
  Workbench w = MakeFig8aBench(/*t_price_hi=*/500);  // 16.6% overlap.
  CfqQuery query;
  query.s_domain = w.domains.s_domain;
  query.t_domain = w.domains.t_domain;
  query.min_support_s = 12;
  query.min_support_t = 12;
  query.two_var.push_back(
      MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price"));

  auto optimized = ExecuteOptimized(&w.db, w.catalog, query);
  auto naive = ExecuteAprioriPlus(&w.db, w.catalog, query);
  ASSERT_TRUE(optimized.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(AnswerPairs(optimized.value()), AnswerPairs(naive.value()));
  // The paper's headline: quasi-succinctness cuts the candidate space.
  EXPECT_LT(
      optimized->stats.s.sets_counted + optimized->stats.t.sets_counted,
      naive->stats.s.sets_counted + naive->stats.t.sets_counted);
}

TEST(IntegrationTest, Fig8aSelectivityMonotonicity) {
  // More price overlap -> less selective constraint -> less pruning.
  CfqQuery base;
  base.min_support_s = 12;
  base.min_support_t = 12;
  base.two_var.push_back(
      MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price"));

  uint64_t counted_low_overlap = 0, counted_high_overlap = 0;
  {
    Workbench w = MakeFig8aBench(500);
    CfqQuery q = base;
    q.s_domain = w.domains.s_domain;
    q.t_domain = w.domains.t_domain;
    auto r = ExecuteOptimized(&w.db, w.catalog, q);
    ASSERT_TRUE(r.ok());
    counted_low_overlap = r->stats.s.sets_counted + r->stats.t.sets_counted;
  }
  {
    Workbench w = MakeFig8aBench(900);
    CfqQuery q = base;
    q.s_domain = w.domains.s_domain;
    q.t_domain = w.domains.t_domain;
    auto r = ExecuteOptimized(&w.db, w.catalog, q);
    ASSERT_TRUE(r.ok());
    counted_high_overlap = r->stats.s.sets_counted + r->stats.t.sets_counted;
  }
  EXPECT_LE(counted_low_overlap, counted_high_overlap);
}

// Section 7.2: 1-var + 2-var constraints; three strategies agree and
// the optimizer dominates on work.
TEST(IntegrationTest, Fig8bShapeThreeStrategiesAgree) {
  Workbench w = MakeFig8aBench(600);
  ASSERT_TRUE(AssignTypesWithOverlap(&w.catalog, "Type", w.domains, 10, 40.0,
                                     17)
                  .ok());
  CfqQuery query;
  query.s_domain = w.domains.s_domain;
  query.t_domain = w.domains.t_domain;
  query.min_support_s = 12;
  query.min_support_t = 12;
  query.one_var.push_back(
      MakeAgg1(Var::kS, AggFn::kMax, "Price", CmpOp::kLe, 700));
  query.one_var.push_back(
      MakeAgg1(Var::kT, AggFn::kMin, "Price", CmpOp::kGe, 100));
  query.two_var.push_back(MakeDomain2("Type", SetCmp::kEqual, "Type"));

  auto optimized = ExecuteOptimized(&w.db, w.catalog, query);
  auto cap = ExecuteCapOneVar(&w.db, w.catalog, query);
  auto naive = ExecuteAprioriPlus(&w.db, w.catalog, query);
  ASSERT_TRUE(optimized.ok());
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(naive.ok());
  const auto expected = AnswerPairs(naive.value());
  EXPECT_EQ(AnswerPairs(optimized.value()), expected);
  EXPECT_EQ(AnswerPairs(cap.value()), expected);
  EXPECT_LE(cap->stats.s.sets_counted, naive->stats.s.sets_counted);
  EXPECT_LE(optimized->stats.s.sets_counted + optimized->stats.t.sets_counted,
            cap->stats.s.sets_counted + cap->stats.t.sets_counted);
}

// Section 7.3: sum(S.Price) <= sum(T.Price) with normal prices and Jmax
// iterative pruning.
TEST(IntegrationTest, JmaxShapeSumSumAgreesAndPrunes) {
  QuestParams params;
  params.num_transactions = 1200;
  params.num_items = 80;
  params.num_patterns = 40;
  params.avg_transaction_size = 8;
  params.seed = 23;
  auto db = GenerateQuestDb(params);
  ASSERT_TRUE(db.ok());
  TransactionDb quest = std::move(db).value();
  ItemCatalog catalog(80);
  ExperimentDomains domains;
  ASSERT_TRUE(AssignSplitNormalPrices(&catalog, "Price", 1000, 400, 100, 29,
                                      &domains)
                  .ok());
  CfqQuery query;
  query.s_domain = domains.s_domain;
  query.t_domain = domains.t_domain;
  query.min_support_s = 8;   // Low S support: deep S lattice.
  query.min_support_t = 12;
  query.two_var.push_back(
      MakeAgg2(AggFn::kSum, "Price", CmpOp::kLe, AggFn::kSum, "Price"));

  PlanOptions with_jmax;
  PlanOptions without_jmax;
  without_jmax.use_jmax = false;
  without_jmax.use_induced = false;
  auto a = ExecuteOptimized(&quest, catalog, query, with_jmax);
  auto b = ExecuteOptimized(&quest, catalog, query, without_jmax);
  auto naive = ExecuteAprioriPlus(&quest, catalog, query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(naive.ok());
  const auto expected = AnswerPairs(naive.value());
  EXPECT_EQ(AnswerPairs(a.value()), expected);
  EXPECT_EQ(AnswerPairs(b.value()), expected);
  // Jmax should never count more S candidates than the unpruned run.
  EXPECT_LE(a->stats.s.sets_counted, b->stats.s.sets_counted);
}

// Non-dovetailed mode (compute T first, then use the exact global
// bound) also agrees.
TEST(IntegrationTest, NonDovetailedJmaxAgrees) {
  QuestParams params;
  params.num_transactions = 800;
  params.num_items = 60;
  params.num_patterns = 30;
  params.seed = 31;
  auto db = GenerateQuestDb(params);
  ASSERT_TRUE(db.ok());
  TransactionDb quest = std::move(db).value();
  ItemCatalog catalog(60);
  ExperimentDomains domains;
  ASSERT_TRUE(AssignSplitNormalPrices(&catalog, "Price", 800, 500, 100, 37,
                                      &domains)
                  .ok());
  CfqQuery query;
  query.s_domain = domains.s_domain;
  query.t_domain = domains.t_domain;
  query.min_support_s = 8;
  query.min_support_t = 8;
  query.two_var.push_back(
      MakeAgg2(AggFn::kSum, "Price", CmpOp::kLe, AggFn::kSum, "Price"));

  PlanOptions dovetailed;
  PlanOptions sequential;
  sequential.dovetail = false;
  auto a = ExecuteOptimized(&quest, catalog, query, dovetailed);
  auto b = ExecuteOptimized(&quest, catalog, query, sequential);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(AnswerPairs(a.value()), AnswerPairs(b.value()));
}

// The per-level a/b table of Section 7.1: valid counts never exceed
// frequent counts, and the optimized S lattice never has more frequent
// sets per level than the baseline.
TEST(IntegrationTest, PerLevelTableShape) {
  Workbench w = MakeFig8aBench(500);
  CfqQuery query;
  query.s_domain = w.domains.s_domain;
  query.t_domain = w.domains.t_domain;
  query.min_support_s = 12;
  query.min_support_t = 12;
  query.two_var.push_back(
      MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price"));
  auto optimized = ExecuteOptimized(&w.db, w.catalog, query);
  auto naive = ExecuteAprioriPlus(&w.db, w.catalog, query);
  ASSERT_TRUE(optimized.ok());
  ASSERT_TRUE(naive.ok());
  const auto& opt = optimized->stats.s;
  const auto& base = naive->stats.s;
  for (size_t level = 0; level < opt.frequent_per_level.size(); ++level) {
    EXPECT_LE(opt.frequent_per_level[level], opt.candidates_per_level[level]);
    if (level < base.frequent_per_level.size()) {
      EXPECT_LE(opt.frequent_per_level[level],
                base.frequent_per_level[level]);
    }
  }
  // The optimized lattice must not go deeper than the baseline.
  EXPECT_LE(opt.frequent_per_level.size(), base.frequent_per_level.size());
}

}  // namespace
}  // namespace cfq
