#include "data/attribute_gen.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace cfq {
namespace {

TEST(AttributeGenTest, UniformPricesInRange) {
  ItemCatalog catalog(200);
  ASSERT_TRUE(AssignUniformPrices(&catalog, "Price", 100, 500, 1).ok());
  for (ItemId i = 0; i < 200; ++i) {
    const AttrValue v = catalog.ValueUnchecked("Price", i);
    EXPECT_GE(v, 100);
    EXPECT_LE(v, 500);
    EXPECT_EQ(v, std::floor(v));  // Integer prices.
  }
}

TEST(AttributeGenTest, UniformPricesRejectEmptyRange) {
  ItemCatalog catalog(10);
  EXPECT_FALSE(AssignUniformPrices(&catalog, "Price", 5, 4, 1).ok());
}

TEST(AttributeGenTest, SplitUniformDomainsPartitionUniverse) {
  ItemCatalog catalog(100);
  ExperimentDomains domains;
  ASSERT_TRUE(AssignSplitUniformPrices(&catalog, "Price", 400, 1000, 0, 600,
                                       3, &domains)
                  .ok());
  EXPECT_EQ(domains.s_domain.size() + domains.t_domain.size(), 100u);
  EXPECT_TRUE(Disjoint(domains.s_domain, domains.t_domain));
  for (ItemId i : domains.s_domain) {
    const AttrValue v = catalog.ValueUnchecked("Price", i);
    EXPECT_GE(v, 400);
    EXPECT_LE(v, 1000);
  }
  for (ItemId i : domains.t_domain) {
    const AttrValue v = catalog.ValueUnchecked("Price", i);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 600);
  }
}

TEST(AttributeGenTest, SplitUniformInterleavesSides) {
  ItemCatalog catalog(10);
  ExperimentDomains domains;
  ASSERT_TRUE(AssignSplitUniformPrices(&catalog, "Price", 0, 1, 0, 1, 3,
                                       &domains)
                  .ok());
  EXPECT_EQ(domains.s_domain, (Itemset{0, 2, 4, 6, 8}));
  EXPECT_EQ(domains.t_domain, (Itemset{1, 3, 5, 7, 9}));
}

TEST(AttributeGenTest, SplitNormalPricesNonnegativeAndCentered) {
  ItemCatalog catalog(2000);
  ExperimentDomains domains;
  ASSERT_TRUE(AssignSplitNormalPrices(&catalog, "Price", 1000, 400, 100, 5,
                                      &domains)
                  .ok());
  double s_total = 0, t_total = 0;
  for (ItemId i : domains.s_domain) {
    const AttrValue v = catalog.ValueUnchecked("Price", i);
    EXPECT_GE(v, 0);
    s_total += v;
  }
  for (ItemId i : domains.t_domain) {
    const AttrValue v = catalog.ValueUnchecked("Price", i);
    EXPECT_GE(v, 0);
    t_total += v;
  }
  EXPECT_NEAR(s_total / domains.s_domain.size(), 1000, 20);
  EXPECT_NEAR(t_total / domains.t_domain.size(), 400, 20);
}

TEST(AttributeGenTest, SplitNormalRejectsNegativeSigma) {
  ItemCatalog catalog(10);
  EXPECT_FALSE(
      AssignSplitNormalPrices(&catalog, "Price", 10, 10, -1, 1, nullptr).ok());
}

// Type overlap: with k types per side and x% overlap, exactly
// round(x/100 * k) codes appear on both sides.
class TypeOverlapTest : public ::testing::TestWithParam<double> {};

TEST_P(TypeOverlapTest, SharedTypeCountMatchesOverlap) {
  const double overlap = GetParam();
  ItemCatalog catalog(2000);
  ExperimentDomains domains;
  ASSERT_TRUE(AssignSplitUniformPrices(&catalog, "Price", 0, 9, 0, 9, 11,
                                       &domains)
                  .ok());
  const int32_t k = 10;
  ASSERT_TRUE(
      AssignTypesWithOverlap(&catalog, "Type", domains, k, overlap, 13).ok());
  std::set<AttrValue> s_types, t_types;
  for (ItemId i : domains.s_domain) {
    s_types.insert(catalog.ValueUnchecked("Type", i));
  }
  for (ItemId i : domains.t_domain) {
    t_types.insert(catalog.ValueUnchecked("Type", i));
  }
  // With 1000 items per side and 10 types, every type value appears.
  EXPECT_EQ(s_types.size(), 10u);
  EXPECT_EQ(t_types.size(), 10u);
  std::vector<AttrValue> shared;
  std::set_intersection(s_types.begin(), s_types.end(), t_types.begin(),
                        t_types.end(), std::back_inserter(shared));
  EXPECT_EQ(shared.size(),
            static_cast<size_t>(std::lround(overlap / 100.0 * k)));
}

INSTANTIATE_TEST_SUITE_P(Overlaps, TypeOverlapTest,
                         ::testing::Values(0.0, 20.0, 40.0, 60.0, 80.0,
                                           100.0));

TEST(AttributeGenTest, TypeOverlapRejectsBadArguments) {
  ItemCatalog catalog(10);
  ExperimentDomains domains;
  domains.s_domain = {0, 1};
  domains.t_domain = {2, 3};
  EXPECT_FALSE(
      AssignTypesWithOverlap(&catalog, "Type", domains, 0, 50, 1).ok());
  EXPECT_FALSE(
      AssignTypesWithOverlap(&catalog, "Type", domains, 5, 101, 1).ok());
  EXPECT_FALSE(
      AssignTypesWithOverlap(&catalog, "Type", domains, 5, -1, 1).ok());
}

}  // namespace
}  // namespace cfq
