#include "constraints/classify.h"

#include <random>

#include <gtest/gtest.h>

#include "constraints/eval.h"
#include "data/transaction_db.h"
#include "mining/apriori.h"

namespace cfq {
namespace {

// ---------- 1-var characterization ([15], Lemma 1). ----------------------

TEST(ClassifyOneVarTest, DomainConstraints) {
  auto props = [](SetCmp cmp) {
    return Classify(MakeDomain1(Var::kS, "A", cmp, {1.0}));
  };
  EXPECT_TRUE(props(SetCmp::kSubset).anti_monotone);
  EXPECT_TRUE(props(SetCmp::kSubset).succinct);
  EXPECT_TRUE(props(SetCmp::kDisjoint).anti_monotone);
  EXPECT_TRUE(props(SetCmp::kNotSuperset).anti_monotone);
  EXPECT_TRUE(props(SetCmp::kSuperset).monotone);
  EXPECT_TRUE(props(SetCmp::kIntersects).monotone);
  EXPECT_TRUE(props(SetCmp::kNotSubset).monotone);
  EXPECT_FALSE(props(SetCmp::kEqual).anti_monotone);
  EXPECT_FALSE(props(SetCmp::kEqual).monotone);
  for (SetCmp cmp : {SetCmp::kSubset, SetCmp::kDisjoint, SetCmp::kSuperset,
                     SetCmp::kIntersects, SetCmp::kEqual, SetCmp::kNotEqual,
                     SetCmp::kNotSubset, SetCmp::kNotSuperset}) {
    EXPECT_TRUE(props(cmp).succinct) << SetCmpName(cmp);
  }
}

TEST(ClassifyOneVarTest, MinMaxSuccinct) {
  for (AggFn agg : {AggFn::kMin, AggFn::kMax}) {
    for (CmpOp cmp : {CmpOp::kLe, CmpOp::kGe, CmpOp::kLt, CmpOp::kGt,
                      CmpOp::kEq, CmpOp::kNe}) {
      EXPECT_TRUE(Classify(MakeAgg1(Var::kS, agg, "A", cmp, 5)).succinct);
    }
  }
}

TEST(ClassifyOneVarTest, MinMaxMonotonicity) {
  EXPECT_TRUE(
      Classify(MakeAgg1(Var::kS, AggFn::kMin, "A", CmpOp::kGe, 5))
          .anti_monotone);
  EXPECT_TRUE(Classify(MakeAgg1(Var::kS, AggFn::kMin, "A", CmpOp::kLe, 5))
                  .monotone);
  EXPECT_TRUE(Classify(MakeAgg1(Var::kS, AggFn::kMax, "A", CmpOp::kLe, 5))
                  .anti_monotone);
  EXPECT_TRUE(Classify(MakeAgg1(Var::kS, AggFn::kMax, "A", CmpOp::kGe, 5))
                  .monotone);
  EXPECT_FALSE(Classify(MakeAgg1(Var::kS, AggFn::kMin, "A", CmpOp::kEq, 5))
                   .anti_monotone);
}

TEST(ClassifyOneVarTest, SumDependsOnNonnegativity) {
  const auto le = MakeAgg1(Var::kS, AggFn::kSum, "A", CmpOp::kLe, 5);
  const auto ge = MakeAgg1(Var::kS, AggFn::kSum, "A", CmpOp::kGe, 5);
  EXPECT_TRUE(Classify(le, /*nonnegative=*/true).anti_monotone);
  EXPECT_TRUE(Classify(ge, /*nonnegative=*/true).monotone);
  EXPECT_FALSE(Classify(le, /*nonnegative=*/false).anti_monotone);
  EXPECT_FALSE(Classify(ge, /*nonnegative=*/false).monotone);
  EXPECT_FALSE(Classify(le).succinct);  // Lemma 1: sum is never succinct.
}

TEST(ClassifyOneVarTest, AvgIsNeither) {
  for (CmpOp cmp : {CmpOp::kLe, CmpOp::kGe, CmpOp::kEq}) {
    const auto p = Classify(MakeAgg1(Var::kS, AggFn::kAvg, "A", cmp, 5));
    EXPECT_FALSE(p.anti_monotone);
    EXPECT_FALSE(p.monotone);
    EXPECT_FALSE(p.succinct);
  }
}

TEST(ClassifyOneVarTest, CountIsNotSuccinct) {
  const auto le = Classify(MakeAgg1(Var::kS, AggFn::kCount, "A", CmpOp::kLe, 2));
  EXPECT_TRUE(le.anti_monotone);
  EXPECT_FALSE(le.succinct);
  const auto ge = Classify(MakeAgg1(Var::kS, AggFn::kCount, "A", CmpOp::kGe, 2));
  EXPECT_TRUE(ge.monotone);
}

// ---------- 2-var characterization (Figure 1). ----------------------------

struct Fig1Row {
  TwoVarConstraint constraint;
  bool anti_monotone;
  bool quasi_succinct;
};

std::vector<Fig1Row> Figure1Rows() {
  std::vector<Fig1Row> rows;
  rows.push_back({MakeDomain2("A", SetCmp::kDisjoint, "B"), true, true});
  rows.push_back({MakeDomain2("A", SetCmp::kIntersects, "B"), false, true});
  rows.push_back({MakeDomain2("A", SetCmp::kSubset, "B"), false, true});
  rows.push_back({MakeDomain2("A", SetCmp::kNotSubset, "B"), false, true});
  rows.push_back({MakeDomain2("A", SetCmp::kEqual, "B"), false, true});
  rows.push_back({MakeAgg2(AggFn::kMax, "A", CmpOp::kLe, AggFn::kMin, "B"),
                  true, true});
  rows.push_back({MakeAgg2(AggFn::kMin, "A", CmpOp::kLe, AggFn::kMin, "B"),
                  false, true});
  rows.push_back({MakeAgg2(AggFn::kMax, "A", CmpOp::kLe, AggFn::kMax, "B"),
                  false, true});
  rows.push_back({MakeAgg2(AggFn::kMin, "A", CmpOp::kLe, AggFn::kMax, "B"),
                  false, true});
  rows.push_back({MakeAgg2(AggFn::kSum, "A", CmpOp::kLe, AggFn::kMax, "B"),
                  false, false});
  rows.push_back({MakeAgg2(AggFn::kSum, "A", CmpOp::kLe, AggFn::kSum, "B"),
                  false, false});
  rows.push_back({MakeAgg2(AggFn::kAvg, "A", CmpOp::kLe, AggFn::kAvg, "B"),
                  false, false});
  return rows;
}

TEST(ClassifyTwoVarTest, Figure1Table) {
  for (const Fig1Row& row : Figure1Rows()) {
    const TwoVarProperties p = Classify(row.constraint);
    EXPECT_EQ(p.anti_monotone_s, row.anti_monotone)
        << ToString(row.constraint);
    EXPECT_EQ(p.anti_monotone_t, row.anti_monotone)
        << ToString(row.constraint);
    EXPECT_EQ(p.quasi_succinct, row.quasi_succinct)
        << ToString(row.constraint);
  }
}

TEST(ClassifyTwoVarTest, MirroredMaxMinIsAntiMonotone) {
  // min(S.A) >= max(T.B) is max<=min in the other orientation.
  const auto mirrored =
      MakeAgg2(AggFn::kMin, "A", CmpOp::kGe, AggFn::kMax, "B");
  EXPECT_TRUE(Classify(mirrored).anti_monotone_s);
  const auto strict = MakeAgg2(AggFn::kMax, "A", CmpOp::kLt, AggFn::kMin, "B");
  EXPECT_TRUE(Classify(strict).anti_monotone_s);
}

TEST(ClassifyTwoVarTest, AllDomainConstraintsQuasiSuccinct) {
  for (SetCmp cmp : {SetCmp::kDisjoint, SetCmp::kIntersects, SetCmp::kSubset,
                     SetCmp::kNotSubset, SetCmp::kSuperset,
                     SetCmp::kNotSuperset, SetCmp::kEqual, SetCmp::kNotEqual}) {
    EXPECT_TRUE(Classify(MakeDomain2("A", cmp, "B")).quasi_succinct)
        << SetCmpName(cmp);
  }
}

// ---------- Empirical verification of anti-monotonicity claims. -----------
//
// Definition 4: C is anti-monotone w.r.t. S iff whenever (S0, T) violates
// C for every frequent T-set T of size j, every superset of S0 violates C
// with every frequent T-set of any size. We instantiate the premise at
// j = 1 — the case the paper itself uses for pruning ("e.g., j = 1").
// (Read literally with j >= 2 the implication fails even for the
// paper's "yes" rows: a maximal frequent singleton T that extends to no
// frequent 2-set can satisfy the constraint although every 2-set
// violates it.) We verify the claimed-yes rows exhaustively on small
// random instances.

class TwoVarAmPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TwoVarAmPropertyTest, ClaimedAntiMonotoneRowsHold) {
  const int seed = GetParam();
  // Small random database over 6 items with attribute A=B=Price-ish.
  TransactionDb db(6);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> item_count(1, 5);
  std::uniform_int_distribution<ItemId> item(0, 5);
  for (int t = 0; t < 30; ++t) {
    std::vector<ItemId> txn(static_cast<size_t>(item_count(rng)));
    for (auto& x : txn) x = item(rng);
    db.Add(std::move(txn));
  }
  ItemCatalog catalog(6);
  std::vector<AttrValue> values(6);
  std::uniform_int_distribution<int> value(0, 9);
  for (auto& v : values) v = value(rng);
  ASSERT_TRUE(catalog.AddNumericAttr("A", values).ok());
  ASSERT_TRUE(catalog.AddNumericAttr("B", values).ok());

  const Itemset universe{0, 1, 2, 3, 4, 5};
  const uint64_t min_support = 3;
  std::vector<Itemset> frequent;
  for (const FrequentSet& f :
       MineFrequentBruteForce(db, universe, min_support)) {
    frequent.push_back(f.items);
  }

  for (const Fig1Row& row : Figure1Rows()) {
    if (!row.anti_monotone) continue;
    // For every S0 and j: violation with all frequent j-sized T implies
    // violation of every superset with every frequent T.
    ForEachNonEmptySubset(universe, [&](const Itemset& s0) {
      for (size_t j = 1; j <= 1; ++j) {
        bool violates_all_j = true;
        bool any_j = false;
        for (const Itemset& t : frequent) {
          if (t.size() != j) continue;
          any_j = true;
          auto ok = EvalPair(row.constraint, s0, t, catalog);
          ASSERT_TRUE(ok.ok());
          if (ok.value()) violates_all_j = false;
        }
        if (!any_j || !violates_all_j) continue;
        // Premise holds: check the conclusion for all supersets.
        ForEachNonEmptySubset(universe, [&](const Itemset& sup) {
          if (!IsSubset(s0, sup)) return;
          for (const Itemset& t : frequent) {
            auto ok = EvalPair(row.constraint, sup, t, catalog);
            ASSERT_TRUE(ok.ok());
            EXPECT_FALSE(ok.value())
                << ToString(row.constraint) << " S0=" << ToString(s0)
                << " sup=" << ToString(sup) << " T=" << ToString(t);
          }
        });
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoVarAmPropertyTest, ::testing::Range(0, 4));

// The paper's Theorem-1 negative example: min(S.A) <= min(T.B) is NOT
// anti-monotone — exhibit a concrete violation of the implication.
TEST(ClassifyTwoVarTest, MinLeMinCounterexample) {
  // Items: 0 has A=B=5, 1 has A=B=1. Transactions make {0}, {1}, {0,1}
  // frequent.
  TransactionDb db(2);
  for (int i = 0; i < 3; ++i) db.Add({0, 1});
  ItemCatalog catalog(2);
  ASSERT_TRUE(catalog.AddNumericAttr("A", {5, 1}).ok());
  ASSERT_TRUE(catalog.AddNumericAttr("B", {5, 1}).ok());
  const auto c = MakeAgg2(AggFn::kMin, "A", CmpOp::kLe, AggFn::kMin, "B");
  // S0={0} (min 5) vs the frequent 1-set T={1} (min 1): violated; and
  // T={0} gives 5<=5: satisfied. So the premise needs j where ALL
  // frequent j-sets violate; take the B values {5,1}: T={1} violates,
  // T={0} satisfies — premise fails for j=1, but consider S0={0} with
  // only T={1} frequent: rebuild DB so only item 1 is frequent on T.
  // Simpler: verify the superset {0,1} (min 1) satisfies with T={1}
  // (min 1): the violation does NOT persist under growth.
  auto before = EvalPair(c, {0}, {1}, catalog);
  auto after = EvalPair(c, {0, 1}, {1}, catalog);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(before.value());  // 5 <= 1 fails.
  EXPECT_TRUE(after.value());    // 1 <= 1 holds: growth fixed it.
  EXPECT_FALSE(Classify(c).anti_monotone_s);
}

}  // namespace
}  // namespace cfq
