#include "mining/cap.h"

#include <map>
#include <random>

#include <gtest/gtest.h>

#include "constraints/eval.h"
#include "mining/apriori_plus.h"
#include "mining/lattice.h"

namespace cfq {
namespace {

TransactionDb RandomDb(int seed, size_t num_items, size_t num_txns) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> len(1, 6);
  std::uniform_int_distribution<ItemId> item(
      0, static_cast<ItemId>(num_items - 1));
  TransactionDb db(num_items);
  for (size_t t = 0; t < num_txns; ++t) {
    std::vector<ItemId> txn(static_cast<size_t>(len(rng)));
    for (auto& x : txn) x = item(rng);
    db.Add(std::move(txn));
  }
  return db;
}

ItemCatalog RandomCatalog(int seed, size_t num_items) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> price(0, 9);
  ItemCatalog catalog(num_items);
  std::vector<AttrValue> values(num_items);
  for (auto& v : values) v = price(rng);
  EXPECT_TRUE(catalog.AddNumericAttr("Price", values).ok());
  return catalog;
}

std::map<Itemset, uint64_t> AsMap(const std::vector<FrequentSet>& sets) {
  std::map<Itemset, uint64_t> out;
  for (const FrequentSet& f : sets) out[f.items] = f.support;
  return out;
}

Itemset FullDomain(size_t n) {
  Itemset out;
  for (ItemId i = 0; i < n; ++i) out.push_back(i);
  return out;
}

TEST(CapTest, NoConstraintsEqualsApriori) {
  TransactionDb db = RandomDb(1, 8, 100);
  const ItemCatalog catalog = RandomCatalog(1, 8);
  auto cap = RunCap(&db, catalog, FullDomain(8), Var::kS, {}, 4);
  ASSERT_TRUE(cap.ok());
  auto plain = MineFrequent(&db, FullDomain(8), 4);
  EXPECT_EQ(AsMap(cap->valid_frequent), AsMap(plain.frequent));
}

TEST(CapTest, RejectsZeroSupport) {
  TransactionDb db = RandomDb(1, 4, 10);
  const ItemCatalog catalog = RandomCatalog(1, 4);
  EXPECT_FALSE(RunCap(&db, catalog, FullDomain(4), Var::kS, {}, 0).ok());
}

TEST(CapTest, RejectsUnknownAttribute) {
  TransactionDb db = RandomDb(1, 4, 10);
  const ItemCatalog catalog = RandomCatalog(1, 4);
  std::vector<OneVarConstraint> cs{
      MakeAgg1(Var::kS, AggFn::kMax, "Missing", CmpOp::kLe, 3)};
  EXPECT_FALSE(RunCap(&db, catalog, FullDomain(4), Var::kS, cs, 2).ok());
}

TEST(CapTest, IgnoresOtherVariableConstraints) {
  TransactionDb db = RandomDb(2, 8, 100);
  const ItemCatalog catalog = RandomCatalog(2, 8);
  std::vector<OneVarConstraint> cs{
      MakeAgg1(Var::kT, AggFn::kMax, "Price", CmpOp::kLe, 0)};
  auto cap = RunCap(&db, catalog, FullDomain(8), Var::kS, cs, 4);
  ASSERT_TRUE(cap.ok());
  auto plain = MineFrequent(&db, FullDomain(8), 4);
  EXPECT_EQ(cap->valid_frequent.size(), plain.frequent.size());
}

TEST(CapTest, UnsatisfiableConstraintYieldsEmpty) {
  TransactionDb db = RandomDb(3, 8, 100);
  const ItemCatalog catalog = RandomCatalog(3, 8);
  std::vector<OneVarConstraint> cs{
      MakeAgg1(Var::kS, AggFn::kMax, "Price", CmpOp::kLt, -1)};
  auto cap = RunCap(&db, catalog, FullDomain(8), Var::kS, cs, 2);
  ASSERT_TRUE(cap.ok());
  EXPECT_TRUE(cap->valid_frequent.empty());
  EXPECT_EQ(cap->stats.sets_counted, 0u);
}

TEST(CapTest, SuccinctAllowedFormCutsCandidates) {
  TransactionDb db = RandomDb(4, 10, 200);
  const ItemCatalog catalog = RandomCatalog(4, 10);
  std::vector<OneVarConstraint> cs{
      MakeAgg1(Var::kS, AggFn::kMax, "Price", CmpOp::kLe, 4)};
  auto cap = RunCap(&db, catalog, FullDomain(10), Var::kS, cs, 3);
  auto base = RunAprioriPlus(&db, catalog, FullDomain(10), Var::kS, cs, 3);
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(AsMap(cap->valid_frequent), AsMap(base->valid_frequent));
  EXPECT_LE(cap->stats.sets_counted, base->stats.sets_counted);
}

TEST(CapTest, GroupConstraintNeverCountsOptionalPairs) {
  // min(S.Price) <= 1 makes cheap items mandatory. CAP must not count
  // any multi-item set of expensive-only items.
  TransactionDb db = RandomDb(5, 10, 300);
  ItemCatalog catalog(10);
  // Items 0,1 cheap (price 0); the rest expensive.
  ASSERT_TRUE(
      catalog.AddNumericAttr("Price", {0, 0, 5, 5, 5, 5, 5, 5, 5, 5}).ok());
  std::vector<OneVarConstraint> cs{
      MakeAgg1(Var::kS, AggFn::kMin, "Price", CmpOp::kLe, 1)};
  std::vector<Itemset> counted;
  CapOptions options;
  options.counted_log = &counted;
  auto cap = RunCap(&db, catalog, FullDomain(10), Var::kS, cs, 3, options);
  ASSERT_TRUE(cap.ok());
  for (const Itemset& x : counted) {
    if (x.size() >= 2) {
      EXPECT_TRUE(Contains(x, 0) || Contains(x, 1))
          << "counted optional-only set " << ToString(x);
    }
  }
  // And the answers match the baseline.
  auto base = RunAprioriPlus(&db, catalog, FullDomain(10), Var::kS, cs, 3);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(AsMap(cap->valid_frequent), AsMap(base->valid_frequent));
}

TEST(CapTest, AblationTogglesDegradeToBaselineResults) {
  TransactionDb db = RandomDb(6, 10, 200);
  const ItemCatalog catalog = RandomCatalog(6, 10);
  std::vector<OneVarConstraint> cs{
      MakeAgg1(Var::kS, AggFn::kSum, "Price", CmpOp::kLe, 8),
      MakeAgg1(Var::kS, AggFn::kMax, "Price", CmpOp::kLe, 7)};
  CapOptions off;
  off.push_succinct = false;
  off.push_anti_monotone = false;
  auto no_push = RunCap(&db, catalog, FullDomain(10), Var::kS, cs, 3, off);
  auto full = RunCap(&db, catalog, FullDomain(10), Var::kS, cs, 3);
  auto base = RunAprioriPlus(&db, catalog, FullDomain(10), Var::kS, cs, 3);
  ASSERT_TRUE(no_push.ok());
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(AsMap(no_push->valid_frequent), AsMap(base->valid_frequent));
  EXPECT_EQ(AsMap(full->valid_frequent), AsMap(base->valid_frequent));
  EXPECT_LE(full->stats.sets_counted, no_push->stats.sets_counted);
}

// Property sweep: CAP and Apriori+ agree for every constraint shape.
struct CapCase {
  const char* name;
  OneVarConstraint constraint;
};

class CapOracleTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CapOracleTest, MatchesAprioriPlus) {
  const auto [seed, which] = GetParam();
  const std::vector<OneVarConstraint> all_constraints{
      MakeAgg1(Var::kS, AggFn::kMax, "Price", CmpOp::kLe, 5),
      MakeAgg1(Var::kS, AggFn::kMin, "Price", CmpOp::kGe, 3),
      MakeAgg1(Var::kS, AggFn::kMin, "Price", CmpOp::kLe, 2),
      MakeAgg1(Var::kS, AggFn::kMax, "Price", CmpOp::kGe, 7),
      MakeAgg1(Var::kS, AggFn::kSum, "Price", CmpOp::kLe, 9),
      MakeAgg1(Var::kS, AggFn::kSum, "Price", CmpOp::kGe, 6),
      MakeAgg1(Var::kS, AggFn::kAvg, "Price", CmpOp::kLe, 4),
      MakeAgg1(Var::kS, AggFn::kAvg, "Price", CmpOp::kGe, 5),
      MakeAgg1(Var::kS, AggFn::kCount, "Price", CmpOp::kLe, 2),
      MakeAgg1(Var::kS, AggFn::kMin, "Price", CmpOp::kEq, 3),
      MakeDomain1(Var::kS, "Price", SetCmp::kSubset, {1.0, 2.0, 3.0, 4.0}),
      MakeDomain1(Var::kS, "Price", SetCmp::kDisjoint, {0.0, 9.0}),
      MakeDomain1(Var::kS, "Price", SetCmp::kIntersects, {2.0, 5.0}),
      MakeDomain1(Var::kS, "Price", SetCmp::kSuperset, {3.0}),
      MakeDomain1(Var::kS, "Price", SetCmp::kNotSuperset, {1.0, 2.0}),
      MakeDomain1(Var::kS, "Price", SetCmp::kNotSubset, {1.0}),
      MakeDomain1(Var::kS, "Price", SetCmp::kEqual, {2.0, 4.0}),
      MakeDomain1(Var::kS, "Price", SetCmp::kNotEqual, {3.0}),
  };
  const OneVarConstraint& c = all_constraints[static_cast<size_t>(which)];

  TransactionDb db = RandomDb(seed, 9, 150);
  const ItemCatalog catalog = RandomCatalog(seed + 50, 9);
  auto cap = RunCap(&db, catalog, FullDomain(9), Var::kS, {c}, 3);
  auto base = RunAprioriPlus(&db, catalog, FullDomain(9), Var::kS, {c}, 3);
  ASSERT_TRUE(cap.ok()) << ToString(c);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(AsMap(cap->valid_frequent), AsMap(base->valid_frequent))
      << ToString(c);
}

INSTANTIATE_TEST_SUITE_P(Sweeps, CapOracleTest,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 18)));

// Stepwise lattice specifics.
TEST(LatticeTest, StepReportsLevels) {
  TransactionDb db = RandomDb(7, 8, 100);
  const ItemCatalog catalog = RandomCatalog(7, 8);
  auto lattice =
      ConstrainedLattice::Create(&db, catalog, FullDomain(8), Var::kS, {}, 4);
  ASSERT_TRUE(lattice.ok());
  ConstrainedLattice& l = **lattice;
  EXPECT_EQ(l.level(), 0u);
  ASSERT_TRUE(l.Step());
  EXPECT_EQ(l.level(), 1u);
  for (const FrequentSet& f : l.last_level_frequent()) {
    EXPECT_EQ(f.items.size(), 1u);
  }
  size_t guard = 0;
  while (l.Step() && guard++ < 20) {
  }
  EXPECT_TRUE(l.done());
  EXPECT_FALSE(l.Step());
}

TEST(LatticeTest, AddConstraintsRetroactivelyFilters) {
  TransactionDb db = RandomDb(8, 8, 150);
  const ItemCatalog catalog = RandomCatalog(8, 8);
  auto lattice =
      ConstrainedLattice::Create(&db, catalog, FullDomain(8), Var::kS, {}, 4);
  ASSERT_TRUE(lattice.ok());
  ConstrainedLattice& l = **lattice;
  l.Step();
  const size_t before = l.valid_frequent().size();
  const auto c = MakeAgg1(Var::kS, AggFn::kMax, "Price", CmpOp::kLe, 4);
  ASSERT_TRUE(l.AddConstraints({c}).ok());
  for (const FrequentSet& f : l.valid_frequent()) {
    auto ok = Eval(c, f.items, catalog);
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(ok.value());
  }
  EXPECT_LE(l.valid_frequent().size(), before);
  while (l.Step()) {
  }
  // Final results match running CAP with the constraint from scratch.
  auto reference = RunCap(&db, catalog, FullDomain(8), Var::kS, {c}, 4);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(AsMap(l.valid_frequent()), AsMap(reference->valid_frequent));
}

TEST(LatticeTest, DynamicBoundPrunesAndOnlyTightens) {
  TransactionDb db = RandomDb(9, 8, 150);
  const ItemCatalog catalog = RandomCatalog(9, 8);
  auto lattice =
      ConstrainedLattice::Create(&db, catalog, FullDomain(8), Var::kS, {}, 3);
  ASSERT_TRUE(lattice.ok());
  ConstrainedLattice& l = **lattice;
  l.SetDynamicBound(AggFn::kSum, "Price", 6, /*prunable=*/true);
  l.SetDynamicBound(AggFn::kSum, "Price", 10, /*prunable=*/true);  // Ignored.
  while (l.Step()) {
  }
  for (const FrequentSet& f : l.valid_frequent()) {
    auto v = AggregateOver(AggFn::kSum, "Price", f.items, catalog);
    ASSERT_TRUE(v.ok());
    EXPECT_LE(v.value(), 6);
  }
}

TEST(LatticeTest, UnsatisfiableInjectionClearsEverything) {
  TransactionDb db = RandomDb(10, 8, 100);
  const ItemCatalog catalog = RandomCatalog(10, 8);
  auto lattice =
      ConstrainedLattice::Create(&db, catalog, FullDomain(8), Var::kS, {}, 3);
  ASSERT_TRUE(lattice.ok());
  ConstrainedLattice& l = **lattice;
  l.Step();
  ASSERT_TRUE(
      l.AddConstraints(
           {MakeAgg1(Var::kS, AggFn::kCount, kItemAttr, CmpOp::kLe, 0)})
          .ok());
  EXPECT_TRUE(l.done());
  EXPECT_TRUE(l.valid_frequent().empty());
}

}  // namespace
}  // namespace cfq
