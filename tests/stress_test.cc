// Randomized stress tests: conjunctions of randomly drawn constraints
// across every miner and strategy, validated against brute force. These
// are the suite's widest nets — anything the targeted tests missed
// (constraint interactions, group + anti-monotone mixes, injection
// order effects) tends to surface here.

#include <map>
#include <random>

#include <gtest/gtest.h>

#include "constraints/eval.h"
#include "core/executor.h"
#include "mining/apriori_plus.h"
#include "mining/cap.h"
#include "mining/lattice.h"

namespace cfq {
namespace {

struct Instance {
  TransactionDb db{0};
  ItemCatalog catalog{0};
  Itemset domain;
};

Instance MakeInstance(std::mt19937& rng) {
  Instance inst;
  const size_t n = 9;
  inst.db = TransactionDb(n);
  std::uniform_int_distribution<int> len(1, 6);
  std::uniform_int_distribution<ItemId> item(0, n - 1);
  std::uniform_int_distribution<int> txns(40, 90);
  const int count = txns(rng);
  for (int t = 0; t < count; ++t) {
    std::vector<ItemId> txn(static_cast<size_t>(len(rng)));
    for (auto& x : txn) x = item(rng);
    inst.db.Add(std::move(txn));
  }
  inst.catalog = ItemCatalog(n);
  std::vector<AttrValue> price(n);
  std::vector<int32_t> type(n);
  std::uniform_int_distribution<int> price_dist(0, 9);
  std::uniform_int_distribution<int> type_dist(0, 2);
  for (size_t i = 0; i < n; ++i) {
    price[i] = price_dist(rng);
    type[i] = type_dist(rng);
  }
  EXPECT_TRUE(inst.catalog.AddNumericAttr("Price", price).ok());
  EXPECT_TRUE(inst.catalog.AddCategoricalAttr("Type", type).ok());
  for (ItemId i = 0; i < n; ++i) inst.domain.push_back(i);
  return inst;
}

OneVarConstraint RandomOneVar(std::mt19937& rng, Var var) {
  std::uniform_int_distribution<int> pick(0, 13);
  std::uniform_int_distribution<int> c(0, 9);
  std::uniform_int_distribution<int> t(0, 2);
  switch (pick(rng)) {
    case 0:
      return MakeAgg1(var, AggFn::kMax, "Price", CmpOp::kLe, c(rng));
    case 1:
      return MakeAgg1(var, AggFn::kMin, "Price", CmpOp::kGe, c(rng));
    case 2:
      return MakeAgg1(var, AggFn::kMin, "Price", CmpOp::kLe, c(rng));
    case 3:
      return MakeAgg1(var, AggFn::kMax, "Price", CmpOp::kGe, c(rng));
    case 4:
      return MakeAgg1(var, AggFn::kSum, "Price", CmpOp::kLe, c(rng) + 8);
    case 5:
      return MakeAgg1(var, AggFn::kSum, "Price", CmpOp::kGe, c(rng));
    case 6:
      return MakeAgg1(var, AggFn::kAvg, "Price", CmpOp::kLe, c(rng));
    case 7:
      return MakeAgg1(var, AggFn::kAvg, "Price", CmpOp::kGe, c(rng));
    case 8:
      return MakeAgg1(var, AggFn::kCount, "Type", CmpOp::kLe, 1 + t(rng));
    case 9:
      return MakeDomain1(var, "Type", SetCmp::kSubset,
                         {0.0, static_cast<double>(t(rng))});
    case 10:
      return MakeDomain1(var, "Type", SetCmp::kIntersects,
                         {static_cast<double>(t(rng))});
    case 11:
      return MakeDomain1(var, "Type", SetCmp::kDisjoint,
                         {static_cast<double>(t(rng))});
    case 12:
      return MakeAgg1(var, AggFn::kMin, "Price", CmpOp::kEq, c(rng));
    default:
      return MakeDomain1(var, "Price", SetCmp::kNotSuperset,
                         {static_cast<double>(c(rng))});
  }
}

TwoVarConstraint RandomTwoVar(std::mt19937& rng) {
  std::uniform_int_distribution<int> pick(0, 8);
  switch (pick(rng)) {
    case 0:
      return MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price");
    case 1:
      return MakeAgg2(AggFn::kMin, "Price", CmpOp::kLe, AggFn::kMax, "Price");
    case 2:
      return MakeAgg2(AggFn::kSum, "Price", CmpOp::kLe, AggFn::kSum, "Price");
    case 3:
      return MakeAgg2(AggFn::kAvg, "Price", CmpOp::kGe, AggFn::kAvg, "Price");
    case 4:
      return MakeDomain2("Type", SetCmp::kDisjoint, "Type");
    case 5:
      return MakeDomain2("Type", SetCmp::kEqual, "Type");
    case 6:
      return MakeDomain2("Type", SetCmp::kIntersects, "Type");
    case 7:
      return MakeAgg2(AggFn::kSum, "Price", CmpOp::kGe, AggFn::kSum, "Price");
    default:
      return MakeDomain2("Type", SetCmp::kNotSubset, "Type");
  }
}

// CAP vs Apriori+ over random 1-var conjunctions.
class OneVarStressTest : public ::testing::TestWithParam<int> {};

TEST_P(OneVarStressTest, RandomConjunctionsMatchBaseline) {
  std::mt19937 rng(GetParam() * 1299721);
  for (int round = 0; round < 8; ++round) {
    Instance inst = MakeInstance(rng);
    std::uniform_int_distribution<int> count(1, 4);
    std::vector<OneVarConstraint> constraints;
    const int k = count(rng);
    for (int i = 0; i < k; ++i) {
      constraints.push_back(RandomOneVar(rng, Var::kS));
    }
    auto cap =
        RunCap(&inst.db, inst.catalog, inst.domain, Var::kS, constraints, 3);
    auto base = RunAprioriPlus(&inst.db, inst.catalog, inst.domain, Var::kS,
                               constraints, 3);
    ASSERT_TRUE(cap.ok());
    ASSERT_TRUE(base.ok());
    ASSERT_EQ(cap->valid_frequent.size(), base->valid_frequent.size())
        << [&] {
             std::string msg = "constraints:";
             for (const auto& c : constraints) msg += " " + ToString(c);
             return msg;
           }();
    for (size_t i = 0; i < cap->valid_frequent.size(); ++i) {
      EXPECT_EQ(cap->valid_frequent[i].items, base->valid_frequent[i].items);
      EXPECT_EQ(cap->valid_frequent[i].support,
                base->valid_frequent[i].support);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneVarStressTest, ::testing::Range(0, 12));

// Full CFQ stress: random 1-var + 2-var conjunctions across all four
// strategies vs the brute-force oracle.
class CfqStressTest : public ::testing::TestWithParam<int> {};

TEST_P(CfqStressTest, RandomQueriesAgreeEverywhere) {
  std::mt19937 rng(GetParam() * 2750159 + 7);
  for (int round = 0; round < 4; ++round) {
    Instance inst = MakeInstance(rng);
    CfqQuery query;
    for (ItemId i : inst.domain) {
      ((i % 2 == 0) ? query.s_domain : query.t_domain).push_back(i);
    }
    query.min_support_s = 3;
    query.min_support_t = 3;
    std::uniform_int_distribution<int> count(0, 2);
    for (int i = count(rng); i > 0; --i) {
      query.one_var.push_back(RandomOneVar(
          rng, std::uniform_int_distribution<int>(0, 1)(rng) == 0 ? Var::kS
                                                                  : Var::kT));
    }
    for (int i = count(rng); i > 0; --i) {
      query.two_var.push_back(RandomTwoVar(rng));
    }

    auto oracle = ExecuteBruteForce(inst.db, inst.catalog, query);
    ASSERT_TRUE(oracle.ok());
    const auto expected = AnswerPairs(oracle.value());
    const std::string label = ToString(query);

    auto optimized = ExecuteOptimized(&inst.db, inst.catalog, query);
    ASSERT_TRUE(optimized.ok()) << label;
    EXPECT_EQ(AnswerPairs(optimized.value()), expected) << label;

    auto naive = ExecuteAprioriPlus(&inst.db, inst.catalog, query);
    ASSERT_TRUE(naive.ok()) << label;
    EXPECT_EQ(AnswerPairs(naive.value()), expected) << label;

    auto fm = ExecuteFullMaterialization(&inst.db, inst.catalog, query);
    ASSERT_TRUE(fm.ok()) << label;
    EXPECT_EQ(AnswerPairs(fm.value()), expected) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfqStressTest, ::testing::Range(0, 10));

// Constraint injection mid-run must agree with constraints-from-birth,
// at every injection level.
class InjectionStressTest : public ::testing::TestWithParam<int> {};

TEST_P(InjectionStressTest, LateInjectionEqualsEarly) {
  std::mt19937 rng(GetParam() * 7919 + 3);
  for (int round = 0; round < 5; ++round) {
    Instance inst = MakeInstance(rng);
    std::vector<OneVarConstraint> constraints{RandomOneVar(rng, Var::kS),
                                              RandomOneVar(rng, Var::kS)};
    auto reference =
        RunCap(&inst.db, inst.catalog, inst.domain, Var::kS, constraints, 3);
    ASSERT_TRUE(reference.ok());

    for (size_t inject_after = 1; inject_after <= 3; ++inject_after) {
      auto lattice = ConstrainedLattice::Create(&inst.db, inst.catalog,
                                                inst.domain, Var::kS,
                                                {constraints[0]}, 3);
      ASSERT_TRUE(lattice.ok());
      ConstrainedLattice& l = **lattice;
      for (size_t step = 0; step < inject_after && !l.done(); ++step) {
        l.Step();
      }
      ASSERT_TRUE(l.AddConstraints({constraints[1]}).ok());
      while (l.Step()) {
      }
      // Compare as sets: level-internal ordering may differ.
      std::map<Itemset, uint64_t> got, want;
      for (const FrequentSet& f : l.valid_frequent()) {
        got[f.items] = f.support;
      }
      for (const FrequentSet& f : reference->valid_frequent) {
        want[f.items] = f.support;
      }
      EXPECT_EQ(got, want)
          << ToString(constraints[0]) << " + " << ToString(constraints[1])
          << " injected after level " << inject_after;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InjectionStressTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace cfq
