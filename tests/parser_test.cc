#include "parser/parser.h"

#include <random>

#include <gtest/gtest.h>

namespace cfq {
namespace {

CfqQuery MustParse(const std::string& text) {
  auto q = ParseCfq(text);
  EXPECT_TRUE(q.ok()) << text << " -> " << q.status();
  return q.ok() ? std::move(q).value() : CfqQuery{};
}

TEST(ParserTest, FullHeaderQuery) {
  const CfqQuery q = MustParse(
      "{(S, T) | freq(S, 40) & freq(T, 25) & sum(S.Price) <= 100 "
      "& max(S.Price) <= min(T.Price)}");
  EXPECT_EQ(q.min_support_s, 40u);
  EXPECT_EQ(q.min_support_t, 25u);
  ASSERT_EQ(q.one_var.size(), 1u);
  EXPECT_EQ(ToString(q.one_var[0]), "sum(S.Price) <= 100");
  ASSERT_EQ(q.two_var.size(), 1u);
  EXPECT_EQ(ToString(q.two_var[0]), "max(S.Price) <= min(T.Price)");
}

TEST(ParserTest, HeaderlessShorthand) {
  const CfqQuery q = MustParse("avg(T.Price) >= 200");
  EXPECT_EQ(q.min_support_s, 1u);
  ASSERT_EQ(q.one_var.size(), 1u);
  EXPECT_EQ(ToString(q.one_var[0]), "avg(T.Price) >= 200");
}

TEST(ParserTest, FreqWithoutThresholdDefaultsToOne) {
  const CfqQuery q = MustParse("freq(S) & freq(T, 9)");
  EXPECT_EQ(q.min_support_s, 1u);
  EXPECT_EQ(q.min_support_t, 9u);
}

TEST(ParserTest, ScalarOnLeftIsMirrored) {
  const CfqQuery q = MustParse("100 >= sum(S.Price)");
  ASSERT_EQ(q.one_var.size(), 1u);
  EXPECT_EQ(ToString(q.one_var[0]), "sum(S.Price) <= 100");
}

TEST(ParserTest, TwoVarNormalizedToSLeft) {
  const CfqQuery q = MustParse("min(T.Price) >= max(S.Price)");
  ASSERT_EQ(q.two_var.size(), 1u);
  EXPECT_EQ(ToString(q.two_var[0]), "max(S.Price) <= min(T.Price)");
}

TEST(ParserTest, SetOperators) {
  const CfqQuery q = MustParse(
      "S.Type subset {0, 1} & S.Type disjoint T.Type "
      "& T.Type not superset {5} & S.Type intersects {2}");
  ASSERT_EQ(q.one_var.size(), 3u);
  EXPECT_EQ(ToString(q.one_var[0]), "S.Type subset {0, 1}");
  EXPECT_EQ(ToString(q.one_var[1]), "T.Type not-superset {5}");
  EXPECT_EQ(ToString(q.one_var[2]), "S.Type intersects {2}");
  ASSERT_EQ(q.two_var.size(), 1u);
  EXPECT_EQ(ToString(q.two_var[0]), "S.Type disjoint T.Type");
}

TEST(ParserTest, SetEqualityViaEqualsSign) {
  const CfqQuery q = MustParse("S.Type = T.Type & S.Type != {3}");
  ASSERT_EQ(q.two_var.size(), 1u);
  EXPECT_EQ(ToString(q.two_var[0]), "S.Type = T.Type");
  ASSERT_EQ(q.one_var.size(), 1u);
  EXPECT_EQ(ToString(q.one_var[0]), "S.Type != {3}");
}

TEST(ParserTest, LiteralOnLeftOfSetOpIsMirrored) {
  const CfqQuery q = MustParse("{1, 2} subset S.Type");
  ASSERT_EQ(q.one_var.size(), 1u);
  EXPECT_EQ(ToString(q.one_var[0]), "S.Type superset {1, 2}");
}

TEST(ParserTest, BareSetVsScalarSugar) {
  const CfqQuery q =
      MustParse("T.Price >= 600 & S.Price <= 400 & S.Type = 3");
  ASSERT_EQ(q.one_var.size(), 3u);
  EXPECT_EQ(ToString(q.one_var[0]), "min(T.Price) >= 600");
  EXPECT_EQ(ToString(q.one_var[1]), "max(S.Price) <= 400");
  EXPECT_EQ(ToString(q.one_var[2]), "S.Type = {3}");
}

TEST(ParserTest, StrictComparisons) {
  const CfqQuery q = MustParse("min(S.A) < 5 & max(T.B) > 2");
  EXPECT_EQ(ToString(q.one_var[0]), "min(S.A) < 5");
  EXPECT_EQ(ToString(q.one_var[1]), "max(T.B) > 2");
}

TEST(ParserTest, NegativeAndFractionalNumbers) {
  const CfqQuery q = MustParse("min(S.A) >= -2.5");
  const auto& a = std::get<AggConstraint1>(q.one_var[0].body);
  EXPECT_EQ(a.constant, -2.5);
}

TEST(ParserTest, EmptyLiteralSet) {
  const CfqQuery q = MustParse("S.Type disjoint {}");
  const auto& d = std::get<DomainConstraint1>(q.one_var[0].body);
  EXPECT_TRUE(d.constant.empty());
}

TEST(ParserTest, PaperIntroQueryRoundTrips) {
  const CfqQuery q = MustParse(
      "{(S, T) | freq(S, 30) & freq(T, 30) & sum(S.Price) <= 100 "
      "& avg(T.Price) >= 200}");
  EXPECT_EQ(q.one_var.size(), 2u);
  EXPECT_TRUE(q.two_var.empty());
}

TEST(ParserTest, CountConstraint) {
  const CfqQuery q = MustParse("count(S.Type) = 1 & S.Type disjoint T.Type");
  EXPECT_EQ(ToString(q.one_var[0]), "count(S.Type) = 1");
}

// --------- Error cases. ---------------------------------------------------

TEST(ParserTest, ErrorsCarryPositions) {
  auto r = ParseCfq("sum(S.Price) <= ");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("position"), std::string::npos);
}

TEST(ParserTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(ParseCfq("sum(S.Price) <= 100 # comment").ok());
}

TEST(ParserTest, RejectsSameVariableTwoVar) {
  EXPECT_FALSE(ParseCfq("max(S.Price) <= min(S.Price)").ok());
  EXPECT_FALSE(ParseCfq("S.Type disjoint S.Type").ok());
}

TEST(ParserTest, RejectsAggWithSetOperator) {
  EXPECT_FALSE(ParseCfq("max(S.Price) subset {1}").ok());
}

TEST(ParserTest, RejectsSetVsAgg) {
  EXPECT_FALSE(ParseCfq("S.Type <= min(T.Price)").ok());
}

TEST(ParserTest, RejectsMalformedHeader) {
  EXPECT_FALSE(ParseCfq("{(S T) | freq(S)}").ok());
  EXPECT_FALSE(ParseCfq("{(S, T) | freq(S)").ok());
}

TEST(ParserTest, RejectsBadFreq) {
  EXPECT_FALSE(ParseCfq("freq(X, 5)").ok());
  EXPECT_FALSE(ParseCfq("freq(S, 0)").ok());
  EXPECT_FALSE(ParseCfq("freq(S, )").ok());
}

TEST(ParserTest, RejectsTrailingInput) {
  EXPECT_FALSE(ParseCfq("freq(S, 5) freq(T, 5)").ok());
}

TEST(ParserTest, RejectsScalarVsScalar) {
  EXPECT_FALSE(ParseCfq("5 <= 6").ok());
}

TEST(ParserTest, RejectsNotWithoutSetOp) {
  EXPECT_FALSE(ParseCfq("S.Type not disjoint T.Type").ok());
}

// Fuzz: random token soup must never crash — only parse or fail cleanly.
class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, RandomTokenSoupIsSafe) {
  static const char* kFragments[] = {
      "S",     "T",    ".",     "Price", "Type",  "min",  "max",
      "sum",   "avg",  "count", "freq",  "(",     ")",    "{",
      "}",     "|",    "&",     ",",     "<=",    ">=",   "<",
      ">",     "=",    "!=",    "subset", "superset",     "disjoint",
      "intersects",    "not",   "0",     "42",    "-3",   "1.5",
  };
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<size_t> pick(0, std::size(kFragments) - 1);
  std::uniform_int_distribution<int> length(1, 25);
  for (int round = 0; round < 300; ++round) {
    std::string text;
    const int n = length(rng);
    for (int i = 0; i < n; ++i) {
      text += kFragments[pick(rng)];
      text += ' ';
    }
    // Must not crash; outcome (ok or error) is irrelevant.
    auto result = ParseCfq(text);
    if (result.ok()) {
      // Whatever parsed must render without crashing either.
      (void)ToString(result.value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace cfq
