#include "core/reduction.h"

#include <random>

#include <gtest/gtest.h>

#include "constraints/classify.h"
#include "constraints/eval.h"
#include "data/transaction_db.h"
#include "mining/apriori.h"

namespace cfq {
namespace {

// Random instance: one shared attribute value space for A and B so that
// domain constraints are meaningful. S ranges over even items, T over
// odd items (disjoint domains, like the paper's experiments).
struct Instance {
  TransactionDb db{0};
  ItemCatalog catalog{0};
  Itemset s_domain;
  Itemset t_domain;
  Itemset l1_s;  // Frequent singleton items per side.
  Itemset l1_t;
  std::vector<Itemset> frequent_s;  // All frequent sets per side.
  std::vector<Itemset> frequent_t;
  uint64_t min_support = 3;
};

Instance MakeInstance(int seed) {
  Instance inst;
  inst.db = TransactionDb(10);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> len(1, 5);
  std::uniform_int_distribution<ItemId> item(0, 9);
  for (int t = 0; t < 60; ++t) {
    std::vector<ItemId> txn(static_cast<size_t>(len(rng)));
    for (auto& x : txn) x = item(rng);
    inst.db.Add(std::move(txn));
  }
  inst.catalog = ItemCatalog(10);
  std::vector<AttrValue> a(10), b(10);
  std::uniform_int_distribution<int> value(0, 4);
  for (size_t i = 0; i < 10; ++i) {
    a[i] = value(rng);
    b[i] = value(rng);
  }
  EXPECT_TRUE(inst.catalog.AddNumericAttr("A", a).ok());
  EXPECT_TRUE(inst.catalog.AddNumericAttr("B", b).ok());
  for (ItemId i = 0; i < 10; ++i) {
    (i % 2 == 0 ? inst.s_domain : inst.t_domain).push_back(i);
  }
  for (const FrequentSet& f :
       MineFrequentBruteForce(inst.db, inst.s_domain, inst.min_support)) {
    inst.frequent_s.push_back(f.items);
    if (f.items.size() == 1) inst.l1_s.push_back(f.items[0]);
  }
  for (const FrequentSet& f :
       MineFrequentBruteForce(inst.db, inst.t_domain, inst.min_support)) {
    inst.frequent_t.push_back(f.items);
    if (f.items.size() == 1) inst.l1_t.push_back(f.items[0]);
  }
  return inst;
}

// All 2-var constraint shapes exercised by the property suites.
std::vector<TwoVarConstraint> AllConstraints() {
  std::vector<TwoVarConstraint> out;
  for (SetCmp cmp : {SetCmp::kDisjoint, SetCmp::kIntersects, SetCmp::kSubset,
                     SetCmp::kNotSubset, SetCmp::kSuperset,
                     SetCmp::kNotSuperset, SetCmp::kEqual, SetCmp::kNotEqual}) {
    out.push_back(MakeDomain2("A", cmp, "B"));
  }
  for (AggFn s : {AggFn::kMin, AggFn::kMax}) {
    for (AggFn t : {AggFn::kMin, AggFn::kMax}) {
      for (CmpOp cmp : {CmpOp::kLe, CmpOp::kGe, CmpOp::kLt, CmpOp::kGt,
                        CmpOp::kEq, CmpOp::kNe}) {
        out.push_back(MakeAgg2(s, "A", cmp, t, "B"));
      }
    }
  }
  for (CmpOp cmp : {CmpOp::kLe, CmpOp::kGe}) {
    out.push_back(MakeAgg2(AggFn::kSum, "A", cmp, AggFn::kSum, "B"));
    out.push_back(MakeAgg2(AggFn::kAvg, "A", cmp, AggFn::kAvg, "B"));
    out.push_back(MakeAgg2(AggFn::kSum, "A", cmp, AggFn::kMax, "B"));
    out.push_back(MakeAgg2(AggFn::kAvg, "A", cmp, AggFn::kMin, "B"));
    out.push_back(MakeAgg2(AggFn::kMin, "A", cmp, AggFn::kSum, "B"));
    out.push_back(MakeAgg2(AggFn::kMax, "A", cmp, AggFn::kAvg, "B"));
    // count() rows: outside the paper's tables, handled by the same
    // achievable-interval machinery (sound; tight only on the lo side).
    out.push_back(MakeAgg2(AggFn::kCount, "A", cmp, AggFn::kCount, "B"));
    out.push_back(MakeAgg2(AggFn::kCount, "A", cmp, AggFn::kMax, "B"));
    out.push_back(MakeAgg2(AggFn::kMin, "A", cmp, AggFn::kCount, "B"));
  }
  return out;
}

// Oracle: is `s0` a valid S-set (Definition 3) — some frequent T
// witness satisfies the constraint with it?
bool IsValidSSet(const Instance& inst, const TwoVarConstraint& c,
                 const Itemset& s0) {
  for (const Itemset& t : inst.frequent_t) {
    auto ok = EvalPair(c, s0, t, inst.catalog);
    EXPECT_TRUE(ok.ok());
    if (ok.ok() && ok.value()) return true;
  }
  return false;
}

bool IsValidTSet(const Instance& inst, const TwoVarConstraint& c,
                 const Itemset& t0) {
  for (const Itemset& s : inst.frequent_s) {
    auto ok = EvalPair(c, s, t0, inst.catalog);
    EXPECT_TRUE(ok.ok());
    if (ok.ok() && ok.value()) return true;
  }
  return false;
}

bool SatisfiesConjunction(const std::vector<OneVarConstraint>& cs, Var var,
                          const Itemset& x, const ItemCatalog& catalog) {
  auto ok = EvalAll(cs, var, x, catalog);
  EXPECT_TRUE(ok.ok());
  return ok.ok() && ok.value();
}

// ---------- Soundness: the reduced conditions never prune valid sets. ----

class ReductionSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(ReductionSoundnessTest, NoValidSetIsPruned) {
  const Instance inst = MakeInstance(GetParam());
  for (const TwoVarConstraint& c : AllConstraints()) {
    auto reduction = ReduceTwoVar(c, inst.l1_s, inst.l1_t, inst.catalog);
    ASSERT_TRUE(reduction.ok()) << ToString(c);
    const Reduction& r = reduction.value();
    ForEachNonEmptySubset(inst.s_domain, [&](const Itemset& s0) {
      if (!IsValidSSet(inst, c, s0)) return;
      ASSERT_TRUE(r.s.satisfiable)
          << ToString(c) << ": valid " << ToString(s0) << " but side unsat";
      EXPECT_TRUE(
          SatisfiesConjunction(r.s.constraints, Var::kS, s0, inst.catalog))
          << ToString(c) << " prunes valid S-set " << ToString(s0);
    });
    ForEachNonEmptySubset(inst.t_domain, [&](const Itemset& t0) {
      if (!IsValidTSet(inst, c, t0)) return;
      ASSERT_TRUE(r.t.satisfiable) << ToString(c);
      EXPECT_TRUE(
          SatisfiesConjunction(r.t.constraints, Var::kT, t0, inst.catalog))
          << ToString(c) << " prunes valid T-set " << ToString(t0);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionSoundnessTest,
                         ::testing::Range(0, 8));

// ---------- Tightness: where flagged, only invalid sets are pruned. ------

class ReductionTightnessTest : public ::testing::TestWithParam<int> {};

TEST_P(ReductionTightnessTest, TightSidesPruneExactly) {
  const Instance inst = MakeInstance(GetParam() + 200);
  for (const TwoVarConstraint& c : AllConstraints()) {
    auto reduction = ReduceTwoVar(c, inst.l1_s, inst.l1_t, inst.catalog);
    ASSERT_TRUE(reduction.ok()) << ToString(c);
    const Reduction& r = reduction.value();
    if (r.s.tight && r.s.satisfiable) {
      ForEachNonEmptySubset(inst.s_domain, [&](const Itemset& s0) {
        if (SatisfiesConjunction(r.s.constraints, Var::kS, s0,
                                 inst.catalog)) {
          EXPECT_TRUE(IsValidSSet(inst, c, s0))
              << ToString(c) << " admits invalid S-set " << ToString(s0);
        }
      });
    }
    if (r.t.tight && r.t.satisfiable) {
      ForEachNonEmptySubset(inst.t_domain, [&](const Itemset& t0) {
        if (SatisfiesConjunction(r.t.constraints, Var::kT, t0,
                                 inst.catalog)) {
          EXPECT_TRUE(IsValidTSet(inst, c, t0))
              << ToString(c) << " admits invalid T-set " << ToString(t0);
        }
      });
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionTightnessTest,
                         ::testing::Range(0, 8));

// ---------- Specific Figure-2 / Figure-3 rows. ----------------------------

TEST(ReductionTest, DisjointRowMatchesLemmas2And3) {
  const Instance inst = MakeInstance(42);
  auto r = ReduceTwoVar(MakeDomain2("A", SetCmp::kDisjoint, "B"), inst.l1_s,
                        inst.l1_t, inst.catalog);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->s.constraints.size(), 1u);
  const auto& d = std::get<DomainConstraint1>(r->s.constraints[0].body);
  EXPECT_EQ(d.cmp, SetCmp::kNotSuperset);
  EXPECT_EQ(d.attr, "A");
  EXPECT_TRUE(r->s.tight);
  EXPECT_TRUE(r->t.tight);
}

TEST(ReductionTest, MaxLeMinRowMatchesFigure3) {
  // max(S.A) <= min(T.B) reduces to max(CS.A) <= max(L1T.B) and
  // min(CT.B) >= min(L1S.A).
  Instance inst = MakeInstance(43);
  auto r = ReduceTwoVar(MakeAgg2(AggFn::kMax, "A", CmpOp::kLe, AggFn::kMin,
                                 "B"),
                        inst.l1_s, inst.l1_t, inst.catalog);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->s.constraints.size(), 1u);
  ASSERT_EQ(r->t.constraints.size(), 1u);
  const auto& cs = std::get<AggConstraint1>(r->s.constraints[0].body);
  EXPECT_EQ(cs.agg, AggFn::kMax);
  EXPECT_EQ(cs.cmp, CmpOp::kLe);
  auto ltb = ProjectSet("B", inst.l1_t, inst.catalog);
  ASSERT_TRUE(ltb.ok());
  EXPECT_EQ(cs.constant, ltb->back());  // max of L1T.B.
  const auto& ct = std::get<AggConstraint1>(r->t.constraints[0].body);
  EXPECT_EQ(ct.agg, AggFn::kMin);
  EXPECT_EQ(ct.cmp, CmpOp::kGe);
  auto lsa = ProjectSet("A", inst.l1_s, inst.catalog);
  ASSERT_TRUE(lsa.ok());
  EXPECT_EQ(ct.constant, lsa->front());  // min of L1S.A.
  EXPECT_TRUE(r->s.tight);
  EXPECT_TRUE(r->t.tight);
}

TEST(ReductionTest, SubsetRowIsSoundButNotTight) {
  const Instance inst = MakeInstance(44);
  auto r = ReduceTwoVar(MakeDomain2("A", SetCmp::kSubset, "B"), inst.l1_s,
                        inst.l1_t, inst.catalog);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->s.tight);  // Needs a frequent multi-item witness.
  EXPECT_TRUE(r->t.tight);
}

TEST(ReductionTest, SumSumRowGivesLooseUpperBound) {
  const Instance inst = MakeInstance(45);
  auto r = ReduceTwoVar(
      MakeAgg2(AggFn::kSum, "A", CmpOp::kLe, AggFn::kSum, "B"), inst.l1_s,
      inst.l1_t, inst.catalog);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->s.constraints.size(), 1u);
  const auto& cs = std::get<AggConstraint1>(r->s.constraints[0].body);
  EXPECT_EQ(cs.agg, AggFn::kSum);
  double total = 0;
  auto proj = inst.catalog.Project("B", inst.l1_t);
  ASSERT_TRUE(proj.ok());
  for (AttrValue v : proj.value()) total += v;
  EXPECT_EQ(cs.constant, total);  // sum(L1T.B): Section 5.1's bound.
  EXPECT_FALSE(r->s.tight);
  // T side: sum(CT.B) >= min(L1S.A) is tight (singleton witness).
  EXPECT_TRUE(r->t.tight);
}

TEST(ReductionTest, EmptyOtherSideIsUnsatisfiable) {
  const Instance inst = MakeInstance(46);
  auto r = ReduceTwoVar(MakeDomain2("A", SetCmp::kDisjoint, "B"), inst.l1_s,
                        /*l1_t=*/{}, inst.catalog);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->s.satisfiable);
  EXPECT_TRUE(r->t.satisfiable);  // l1_s is non-empty here.
}

TEST(ReductionTest, UnknownAttributeFails) {
  const Instance inst = MakeInstance(47);
  EXPECT_FALSE(ReduceTwoVar(MakeDomain2("Nope", SetCmp::kDisjoint, "B"),
                            inst.l1_s, inst.l1_t, inst.catalog)
                   .ok());
}

// ---------- Achievable intervals. -----------------------------------------

TEST(AchievableAggTest, MinMaxAvgUseL1Extremes) {
  ItemCatalog catalog(4);
  ASSERT_TRUE(catalog.AddNumericAttr("B", {3, 7, 1, 9}).ok());
  for (AggFn agg : {AggFn::kMin, AggFn::kMax, AggFn::kAvg}) {
    auto i = AchievableAgg(agg, "B", {0, 1, 2}, catalog);
    ASSERT_TRUE(i.ok());
    EXPECT_EQ(i->lo, 1);
    EXPECT_EQ(i->hi, 7);
    EXPECT_TRUE(i->lo_tight);
    EXPECT_TRUE(i->hi_tight);
    EXPECT_FALSE(i->empty);
  }
}

TEST(AchievableAggTest, SumUsesTotalUpperBound) {
  ItemCatalog catalog(4);
  ASSERT_TRUE(catalog.AddNumericAttr("B", {3, 7, 1, 9}).ok());
  auto i = AchievableAgg(AggFn::kSum, "B", {0, 1, 2}, catalog);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->lo, 1);
  EXPECT_TRUE(i->lo_tight);
  EXPECT_EQ(i->hi, 11);
  EXPECT_FALSE(i->hi_tight);
}

TEST(AchievableAggTest, EmptyL1) {
  ItemCatalog catalog(2);
  ASSERT_TRUE(catalog.AddNumericAttr("B", {1, 2}).ok());
  auto i = AchievableAgg(AggFn::kMin, "B", {}, catalog);
  ASSERT_TRUE(i.ok());
  EXPECT_TRUE(i->empty);
}

TEST(AchievableAggTest, CountInterval) {
  ItemCatalog catalog(4);
  ASSERT_TRUE(catalog.AddNumericAttr("B", {3, 3, 1, 9}).ok());
  auto i = AchievableAgg(AggFn::kCount, "B", {0, 1, 2, 3}, catalog);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->lo, 1);
  EXPECT_EQ(i->hi, 3);  // Distinct values {1, 3, 9}.
}

// ---------- Induced weaker constraints (Figure 4). -------------------------

TEST(InduceWeakerTest, Figure4Rows) {
  auto expect_induced = [](const TwoVarConstraint& c, AggFn s, AggFn t) {
    const auto induced = InduceWeaker(c);
    ASSERT_EQ(induced.size(), 1u) << ToString(c);
    const auto& a = std::get<AggConstraint2>(induced[0]);
    EXPECT_EQ(a.agg_s, s) << ToString(c);
    EXPECT_EQ(a.agg_t, t) << ToString(c);
  };
  expect_induced(MakeAgg2(AggFn::kAvg, "A", CmpOp::kLe, AggFn::kMin, "B"),
                 AggFn::kMin, AggFn::kMin);
  expect_induced(MakeAgg2(AggFn::kSum, "A", CmpOp::kLe, AggFn::kMax, "B"),
                 AggFn::kMax, AggFn::kMax);
  expect_induced(MakeAgg2(AggFn::kAvg, "A", CmpOp::kLe, AggFn::kAvg, "B"),
                 AggFn::kMin, AggFn::kMax);
}

TEST(InduceWeakerTest, SumOnTheWrongSideHasNoForm) {
  EXPECT_TRUE(
      InduceWeaker(MakeAgg2(AggFn::kSum, "A", CmpOp::kLe, AggFn::kSum, "B"))
          .empty());
  EXPECT_TRUE(
      InduceWeaker(MakeAgg2(AggFn::kMin, "A", CmpOp::kLe, AggFn::kSum, "B"))
          .empty());
}

TEST(InduceWeakerTest, MinMaxConstraintsNeedNoInduction) {
  EXPECT_TRUE(
      InduceWeaker(MakeAgg2(AggFn::kMax, "A", CmpOp::kLe, AggFn::kMin, "B"))
          .empty());
}

TEST(InduceWeakerTest, DomainConstraintsNeedNoInduction) {
  EXPECT_TRUE(InduceWeaker(MakeDomain2("A", SetCmp::kDisjoint, "B")).empty());
}

TEST(InduceWeakerTest, EqualityInducesBothDirections) {
  const auto induced =
      InduceWeaker(MakeAgg2(AggFn::kAvg, "A", CmpOp::kEq, AggFn::kAvg, "B"));
  EXPECT_EQ(induced.size(), 2u);
}

TEST(InduceWeakerTest, SumRewriteNeedsNonnegativity) {
  EXPECT_TRUE(InduceWeaker(
                  MakeAgg2(AggFn::kSum, "A", CmpOp::kLe, AggFn::kMax, "B"),
                  /*nonnegative=*/false)
                  .empty());
}

// Property: induced constraints are genuinely weaker — implied by the
// original on every pair.
class InduceWeakerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(InduceWeakerPropertyTest, InducedIsImplied) {
  const Instance inst = MakeInstance(GetParam() + 500);
  for (const TwoVarConstraint& c : AllConstraints()) {
    const auto induced = InduceWeaker(c);
    if (induced.empty()) continue;
    ForEachNonEmptySubset(inst.s_domain, [&](const Itemset& s0) {
      // Sample T-sets from the frequent pool for speed.
      for (const Itemset& t0 : inst.frequent_t) {
        auto original = EvalPair(c, s0, t0, inst.catalog);
        ASSERT_TRUE(original.ok());
        if (!original.value()) continue;
        for (const TwoVarConstraint& w : induced) {
          auto weaker = EvalPair(w, s0, t0, inst.catalog);
          ASSERT_TRUE(weaker.ok());
          EXPECT_TRUE(weaker.value())
              << ToString(c) << " does not imply " << ToString(w) << " on ("
              << ToString(s0) << ", " << ToString(t0) << ")";
        }
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InduceWeakerPropertyTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace cfq
