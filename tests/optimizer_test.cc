#include "core/optimizer.h"

#include <gtest/gtest.h>

namespace cfq {
namespace {

CfqQuery BaseQuery() {
  CfqQuery q;
  q.s_domain = {0, 1, 2};
  q.t_domain = {3, 4, 5};
  q.min_support_s = 2;
  q.min_support_t = 2;
  return q;
}

TEST(OptimizerTest, RejectsEmptyDomains) {
  CfqQuery q = BaseQuery();
  q.s_domain.clear();
  EXPECT_FALSE(BuildPlan(q).ok());
}

TEST(OptimizerTest, RejectsZeroSupport) {
  CfqQuery q = BaseQuery();
  q.min_support_t = 0;
  EXPECT_FALSE(BuildPlan(q).ok());
}

TEST(OptimizerTest, QuasiSuccinctRouting) {
  CfqQuery q = BaseQuery();
  q.two_var.push_back(MakeDomain2("Type", SetCmp::kDisjoint, "Type"));
  q.two_var.push_back(
      MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price"));
  auto plan = BuildPlan(q);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->routes.size(), 2u);
  for (const TwoVarRoute& r : plan->routes) {
    EXPECT_TRUE(r.quasi_succinct);
    EXPECT_TRUE(r.induced.empty());
    EXPECT_FALSE(r.jmax_prunes_s);
  }
}

TEST(OptimizerTest, NonQuasiSuccinctGetsInducedAndJmax) {
  CfqQuery q = BaseQuery();
  q.two_var.push_back(
      MakeAgg2(AggFn::kSum, "Price", CmpOp::kLe, AggFn::kSum, "Price"));
  auto plan = BuildPlan(q);
  ASSERT_TRUE(plan.ok());
  const TwoVarRoute& r = plan->routes[0];
  EXPECT_FALSE(r.quasi_succinct);
  EXPECT_TRUE(r.loose_reduction);
  EXPECT_TRUE(r.induced.empty());  // sum<=sum has no min/max rewrite.
  EXPECT_TRUE(r.jmax_prunes_s);    // V^k from T bounds sum(S).
  EXPECT_TRUE(r.jmax_s_bound_anti_monotone);
  EXPECT_FALSE(r.jmax_prunes_t);   // No >= direction.
}

TEST(OptimizerTest, AvgLeSumRoutesJmaxAsOutputFilter) {
  CfqQuery q = BaseQuery();
  q.two_var.push_back(
      MakeAgg2(AggFn::kAvg, "Price", CmpOp::kLe, AggFn::kSum, "Price"));
  auto plan = BuildPlan(q);
  ASSERT_TRUE(plan.ok());
  const TwoVarRoute& r = plan->routes[0];
  EXPECT_TRUE(r.jmax_prunes_s);
  EXPECT_FALSE(r.jmax_s_bound_anti_monotone);  // avg bound can't prune.
}

TEST(OptimizerTest, SumOnSGeDirectionPrunesT) {
  CfqQuery q = BaseQuery();
  q.two_var.push_back(
      MakeAgg2(AggFn::kSum, "Price", CmpOp::kGe, AggFn::kSum, "Price"));
  auto plan = BuildPlan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->routes[0].jmax_prunes_t);
  EXPECT_FALSE(plan->routes[0].jmax_prunes_s);
}

TEST(OptimizerTest, InducedWeakerRecorded) {
  CfqQuery q = BaseQuery();
  q.two_var.push_back(
      MakeAgg2(AggFn::kAvg, "Price", CmpOp::kLe, AggFn::kAvg, "Price"));
  auto plan = BuildPlan(q);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->routes[0].induced.size(), 1u);
  const auto& w = std::get<AggConstraint2>(plan->routes[0].induced[0]);
  EXPECT_EQ(w.agg_s, AggFn::kMin);
  EXPECT_EQ(w.agg_t, AggFn::kMax);
}

TEST(OptimizerTest, TogglesDisableRouting) {
  CfqQuery q = BaseQuery();
  q.two_var.push_back(MakeDomain2("Type", SetCmp::kDisjoint, "Type"));
  q.two_var.push_back(
      MakeAgg2(AggFn::kSum, "Price", CmpOp::kLe, AggFn::kSum, "Price"));
  PlanOptions off;
  off.use_quasi_succinct = false;
  off.use_induced = false;
  off.use_jmax = false;
  auto plan = BuildPlan(q, off);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->routes[0].quasi_succinct);
  EXPECT_FALSE(plan->routes[1].loose_reduction);
  EXPECT_FALSE(plan->routes[1].jmax_prunes_s);
}

TEST(OptimizerTest, ExplainMentionsEachConstraint) {
  CfqQuery q = BaseQuery();
  q.one_var.push_back(MakeAgg1(Var::kS, AggFn::kSum, "Price", CmpOp::kLe, 100));
  q.two_var.push_back(MakeDomain2("Type", SetCmp::kEqual, "Type"));
  q.two_var.push_back(
      MakeAgg2(AggFn::kSum, "Price", CmpOp::kLe, AggFn::kSum, "Price"));
  auto plan = BuildPlan(q);
  ASSERT_TRUE(plan.ok());
  const std::string text = ExplainPlan(plan.value());
  EXPECT_NE(text.find("sum(S.Price) <= 100"), std::string::npos);
  EXPECT_NE(text.find("S.Type = T.Type"), std::string::npos);
  EXPECT_NE(text.find("quasi-succinct"), std::string::npos);
  EXPECT_NE(text.find("Jmax"), std::string::npos);
  EXPECT_NE(text.find("pair formation"), std::string::npos);
}

TEST(OptimizerTest, QueryToStringRendering) {
  CfqQuery q = BaseQuery();
  q.one_var.push_back(MakeAgg1(Var::kT, AggFn::kAvg, "Price", CmpOp::kGe, 200));
  const std::string text = ToString(q);
  EXPECT_NE(text.find("freq(S, 2)"), std::string::npos);
  EXPECT_NE(text.find("avg(T.Price) >= 200"), std::string::npos);
}

}  // namespace
}  // namespace cfq
