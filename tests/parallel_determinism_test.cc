// Determinism contract of the parallel engine: for every counter
// backend and every thread count, a query produces bit-identical
// results — same supports, same valid frequent sets, same answer
// pairs, same per-level counted totals. Sharded counting merges
// per-shard accumulators in shard order and the concurrent dovetail
// reproduces the sequential bound schedule, so nothing may drift.

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "core/executor.h"
#include "mining/bitmap_counter.h"
#include "mining/counter.h"

namespace cfq {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 8};
constexpr CounterKind kBackends[] = {CounterKind::kBitmap,
                                     CounterKind::kHash,
                                     CounterKind::kHashTree};

const char* BackendName(CounterKind kind) {
  switch (kind) {
    case CounterKind::kBitmap:
      return "bitmap";
    case CounterKind::kHash:
      return "hash";
    case CounterKind::kHashTree:
      return "hashtree";
  }
  return "?";
}

struct Instance {
  TransactionDb db{0};
  ItemCatalog catalog{0};
  CfqQuery query;
};

// Stress-style corpus: enough transactions that the counters actually
// shard (the parallel paths engage above ~512 transactions), with a
// sum-vs-sum constraint so the Jmax bounds channel carries traffic.
Instance MakeInstance(int seed, size_t num_txns = 1500) {
  Instance inst;
  const size_t n = 14;
  inst.db = TransactionDb(n);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> len(1, 7);
  std::uniform_int_distribution<ItemId> item(0, static_cast<ItemId>(n - 1));
  for (size_t t = 0; t < num_txns; ++t) {
    std::vector<ItemId> txn(static_cast<size_t>(len(rng)));
    for (auto& x : txn) x = item(rng);
    inst.db.Add(std::move(txn));
  }
  inst.catalog = ItemCatalog(n);
  std::vector<AttrValue> price(n);
  std::uniform_int_distribution<int> price_dist(1, 9);
  for (size_t i = 0; i < n; ++i) price[i] = price_dist(rng);
  EXPECT_TRUE(inst.catalog.AddNumericAttr("Price", price).ok());
  for (ItemId i = 0; i < n; ++i) {
    inst.query.s_domain.push_back(i);
    inst.query.t_domain.push_back(i);
  }
  inst.query.min_support_s = num_txns / 25;
  inst.query.min_support_t = num_txns / 12;
  inst.query.two_var.push_back(
      MakeAgg2(AggFn::kSum, "Price", CmpOp::kLe, AggFn::kSum, "Price"));
  return inst;
}

std::vector<Itemset> AllCandidates(size_t n, size_t k) {
  std::vector<Itemset> out;
  std::vector<ItemId> items(n);
  for (size_t i = 0; i < n; ++i) items[i] = static_cast<ItemId>(i);
  ForEachSubsetOfSize(MakeItemset(std::move(items)), k,
                      [&](const Itemset& subset) { out.push_back(subset); });
  return out;
}

// Raw counting: every backend, every thread count, same supports.
TEST(ParallelDeterminismTest, CountersAgreeAcrossThreadsAndBackends) {
  Instance inst = MakeInstance(7);
  for (size_t k : {1u, 2u, 3u}) {
    const std::vector<Itemset> candidates = AllCandidates(14, k);
    std::vector<uint64_t> baseline;
    for (CounterKind kind : kBackends) {
      for (size_t threads : kThreadCounts) {
        ThreadPool pool(threads);
        auto counter = MakeCounter(kind, &inst.db, &pool);
        CccStats stats;
        const auto supports = counter->Count(candidates, &stats);
        if (baseline.empty()) baseline = supports;
        EXPECT_EQ(supports, baseline)
            << BackendName(kind) << " threads=" << threads << " k=" << k;
        EXPECT_EQ(stats.sets_counted, candidates.size());
      }
    }
  }
}

// Full query: answers and side-sets identical across thread counts for
// every backend; per-level counted totals identical within a backend
// (the kHash shared-scan path has its own coarser bound schedule, so
// counted totals are compared per backend, answers globally).
TEST(ParallelDeterminismTest, MiningIsBitIdenticalAcrossThreadCounts) {
  for (int seed = 0; seed < 3; ++seed) {
    Instance first = MakeInstance(seed);
    std::vector<std::pair<Itemset, Itemset>> global_answers;
    for (CounterKind kind : kBackends) {
      std::vector<FrequentSet> base_s, base_t;
      std::vector<uint64_t> base_counted_s, base_counted_t;
      for (size_t threads : kThreadCounts) {
        Instance inst = MakeInstance(seed);
        PlanOptions options;
        options.counter = kind;
        options.threads = threads;
        auto result =
            ExecuteOptimized(&inst.db, inst.catalog, inst.query, options);
        ASSERT_TRUE(result.ok())
            << BackendName(kind) << " threads=" << threads << ": "
            << result.status();
        const auto answers = AnswerPairs(result.value());
        if (global_answers.empty()) global_answers = answers;
        EXPECT_EQ(answers, global_answers)
            << BackendName(kind) << " threads=" << threads;
        if (threads == kThreadCounts[0]) {
          base_s = result->s_sets;
          base_t = result->t_sets;
          base_counted_s = result->stats.s.candidates_per_level;
          base_counted_t = result->stats.t.candidates_per_level;
          continue;
        }
        ASSERT_EQ(result->s_sets.size(), base_s.size())
            << BackendName(kind) << " threads=" << threads;
        for (size_t i = 0; i < base_s.size(); ++i) {
          EXPECT_EQ(result->s_sets[i].items, base_s[i].items);
          EXPECT_EQ(result->s_sets[i].support, base_s[i].support);
        }
        ASSERT_EQ(result->t_sets.size(), base_t.size());
        for (size_t i = 0; i < base_t.size(); ++i) {
          EXPECT_EQ(result->t_sets[i].items, base_t[i].items);
          EXPECT_EQ(result->t_sets[i].support, base_t[i].support);
        }
        EXPECT_EQ(result->stats.s.candidates_per_level, base_counted_s)
            << BackendName(kind) << " threads=" << threads;
        EXPECT_EQ(result->stats.t.candidates_per_level, base_counted_t)
            << BackendName(kind) << " threads=" << threads;
      }
    }
  }
}

// threads=0 (auto) is also on the deterministic contract.
TEST(ParallelDeterminismTest, AutoThreadsMatchesSerial) {
  Instance serial_inst = MakeInstance(11);
  PlanOptions serial;
  serial.threads = 1;
  auto serial_result = ExecuteOptimized(&serial_inst.db, serial_inst.catalog,
                                        serial_inst.query, serial);
  ASSERT_TRUE(serial_result.ok());

  Instance auto_inst = MakeInstance(11);
  PlanOptions auto_options;
  auto_options.threads = 0;
  auto auto_result = ExecuteOptimized(&auto_inst.db, auto_inst.catalog,
                                      auto_inst.query, auto_options);
  ASSERT_TRUE(auto_result.ok());
  EXPECT_EQ(AnswerPairs(serial_result.value()),
            AnswerPairs(auto_result.value()));
  EXPECT_EQ(serial_result->stats.s.candidates_per_level,
            auto_result->stats.s.candidates_per_level);
}

// The non-dovetailed and Apriori+ strategies honor the knob too.
TEST(ParallelDeterminismTest, OtherStrategiesAndModesStayDeterministic) {
  Instance inst = MakeInstance(5);
  for (bool dovetail : {true, false}) {
    std::vector<std::pair<Itemset, Itemset>> baseline;
    for (size_t threads : kThreadCounts) {
      PlanOptions options;
      options.dovetail = dovetail;
      options.threads = threads;
      Instance fresh = MakeInstance(5);
      auto result =
          ExecuteOptimized(&fresh.db, fresh.catalog, fresh.query, options);
      ASSERT_TRUE(result.ok());
      const auto answers = AnswerPairs(result.value());
      if (baseline.empty()) baseline = answers;
      EXPECT_EQ(answers, baseline)
          << "dovetail=" << dovetail << " threads=" << threads;
    }
  }
  std::vector<std::pair<Itemset, Itemset>> apriori_baseline;
  for (size_t threads : kThreadCounts) {
    PlanOptions options;
    options.threads = threads;
    Instance fresh = MakeInstance(5);
    auto result =
        ExecuteAprioriPlus(&fresh.db, fresh.catalog, fresh.query, options);
    ASSERT_TRUE(result.ok());
    const auto answers = AnswerPairs(result.value());
    if (apriori_baseline.empty()) apriori_baseline = answers;
    EXPECT_EQ(answers, apriori_baseline) << "threads=" << threads;
  }
}

// The identity contract extends across counting kernels: pinned-scalar
// and vectorized runs produce the same answers, side-set supports, and
// per-level counted totals at threads {1, 8}. Trivially passes on
// machines whose best kernel already is scalar — the cross-check then
// compares scalar against itself, which is still the contract.
TEST(ParallelDeterminismTest, MiningIsBitIdenticalScalarVsSimd) {
  const simd::Kernel active = simd::ActiveKernel();
  struct Baseline {
    std::vector<std::pair<Itemset, Itemset>> answers;
    std::vector<FrequentSet> s_sets, t_sets;
    std::vector<uint64_t> counted_s, counted_t;
    bool set = false;
  };
  for (int seed = 0; seed < 2; ++seed) {
    Baseline baseline;
    for (const char* kernel : {"scalar", simd::KernelName(active)}) {
      ASSERT_TRUE(simd::SetKernel(kernel));
      for (size_t threads : {1u, 8u}) {
        Instance inst = MakeInstance(seed);
        PlanOptions options;
        options.counter = CounterKind::kBitmap;
        options.threads = threads;
        auto result =
            ExecuteOptimized(&inst.db, inst.catalog, inst.query, options);
        ASSERT_TRUE(result.ok())
            << kernel << " threads=" << threads << ": " << result.status();
        EXPECT_EQ(result->stats.simd_kernel, kernel);
        if (!baseline.set) {
          baseline.answers = AnswerPairs(result.value());
          baseline.s_sets = result->s_sets;
          baseline.t_sets = result->t_sets;
          baseline.counted_s = result->stats.s.candidates_per_level;
          baseline.counted_t = result->stats.t.candidates_per_level;
          baseline.set = true;
          continue;
        }
        EXPECT_EQ(AnswerPairs(result.value()), baseline.answers)
            << kernel << " threads=" << threads;
        ASSERT_EQ(result->s_sets.size(), baseline.s_sets.size());
        for (size_t i = 0; i < baseline.s_sets.size(); ++i) {
          EXPECT_EQ(result->s_sets[i].items, baseline.s_sets[i].items);
          EXPECT_EQ(result->s_sets[i].support, baseline.s_sets[i].support);
        }
        ASSERT_EQ(result->t_sets.size(), baseline.t_sets.size());
        for (size_t i = 0; i < baseline.t_sets.size(); ++i) {
          EXPECT_EQ(result->t_sets[i].items, baseline.t_sets[i].items);
          EXPECT_EQ(result->t_sets[i].support, baseline.t_sets[i].support);
        }
        EXPECT_EQ(result->stats.s.candidates_per_level, baseline.counted_s)
            << kernel << " threads=" << threads;
        EXPECT_EQ(result->stats.t.candidates_per_level, baseline.counted_t)
            << kernel << " threads=" << threads;
      }
    }
    ASSERT_TRUE(simd::SetKernel(simd::KernelName(active)));
  }
}

// Eagerly built vertical index: counting through a pool right after
// construction works (the old lazy build raced on first Count).
TEST(ParallelDeterminismTest, VerticalIndexBuildIsExplicit) {
  Instance inst = MakeInstance(3, /*num_txns=*/2000);
  EXPECT_FALSE(inst.db.has_vertical_index());
  ThreadPool pool(4);
  BitmapCounter counter(&inst.db, &pool);
  EXPECT_TRUE(inst.db.has_vertical_index());

  // Parallel index build gives the same index as the serial one.
  Instance other = MakeInstance(3, /*num_txns=*/2000);
  other.db.BuildVerticalIndex(nullptr);
  auto serial_counter = MakeCounter(CounterKind::kBitmap, &other.db, nullptr);
  const std::vector<Itemset> candidates = AllCandidates(14, 2);
  CccStats stats;
  EXPECT_EQ(counter.Count(candidates, &stats),
            serial_counter->Count(candidates, &stats));
}

}  // namespace
}  // namespace cfq
