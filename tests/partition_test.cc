#include "mining/partition.h"

#include <map>
#include <random>

#include <gtest/gtest.h>

#include "data/synthetic_gen.h"

namespace cfq {
namespace {

TransactionDb RandomDb(int seed, size_t num_items, size_t num_txns) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> len(1, 6);
  std::uniform_int_distribution<ItemId> item(
      0, static_cast<ItemId>(num_items - 1));
  TransactionDb db(num_items);
  for (size_t t = 0; t < num_txns; ++t) {
    std::vector<ItemId> txn(static_cast<size_t>(len(rng)));
    for (auto& x : txn) x = item(rng);
    db.Add(std::move(txn));
  }
  return db;
}

std::map<Itemset, uint64_t> AsMap(const std::vector<FrequentSet>& sets) {
  std::map<Itemset, uint64_t> out;
  for (const FrequentSet& f : sets) out[f.items] = f.support;
  return out;
}

Itemset FullDomain(size_t n) {
  Itemset out;
  for (ItemId i = 0; i < n; ++i) out.push_back(i);
  return out;
}

TEST(PartitionTest, RejectsBadArguments) {
  TransactionDb db = RandomDb(1, 5, 20);
  EXPECT_FALSE(MineFrequentPartitioned(&db, FullDomain(5), 0).ok());
  PartitionOptions zero;
  zero.num_partitions = 0;
  EXPECT_FALSE(MineFrequentPartitioned(&db, FullDomain(5), 2, zero).ok());
}

TEST(PartitionTest, SinglePartitionIsPlainApriori) {
  TransactionDb db = RandomDb(2, 8, 100);
  PartitionOptions options;
  options.num_partitions = 1;
  auto partitioned =
      MineFrequentPartitioned(&db, FullDomain(8), 4, options);
  ASSERT_TRUE(partitioned.ok());
  auto exact = MineFrequent(&db, FullDomain(8), 4);
  EXPECT_EQ(AsMap(partitioned->frequent), AsMap(exact.frequent));
}

TEST(PartitionTest, EmptyDatabase) {
  TransactionDb db(5);
  auto result = MineFrequentPartitioned(&db, FullDomain(5), 2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->frequent.empty());
}

TEST(PartitionTest, MorePartitionsThanTransactions) {
  TransactionDb db(4);
  db.Add({0, 1});
  db.Add({0, 1});
  PartitionOptions options;
  options.num_partitions = 10;
  auto result = MineFrequentPartitioned(&db, FullDomain(4), 2, options);
  ASSERT_TRUE(result.ok());
  auto exact = MineFrequent(&db, FullDomain(4), 2);
  EXPECT_EQ(AsMap(result->frequent), AsMap(exact.frequent));
}

class PartitionOracleTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, size_t>> {};

TEST_P(PartitionOracleTest, ExactAcrossPartitionCounts) {
  const auto [seed, min_support, parts] = GetParam();
  TransactionDb db = RandomDb(seed, 10, 150);
  PartitionOptions options;
  options.num_partitions = parts;
  auto partitioned =
      MineFrequentPartitioned(&db, FullDomain(10), min_support, options);
  ASSERT_TRUE(partitioned.ok());
  auto exact = MineFrequent(&db, FullDomain(10), min_support);
  EXPECT_EQ(AsMap(partitioned->frequent), AsMap(exact.frequent))
      << "seed=" << seed << " support=" << min_support
      << " partitions=" << parts;
  EXPECT_GE(partitioned->global_candidates, exact.frequent.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, PartitionOracleTest,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(uint64_t{3}, uint64_t{8}),
                       ::testing::Values(size_t{2}, size_t{4}, size_t{7})));

TEST(SampleTest, RejectsBadArguments) {
  TransactionDb db = RandomDb(3, 5, 20);
  EXPECT_FALSE(MineFrequentSampled(&db, FullDomain(5), 0).ok());
  SampleOptions bad;
  bad.sample_fraction = 0;
  EXPECT_FALSE(MineFrequentSampled(&db, FullDomain(5), 2, bad).ok());
  bad.sample_fraction = 0.5;
  bad.safety = 1.5;
  EXPECT_FALSE(MineFrequentSampled(&db, FullDomain(5), 2, bad).ok());
}

TEST(SampleTest, EmptyDatabase) {
  TransactionDb db(4);
  auto result = MineFrequentSampled(&db, FullDomain(4), 2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->frequent.empty());
}

TEST(SampleTest, FullSampleIsExact) {
  TransactionDb db = RandomDb(4, 8, 100);
  SampleOptions options;
  options.sample_fraction = 1.0;
  options.safety = 1.0;
  auto sampled = MineFrequentSampled(&db, FullDomain(8), 4, options);
  ASSERT_TRUE(sampled.ok());
  auto exact = MineFrequent(&db, FullDomain(8), 4);
  EXPECT_EQ(AsMap(sampled->frequent), AsMap(exact.frequent));
}

// Toivonen's guarantee (with the exact-fallback on misses): the result
// is always exact, regardless of sample luck.
class SampleOracleTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, double>> {};

TEST_P(SampleOracleTest, AlwaysExact) {
  const auto [seed, min_support, fraction] = GetParam();
  TransactionDb db = RandomDb(seed + 20, 10, 200);
  SampleOptions options;
  options.sample_fraction = fraction;
  options.seed = static_cast<uint64_t>(seed);
  auto sampled =
      MineFrequentSampled(&db, FullDomain(10), min_support, options);
  ASSERT_TRUE(sampled.ok());
  auto exact = MineFrequent(&db, FullDomain(10), min_support);
  EXPECT_EQ(AsMap(sampled->frequent), AsMap(exact.frequent))
      << "seed=" << seed << " support=" << min_support
      << " fraction=" << fraction << " misses=" << sampled->misses;
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, SampleOracleTest,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(uint64_t{5}, uint64_t{12}),
                       ::testing::Values(0.1, 0.3, 0.6)));

TEST(SampleTest, QuestDataExact) {
  QuestParams params;
  params.num_transactions = 800;
  params.num_items = 40;
  params.num_patterns = 20;
  params.seed = 13;
  auto generated = GenerateQuestDb(params);
  ASSERT_TRUE(generated.ok());
  TransactionDb db = std::move(generated).value();
  auto sampled = MineFrequentSampled(&db, FullDomain(40), 20);
  ASSERT_TRUE(sampled.ok());
  auto exact = MineFrequent(&db, FullDomain(40), 20);
  EXPECT_EQ(AsMap(sampled->frequent), AsMap(exact.frequent));
}

}  // namespace
}  // namespace cfq
