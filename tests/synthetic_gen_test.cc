#include "data/synthetic_gen.h"

#include <gtest/gtest.h>

namespace cfq {
namespace {

QuestParams SmallParams() {
  QuestParams p;
  p.num_transactions = 500;
  p.avg_transaction_size = 8;
  p.avg_pattern_size = 3;
  p.num_patterns = 50;
  p.num_items = 60;
  p.seed = 7;
  return p;
}

TEST(SyntheticGenTest, ProducesRequestedTransactionCount) {
  auto db = GenerateQuestDb(SmallParams());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_transactions(), 500u);
  EXPECT_EQ(db->num_items(), 60u);
}

TEST(SyntheticGenTest, NoEmptyTransactions) {
  auto db = GenerateQuestDb(SmallParams());
  ASSERT_TRUE(db.ok());
  for (const Itemset& t : db->transactions()) {
    EXPECT_FALSE(t.empty());
  }
}

TEST(SyntheticGenTest, DeterministicForSameSeed) {
  auto a = GenerateQuestDb(SmallParams());
  auto b = GenerateQuestDb(SmallParams());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->transactions(), b->transactions());
}

TEST(SyntheticGenTest, DifferentSeedsDiffer) {
  QuestParams p = SmallParams();
  auto a = GenerateQuestDb(p);
  p.seed = 8;
  auto b = GenerateQuestDb(p);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->transactions(), b->transactions());
}

TEST(SyntheticGenTest, MeanTransactionSizeIsClose) {
  QuestParams p = SmallParams();
  p.num_transactions = 2000;
  auto db = GenerateQuestDb(p);
  ASSERT_TRUE(db.ok());
  double total = 0;
  for (const Itemset& t : db->transactions()) total += t.size();
  const double mean = total / db->num_transactions();
  // Corruption + dedup pull the mean below |T|; it must be in a sane band.
  EXPECT_GT(mean, 2.0);
  EXPECT_LT(mean, 16.0);
}

TEST(SyntheticGenTest, PatternsAreReturnedAndNormalized) {
  QuestPatterns patterns;
  auto db = GenerateQuestDbWithPatterns(SmallParams(), &patterns);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(patterns.patterns.size(), 50u);
  double total_weight = 0;
  for (double w : patterns.weights) {
    EXPECT_GT(w, 0);
    total_weight += w;
  }
  EXPECT_NEAR(total_weight, 1.0, 1e-9);
  for (double c : patterns.corruption) {
    EXPECT_GE(c, 0);
    EXPECT_LE(c, 1);
  }
  for (const Itemset& pat : patterns.patterns) {
    EXPECT_FALSE(pat.empty());
    EXPECT_TRUE(IsCanonical(pat));
  }
}

TEST(SyntheticGenTest, FrequentPatternsEmerge) {
  // The heaviest pattern's items should co-occur far more often than
  // random pairs would.
  QuestParams p = SmallParams();
  p.num_transactions = 3000;
  p.corruption_mean = 0.25;
  QuestPatterns patterns;
  auto db = GenerateQuestDbWithPatterns(p, &patterns);
  ASSERT_TRUE(db.ok());
  size_t heaviest = 0;
  for (size_t i = 1; i < patterns.weights.size(); ++i) {
    if (patterns.weights[i] > patterns.weights[heaviest]) heaviest = i;
  }
  const Itemset& pat = patterns.patterns[heaviest];
  if (pat.size() >= 2) {
    const Itemset pair{pat[0], pat[1]};
    const double expected_random =
        db->num_transactions() * 0.02;  // Generous random-co-occurrence bar.
    EXPECT_GT(db->CountSupport(pair), expected_random);
  }
}

TEST(SyntheticGenTest, RejectsZeroItems) {
  QuestParams p = SmallParams();
  p.num_items = 0;
  EXPECT_EQ(GenerateQuestDb(p).status().code(), StatusCode::kInvalidArgument);
}

TEST(SyntheticGenTest, RejectsZeroPatterns) {
  QuestParams p = SmallParams();
  p.num_patterns = 0;
  EXPECT_EQ(GenerateQuestDb(p).status().code(), StatusCode::kInvalidArgument);
}

TEST(SyntheticGenTest, RejectsNonPositiveSizes) {
  QuestParams p = SmallParams();
  p.avg_transaction_size = 0;
  EXPECT_FALSE(GenerateQuestDb(p).ok());
  p = SmallParams();
  p.avg_pattern_size = -1;
  EXPECT_FALSE(GenerateQuestDb(p).ok());
}

TEST(SyntheticGenTest, RejectsPatternLargerThanUniverse) {
  QuestParams p = SmallParams();
  p.avg_pattern_size = 1000;
  EXPECT_FALSE(GenerateQuestDb(p).ok());
}

TEST(SyntheticGenTest, RejectsBadCorrelationAndCorruption) {
  QuestParams p = SmallParams();
  p.correlation = 1.5;
  EXPECT_FALSE(GenerateQuestDb(p).ok());
  p = SmallParams();
  p.corruption_mean = -0.1;
  EXPECT_FALSE(GenerateQuestDb(p).ok());
}

TEST(SyntheticGenTest, HighCorruptionStillTerminates) {
  QuestParams p = SmallParams();
  p.corruption_mean = 1.0;
  p.corruption_sigma = 0.0;
  auto db = GenerateQuestDb(p);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_transactions(), 500u);
}

}  // namespace
}  // namespace cfq
