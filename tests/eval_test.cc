#include "constraints/eval.h"

#include <gtest/gtest.h>

namespace cfq {
namespace {

// Catalog: items 0..5 with Price {10,20,30,40,50,60} and
// Type {0,0,1,1,2,2}.
ItemCatalog MakeCatalog() {
  ItemCatalog catalog(6);
  EXPECT_TRUE(
      catalog.AddNumericAttr("Price", {10, 20, 30, 40, 50, 60}).ok());
  EXPECT_TRUE(catalog.AddCategoricalAttr("Type", {0, 0, 1, 1, 2, 2}).ok());
  return catalog;
}

bool MustEval(const OneVarConstraint& c, const Itemset& s,
              const ItemCatalog& catalog) {
  auto r = Eval(c, s, catalog);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() && r.value();
}

bool MustEvalPair(const TwoVarConstraint& c, const Itemset& s,
                  const Itemset& t, const ItemCatalog& catalog) {
  auto r = EvalPair(c, s, t, catalog);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() && r.value();
}

TEST(EvalTest, ProjectSetDedupes) {
  const ItemCatalog catalog = MakeCatalog();
  auto set = ProjectSet("Type", {0, 1, 2}, catalog);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set.value(), (std::vector<AttrValue>{0, 1}));
}

TEST(EvalTest, SetCmpAllOperators) {
  const std::vector<AttrValue> x{1, 2};
  const std::vector<AttrValue> y{1, 2, 3};
  EXPECT_TRUE(EvalSetCmp(x, SetCmp::kSubset, y));
  EXPECT_FALSE(EvalSetCmp(y, SetCmp::kSubset, x));
  EXPECT_TRUE(EvalSetCmp(y, SetCmp::kSuperset, x));
  EXPECT_TRUE(EvalSetCmp(x, SetCmp::kIntersects, y));
  EXPECT_FALSE(EvalSetCmp(x, SetCmp::kDisjoint, y));
  EXPECT_TRUE(EvalSetCmp(x, SetCmp::kDisjoint, {7}));
  EXPECT_TRUE(EvalSetCmp(x, SetCmp::kNotEqual, y));
  EXPECT_TRUE(EvalSetCmp(x, SetCmp::kEqual, {1, 2}));
  EXPECT_TRUE(EvalSetCmp(y, SetCmp::kNotSubset, x));
  EXPECT_TRUE(EvalSetCmp(x, SetCmp::kNotSuperset, y));
}

TEST(EvalTest, SetCmpEmptySets) {
  const std::vector<AttrValue> empty;
  const std::vector<AttrValue> x{1};
  EXPECT_TRUE(EvalSetCmp(empty, SetCmp::kSubset, x));
  EXPECT_TRUE(EvalSetCmp(empty, SetCmp::kDisjoint, x));
  EXPECT_FALSE(EvalSetCmp(empty, SetCmp::kIntersects, x));
  EXPECT_TRUE(EvalSetCmp(empty, SetCmp::kEqual, empty));
  EXPECT_TRUE(EvalSetCmp(x, SetCmp::kSuperset, empty));
}

TEST(EvalTest, DomainConstraint1) {
  const ItemCatalog catalog = MakeCatalog();
  const auto subset =
      MakeDomain1(Var::kS, "Type", SetCmp::kSubset, {0.0, 1.0});
  EXPECT_TRUE(MustEval(subset, {0, 2}, catalog));
  EXPECT_FALSE(MustEval(subset, {0, 4}, catalog));  // Type 2 leaks in.

  const auto disjoint = MakeDomain1(Var::kS, "Type", SetCmp::kDisjoint, {2.0});
  EXPECT_TRUE(MustEval(disjoint, {0, 1, 2}, catalog));
  EXPECT_FALSE(MustEval(disjoint, {4}, catalog));
}

TEST(EvalTest, AggConstraint1AllOps) {
  const ItemCatalog catalog = MakeCatalog();
  const Itemset s{0, 1, 2};  // Prices 10, 20, 30.
  EXPECT_TRUE(MustEval(MakeAgg1(Var::kS, AggFn::kSum, "Price", CmpOp::kLe, 60),
                       s, catalog));
  EXPECT_FALSE(MustEval(
      MakeAgg1(Var::kS, AggFn::kSum, "Price", CmpOp::kLt, 60), s, catalog));
  EXPECT_TRUE(MustEval(MakeAgg1(Var::kS, AggFn::kMin, "Price", CmpOp::kEq, 10),
                       s, catalog));
  EXPECT_TRUE(MustEval(MakeAgg1(Var::kS, AggFn::kMax, "Price", CmpOp::kGe, 30),
                       s, catalog));
  EXPECT_TRUE(MustEval(MakeAgg1(Var::kS, AggFn::kAvg, "Price", CmpOp::kEq, 20),
                       s, catalog));
  EXPECT_TRUE(MustEval(
      MakeAgg1(Var::kS, AggFn::kCount, "Price", CmpOp::kNe, 2), s, catalog));
  EXPECT_TRUE(MustEval(MakeAgg1(Var::kS, AggFn::kSum, "Price", CmpOp::kGt, 59),
                       s, catalog));
}

TEST(EvalTest, EmptySetSemantics) {
  const ItemCatalog catalog = MakeCatalog();
  // min/max/avg over the empty set: constraint fails (not an error).
  EXPECT_FALSE(MustEval(
      MakeAgg1(Var::kS, AggFn::kMin, "Price", CmpOp::kLe, 100), {}, catalog));
  // sum over empty = 0; count = 0.
  EXPECT_TRUE(MustEval(MakeAgg1(Var::kS, AggFn::kSum, "Price", CmpOp::kEq, 0),
                       {}, catalog));
  EXPECT_TRUE(MustEval(
      MakeAgg1(Var::kS, AggFn::kCount, "Price", CmpOp::kEq, 0), {}, catalog));
}

TEST(EvalTest, UnknownAttributeIsError) {
  const ItemCatalog catalog = MakeCatalog();
  auto r = Eval(MakeAgg1(Var::kS, AggFn::kSum, "Nope", CmpOp::kLe, 1), {0},
                catalog);
  EXPECT_FALSE(r.ok());
}

TEST(EvalTest, TwoVarDomainConstraints) {
  const ItemCatalog catalog = MakeCatalog();
  const auto disjoint = MakeDomain2("Type", SetCmp::kDisjoint, "Type");
  EXPECT_TRUE(MustEvalPair(disjoint, {0, 1}, {2, 4}, catalog));
  EXPECT_FALSE(MustEvalPair(disjoint, {0, 2}, {3}, catalog));

  const auto subset = MakeDomain2("Type", SetCmp::kSubset, "Type");
  EXPECT_TRUE(MustEvalPair(subset, {0}, {1, 2}, catalog));
  EXPECT_FALSE(MustEvalPair(subset, {0, 2}, {1}, catalog));

  const auto equal = MakeDomain2("Type", SetCmp::kEqual, "Type");
  EXPECT_TRUE(MustEvalPair(equal, {0}, {1}, catalog));  // Both {type 0}.
  EXPECT_FALSE(MustEvalPair(equal, {0}, {2}, catalog));
}

TEST(EvalTest, TwoVarAggConstraints) {
  const ItemCatalog catalog = MakeCatalog();
  // max(S.Price) <= min(T.Price): snack/beer style.
  const auto cheap = MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin,
                              "Price");
  EXPECT_TRUE(MustEvalPair(cheap, {0, 1}, {2, 5}, catalog));   // 20 <= 30.
  EXPECT_FALSE(MustEvalPair(cheap, {0, 3}, {2, 5}, catalog));  // 40 > 30.

  const auto sums =
      MakeAgg2(AggFn::kSum, "Price", CmpOp::kLe, AggFn::kSum, "Price");
  EXPECT_TRUE(MustEvalPair(sums, {0, 1}, {4}, catalog));   // 30 <= 50.
  EXPECT_FALSE(MustEvalPair(sums, {4, 5}, {0}, catalog));  // 110 > 10.
}

TEST(EvalTest, TwoVarMixedAttrs) {
  const ItemCatalog catalog = MakeCatalog();
  // S.Type intersects T.Type across different item sets.
  const auto inter = MakeDomain2("Type", SetCmp::kIntersects, "Type");
  EXPECT_TRUE(MustEvalPair(inter, {0, 2}, {3}, catalog));
  EXPECT_FALSE(MustEvalPair(inter, {0}, {4}, catalog));
}

TEST(EvalTest, EvalAllConjunctionAndVarFiltering) {
  const ItemCatalog catalog = MakeCatalog();
  std::vector<OneVarConstraint> cs;
  cs.push_back(MakeAgg1(Var::kS, AggFn::kSum, "Price", CmpOp::kLe, 100));
  cs.push_back(MakeAgg1(Var::kT, AggFn::kSum, "Price", CmpOp::kLe, 1));
  // The T constraint must not affect S evaluation.
  auto r = EvalAll(cs, Var::kS, {0, 1}, catalog);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
  r = EvalAll(cs, Var::kT, {0, 1}, catalog);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());
}

TEST(EvalTest, EvalAllPairsConjunction) {
  const ItemCatalog catalog = MakeCatalog();
  std::vector<TwoVarConstraint> cs;
  cs.push_back(MakeDomain2("Type", SetCmp::kDisjoint, "Type"));
  cs.push_back(
      MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price"));
  auto r = EvalAllPairs(cs, {0}, {4, 5}, catalog);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
  r = EvalAllPairs(cs, {4}, {0}, catalog);  // Price violates.
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());
}

TEST(EvalTest, ToStringRendering) {
  EXPECT_EQ(ToString(MakeAgg1(Var::kS, AggFn::kSum, "Price", CmpOp::kLe, 100)),
            "sum(S.Price) <= 100");
  EXPECT_EQ(ToString(MakeDomain1(Var::kT, "Type", SetCmp::kDisjoint, {1.0})),
            "T.Type disjoint {1}");
  EXPECT_EQ(ToString(MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin,
                              "Price")),
            "max(S.Price) <= min(T.Price)");
  EXPECT_EQ(ToString(MakeDomain2("Type", SetCmp::kEqual, "Type")),
            "S.Type = T.Type");
}

}  // namespace
}  // namespace cfq
