// Kernel-level tests for common/simd.h: dispatcher behavior, accounting,
// and raw word-array equality between the scalar reference and every
// kernel this CPU can run. Bitset64-level cross-checks (tail invariant,
// exhaustive size sweeps) live in bitset64_test.cc.

#include "common/simd.h"

#include <bit>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cfq {
namespace {

std::vector<uint64_t> RandomWords(size_t n, uint32_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> words(n);
  for (auto& w : words) w = rng();
  return words;
}

// Restores whatever kernel was active before the test, so pinning in
// one test never leaks into another.
class SimdTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = simd::ActiveKernel(); }
  void TearDown() override {
    ASSERT_TRUE(simd::SetKernel(simd::KernelName(previous_)));
  }

  simd::Kernel previous_;
};

TEST_F(SimdTest, KernelNamesRoundTrip) {
  for (size_t i = 0; i < simd::kNumKernels; ++i) {
    const auto kernel = static_cast<simd::Kernel>(i);
    const std::string name = simd::KernelName(kernel);
    EXPECT_FALSE(name.empty());
    if (simd::KernelSupported(kernel)) {
      EXPECT_TRUE(simd::SetKernel(name.c_str())) << name;
      EXPECT_EQ(simd::ActiveKernel(), kernel) << name;
    }
  }
}

TEST_F(SimdTest, SetKernelRejectsUnknownNames) {
  const simd::Kernel before = simd::ActiveKernel();
  EXPECT_FALSE(simd::SetKernel("bogus"));
  EXPECT_FALSE(simd::SetKernel(""));
  EXPECT_FALSE(simd::SetKernel(nullptr));
  EXPECT_EQ(simd::ActiveKernel(), before);
}

TEST_F(SimdTest, OffAliasesScalar) {
  ASSERT_TRUE(simd::SetKernel("off"));
  EXPECT_EQ(simd::ActiveKernel(), simd::Kernel::kScalar);
}

TEST_F(SimdTest, ScalarAlwaysSupportedAndDetectable) {
  EXPECT_TRUE(simd::KernelSupported(simd::Kernel::kScalar));
  EXPECT_TRUE(simd::KernelSupported(simd::DetectBestKernel()));
}

TEST_F(SimdTest, OpNamesAreDistinct) {
  std::vector<std::string> names;
  for (size_t i = 0; i < simd::kNumOps; ++i) {
    names.push_back(simd::OpName(static_cast<simd::Op>(i)));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST_F(SimdTest, AccountingAdvancesOnCalls) {
  const simd::OpCounters before = simd::CountersFor(simd::Op::kAndCount);
  const auto a = RandomWords(33, 1);
  const auto b = RandomWords(33, 2);
  (void)simd::AndCount(a.data(), b.data(), a.size());
  const simd::OpCounters after = simd::CountersFor(simd::Op::kAndCount);
  EXPECT_EQ(after.calls, before.calls + 1);
  EXPECT_EQ(after.words, before.words + 33);
}

// Every supported kernel must produce the scalar kernel's exact
// integers on every op, for sizes covering all remainder paths of the
// unrolled/vectorized loops.
TEST_F(SimdTest, AllSupportedKernelsMatchScalar) {
  const std::vector<size_t> sizes = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                     31, 32, 33, 63, 64, 65, 1000, 4097};
  for (size_t kernel_index = 0; kernel_index < simd::kNumKernels;
       ++kernel_index) {
    const auto kernel = static_cast<simd::Kernel>(kernel_index);
    if (!simd::KernelSupported(kernel)) continue;
    SCOPED_TRACE(simd::KernelName(kernel));
    for (size_t n : sizes) {
      SCOPED_TRACE("n=" + std::to_string(n));
      const auto a = RandomWords(n, static_cast<uint32_t>(n) * 3 + 1);
      const auto b = RandomWords(n, static_cast<uint32_t>(n) * 3 + 2);

      // Scalar reference results.
      ASSERT_TRUE(simd::SetKernel("scalar"));
      const uint64_t ref_count = simd::Count(a.data(), n);
      const uint64_t ref_and = simd::AndCount(a.data(), b.data(), n);
      std::vector<uint64_t> ref_out(n);
      const uint64_t ref_into =
          simd::AndInto(a.data(), b.data(), ref_out.data(), n);
      std::vector<uint64_t> ref_acc = a;
      simd::AndWith(ref_acc.data(), b.data(), n);

      uint64_t check = 0;
      for (size_t i = 0; i < n; ++i) {
        check += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
      }
      ASSERT_EQ(ref_and, check);

      ASSERT_TRUE(simd::SetKernel(simd::KernelName(kernel)));
      EXPECT_EQ(simd::Count(a.data(), n), ref_count);
      EXPECT_EQ(simd::AndCount(a.data(), b.data(), n), ref_and);
      std::vector<uint64_t> out(n);
      EXPECT_EQ(simd::AndInto(a.data(), b.data(), out.data(), n), ref_into);
      EXPECT_EQ(out, ref_out);
      std::vector<uint64_t> acc = a;
      simd::AndWith(acc.data(), b.data(), n);
      EXPECT_EQ(acc, ref_acc);
    }
  }
}

TEST_F(SimdTest, AndCountManyMatchesScalarOnAllKernels) {
  const std::vector<size_t> sizes = {0, 1, 5, 64, 65, 257, 1000};
  const std::vector<size_t> widths = {0, 1, 2, 3, 4, 5, 8, 13};
  for (size_t kernel_index = 0; kernel_index < simd::kNumKernels;
       ++kernel_index) {
    const auto kernel = static_cast<simd::Kernel>(kernel_index);
    if (!simd::KernelSupported(kernel)) continue;
    SCOPED_TRACE(simd::KernelName(kernel));
    for (size_t n : sizes) {
      for (size_t width : widths) {
        const auto base = RandomWords(n, static_cast<uint32_t>(n) + 11);
        std::vector<std::vector<uint64_t>> others;
        std::vector<const uint64_t*> ptrs;
        for (size_t j = 0; j < width; ++j) {
          others.push_back(
              RandomWords(n, static_cast<uint32_t>(n * 100 + j)));
        }
        for (const auto& o : others) ptrs.push_back(o.data());

        ASSERT_TRUE(simd::SetKernel("scalar"));
        std::vector<uint64_t> ref(width, ~uint64_t{0});
        simd::AndCountMany(base.data(), ptrs.data(), width, n, ref.data());
        for (size_t j = 0; j < width; ++j) {
          ASSERT_EQ(ref[j], simd::AndCount(base.data(), ptrs[j], n));
        }

        ASSERT_TRUE(simd::SetKernel(simd::KernelName(kernel)));
        std::vector<uint64_t> got(width, ~uint64_t{0});
        simd::AndCountMany(base.data(), ptrs.data(), width, n, got.data());
        EXPECT_EQ(got, ref) << "n=" << n << " width=" << width;
      }
    }
  }
}

TEST_F(SimdTest, AndIntoToleratesAliasing) {
  for (size_t kernel_index = 0; kernel_index < simd::kNumKernels;
       ++kernel_index) {
    const auto kernel = static_cast<simd::Kernel>(kernel_index);
    if (!simd::KernelSupported(kernel)) continue;
    ASSERT_TRUE(simd::SetKernel(simd::KernelName(kernel)));
    const auto a = RandomWords(77, 5);
    const auto b = RandomWords(77, 6);
    std::vector<uint64_t> expect(77);
    for (size_t i = 0; i < 77; ++i) expect[i] = a[i] & b[i];

    std::vector<uint64_t> out_a = a;
    (void)simd::AndInto(out_a.data(), b.data(), out_a.data(), 77);
    EXPECT_EQ(out_a, expect) << simd::KernelName(kernel);

    std::vector<uint64_t> out_b = b;
    (void)simd::AndInto(a.data(), out_b.data(), out_b.data(), 77);
    EXPECT_EQ(out_b, expect) << simd::KernelName(kernel);
  }
}

}  // namespace
}  // namespace cfq
