#include "core/ccc_audit.h"

#include <random>

#include <gtest/gtest.h>

#include "core/executor.h"
#include "mining/apriori_plus.h"
#include "mining/cap.h"

namespace cfq {
namespace {

struct Instance {
  TransactionDb db{0};
  ItemCatalog catalog{0};
  Itemset domain;
};

Instance MakeInstance(int seed) {
  Instance inst;
  const size_t n = 8;
  inst.db = TransactionDb(n);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> len(1, 5);
  std::uniform_int_distribution<ItemId> item(0, n - 1);
  for (int t = 0; t < 60; ++t) {
    std::vector<ItemId> txn(static_cast<size_t>(len(rng)));
    for (auto& x : txn) x = item(rng);
    inst.db.Add(std::move(txn));
  }
  inst.catalog = ItemCatalog(n);
  std::vector<AttrValue> price(n);
  std::uniform_int_distribution<int> price_dist(1, 9);
  for (auto& v : price) v = price_dist(rng);
  EXPECT_TRUE(inst.catalog.AddNumericAttr("Price", price).ok());
  for (ItemId i = 0; i < n; ++i) inst.domain.push_back(i);
  return inst;
}

// Theorem 4: CAP is ccc-optimal for 1-var SUCCINCT constraints of the
// allowed form (the generate-only case the theorem's proof relies on).
class CapCccOptimalTest : public ::testing::TestWithParam<int> {};

TEST_P(CapCccOptimalTest, AllowedFormSuccinctConstraints) {
  Instance inst = MakeInstance(GetParam());
  const std::vector<std::vector<OneVarConstraint>> suites{
      {MakeAgg1(Var::kS, AggFn::kMax, "Price", CmpOp::kLe, 6)},
      {MakeAgg1(Var::kS, AggFn::kMin, "Price", CmpOp::kGe, 3)},
      {MakeDomain1(Var::kS, "Price", SetCmp::kSubset,
                   {2.0, 3.0, 4.0, 5.0, 6.0})},
      {MakeDomain1(Var::kS, "Price", SetCmp::kDisjoint, {9.0})},
      {MakeAgg1(Var::kS, AggFn::kMax, "Price", CmpOp::kLe, 7),
       MakeAgg1(Var::kS, AggFn::kMin, "Price", CmpOp::kGe, 2)},
  };
  for (const auto& constraints : suites) {
    std::vector<Itemset> counted;
    CapOptions options;
    options.counted_log = &counted;
    auto cap = RunCap(&inst.db, inst.catalog, inst.domain, Var::kS,
                      constraints, 4, options);
    ASSERT_TRUE(cap.ok());
    auto audit =
        AuditOneVar(inst.db, inst.catalog, inst.domain, Var::kS, constraints,
                    4, counted, cap->stats.constraint_checks);
    ASSERT_TRUE(audit.ok());
    EXPECT_TRUE(audit->ccc_optimal())
        << "extra=" << audit->extra_counted << " missed=" << audit->missed
        << " checks=" << audit->checks << "/" << audit->check_budget;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CapCccOptimalTest, ::testing::Range(0, 6));

// Apriori+ violates condition 1 whenever a selective constraint exists:
// it counts frequent-but-invalid sets.
TEST(CccAuditTest, AprioriPlusIsNotCccOptimal) {
  Instance inst = MakeInstance(77);
  const std::vector<OneVarConstraint> constraints{
      MakeAgg1(Var::kS, AggFn::kMax, "Price", CmpOp::kLe, 3)};
  std::vector<Itemset> counted;
  AprioriOptions options;
  options.counted_log = &counted;
  auto base = RunAprioriPlus(&inst.db, inst.catalog, inst.domain, Var::kS,
                             constraints, 3, options);
  ASSERT_TRUE(base.ok());
  auto audit =
      AuditOneVar(inst.db, inst.catalog, inst.domain, Var::kS, constraints, 3,
                  counted, base->stats.constraint_checks);
  ASSERT_TRUE(audit.ok());
  EXPECT_FALSE(audit->counted_only_required);
  EXPECT_GT(audit->extra_counted, 0u);
  // It also blows the singleton check budget: one check per frequent set.
  EXPECT_FALSE(audit->checks_within_budget);
}

// Without constraints, both CAP and Apriori+ are trivially ccc-optimal
// (the classic Apriori candidate space IS the required population).
TEST(CccAuditTest, UnconstrainedAprioriIsCccOptimal) {
  Instance inst = MakeInstance(78);
  std::vector<Itemset> counted;
  AprioriOptions options;
  options.counted_log = &counted;
  auto base = RunAprioriPlus(&inst.db, inst.catalog, inst.domain, Var::kS, {},
                             3, options);
  ASSERT_TRUE(base.ok());
  auto audit = AuditOneVar(inst.db, inst.catalog, inst.domain, Var::kS, {}, 3,
                           counted, base->stats.constraint_checks);
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->ccc_optimal());
}

// CAP with a NON-succinct anti-monotone constraint (sum <= c) is not
// ccc-optimal on condition 2 — it must check candidates beyond
// singletons. This is exactly why Theorem 4 is scoped to succinct
// constraints.
TEST(CccAuditTest, SumConstraintBreaksCheckBudget) {
  Instance inst = MakeInstance(79);
  const std::vector<OneVarConstraint> constraints{
      MakeAgg1(Var::kS, AggFn::kSum, "Price", CmpOp::kLe, 8)};
  std::vector<Itemset> counted;
  CapOptions options;
  options.counted_log = &counted;
  auto cap = RunCap(&inst.db, inst.catalog, inst.domain, Var::kS, constraints,
                    3, options);
  ASSERT_TRUE(cap.ok());
  auto audit =
      AuditOneVar(inst.db, inst.catalog, inst.domain, Var::kS, constraints, 3,
                  counted, cap->stats.constraint_checks);
  ASSERT_TRUE(audit.ok());
  // Condition 1 still holds (sum <= c is anti-monotone and checked
  // before counting) but condition 2 does not.
  EXPECT_TRUE(audit->counted_only_required);
  EXPECT_TRUE(audit->counted_all_required);
  EXPECT_FALSE(audit->checks_within_budget);
}

// Corollary 2: the optimizer strategy is ccc-optimal for 1-var succinct
// + 2-var quasi-succinct constraints whose reductions are tight, up to
// one interpretation nuance the paper glosses: the reduced constraints
// are set up AFTER level 1, so level-1 counting may include singletons
// the 2-var constraint later invalidates. We audit levels >= 2 strictly
// and allow level-1 extras.
class OptimizerCccTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerCccTest, QuasiSuccinctStrategyCountsOnlyRequiredBeyondL1) {
  Instance inst = MakeInstance(GetParam() + 300);
  CfqQuery query;
  for (ItemId i : inst.domain) {
    ((i % 2 == 0) ? query.s_domain : query.t_domain).push_back(i);
  }
  query.min_support_s = 3;
  query.min_support_t = 3;
  query.two_var.push_back(
      MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price"));

  std::vector<Itemset> counted_s, counted_t;
  PlanOptions options;
  options.counted_log_s = &counted_s;
  options.counted_log_t = &counted_t;
  auto result = ExecuteOptimized(&inst.db, inst.catalog, query, options);
  ASSERT_TRUE(result.ok());

  for (Var side : {Var::kS, Var::kT}) {
    const auto& counted = side == Var::kS ? counted_s : counted_t;
    std::vector<Itemset> beyond_l1;
    for (const Itemset& x : counted) {
      if (x.size() >= 2) beyond_l1.push_back(x);
    }
    auto audit = AuditCfqSide(inst.db, inst.catalog, query, side, beyond_l1,
                              /*checks=*/0);
    ASSERT_TRUE(audit.ok());
    // Strict "only required" on levels >= 2 (minus the singletons the
    // audit population includes).
    for (const Itemset& x : beyond_l1) {
      (void)x;
    }
    EXPECT_EQ(audit->extra_counted, 0u)
        << VarName(side) << ": counted invalid multi-item sets";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerCccTest, ::testing::Range(0, 6));

// Section 6.2's counterexample: the FM strategy counts only valid sets
// (condition 1's "only if") but performs ~2^N constraint checks,
// violating condition 2.
TEST(CccAuditTest, FullMaterializationViolatesConditionTwo) {
  Instance inst = MakeInstance(81);
  CfqQuery query;
  query.s_domain = inst.domain;
  query.t_domain = inst.domain;
  query.min_support_s = query.min_support_t = 3;
  query.one_var.push_back(
      MakeAgg1(Var::kS, AggFn::kMax, "Price", CmpOp::kLe, 6));

  auto fm = ExecuteFullMaterialization(&inst.db, inst.catalog, query);
  ASSERT_TRUE(fm.ok());
  // Same answers as the baseline.
  auto oracle = ExecuteBruteForce(inst.db, inst.catalog, query);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(AnswerPairs(fm.value()), AnswerPairs(oracle.value()));
  // 2^8 - 1 = 255 checks per side >> the 8-singleton budget.
  EXPECT_EQ(fm->stats.s.constraint_checks, 255u);
  EXPECT_GT(fm->stats.s.constraint_checks, inst.domain.size());
}

TEST(CccAuditTest, FullMaterializationRejectsLargeDomains) {
  Instance inst = MakeInstance(82);
  CfqQuery query;
  query.s_domain.clear();
  for (ItemId i = 0; i < 30; ++i) query.s_domain.push_back(i);
  query.t_domain = query.s_domain;
  EXPECT_FALSE(
      ExecuteFullMaterialization(&inst.db, inst.catalog, query).ok());
}

TEST(CccAuditTest, AuditReportsMissedSets) {
  Instance inst = MakeInstance(80);
  // Log claims nothing was counted: every required set is "missed".
  auto audit = AuditOneVar(inst.db, inst.catalog, inst.domain, Var::kS, {}, 3,
                           /*counted=*/{}, /*checks=*/0);
  ASSERT_TRUE(audit.ok());
  EXPECT_FALSE(audit->counted_all_required);
  EXPECT_GT(audit->missed, 0u);
  EXPECT_EQ(audit->missed, audit->required);
}

}  // namespace
}  // namespace cfq
