// MetricsRegistry / Histogram unit tests: bucket geometry, quantile
// math, merge semantics, thread safety under the pool, and a golden
// Prometheus exposition.

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/export.h"

namespace cfq::obs {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(0), std::ldexp(1.0, -20));
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(20), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
                   std::ldexp(1.0, 40));

  // An observation lands in the first bucket whose upper bound covers
  // it: exactly 2^e goes to the 2^e bucket, a hair more to the next.
  Histogram h;
  h.Observe(1.0);
  EXPECT_EQ(h.bucket_counts()[20], 1u);
  h.Observe(1.0000001);
  EXPECT_EQ(h.bucket_counts()[21], 1u);
  h.Observe(0.75);  // (0.5, 1] — shares the 2^0 bucket.
  EXPECT_EQ(h.bucket_counts()[20], 2u);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBuckets) {
  Histogram h;
  h.Observe(1e-10);  // Below 2^-20.
  h.Observe(1e15);   // Above 2^40.
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[Histogram::kNumBuckets - 1], 1u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-10);
  EXPECT_DOUBLE_EQ(h.max(), 1e15);
}

TEST(HistogramTest, ExactStatsAreExact) {
  Histogram h;
  for (double v : {0.25, 0.5, 2.0}) h.Observe(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.75);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
  EXPECT_NEAR(h.mean(), 2.75 / 3, 1e-12);
}

TEST(HistogramTest, QuantileEmptyAndSingle) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  // One observation: every quantile clamps to [min, max] = the value.
  Histogram one;
  one.Observe(0.125);
  EXPECT_DOUBLE_EQ(one.Quantile(0.0), 0.125);
  EXPECT_DOUBLE_EQ(one.Quantile(0.5), 0.125);
  EXPECT_DOUBLE_EQ(one.Quantile(0.99), 0.125);
}

TEST(HistogramTest, QuantilesMonotoneAndBounded) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Observe(i * 1e-3);
  const double p50 = h.Quantile(0.50);
  const double p90 = h.Quantile(0.90);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(h.min(), p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  // Log buckets are coarse, but the median of a uniform [0, 1] sample
  // must land in its half-to-one bucket neighbourhood.
  EXPECT_GT(p50, 0.2);
  EXPECT_LT(p50, 1.0);
}

TEST(HistogramTest, MergeFromAddsBucketsAndCombinesExtremes) {
  Histogram a, b;
  a.Observe(0.25);
  b.Observe(4.0);
  b.Observe(0.25);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 4.5);
  EXPECT_DOUBLE_EQ(a.min(), 0.25);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_EQ(a.bucket_counts()[18], 2u);  // 2^-2 bucket.
}

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.Add("counted", 2);
  registry.Add("counted");
  registry.SetGauge("wall", 0.5);
  registry.SetGauge("wall", 0.75);  // Last write wins.
  registry.Observe("lat", 0.25);
  EXPECT_EQ(registry.counter("counted"), 3u);
  EXPECT_DOUBLE_EQ(registry.gauge("wall"), 0.75);
  EXPECT_EQ(registry.histogram("lat").count(), 1u);
  // Never-written names read as zero values, and don't materialize.
  EXPECT_EQ(registry.counter("nope"), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("nope"), 0.0);
  EXPECT_EQ(registry.histogram("nope").count(), 0u);
  EXPECT_EQ(registry.Snapshot().size(), 3u);
}

TEST(MetricsRegistryTest, MergeFromIsDeterministic) {
  MetricsRegistry a, b;
  a.Add("c", 1);
  b.Add("c", 2);
  a.SetGauge("g", 1.0);
  b.SetGauge("g", 2.0);
  a.Observe("h", 0.25);
  b.Observe("h", 0.5);
  a.MergeFrom(b);
  EXPECT_EQ(a.counter("c"), 3u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 2.0);  // Merged-from side wins.
  EXPECT_EQ(a.histogram("h").count(), 2u);
}

TEST(MetricsRegistryTest, ConcurrentWritesUnderThePool) {
  MetricsRegistry registry;
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  pool.ParallelFor(kN, [&registry](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      registry.Add("hits");
      registry.Observe("lat", 0.5);
    }
  });
  EXPECT_EQ(registry.counter("hits"), kN);
  EXPECT_EQ(registry.histogram("lat").count(), kN);
  EXPECT_DOUBLE_EQ(registry.histogram("lat").sum(), kN * 0.5);
}

// Golden exposition: power-of-two observations print exactly under
// %.17g, so the full text is stable.
TEST(PrometheusExportTest, GoldenExposition) {
  MetricsRegistry registry;
  registry.Add("s.sets_counted", 3);
  registry.SetGauge("resource.wall_seconds", 0.5);
  registry.Observe("s.level.count_seconds", 0.25);
  registry.Observe("s.level.count_seconds", 0.5);
  registry.Observe("s.level.count_seconds", 2.0);
  std::ostringstream os;
  WritePrometheus(registry, os);
  EXPECT_EQ(os.str(),
            "# TYPE cfq_resource_wall_seconds gauge\n"
            "cfq_resource_wall_seconds 0.5\n"
            "# TYPE cfq_s_level_count_seconds histogram\n"
            "cfq_s_level_count_seconds_bucket{le=\"0.25\"} 1\n"
            "cfq_s_level_count_seconds_bucket{le=\"0.5\"} 2\n"
            "cfq_s_level_count_seconds_bucket{le=\"1\"} 2\n"
            "cfq_s_level_count_seconds_bucket{le=\"2\"} 3\n"
            "cfq_s_level_count_seconds_bucket{le=\"+Inf\"} 3\n"
            "cfq_s_level_count_seconds_sum 2.75\n"
            "cfq_s_level_count_seconds_count 3\n"
            "# TYPE cfq_s_sets_counted counter\n"
            "cfq_s_sets_counted 3\n");
}

// Golden exposition for the serving counter families — the names the
// daemon's /metrics endpoint and --metrics-out flush must both keep
// stable (CI greps several of them).
TEST(PrometheusExportTest, GoldenServerFamilies) {
  MetricsRegistry registry;
  registry.Add("server.cache.hits", 2);
  registry.Add("server.conn.errors");
  registry.Add("server.queries_total", 4);
  registry.Observe("server.admission.queue_wait_seconds", 0.25);
  registry.Observe("server.admission.queue_wait_seconds", 0.5);
  registry.Add("incr.refreshes", 3);
  registry.Add("evict.cache.items", 5);
  std::ostringstream os;
  WritePrometheus(registry, os);
  EXPECT_EQ(os.str(),
            "# TYPE cfq_evict_cache_items counter\n"
            "cfq_evict_cache_items 5\n"
            "# TYPE cfq_incr_refreshes counter\n"
            "cfq_incr_refreshes 3\n"
            "# TYPE cfq_server_admission_queue_wait_seconds histogram\n"
            "cfq_server_admission_queue_wait_seconds_bucket{le=\"0.25\"} 1\n"
            "cfq_server_admission_queue_wait_seconds_bucket{le=\"0.5\"} 2\n"
            "cfq_server_admission_queue_wait_seconds_bucket{le=\"+Inf\"} 2\n"
            "cfq_server_admission_queue_wait_seconds_sum 0.75\n"
            "cfq_server_admission_queue_wait_seconds_count 2\n"
            "# TYPE cfq_server_cache_hits counter\n"
            "cfq_server_cache_hits 2\n"
            "# TYPE cfq_server_conn_errors counter\n"
            "cfq_server_conn_errors 1\n"
            "# TYPE cfq_server_queries_total counter\n"
            "cfq_server_queries_total 4\n");
}

TEST(PrometheusExportTest, EmptyHistogramStillWellFormed) {
  MetricsRegistry registry;
  registry.Observe("h", 1.0);
  MetricsRegistry empty;
  empty.MergeFrom(registry);  // Histogram exists in both; now zero one.
  MetricsRegistry zero;
  (void)zero.histogram("h");  // Reading does not create a series.
  std::ostringstream os;
  WritePrometheus(zero, os);
  EXPECT_EQ(os.str(), "");
}

TEST(MetricsRegistryTest, WriteJsonlOneObjectPerLine) {
  MetricsRegistry registry;
  registry.Add("c", 7);
  registry.SetGauge("g", 0.25);
  registry.Observe("h", 0.5);
  std::ostringstream os;
  registry.WriteJsonl(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("{\"name\":\"c\",\"type\":\"counter\",\"value\":7}"),
            std::string::npos);
  EXPECT_NE(text.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

}  // namespace
}  // namespace cfq::obs
