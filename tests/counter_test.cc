#include "mining/counter.h"

#include <algorithm>
#include <random>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic_gen.h"
#include "mining/bitmap_counter.h"
#include "mining/hash_counter.h"

namespace cfq {
namespace {

TransactionDb RandomDb(int seed, size_t num_items, size_t num_txns) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> len(1, 8);
  std::uniform_int_distribution<ItemId> item(0,
                                             static_cast<ItemId>(num_items - 1));
  TransactionDb db(num_items);
  for (size_t t = 0; t < num_txns; ++t) {
    std::vector<ItemId> txn(static_cast<size_t>(len(rng)));
    for (auto& x : txn) x = item(rng);
    db.Add(std::move(txn));
  }
  return db;
}

TEST(CounterTest, SingletonSupports) {
  TransactionDb db(3);
  db.Add({0, 1});
  db.Add({1});
  db.Add({1, 2});
  for (CounterKind kind : {CounterKind::kHash, CounterKind::kBitmap}) {
    auto counter = MakeCounter(kind, &db);
    CccStats stats;
    auto supports = counter->Count({{0}, {1}, {2}}, &stats);
    EXPECT_EQ(supports, (std::vector<uint64_t>{1, 3, 1}));
    EXPECT_EQ(stats.sets_counted, 3u);
  }
}

TEST(CounterTest, EmptyCandidateList) {
  TransactionDb db(3);
  db.Add({0});
  for (CounterKind kind : {CounterKind::kHash, CounterKind::kBitmap}) {
    auto counter = MakeCounter(kind, &db);
    CccStats stats;
    EXPECT_TRUE(counter->Count({}, &stats).empty());
  }
}

TEST(CounterTest, NullStatsAccepted) {
  TransactionDb db(3);
  db.Add({0, 1, 2});
  for (CounterKind kind : {CounterKind::kHash, CounterKind::kBitmap}) {
    auto counter = MakeCounter(kind, &db);
    auto supports = counter->Count({{0, 1}}, nullptr);
    EXPECT_EQ(supports[0], 1u);
  }
}

TEST(CounterTest, HashCounterAccountsScansPerLevel) {
  TransactionDb db(4);
  for (int i = 0; i < 100; ++i) db.Add({0, 1, 2, 3});
  HashCounter counter(&db);
  CccStats stats;
  counter.Count({{0}}, &stats);
  counter.Count({{0, 1}}, &stats);
  EXPECT_EQ(stats.io.scans, 2u);
  EXPECT_GT(stats.io.pages_read, 0u);
}

TEST(CounterTest, BitmapCounterAccountsOneIndexScan) {
  TransactionDb db(4);
  for (int i = 0; i < 100; ++i) db.Add({0, 1, 2, 3});
  BitmapCounter counter(&db);
  CccStats stats;
  counter.Count({{0}}, &stats);
  counter.Count({{0, 1}}, &stats);
  counter.Count({{0, 1, 2}}, &stats);
  EXPECT_EQ(stats.io.scans, 1u);
}

TEST(CounterTest, CountedLogRecordsCandidates) {
  TransactionDb db(3);
  db.Add({0, 1, 2});
  std::vector<Itemset> log;
  CccStats stats;
  stats.counted_log = &log;
  auto counter = MakeCounter(CounterKind::kBitmap, &db);
  counter->Count({{0}, {1}}, &stats);
  counter->Count({{0, 1}}, &stats);
  EXPECT_EQ(log, (std::vector<Itemset>{{0}, {1}, {0, 1}}));
}

// Property: both backends agree with the naive horizontal scan on random
// databases and candidate sets of every size.
class CounterCrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(CounterCrossCheckTest, BackendsMatchNaiveSupport) {
  TransactionDb db = RandomDb(GetParam(), 12, 200);
  std::mt19937 rng(GetParam() + 999);
  std::uniform_int_distribution<ItemId> item(0, 11);
  for (size_t k = 1; k <= 4; ++k) {
    // Random candidate batch of size-k itemsets.
    std::vector<Itemset> candidates;
    std::set<Itemset> seen;
    const size_t target = k == 1 ? 10 : 20;  // Only 12 singletons exist.
    while (candidates.size() < target) {
      std::vector<ItemId> raw(k);
      for (auto& x : raw) x = item(rng);
      Itemset c = MakeItemset(raw);
      if (c.size() != k || !seen.insert(c).second) continue;
      candidates.push_back(c);
    }
    std::sort(candidates.begin(), candidates.end());
    HashCounter hash(&db);
    BitmapCounter bitmap(&db);
    const auto s1 = hash.Count(candidates, nullptr);
    const auto s2 = bitmap.Count(candidates, nullptr);
    for (size_t i = 0; i < candidates.size(); ++i) {
      const uint64_t expected = db.CountSupport(candidates[i]);
      EXPECT_EQ(s1[i], expected) << ToString(candidates[i]);
      EXPECT_EQ(s2[i], expected) << ToString(candidates[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterCrossCheckTest, ::testing::Range(0, 10));

// The hash counter's two internal paths (subset enumeration vs direct
// candidate probing) must agree: exercise with few candidates + long
// transactions (probing) and many candidates + short transactions.
TEST(CounterTest, HashCounterPathsAgree) {
  TransactionDb db(30);
  std::vector<ItemId> wide;
  for (ItemId i = 0; i < 30; ++i) wide.push_back(i);
  for (int t = 0; t < 10; ++t) db.Add(wide);  // C(30,3) >> candidates.
  db.Add({0, 1, 2});
  HashCounter counter(&db);
  auto supports = counter.Count({{0, 1, 2}, {27, 28, 29}}, nullptr);
  EXPECT_EQ(supports[0], 11u);
  EXPECT_EQ(supports[1], 10u);
}

TEST(CounterTest, QuestDbCrossCheck) {
  QuestParams params;
  params.num_transactions = 400;
  params.num_items = 40;
  params.num_patterns = 20;
  params.seed = 3;
  auto db = GenerateQuestDb(params);
  ASSERT_TRUE(db.ok());
  TransactionDb quest = std::move(db).value();
  HashCounter hash(&quest);
  BitmapCounter bitmap(&quest);
  std::vector<Itemset> candidates;
  for (ItemId i = 0; i + 1 < 40; i += 2) candidates.push_back({i, i + 1});
  const auto s1 = hash.Count(candidates, nullptr);
  const auto s2 = bitmap.Count(candidates, nullptr);
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace cfq
