#include "mining/candidate_gen.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace cfq {
namespace {

TEST(CandidateGenTest, JoinsSingletons) {
  const auto out = GenerateCandidatesJoinPrune({{1}, {3}, {5}});
  EXPECT_EQ(out, (std::vector<Itemset>{{1, 3}, {1, 5}, {3, 5}}));
}

TEST(CandidateGenTest, EmptyInput) {
  EXPECT_TRUE(GenerateCandidatesJoinPrune({}).empty());
}

TEST(CandidateGenTest, SingleSetYieldsNothing) {
  EXPECT_TRUE(GenerateCandidatesJoinPrune({{1, 2}}).empty());
}

TEST(CandidateGenTest, JoinRequiresSharedPrefix) {
  // {1,2} and {3,4} share no prefix: nothing to join.
  EXPECT_TRUE(GenerateCandidatesJoinPrune({{1, 2}, {3, 4}}).empty());
}

TEST(CandidateGenTest, PruneRemovesCandidatesWithInfrequentSubsets) {
  // {1,2}, {1,3} join to {1,2,3}, but {2,3} is not frequent: pruned.
  EXPECT_TRUE(GenerateCandidatesJoinPrune({{1, 2}, {1, 3}}).empty());
  // With {2,3} present the candidate survives.
  const auto out = GenerateCandidatesJoinPrune({{1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(out, (std::vector<Itemset>{{1, 2, 3}}));
}

TEST(CandidateGenTest, LargerLevels) {
  const std::vector<Itemset> f3{{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {2, 3, 4}};
  const auto out = GenerateCandidatesJoinPrune(f3);
  EXPECT_EQ(out, (std::vector<Itemset>{{1, 2, 3, 4}}));
}

TEST(CandidateGenTest, ExtendGeneratesUnions) {
  const auto out = GenerateCandidatesExtend({{1}, {2}}, {1, 2, 3});
  EXPECT_EQ(out, (std::vector<Itemset>{{1, 2}, {1, 3}, {2, 3}}));
}

TEST(CandidateGenTest, ExtendSkipsContainedItems) {
  const auto out = GenerateCandidatesExtend({{1, 2}}, {1, 2});
  EXPECT_TRUE(out.empty());
}

TEST(CandidateGenTest, ExtendDeduplicates) {
  // {1,3} from base {1} + item 3 and from base {3} + item 1.
  const auto out = GenerateCandidatesExtend({{1}, {3}}, {1, 3});
  EXPECT_EQ(out, (std::vector<Itemset>{{1, 3}}));
}

TEST(CandidateGenTest, ExtendEmptyInputs) {
  EXPECT_TRUE(GenerateCandidatesExtend({}, {1, 2}).empty());
  EXPECT_TRUE(GenerateCandidatesExtend({{1}}, {}).empty());
}

TEST(CandidateGenTest, ExtendOutputSorted) {
  const auto out = GenerateCandidatesExtend({{5}, {1}}, {0, 9});
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

}  // namespace
}  // namespace cfq
