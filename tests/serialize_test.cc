#include "data/serialize.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic_gen.h"

namespace cfq {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/cfq_" + name;
  }
};

TEST_F(SerializeTest, TransactionsRoundTrip) {
  TransactionDb db(5);
  db.Add({0, 2, 4});
  db.Add({1});
  db.Add({0, 1, 2, 3, 4});
  const std::string path = TempPath("txns.txt");
  ASSERT_TRUE(SaveTransactions(db, path).ok());
  auto loaded = LoadTransactions(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_items(), 5u);
  EXPECT_EQ(loaded->transactions(), db.transactions());
  std::remove(path.c_str());
}

TEST_F(SerializeTest, QuestDataRoundTrip) {
  QuestParams params;
  params.num_transactions = 200;
  params.num_items = 30;
  params.num_patterns = 15;
  auto db = GenerateQuestDb(params);
  ASSERT_TRUE(db.ok());
  const std::string path = TempPath("quest.txt");
  ASSERT_TRUE(SaveTransactions(db.value(), path).ok());
  auto loaded = LoadTransactions(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->transactions(), db->transactions());
  std::remove(path.c_str());
}

// A database grown across generations (Append extends the vertical
// index in place) must survive a save/load cycle: the loaded copy has
// the same transactions, and the index it rebuilds from scratch counts
// exactly like the extended one it never saw.
TEST_F(SerializeTest, MultiGenerationAppendRoundTrip) {
  QuestParams params;
  params.num_transactions = 150;
  params.num_items = 25;
  params.num_patterns = 12;
  auto generated = GenerateQuestDb(params);
  ASSERT_TRUE(generated.ok());
  TransactionDb db = std::move(generated).value();
  db.EnsureVerticalIndex();

  // Three appended generations on top of the indexed base.
  db.Append({{0, 3, 7}, {1, 2}, {0, 24}});
  db.Append({{5, 6, 7, 8}});
  db.Append({{0, 1, 2, 3, 4}, {20, 21, 22}});
  ASSERT_TRUE(db.has_vertical_index());
  ASSERT_EQ(db.num_transactions(), 156u);

  const std::string path = TempPath("multigen.txt");
  ASSERT_TRUE(SaveTransactions(db, path).ok());
  auto loaded = LoadTransactions(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_items(), db.num_items());
  EXPECT_EQ(loaded->transactions(), db.transactions());

  // The rebuilt index must agree bit-for-bit with the incrementally
  // extended one.
  EXPECT_FALSE(loaded->has_vertical_index());
  loaded->EnsureVerticalIndex();
  for (ItemId item = 0; item < db.num_items(); ++item) {
    for (size_t tid = 0; tid < db.num_transactions(); ++tid) {
      ASSERT_EQ(loaded->vertical(item).Test(tid), db.vertical(item).Test(tid))
          << "item " << item << " tid " << tid;
    }
  }
  std::remove(path.c_str());
}

TEST_F(SerializeTest, LoadRejectsMissingFile) {
  EXPECT_EQ(LoadTransactions(TempPath("nope.txt")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(SerializeTest, LoadRejectsBadMagic) {
  const std::string path = TempPath("bad_magic.txt");
  std::ofstream(path) << "notadb 1 3 0\n";
  EXPECT_FALSE(LoadTransactions(path).ok());
  std::remove(path.c_str());
}

TEST_F(SerializeTest, LoadRejectsBadVersion) {
  const std::string path = TempPath("bad_version.txt");
  std::ofstream(path) << "cfqdb 9 3 0\n";
  EXPECT_FALSE(LoadTransactions(path).ok());
  std::remove(path.c_str());
}

TEST_F(SerializeTest, LoadRejectsOutOfRangeItem) {
  const std::string path = TempPath("bad_item.txt");
  std::ofstream(path) << "cfqdb 1 3 1\n0 7\n";
  EXPECT_EQ(LoadTransactions(path).status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST_F(SerializeTest, LoadRejectsCountMismatch) {
  const std::string path = TempPath("bad_count.txt");
  std::ofstream(path) << "cfqdb 1 3 2\n0 1\n";
  EXPECT_FALSE(LoadTransactions(path).ok());
  std::remove(path.c_str());
}

TEST_F(SerializeTest, LoadRejectsMalformedLine) {
  const std::string path = TempPath("bad_line.txt");
  std::ofstream(path) << "cfqdb 1 3 1\n0 x 1\n";
  EXPECT_FALSE(LoadTransactions(path).ok());
  std::remove(path.c_str());
}

TEST_F(SerializeTest, CatalogRoundTrip) {
  ItemCatalog catalog(3);
  ASSERT_TRUE(catalog.AddNumericAttr("Price", {1.5, 2, 3}).ok());
  ASSERT_TRUE(
      catalog.AddCategoricalAttr("Type", {0, 1, 0}, {"Snacks", "Beers"}).ok());
  const std::string path = TempPath("catalog.txt");
  ASSERT_TRUE(SaveCatalog(catalog, {"Price"}, {"Type"}, path).ok());
  auto loaded = LoadCatalog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_items(), 3u);
  EXPECT_EQ(loaded->Value("Price", 0).value(), 1.5);
  EXPECT_EQ(loaded->Value("Type", 1).value(), 1);
  EXPECT_EQ(loaded->ValueName("Type", 1), "Beers");
  std::remove(path.c_str());
}

TEST_F(SerializeTest, SaveCatalogRejectsUnknownAttr) {
  ItemCatalog catalog(2);
  EXPECT_EQ(
      SaveCatalog(catalog, {"Ghost"}, {}, TempPath("x.txt")).code(),
      StatusCode::kNotFound);
}

TEST_F(SerializeTest, SaveCatalogRejectsWhitespaceNames) {
  ItemCatalog catalog(2);
  ASSERT_TRUE(
      catalog.AddCategoricalAttr("Type", {0, 0}, {"two words"}).ok());
  EXPECT_FALSE(SaveCatalog(catalog, {}, {"Type"}, TempPath("y.txt")).ok());
}

TEST_F(SerializeTest, LoadCatalogRejectsBadCodes) {
  const std::string path = TempPath("bad_codes.txt");
  std::ofstream(path) << "cfqcat 1 2\ncategorical Type 1 A\ncodes 0 5\n";
  EXPECT_EQ(LoadCatalog(path).status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST_F(SerializeTest, LoadCatalogRejectsUnknownKind) {
  const std::string path = TempPath("bad_kind.txt");
  std::ofstream(path) << "cfqcat 1 2\nblob Type 1 2\n";
  EXPECT_FALSE(LoadCatalog(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cfq
