#include "common/table_printer.h"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

namespace cfq {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TablePrinterTest, FmtDouble) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 1), "2.0");
  EXPECT_EQ(TablePrinter::Fmt(0.5, 0), "0");  // Rounds down to even/near.
}

TEST(TablePrinterTest, FmtIntegers) {
  EXPECT_EQ(TablePrinter::Fmt(uint64_t{123}), "123");
  EXPECT_EQ(TablePrinter::Fmt(int64_t{-5}), "-5");
}

TEST(TablePrinterTest, EmptyTableStillPrintsHeader) {
  TablePrinter t({"x"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("x"), std::string::npos);
}

}  // namespace
}  // namespace cfq
