#include "common/itemset.h"

#include <algorithm>
#include <random>
#include <set>

#include <gtest/gtest.h>

namespace cfq {
namespace {

TEST(ItemsetTest, MakeItemsetSortsAndDedupes) {
  EXPECT_EQ(MakeItemset({3, 1, 2, 1, 3}), (Itemset{1, 2, 3}));
  EXPECT_EQ(MakeItemset({}), Itemset{});
  EXPECT_EQ(MakeItemset({7}), Itemset{7});
}

TEST(ItemsetTest, IsCanonical) {
  EXPECT_TRUE(IsCanonical({}));
  EXPECT_TRUE(IsCanonical({5}));
  EXPECT_TRUE(IsCanonical({1, 2, 9}));
  EXPECT_FALSE(IsCanonical({2, 1}));
  EXPECT_FALSE(IsCanonical({1, 1}));
}

TEST(ItemsetTest, IsSubsetBasic) {
  EXPECT_TRUE(IsSubset({}, {1, 2}));
  EXPECT_TRUE(IsSubset({1}, {1, 2}));
  EXPECT_TRUE(IsSubset({1, 2}, {1, 2}));
  EXPECT_FALSE(IsSubset({3}, {1, 2}));
  EXPECT_FALSE(IsSubset({1, 2, 3}, {1, 2}));
}

TEST(ItemsetTest, DisjointBasic) {
  EXPECT_TRUE(Disjoint({}, {}));
  EXPECT_TRUE(Disjoint({1}, {2}));
  EXPECT_TRUE(Disjoint({1, 3, 5}, {2, 4, 6}));
  EXPECT_FALSE(Disjoint({1, 3}, {3, 4}));
}

TEST(ItemsetTest, ContainsUsesBinarySearch) {
  const Itemset s{2, 4, 6, 8};
  EXPECT_TRUE(Contains(s, 2));
  EXPECT_TRUE(Contains(s, 8));
  EXPECT_FALSE(Contains(s, 5));
  EXPECT_FALSE(Contains({}, 1));
}

TEST(ItemsetTest, SetOperations) {
  EXPECT_EQ(Union({1, 3}, {2, 3}), (Itemset{1, 2, 3}));
  EXPECT_EQ(Intersect({1, 2, 3}, {2, 3, 4}), (Itemset{2, 3}));
  EXPECT_EQ(Difference({1, 2, 3}, {2}), (Itemset{1, 3}));
  EXPECT_EQ(Union({}, {}), Itemset{});
  EXPECT_EQ(Intersect({1}, {2}), Itemset{});
}

TEST(ItemsetTest, WithoutIndex) {
  EXPECT_EQ(WithoutIndex({1, 2, 3}, 0), (Itemset{2, 3}));
  EXPECT_EQ(WithoutIndex({1, 2, 3}, 1), (Itemset{1, 3}));
  EXPECT_EQ(WithoutIndex({1, 2, 3}, 2), (Itemset{1, 2}));
  EXPECT_EQ(WithoutIndex({5}, 0), Itemset{});
}

TEST(ItemsetTest, AprioriJoinSharedPrefix) {
  Itemset out;
  ASSERT_TRUE(AprioriJoin({1, 2}, {1, 3}, &out));
  EXPECT_EQ(out, (Itemset{1, 2, 3}));
}

TEST(ItemsetTest, AprioriJoinRejectsDifferentPrefix) {
  Itemset out;
  EXPECT_FALSE(AprioriJoin({1, 2}, {2, 3}, &out));
}

TEST(ItemsetTest, AprioriJoinRejectsWrongOrder) {
  Itemset out;
  EXPECT_FALSE(AprioriJoin({1, 3}, {1, 2}, &out));
  EXPECT_FALSE(AprioriJoin({1, 2}, {1, 2}, &out));
}

TEST(ItemsetTest, AprioriJoinSingletons) {
  Itemset out;
  ASSERT_TRUE(AprioriJoin({4}, {7}, &out));
  EXPECT_EQ(out, (Itemset{4, 7}));
  EXPECT_FALSE(AprioriJoin({7}, {4}, &out));
}

TEST(ItemsetTest, AprioriJoinRejectsEmptyAndMismatchedSizes) {
  Itemset out;
  EXPECT_FALSE(AprioriJoin({}, {}, &out));
  EXPECT_FALSE(AprioriJoin({1}, {1, 2}, &out));
}

TEST(ItemsetTest, ToStringRendering) {
  EXPECT_EQ(ToString(Itemset{}), "{}");
  EXPECT_EQ(ToString(Itemset{4}), "{4}");
  EXPECT_EQ(ToString(Itemset{1, 2}), "{1, 2}");
}

TEST(ItemsetTest, HashIsConsistent) {
  ItemsetHash hash;
  EXPECT_EQ(hash({1, 2, 3}), hash({1, 2, 3}));
  EXPECT_NE(hash({1, 2, 3}), hash({1, 2, 4}));
  EXPECT_NE(hash({}), hash({0}));
}

TEST(ItemsetTest, ForEachNonEmptySubsetCountsAll) {
  int count = 0;
  ForEachNonEmptySubset(Itemset{1, 2, 3, 4}, [&](const Itemset& s) {
    EXPECT_TRUE(IsCanonical(s));
    EXPECT_FALSE(s.empty());
    ++count;
  });
  EXPECT_EQ(count, 15);  // 2^4 - 1.
}

TEST(ItemsetTest, ForEachNonEmptySubsetOfEmptyUniverse) {
  int count = 0;
  ForEachNonEmptySubset(Itemset{}, [&](const Itemset&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ItemsetTest, ForEachSubsetOfSizeEnumeratesCombinations) {
  std::vector<Itemset> subsets;
  ForEachSubsetOfSize(Itemset{1, 2, 3, 4}, 2,
                      [&](const Itemset& s) { subsets.push_back(s); });
  EXPECT_EQ(subsets.size(), 6u);  // C(4,2).
  EXPECT_TRUE(std::is_sorted(subsets.begin(), subsets.end()));
  for (const Itemset& s : subsets) EXPECT_EQ(s.size(), 2u);
}

TEST(ItemsetTest, ForEachSubsetOfSizeEdgeCases) {
  int count = 0;
  ForEachSubsetOfSize(Itemset{1, 2}, 0, [&](const Itemset&) { ++count; });
  EXPECT_EQ(count, 0);
  ForEachSubsetOfSize(Itemset{1, 2}, 3, [&](const Itemset&) { ++count; });
  EXPECT_EQ(count, 0);
  ForEachSubsetOfSize(Itemset{1, 2}, 2, [&](const Itemset& s) {
    EXPECT_EQ(s, (Itemset{1, 2}));
    ++count;
  });
  EXPECT_EQ(count, 1);
}

// Property sweep: merge-based set operations agree with std::set math on
// random inputs.
class ItemsetPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ItemsetPropertyTest, SetOpsMatchStdSet) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> size_dist(0, 12);
  std::uniform_int_distribution<ItemId> item_dist(0, 15);
  for (int round = 0; round < 50; ++round) {
    std::vector<ItemId> raw_a(size_dist(rng)), raw_b(size_dist(rng));
    for (auto& x : raw_a) x = item_dist(rng);
    for (auto& x : raw_b) x = item_dist(rng);
    const Itemset a = MakeItemset(raw_a);
    const Itemset b = MakeItemset(raw_b);
    const std::set<ItemId> sa(a.begin(), a.end()), sb(b.begin(), b.end());

    std::set<ItemId> su = sa;
    su.insert(sb.begin(), sb.end());
    EXPECT_EQ(Union(a, b), Itemset(su.begin(), su.end()));

    std::set<ItemId> si;
    for (ItemId x : sa) {
      if (sb.count(x)) si.insert(x);
    }
    EXPECT_EQ(Intersect(a, b), Itemset(si.begin(), si.end()));
    EXPECT_EQ(Disjoint(a, b), si.empty());
    EXPECT_EQ(IsSubset(a, b),
              std::includes(sb.begin(), sb.end(), sa.begin(), sa.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ItemsetPropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace cfq
