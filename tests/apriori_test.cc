#include "mining/apriori.h"

#include <algorithm>
#include <map>
#include <random>

#include <gtest/gtest.h>

#include "data/synthetic_gen.h"

namespace cfq {
namespace {

TransactionDb RandomDb(int seed, size_t num_items, size_t num_txns) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> len(1, 6);
  std::uniform_int_distribution<ItemId> item(
      0, static_cast<ItemId>(num_items - 1));
  TransactionDb db(num_items);
  for (size_t t = 0; t < num_txns; ++t) {
    std::vector<ItemId> txn(static_cast<size_t>(len(rng)));
    for (auto& x : txn) x = item(rng);
    db.Add(std::move(txn));
  }
  return db;
}

std::map<Itemset, uint64_t> AsMap(const std::vector<FrequentSet>& sets) {
  std::map<Itemset, uint64_t> out;
  for (const FrequentSet& f : sets) out[f.items] = f.support;
  return out;
}

TEST(AprioriTest, TinyHandComputedExample) {
  TransactionDb db(3);
  db.Add({0, 1});
  db.Add({0, 1});
  db.Add({0, 2});
  db.Add({1, 2});
  auto result = MineFrequent(&db, {0, 1, 2}, 2);
  const auto m = AsMap(result.frequent);
  EXPECT_EQ(m.at({0}), 3u);
  EXPECT_EQ(m.at({1}), 3u);
  EXPECT_EQ(m.at({2}), 2u);
  EXPECT_EQ(m.at({0, 1}), 2u);
  EXPECT_EQ(m.count({0, 2}), 0u);  // Support 1 < 2.
  EXPECT_EQ(m.count({0, 1, 2}), 0u);
}

TEST(AprioriTest, DomainRestrictsItems) {
  TransactionDb db(4);
  for (int i = 0; i < 5; ++i) db.Add({0, 1, 2, 3});
  auto result = MineFrequent(&db, {1, 2}, 1);
  for (const FrequentSet& f : result.frequent) {
    EXPECT_TRUE(IsSubset(f.items, Itemset{1, 2}));
  }
  EXPECT_EQ(result.frequent.size(), 3u);  // {1}, {2}, {1,2}.
}

TEST(AprioriTest, MaxLevelStopsEarly) {
  TransactionDb db(4);
  for (int i = 0; i < 5; ++i) db.Add({0, 1, 2, 3});
  AprioriOptions options;
  options.max_level = 2;
  auto result = MineFrequent(&db, {0, 1, 2, 3}, 1, options);
  for (const FrequentSet& f : result.frequent) {
    EXPECT_LE(f.items.size(), 2u);
  }
  EXPECT_EQ(result.stats.candidates_per_level.size(), 2u);
}

TEST(AprioriTest, StatsTrackLevels) {
  TransactionDb db(3);
  for (int i = 0; i < 4; ++i) db.Add({0, 1, 2});
  auto result = MineFrequent(&db, {0, 1, 2}, 2);
  ASSERT_EQ(result.stats.candidates_per_level.size(), 3u);
  EXPECT_EQ(result.stats.candidates_per_level[0], 3u);  // Singletons.
  EXPECT_EQ(result.stats.frequent_per_level[0], 3u);
  EXPECT_EQ(result.stats.candidates_per_level[1], 3u);  // Pairs.
  EXPECT_EQ(result.stats.frequent_per_level[2], 1u);    // {0,1,2}.
  EXPECT_EQ(result.stats.sets_counted, 3u + 3u + 1u);
}

TEST(AprioriTest, EmptyDatabaseYieldsNothing) {
  TransactionDb db(3);
  auto result = MineFrequent(&db, {0, 1, 2}, 1);
  EXPECT_TRUE(result.frequent.empty());
}

TEST(AprioriTest, SupportAboveEverythingYieldsNothing) {
  TransactionDb db(3);
  db.Add({0, 1, 2});
  auto result = MineFrequent(&db, {0, 1, 2}, 10);
  EXPECT_TRUE(result.frequent.empty());
}

TEST(AprioriTest, BruteForceOracleOrdering) {
  TransactionDb db(3);
  db.Add({0, 1, 2});
  db.Add({0, 1});
  const auto sets = MineFrequentBruteForce(db, {0, 1, 2}, 1);
  // Ascending size, lexicographic within size.
  for (size_t i = 1; i < sets.size(); ++i) {
    const bool ordered =
        sets[i - 1].items.size() < sets[i].items.size() ||
        (sets[i - 1].items.size() == sets[i].items.size() &&
         sets[i - 1].items < sets[i].items);
    EXPECT_TRUE(ordered);
  }
}

// Property: Apriori (both backends) equals the brute-force oracle.
class AprioriOracleTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, CounterKind>> {
};

TEST_P(AprioriOracleTest, MatchesBruteForce) {
  const auto [seed, min_support, kind] = GetParam();
  TransactionDb db = RandomDb(seed, 10, 120);
  Itemset domain;
  for (ItemId i = 0; i < 10; ++i) domain.push_back(i);

  AprioriOptions options;
  options.counter = kind;
  auto mined = MineFrequent(&db, domain, min_support, options);
  const auto oracle = MineFrequentBruteForce(db, domain, min_support);
  EXPECT_EQ(AsMap(mined.frequent), AsMap(oracle));
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, AprioriOracleTest,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(uint64_t{2}, uint64_t{5},
                                         uint64_t{12}),
                       ::testing::Values(CounterKind::kHash,
                                         CounterKind::kBitmap)));

TEST(AprioriTest, QuestDataBothBackendsAgree) {
  QuestParams params;
  params.num_transactions = 600;
  params.num_items = 50;
  params.num_patterns = 25;
  params.seed = 11;
  auto db = GenerateQuestDb(params);
  ASSERT_TRUE(db.ok());
  TransactionDb quest = std::move(db).value();
  Itemset domain;
  for (ItemId i = 0; i < 50; ++i) domain.push_back(i);

  AprioriOptions hash_options;
  hash_options.counter = CounterKind::kHash;
  AprioriOptions bitmap_options;
  bitmap_options.counter = CounterKind::kBitmap;
  auto a = MineFrequent(&quest, domain, 12, hash_options);
  auto b = MineFrequent(&quest, domain, 12, bitmap_options);
  EXPECT_EQ(AsMap(a.frequent), AsMap(b.frequent));
  EXPECT_FALSE(a.frequent.empty());
}

}  // namespace
}  // namespace cfq
