#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cfq {
namespace {

TEST(ThreadPoolTest, ChunkRangePartitionsExactly) {
  for (size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (size_t chunks : {1u, 2u, 3u, 7u, 64u}) {
      if (chunks > n && n > 0) continue;
      size_t covered = 0;
      size_t prev_end = 0;
      for (size_t c = 0; c < chunks; ++c) {
        auto [begin, end] = ThreadPool::ChunkRange(n, chunks, c);
        EXPECT_EQ(begin, prev_end);
        EXPECT_LE(end - begin, n / chunks + 1);
        covered += end - begin;
        prev_end = end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (size_t num_threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(num_threads);
    EXPECT_EQ(pool.num_threads(), num_threads);
    const size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelChunksDenseChunkIndices) {
  ThreadPool pool(4);
  const size_t n = 103;
  const size_t chunks = 7;
  std::vector<std::atomic<int>> seen(chunks);
  std::vector<std::atomic<size_t>> sizes(chunks);
  pool.ParallelChunks(n, chunks, [&](size_t c, size_t begin, size_t end) {
    seen[c].fetch_add(1);
    sizes[c].store(end - begin);
  });
  size_t total = 0;
  for (size_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(seen[c].load(), 1);
    total += sizes[c].load();
  }
  EXPECT_EQ(total, n);
}

TEST(ThreadPoolTest, ClampsChunksToItems) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.ParallelChunks(3, 100, [&](size_t, size_t begin, size_t end) {
    calls.fetch_add(1);
    EXPECT_EQ(end - begin, 1u);
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPoolTest, ZeroItemsIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_inline = true;
  pool.ParallelFor(100, [&](size_t, size_t) {
    if (std::this_thread::get_id() != caller) all_inline = false;
  });
  EXPECT_TRUE(all_inline);
}

// The concurrent dovetail submits from two non-pool threads at once;
// both submissions must complete (the caller participates, so progress
// does not depend on free workers).
TEST(ThreadPoolTest, ConcurrentSubmittersBothComplete) {
  ThreadPool pool(4);
  const size_t n = 5000;
  std::atomic<uint64_t> sum_a{0}, sum_b{0};
  auto work = [&](std::atomic<uint64_t>* sum) {
    for (int round = 0; round < 20; ++round) {
      pool.ParallelFor(n, [&](size_t begin, size_t end) {
        uint64_t local = 0;
        for (size_t i = begin; i < end; ++i) local += i;
        sum->fetch_add(local, std::memory_order_relaxed);
      });
    }
  };
  std::thread other([&] { work(&sum_b); });
  work(&sum_a);
  other.join();
  const uint64_t expected = 20ull * (n * (n - 1) / 2);
  EXPECT_EQ(sum_a.load(), expected);
  EXPECT_EQ(sum_b.load(), expected);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
  ThreadPool pool(0);  // 0 = hardware concurrency.
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareThreads());
}

TEST(ThreadPoolTest, ManySmallSubmissionsDrainCleanly) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelChunks(4, 4, [&](size_t, size_t, size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 800);
}

}  // namespace
}  // namespace cfq
