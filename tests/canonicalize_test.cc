// CanonicalizeQuery: the property that makes it a safe cache key is
// idempotence through the parser — canonical text must re-parse and
// canonicalize to itself, and every spelling of the same query must
// collapse to one string.

#include "core/cfq.h"

#include <gtest/gtest.h>

#include <string>

#include "parser/parser.h"

namespace cfq {
namespace {

// Canonical form of query text (must parse).
std::string Canon(const std::string& text) {
  auto parsed = ParseCfq(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status() << " for: " << text;
  if (!parsed.ok()) return "<parse error>";
  return CanonicalizeQuery(parsed.value());
}

TEST(CanonicalizeTest, NormalizesWhitespace) {
  EXPECT_EQ(Canon("freq(S, 20) & freq(T, 20)"),
            Canon("  freq( S ,   20 )&freq(T,20)  "));
}

TEST(CanonicalizeTest, FullQuerySyntaxAndBareConjunctionAgree) {
  EXPECT_EQ(Canon("{(S, T) | freq(S, 20) & freq(T, 20)}"),
            Canon("freq(S, 20) & freq(T, 20)"));
}

TEST(CanonicalizeTest, SortsCommutativeConjuncts) {
  const std::string a =
      Canon("freq(S, 20) & freq(T, 30) & max(S.Price) <= 100 & "
            "min(T.Price) >= 5 & max(S.Price) <= min(T.Price)");
  const std::string b =
      Canon("min(T.Price) >= 5 & max(S.Price) <= min(T.Price) & "
            "freq(T, 30) & max(S.Price) <= 100 & freq(S, 20)");
  EXPECT_EQ(a, b);
}

TEST(CanonicalizeTest, RemovesDuplicateConjuncts) {
  EXPECT_EQ(Canon("freq(S, 20) & freq(T, 20) & max(S.Price) <= 100 & "
                  "max(S.Price) <= 100"),
            Canon("freq(S, 20) & freq(T, 20) & max(S.Price) <= 100"));
}

TEST(CanonicalizeTest, NormalizesConstantSpelling) {
  EXPECT_EQ(Canon("freq(S, 20) & freq(T, 20) & max(S.Price) <= 100.0"),
            Canon("freq(S, 20) & freq(T, 20) & max(S.Price) <= 100"));
  // Non-integer constants keep their value exactly.
  const std::string canonical =
      Canon("freq(S, 20) & freq(T, 20) & avg(S.Price) <= 99.5");
  EXPECT_NE(canonical.find("99.5"), std::string::npos) << canonical;
}

TEST(CanonicalizeTest, DistinctQueriesStayDistinct) {
  EXPECT_NE(Canon("freq(S, 20) & freq(T, 20) & max(S.Price) <= 100"),
            Canon("freq(S, 20) & freq(T, 20) & max(S.Price) <= 101"));
  EXPECT_NE(Canon("freq(S, 20) & freq(T, 20)"),
            Canon("freq(S, 21) & freq(T, 20)"));
  EXPECT_NE(Canon("freq(S, 20) & freq(T, 20) & max(S.Price) <= min(T.Price)"),
            Canon("freq(S, 20) & freq(T, 20) & min(S.Price) <= min(T.Price)"));
}

TEST(CanonicalizeTest, RoundTripsThroughParser) {
  const char* queries[] = {
      "freq(S, 20) & freq(T, 20)",
      "freq(S, 20) & freq(T, 30) & max(S.Price) <= 100",
      "freq(S, 20) & freq(T, 20) & max(S.Price) <= min(T.Price)",
      "freq(S, 20) & freq(T, 20) & sum(S.Price) <= sum(T.Price)",
      "freq(S, 20) & freq(T, 20) & S.Type = T.Type",
      "freq(S, 20) & freq(T, 20) & S.Type disjoint T.Type",
      "freq(S, 20) & freq(T, 20) & count(S.Price) <= 3 & "
      "avg(T.Price) >= 10.25",
  };
  for (const char* text : queries) {
    const std::string once = Canon(text);
    // Canonical text is itself a fixed point.
    EXPECT_EQ(Canon(once), once) << "not idempotent for: " << text;
  }
}

TEST(CanonicalizeTest, NegatedSetComparatorsReparse) {
  // SetCmpName spells these "not-subset"/"not-superset"; the canonical
  // form must use the parser's two-word spelling instead.
  const std::string canonical =
      Canon("freq(S, 20) & freq(T, 20) & S.Type not subset T.Type");
  EXPECT_NE(canonical.find("not subset"), std::string::npos) << canonical;
  EXPECT_EQ(Canon(canonical), canonical);
}

TEST(CanonicalizeTest, DomainsAreNotPartOfTheText) {
  auto parsed = ParseCfq("freq(S, 20) & freq(T, 20)");
  ASSERT_TRUE(parsed.ok());
  CfqQuery query = parsed.value();
  const std::string without_domains = CanonicalizeQuery(query);
  query.s_domain = {1, 2, 3};
  query.t_domain = {4, 5};
  EXPECT_EQ(CanonicalizeQuery(query), without_domains);
}

}  // namespace
}  // namespace cfq
