#include "data/transaction_db.h"

#include <gtest/gtest.h>

namespace cfq {
namespace {

TransactionDb MakeDb() {
  TransactionDb db(5);
  db.Add({0, 1, 2});
  db.Add({1, 2});
  db.Add({0, 2, 3});
  db.Add({4});
  db.Add({0, 1, 2, 3, 4});
  return db;
}

TEST(TransactionDbTest, BasicCounts) {
  const TransactionDb db = MakeDb();
  EXPECT_EQ(db.num_items(), 5u);
  EXPECT_EQ(db.num_transactions(), 5u);
}

TEST(TransactionDbTest, AddCanonicalizes) {
  TransactionDb db(10);
  db.Add({3, 1, 3, 2});
  EXPECT_EQ(db.transaction(0), (Itemset{1, 2, 3}));
}

TEST(TransactionDbTest, AddDropsOutOfRangeItems) {
  TransactionDb db(3);
  db.Add({0, 5, 2, 99});
  EXPECT_EQ(db.transaction(0), (Itemset{0, 2}));
}

TEST(TransactionDbTest, CountSupport) {
  const TransactionDb db = MakeDb();
  EXPECT_EQ(db.CountSupport({0}), 3u);
  EXPECT_EQ(db.CountSupport({1, 2}), 3u);
  EXPECT_EQ(db.CountSupport({0, 1, 2}), 2u);
  EXPECT_EQ(db.CountSupport({0, 4}), 1u);
  EXPECT_EQ(db.CountSupport({}), 5u);  // Empty set is in every txn.
}

TEST(TransactionDbTest, VerticalIndexMatchesSupports) {
  TransactionDb db = MakeDb();
  db.BuildVerticalIndex();
  ASSERT_TRUE(db.has_vertical_index());
  for (ItemId item = 0; item < db.num_items(); ++item) {
    EXPECT_EQ(db.vertical(item).Count(), db.CountSupport({item}))
        << "item " << item;
  }
  // Pairwise intersection equals 2-set support.
  EXPECT_EQ(Bitset64::AndCount(db.vertical(1), db.vertical(2)),
            db.CountSupport({1, 2}));
}

TEST(TransactionDbTest, AddInvalidatesVerticalIndex) {
  TransactionDb db = MakeDb();
  db.BuildVerticalIndex();
  db.Add({0});
  EXPECT_FALSE(db.has_vertical_index());
  db.BuildVerticalIndex();
  EXPECT_EQ(db.vertical(0).Count(), 4u);
}

TEST(TransactionDbTest, PagesPerScanSmallDbIsOnePage) {
  const TransactionDb db = MakeDb();
  EXPECT_EQ(db.PagesPerScan(), 1u);
}

TEST(TransactionDbTest, PagesPerScanGrowsWithData) {
  TransactionDb db(100);
  // Each record: 8 + 4*50 = 208 bytes; 19 fit a 4096-byte page.
  std::vector<ItemId> items;
  for (ItemId i = 0; i < 50; ++i) items.push_back(i);
  for (int t = 0; t < 100; ++t) db.Add(items);
  const uint64_t pages = db.PagesPerScan();
  EXPECT_EQ(pages, (100 + 18) / 19);
}

TEST(TransactionDbTest, PagesPerScanCustomModel) {
  TransactionDb db(4);
  db.Add({0, 1});
  IoModel model;
  model.page_size_bytes = 16;  // One record (8 + 8 = 16 bytes) per page.
  EXPECT_EQ(db.PagesPerScan(model), 1u);
  db.Add({0, 1});
  EXPECT_EQ(db.PagesPerScan(model), 2u);
}

TEST(TransactionDbTest, EmptyDb) {
  TransactionDb db(3);
  EXPECT_EQ(db.num_transactions(), 0u);
  EXPECT_EQ(db.CountSupport({0}), 0u);
  EXPECT_EQ(db.PagesPerScan(), 0u);
  db.BuildVerticalIndex();
  EXPECT_EQ(db.vertical(0).Count(), 0u);
}

}  // namespace
}  // namespace cfq
