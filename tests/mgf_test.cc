#include "constraints/mgf.h"

#include <random>

#include <gtest/gtest.h>

#include "constraints/classify.h"
#include "constraints/eval.h"

namespace cfq {
namespace {

ItemCatalog MakeCatalog() {
  // Items 0..7 with A = {1, 2, 3, 4, 5, 6, 7, 8}.
  ItemCatalog catalog(8);
  EXPECT_TRUE(
      catalog.AddNumericAttr("A", {1, 2, 3, 4, 5, 6, 7, 8}).ok());
  return catalog;
}

const Itemset kDomain{0, 1, 2, 3, 4, 5, 6, 7};

SuccinctForm MustForm(const OneVarConstraint& c, const ItemCatalog& catalog) {
  auto form = ComputeSuccinctForm(c, kDomain, catalog);
  EXPECT_TRUE(form.ok()) << form.status();
  return form.value();
}

TEST(MgfTest, SubsetRestrictsAllowed) {
  const ItemCatalog catalog = MakeCatalog();
  const auto form = MustForm(
      MakeDomain1(Var::kS, "A", SetCmp::kSubset, {1.0, 2.0, 3.0}), catalog);
  EXPECT_EQ(form.allowed, (Itemset{0, 1, 2}));
  EXPECT_TRUE(form.groups.empty());
  EXPECT_TRUE(form.exact);
}

TEST(MgfTest, DisjointExcludesValues) {
  const ItemCatalog catalog = MakeCatalog();
  const auto form = MustForm(
      MakeDomain1(Var::kS, "A", SetCmp::kDisjoint, {1.0, 8.0}), catalog);
  EXPECT_EQ(form.allowed, (Itemset{1, 2, 3, 4, 5, 6}));
  EXPECT_TRUE(form.exact);
}

TEST(MgfTest, SupersetCreatesOneGroupPerValue) {
  const ItemCatalog catalog = MakeCatalog();
  const auto form = MustForm(
      MakeDomain1(Var::kS, "A", SetCmp::kSuperset, {2.0, 5.0}), catalog);
  ASSERT_EQ(form.groups.size(), 2u);
  EXPECT_EQ(form.groups[0], Itemset{1});
  EXPECT_EQ(form.groups[1], Itemset{4});
  EXPECT_TRUE(form.exact);
}

TEST(MgfTest, MinGeIsAllowedForm) {
  const ItemCatalog catalog = MakeCatalog();
  const auto form =
      MustForm(MakeAgg1(Var::kS, AggFn::kMin, "A", CmpOp::kGe, 5), catalog);
  EXPECT_EQ(form.allowed, (Itemset{4, 5, 6, 7}));
  EXPECT_TRUE(form.exact);
}

TEST(MgfTest, MinLeIsGroupForm) {
  const ItemCatalog catalog = MakeCatalog();
  const auto form =
      MustForm(MakeAgg1(Var::kS, AggFn::kMin, "A", CmpOp::kLe, 3), catalog);
  EXPECT_EQ(form.allowed, kDomain);
  ASSERT_EQ(form.groups.size(), 1u);
  EXPECT_EQ(form.groups[0], (Itemset{0, 1, 2}));
  EXPECT_TRUE(form.exact);
}

TEST(MgfTest, MaxEqCombinesAllowedAndGroup) {
  const ItemCatalog catalog = MakeCatalog();
  const auto form =
      MustForm(MakeAgg1(Var::kS, AggFn::kMax, "A", CmpOp::kEq, 4), catalog);
  EXPECT_EQ(form.allowed, (Itemset{0, 1, 2, 3}));
  ASSERT_EQ(form.groups.size(), 1u);
  EXPECT_EQ(form.groups[0], Itemset{3});
  EXPECT_TRUE(form.exact);
}

TEST(MgfTest, SumLeGetsSoundItemFilter) {
  const ItemCatalog catalog = MakeCatalog();
  const auto form =
      MustForm(MakeAgg1(Var::kS, AggFn::kSum, "A", CmpOp::kLe, 4), catalog);
  EXPECT_EQ(form.allowed, (Itemset{0, 1, 2, 3}));  // Values <= 4.
  EXPECT_FALSE(form.exact);
}

TEST(MgfTest, AvgHasNoFilter) {
  const ItemCatalog catalog = MakeCatalog();
  const auto form =
      MustForm(MakeAgg1(Var::kS, AggFn::kAvg, "A", CmpOp::kLe, 4), catalog);
  EXPECT_EQ(form.allowed, kDomain);
  EXPECT_TRUE(form.groups.empty());
  EXPECT_FALSE(form.exact);
}

TEST(MgfTest, CountZeroIsUnsatisfiable) {
  const ItemCatalog catalog = MakeCatalog();
  const auto form =
      MustForm(MakeAgg1(Var::kS, AggFn::kCount, "A", CmpOp::kLe, 0), catalog);
  EXPECT_TRUE(form.Unsatisfiable());
  EXPECT_TRUE(form.exact);
}

TEST(MgfTest, UnsatisfiableWhenGroupEmpty) {
  const ItemCatalog catalog = MakeCatalog();
  const auto form =
      MustForm(MakeAgg1(Var::kS, AggFn::kMin, "A", CmpOp::kLe, 0), catalog);
  EXPECT_TRUE(form.Unsatisfiable());  // No item has A <= 0.
}

TEST(MgfTest, UnknownAttributeFails) {
  const ItemCatalog catalog = MakeCatalog();
  EXPECT_FALSE(ComputeSuccinctForm(
                   MakeAgg1(Var::kS, AggFn::kMin, "Nope", CmpOp::kLe, 1),
                   kDomain, catalog)
                   .ok());
}

TEST(MgfTest, CombineIntersectsAllowedAndClipsGroups) {
  const ItemCatalog catalog = MakeCatalog();
  const auto a =
      MustForm(MakeAgg1(Var::kS, AggFn::kMax, "A", CmpOp::kLe, 6), catalog);
  const auto b =
      MustForm(MakeAgg1(Var::kS, AggFn::kMin, "A", CmpOp::kLe, 2), catalog);
  const SuccinctForm combined = CombineForms(a, b);
  EXPECT_EQ(combined.allowed, (Itemset{0, 1, 2, 3, 4, 5}));
  ASSERT_EQ(combined.groups.size(), 1u);
  EXPECT_EQ(combined.groups[0], (Itemset{0, 1}));
}

TEST(MgfTest, ComputeCombinedFormSkipsOtherVariable) {
  const ItemCatalog catalog = MakeCatalog();
  std::vector<OneVarConstraint> cs;
  cs.push_back(MakeAgg1(Var::kS, AggFn::kMax, "A", CmpOp::kLe, 4));
  cs.push_back(MakeAgg1(Var::kT, AggFn::kMax, "A", CmpOp::kLe, 1));
  auto form = ComputeCombinedForm(cs, Var::kS, kDomain, catalog);
  ASSERT_TRUE(form.ok());
  EXPECT_EQ(form->allowed, (Itemset{0, 1, 2, 3}));
}

TEST(MgfTest, SatisfiesFormChecksAllowedAndGroups) {
  SuccinctForm form;
  form.allowed = {0, 1, 2, 3};
  form.groups = {{0, 1}};
  EXPECT_TRUE(SatisfiesForm(form, {0, 2}));
  EXPECT_FALSE(SatisfiesForm(form, {2, 3}));  // Misses the group.
  EXPECT_FALSE(SatisfiesForm(form, {0, 4}));  // Outside allowed.
}

// Property: for every succinct constraint whose form is exact, the form
// agrees with direct evaluation on every non-empty subset.
class MgfExactnessTest : public ::testing::TestWithParam<int> {};

TEST_P(MgfExactnessTest, ExactFormsMatchEval) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> value(0, 5);
  ItemCatalog catalog(7);
  std::vector<AttrValue> values(7);
  for (auto& v : values) v = value(rng);
  ASSERT_TRUE(catalog.AddNumericAttr("A", values).ok());
  const Itemset domain{0, 1, 2, 3, 4, 5, 6};

  std::vector<OneVarConstraint> constraints;
  for (SetCmp cmp : {SetCmp::kSubset, SetCmp::kDisjoint, SetCmp::kSuperset,
                     SetCmp::kIntersects, SetCmp::kNotSubset, SetCmp::kEqual}) {
    constraints.push_back(MakeDomain1(Var::kS, "A", cmp, {1.0, 3.0}));
  }
  for (AggFn agg : {AggFn::kMin, AggFn::kMax}) {
    for (CmpOp cmp :
         {CmpOp::kLe, CmpOp::kGe, CmpOp::kLt, CmpOp::kGt, CmpOp::kEq}) {
      constraints.push_back(MakeAgg1(Var::kS, agg, "A", cmp, 3));
    }
  }

  for (const OneVarConstraint& c : constraints) {
    auto form = ComputeSuccinctForm(c, domain, catalog);
    ASSERT_TRUE(form.ok());
    if (!form->exact) continue;
    ForEachNonEmptySubset(domain, [&](const Itemset& x) {
      auto expected = Eval(c, x, catalog);
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(SatisfiesForm(form.value(), x), expected.value())
          << ToString(c) << " on " << ToString(x);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MgfExactnessTest, ::testing::Range(0, 6));

// Property: non-exact forms are sound relaxations — they never reject a
// satisfying set.
class MgfSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(MgfSoundnessTest, RelaxedFormsAreSound) {
  std::mt19937 rng(GetParam() + 100);
  std::uniform_int_distribution<int> value(0, 5);
  ItemCatalog catalog(7);
  std::vector<AttrValue> values(7);
  for (auto& v : values) v = value(rng);
  ASSERT_TRUE(catalog.AddNumericAttr("A", values).ok());
  const Itemset domain{0, 1, 2, 3, 4, 5, 6};

  std::vector<OneVarConstraint> constraints;
  constraints.push_back(MakeAgg1(Var::kS, AggFn::kSum, "A", CmpOp::kLe, 7));
  constraints.push_back(MakeAgg1(Var::kS, AggFn::kAvg, "A", CmpOp::kGe, 2));
  constraints.push_back(MakeAgg1(Var::kS, AggFn::kCount, "A", CmpOp::kLe, 2));
  constraints.push_back(
      MakeDomain1(Var::kS, "A", SetCmp::kNotSuperset, {1.0, 2.0}));
  constraints.push_back(
      MakeDomain1(Var::kS, "A", SetCmp::kNotEqual, {1.0}));
  constraints.push_back(MakeAgg1(Var::kS, AggFn::kMin, "A", CmpOp::kNe, 3));

  for (const OneVarConstraint& c : constraints) {
    auto form = ComputeSuccinctForm(c, domain, catalog);
    ASSERT_TRUE(form.ok());
    ForEachNonEmptySubset(domain, [&](const Itemset& x) {
      auto satisfied = Eval(c, x, catalog);
      ASSERT_TRUE(satisfied.ok());
      if (satisfied.value()) {
        EXPECT_TRUE(SatisfiesForm(form.value(), x))
            << ToString(c) << " wrongly rejects " << ToString(x);
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MgfSoundnessTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace cfq
