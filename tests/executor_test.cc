#include "core/executor.h"

#include <random>

#include <gtest/gtest.h>

namespace cfq {
namespace {

struct Instance {
  TransactionDb db{0};
  ItemCatalog catalog{0};
  CfqQuery query;
};

// Random small instance: S over even items, T over odd items, Price and
// Type attributes.
Instance MakeInstance(int seed) {
  Instance inst;
  const size_t n = 10;
  inst.db = TransactionDb(n);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> len(1, 6);
  std::uniform_int_distribution<ItemId> item(0, n - 1);
  for (int t = 0; t < 80; ++t) {
    std::vector<ItemId> txn(static_cast<size_t>(len(rng)));
    for (auto& x : txn) x = item(rng);
    inst.db.Add(std::move(txn));
  }
  inst.catalog = ItemCatalog(n);
  std::vector<AttrValue> price(n);
  std::vector<int32_t> type(n);
  std::uniform_int_distribution<int> price_dist(1, 9);
  std::uniform_int_distribution<int> type_dist(0, 2);
  for (size_t i = 0; i < n; ++i) {
    price[i] = price_dist(rng);
    type[i] = type_dist(rng);
  }
  EXPECT_TRUE(inst.catalog.AddNumericAttr("Price", price).ok());
  EXPECT_TRUE(inst.catalog.AddCategoricalAttr("Type", type).ok());
  for (ItemId i = 0; i < n; ++i) {
    ((i % 2 == 0) ? inst.query.s_domain : inst.query.t_domain).push_back(i);
  }
  inst.query.min_support_s = 4;
  inst.query.min_support_t = 4;
  return inst;
}

// Query shapes covering every optimization path.
std::vector<CfqQuery> QueryShapes(const CfqQuery& base) {
  std::vector<CfqQuery> out;
  {
    CfqQuery q = base;  // Pure frequency (cross product).
    out.push_back(q);
  }
  {
    CfqQuery q = base;  // 1-var only.
    q.one_var.push_back(
        MakeAgg1(Var::kS, AggFn::kSum, "Price", CmpOp::kLe, 14));
    q.one_var.push_back(
        MakeAgg1(Var::kT, AggFn::kMin, "Price", CmpOp::kGe, 3));
    out.push_back(q);
  }
  {
    CfqQuery q = base;  // Quasi-succinct 2-var (Fig 8(a) shape).
    q.two_var.push_back(
        MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price"));
    out.push_back(q);
  }
  {
    CfqQuery q = base;  // Domain 2-var.
    q.two_var.push_back(MakeDomain2("Type", SetCmp::kDisjoint, "Type"));
    out.push_back(q);
  }
  {
    CfqQuery q = base;  // 1-var + 2-var (Fig 8(b) shape).
    q.one_var.push_back(
        MakeAgg1(Var::kS, AggFn::kMax, "Price", CmpOp::kLe, 6));
    q.one_var.push_back(
        MakeAgg1(Var::kT, AggFn::kMin, "Price", CmpOp::kGe, 4));
    q.two_var.push_back(MakeDomain2("Type", SetCmp::kEqual, "Type"));
    out.push_back(q);
  }
  {
    CfqQuery q = base;  // Non-quasi-succinct: sum vs sum (Sec 7.3 shape).
    q.two_var.push_back(
        MakeAgg2(AggFn::kSum, "Price", CmpOp::kLe, AggFn::kSum, "Price"));
    out.push_back(q);
  }
  {
    CfqQuery q = base;  // avg constraint with induced weaker form.
    q.two_var.push_back(
        MakeAgg2(AggFn::kAvg, "Price", CmpOp::kLe, AggFn::kAvg, "Price"));
    out.push_back(q);
  }
  {
    CfqQuery q = base;  // Subset (sound-not-tight reduction row).
    q.two_var.push_back(MakeDomain2("Type", SetCmp::kSubset, "Type"));
    out.push_back(q);
  }
  {
    CfqQuery q = base;  // Multiple 2-var constraints together.
    q.two_var.push_back(
        MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMax, "Price"));
    q.two_var.push_back(MakeDomain2("Type", SetCmp::kIntersects, "Type"));
    out.push_back(q);
  }
  {
    CfqQuery q = base;  // Mixed: 1-var + sum/avg 2-var.
    q.one_var.push_back(
        MakeAgg1(Var::kS, AggFn::kMax, "Price", CmpOp::kLe, 7));
    q.two_var.push_back(
        MakeAgg2(AggFn::kSum, "Price", CmpOp::kGe, AggFn::kAvg, "Price"));
    out.push_back(q);
  }
  return out;
}

// The central correctness property: every strategy returns the same
// answer pairs as the brute-force oracle, across query shapes, seeds,
// dovetailing and counting backends.
class ExecutorEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, bool, CounterKind>> {};

TEST_P(ExecutorEquivalenceTest, AllStrategiesMatchOracle) {
  const auto [seed, dovetail, counter] = GetParam();
  Instance inst = MakeInstance(seed);
  PlanOptions options;
  options.dovetail = dovetail;
  options.counter = counter;

  for (const CfqQuery& q : QueryShapes(inst.query)) {
    auto oracle = ExecuteBruteForce(inst.db, inst.catalog, q);
    ASSERT_TRUE(oracle.ok()) << ToString(q);
    const auto expected = AnswerPairs(oracle.value());

    auto optimized = ExecuteOptimized(&inst.db, inst.catalog, q, options);
    ASSERT_TRUE(optimized.ok()) << ToString(q);
    EXPECT_EQ(AnswerPairs(optimized.value()), expected) << ToString(q);

    auto naive = ExecuteAprioriPlus(&inst.db, inst.catalog, q, options);
    ASSERT_TRUE(naive.ok()) << ToString(q);
    EXPECT_EQ(AnswerPairs(naive.value()), expected) << ToString(q);

    auto cap = ExecuteCapOneVar(&inst.db, inst.catalog, q, options);
    ASSERT_TRUE(cap.ok()) << ToString(q);
    EXPECT_EQ(AnswerPairs(cap.value()), expected) << ToString(q);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, ExecutorEquivalenceTest,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Bool(),
                       ::testing::Values(CounterKind::kBitmap,
                                         CounterKind::kHash)));

// Ablation toggles must not change answers.
class ExecutorAblationTest : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorAblationTest, TogglesPreserveAnswers) {
  Instance inst = MakeInstance(GetParam() + 42);
  for (const CfqQuery& q : QueryShapes(inst.query)) {
    auto oracle = ExecuteBruteForce(inst.db, inst.catalog, q);
    ASSERT_TRUE(oracle.ok());
    const auto expected = AnswerPairs(oracle.value());
    for (int mask = 0; mask < 8; ++mask) {
      PlanOptions options;
      options.use_quasi_succinct = mask & 1;
      options.use_induced = mask & 2;
      options.use_jmax = mask & 4;
      auto result = ExecuteOptimized(&inst.db, inst.catalog, q, options);
      ASSERT_TRUE(result.ok()) << ToString(q) << " mask=" << mask;
      EXPECT_EQ(AnswerPairs(result.value()), expected)
          << ToString(q) << " mask=" << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorAblationTest, ::testing::Range(0, 3));

TEST(ExecutorTest, OptimizedNeverCountsMoreThanAprioriPlus) {
  Instance inst = MakeInstance(7);
  CfqQuery q = inst.query;
  q.two_var.push_back(
      MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price"));
  auto optimized = ExecuteOptimized(&inst.db, inst.catalog, q);
  auto naive = ExecuteAprioriPlus(&inst.db, inst.catalog, q);
  ASSERT_TRUE(optimized.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_LE(optimized->stats.s.sets_counted + optimized->stats.t.sets_counted,
            naive->stats.s.sets_counted + naive->stats.t.sets_counted);
}

TEST(ExecutorTest, SideSetsAreSubsetOfBaselineSideSets) {
  Instance inst = MakeInstance(8);
  CfqQuery q = inst.query;
  q.two_var.push_back(
      MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price"));
  auto optimized = ExecuteOptimized(&inst.db, inst.catalog, q);
  auto naive = ExecuteAprioriPlus(&inst.db, inst.catalog, q);
  ASSERT_TRUE(optimized.ok());
  ASSERT_TRUE(naive.ok());
  auto contains = [](const std::vector<FrequentSet>& haystack,
                     const Itemset& needle) {
    for (const FrequentSet& f : haystack) {
      if (f.items == needle) return true;
    }
    return false;
  };
  for (const FrequentSet& f : optimized->s_sets) {
    EXPECT_TRUE(contains(naive->s_sets, f.items)) << ToString(f.items);
  }
  for (const FrequentSet& f : optimized->t_sets) {
    EXPECT_TRUE(contains(naive->t_sets, f.items)) << ToString(f.items);
  }
  // And every paired set survives in the optimized side sets.
  for (const auto& [i, j] : naive->pairs) {
    EXPECT_TRUE(contains(optimized->s_sets, naive->s_sets[i].items));
    EXPECT_TRUE(contains(optimized->t_sets, naive->t_sets[j].items));
  }
}

TEST(ExecutorTest, CrossProductFlagForPureFrequencyQuery) {
  Instance inst = MakeInstance(9);
  auto result = ExecuteOptimized(&inst.db, inst.catalog, inst.query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->cross_product);
  EXPECT_TRUE(result->pairs.empty());
  EXPECT_EQ(AnswerPairs(result.value()).size(),
            result->s_sets.size() * result->t_sets.size());
}

TEST(ExecutorTest, UnsatisfiableTwoVarYieldsNoPairs) {
  Instance inst = MakeInstance(10);
  CfqQuery q = inst.query;
  // Prices are 1..9; S sums are >= 1, so sum(S) <= min(T) with min(T)
  // forced below 1 is unsatisfiable.
  q.one_var.push_back(MakeAgg1(Var::kT, AggFn::kMin, "Price", CmpOp::kLe, 0));
  q.two_var.push_back(
      MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price"));
  auto result = ExecuteOptimized(&inst.db, inst.catalog, q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->pairs.empty());
  EXPECT_TRUE(result->t_sets.empty());
  // The reduction should have killed the S side too (no frequent valid
  // T witness exists).
  EXPECT_TRUE(result->s_sets.empty());
}

TEST(ExecutorTest, UnknownAttributeSurfacesError) {
  Instance inst = MakeInstance(11);
  CfqQuery q = inst.query;
  q.two_var.push_back(MakeDomain2("Ghost", SetCmp::kDisjoint, "Type"));
  EXPECT_FALSE(ExecuteOptimized(&inst.db, inst.catalog, q).ok());
}

TEST(ExecutorTest, MaxLevelLimitsLatticeDepth) {
  Instance inst = MakeInstance(12);
  PlanOptions options;
  options.max_level = 1;
  auto result = ExecuteOptimized(&inst.db, inst.catalog, inst.query, options);
  ASSERT_TRUE(result.ok());
  for (const FrequentSet& f : result->s_sets) {
    EXPECT_EQ(f.items.size(), 1u);
  }
}

TEST(ExecutorTest, ExecutePlanMatchesExecuteOptimized) {
  Instance inst = MakeInstance(13);
  CfqQuery q = inst.query;
  q.two_var.push_back(
      MakeAgg2(AggFn::kSum, "Price", CmpOp::kLe, AggFn::kSum, "Price"));
  auto plan = BuildPlan(q);
  ASSERT_TRUE(plan.ok());
  auto via_plan = ExecutePlan(&inst.db, inst.catalog, plan.value());
  auto direct = ExecuteOptimized(&inst.db, inst.catalog, q);
  ASSERT_TRUE(via_plan.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(AnswerPairs(via_plan.value()), AnswerPairs(direct.value()));
}

// Section 5.2's I/O argument: with a horizontal backend, dovetailing
// shares one transaction-file scan between the two lattices' levels.
TEST(ExecutorTest, DovetailSharesScansWithHorizontalBackend) {
  Instance inst = MakeInstance(15);
  CfqQuery q = inst.query;
  q.two_var.push_back(
      MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price"));

  PlanOptions dovetailed;
  dovetailed.counter = CounterKind::kHash;
  PlanOptions sequential = dovetailed;
  sequential.dovetail = false;

  auto shared = ExecuteOptimized(&inst.db, inst.catalog, q, dovetailed);
  auto split = ExecuteOptimized(&inst.db, inst.catalog, q, sequential);
  ASSERT_TRUE(shared.ok());
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(AnswerPairs(shared.value()), AnswerPairs(split.value()));
  const uint64_t shared_scans =
      shared->stats.s.io.scans + shared->stats.t.io.scans;
  const uint64_t split_scans =
      split->stats.s.io.scans + split->stats.t.io.scans;
  EXPECT_LT(shared_scans, split_scans);
}

// Negative attribute values: every sum-related pushdown assumes
// nonnegative domains (Section 5); with nonnegative=false the executor
// must stay sound and agree with the oracle.
class NegativeValuesTest : public ::testing::TestWithParam<int> {};

TEST_P(NegativeValuesTest, SoundWithNonnegativeDisabled) {
  std::mt19937 rng(GetParam() + 900);
  TransactionDb db(8);
  std::uniform_int_distribution<int> len(1, 5);
  std::uniform_int_distribution<ItemId> item(0, 7);
  for (int t = 0; t < 60; ++t) {
    std::vector<ItemId> txn(static_cast<size_t>(len(rng)));
    for (auto& x : txn) x = item(rng);
    db.Add(std::move(txn));
  }
  ItemCatalog catalog(8);
  std::vector<AttrValue> price(8);
  std::uniform_int_distribution<int> price_dist(-5, 5);
  for (auto& p : price) p = price_dist(rng);
  ASSERT_TRUE(catalog.AddNumericAttr("Price", price).ok());

  CfqQuery query;
  for (ItemId i = 0; i < 8; ++i) {
    ((i % 2 == 0) ? query.s_domain : query.t_domain).push_back(i);
  }
  query.min_support_s = query.min_support_t = 3;
  query.one_var.push_back(
      MakeAgg1(Var::kS, AggFn::kSum, "Price", CmpOp::kLe, 2));
  query.two_var.push_back(
      MakeAgg2(AggFn::kSum, "Price", CmpOp::kLe, AggFn::kSum, "Price"));

  PlanOptions options;
  options.nonnegative = false;
  auto oracle = ExecuteBruteForce(db, catalog, query);
  auto optimized = ExecuteOptimized(&db, catalog, query, options);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(AnswerPairs(optimized.value()), AnswerPairs(oracle.value()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NegativeValuesTest, ::testing::Range(0, 6));

TEST(ExecutorTest, StatsArePopulated) {
  Instance inst = MakeInstance(14);
  CfqQuery q = inst.query;
  q.two_var.push_back(MakeDomain2("Type", SetCmp::kDisjoint, "Type"));
  auto result = ExecuteOptimized(&inst.db, inst.catalog, q);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.s.sets_counted, 0u);
  EXPECT_GT(result->stats.t.sets_counted, 0u);
  EXPECT_GE(result->stats.elapsed_seconds, 0.0);
  if (!result->s_sets.empty() && !result->t_sets.empty()) {
    EXPECT_EQ(result->stats.pair_checks,
              result->s_sets.size() * result->t_sets.size());
  }
}

}  // namespace
}  // namespace cfq
