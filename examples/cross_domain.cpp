// Cross-domain CFQ: the paper's Section 3 generality — "if T ranges
// over the Type domain, then we can speak of a constraint with S.Type
// and T, such as S.Type ⊆ T".
//
// No special machinery is needed: we derive a second transaction
// database over the TYPE universe (each basket projected to the set of
// types it contains), let T range over it, and relate the two sides
// with S.Type ⊆ T.Item — the built-in "Item" pseudo-attribute of the
// type universe. The answer pairs read: "baskets frequently contain
// itemset S, and the type combination T (covering S's types) is itself
// frequent."
//
//   ./examples/cross_domain [--num_transactions=4000]

#include <iostream>

#include "bench/bench_util.h"
#include "constraints/eval.h"
#include "core/executor.h"
#include "mining/cap.h"

int main(int argc, char** argv) {
  using namespace cfq;
  bench::Args args(argc, argv);

  bench::DbConfig config;
  config.num_transactions =
      static_cast<uint64_t>(args.GetInt("num_transactions", 4000));
  config.num_items = 200;
  config.num_patterns = 100;
  TransactionDb items_db = bench::MustGenerate(config);

  // Item universe: 12 product types.
  constexpr int32_t kNumTypes = 12;
  ItemCatalog catalog(config.num_items);
  std::vector<int32_t> types(config.num_items);
  for (ItemId i = 0; i < config.num_items; ++i) {
    types[i] = static_cast<int32_t>(i % kNumTypes);
  }
  (void)catalog.AddCategoricalAttr("Type", types);

  // Derived transaction database over the TYPE universe: basket ->
  // set of types occurring in it. T will range over this domain.
  TransactionDb types_db(kNumTypes);
  for (const Itemset& basket : items_db.transactions()) {
    std::vector<ItemId> basket_types;
    for (ItemId item : basket) {
      basket_types.push_back(static_cast<ItemId>(types[item]));
    }
    types_db.Add(std::move(basket_types));
  }

  // The two variables live in different databases, so mine them
  // separately: S over items (its 1-var constraints pushed by CAP),
  // T over types — then join with the cross-domain 2-var constraint
  // S.Type ⊆ T (evaluated against a shared catalog: the type universe's
  // "Item" pseudo-attribute carries the type codes).
  CfqQuery s_query;
  for (ItemId i = 0; i < config.num_items; ++i) {
    s_query.s_domain.push_back(i);
  }
  s_query.t_domain = {0};  // Unused; S side only.
  s_query.min_support_s = config.num_transactions / 100;
  s_query.min_support_t = 1;

  auto s_side = RunCap(&items_db, catalog, s_query.s_domain, Var::kS, {},
                       s_query.min_support_s);
  if (!s_side.ok()) {
    std::cerr << s_side.status() << "\n";
    return 1;
  }

  ItemCatalog type_catalog(kNumTypes);  // "Item" pseudo-attr suffices.
  Itemset type_domain;
  for (ItemId t = 0; t < kNumTypes; ++t) type_domain.push_back(t);
  auto t_side = RunCap(&types_db, type_catalog, type_domain, Var::kT, {},
                       config.num_transactions / 50);
  if (!t_side.ok()) {
    std::cerr << t_side.status() << "\n";
    return 1;
  }

  std::cout << s_side->valid_frequent.size() << " frequent itemsets, "
            << t_side->valid_frequent.size()
            << " frequent type combinations\n";

  // Cross-domain join: S.Type ⊆ T (T's elements ARE type codes).
  uint64_t pairs = 0, shown = 0;
  for (const FrequentSet& s : s_side->valid_frequent) {
    if (s.items.size() < 2) continue;  // Show multi-item rules only.
    auto s_types = ProjectSet("Type", s.items, catalog);
    if (!s_types.ok()) continue;
    for (const FrequentSet& t : t_side->valid_frequent) {
      auto t_values = ProjectSet(kItemAttr, t.items, type_catalog);
      if (!t_values.ok()) continue;
      if (!EvalSetCmp(s_types.value(), SetCmp::kSubset, t_values.value())) {
        continue;
      }
      ++pairs;
      if (shown < 8) {
        ++shown;
        std::cout << "  items " << ToString(s.items) << " (types ";
        for (size_t i = 0; i < s_types->size(); ++i) {
          std::cout << (i ? "," : "") << (*s_types)[i];
        }
        std::cout << ")  within frequent type combo " << ToString(t.items)
                  << "\n";
      }
    }
  }
  std::cout << pairs << " cross-domain (S, T) pairs with S.Type subset T\n";
  return 0;
}
