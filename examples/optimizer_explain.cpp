// EXPLAIN tour: shows how the Figure-7 optimizer routes each class of
// constraint, with the ccc counters of the three strategies side by
// side on a shared workload.
//
//   ./examples/optimizer_explain [--num_transactions=3000]

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/executor.h"

int main(int argc, char** argv) {
  using namespace cfq;
  bench::Args args(argc, argv);

  bench::DbConfig config;
  config.num_transactions =
      static_cast<uint64_t>(args.GetInt("num_transactions", 3000));
  config.num_items = 150;
  config.num_patterns = 80;
  TransactionDb db = bench::MustGenerate(config);

  ItemCatalog catalog(config.num_items);
  ExperimentDomains domains;
  if (auto s = AssignSplitUniformPrices(&catalog, "Price", 400, 1000, 0, 600,
                                        13, &domains);
      !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  if (auto s = AssignTypesWithOverlap(&catalog, "Type", domains, 8, 50, 17);
      !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  CfqQuery base;
  base.s_domain = domains.s_domain;
  base.t_domain = domains.t_domain;
  base.min_support_s = config.num_transactions / 200;
  base.min_support_t = config.num_transactions / 200;

  struct Example {
    const char* label;
    CfqQuery query;
  };
  std::vector<Example> examples;
  {
    CfqQuery q = base;
    q.two_var.push_back(MakeDomain2("Type", SetCmp::kDisjoint, "Type"));
    examples.push_back({"anti-monotone + quasi-succinct domain", q});
  }
  {
    CfqQuery q = base;
    q.one_var.push_back(
        MakeAgg1(Var::kS, AggFn::kMax, "Price", CmpOp::kLe, 800));
    q.two_var.push_back(
        MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price"));
    examples.push_back({"1-var succinct + quasi-succinct aggregate", q});
  }
  {
    CfqQuery q = base;
    q.two_var.push_back(
        MakeAgg2(AggFn::kAvg, "Price", CmpOp::kLe, AggFn::kAvg, "Price"));
    examples.push_back({"non-quasi-succinct avg (induced weaker form)", q});
  }
  {
    CfqQuery q = base;
    q.two_var.push_back(
        MakeAgg2(AggFn::kSum, "Price", CmpOp::kLe, AggFn::kSum, "Price"));
    examples.push_back({"non-quasi-succinct sum (Jmax iterative pruning)", q});
  }

  for (const Example& e : examples) {
    std::cout << "---- " << e.label << " ----\n";
    auto plan = BuildPlan(e.query);
    if (!plan.ok()) {
      std::cerr << plan.status() << "\n";
      return 1;
    }
    std::cout << ExplainPlan(plan.value());

    TablePrinter table({"strategy", "sets counted", "constraint checks",
                        "answer pairs"});
    auto add = [&](const char* name, Result<CfqResult> r) {
      if (!r.ok()) {
        std::cerr << r.status() << "\n";
        std::exit(1);
      }
      table.AddRow({name,
                    TablePrinter::Fmt(r->stats.s.sets_counted +
                                      r->stats.t.sets_counted),
                    TablePrinter::Fmt(r->stats.s.constraint_checks +
                                      r->stats.t.constraint_checks),
                    TablePrinter::Fmt(static_cast<uint64_t>(
                        AnswerPairs(r.value()).size()))});
    };
    add("Apriori+", ExecuteAprioriPlus(&db, catalog, e.query));
    add("CAP (1-var)", ExecuteCapOneVar(&db, catalog, e.query));
    add("optimizer", ExecutePlan(&db, catalog, plan.value()));
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
