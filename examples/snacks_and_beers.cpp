// The paper's Section 2 example: find pairs of frequent sets of cheaper
// snack items and more expensive beer items —
//
//   {(S, T) | S.Type = {Snacks} & T.Type = {Beers}
//           & max(S.Price) <= min(T.Price)}
//
// on a Quest-generated transaction database, with an EXPLAIN of the
// optimizer's strategy.
//
//   ./examples/snacks_and_beers [--num_transactions=5000]

#include <iostream>

#include "bench/bench_util.h"
#include "core/executor.h"

int main(int argc, char** argv) {
  using namespace cfq;
  bench::Args args(argc, argv);

  bench::DbConfig config;
  config.num_transactions =
      static_cast<uint64_t>(args.GetInt("num_transactions", 5000));
  config.num_items = 200;
  config.num_patterns = 100;
  TransactionDb db = bench::MustGenerate(config);

  // Catalog: four product types; snacks are cheap, beers mid-range.
  ItemCatalog catalog(config.num_items);
  std::vector<int32_t> types(config.num_items);
  std::vector<AttrValue> prices(config.num_items);
  Rng rng(7);
  for (ItemId i = 0; i < config.num_items; ++i) {
    types[i] = static_cast<int32_t>(i % 4);
    switch (types[i]) {
      case 0:  // Snacks.
        prices[i] = static_cast<AttrValue>(rng.UniformInt(1, 8));
        break;
      case 1:  // Beers.
        prices[i] = static_cast<AttrValue>(rng.UniformInt(5, 20));
        break;
      default:  // Everything else.
        prices[i] = static_cast<AttrValue>(rng.UniformInt(1, 100));
    }
  }
  (void)catalog.AddCategoricalAttr("Type", types,
                                   {"Snacks", "Beers", "Dairy", "Misc"});
  (void)catalog.AddNumericAttr("Price", prices);

  CfqQuery query;
  for (ItemId i = 0; i < config.num_items; ++i) {
    query.s_domain.push_back(i);
    query.t_domain.push_back(i);
  }
  query.min_support_s = config.num_transactions / 150;
  query.min_support_t = config.num_transactions / 150;
  // S.Type = {Snacks}: a succinct 1-var domain constraint.
  query.one_var.push_back(
      MakeDomain1(Var::kS, "Type", SetCmp::kEqual, {0.0}));
  query.one_var.push_back(
      MakeDomain1(Var::kT, "Type", SetCmp::kEqual, {1.0}));
  query.two_var.push_back(
      MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price"));

  auto plan = BuildPlan(query);
  if (!plan.ok()) {
    std::cerr << plan.status() << "\n";
    return 1;
  }
  std::cout << ExplainPlan(plan.value()) << "\n";

  auto result = ExecutePlan(&db, catalog, plan.value());
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << result->s_sets.size() << " frequent valid snack sets, "
            << result->t_sets.size() << " beer sets, " << result->pairs.size()
            << " answer pairs\n\n";
  size_t shown = 0;
  for (const auto& [i, j] : result->pairs) {
    if (++shown > 10) {
      std::cout << "  ... (" << result->pairs.size() - 10 << " more)\n";
      break;
    }
    const Itemset& s = result->s_sets[i].items;
    const Itemset& t = result->t_sets[j].items;
    auto max_s = AggregateOver(AggFn::kMax, "Price", s, catalog);
    auto min_t = AggregateOver(AggFn::kMin, "Price", t, catalog);
    std::cout << "  snacks " << ToString(s) << " (max $" << max_s.value()
              << ")  =>  beers " << ToString(t) << " (min $" << min_t.value()
              << ")\n";
  }
  return 0;
}
