// Interactive CFQ shell: type queries in the paper's syntax against a
// Quest-generated market-basket database, get EXPLAIN output, answer
// pairs and the top association rules.
//
//   ./examples/cfq_shell [--num_transactions=3000] [--threads=N]
//                        [--metrics-out=FILE] [--metrics-format=jsonl|prom]
//   cfq> {(S, T) | freq(S, 20) & freq(T, 20) & max(S.Price) <= min(T.Price)}
//   cfq> sum(S.Price) <= 100 & S.Type = T.Type
//   cfq> explain max(S.Price) <= min(T.Price)
//   cfq> quit

#include <fstream>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "core/analyze.h"
#include "core/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "rules/rule_gen.h"

namespace {

constexpr char kHelp[] = R"(commands:
  <query>            run a CFQ, e.g.  freq(S, 20) & max(S.Price) <= min(T.Price)
  explain <query>    show the optimizer's strategy without running it
  analyze <query>    run with tracing; per-level pruning tables, latency
                     percentiles and resource usage (CPU, peak RSS)
  help               this text
  quit               exit

query syntax: freq(S, N), freq(T, N), agg(S.Attr) <= c, S.Attr subset {..},
  agg(S.Attr) <= agg(T.Attr), S.Attr = T.Attr, S.Attr disjoint T.Attr, ...
attributes: Price (uniform 1..1000), Type (8 categories 0..7)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace cfq;
  bench::Args args(argc, argv);

  bench::DbConfig config;
  config.num_transactions =
      static_cast<uint64_t>(args.GetInt("num_transactions", 3000));
  config.num_items = 200;
  config.num_patterns = 100;
  TransactionDb db = bench::MustGenerate(config);

  ItemCatalog catalog(config.num_items);
  if (auto s = AssignUniformPrices(&catalog, "Price", 1, 1000, 3); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  {
    std::vector<int32_t> types(config.num_items);
    for (ItemId i = 0; i < config.num_items; ++i) {
      types[i] = static_cast<int32_t>(i % 8);
    }
    (void)catalog.AddCategoricalAttr("Type", types);
  }
  Itemset universe;
  for (ItemId i = 0; i < config.num_items; ++i) universe.push_back(i);

  // Each `analyze` overwrites the metrics file with that query's
  // registry; an unwritable path fails at startup, not mid-session.
  const bool want_metrics_file = bench::MetricsRequested(args);
  {
    std::string probe_path = args.GetString("metrics-out", "");
    if (probe_path.empty()) probe_path = args.GetString("metrics", "");
    if (!probe_path.empty()) {
      std::ofstream probe(probe_path, std::ios::app);
      if (!probe) {
        std::cerr << "error: cannot open '" << probe_path
                  << "' for writing\n";
        return 1;
      }
    }
  }

  std::cout << "CFQ shell over " << config.num_transactions << " baskets, "
            << config.num_items << " items. 'help' for syntax.\n";

  std::string line;
  while (std::cout << "cfq> " << std::flush, std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "quit" || line == "exit") break;
    if (line == "help") {
      std::cout << kHelp;
      continue;
    }
    bool explain_only = false;
    bool analyze = false;
    std::string text = line;
    if (text.rfind("explain ", 0) == 0) {
      explain_only = true;
      text = text.substr(8);
    } else if (text.rfind("analyze ", 0) == 0) {
      analyze = true;
      text = text.substr(8);
    }
    auto parsed = ParseCfq(text);
    if (!parsed.ok()) {
      std::cout << "parse error: " << parsed.status().message() << "\n";
      continue;
    }
    CfqQuery query = std::move(parsed).value();
    query.s_domain = universe;
    query.t_domain = universe;
    // Sensible default thresholds if the query gave none.
    if (query.min_support_s <= 1) {
      query.min_support_s = config.num_transactions / 100;
    }
    if (query.min_support_t <= 1) {
      query.min_support_t = config.num_transactions / 100;
    }

    obs::Tracer tracer;
    obs::MetricsRegistry registry;
    PlanOptions plan_options;
    plan_options.threads = bench::ThreadsFromArgs(args);
    if (analyze || want_metrics_file) {
      plan_options.tracer = &tracer;
      plan_options.metrics = &registry;
    }
    auto plan = BuildPlan(query, plan_options);
    if (!plan.ok()) {
      std::cout << "plan error: " << plan.status().message() << "\n";
      continue;
    }
    std::cout << ExplainPlan(plan.value());
    if (explain_only) continue;

    auto result = ExecutePlan(&db, catalog, plan.value());
    if (!result.ok()) {
      std::cout << "execution error: " << result.status().message() << "\n";
      continue;
    }
    if (analyze) {
      std::cout << "\n"
                << RenderExplainAnalyze(result->stats, tracer.Events(),
                                        &registry);
    }
    if (want_metrics_file) {
      ExportMetrics(result->stats, &registry);
      bench::WriteMetricsFromArgs(args, registry);
    }
    const auto answers = AnswerPairs(result.value());
    std::cout << result->s_sets.size() << " valid frequent S-sets, "
              << result->t_sets.size() << " T-sets, " << answers.size()
              << " answer pairs ("
              << result->stats.s.sets_counted + result->stats.t.sets_counted
              << " candidates counted)\n";

    RuleOptions rule_options;
    rule_options.top_k = 5;
    rule_options.min_confidence = 0.1;
    auto rules = FormRules(&db, result.value(), rule_options);
    if (rules.ok() && !rules->empty()) {
      std::cout << "top rules:\n";
      for (const AssociationRule& rule : *rules) {
        std::cout << "  " << ToString(rule) << "\n";
      }
    }
  }
  return 0;
}
