// Interactive CFQ shell: type queries in the paper's syntax against a
// Quest-generated market-basket database, get EXPLAIN output, answer
// pairs and the top association rules.
//
//   ./examples/cfq_shell [--num_transactions=3000] [--threads=N]
//                        [--metrics-out=FILE] [--metrics-format=jsonl|prom]
//   cfq> {(S, T) | freq(S, 20) & freq(T, 20) & max(S.Price) <= min(T.Price)}
//   cfq> sum(S.Price) <= 100 & S.Type = T.Type
//   cfq> explain max(S.Price) <= min(T.Price)
//   cfq> quit

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench/bench_util.h"
#include "core/analyze.h"
#include "core/executor.h"
#include "data/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "rules/rule_gen.h"

namespace {

constexpr char kHelp[] = R"(commands:
  <query>            run a CFQ, e.g.  freq(S, 20) & max(S.Price) <= min(T.Price)
  explain <query>    show the optimizer's strategy without running it
  analyze <query>    run with tracing; per-level pruning tables, latency
                     percentiles and resource usage (CPU, peak RSS)
  load <db> <cat>    replace the session dataset with serialized files
                     (the cfqdb/cfqcat formats of cfq_gen and cfq_mine)
  save <db> <cat>    write the session dataset to serialized files
  help               this text
  quit               exit

query syntax: freq(S, N), freq(T, N), agg(S.Attr) <= c, S.Attr subset {..},
  agg(S.Attr) <= agg(T.Attr), S.Attr = T.Attr, S.Attr disjoint T.Attr, ...
attributes (generated dataset): Price (uniform 1..1000), Type (8 categories)
)";

// Splits "cmd <a> <b>" arguments; returns false unless exactly two.
bool TwoPaths(const std::string& rest, std::string* a, std::string* b) {
  std::istringstream fields(rest);
  std::string extra;
  return static_cast<bool>(fields >> *a >> *b) && !(fields >> extra);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cfq;
  bench::Args args(argc, argv);

  bench::DbConfig config;
  config.num_transactions =
      static_cast<uint64_t>(args.GetInt("num_transactions", 3000));
  config.num_items = 200;
  config.num_patterns = 100;
  TransactionDb db = bench::MustGenerate(config);

  ItemCatalog catalog(config.num_items);
  if (auto s = AssignUniformPrices(&catalog, "Price", 1, 1000, 3); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  {
    std::vector<int32_t> types(config.num_items);
    for (ItemId i = 0; i < config.num_items; ++i) {
      types[i] = static_cast<int32_t>(i % 8);
    }
    (void)catalog.AddCategoricalAttr("Type", types);
  }
  Itemset universe;
  for (ItemId i = 0; i < config.num_items; ++i) universe.push_back(i);
  auto rebuild_universe = [&] {
    universe.clear();
    for (ItemId i = 0; i < catalog.num_items(); ++i) universe.push_back(i);
  };

  // Each `analyze` overwrites the metrics file with that query's
  // registry; an unwritable path fails at startup, not mid-session.
  const bool want_metrics_file = bench::MetricsRequested(args);
  {
    std::string probe_path = args.GetString("metrics-out", "");
    if (probe_path.empty()) probe_path = args.GetString("metrics", "");
    if (!probe_path.empty()) {
      std::ofstream probe(probe_path, std::ios::app);
      if (!probe) {
        std::cerr << "error: cannot open '" << probe_path
                  << "' for writing\n";
        return 1;
      }
    }
  }

  std::cout << "CFQ shell over " << config.num_transactions << " baskets, "
            << config.num_items << " items. 'help' for syntax.\n";

  std::string line;
  while (std::cout << "cfq> " << std::flush, std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "quit" || line == "exit") break;
    if (line == "help") {
      std::cout << kHelp;
      continue;
    }
    if (line.rfind("load ", 0) == 0) {
      std::string db_path, cat_path;
      if (!TwoPaths(line.substr(5), &db_path, &cat_path)) {
        std::cout << "usage: load <db-path> <catalog-path>\n";
        continue;
      }
      auto loaded = LoadDataset(db_path, cat_path);
      if (!loaded.ok()) {
        std::cout << "load error: " << loaded.status() << "\n";
        continue;
      }
      db = std::move(loaded->db);
      catalog = std::move(loaded->catalog);
      rebuild_universe();
      std::cout << "loaded " << db.num_transactions() << " baskets over "
                << db.num_items() << " items; attributes:";
      for (const std::string& name : catalog.AttrNames()) {
        std::cout << ' ' << name;
      }
      std::cout << "\n";
      continue;
    }
    if (line.rfind("save ", 0) == 0) {
      std::string db_path, cat_path;
      if (!TwoPaths(line.substr(5), &db_path, &cat_path)) {
        std::cout << "usage: save <db-path> <catalog-path>\n";
        continue;
      }
      if (auto s = SaveDataset(db, catalog, db_path, cat_path); !s.ok()) {
        std::cout << "save error: " << s << "\n";
        continue;
      }
      std::cout << "wrote " << db.num_transactions() << " baskets to "
                << db_path << " and the catalog to " << cat_path << "\n";
      continue;
    }
    bool explain_only = false;
    bool analyze = false;
    std::string text = line;
    if (text.rfind("explain ", 0) == 0) {
      explain_only = true;
      text = text.substr(8);
    } else if (text.rfind("analyze ", 0) == 0) {
      analyze = true;
      text = text.substr(8);
    }
    auto parsed = ParseCfq(text);
    if (!parsed.ok()) {
      std::cout << "parse error: " << parsed.status().message() << "\n";
      continue;
    }
    CfqQuery query = std::move(parsed).value();
    query.s_domain = universe;
    query.t_domain = universe;
    // Sensible default thresholds if the query gave none.
    if (query.min_support_s <= 1) {
      query.min_support_s = std::max<uint64_t>(1, db.num_transactions() / 100);
    }
    if (query.min_support_t <= 1) {
      query.min_support_t = std::max<uint64_t>(1, db.num_transactions() / 100);
    }

    obs::Tracer tracer;
    obs::MetricsRegistry registry;
    PlanOptions plan_options;
    plan_options.threads = bench::ThreadsFromArgs(args);
    if (analyze || want_metrics_file) {
      plan_options.tracer = &tracer;
      plan_options.metrics = &registry;
    }
    auto plan = BuildPlan(query, plan_options);
    if (!plan.ok()) {
      std::cout << "plan error: " << plan.status().message() << "\n";
      continue;
    }
    std::cout << ExplainPlan(plan.value());
    if (explain_only) continue;

    auto result = ExecutePlan(&db, catalog, plan.value());
    if (!result.ok()) {
      std::cout << "execution error: " << result.status().message() << "\n";
      continue;
    }
    if (analyze) {
      std::cout << "\n"
                << RenderExplainAnalyze(result->stats, tracer.Events(),
                                        &registry);
    }
    if (want_metrics_file) {
      ExportMetrics(result->stats, &registry);
      bench::WriteMetricsFromArgs(args, registry);
    }
    const auto answers = AnswerPairs(result.value());
    std::cout << result->s_sets.size() << " valid frequent S-sets, "
              << result->t_sets.size() << " T-sets, " << answers.size()
              << " answer pairs ("
              << result->stats.s.sets_counted + result->stats.t.sets_counted
              << " candidates counted)\n";

    RuleOptions rule_options;
    rule_options.top_k = 5;
    rule_options.min_confidence = 0.1;
    auto rules = FormRules(&db, result.value(), rule_options);
    if (rules.ok() && !rules->empty()) {
      std::cout << "top rules:\n";
      for (const AssociationRule& rule : *rules) {
        std::cout << "  " << ToString(rule) << "\n";
      }
    }
  }
  return 0;
}
