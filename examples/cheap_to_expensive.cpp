// The paper's introduction example: cheap antecedents leading to
// expensive consequents —
//
//   {(S, T) | sum(S.Price) <= 100 & avg(T.Price) >= 200}
//
// plus a harder non-quasi-succinct variant that couples the two sides:
//
//   {(S, T) | sum(S.Price) <= 100 & avg(T.Price) >= 200
//           & sum(S.Price) <= sum(T.Price)}
//
// demonstrating 1-var pushing (anti-monotone sum), a non-prunable avg
// constraint, and the Section-5 machinery for the sum-vs-sum coupling.
//
//   ./examples/cheap_to_expensive [--num_transactions=5000]

#include <iostream>

#include "bench/bench_util.h"
#include "core/executor.h"

int main(int argc, char** argv) {
  using namespace cfq;
  bench::Args args(argc, argv);

  bench::DbConfig config;
  config.num_transactions =
      static_cast<uint64_t>(args.GetInt("num_transactions", 5000));
  config.num_items = 200;
  config.num_patterns = 100;
  TransactionDb db = bench::MustGenerate(config);

  ItemCatalog catalog(config.num_items);
  if (auto s = AssignUniformPrices(&catalog, "Price", 1, 400, 11); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  CfqQuery query;
  for (ItemId i = 0; i < config.num_items; ++i) {
    query.s_domain.push_back(i);
    query.t_domain.push_back(i);
  }
  query.min_support_s = config.num_transactions / 150;
  query.min_support_t = config.num_transactions / 150;
  query.one_var.push_back(
      MakeAgg1(Var::kS, AggFn::kSum, "Price", CmpOp::kLe, 100));
  query.one_var.push_back(
      MakeAgg1(Var::kT, AggFn::kAvg, "Price", CmpOp::kGe, 200));

  std::cout << "query 1: " << ToString(query) << "\n";
  auto result = ExecuteOptimized(&db, catalog, query);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "  " << result->s_sets.size() << " cheap frequent sets, "
            << result->t_sets.size()
            << " expensive frequent sets (every combination is an answer)\n";
  size_t shown = 0;
  for (const FrequentSet& s : result->s_sets) {
    if (++shown > 5) break;
    auto sum = AggregateOver(AggFn::kSum, "Price", s.items, catalog);
    std::cout << "    S " << ToString(s.items) << " sum $" << sum.value()
              << " support " << s.support << "\n";
  }

  // The coupled variant: optimizing sum-vs-sum needs Section 5's
  // induced bounds + Jmax iterative pruning.
  query.two_var.push_back(
      MakeAgg2(AggFn::kSum, "Price", CmpOp::kLe, AggFn::kSum, "Price"));
  std::cout << "\nquery 2: " << ToString(query) << "\n";
  auto plan = BuildPlan(query);
  if (!plan.ok()) {
    std::cerr << plan.status() << "\n";
    return 1;
  }
  std::cout << ExplainPlan(plan.value());
  auto coupled = ExecutePlan(&db, catalog, plan.value());
  if (!coupled.ok()) {
    std::cerr << coupled.status() << "\n";
    return 1;
  }
  std::cout << "  " << coupled->pairs.size() << " answer pairs out of "
            << coupled->stats.pair_checks << " candidate pairs\n";
  return 0;
}
