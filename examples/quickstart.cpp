// Quickstart: build a tiny market-basket database by hand, pose a
// constrained frequent set query, and print the answer pairs.
//
//   ./examples/quickstart

#include <iostream>

#include "core/executor.h"

int main() {
  using namespace cfq;

  // Item universe: 6 products with a price each.
  //   0 chips $2   1 salsa $3   2 cookies $4
  //   3 wine $15   4 cheese $12 5 caviar $40
  ItemCatalog catalog(6);
  if (auto s = catalog.AddNumericAttr("Price", {2, 3, 4, 15, 12, 40});
      !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // Ten shopping baskets.
  TransactionDb db(6);
  db.Add({0, 1, 3});
  db.Add({0, 1, 4});
  db.Add({0, 1, 3, 4});
  db.Add({0, 2, 3});
  db.Add({1, 2, 4});
  db.Add({0, 1});
  db.Add({3, 4});
  db.Add({0, 1, 3});
  db.Add({2, 3, 4});
  db.Add({0, 1, 4, 5});

  // Query: pairs (S, T) of frequent itemsets where everything in S is
  // cheaper than everything in T — candidate "cheap leads to expensive"
  // rules, the paper's running example.
  CfqQuery query;
  for (ItemId i = 0; i < 6; ++i) {
    query.s_domain.push_back(i);
    query.t_domain.push_back(i);
  }
  query.min_support_s = 3;
  query.min_support_t = 3;
  query.two_var.push_back(
      MakeAgg2(AggFn::kMax, "Price", CmpOp::kLe, AggFn::kMin, "Price"));

  std::cout << "query: " << ToString(query) << "\n\n";

  auto result = ExecuteOptimized(&db, catalog, query);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }

  std::cout << "answer pairs (S => T):\n";
  for (const auto& [i, j] : result->pairs) {
    std::cout << "  " << ToString(result->s_sets[i].items) << "  =>  "
              << ToString(result->t_sets[j].items)
              << "   (support " << result->s_sets[i].support << " / "
              << result->t_sets[j].support << ")\n";
  }
  std::cout << "\nmining work: "
            << result->stats.s.sets_counted + result->stats.t.sets_counted
            << " candidate sets counted, "
            << result->stats.pair_checks << " pairs checked\n";
  return 0;
}
