// cfq_gen: generate a Quest-style synthetic dataset and write it in the
// formats cfq_mine consumes.
//
//   cfq_gen --db=baskets.txt --catalog=items.txt \
//           [--num_transactions=10000 --num_items=1000 --num_patterns=500] \
//           [--avg_transaction_size=10 --avg_pattern_size=4 --seed=42] \
//           [--price_lo=1 --price_hi=1000 --num_types=8]

#include <iostream>

#include "bench/bench_util.h"
#include "data/serialize.h"

int main(int argc, char** argv) {
  using namespace cfq;
  bench::Args args(argc, argv);
  const std::string db_path = args.GetString("db", "");
  const std::string catalog_path = args.GetString("catalog", "");
  if (db_path.empty() || catalog_path.empty()) {
    std::cerr << "usage: cfq_gen --db=<out> --catalog=<out> [flags]\n";
    return 1;
  }
  const bench::DbConfig config = bench::DbConfig::FromArgs(args);
  TransactionDb db = bench::MustGenerate(config);

  ItemCatalog catalog(config.num_items);
  if (auto s = AssignUniformPrices(
          &catalog, "Price", args.GetInt("price_lo", 1),
          args.GetInt("price_hi", 1000), config.seed + 1);
      !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  const int32_t num_types =
      static_cast<int32_t>(args.GetInt("num_types", 8));
  std::vector<int32_t> types(config.num_items);
  for (ItemId i = 0; i < config.num_items; ++i) {
    types[i] = static_cast<int32_t>(i) % num_types;
  }
  (void)catalog.AddCategoricalAttr("Type", types);

  if (auto s = SaveTransactions(db, db_path); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  if (auto s = SaveCatalog(catalog, {"Price"}, {"Type"}, catalog_path);
      !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cerr << "wrote " << db.num_transactions() << " transactions over "
            << db.num_items() << " items to " << db_path << " / "
            << catalog_path << "\n";
  return 0;
}
