// cfq_client: blocking command-line client for cfq_served.
//
//   cfq_client --port=P [--host=127.0.0.1] --cmd=ping
//   cfq_client --port=P --cmd=gen --dataset=demo --num_transactions=5000
//   cfq_client --port=P --cmd=load --dataset=demo --db=b.txt --catalog=c.txt
//   cfq_client --port=P --cmd=query --dataset=demo
//              --query='freq(S, 40) & freq(T, 40) & max(S.Price) <= min(T.Price)'
//              [--strategy=optimized|cap|apriori|incremental]
//              [--deadline_ms=N | --timeout-ms=N] [--max_rows=N] [--repeat=K]
//   cfq_client --port=P --cmd=append --dataset=demo
//              --transactions='[[1,2,3],[4,5]]'
//   cfq_client --port=P --cmd=stats | --cmd=datasets | --cmd=shutdown
//   cfq_client --port=P --dump-trace=trace.json   # flight recorder dump
//   cfq_client --port=P --json='{"cmd":"ping"}'        # raw request line
//
// Prints each response JSON line to stdout. Exits 0 when every
// response's "status" equals --expect (default OK); --expect= (empty)
// disables the check. --repeat sends the same request K times on one
// connection — the cache-hit path in CI and benches.
//
// --trace-id=STR tags a query; the daemon echoes it back in the
// response's trace.client_trace_id and in flight recorder dumps.
// --dump-trace=FILE sends `dumptrace` (unless another --cmd is given)
// and writes the response's chrome_trace field — a Chrome trace_event
// JSON document of recent and slow queries — to FILE.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "common/version.h"
#include "server/client.h"
#include "server/json.h"

int main(int argc, char** argv) {
  using namespace cfq;
  bench::Args args(argc, argv);
  if (args.GetBool("version", false)) {
    std::cout << VersionLine("cfq_client") << "\n";
    return 0;
  }

  const std::string host = args.GetString("host", "127.0.0.1");
  const int64_t port = args.GetInt("port", 0);
  if (port <= 0 || port > 65535) {
    std::cerr << "usage: cfq_client --port=P --cmd=... (see the header of"
                 " tools/cfq_client.cc)\n";
    return 2;
  }

  // Build the request: either the raw --json line, or assembled from
  // the command flags.
  std::string request_line = args.GetString("json", "");
  const std::string dump_trace_path = args.GetString("dump-trace", "");
  std::string cmd = args.GetString("cmd", "");
  if (cmd.empty() && !dump_trace_path.empty()) cmd = "dumptrace";
  if (request_line.empty()) {
    if (cmd.empty()) {
      std::cerr << "error: give --cmd=... or --json='{...}'\n";
      return 2;
    }
    server::JsonValue::Object request;
    request["cmd"] = cmd;
    const std::string dataset = args.GetString("dataset", "");
    if (!dataset.empty()) request["dataset"] = dataset;
    const std::string db = args.GetString("db", "");
    if (!db.empty()) request["db"] = db;
    const std::string catalog = args.GetString("catalog", "");
    if (!catalog.empty()) request["catalog"] = catalog;
    const std::string query = args.GetString("query", "");
    if (!query.empty()) request["query"] = query;
    const std::string strategy = args.GetString("strategy", "");
    if (!strategy.empty()) request["strategy"] = strategy;
    const std::string trace_id = args.GetString("trace-id", "");
    if (!trace_id.empty()) request["trace_id"] = trace_id;
    // --timeout-ms is the ergonomic spelling; --deadline_ms (the wire
    // field's name) wins when both are given.
    const int64_t deadline_ms =
        args.GetInt("deadline_ms", args.GetInt("timeout-ms", 0));
    if (deadline_ms > 0) request["deadline_ms"] = deadline_ms;
    if (args.GetInt("max_rows", -1) >= 0) {
      request["max_rows"] = args.GetInt("max_rows", 0);
    }
    if (cmd == "append") {
      auto transactions =
          server::JsonValue::Parse(args.GetString("transactions", ""));
      if (!transactions.ok() || !transactions->is_array()) {
        std::cerr << "error: --cmd=append needs --transactions='[[id,...],"
                     "...]' (a JSON array of item-id arrays)\n";
        return 2;
      }
      request["transactions"] = std::move(transactions).value();
    }
    if (cmd == "gen") {
      request["num_transactions"] = args.GetInt("num_transactions", 10000);
      request["num_items"] = args.GetInt("num_items", 1000);
      request["num_patterns"] = args.GetInt("num_patterns", 500);
      request["seed"] = args.GetInt("seed", 42);
    }
    request_line = server::JsonValue(std::move(request)).Write();
  }

  auto client = server::Client::Connect(host, static_cast<uint16_t>(port));
  if (!client.ok()) {
    std::cerr << "error: " << client.status() << "\n";
    return 1;
  }

  const std::string expect = args.GetString("expect", "OK");
  const int64_t repeat = args.GetInt("repeat", 1);
  for (int64_t i = 0; i < repeat; ++i) {
    auto response_line = client->CallRaw(request_line);
    if (!response_line.ok()) {
      std::cerr << "error: " << response_line.status() << "\n";
      return 1;
    }
    std::cout << response_line.value() << "\n";
    auto response = server::JsonValue::Parse(response_line.value());
    if (!expect.empty()) {
      const std::string status =
          response.ok() ? response->GetString("status", "") : "";
      if (status != expect) {
        std::cerr << "error: expected status " << expect << ", got "
                  << (status.empty() ? "<unparseable>" : status) << "\n";
        return 1;
      }
    }
    if (!dump_trace_path.empty() && response.ok()) {
      const std::string chrome_trace =
          response->GetString("chrome_trace", "");
      if (chrome_trace.empty()) {
        std::cerr << "error: response has no chrome_trace field (is the"
                     " server's flight recorder enabled?)\n";
        return 1;
      }
      std::ofstream trace_file(dump_trace_path);
      if (!trace_file) {
        std::cerr << "error: cannot open '" << dump_trace_path
                  << "' for writing\n";
        return 1;
      }
      trace_file << chrome_trace;
      if (!trace_file.good()) {
        std::cerr << "error: short write to '" << dump_trace_path << "'\n";
        return 1;
      }
      std::cerr << "wrote " << dump_trace_path << "\n";
    }
  }
  return 0;
}
