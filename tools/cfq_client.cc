// cfq_client: blocking command-line client for cfq_served.
//
//   cfq_client --port=P [--host=127.0.0.1] --cmd=ping
//   cfq_client --port=P --cmd=gen --dataset=demo --num_transactions=5000
//   cfq_client --port=P --cmd=load --dataset=demo --db=b.txt --catalog=c.txt
//   cfq_client --port=P --cmd=query --dataset=demo
//              --query='freq(S, 40) & freq(T, 40) & max(S.Price) <= min(T.Price)'
//              [--strategy=optimized|cap|apriori|incremental]
//              [--deadline_ms=N | --timeout-ms=N] [--max_rows=N] [--repeat=K]
//   cfq_client --port=P --cmd=append --dataset=demo
//              --transactions='[[1,2,3],[4,5]]'
//   cfq_client --port=P --cmd=stats | --cmd=datasets | --cmd=shutdown
//   cfq_client --port=P --json='{"cmd":"ping"}'        # raw request line
//
// Prints each response JSON line to stdout. Exits 0 when every
// response's "status" equals --expect (default OK); --expect= (empty)
// disables the check. --repeat sends the same request K times on one
// connection — the cache-hit path in CI and benches.

#include <cstdint>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "server/client.h"
#include "server/json.h"

int main(int argc, char** argv) {
  using namespace cfq;
  bench::Args args(argc, argv);

  const std::string host = args.GetString("host", "127.0.0.1");
  const int64_t port = args.GetInt("port", 0);
  if (port <= 0 || port > 65535) {
    std::cerr << "usage: cfq_client --port=P --cmd=... (see the header of"
                 " tools/cfq_client.cc)\n";
    return 2;
  }

  // Build the request: either the raw --json line, or assembled from
  // the command flags.
  std::string request_line = args.GetString("json", "");
  const std::string cmd = args.GetString("cmd", "");
  if (request_line.empty()) {
    if (cmd.empty()) {
      std::cerr << "error: give --cmd=... or --json='{...}'\n";
      return 2;
    }
    server::JsonValue::Object request;
    request["cmd"] = cmd;
    const std::string dataset = args.GetString("dataset", "");
    if (!dataset.empty()) request["dataset"] = dataset;
    const std::string db = args.GetString("db", "");
    if (!db.empty()) request["db"] = db;
    const std::string catalog = args.GetString("catalog", "");
    if (!catalog.empty()) request["catalog"] = catalog;
    const std::string query = args.GetString("query", "");
    if (!query.empty()) request["query"] = query;
    const std::string strategy = args.GetString("strategy", "");
    if (!strategy.empty()) request["strategy"] = strategy;
    // --timeout-ms is the ergonomic spelling; --deadline_ms (the wire
    // field's name) wins when both are given.
    const int64_t deadline_ms =
        args.GetInt("deadline_ms", args.GetInt("timeout-ms", 0));
    if (deadline_ms > 0) request["deadline_ms"] = deadline_ms;
    if (args.GetInt("max_rows", -1) >= 0) {
      request["max_rows"] = args.GetInt("max_rows", 0);
    }
    if (cmd == "append") {
      auto transactions =
          server::JsonValue::Parse(args.GetString("transactions", ""));
      if (!transactions.ok() || !transactions->is_array()) {
        std::cerr << "error: --cmd=append needs --transactions='[[id,...],"
                     "...]' (a JSON array of item-id arrays)\n";
        return 2;
      }
      request["transactions"] = std::move(transactions).value();
    }
    if (cmd == "gen") {
      request["num_transactions"] = args.GetInt("num_transactions", 10000);
      request["num_items"] = args.GetInt("num_items", 1000);
      request["num_patterns"] = args.GetInt("num_patterns", 500);
      request["seed"] = args.GetInt("seed", 42);
    }
    request_line = server::JsonValue(std::move(request)).Write();
  }

  auto client = server::Client::Connect(host, static_cast<uint16_t>(port));
  if (!client.ok()) {
    std::cerr << "error: " << client.status() << "\n";
    return 1;
  }

  const std::string expect = args.GetString("expect", "OK");
  const int64_t repeat = args.GetInt("repeat", 1);
  for (int64_t i = 0; i < repeat; ++i) {
    auto response_line = client->CallRaw(request_line);
    if (!response_line.ok()) {
      std::cerr << "error: " << response_line.status() << "\n";
      return 1;
    }
    std::cout << response_line.value() << "\n";
    if (expect.empty()) continue;
    auto response = server::JsonValue::Parse(response_line.value());
    const std::string status =
        response.ok() ? response->GetString("status", "") : "";
    if (status != expect) {
      std::cerr << "error: expected status " << expect << ", got "
                << (status.empty() ? "<unparseable>" : status) << "\n";
      return 1;
    }
  }
  return 0;
}
