// bench_diff: compare two BENCH_*.json snapshots (bench/bench_util.h
// Reporter schema) and flag per-sample regressions.
//
//   bench_diff --baseline=BENCH_old.json --current=BENCH_new.json \
//              [--threshold=0.15] [--warn-only] [--metric=mean|p99] \
//              [--assert-ratio=CUR_NAME,REF_NAME,MAX ...]
//   bench_diff BENCH_old.json BENCH_new.json     # positional form
//
// A sample regresses when current/baseline - 1 exceeds --threshold for
// the chosen metric (default: mean). Samples present in only one file
// are reported but never fail the run — benches gain and lose series as
// they evolve, and a rename should not page anyone.
//
// --assert-ratio (repeatable) is a HARD gate on the current file alone:
// it requires mean(CUR_NAME) <= MAX * mean(REF_NAME) among the current
// run's own samples. Because both series come from the same machine and
// run, the assertion is immune to the cross-machine timing noise that
// forces the baseline comparison to stay --warn-only in CI — it is how
// bench-smoke enforces "the vectorized kernel beats scalar by >= 2x"
// (MAX = 0.5). Violations exit 3 even under --warn-only; a missing
// series is a usage error (exit 1), not a pass.
//
// Exit codes: 0 no regression (or --warn-only) and all ratio
// assertions hold, 1 usage/parse error, 3 at least one sample
// regressed past the threshold or a ratio assertion failed.
//
// The parser below handles exactly the subset of JSON the Reporter
// emits (string/number values, one level of config nesting, a flat
// samples array). It is deliberately not a general JSON parser; keeping
// the tool dependency-free matters more than grammar coverage.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Sample {
  double count = 0;
  double mean = 0;
  double p99 = 0;
  double min = 0;
  double max = 0;
};

struct BenchFile {
  std::string bench;
  std::string commit;
  std::string timestamp;
  std::map<std::string, std::string> config;
  std::map<std::string, Sample> samples;
};

// Minimal recursive-descent scanner over the Reporter's output.
class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  bool Parse(BenchFile* out) {
    SkipWs();
    if (!Consume('{')) return false;
    while (true) {
      SkipWs();
      if (Consume('}')) return true;
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      if (key == "bench") {
        if (!ParseString(&out->bench)) return false;
      } else if (key == "commit") {
        if (!ParseString(&out->commit)) return false;
      } else if (key == "timestamp") {
        if (!ParseString(&out->timestamp)) return false;
      } else if (key == "config") {
        if (!ParseConfig(&out->config)) return false;
      } else if (key == "samples") {
        if (!ParseSamples(&out->samples)) return false;
      } else if (!SkipValue()) {
        return false;
      }
      SkipWs();
      Consume(',');
    }
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          default: out->push_back(esc); break;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }

  bool ParseNumber(double* out) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      *out = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    return true;
  }

  // String, number, or flat object — enough for unknown top-level keys.
  bool SkipValue() {
    if (pos_ >= text_.size()) return false;
    if (text_[pos_] == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (text_[pos_] == '{') {
      std::map<std::string, std::string> ignored;
      return ParseConfig(&ignored);
    }
    double ignored = 0;
    return ParseNumber(&ignored);
  }

  bool ParseConfig(std::map<std::string, std::string>* out) {
    if (!Consume('{')) return false;
    while (true) {
      SkipWs();
      if (Consume('}')) return true;
      std::string key, value;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      if (!ParseString(&value)) return false;
      (*out)[key] = value;
      SkipWs();
      Consume(',');
    }
  }

  bool ParseSamples(std::map<std::string, Sample>* out) {
    if (!Consume('[')) return false;
    while (true) {
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume('{')) return false;
      std::string name;
      Sample sample;
      while (true) {
        SkipWs();
        if (Consume('}')) break;
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWs();
        if (!Consume(':')) return false;
        SkipWs();
        if (key == "name") {
          if (!ParseString(&name)) return false;
        } else {
          double value = 0;
          if (!ParseNumber(&value)) return false;
          if (key == "count") sample.count = value;
          else if (key == "mean") sample.mean = value;
          else if (key == "p99") sample.p99 = value;
          else if (key == "min") sample.min = value;
          else if (key == "max") sample.max = value;
        }
        SkipWs();
        Consume(',');
      }
      if (name.empty()) return false;
      (*out)[name] = sample;
      SkipWs();
      Consume(',');
    }
  }

  std::string text_;
  size_t pos_ = 0;
};

bool LoadBenchFile(const std::string& path, BenchFile* out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot read '" << path << "'\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  Parser parser(buf.str());
  if (!parser.Parse(out)) {
    std::cerr << "error: '" << path << "' is not a BENCH_*.json file\n";
    return false;
  }
  if (out->samples.empty()) {
    std::cerr << "error: '" << path << "' has no samples\n";
    return false;
  }
  return true;
}

std::string FmtSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", s);
  return buf;
}

std::string FmtPercent(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", 100.0 * ratio);
  return buf;
}

struct RatioAssertion {
  std::string current_name;
  std::string reference_name;
  double max_ratio = 0;
};

// Parses "CUR_NAME,REF_NAME,MAX". MAX sits after the last comma; the
// remaining text splits at its last comma, so sample names containing
// commas would need the reference name to be comma-free (none are).
bool ParseRatioAssertion(const std::string& spec, RatioAssertion* out) {
  const size_t max_at = spec.rfind(',');
  if (max_at == std::string::npos) return false;
  try {
    out->max_ratio = std::stod(spec.substr(max_at + 1));
  } catch (...) {
    return false;
  }
  if (!(out->max_ratio > 0)) return false;
  const std::string names = spec.substr(0, max_at);
  const size_t ref_at = names.rfind(',');
  if (ref_at == std::string::npos) return false;
  out->current_name = names.substr(0, ref_at);
  out->reference_name = names.substr(ref_at + 1);
  return !out->current_name.empty() && !out->reference_name.empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, current_path, metric = "mean";
  double threshold = 0.15;
  bool warn_only = false;
  std::vector<RatioAssertion> ratio_assertions;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.substr(prefix.size())
                                       : std::string();
    };
    if (!value("--baseline").empty()) {
      baseline_path = value("--baseline");
    } else if (!value("--current").empty()) {
      current_path = value("--current");
    } else if (!value("--threshold").empty()) {
      try {
        threshold = std::stod(value("--threshold"));
      } catch (...) {
        std::cerr << "error: bad --threshold\n";
        return 1;
      }
    } else if (!value("--metric").empty()) {
      metric = value("--metric");
      if (metric != "mean" && metric != "p99") {
        std::cerr << "error: --metric wants mean|p99\n";
        return 1;
      }
    } else if (!value("--assert-ratio").empty()) {
      RatioAssertion assertion;
      if (!ParseRatioAssertion(value("--assert-ratio"), &assertion)) {
        std::cerr << "error: bad --assert-ratio '" << value("--assert-ratio")
                  << "' (want CUR_NAME,REF_NAME,MAX with MAX > 0)\n";
        return 1;
      }
      ratio_assertions.push_back(std::move(assertion));
    } else if (arg == "--warn-only") {
      warn_only = true;
    } else if (arg.rfind("--", 0) != 0 && baseline_path.empty()) {
      baseline_path = arg;  // Positional: bench_diff OLD.json NEW.json.
    } else if (arg.rfind("--", 0) != 0 && current_path.empty()) {
      current_path = arg;
    } else {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      return 1;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::cerr << "usage: bench_diff --baseline=OLD.json --current=NEW.json "
                 "[--threshold=0.15] [--metric=mean|p99] [--warn-only] "
                 "[--assert-ratio=CUR,REF,MAX ...]\n";
    return 1;
  }

  BenchFile baseline, current;
  if (!LoadBenchFile(baseline_path, &baseline)) return 1;
  if (!LoadBenchFile(current_path, &current)) return 1;
  if (!baseline.bench.empty() && baseline.bench != current.bench) {
    std::cerr << "warning: comparing bench '" << baseline.bench << "' ("
              << baseline_path << ") against '" << current.bench << "' ("
              << current_path << ")\n";
  }

  std::cout << "baseline: " << baseline_path << " (commit " << baseline.commit
            << ", " << baseline.timestamp << ")\n"
            << "current:  " << current_path << " (commit " << current.commit
            << ", " << current.timestamp << ")\n"
            << "metric: " << metric << ", threshold: " << FmtPercent(threshold)
            << "\n\n";

  std::vector<std::string> regressions, improvements, only_baseline,
      only_current;
  for (const auto& [name, base] : baseline.samples) {
    auto it = current.samples.find(name);
    if (it == current.samples.end()) {
      only_baseline.push_back(name);
      continue;
    }
    const double base_value = metric == "p99" ? base.p99 : base.mean;
    const double cur_value = metric == "p99" ? it->second.p99
                                             : it->second.mean;
    if (base_value <= 0 || !std::isfinite(base_value) ||
        !std::isfinite(cur_value)) {
      continue;  // Degenerate baseline; a ratio would be meaningless.
    }
    const double delta = cur_value / base_value - 1.0;
    const std::string line = name + ": " + FmtSeconds(base_value) + "s -> " +
                             FmtSeconds(cur_value) + "s (" +
                             FmtPercent(delta) + ")";
    if (delta > threshold) {
      regressions.push_back(line);
    } else if (delta < -threshold) {
      improvements.push_back(line);
    }
  }
  for (const auto& [name, sample] : current.samples) {
    (void)sample;
    if (baseline.samples.find(name) == baseline.samples.end()) {
      only_current.push_back(name);
    }
  }

  if (!regressions.empty()) {
    std::cout << "REGRESSIONS (" << regressions.size() << "):\n";
    for (const auto& line : regressions) std::cout << "  " << line << "\n";
  }
  if (!improvements.empty()) {
    std::cout << "improvements (" << improvements.size() << "):\n";
    for (const auto& line : improvements) std::cout << "  " << line << "\n";
  }
  if (!only_baseline.empty()) {
    std::cout << "only in baseline (" << only_baseline.size() << "):";
    for (const auto& name : only_baseline) std::cout << " " << name;
    std::cout << "\n";
  }
  if (!only_current.empty()) {
    std::cout << "only in current (" << only_current.size() << "):";
    for (const auto& name : only_current) std::cout << " " << name;
    std::cout << "\n";
  }
  // Ratio assertions run on the current file alone and are never
  // downgraded by --warn-only.
  bool ratio_failed = false;
  for (const RatioAssertion& assertion : ratio_assertions) {
    const auto cur_it = current.samples.find(assertion.current_name);
    const auto ref_it = current.samples.find(assertion.reference_name);
    if (cur_it == current.samples.end() || ref_it == current.samples.end()) {
      std::cerr << "error: --assert-ratio needs both '"
                << assertion.current_name << "' and '"
                << assertion.reference_name << "' in " << current_path << "\n";
      return 1;
    }
    if (ref_it->second.mean <= 0 || !std::isfinite(ref_it->second.mean) ||
        !std::isfinite(cur_it->second.mean)) {
      std::cerr << "error: --assert-ratio reference '"
                << assertion.reference_name << "' has a degenerate mean\n";
      return 1;
    }
    const double ratio = cur_it->second.mean / ref_it->second.mean;
    const bool ok = ratio <= assertion.max_ratio;
    std::cout << (ok ? "ratio ok:   " : "RATIO FAIL: ")
              << assertion.current_name << " / " << assertion.reference_name
              << " = " << FmtSeconds(ratio) << " (max "
              << FmtSeconds(assertion.max_ratio) << ")\n";
    if (!ok) ratio_failed = true;
  }

  if (regressions.empty()) {
    std::cout << "no regressions past threshold ("
              << baseline.samples.size() - only_baseline.size()
              << " samples compared)\n";
    return ratio_failed ? 3 : 0;
  }
  if (warn_only) {
    std::cout << "--warn-only: not failing the run\n";
    return ratio_failed ? 3 : 0;
  }
  return 3;
}
