// cfq_replay: re-drive a captured workload and prove the answers.
//
//   cfq_replay --log=DIR_OR_FILE [--summarize]
//              [--host=127.0.0.1 --port=P]          # live daemon, or
//              [--threads=N --cache_capacity=64 ...] # in-process service
//              [--verify-digests] [--speed=N|max] [--shuffle] [--seed=S]
//              [--limit=N] [--bench_json=BENCH_replay.json]
//              [--db=... --catalog=...]
//
// Reads an audit log written by `cfq_served --audit-log=DIR`
// (server/audit_log.h) and:
//
//   --summarize   prints the captured mix — queries per dataset,
//                 response-source/cache-hit ratio, constraint-shape
//                 histogram, inter-arrival percentiles — and exits.
//
//   otherwise     re-sends every captured query, either over TCP
//                 against a live daemon (--port given) or against an
//                 in-process QueryService (no --port). Datasets the
//                 target does not have are recreated first: from
//                 --db/--catalog files when given, else Quest-generated
//                 with this binary's generator flags (same seed =>
//                 same transactions => same digests).
//
// --verify-digests compares each response's result digest (and status)
// to the captured record; any divergence makes the exit code 3 — the
// cross-build / cross-backend answer-identity gate. --speed paces
// sends from the captured inter-arrival gaps (N = that many times
// faster; "max", the default, is back-to-back). --shuffle replays in
// seeded random order. The latency report compares captured vs
// replayed per-phase percentiles, and --bench_json writes both series
// through bench::Reporter so tools/bench_diff can gate regressions.
//
// Exit codes: 0 ok, 1 error, 2 flag misuse, 3 digest/status divergence.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/version.h"
#include "core/cfq.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "server/audit_log.h"
#include "server/client.h"
#include "server/json.h"
#include "server/service.h"

namespace {

using namespace cfq;
using server::AuditReadStats;
using server::AuditRecord;
using server::JsonValue;

constexpr int kDivergenceExit = 3;

// Where replayed requests go: a live daemon over TCP, or an in-process
// QueryService. One interface so bootstrap/replay/verify are written
// once.
class Target {
 public:
  virtual ~Target() = default;
  virtual Result<JsonValue> Call(const JsonValue& request) = 0;
  virtual const char* name() const = 0;
};

class TcpTarget : public Target {
 public:
  explicit TcpTarget(server::Client client) : client_(std::move(client)) {}
  Result<JsonValue> Call(const JsonValue& request) override {
    return client_.Call(request);
  }
  const char* name() const override { return "tcp"; }

 private:
  server::Client client_;
};

class LocalTarget : public Target {
 public:
  explicit LocalTarget(const server::ServiceOptions& options)
      : service_(options, &metrics_) {}
  Result<JsonValue> Call(const JsonValue& request) override {
    return service_.Handle(request);
  }
  const char* name() const override { return "in-process"; }

 private:
  obs::MetricsRegistry metrics_;
  server::QueryService service_;
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t rank = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(q * static_cast<double>(values.size()))));
  return values[rank - 1];
}

std::string FmtSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4gms", seconds * 1e3);
  return buf;
}

// "freq=2 1var=1 2var=1" — the query's constraint shape, from a real
// parse of the captured text so the histogram never drifts from the
// grammar.
std::string ConstraintShape(const std::string& query_text) {
  auto parsed = ParseCfq(query_text);
  if (!parsed.ok()) return "unparseable";
  return "1var=" + std::to_string(parsed->one_var.size()) +
         " 2var=" + std::to_string(parsed->two_var.size());
}

int Summarize(const std::vector<AuditRecord>& records,
              const AuditReadStats& read_stats) {
  std::map<std::string, uint64_t> per_dataset;
  std::map<std::string, uint64_t> per_source;
  std::map<std::string, uint64_t> per_status;
  std::map<std::string, uint64_t> per_strategy;
  std::map<std::string, uint64_t> per_shape;
  uint64_t cached = 0;
  std::vector<double> inter_arrival;
  std::vector<double> elapsed;
  int64_t prev_ts = 0;
  for (const AuditRecord& r : records) {
    ++per_dataset[r.dataset];
    ++per_status[r.status];
    if (!r.source.empty()) ++per_source[r.source];
    if (!r.strategy.empty()) ++per_strategy[r.strategy];
    ++per_shape[ConstraintShape(r.query)];
    if (r.cached) ++cached;
    elapsed.push_back(r.elapsed_seconds);
    if (prev_ts > 0 && r.ts_us >= prev_ts) {
      inter_arrival.push_back(static_cast<double>(r.ts_us - prev_ts) / 1e6);
    }
    prev_ts = r.ts_us;
  }

  std::cout << "workload: " << records.size() << " queries across "
            << read_stats.files << " file(s)";
  if (read_stats.malformed > 0) {
    std::cout << " (" << read_stats.malformed << " malformed lines skipped)";
  }
  std::cout << "\n\n";

  const auto table = [](const char* title,
                        const std::map<std::string, uint64_t>& counts,
                        size_t total) {
    std::cout << title << "\n";
    TablePrinter t({"key", "queries", "share"});
    for (const auto& [key, n] : counts) {
      char share[16];
      std::snprintf(share, sizeof(share), "%.1f%%",
                    100.0 * static_cast<double>(n) /
                        static_cast<double>(total));
      t.AddRow({key, std::to_string(n), share});
    }
    t.Print(std::cout);
    std::cout << "\n";
  };
  table("queries per dataset", per_dataset, records.size());
  table("response source", per_source, records.size());
  table("status", per_status, records.size());
  table("strategy", per_strategy, records.size());
  table("constraint shape", per_shape, records.size());

  std::cout << "cache-hit ratio: " << cached << "/" << records.size();
  if (!records.empty()) {
    char pct[16];
    std::snprintf(pct, sizeof(pct), " (%.1f%%)",
                  100.0 * static_cast<double>(cached) /
                      static_cast<double>(records.size()));
    std::cout << pct;
  }
  std::cout << "\n";
  std::cout << "captured latency: p50 " << FmtSeconds(Percentile(elapsed, 0.5))
            << ", p90 " << FmtSeconds(Percentile(elapsed, 0.9)) << ", p99 "
            << FmtSeconds(Percentile(elapsed, 0.99)) << "\n";
  if (!inter_arrival.empty()) {
    std::cout << "inter-arrival: p50 "
              << FmtSeconds(Percentile(inter_arrival, 0.5)) << ", p90 "
              << FmtSeconds(Percentile(inter_arrival, 0.9)) << ", p99 "
              << FmtSeconds(Percentile(inter_arrival, 0.99)) << "\n";
  }
  return 0;
}

// Ensures every dataset the capture names exists on the target:
// existing ones are kept (their generation watermark need not match the
// capture — verify mode will tell), missing ones are loaded from
// --db/--catalog or Quest-generated from the generator flags.
bool BootstrapDatasets(Target* target, const std::vector<AuditRecord>& records,
                       const bench::Args& args) {
  std::set<std::string> wanted;
  for (const AuditRecord& r : records) {
    if (r.dataset != "-") wanted.insert(r.dataset);
  }

  std::set<std::string> have;
  JsonValue::Object list_request;
  list_request["cmd"] = "datasets";
  auto listed = target->Call(list_request);
  if (listed.ok() && listed->GetString("status", "") == "OK") {
    if (const JsonValue* datasets = listed->Find("datasets");
        datasets != nullptr && datasets->is_array()) {
      for (const JsonValue& row : datasets->as_array()) {
        have.insert(row.GetString("name", ""));
      }
    }
  }

  const std::string db_path = args.GetString("db", "");
  const std::string catalog_path = args.GetString("catalog", "");
  const bench::DbConfig config = bench::DbConfig::FromArgs(args);
  for (const std::string& name : wanted) {
    if (have.count(name) > 0) continue;
    JsonValue::Object request;
    if (!db_path.empty() && !catalog_path.empty()) {
      request["cmd"] = "load";
      request["dataset"] = name;
      request["db"] = db_path;
      request["catalog"] = catalog_path;
    } else {
      request["cmd"] = "gen";
      request["dataset"] = name;
      request["num_transactions"] =
          static_cast<int64_t>(config.num_transactions);
      request["num_items"] = static_cast<int64_t>(config.num_items);
      request["avg_transaction_size"] = config.avg_transaction_size;
      request["avg_pattern_size"] = config.avg_pattern_size;
      request["num_patterns"] = static_cast<int64_t>(config.num_patterns);
      request["seed"] = static_cast<int64_t>(config.seed);
    }
    auto response = target->Call(request);
    if (!response.ok()) {
      std::cerr << "error: bootstrap of dataset '" << name
                << "' failed: " << response.status() << "\n";
      return false;
    }
    if (response->GetString("status", "") != "OK") {
      std::cerr << "error: bootstrap of dataset '" << name << "' failed: "
                << response->GetString("error", "unknown error") << "\n";
      return false;
    }
    std::cerr << "bootstrapped dataset '" << name << "' ("
              << (request.count("db") > 0 ? "loaded" : "generated") << ")\n";
  }
  return true;
}

struct ReplayTotals {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t transport_errors = 0;
  uint64_t status_mismatches = 0;
  uint64_t digest_mismatches = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  bench::ApplySimdArgs(args);
  if (args.GetBool("version", false)) {
    std::cout << VersionLine("cfq_replay") << "\n";
    return 0;
  }

  const std::string log_path = args.GetString("log", "");
  if (log_path.empty()) {
    std::cerr << "usage: cfq_replay --log=DIR_OR_FILE [--summarize]"
                 " [--port=P | in-process flags] [--verify-digests]\n"
                 "see the header of tools/cfq_replay.cc for all flags\n";
    return 2;
  }

  AuditReadStats read_stats;
  auto read = server::ReadAuditLog(log_path, &read_stats);
  if (!read.ok()) {
    std::cerr << "error: " << read.status() << "\n";
    return 1;
  }
  std::vector<AuditRecord> records = std::move(read).value();
  // Capture order = timestamp order (rotation files sort by name, but a
  // concatenated or hand-edited log might not).
  std::stable_sort(records.begin(), records.end(),
                   [](const AuditRecord& a, const AuditRecord& b) {
                     return a.ts_us < b.ts_us;
                   });
  const int64_t limit = args.GetInt("limit", 0);
  if (limit > 0 && static_cast<size_t>(limit) < records.size()) {
    records.resize(static_cast<size_t>(limit));
  }
  if (records.empty()) {
    std::cerr << "error: no replayable records in '" << log_path << "'\n";
    return 1;
  }

  if (args.GetBool("summarize", false)) {
    return Summarize(records, read_stats);
  }

  // The captured inter-arrival gap before each record, for pacing —
  // computed before any shuffle so the replayed rhythm is the captured
  // one even when the order is not.
  std::vector<double> gap_seconds(records.size(), 0);
  for (size_t i = 1; i < records.size(); ++i) {
    const int64_t delta = records[i].ts_us - records[i - 1].ts_us;
    gap_seconds[i] = delta > 0 ? static_cast<double>(delta) / 1e6 : 0;
  }
  const std::string speed_text = args.GetString("speed", "max");
  double speed = 0;  // 0 = max (no pacing).
  if (speed_text != "max") {
    speed = std::atof(speed_text.c_str());
    if (speed <= 0) {
      std::cerr << "error: --speed wants a positive number or 'max'\n";
      return 2;
    }
  }

  std::vector<size_t> order(records.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (args.GetBool("shuffle", false)) {
    std::mt19937_64 rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
    std::shuffle(order.begin(), order.end(), rng);
  }

  // Pick the target: TCP when --port names a daemon, else an
  // in-process QueryService built from the daemon's own flags.
  std::unique_ptr<Target> target;
  const int64_t port = args.GetInt("port", 0);
  if (port > 0) {
    auto client = server::Client::Connect(args.GetString("host", "127.0.0.1"),
                                          static_cast<uint16_t>(port));
    if (!client.ok()) {
      std::cerr << "error: " << client.status() << "\n";
      return 1;
    }
    target = std::make_unique<TcpTarget>(std::move(client).value());
  } else {
    server::ServiceOptions options;
    options.threads = bench::ThreadsFromArgs(args);
    options.max_concurrent =
        static_cast<size_t>(args.GetInt("max_concurrent", 4));
    options.max_queued = static_cast<size_t>(args.GetInt("max_queued", 16));
    options.cache_capacity =
        static_cast<size_t>(args.GetInt("cache_capacity", 64));
    target = std::make_unique<LocalTarget>(options);
  }
  if (!BootstrapDatasets(target.get(), records, args)) return 1;

  const bool verify = args.GetBool("verify-digests", false);
  bench::Reporter reporter("replay");
  reporter.SetConfig("log", log_path);
  reporter.SetConfig("target", target->name());
  reporter.SetConfig("records", static_cast<int64_t>(records.size()));
  reporter.SetConfig("speed", speed_text);
  reporter.SetConfig("verify", verify ? "1" : "0");

  ReplayTotals totals;
  std::map<std::string, std::vector<double>> captured_phases;
  std::map<std::string, std::vector<double>> replayed_phases;
  const auto replay_start = std::chrono::steady_clock::now();
  double paced_offset = 0;

  for (size_t position = 0; position < order.size(); ++position) {
    const AuditRecord& record = records[order[position]];
    if (speed > 0) {
      paced_offset += gap_seconds[position] / speed;
      const auto send_at =
          replay_start + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(paced_offset));
      std::this_thread::sleep_until(send_at);
    }

    JsonValue::Object request;
    request["cmd"] = "query";
    request["dataset"] = record.dataset;
    request["query"] = record.query;
    if (!record.strategy.empty()) request["strategy"] = record.strategy;
    if (record.max_rows > 0) {
      request["max_rows"] = static_cast<int64_t>(record.max_rows);
    }
    if (record.deadline_ms > 0) {
      request["deadline_ms"] = static_cast<int64_t>(record.deadline_ms);
    }
    ++totals.sent;
    auto response = target->Call(request);
    if (!response.ok()) {
      ++totals.transport_errors;
      std::cerr << "error: replay call failed: " << response.status() << "\n";
      break;  // A dead transport fails every later call too.
    }
    const std::string status = response->GetString("status", "INTERNAL");
    if (status == "OK") ++totals.ok;
    if (verify && status != record.status) {
      ++totals.status_mismatches;
      std::cerr << "DIVERGED status: dataset=" << record.dataset << " query=\""
                << record.query << "\" captured=" << record.status
                << " replayed=" << status << "\n";
    }
    if (verify && !record.digest.empty()) {
      const std::string replayed_digest = response->GetString("digest", "");
      if (replayed_digest != record.digest) {
        ++totals.digest_mismatches;
        std::cerr << "DIVERGED digest: dataset=" << record.dataset
                  << " query=\"" << record.query
                  << "\" captured=" << record.digest
                  << " replayed=" << replayed_digest << "\n";
      }
    }

    // Latency series, captured vs replayed. Undotted phases partition
    // the wall time (docs/OBSERVABILITY.md); dotted refinements are
    // kept too — bench_diff compares whatever both runs have.
    captured_phases["total"].push_back(record.elapsed_seconds);
    for (const auto& [phase, seconds] : record.phases) {
      if (seconds.is_number()) {
        captured_phases[phase].push_back(seconds.as_number());
      }
    }
    replayed_phases["total"].push_back(
        response->GetNumber("elapsed_seconds", 0));
    if (const JsonValue* trace = response->Find("trace");
        trace != nullptr && trace->is_object()) {
      if (const JsonValue* phases = trace->Find("phases");
          phases != nullptr && phases->is_object()) {
        for (const auto& [phase, seconds] : phases->as_object()) {
          if (seconds.is_number()) {
            replayed_phases[phase].push_back(seconds.as_number());
          }
        }
      }
    }
  }

  for (const auto& [phase, values] : captured_phases) {
    for (double v : values) reporter.Add("captured/" + phase, v);
  }
  for (const auto& [phase, values] : replayed_phases) {
    for (double v : values) reporter.Add("replay/" + phase, v);
  }
  reporter.WriteJsonFromArgs(args);

  // The side-by-side latency report: captured baseline vs this replay.
  std::cout << "latency, captured vs replayed (" << target->name() << ")\n";
  TablePrinter table({"phase", "n", "cap p50", "cap p90", "cap p99",
                      "rep p50", "rep p90", "rep p99"});
  for (const auto& [phase, captured] : captured_phases) {
    const auto it = replayed_phases.find(phase);
    if (it == replayed_phases.end()) continue;
    table.AddRow({phase, std::to_string(it->second.size()),
                  FmtSeconds(Percentile(captured, 0.5)),
                  FmtSeconds(Percentile(captured, 0.9)),
                  FmtSeconds(Percentile(captured, 0.99)),
                  FmtSeconds(Percentile(it->second, 0.5)),
                  FmtSeconds(Percentile(it->second, 0.9)),
                  FmtSeconds(Percentile(it->second, 0.99))});
  }
  table.Print(std::cout);

  std::cout << "replayed " << totals.sent << "/" << records.size()
            << " queries (" << totals.ok << " OK, " << totals.transport_errors
            << " transport errors)";
  if (verify) {
    std::cout << "; verify: " << totals.digest_mismatches
              << " digest mismatches, " << totals.status_mismatches
              << " status mismatches";
  }
  std::cout << "\n";

  if (totals.transport_errors > 0) return 1;
  if (verify &&
      (totals.digest_mismatches > 0 || totals.status_mismatches > 0)) {
    return kDivergenceExit;
  }
  return 0;
}
