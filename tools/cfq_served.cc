// cfq_served: the long-lived CFQ serving daemon.
//
//   cfq_served [--host=127.0.0.1] [--port=0] [--threads=N]
//              [--max_concurrent=4] [--max_queued=16]
//              [--cache_capacity=64] [--deadline_ms=60000]
//              [--max_rows=100000] [--metrics-out=FILE]
//              [--metrics-format=jsonl|prom]
//              [--http_port=N] [--slow-query-ms=1000]
//              [--flight-recorder=32]
//              [--audit-log=DIR] [--audit-rotate-mb=64] [--version]
//
// Speaks the newline-delimited JSON protocol of docs/SERVING.md: named
// datasets (load / gen / save / drop), canonicalized-query result
// caching, and admission control with per-query deadlines. Prints one
// "listening on <host>:<port>" line to stdout once ready (--port=0
// reports the ephemeral port picked).
//
// --http_port=N additionally serves GET-only telemetry on the same
// host: /metrics (live Prometheus text), /healthz (503 once draining),
// /stats (JSON summaries), /trace (slow-query flight recorder as a
// Chrome trace). N=0 picks an ephemeral port; the flag absent means no
// listener. Prints "telemetry on <host>:<port>" once ready.
// --slow-query-ms sets the flight recorder's slow threshold and
// --flight-recorder its per-ring retention (recent and slow).
//
// --audit-log=DIR captures every served query — success or error — as
// one JSON line in rotating audit-*.jsonl files (rotation threshold
// --audit-rotate-mb), replayable with tools/cfq_replay. --version
// prints the build identity (git describe, build type, counting
// kernel) and exits.
//
// Shutdown: SIGTERM / SIGINT — or a client `shutdown` command, or a
// fatal accept-loop error — start a graceful drain: no new connections
// or queries are admitted, in-flight queries run to completion and
// their responses are written, then one shared flush step lands both
// the metrics registry (per --metrics-out / --metrics-format) and the
// audit log, and the daemon exits 0.

#include <csignal>
#include <iostream>
#include <memory>
#include <thread>

#include "bench/bench_util.h"
#include "common/version.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "server/service.h"

int main(int argc, char** argv) {
  using namespace cfq;
  bench::Args args(argc, argv);
  if (args.GetBool("version", false)) {
    bench::ApplySimdArgs(args);
    std::cout << VersionLine("cfq_served") << "\n";
    return 0;
  }
  bench::ApplySimdArgs(args);

  server::ServiceOptions service_options;
  service_options.threads = bench::ThreadsFromArgs(args);
  service_options.max_concurrent =
      static_cast<size_t>(args.GetInt("max_concurrent", 4));
  service_options.max_queued =
      static_cast<size_t>(args.GetInt("max_queued", 16));
  service_options.cache_capacity =
      static_cast<size_t>(args.GetInt("cache_capacity", 64));
  service_options.default_deadline_ms =
      static_cast<uint64_t>(args.GetInt("deadline_ms", 60000));
  service_options.max_rows =
      static_cast<uint64_t>(args.GetInt("max_rows", 100000));
  service_options.slow_query_threshold_seconds =
      static_cast<double>(args.GetInt("slow-query-ms", 1000)) / 1000.0;
  const int64_t recorder_capacity = args.GetInt("flight-recorder", 32);
  service_options.flight_recorder_recent =
      static_cast<size_t>(recorder_capacity);
  service_options.flight_recorder_slow =
      static_cast<size_t>(recorder_capacity);
  service_options.audit_log_dir = args.GetString("audit-log", "");
  service_options.audit_rotate_mb =
      static_cast<uint64_t>(args.GetInt("audit-rotate-mb", 64));

  server::ServerOptions server_options;
  server_options.host = args.GetString("host", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(args.GetInt("port", 0));

  // Validate the metrics flags before binding, so a bad path fails at
  // startup rather than at drain.
  const bool want_metrics = bench::MetricsRequested(args);

  obs::MetricsRegistry metrics;
  server::QueryService service(service_options, &metrics);
  if (!service_options.audit_log_dir.empty() &&
      service.audit_log() == nullptr) {
    // Same policy as an unwritable --metrics-out: a capture the
    // operator asked for that cannot be written is a startup error,
    // not a silent no-op.
    std::cerr << "error: cannot open audit log in '"
              << service_options.audit_log_dir << "'\n";
    return 1;
  }
  server::Server server(server_options, &service);

  // The one flush step every exit path goes through — SIGTERM/SIGINT,
  // the `shutdown` command, a fatal accept-loop error, telemetry
  // startup failure — so the metrics file and the audit log never land
  // on one path but not another.
  const auto flush_on_drain = [&] {
    if (service.audit_log() != nullptr) service.audit_log()->Flush();
    if (want_metrics) {
      // Snapshot the counting-kernel counters so the flushed file
      // carries the same simd.* families the live /metrics serves.
      obs::ExportSimdMetrics(&metrics);
      bench::WriteMetricsFromArgs(args, metrics);
    }
  };

  // All signal delivery goes through one sigwait thread: block
  // SIGTERM/SIGINT before any other thread exists so every thread
  // inherits the mask, then turn the first signal into the same drain
  // the `shutdown` command uses.
  sigset_t drain_signals;
  sigemptyset(&drain_signals);
  sigaddset(&drain_signals, SIGTERM);
  sigaddset(&drain_signals, SIGINT);
  pthread_sigmask(SIG_BLOCK, &drain_signals, nullptr);

  if (auto s = server.Start(); !s.ok()) {
    std::cerr << "error: " << s << "\n";
    return 1;
  }
  std::cout << "listening on " << server_options.host << ":" << server.port()
            << std::endl;

  // Telemetry listener: off unless --http_port was given (0 = pick an
  // ephemeral port). Runs on its own thread and port so scrapes never
  // contend with the query protocol.
  std::unique_ptr<server::HttpServer> telemetry;
  if (args.Has("http_port")) {
    server::HttpOptions http_options;
    http_options.host = server_options.host;
    http_options.port = static_cast<uint16_t>(args.GetInt("http_port", 0));
    telemetry = std::make_unique<server::HttpServer>(
        http_options, [&service](const std::string& path) {
          return service.HandleHttp(path);
        });
    if (auto s = telemetry->Start(); !s.ok()) {
      std::cerr << "error: " << s << "\n";
      server.RequestShutdown();
      server.Wait();
      flush_on_drain();
      return 1;
    }
    std::cout << "telemetry on " << http_options.host << ":"
              << telemetry->port() << std::endl;
  }

  std::thread([&server, drain_signals] {
    int signal_number = 0;
    sigwait(&drain_signals, &signal_number);
    std::cerr << "received signal " << signal_number << "; draining\n";
    server.RequestShutdown();
  }).detach();

  server.Wait();
  // The telemetry listener stops after the drain completes so /healthz
  // reports 503 (draining) for the whole drain window.
  if (telemetry != nullptr) telemetry->Stop();

  flush_on_drain();
  std::cerr << "drained: " << metrics.counter("server.queries_total")
            << " queries served, " << service.cache().hits()
            << " cache hits";
  if (service.audit_log() != nullptr) {
    std::cerr << ", " << service.audit_log()->appended()
              << " queries audited";
  }
  std::cerr << "\n";
  return 0;
}
