// cfq_mine: command-line CFQ mining over serialized datasets.
//
//   cfq_mine --db=baskets.txt --catalog=items.txt \
//            --query='freq(S, 40) & freq(T, 40) & max(S.Price) <= min(T.Price)' \
//            [--strategy=optimized|cap|apriori] [--explain] \
//            [--threads=N] [--no-simd | --simd=scalar|avx2|neon] \
//            [--trace=run.json] [--metrics-out=run.jsonl] \
//            [--metrics-format=jsonl|prom] \
//            [--rules] [--min_confidence=0.5] [--top_k=20] \
//            [--output=pairs.csv]
//
// --trace writes a Chrome trace_event JSON file (load in Perfetto);
// --metrics-out writes the metrics registry — counters, gauges, and the
// per-level latency / scan-size histograms — as JSONL (one JSON object
// per line, the default) or Prometheus text exposition
// (--metrics-format=prom). --metrics is an alias for --metrics-out.
// --metrics-format without --metrics-out prints to stdout. With
// --explain, the EXPLAIN ANALYZE tables include latency percentiles and
// the query's resource usage (CPU, peak RSS, pool busy/idle).
//
// Exit codes: 0 ok, 1 generic error, 3 the query references an
// attribute the catalog does not define.
//
// Input files use the formats of src/data/serialize.h. When --db is
// omitted a Quest-generated demo database is used (--num_transactions,
// --num_items, --seed control it) with uniform prices and 8 types.
//
// Output: one CSV row per answer pair —
//   s_items;t_items;s_support;t_support
// plus, with --rules, one row per rule —
//   s_items;t_items;support;confidence;lift

#include <fstream>
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "common/version.h"
#include "core/analyze.h"
#include "core/executor.h"
#include "data/serialize.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "rules/rule_gen.h"

namespace {

using namespace cfq;

std::string JoinItems(const Itemset& items) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(items[i]);
  }
  return out;
}

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

// Exit code when the query names an attribute the catalog lacks.
constexpr int kUnknownAttrExit = 3;

// Like Fail, but recognizes unknown-attribute errors and lists what the
// catalog actually defines.
int FailQuery(const Status& status, const ItemCatalog& catalog) {
  std::cerr << "error: " << status << "\n";
  if (status.code() != StatusCode::kNotFound ||
      status.message().find("unknown attribute") == std::string::npos) {
    return 1;
  }
  std::cerr << "hint: the catalog defines these attributes:";
  for (const std::string& name : catalog.AttrNames()) {
    std::cerr << ' ' << name;
  }
  std::cerr << "\n";
  return kUnknownAttrExit;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  bench::ApplySimdArgs(args);
  if (args.GetBool("version", false)) {
    std::cout << VersionLine("cfq_mine") << "\n";
    return 0;
  }
  const std::string query_text = args.GetString("query", "");
  if (query_text.empty()) {
    std::cerr << "usage: cfq_mine --query='<cfq>' [--db=... --catalog=...]\n"
                 "see the header of tools/cfq_mine.cc for all flags\n";
    return 1;
  }

  // --- Data. ---------------------------------------------------------------
  TransactionDb db(0);
  ItemCatalog catalog(0);
  const std::string db_path = args.GetString("db", "");
  if (!db_path.empty()) {
    const std::string catalog_path = args.GetString("catalog", "");
    if (catalog_path.empty()) {
      std::cerr << "error: --db requires --catalog\n";
      return 1;
    }
    auto loaded = LoadDataset(db_path, catalog_path);
    if (!loaded.ok()) return Fail(loaded.status());
    db = std::move(loaded->db);
    catalog = std::move(loaded->catalog);
  } else {
    bench::DbConfig config = bench::DbConfig::FromArgs(args);
    if (args.GetInt("num_transactions", -1) < 0) {
      config.num_transactions = 5000;
    }
    if (args.GetInt("num_items", -1) < 0) config.num_items = 200;
    if (args.GetInt("num_patterns", -1) < 0) config.num_patterns = 100;
    db = bench::MustGenerate(config);
    catalog = ItemCatalog(config.num_items);
    if (auto s = AssignUniformPrices(&catalog, "Price", 1, 1000,
                                     config.seed + 1);
        !s.ok()) {
      return Fail(s);
    }
    std::vector<int32_t> types(config.num_items);
    for (ItemId i = 0; i < config.num_items; ++i) {
      types[i] = static_cast<int32_t>(i % 8);
    }
    (void)catalog.AddCategoricalAttr("Type", types);
    std::cerr << "note: no --db given; using a generated demo database ("
              << config.num_transactions << " baskets, " << config.num_items
              << " items, attributes Price and Type)\n";
  }

  // --- Query. ----------------------------------------------------------
  auto parsed = ParseCfq(query_text);
  if (!parsed.ok()) return Fail(parsed.status());
  CfqQuery query = std::move(parsed).value();
  for (ItemId i = 0; i < db.num_items(); ++i) {
    query.s_domain.push_back(i);
    query.t_domain.push_back(i);
  }

  PlanOptions options;
  options.counter = bench::CounterFromArgs(args);
  options.threads = bench::ThreadsFromArgs(args);

  const std::string trace_path = args.GetString("trace", "");
  // --metrics-out with --metrics as a backward-compatible alias.
  std::string metrics_path = args.GetString("metrics-out", "");
  if (metrics_path.empty()) metrics_path = args.GetString("metrics", "");
  const std::string metrics_format = args.GetString("metrics-format", "");
  if (!metrics_format.empty() && metrics_format != "jsonl" &&
      metrics_format != "prom") {
    std::cerr << "error: unknown --metrics-format '" << metrics_format
              << "' (want jsonl|prom)\n";
    return 1;
  }
  // Probe writability up front so a bad path fails before mining.
  if (!metrics_path.empty()) {
    std::ofstream probe(metrics_path, std::ios::app);
    if (!probe) {
      std::cerr << "error: cannot open '" << metrics_path
                << "' for writing\n";
      return 1;
    }
  }
  const bool explain = args.GetBool("explain", false);
  const bool want_metrics =
      !metrics_path.empty() || !metrics_format.empty() || explain;
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_path.empty() || explain) {
    tracer = std::make_unique<obs::Tracer>();
    options.tracer = tracer.get();
  }
  obs::MetricsRegistry registry;
  if (want_metrics) options.metrics = &registry;

  auto plan = BuildPlan(query, options);
  if (!plan.ok()) return FailQuery(plan.status(), catalog);
  if (explain) {
    std::cout << ExplainPlan(plan.value());
  }

  // --- Execute. --------------------------------------------------------
  const std::string strategy = args.GetString("strategy", "optimized");
  Result<CfqResult> result = Status::Internal("unreachable");
  if (strategy == "optimized") {
    result = ExecutePlan(&db, catalog, plan.value());
  } else if (strategy == "cap") {
    result = ExecuteCapOneVar(&db, catalog, query, options);
  } else if (strategy == "apriori") {
    result = ExecuteAprioriPlus(&db, catalog, query, options);
  } else {
    std::cerr << "error: unknown --strategy '" << strategy
              << "' (want optimized|cap|apriori)\n";
    return 1;
  }
  if (!result.ok()) return FailQuery(result.status(), catalog);
  // Answer identity for cross-build / cross-kernel comparison; shown by
  // EXPLAIN ANALYZE and on stderr next to the pair count.
  result->stats.result_digest = DigestCfqResult(result.value());

  // --- Observability output. -------------------------------------------
  const std::vector<obs::TraceEvent> events =
      tracer != nullptr ? tracer->Events() : std::vector<obs::TraceEvent>{};
  if (want_metrics) ExportMetrics(result->stats, &registry);
  if (explain) {
    std::cout << "\n" << RenderExplainAnalyze(result->stats, events, &registry);
  }
  if (!trace_path.empty()) {
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      std::cerr << "error: cannot open '" << trace_path << "'\n";
      return 1;
    }
    obs::WriteChromeTrace(events, trace_file);
    if (tracer->dropped() > 0) {
      std::cerr << "note: trace ring wrapped; " << tracer->dropped()
                << " oldest events dropped\n";
    }
  }
  if (!metrics_path.empty() || !metrics_format.empty()) {
    std::ofstream metrics_file;
    if (!metrics_path.empty()) {
      metrics_file.open(metrics_path);
      if (!metrics_file) {
        std::cerr << "error: cannot open '" << metrics_path << "'\n";
        return 1;
      }
    }
    std::ostream& sink = metrics_path.empty() ? std::cout : metrics_file;
    if (metrics_format == "prom") {
      obs::WritePrometheus(registry, sink);
    } else {
      registry.WriteJsonl(sink);
    }
  }

  std::cerr << result->s_sets.size() << " valid frequent S-sets, "
            << result->t_sets.size() << " T-sets, "
            << AnswerPairs(result.value()).size() << " answer pairs in "
            << result->stats.elapsed_seconds << "s ("
            << result->stats.s.sets_counted + result->stats.t.sets_counted
            << " candidates counted), digest "
            << result->stats.result_digest << "\n";

  // --- Output. ---------------------------------------------------------
  std::ofstream file;
  const std::string output = args.GetString("output", "");
  if (!output.empty()) {
    file.open(output);
    if (!file) {
      std::cerr << "error: cannot open '" << output << "'\n";
      return 1;
    }
  }
  std::ostream& out = output.empty() ? std::cout : file;

  if (args.GetBool("rules", false)) {
    RuleOptions rule_options;
    rule_options.min_confidence = args.GetDouble("min_confidence", 0.0);
    rule_options.min_lift = args.GetDouble("min_lift", 0.0);
    rule_options.top_k = static_cast<size_t>(args.GetInt("top_k", 0));
    auto rules = FormRules(&db, result.value(), rule_options);
    if (!rules.ok()) return Fail(rules.status());
    out << "antecedent;consequent;support;confidence;lift\n";
    for (const AssociationRule& rule : *rules) {
      out << JoinItems(rule.antecedent) << ';' << JoinItems(rule.consequent)
          << ';' << rule.support << ';' << rule.confidence << ';'
          << rule.lift << '\n';
    }
  } else {
    out << "s_items;t_items;s_support;t_support\n";
    auto emit = [&](const FrequentSet& s, const FrequentSet& t) {
      out << JoinItems(s.items) << ';' << JoinItems(t.items) << ';'
          << s.support << ';' << t.support << '\n';
    };
    if (result->cross_product) {
      for (const FrequentSet& s : result->s_sets) {
        for (const FrequentSet& t : result->t_sets) emit(s, t);
      }
    } else {
      for (const auto& [i, j] : result->pairs) {
        emit(result->s_sets[i], result->t_sets[j]);
      }
    }
  }
  return 0;
}
