// Quasi-succinct reduction (Section 4, Figures 2 & 3) and the sound
// relaxations for non-quasi-succinct constraints (Section 5.1, Figure 4).
//
// Given a 2-var constraint C(S, T) and the level-1 frequent singletons
// L1^S, L1^T of the two lattices, the reduction produces two 1-var
// pruning-condition conjunctions C1(S) and C2(T) whose constants are
// derived from L1^S.A / L1^T.B:
//
//   * sound:  no valid S-set (T-set) is pruned (always guaranteed);
//   * tight:  every pruned set was invalid (guaranteed for the rows the
//     paper proves tight; see the `tight` flags).
//
// Tightness caveat documented against the paper: the Figure-2 rows for
// S.A ⊆ T.B (the C1 side), S.A ⊇ T.B (C2) and S.A = T.B need a frequent
// multi-item witness set, which L1 membership alone cannot promise, so
// this implementation marks them sound-but-not-tight. Two rows the paper
// abbreviates (S.A ⊄ T.B with "CS ≠ ∅", and the ≠ rows) are implemented
// with their exact sound-and-tight conditions.
//
// For aggregate constraints the reduction is bound-based: the set of
// aggregate values achievable by frequent sets is summarized by a
// [lo, hi] interval with per-end tightness flags (for min/max/avg the
// ends are achieved by frequent singletons — this yields exactly the
// Figure-3 table; for sum the upper end is the Section-5.1 bound
// sum(L1.B), sound only, later tightened by Jmax's V^k series).

#ifndef CFQ_CORE_REDUCTION_H_
#define CFQ_CORE_REDUCTION_H_

#include <optional>
#include <vector>

#include "common/itemset.h"
#include "common/result.h"
#include "constraints/one_var.h"
#include "constraints/two_var.h"
#include "data/item_catalog.h"

namespace cfq {

namespace obs {
class Tracer;
}  // namespace obs

// The reduced pruning condition for one side.
struct ReducedSide {
  // False when no set on this side can be valid (e.g. the other side
  // has no frequent sets at all).
  bool satisfiable = true;
  // Conjunction of 1-var constraints (already bound to the right
  // variable). Empty + satisfiable == trivially true.
  std::vector<OneVarConstraint> constraints;
  // True when the conjunction prunes every invalid candidate.
  bool tight = true;
};

struct Reduction {
  ReducedSide s;
  ReducedSide t;
};

// Reduces a 2-var constraint given the frequent singletons of both
// sides. Works for EVERY constraint in the language: quasi-succinct
// constraints get sound (+tight where provable) conditions; sum/avg
// constraints get the sound Section-5.1 relaxations. Fails only on
// unknown attributes.
// When `tracer` is given, the reduction is wrapped in a span and an
// instant event marks each side it proves unsatisfiable.
Result<Reduction> ReduceTwoVar(const TwoVarConstraint& c, const Itemset& l1_s,
                               const Itemset& l1_t,
                               const ItemCatalog& catalog,
                               bool nonnegative = true,
                               obs::Tracer* tracer = nullptr);

// Induced weaker constraints (Figure 4): rewrites sum/avg aggregates to
// the min/max aggregate that the original constraint implies, where such
// a rewrite exists:  for <=  avg->min, sum->max on the S side and
// avg->max on the T side; mirrored for >=. Returns the weaker
// constraints (possibly two for '='), or empty when no rewrite applies.
// The results are quasi-succinct whenever both sides end up min/max.
// Requires nonnegative attribute domains for the sum rewrites.
std::vector<TwoVarConstraint> InduceWeaker(const TwoVarConstraint& c,
                                           bool nonnegative = true);

// Achievable-aggregate interval: bounds on agg(X.attr) over frequent
// sets X whose items come from `l1` (every frequent set's items are
// frequent singletons). Used by the aggregate reduction and by tests.
struct AchievableInterval {
  double lo = 0;
  double hi = 0;
  bool lo_tight = false;  // lo is achieved by some frequent set.
  bool hi_tight = false;
  bool empty = true;      // No frequent set exists (l1 empty).
};

Result<AchievableInterval> AchievableAgg(AggFn agg, const std::string& attr,
                                         const Itemset& l1,
                                         const ItemCatalog& catalog,
                                         bool nonnegative = true);

}  // namespace cfq

#endif  // CFQ_CORE_REDUCTION_H_
