#include "core/jmax.h"

#include <algorithm>
#include <unordered_map>

#include "common/combinatorics.h"

namespace cfq {

JmaxBound ComputeJmax(const std::vector<FrequentSet>& frequent_k, size_t k,
                      const JmaxOptions& options) {
  JmaxBound out;
  if (frequent_k.empty() || k == 0) return out;

  // N_i^k: number of frequent k-sets containing each element.
  std::unordered_map<ItemId, uint64_t> counts;
  for (const FrequentSet& f : frequent_k) {
    for (ItemId item : f.items) ++counts[item];
  }
  out.elements.reserve(counts.size());
  for (const auto& [item, n] : counts) {
    (void)n;
    out.elements.push_back(item);
  }
  std::sort(out.elements.begin(), out.elements.end());
  out.j_per_element.reserve(out.elements.size());
  for (ItemId item : out.elements) {
    const int64_t j = LargestJForCount(counts[item], k, options.max_j);
    out.j_per_element.push_back(j);
    out.jmax = std::max(out.jmax, j);
  }
  return out;
}

Result<double> ComputeVk(const std::vector<FrequentSet>& frequent_k, size_t k,
                         const std::string& attr, const ItemCatalog& catalog,
                         const JmaxOptions& options) {
  auto detail = ComputeVkDetail(frequent_k, k, attr, catalog, options);
  if (!detail.ok()) return detail.status();
  return detail.value().v_k;
}

Result<VkDetail> ComputeVkDetail(const std::vector<FrequentSet>& frequent_k,
                                 size_t k, const std::string& attr,
                                 const ItemCatalog& catalog,
                                 const JmaxOptions& options) {
  if (!catalog.HasAttr(attr)) {
    return Status::NotFound("unknown attribute '" + attr + "'");
  }
  if (frequent_k.empty()) return VkDetail{};

  const JmaxBound bound = ComputeJmax(frequent_k, k, options);

  // Per element: index of the best k-set (max sum), and co-occurring
  // elements.
  struct ElementInfo {
    double best_sum = 0;
    size_t best_set = 0;
    Itemset cooccurring;  // Built sorted+deduped at the end.
  };
  std::unordered_map<ItemId, ElementInfo> info;
  std::vector<double> set_sums(frequent_k.size(), 0);
  for (size_t s = 0; s < frequent_k.size(); ++s) {
    double sum = 0;
    for (ItemId item : frequent_k[s].items) {
      sum += catalog.ValueUnchecked(attr, item);
    }
    set_sums[s] = sum;
    for (ItemId item : frequent_k[s].items) {
      auto [it, inserted] = info.try_emplace(item);
      if (inserted || sum > it->second.best_sum) {
        it->second.best_sum = sum;
        it->second.best_set = s;
      }
      for (ItemId other : frequent_k[s].items) {
        if (other != item) it->second.cooccurring.push_back(other);
      }
    }
  }

  double v_k = 0;
  for (size_t e = 0; e < bound.elements.size(); ++e) {
    const ItemId ti = bound.elements[e];
    ElementInfo& ei = info[ti];
    const Itemset& best = frequent_k[ei.best_set].items;
    // E_i^k: co-occurring elements not in the best set, by descending
    // B-value; add the top J of them.
    Itemset cooc = MakeItemset(std::move(ei.cooccurring));
    std::vector<double> extra_values;
    extra_values.reserve(cooc.size());
    for (ItemId item : cooc) {
      if (!Contains(best, item)) {
        extra_values.push_back(catalog.ValueUnchecked(attr, item));
      }
    }
    std::sort(extra_values.begin(), extra_values.end(),
              std::greater<double>());
    const int64_t j =
        options.per_element_j ? bound.j_per_element[e] : bound.jmax;
    double max_sum = ei.best_sum;
    for (int64_t u = 0; u < j && u < static_cast<int64_t>(extra_values.size());
         ++u) {
      max_sum += extra_values[static_cast<size_t>(u)];
    }
    v_k = std::max(v_k, max_sum);
  }
  return VkDetail{v_k, bound.jmax};
}

}  // namespace cfq
