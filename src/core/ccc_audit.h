// ccc-optimality auditing (Definition 6).
//
// A strategy is ccc-optimal when (1) it counts the support of a
// candidate CS iff all subsets of CS are frequent and CS is valid, and
// (2) it invokes constraint checking only on singletons (at most N =
// |domain| invocations). The auditor recomputes the "required" candidate
// population by brute force and compares it against the log of sets a
// miner actually counted, making Theorem 4 / Corollary 2 testable.
//
// Interpretation notes (the paper glosses both):
//   * For mandatory-group succinct constraints, CAP counts optional
//     singletons at level 1 (they are needed as generation material);
//     the audit exposes them via `extra_counted` so tests can assert the
//     exact Definition-6 reading for the constraint classes the theorem
//     covers.
//   * For 2-var audits, "CS is valid" follows Definition 3: a frequent
//     witness set must exist on the other side.

#ifndef CFQ_CORE_CCC_AUDIT_H_
#define CFQ_CORE_CCC_AUDIT_H_

#include <vector>

#include "common/itemset.h"
#include "common/result.h"
#include "core/cfq.h"
#include "data/item_catalog.h"
#include "data/transaction_db.h"

namespace cfq {

struct CccAudit {
  // Condition 1, "only if": every counted set had all subsets frequent
  // and was valid.
  bool counted_only_required = true;
  // Condition 1, "if": every such set was indeed counted.
  bool counted_all_required = true;
  // Condition 2: constraint checks stayed within the singleton budget.
  bool checks_within_budget = true;

  uint64_t extra_counted = 0;  // Counted but not required.
  uint64_t missed = 0;         // Required but never counted.
  uint64_t required = 0;       // |required population|.
  uint64_t counted = 0;
  uint64_t checks = 0;
  uint64_t check_budget = 0;  // |domain| (one per singleton).

  bool ccc_optimal() const {
    return counted_only_required && counted_all_required &&
           checks_within_budget;
  }
};

// Audits a 1-var mining run on `var` (Theorem 4 setting). `counted` is
// the miner's log of support-counted candidates; `checks` its
// constraint-check counter. Exponential in |domain|; tests only.
Result<CccAudit> AuditOneVar(const TransactionDb& db,
                             const ItemCatalog& catalog, const Itemset& domain,
                             Var var,
                             const std::vector<OneVarConstraint>& constraints,
                             uint64_t min_support,
                             const std::vector<Itemset>& counted,
                             uint64_t checks);

// Audits one side of a full CFQ run (Corollary 2 setting): validity of
// an S-set additionally requires, for every 2-var constraint, a
// frequent witness T-set (drawn from t_domain at t's threshold) forming
// a satisfying pair — and symmetrically. Exponential; tests only.
Result<CccAudit> AuditCfqSide(const TransactionDb& db,
                              const ItemCatalog& catalog,
                              const CfqQuery& query, Var side,
                              const std::vector<Itemset>& counted,
                              uint64_t checks);

}  // namespace cfq

#endif  // CFQ_CORE_CCC_AUDIT_H_
