#include "core/cfq.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace cfq {

namespace {

// Shortest decimal that round-trips to `v`: integers print bare
// ("100", never "100.0"), everything else probes increasing precision.
std::string FormatConstant(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

// Canonical operator spellings match the parser grammar (SetCmpName
// renders kNotSubset as "not-subset", which does not re-parse).
std::string CanonSetCmp(SetCmp cmp) {
  switch (cmp) {
    case SetCmp::kNotSubset:
      return "not subset";
    case SetCmp::kNotSuperset:
      return "not superset";
    default:
      return SetCmpName(cmp);
  }
}

std::string CanonConjunct(const OneVarConstraint& c) {
  std::ostringstream os;
  const char* var = VarName(c.var);
  if (const auto* d = std::get_if<DomainConstraint1>(&c.body)) {
    // Builders keep the constant sorted/deduped; re-normalize anyway so
    // hand-built constraints canonicalize too.
    std::vector<AttrValue> constant = d->constant;
    std::sort(constant.begin(), constant.end());
    constant.erase(std::unique(constant.begin(), constant.end()),
                   constant.end());
    os << var << '.' << d->attr << ' ' << CanonSetCmp(d->cmp) << " {";
    for (size_t i = 0; i < constant.size(); ++i) {
      if (i > 0) os << ", ";
      os << FormatConstant(constant[i]);
    }
    os << '}';
  } else {
    const auto& a = std::get<AggConstraint1>(c.body);
    os << AggFnName(a.agg) << '(' << var << '.' << a.attr << ") "
       << CmpOpName(a.cmp) << ' ' << FormatConstant(a.constant);
  }
  return os.str();
}

std::string CanonConjunct(const TwoVarConstraint& c) {
  std::ostringstream os;
  if (const auto* d = std::get_if<DomainConstraint2>(&c)) {
    os << "S." << d->attr_s << ' ' << CanonSetCmp(d->cmp) << " T."
       << d->attr_t;
  } else {
    const auto& a = std::get<AggConstraint2>(c);
    os << AggFnName(a.agg_s) << "(S." << a.attr_s << ") " << CmpOpName(a.cmp)
       << ' ' << AggFnName(a.agg_t) << "(T." << a.attr_t << ')';
  }
  return os.str();
}

// Sorts a rendered conjunct group and drops exact duplicates (sound
// under conjunction: C & C = C).
void AppendSortedUnique(std::vector<std::string> group,
                        std::vector<std::string>* out) {
  std::sort(group.begin(), group.end());
  group.erase(std::unique(group.begin(), group.end()), group.end());
  out->insert(out->end(), std::make_move_iterator(group.begin()),
              std::make_move_iterator(group.end()));
}

}  // namespace

std::string ToString(const CfqQuery& query) {
  std::ostringstream os;
  os << "{(S, T) | freq(S, " << query.min_support_s << ") & freq(T, "
     << query.min_support_t << ")";
  for (const OneVarConstraint& c : query.one_var) {
    os << " & " << ToString(c);
  }
  for (const TwoVarConstraint& c : query.two_var) {
    os << " & " << ToString(c);
  }
  os << "}";
  return os.str();
}

std::string CanonicalizeQuery(const CfqQuery& query) {
  std::vector<std::string> conjuncts;
  conjuncts.push_back("freq(S, " + std::to_string(query.min_support_s) + ")");
  conjuncts.push_back("freq(T, " + std::to_string(query.min_support_t) + ")");
  std::vector<std::string> one_var;
  one_var.reserve(query.one_var.size());
  for (const OneVarConstraint& c : query.one_var) {
    one_var.push_back(CanonConjunct(c));
  }
  AppendSortedUnique(std::move(one_var), &conjuncts);
  std::vector<std::string> two_var;
  two_var.reserve(query.two_var.size());
  for (const TwoVarConstraint& c : query.two_var) {
    two_var.push_back(CanonConjunct(c));
  }
  AppendSortedUnique(std::move(two_var), &conjuncts);

  std::string out = "{(S, T) |";
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    out += i == 0 ? " " : " & ";
    out += conjuncts[i];
  }
  out += "}";
  return out;
}

}  // namespace cfq
