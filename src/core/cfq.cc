#include "core/cfq.h"

#include <sstream>

namespace cfq {

std::string ToString(const CfqQuery& query) {
  std::ostringstream os;
  os << "{(S, T) | freq(S, " << query.min_support_s << ") & freq(T, "
     << query.min_support_t << ")";
  for (const OneVarConstraint& c : query.one_var) {
    os << " & " << ToString(c);
  }
  for (const TwoVarConstraint& c : query.two_var) {
    os << " & " << ToString(c);
  }
  os << "}";
  return os.str();
}

}  // namespace cfq
