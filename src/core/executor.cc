#include "core/executor.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "constraints/eval.h"
#include "core/reduction.h"
#include "mining/apriori_plus.h"
#include "mining/cap.h"
#include "mining/hash_counter.h"
#include <unordered_set>

#include "mining/lattice.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace cfq {

namespace {

// A 1-var constraint that no non-empty set satisfies; injected when a
// reduction proves a side unsatisfiable (its MGF form has allowed = ∅).
OneVarConstraint Impossible(Var var) {
  return MakeAgg1(var, AggFn::kCount, kItemAttr, CmpOp::kLe, 0);
}

// Collects the item ids of level-1 frequent singletons.
Itemset LevelOneItems(const std::vector<FrequentSet>& level1) {
  Itemset out;
  out.reserve(level1.size());
  for (const FrequentSet& f : level1) out.push_back(f.items[0]);
  return MakeItemset(std::move(out));
}

// Tracks the Jmax V^k series for one bounded side (Section 5.2): the
// sound upper bound on sum(attr) over every frequent set of the source
// lattice is max(exact max over mined levels, V^k over deeper levels).
class VkSeries {
 public:
  VkSeries(std::string attr, const ItemCatalog* catalog,
           const JmaxOptions& options, obs::Tracer* tracer = nullptr,
           char source_var = '?')
      : attr_(std::move(attr)),
        catalog_(catalog),
        options_(options),
        tracer_(tracer),
        source_var_(source_var) {}

  // Feeds the frequent sets of a completed source-lattice level.
  // Returns the updated bound (only meaningful once level >= 1).
  Result<double> OnLevel(size_t level, const std::vector<FrequentSet>& sets,
                         bool lattice_done) {
    for (const FrequentSet& f : sets) {
      double sum = 0;
      for (ItemId item : f.items) {
        sum += catalog_->ValueUnchecked(attr_, item);
      }
      known_max_ = std::max(known_max_, sum);
    }
    if (lattice_done) {
      // Every frequent set has been enumerated: the bound is exact.
      bound_ = known_max_;
      return bound_;
    }
    if (level >= 2) {
      auto vk = ComputeVkDetail(sets, level, attr_, *catalog_, options_);
      if (!vk.ok()) return vk.status();
      bound_ = std::min(bound_, std::max(known_max_, vk.value().v_k));
      if (tracer_ != nullptr) {
        tracer_->RecordJmax(obs::JmaxEvent{source_var_,
                                           static_cast<uint32_t>(level),
                                           vk.value().jmax, vk.value().v_k});
      }
    }
    return bound_;
  }

  double bound() const { return bound_; }

 private:
  std::string attr_;
  const ItemCatalog* catalog_;
  JmaxOptions options_;
  obs::Tracer* tracer_;
  char source_var_;
  double known_max_ = 0;
  double bound_ = std::numeric_limits<double>::infinity();
};

// A dynamic bound crossing from one lattice thread to the other.
struct ChannelBound {
  AggFn agg;
  std::string attr;
  double value;
  bool prunable;
  size_t source_level;  // Producer level that computed this bound.
};

// Hands Jmax V^k bounds between the two concurrently mined lattices.
// The producer publishes after completing each level; the consumer
// blocks until the producer has published the level the sequential
// dovetail schedule would require, so the exact same bounds are in
// force before every PrepareLevel regardless of thread interleaving
// (this is what makes concurrent mining bit-identical to serial).
// `expects_bounds == false` means no Jmax hook feeds this direction,
// so the consumer never waits and the sides run fully decoupled.
class BoundsChannel {
 public:
  explicit BoundsChannel(bool expects_bounds)
      : expects_bounds_(expects_bounds) {}

  // Called by the producer after completing `level`. `bounds` may be
  // empty; the level watermark still advances so the consumer can make
  // progress. `closed` marks the producer's final level.
  void Publish(size_t level, std::vector<ChannelBound> bounds, bool closed) {
    std::lock_guard<std::mutex> lock(mu_);
    published_level_ = std::max(published_level_, level);
    for (ChannelBound& b : bounds) pending_.push_back(std::move(b));
    closed_ = closed_ || closed;
    cv_.notify_all();
  }

  // Unblocks the consumer unconditionally (producer finished or erred).
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cv_.notify_all();
  }

  // Blocks until the producer has published `level` (or closed), then
  // drains the pending bounds computed at producer levels <= `level`.
  // Later bounds stay queued: if the producer ran ahead (possible when
  // the reverse direction has no hooks), applying its deeper-level
  // bounds early would prune more than the sequential schedule and
  // break bit-identity. Immediate when no bounds flow this way.
  std::vector<ChannelBound> TakeForLevel(size_t level) {
    std::unique_lock<std::mutex> lock(mu_);
    if (expects_bounds_) {
      cv_.wait(lock, [&] { return closed_ || published_level_ >= level; });
    }
    // Publishes arrive in level order, so eligible bounds are a prefix.
    size_t take = 0;
    while (take < pending_.size() && pending_[take].source_level <= level) {
      ++take;
    }
    std::vector<ChannelBound> out(
        std::make_move_iterator(pending_.begin()),
        std::make_move_iterator(pending_.begin() + take));
    pending_.erase(pending_.begin(), pending_.begin() + take);
    return out;
  }

 private:
  const bool expects_bounds_;
  std::mutex mu_;
  std::condition_variable cv_;
  // Level 1 is mined on the caller thread before the sides split, so
  // both channels start with level 1 already published.
  size_t published_level_ = 1;
  std::vector<ChannelBound> pending_;
  bool closed_ = false;
};

// Pair formation: verify every 2-var constraint on each candidate pair.
// With a pool, S-rows are sharded across threads; per-shard matches are
// concatenated in shard order, reproducing the serial row-major order.
Status FormPairs(const ItemCatalog& catalog, const CfqQuery& query,
                 CfqResult* result, obs::Tracer* tracer = nullptr,
                 ThreadPool* pool = nullptr,
                 obs::MetricsRegistry* metrics = nullptr,
                 const CancelToken* cancel = nullptr) {
  if (query.two_var.empty()) {
    result->cross_product = true;
    return Status::Ok();
  }
  obs::TraceSpan span(tracer, "form_pairs");
  Stopwatch timer;
  const uint64_t checks_before = result->stats.pair_checks;
  const size_t rows = result->s_sets.size();
  const size_t cols = result->t_sets.size();
  if (pool != nullptr && pool->num_threads() > 1 && rows >= 2 && cols > 0 &&
      rows * cols >= 2048) {
    const size_t shards = std::min(pool->num_threads() * 4, rows);
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> partial(shards);
    std::vector<Status> statuses(shards, Status::Ok());
    pool->ParallelChunks(
        rows, shards, [&](size_t shard, size_t begin, size_t end) {
          std::vector<std::pair<uint32_t, uint32_t>>& local = partial[shard];
          if (cancel != nullptr && cancel->Expired()) {
            statuses[shard] = CancelToken::ExpiredError("pair formation");
            return;
          }
          for (uint32_t i = static_cast<uint32_t>(begin);
               i < static_cast<uint32_t>(end); ++i) {
            for (uint32_t j = 0; j < static_cast<uint32_t>(cols); ++j) {
              auto ok = EvalAllPairs(query.two_var, result->s_sets[i].items,
                                     result->t_sets[j].items, catalog);
              if (!ok.ok()) {
                statuses[shard] = ok.status();
                return;
              }
              if (ok.value()) local.emplace_back(i, j);
            }
          }
        });
    for (const Status& st : statuses) CFQ_RETURN_IF_ERROR(st);
    result->stats.pair_checks +=
        static_cast<uint64_t>(rows) * static_cast<uint64_t>(cols);
    for (std::vector<std::pair<uint32_t, uint32_t>>& local : partial) {
      result->pairs.insert(result->pairs.end(), local.begin(), local.end());
    }
  } else {
    for (uint32_t i = 0; i < rows; ++i) {
      CFQ_RETURN_IF_ERROR(CheckCancel(cancel, "pair formation"));
      for (uint32_t j = 0; j < cols; ++j) {
        ++result->stats.pair_checks;
        auto ok = EvalAllPairs(query.two_var, result->s_sets[i].items,
                               result->t_sets[j].items, catalog);
        if (!ok.ok()) return ok.status();
        if (ok.value()) result->pairs.emplace_back(i, j);
      }
    }
  }
  if (tracer != nullptr) {
    tracer->RecordPairPhase(
        obs::PairPhaseEvent{result->stats.pair_checks - checks_before,
                            result->pairs.size(), timer.ElapsedSeconds()});
  }
  if (metrics != nullptr) {
    metrics->Observe("pair.form_seconds", timer.ElapsedSeconds());
  }
  return Status::Ok();
}

CapOptions ToCapOptions(const PlanOptions& options,
                        ThreadPool* pool = nullptr) {
  CapOptions cap;
  cap.counter = options.counter;
  cap.max_level = options.max_level;
  cap.nonnegative = options.nonnegative;
  cap.tracer = options.tracer;
  cap.metrics = options.metrics;
  cap.pool = pool;
  cap.cancel = options.cancel;
  return cap;
}

}  // namespace

Result<CfqResult> ExecutePlan(TransactionDb* db, const ItemCatalog& catalog,
                              const CfqPlan& plan) {
  Stopwatch timer;
  obs::ResourceTracker resource_tracker;
  const CfqQuery& query = plan.query;
  const PlanOptions& options = plan.options;
  ThreadPool pool(options.threads);  // 0 resolves to hardware concurrency.

  // Each side records into its own registry (the concurrent dovetail
  // mines the lattices on separate threads); merging S then T below
  // keeps the caller's registry deterministic at every thread count.
  obs::MetricsRegistry s_metrics, t_metrics;
  CapOptions s_options = ToCapOptions(options, &pool);
  s_options.counted_log = options.counted_log_s;
  s_options.metrics = options.metrics != nullptr ? &s_metrics : nullptr;
  CapOptions t_options = ToCapOptions(options, &pool);
  t_options.counted_log = options.counted_log_t;
  t_options.metrics = options.metrics != nullptr ? &t_metrics : nullptr;
  auto s_lattice = ConstrainedLattice::Create(
      db, catalog, query.s_domain, Var::kS, query.one_var,
      query.min_support_s, s_options);
  if (!s_lattice.ok()) return s_lattice.status();
  auto t_lattice = ConstrainedLattice::Create(
      db, catalog, query.t_domain, Var::kT, query.one_var,
      query.min_support_t, t_options);
  if (!t_lattice.ok()) return t_lattice.status();
  ConstrainedLattice& s = **s_lattice;
  ConstrainedLattice& t = **t_lattice;

  // --- Level 1 on both sides; then decouple the 2-var constraints. ------
  s.Step();
  t.Step();
  const Itemset l1_s = LevelOneItems(s.last_level_frequent());
  const Itemset l1_t = LevelOneItems(t.last_level_frequent());

  // Reduced constraints are kept apart by the mechanism that produced
  // them (Section 4 vs Section 5.1) so pruning can be attributed.
  std::vector<OneVarConstraint> decoupled_qs;
  std::vector<OneVarConstraint> decoupled_induced;
  auto add_reduction = [&](const TwoVarConstraint& c,
                           std::vector<OneVarConstraint>* out) -> Status {
    auto reduction = ReduceTwoVar(c, l1_s, l1_t, catalog, options.nonnegative,
                                  options.tracer);
    if (!reduction.ok()) return reduction.status();
    const Reduction& r = reduction.value();
    if (!r.s.satisfiable) {
      out->push_back(Impossible(Var::kS));
    } else {
      for (const OneVarConstraint& rc : r.s.constraints) {
        out->push_back(rc);
      }
    }
    if (!r.t.satisfiable) {
      out->push_back(Impossible(Var::kT));
    } else {
      for (const OneVarConstraint& rc : r.t.constraints) {
        out->push_back(rc);
      }
    }
    return Status::Ok();
  };

  // Jmax series: bounds on sum over the T lattice pruning S, and vice
  // versa. Pairs of (series, target aggregate on the bounded side).
  struct JmaxHook {
    VkSeries series;
    AggFn target_agg;
    std::string target_attr;
    bool prunable;
    bool source_is_t;
  };
  std::vector<JmaxHook> jmax_hooks;

  for (const TwoVarRoute& route : plan.routes) {
    if (route.quasi_succinct) {
      CFQ_RETURN_IF_ERROR(add_reduction(route.constraint, &decoupled_qs));
      continue;
    }
    for (const TwoVarConstraint& induced : route.induced) {
      CFQ_RETURN_IF_ERROR(add_reduction(induced, &decoupled_induced));
    }
    if (route.loose_reduction) {
      CFQ_RETURN_IF_ERROR(add_reduction(route.constraint, &decoupled_induced));
    }
    if (route.jmax_prunes_s || route.jmax_prunes_t) {
      const auto& a = std::get<AggConstraint2>(route.constraint);
      if (route.jmax_prunes_s) {
        jmax_hooks.push_back(JmaxHook{
            VkSeries(a.attr_t, &catalog, options.jmax, options.tracer, 'T'),
            a.agg_s, a.attr_s, route.jmax_s_bound_anti_monotone,
            /*source_is_t=*/true});
      }
      if (route.jmax_prunes_t) {
        jmax_hooks.push_back(JmaxHook{
            VkSeries(a.attr_s, &catalog, options.jmax, options.tracer, 'S'),
            a.agg_t, a.attr_t, route.jmax_t_bound_anti_monotone,
            /*source_is_t=*/false});
      }
    }
  }
  CFQ_RETURN_IF_ERROR(
      s.AddConstraints(decoupled_qs, obs::Mechanism::kQuasiSuccinct));
  CFQ_RETURN_IF_ERROR(
      t.AddConstraints(decoupled_qs, obs::Mechanism::kQuasiSuccinct));
  CFQ_RETURN_IF_ERROR(
      s.AddConstraints(decoupled_induced, obs::Mechanism::kInduced));
  CFQ_RETURN_IF_ERROR(
      t.AddConstraints(decoupled_induced, obs::Mechanism::kInduced));

  // Feed level-1 information into the Jmax series too (it tracks the
  // exact max over mined sets).
  auto feed_jmax = [&](bool from_t, size_t level,
                       const std::vector<FrequentSet>& sets,
                       bool source_done) -> Status {
    for (JmaxHook& hook : jmax_hooks) {
      if (hook.source_is_t != from_t) continue;
      auto bound = hook.series.OnLevel(level, sets, source_done);
      if (!bound.ok()) return bound.status();
      ConstrainedLattice& target = from_t ? s : t;
      if (std::isfinite(bound.value())) {
        target.SetDynamicBound(hook.target_agg, hook.target_attr,
                               bound.value(), hook.prunable);
      }
    }
    return Status::Ok();
  };
  CFQ_RETURN_IF_ERROR(
      feed_jmax(true, t.level(), t.last_level_frequent(), t.done()));
  CFQ_RETURN_IF_ERROR(
      feed_jmax(false, s.level(), s.last_level_frequent(), s.done()));

  // --- Remaining levels. -------------------------------------------------
  const bool concurrent_dovetail = options.dovetail &&
                                   pool.num_threads() > 1 &&
                                   options.counter != CounterKind::kHash;
  if (concurrent_dovetail) {
    // Mine the two lattices on separate threads (T on a spawned thread,
    // S on the caller), exchanging Jmax V^k bounds through monotonic
    // channels. The wait discipline reproduces the sequential dovetail
    // schedule exactly: before S counts level k it has T's bounds
    // through level k, and before T counts level k it has S's bounds
    // through level k-1 — so pruning, counted totals and mined sets are
    // bit-identical to threads=1. Each side's support counting still
    // shards transactions over the shared pool.
    bool t_feeds_s = false, s_feeds_t = false;
    for (const JmaxHook& hook : jmax_hooks) {
      (hook.source_is_t ? t_feeds_s : s_feeds_t) = true;
    }
    BoundsChannel t_to_s(t_feeds_s);
    BoundsChannel s_to_t(s_feeds_t);
    auto run_side = [&](ConstrainedLattice& self, bool is_t,
                        BoundsChannel& incoming,
                        BoundsChannel& outgoing) -> Status {
      while (!self.done()) {
        if (Status st = CheckCancel(
                options.cancel,
                std::string("level boundary (") + (is_t ? 'T' : 'S') + ")");
            !st.ok()) {
          outgoing.Close();
          return st;
        }
        // About to count level self.level()+1: T needs S through the
        // previous level, S needs T through the level being counted.
        const size_t need = is_t ? self.level() : self.level() + 1;
        for (const ChannelBound& b : incoming.TakeForLevel(need)) {
          self.SetDynamicBound(b.agg, b.attr, b.value, b.prunable);
        }
        if (!self.Step()) break;
        std::vector<ChannelBound> out;
        for (JmaxHook& hook : jmax_hooks) {
          if (hook.source_is_t != is_t) continue;
          auto bound = hook.series.OnLevel(
              self.level(), self.last_level_frequent(), self.done());
          if (!bound.ok()) {
            outgoing.Close();
            return bound.status();
          }
          if (std::isfinite(bound.value())) {
            out.push_back(ChannelBound{hook.target_agg, hook.target_attr,
                                       bound.value(), hook.prunable,
                                       self.level()});
          }
        }
        outgoing.Publish(self.level(), std::move(out), self.done());
      }
      outgoing.Close();
      return Status::Ok();
    };
    Status t_status, s_status;
    std::thread t_thread(
        [&] { t_status = run_side(t, /*is_t=*/true, s_to_t, t_to_s); });
    s_status = run_side(s, /*is_t=*/false, t_to_s, s_to_t);
    t_thread.join();
    CFQ_RETURN_IF_ERROR(t_status);
    CFQ_RETURN_IF_ERROR(s_status);
  } else if (options.dovetail) {
    while (!s.done() || !t.done()) {
      CFQ_RETURN_IF_ERROR(CheckCancel(options.cancel, "level boundary"));
      // With a horizontal backend, dovetailing lets one pass over the
      // transaction file count both lattices' levels (Section 5.2's
      // I/O argument for dovetailing).
      if (options.counter == CounterKind::kHash) {
        // Note: counting both sides in one scan means S's level-k
        // candidates see the V^k bound from T's level k-1 rather than
        // level k (a one-level lag vs. sequential stepping) — still
        // sound, slightly less pruning, half the scans. The scan itself
        // is sharded over the pool, so this path stays the same at
        // every thread count and keeps its one-scan-per-level I/O.
        const std::vector<Itemset>& t_batch = t.PrepareLevel();
        const std::vector<Itemset>& s_batch = s.PrepareLevel();
        if (!t_batch.empty() && !s_batch.empty()) {
          CccStats scan_stats;
          scan_stats.tracer = options.tracer;
          scan_stats.metrics = t_options.metrics;  // One scan; T's books.
          const auto supports = CountBatchesSharedScan(
              *db, {&t_batch, &s_batch}, &scan_stats, &pool);
          // One physical scan for the whole query; attribute it to T.
          t.AccountIo(scan_stats.io.scans, scan_stats.io.pages_read);
          t.CompleteLevel(supports[0]);
          CFQ_RETURN_IF_ERROR(
              feed_jmax(true, t.level(), t.last_level_frequent(), t.done()));
          s.CompleteLevel(supports[1]);
          CFQ_RETURN_IF_ERROR(feed_jmax(false, s.level(),
                                        s.last_level_frequent(), s.done()));
          continue;
        }
        // One side exhausted: fall through to plain stepping.
      }
      if (t.Step()) {
        CFQ_RETURN_IF_ERROR(
            feed_jmax(true, t.level(), t.last_level_frequent(), t.done()));
      }
      if (s.Step()) {
        CFQ_RETURN_IF_ERROR(
            feed_jmax(false, s.level(), s.last_level_frequent(), s.done()));
      }
    }
  } else {
    // Non-dovetailed: finish T first so S sees the exact global bound.
    while (!t.done()) {
      CFQ_RETURN_IF_ERROR(CheckCancel(options.cancel, "level boundary (T)"));
      if (!t.Step()) break;
      CFQ_RETURN_IF_ERROR(
          feed_jmax(true, t.level(), t.last_level_frequent(), t.done()));
    }
    CFQ_RETURN_IF_ERROR(feed_jmax(true, t.level(), {}, /*source_done=*/true));
    while (!s.done()) {
      CFQ_RETURN_IF_ERROR(CheckCancel(options.cancel, "level boundary (S)"));
      if (!s.Step()) break;
      CFQ_RETURN_IF_ERROR(
          feed_jmax(false, s.level(), s.last_level_frequent(), s.done()));
    }
  }

  if (options.metrics != nullptr) {
    options.metrics->MergeFrom(s_metrics);
    options.metrics->MergeFrom(t_metrics);
  }

  CfqResult result;
  result.s_sets = s.valid_frequent();
  result.t_sets = t.valid_frequent();
  result.stats.s = s.stats();
  result.stats.t = t.stats();
  // The per-side registries are locals; don't let their pointers escape.
  result.stats.s.metrics = nullptr;
  result.stats.t.metrics = nullptr;
  result.stats.mining_seconds = timer.ElapsedSeconds();
  CFQ_RETURN_IF_ERROR(FormPairs(catalog, query, &result, options.tracer,
                                &pool, options.metrics,
                                options.cancel));
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  result.stats.pair_seconds =
      result.stats.elapsed_seconds - result.stats.mining_seconds;
  result.stats.pool = pool.stats();
  result.stats.resources = resource_tracker.Finish();
  result.stats.simd_kernel = simd::KernelName(simd::ActiveKernel());
  return result;
}

Result<CfqResult> ExecuteOptimized(TransactionDb* db,
                                   const ItemCatalog& catalog,
                                   const CfqQuery& query,
                                   const PlanOptions& options) {
  auto plan = BuildPlan(query, options);
  if (!plan.ok()) return plan.status();
  return ExecutePlan(db, catalog, plan.value());
}

Result<CfqResult> ExecuteAprioriPlus(TransactionDb* db,
                                     const ItemCatalog& catalog,
                                     const CfqQuery& query,
                                     const PlanOptions& options) {
  Stopwatch timer;
  obs::ResourceTracker resource_tracker;
  ThreadPool pool(options.threads);
  AprioriOptions apriori_options;
  apriori_options.counter = options.counter;
  apriori_options.max_level = options.max_level;
  apriori_options.tracer = options.tracer;
  apriori_options.metrics = options.metrics;
  apriori_options.pool = &pool;
  apriori_options.cancel = options.cancel;

  CfqResult result;
  apriori_options.var_label = 'S';
  auto s = RunAprioriPlus(db, catalog, query.s_domain, Var::kS, query.one_var,
                          query.min_support_s, apriori_options);
  if (!s.ok()) return s.status();
  apriori_options.var_label = 'T';
  auto t = RunAprioriPlus(db, catalog, query.t_domain, Var::kT, query.one_var,
                          query.min_support_t, apriori_options);
  if (!t.ok()) return t.status();
  result.s_sets = std::move(s.value().valid_frequent);
  result.t_sets = std::move(t.value().valid_frequent);
  result.stats.s = std::move(s.value().stats);
  result.stats.t = std::move(t.value().stats);
  result.stats.mining_seconds = timer.ElapsedSeconds();
  CFQ_RETURN_IF_ERROR(FormPairs(catalog, query, &result, options.tracer,
                                &pool, options.metrics,
                                options.cancel));
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  result.stats.pair_seconds =
      result.stats.elapsed_seconds - result.stats.mining_seconds;
  result.stats.pool = pool.stats();
  result.stats.resources = resource_tracker.Finish();
  result.stats.simd_kernel = simd::KernelName(simd::ActiveKernel());
  return result;
}

Result<CfqResult> ExecuteCapOneVar(TransactionDb* db,
                                   const ItemCatalog& catalog,
                                   const CfqQuery& query,
                                   const PlanOptions& options) {
  Stopwatch timer;
  obs::ResourceTracker resource_tracker;
  ThreadPool pool(options.threads);
  CfqResult result;
  auto s = RunCap(db, catalog, query.s_domain, Var::kS, query.one_var,
                  query.min_support_s, ToCapOptions(options, &pool));
  if (!s.ok()) return s.status();
  auto t = RunCap(db, catalog, query.t_domain, Var::kT, query.one_var,
                  query.min_support_t, ToCapOptions(options, &pool));
  if (!t.ok()) return t.status();
  result.s_sets = std::move(s.value().valid_frequent);
  result.t_sets = std::move(t.value().valid_frequent);
  result.stats.s = std::move(s.value().stats);
  result.stats.t = std::move(t.value().stats);
  result.stats.mining_seconds = timer.ElapsedSeconds();
  CFQ_RETURN_IF_ERROR(FormPairs(catalog, query, &result, options.tracer,
                                &pool, options.metrics,
                                options.cancel));
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  result.stats.pair_seconds =
      result.stats.elapsed_seconds - result.stats.mining_seconds;
  result.stats.pool = pool.stats();
  result.stats.resources = resource_tracker.Finish();
  result.stats.simd_kernel = simd::KernelName(simd::ActiveKernel());
  return result;
}

namespace {

// One side of the FM strategy: materialize valid sets by exhaustive
// constraint checking, then count them in ascending size, keeping the
// frequency-closed prefix.
Result<std::vector<FrequentSet>> FmSide(TransactionDb* db,
                                        const ItemCatalog& catalog,
                                        const CfqQuery& query, Var var,
                                        uint64_t min_support,
                                        CccStats* stats) {
  const Itemset& domain = var == Var::kS ? query.s_domain : query.t_domain;
  // Phase 1: constraint checking on EVERY subset (2^N - 1 checks).
  std::vector<std::vector<Itemset>> valid_by_size(domain.size() + 1);
  Status error;
  ForEachNonEmptySubset(domain, [&](const Itemset& x) {
    if (!error.ok()) return;
    ++stats->constraint_checks;
    auto ok = EvalAll(query.one_var, var, x, catalog);
    if (!ok.ok()) {
      error = ok.status();
      return;
    }
    if (ok.value()) valid_by_size[x.size()].push_back(x);
  });
  CFQ_RETURN_IF_ERROR(error);

  // Phase 2: count valid sets in ascending cardinality. Pruning may
  // only use subsets whose frequency is known, i.e. VALID subsets
  // (invalid ones were never counted); a set with an infrequent invalid
  // subset still gets counted and simply turns out infrequent.
  auto counter = MakeCounter(CounterKind::kBitmap, db);
  std::unordered_set<Itemset, ItemsetHash> valid_index;
  for (const auto& level : valid_by_size) {
    valid_index.insert(level.begin(), level.end());
  }
  std::unordered_set<Itemset, ItemsetHash> frequent_index;
  std::vector<FrequentSet> out;
  for (size_t size = 1; size < valid_by_size.size(); ++size) {
    std::vector<Itemset> candidates;
    for (Itemset& x : valid_by_size[size]) {
      bool known_infrequent_subset = false;
      for (size_t drop = 0;
           x.size() > 1 && drop < x.size() && !known_infrequent_subset;
           ++drop) {
        Itemset sub = WithoutIndex(x, drop);
        if (valid_index.find(sub) != valid_index.end() &&
            frequent_index.find(sub) == frequent_index.end()) {
          known_infrequent_subset = true;
        }
      }
      if (!known_infrequent_subset) candidates.push_back(std::move(x));
    }
    std::sort(candidates.begin(), candidates.end());
    const std::vector<uint64_t> supports = counter->Count(candidates, stats);
    uint64_t frequent = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (supports[i] < min_support) continue;
      ++frequent;
      frequent_index.insert(candidates[i]);
      out.push_back(FrequentSet{candidates[i], supports[i]});
    }
    stats->RecordLevel(candidates.size(), frequent);
  }
  return out;
}

}  // namespace

Result<CfqResult> ExecuteFullMaterialization(TransactionDb* db,
                                             const ItemCatalog& catalog,
                                             const CfqQuery& query) {
  if (query.s_domain.size() > kFmMaxDomain ||
      query.t_domain.size() > kFmMaxDomain) {
    return Status::InvalidArgument(
        "full materialization is exponential; domains are capped at " +
        std::to_string(kFmMaxDomain) + " items");
  }
  Stopwatch timer;
  obs::ResourceTracker resource_tracker;
  CfqResult result;
  auto s = FmSide(db, catalog, query, Var::kS, query.min_support_s,
                  &result.stats.s);
  if (!s.ok()) return s.status();
  result.s_sets = std::move(s).value();
  auto t = FmSide(db, catalog, query, Var::kT, query.min_support_t,
                  &result.stats.t);
  if (!t.ok()) return t.status();
  result.t_sets = std::move(t).value();
  result.stats.mining_seconds = timer.ElapsedSeconds();
  CFQ_RETURN_IF_ERROR(FormPairs(catalog, query, &result));
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  result.stats.pair_seconds =
      result.stats.elapsed_seconds - result.stats.mining_seconds;
  result.stats.resources = resource_tracker.Finish();
  result.stats.simd_kernel = simd::KernelName(simd::ActiveKernel());
  return result;
}

Result<CfqResult> ExecuteBruteForce(const TransactionDb& db,
                                    const ItemCatalog& catalog,
                                    const CfqQuery& query) {
  CfqResult result;
  for (const FrequentSet& f :
       MineFrequentBruteForce(db, query.s_domain, query.min_support_s)) {
    auto ok = EvalAll(query.one_var, Var::kS, f.items, catalog);
    if (!ok.ok()) return ok.status();
    if (ok.value()) result.s_sets.push_back(f);
  }
  for (const FrequentSet& f :
       MineFrequentBruteForce(db, query.t_domain, query.min_support_t)) {
    auto ok = EvalAll(query.one_var, Var::kT, f.items, catalog);
    if (!ok.ok()) return ok.status();
    if (ok.value()) result.t_sets.push_back(f);
  }
  CFQ_RETURN_IF_ERROR(FormPairs(catalog, query, &result));
  return result;
}

std::vector<std::pair<Itemset, Itemset>> AnswerPairs(const CfqResult& result) {
  std::vector<std::pair<Itemset, Itemset>> out;
  if (result.cross_product) {
    for (const FrequentSet& s : result.s_sets) {
      for (const FrequentSet& t : result.t_sets) {
        out.emplace_back(s.items, t.items);
      }
    }
  } else {
    out.reserve(result.pairs.size());
    for (const auto& [i, j] : result.pairs) {
      out.emplace_back(result.s_sets[i].items, result.t_sets[j].items);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cfq
