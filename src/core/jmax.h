// Jmax iterative pruning (Section 5.2, Figures 5 & 6).
//
// Given all frequent T-sets of size k, Figure 5 bounds how much any
// frequent T-set can still grow: an element appearing in N frequent
// k-sets can appear in a frequent set of size at most k + j where
// C(k+j-1, k-1) <= N. Figure 6 turns that into V^k, a decreasing series
// of upper bounds on sum(T.B) over every frequent T-set of size >= k:
//
//   V^k = max over elements ti of [ best k-set sum containing ti
//         + the Jmax largest B-values co-occurring with ti ].
//
// The dovetailed executor feeds V^k (combined with the max sum over
// already-mined smaller frequent sets, which Figure 6 does not cover)
// into the S lattice as the anti-monotone condition sum(S.A) <= V^k.

#ifndef CFQ_CORE_JMAX_H_
#define CFQ_CORE_JMAX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/itemset.h"
#include "common/result.h"
#include "data/item_catalog.h"
#include "mining/apriori.h"

namespace cfq {

struct JmaxOptions {
  // Figure 5's J bound search cap; the largest frequent set can never
  // exceed the item universe, so any value >= num_items is exact.
  uint64_t max_j = 1 << 20;
  // Paper's Figure 6 uses the global Jmax^k for every element; per-
  // element J_i^k is a strictly tighter variant (ablation bench).
  bool per_element_j = false;
};

// Per-element J bounds and their max (Figure 5). `frequent_k` holds the
// frequent sets of one level; all must have size k >= 1.
struct JmaxBound {
  int64_t jmax = -1;            // -1 when frequent_k is empty.
  std::vector<ItemId> elements;  // L_k (distinct items, sorted).
  std::vector<int64_t> j_per_element;  // Aligned with `elements`.
};

JmaxBound ComputeJmax(const std::vector<FrequentSet>& frequent_k, size_t k,
                      const JmaxOptions& options = {});

// Figure 6: V^k, an upper bound on sum(T.attr) over every frequent
// T-set of size >= k. Returns 0 when `frequent_k` is empty (no frequent
// set of size >= k exists at all). Requires nonnegative values.
Result<double> ComputeVk(const std::vector<FrequentSet>& frequent_k, size_t k,
                         const std::string& attr, const ItemCatalog& catalog,
                         const JmaxOptions& options = {});

// V^k together with the Figure-5 Jmax bound behind it, for tracing
// (obs::JmaxEvent) and the EXPLAIN ANALYZE V^k column.
struct VkDetail {
  double v_k = 0;
  int64_t jmax = -1;  // -1 when frequent_k is empty.
};
Result<VkDetail> ComputeVkDetail(const std::vector<FrequentSet>& frequent_k,
                                 size_t k, const std::string& attr,
                                 const ItemCatalog& catalog,
                                 const JmaxOptions& options = {});

}  // namespace cfq

#endif  // CFQ_CORE_JMAX_H_
