// The CFQ query optimizer (Section 6, Figure 7).
//
// Given a query, the optimizer routes every constraint:
//   * 1-var constraints go straight to CAP (succinct / anti-monotone
//     pushdowns);
//   * quasi-succinct 2-var constraints are marked for reduction to two
//     succinct 1-var constraints once L1^S / L1^T are known;
//   * non-quasi-succinct 2-var constraints (sum/avg) get (a) induced
//     weaker quasi-succinct constraints (Figure 4), (b) the loose
//     Section-5.1 level-1 bounds, and (c) Jmax iterative pruning when a
//     sum() appears on the side being bounded;
//   * every 2-var constraint is additionally verified at pair formation
//     (reductions preserve valid S-/T-sets, not valid pairs).

#ifndef CFQ_CORE_OPTIMIZER_H_
#define CFQ_CORE_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "core/cfq.h"
#include "core/jmax.h"
#include "mining/counter.h"

namespace cfq {

struct PlanOptions {
  CounterKind counter = CounterKind::kBitmap;
  bool nonnegative = true;
  size_t max_level = 0;
  // Parallelism degree for the execution engine: sharded support
  // counting, concurrent S/T dovetailing and parallel pair formation.
  // 1 = fully serial (the default — callers opt in), 0 = hardware
  // concurrency. Mining results are bit-identical at every setting.
  size_t threads = 1;
  // Optimization toggles (for ablations and the paper's comparisons).
  bool use_quasi_succinct = true;  // Section 4 reduction.
  bool use_induced = true;         // Section 5.1 induced + loose bounds.
  bool use_jmax = true;            // Section 5.2 iterative pruning.
  bool dovetail = true;            // Alternate S/T levels (Section 5.2).
  JmaxOptions jmax;
  // Optional ccc-audit evidence streams (see CccStats::counted_log).
  std::vector<Itemset>* counted_log_s = nullptr;
  std::vector<Itemset>* counted_log_t = nullptr;
  // Optional tracing sink; threaded into every strategy (not owned).
  obs::Tracer* tracer = nullptr;
  // Optional metrics sink (obs/metrics.h): per-level latency histograms,
  // scan bytes, pair-formation latency. Under the concurrent dovetail
  // each lattice thread records into its own local registry; the
  // executor merges S then T so the merged contents are deterministic
  // at every thread count. Not owned.
  obs::MetricsRegistry* metrics = nullptr;
  // Optional cooperative cancellation token (common/cancellation.h),
  // polled at level boundaries and between pair-formation shards. An
  // expired token aborts the strategy with kDeadlineExceeded. Not owned.
  const CancelToken* cancel = nullptr;
};

// How one 2-var constraint will be processed.
struct TwoVarRoute {
  TwoVarConstraint constraint;
  bool quasi_succinct = false;  // Reduce directly after level 1.
  // Induced weaker quasi-succinct constraints (empty if none / n.a.).
  std::vector<TwoVarConstraint> induced;
  // Loose level-1 reduction of the original constraint (non-tight but
  // sound); applied for non-quasi-succinct constraints.
  bool loose_reduction = false;
  // Jmax dynamic pruning: V^k computed from the T (resp. S) lattice
  // tightens a bound on agg_s(S.A) (resp. agg_t(T.B)).
  bool jmax_prunes_s = false;
  bool jmax_prunes_t = false;
  // Whether the dynamic bound is anti-monotone on its target side
  // (agg == sum on a nonnegative domain) and may drop candidates, as
  // opposed to only filtering mined sets.
  bool jmax_s_bound_anti_monotone = false;
  bool jmax_t_bound_anti_monotone = false;
};

struct CfqPlan {
  CfqQuery query;
  std::vector<TwoVarRoute> routes;  // One per query.two_var entry.
  PlanOptions options;
};

// Builds the plan; fails on unknown attributes or empty domains.
Result<CfqPlan> BuildPlan(const CfqQuery& query,
                          const PlanOptions& options = {});

// Human-readable EXPLAIN of the chosen strategy.
std::string ExplainPlan(const CfqPlan& plan);

}  // namespace cfq

#endif  // CFQ_CORE_OPTIMIZER_H_
