#include "core/analyze.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "common/table_printer.h"
#include "obs/digest.h"
#include "obs/export.h"
#include "obs/resource.h"

namespace cfq {

namespace {

// V^k points per (source variable, level), taken from the trace.
std::map<std::pair<char, uint32_t>, double> VkByLevel(
    const std::vector<obs::TraceEvent>& events) {
  std::map<std::pair<char, uint32_t>, double> out;
  for (const obs::TraceEvent& e : events) {
    if (const auto* j = std::get_if<obs::JmaxEvent>(&e.payload)) {
      out[{j->source_var, j->level}] = j->v_k;
    }
  }
  return out;
}

void RenderSide(char var, const CccStats& stats,
                const std::map<std::pair<char, uint32_t>, double>& vk,
                std::ostringstream* os) {
  *os << "lattice " << var << " (sets counted " << stats.sets_counted
      << ", constraint checks " << stats.constraint_checks << ", scans "
      << stats.io.scans << ", pages " << stats.io.pages_read << ")\n";
  std::vector<std::string> header = {"level", "generated"};
  for (size_t m = 0; m < obs::kNumMechanisms; ++m) {
    header.push_back(obs::MechanismName(static_cast<obs::Mechanism>(m)));
  }
  header.push_back("counted");
  header.push_back("frequent");
  header.push_back("V^k");
  TablePrinter table(std::move(header));
  const size_t levels = stats.generated_per_level.size();
  for (size_t i = 0; i < levels; ++i) {
    std::vector<std::string> row;
    row.push_back(std::to_string(i + 1));
    row.push_back(TablePrinter::Fmt(stats.generated_per_level[i]));
    for (size_t m = 0; m < obs::kNumMechanisms; ++m) {
      row.push_back(TablePrinter::Fmt(
          stats.pruned_per_level[i].Get(static_cast<obs::Mechanism>(m))));
    }
    row.push_back(TablePrinter::Fmt(stats.candidates_per_level[i]));
    row.push_back(TablePrinter::Fmt(stats.frequent_per_level[i]));
    auto it = vk.find({var, static_cast<uint32_t>(i + 1)});
    row.push_back(it == vk.end() ? "-" : TablePrinter::Fmt(it->second));
    table.AddRow(std::move(row));
  }
  table.Print(*os);
}

void ExportSide(const std::string& prefix, const CccStats& stats,
                obs::MetricsRegistry* registry) {
  registry->Add(prefix + ".sets_counted", stats.sets_counted);
  registry->Add(prefix + ".constraint_checks", stats.constraint_checks);
  registry->Add(prefix + ".io.scans", stats.io.scans);
  registry->Add(prefix + ".io.pages", stats.io.pages_read);
  for (size_t i = 0; i < stats.generated_per_level.size(); ++i) {
    const std::string level = prefix + ".level." + std::to_string(i + 1);
    registry->Add(level + ".generated", stats.generated_per_level[i]);
    registry->Add(level + ".counted", stats.candidates_per_level[i]);
    registry->Add(level + ".frequent", stats.frequent_per_level[i]);
    for (size_t m = 0; m < obs::kNumMechanisms; ++m) {
      const auto mech = static_cast<obs::Mechanism>(m);
      const uint64_t n = stats.pruned_per_level[i].Get(mech);
      if (n > 0) {
        registry->Add(level + ".pruned." + obs::MechanismName(mech), n);
      }
    }
  }
}

// Short general-precision format for histogram cells, whose values
// range from sub-microsecond latencies to multi-megabyte scan sizes.
std::string FmtG(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", value);
  return buf;
}

void RenderLatencies(const obs::MetricsRegistry& metrics,
                     std::ostringstream* os) {
  TablePrinter table({"histogram", "count", "p50", "p90", "p99", "max"});
  bool any = false;
  for (const obs::MetricsRegistry::Sample& s : metrics.Snapshot()) {
    if (s.kind != obs::MetricsRegistry::SampleKind::kHistogram) continue;
    any = true;
    table.AddRow({s.name, TablePrinter::Fmt(s.histogram.count()),
                  FmtG(s.histogram.Quantile(0.5)),
                  FmtG(s.histogram.Quantile(0.9)),
                  FmtG(s.histogram.Quantile(0.99)), FmtG(s.histogram.max())});
  }
  if (!any) return;
  *os << "\nlatency histograms (seconds unless named .bytes)\n";
  table.Print(*os);
}

}  // namespace

std::string RenderExplainAnalyze(const StrategyStats& stats,
                                 const std::vector<obs::TraceEvent>& events,
                                 const obs::MetricsRegistry* metrics) {
  const auto vk = VkByLevel(events);
  std::ostringstream os;
  RenderSide('S', stats.s, vk, &os);
  os << "\n";
  RenderSide('T', stats.t, vk, &os);
  os << "\npair phase: " << stats.pair_checks << " checks";
  for (const obs::TraceEvent& e : events) {
    if (const auto* p = std::get_if<obs::PairPhaseEvent>(&e.payload)) {
      os << ", " << p->kept << " kept";
    }
  }
  os << "\ntiming: mining " << TablePrinter::Fmt(stats.mining_seconds, 4)
     << "s, pairs " << TablePrinter::Fmt(stats.pair_seconds, 4) << "s, total "
     << TablePrinter::Fmt(stats.elapsed_seconds, 4) << "s\n";
  if (!stats.simd_kernel.empty()) {
    os << "counting kernel: " << stats.simd_kernel << "\n";
  }
  if (!stats.result_digest.empty()) {
    os << "result digest: " << stats.result_digest << "\n";
  }
  if (metrics != nullptr) RenderLatencies(*metrics, &os);
  if (stats.resources.wall_seconds > 0) {
    os << "\n" << obs::RenderResourceUsage(stats.resources, stats.pool);
  }
  return os.str();
}

std::string DigestCfqResult(const CfqResult& result) {
  std::vector<std::string> rows;
  const auto row = [](const FrequentSet& s, const FrequentSet& t) {
    std::string out;
    for (size_t i = 0; i < s.items.size(); ++i) {
      if (i > 0) out += ' ';
      out += std::to_string(s.items[i]);
    }
    out += ';';
    for (size_t i = 0; i < t.items.size(); ++i) {
      if (i > 0) out += ' ';
      out += std::to_string(t.items[i]);
    }
    out += ';';
    out += std::to_string(s.support);
    out += ';';
    out += std::to_string(t.support);
    return out;
  };
  if (result.cross_product) {
    rows.reserve(result.s_sets.size() * result.t_sets.size());
    for (const FrequentSet& s : result.s_sets) {
      for (const FrequentSet& t : result.t_sets) rows.push_back(row(s, t));
    }
  } else {
    rows.reserve(result.pairs.size());
    for (const auto& [i, j] : result.pairs) {
      rows.push_back(row(result.s_sets[i], result.t_sets[j]));
    }
  }
  return obs::RowsDigestHex(rows);
}

void ExportMetrics(const StrategyStats& stats, obs::MetricsRegistry* registry) {
  ExportSide("s", stats.s, registry);
  ExportSide("t", stats.t, registry);
  registry->Add("pair_checks", stats.pair_checks);
  registry->SetGauge("elapsed_seconds", stats.elapsed_seconds);
  registry->SetGauge("mining_seconds", stats.mining_seconds);
  registry->SetGauge("pair_seconds", stats.pair_seconds);
  ExportResource(stats.resources, registry);
  ExportPoolStats(stats.pool, registry);
  obs::ExportSimdMetrics(registry);
}

}  // namespace cfq
