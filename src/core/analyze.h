// EXPLAIN ANALYZE rendering and metrics export.
//
// RenderExplainAnalyze turns the per-level pruning attribution recorded
// in StrategyStats (plus the V^k series captured by a Tracer) into the
// per-variable tables shown by `cfq_mine --explain` and the shell's
// `analyze` command. Each row obeys the identity
//   generated - (infrequent-subset + 1-var + quasi-succinct + induced
//                + jmax) == counted.
//
// ExportMetrics flattens the same stats into a MetricsRegistry under
// stable dotted names (s.sets_counted, t.level.2.pruned.jmax, ...) for
// the JSONL surface consumed by harnesses and CI.

#ifndef CFQ_CORE_ANALYZE_H_
#define CFQ_CORE_ANALYZE_H_

#include <string>
#include <vector>

#include "core/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cfq {

// Per-level tables for both variables. `events` supplies the V^k column
// (JmaxEvents keyed by source variable and level); pass {} when no
// tracer ran and the column renders as "-". When `metrics` is non-null
// its histograms (per-level gen/count latencies, pair formation, scan
// bytes) are rendered as a count/p50/p90/p99/max table, and the
// resource/pool summary from `stats` is appended.
std::string RenderExplainAnalyze(const StrategyStats& stats,
                                 const std::vector<obs::TraceEvent>& events,
                                 const obs::MetricsRegistry* metrics = nullptr);

// The canonical result digest of a CfqResult: every answer pair is
// rendered as the protocol row "s_items;t_items;s_support;t_support"
// (cross products expanded), the rows are sorted, and the FNV-1a
// digest (obs/digest.h) is returned as 16 hex digits. The same value,
// by construction, as digesting the rows of a served response with no
// row cap — the identity replayed workloads verify against.
std::string DigestCfqResult(const CfqResult& result);

// Flattens StrategyStats into `registry` under dotted names:
//   {s,t}.sets_counted / .constraint_checks / .io.scans / .io.pages
//   {s,t}.level.<k>.generated / .counted / .frequent
//   {s,t}.level.<k>.pruned.<mechanism>
//   pair_checks (counter); elapsed/mining/pair_seconds (gauges);
//   resource.* and pool.* via obs::ExportResource / ExportPoolStats.
void ExportMetrics(const StrategyStats& stats, obs::MetricsRegistry* registry);

}  // namespace cfq

#endif  // CFQ_CORE_ANALYZE_H_
