#include "core/ccc_audit.h"

#include <unordered_set>

#include "constraints/eval.h"
#include "mining/apriori.h"

namespace cfq {

namespace {

using ItemsetSet = std::unordered_set<Itemset, ItemsetHash>;

// All frequent sets of `domain` as a hash set.
ItemsetSet FrequentIndex(const TransactionDb& db, const Itemset& domain,
                         uint64_t min_support) {
  ItemsetSet out;
  for (const FrequentSet& f :
       MineFrequentBruteForce(db, domain, min_support)) {
    out.insert(f.items);
  }
  return out;
}

// True iff every proper non-empty subset of `x` is frequent.
bool AllSubsetsFrequent(const Itemset& x, const ItemsetSet& frequent) {
  if (x.size() <= 1) return true;
  // Frequency is anti-monotone: checking the size-(k-1) subsets
  // suffices (they are in `frequent` only if all their subsets are,
  // recursively, because brute force found them frequent directly —
  // and an infrequent deeper subset implies an infrequent (k-1) one).
  for (size_t drop = 0; drop < x.size(); ++drop) {
    if (frequent.find(WithoutIndex(x, drop)) == frequent.end()) return false;
  }
  return true;
}

CccAudit Compare(const std::vector<Itemset>& counted, uint64_t checks,
                 uint64_t budget, const ItemsetSet& required) {
  CccAudit audit;
  audit.required = required.size();
  audit.counted = counted.size();
  audit.checks = checks;
  audit.check_budget = budget;
  audit.checks_within_budget = checks <= budget;

  ItemsetSet counted_index(counted.begin(), counted.end());
  for (const Itemset& x : counted) {
    if (required.find(x) == required.end()) {
      ++audit.extra_counted;
      audit.counted_only_required = false;
    }
  }
  for (const Itemset& x : required) {
    if (counted_index.find(x) == counted_index.end()) {
      ++audit.missed;
      audit.counted_all_required = false;
    }
  }
  return audit;
}

}  // namespace

Result<CccAudit> AuditOneVar(const TransactionDb& db,
                             const ItemCatalog& catalog, const Itemset& domain,
                             Var var,
                             const std::vector<OneVarConstraint>& constraints,
                             uint64_t min_support,
                             const std::vector<Itemset>& counted,
                             uint64_t checks) {
  const ItemsetSet frequent = FrequentIndex(db, domain, min_support);
  ItemsetSet required;
  Status error;
  ForEachNonEmptySubset(domain, [&](const Itemset& x) {
    if (!error.ok()) return;
    if (!AllSubsetsFrequent(x, frequent)) return;
    auto ok = EvalAll(constraints, var, x, catalog);
    if (!ok.ok()) {
      error = ok.status();
      return;
    }
    if (ok.value()) required.insert(x);
  });
  CFQ_RETURN_IF_ERROR(error);
  return Compare(counted, checks, domain.size(), required);
}

Result<CccAudit> AuditCfqSide(const TransactionDb& db,
                              const ItemCatalog& catalog,
                              const CfqQuery& query, Var side,
                              const std::vector<Itemset>& counted,
                              uint64_t checks) {
  const bool s_side = side == Var::kS;
  const Itemset& domain = s_side ? query.s_domain : query.t_domain;
  const Itemset& other_domain = s_side ? query.t_domain : query.s_domain;
  const uint64_t min_support =
      s_side ? query.min_support_s : query.min_support_t;
  const uint64_t other_support =
      s_side ? query.min_support_t : query.min_support_s;

  const ItemsetSet frequent = FrequentIndex(db, domain, min_support);
  const std::vector<FrequentSet> other_frequent =
      MineFrequentBruteForce(db, other_domain, other_support);

  // Validity per Definitions 3 & 6: 1-var constraints hold, and for the
  // 2-var conjunction a frequent witness on the other side exists.
  auto is_valid = [&](const Itemset& x) -> Result<bool> {
    auto one = EvalAll(query.one_var, side, x, catalog);
    if (!one.ok()) return one.status();
    if (!one.value()) return false;
    if (query.two_var.empty()) return true;
    for (const FrequentSet& w : other_frequent) {
      auto ok = s_side ? EvalAllPairs(query.two_var, x, w.items, catalog)
                       : EvalAllPairs(query.two_var, w.items, x, catalog);
      if (!ok.ok()) return ok.status();
      if (ok.value()) return true;
    }
    return false;
  };

  ItemsetSet required;
  Status error;
  ForEachNonEmptySubset(domain, [&](const Itemset& x) {
    if (!error.ok()) return;
    if (!AllSubsetsFrequent(x, frequent)) return;
    auto ok = is_valid(x);
    if (!ok.ok()) {
      error = ok.status();
      return;
    }
    if (ok.value()) required.insert(x);
  });
  CFQ_RETURN_IF_ERROR(error);
  return Compare(counted, checks, domain.size(), required);
}

}  // namespace cfq
