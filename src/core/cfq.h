// CFQ: constrained frequent set queries — {(S, T) | C}.
//
// A query binds the two set variables to item domains (subsets of the
// catalog's item universe, e.g. "items priced 400..1000"), gives each a
// frequency threshold, and conjoins any number of 1-var and 2-var
// constraints.

#ifndef CFQ_CORE_CFQ_H_
#define CFQ_CORE_CFQ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/itemset.h"
#include "constraints/one_var.h"
#include "constraints/two_var.h"

namespace cfq {

struct CfqQuery {
  Itemset s_domain;
  Itemset t_domain;
  uint64_t min_support_s = 1;  // Absolute transaction counts.
  uint64_t min_support_t = 1;
  std::vector<OneVarConstraint> one_var;
  std::vector<TwoVarConstraint> two_var;
};

// "{(S, T) | freq(S) & freq(T) & ...}" rendering for EXPLAIN output.
std::string ToString(const CfqQuery& query);

// Canonical text form: whitespace-normalized, constants formatted by the
// shortest round-tripping decimal, and the commutative conjuncts sorted
// (freq(S)/freq(T) first, then 1-var, then 2-var constraints, each group
// lexicographically with exact duplicates removed). Two queries that
// differ only in conjunct order, spacing or constant spelling ("100" vs
// "100.0") canonicalize to the same string — the ResultCache key, and
// also what makes trivially-reordered EXPLAINs identical. The item
// domains are NOT part of the text (bind them separately; the serving
// layer keys on the dataset generation instead). The output re-parses
// with ParseCfq and canonicalizes to itself.
std::string CanonicalizeQuery(const CfqQuery& query);

}  // namespace cfq

#endif  // CFQ_CORE_CFQ_H_
