// CFQ execution strategies.
//
// ExecuteOptimized runs the Figure-7 strategy: CAP on both variables
// with reduced / induced / Jmax conditions injected as levels complete
// (dovetailed), then pair formation with exact verification.
//
// ExecuteAprioriPlus and ExecuteCapOneVar are the paper's comparison
// points: the naive generate-and-test baseline and CAP restricted to
// the query's 1-var constraints. ExecuteBruteForce is the exponential
// oracle used by tests.
//
// All strategies return the same set of (S, T) answer pairs; they
// differ in the counting / checking work recorded in StrategyStats.

#ifndef CFQ_CORE_EXECUTOR_H_
#define CFQ_CORE_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/cfq.h"
#include "core/optimizer.h"
#include "data/transaction_db.h"
#include "mining/apriori.h"
#include "mining/ccc_stats.h"
#include "obs/resource.h"

namespace cfq {

struct StrategyStats {
  CccStats s;
  CccStats t;
  uint64_t pair_checks = 0;
  double elapsed_seconds = 0;
  // Phase split: finding the frequent valid S-/T-sets vs forming pairs.
  // The paper's comparisons target the mining phase (Section 6.2: "the
  // first step typically requires a total runtime many orders of
  // magnitude higher"), which holds at disk-bound 1999 scale; on an
  // in-memory substrate pair formation can rival mining, so harnesses
  // report both.
  double mining_seconds = 0;
  double pair_seconds = 0;
  // Per-query process resource deltas (CPU, peak RSS, faults) and the
  // counting pool's busy/idle accounting; see obs/resource.h. The
  // brute-force oracle leaves both zeroed.
  obs::ResourceUsage resources;
  ThreadPoolStats pool;
  // Counting kernel the run dispatched to ("scalar", "avx2", "neon");
  // see common/simd.h. Empty for strategies that never count (oracle).
  std::string simd_kernel;
  // Stable FNV-1a digest of the canonically-ordered answer rows
  // (obs/digest.h), as 16 hex digits. Filled by the surfaces that
  // render rows (cfq_mine, the serving layer) via DigestCfqResult, not
  // by the executor itself; empty when no digest was computed. The
  // cross-build / cross-kernel / cross-backend identity check.
  std::string result_digest;

  // Accumulates another run's stats (e.g. repeated harness iterations):
  // per-side CccStats merge levelwise, counts add, timings add.
  void MergeFrom(const StrategyStats& other) {
    s.MergeFrom(other.s);
    t.MergeFrom(other.t);
    pair_checks += other.pair_checks;
    elapsed_seconds += other.elapsed_seconds;
    mining_seconds += other.mining_seconds;
    pair_seconds += other.pair_seconds;
    resources.MergeFrom(other.resources);
    pool.MergeFrom(other.pool);
    if (simd_kernel.empty()) simd_kernel = other.simd_kernel;
    if (result_digest.empty()) result_digest = other.result_digest;
  }
};

struct CfqResult {
  // Frequent sets surviving each side's (1-var + pushed 2-var)
  // conditions. The optimized strategy's side sets can be strictly
  // smaller than the baselines'; the `pairs` answer is always the same.
  std::vector<FrequentSet> s_sets;
  std::vector<FrequentSet> t_sets;
  // Answer pairs as (index into s_sets, index into t_sets).
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  // True when the query has no 2-var constraint: every (s, t)
  // combination is an answer and `pairs` is left empty.
  bool cross_product = false;
  StrategyStats stats;
};

Result<CfqResult> ExecuteOptimized(TransactionDb* db,
                                   const ItemCatalog& catalog,
                                   const CfqQuery& query,
                                   const PlanOptions& options = {});

// Runs a previously built plan (lets callers EXPLAIN then execute).
Result<CfqResult> ExecutePlan(TransactionDb* db, const ItemCatalog& catalog,
                              const CfqPlan& plan);

Result<CfqResult> ExecuteAprioriPlus(TransactionDb* db,
                                     const ItemCatalog& catalog,
                                     const CfqQuery& query,
                                     const PlanOptions& options = {});

Result<CfqResult> ExecuteCapOneVar(TransactionDb* db,
                                   const ItemCatalog& catalog,
                                   const CfqQuery& query,
                                   const PlanOptions& options = {});

// Exponential-oracle execution over small domains (tests only).
Result<CfqResult> ExecuteBruteForce(const TransactionDb& db,
                                    const ItemCatalog& catalog,
                                    const CfqQuery& query);

// The "full materialization" strategy of Section 6.2: first find all
// VALID sets by checking every subset of the domain against the 1-var
// constraints, then count the valid ones levelwise. It satisfies
// condition (1) of ccc-optimality (it counts only valid sets with
// frequent subsets) but performs up to 2^N constraint checks — the
// paper's motivating counterexample for condition (2). Exponential:
// refuses domains larger than `kFmMaxDomain` items.
inline constexpr size_t kFmMaxDomain = 20;
Result<CfqResult> ExecuteFullMaterialization(TransactionDb* db,
                                             const ItemCatalog& catalog,
                                             const CfqQuery& query);

// Canonicalized answer pairs for cross-strategy comparison in tests.
std::vector<std::pair<Itemset, Itemset>> AnswerPairs(const CfqResult& result);

}  // namespace cfq

#endif  // CFQ_CORE_EXECUTOR_H_
