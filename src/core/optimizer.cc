#include "core/optimizer.h"

#include <sstream>

#include "common/thread_pool.h"
#include "constraints/classify.h"
#include "core/reduction.h"

namespace cfq {

namespace {

Status ValidateQuery(const CfqQuery& query, const ItemCatalog* catalog) {
  if (query.s_domain.empty() || query.t_domain.empty()) {
    return Status::InvalidArgument("S and T domains must be non-empty");
  }
  if (query.min_support_s == 0 || query.min_support_t == 0) {
    return Status::InvalidArgument("support thresholds must be positive");
  }
  (void)catalog;  // Attribute validation happens at execution time.
  return Status::Ok();
}

}  // namespace

Result<CfqPlan> BuildPlan(const CfqQuery& query, const PlanOptions& options) {
  CFQ_RETURN_IF_ERROR(ValidateQuery(query, nullptr));
  CfqPlan plan;
  plan.query = query;
  plan.options = options;

  for (const TwoVarConstraint& c : query.two_var) {
    TwoVarRoute route;
    route.constraint = c;
    const TwoVarProperties props = Classify(c, options.nonnegative);
    if (props.quasi_succinct) {
      route.quasi_succinct = options.use_quasi_succinct;
    } else {
      if (options.use_induced) {
        route.induced = InduceWeaker(c, options.nonnegative);
        route.loose_reduction = true;
      }
      if (options.use_jmax) {
        if (const auto* a = std::get_if<AggConstraint2>(&c)) {
          // A sum() on the T side bounded from above prunes S (the
          // V^k series bounds achievable sum(T.B)); mirrored for S.
          const bool le = a->cmp == CmpOp::kLe || a->cmp == CmpOp::kLt ||
                          a->cmp == CmpOp::kEq;
          const bool ge = a->cmp == CmpOp::kGe || a->cmp == CmpOp::kGt ||
                          a->cmp == CmpOp::kEq;
          if (a->agg_t == AggFn::kSum && le) {
            route.jmax_prunes_s = true;
            route.jmax_s_bound_anti_monotone =
                a->agg_s == AggFn::kSum && options.nonnegative;
          }
          if (a->agg_s == AggFn::kSum && ge) {
            route.jmax_prunes_t = true;
            route.jmax_t_bound_anti_monotone =
                a->agg_t == AggFn::kSum && options.nonnegative;
          }
        }
      }
    }
    plan.routes.push_back(std::move(route));
  }
  return plan;
}

std::string ExplainPlan(const CfqPlan& plan) {
  std::ostringstream os;
  os << "CFQ plan for " << ToString(plan.query) << "\n";
  os << "  counting backend: "
     << (plan.options.counter == CounterKind::kBitmap ? "vertical bitmaps"
                                                      : "horizontal hash")
     << ", dovetailed: " << (plan.options.dovetail ? "yes" : "no")
     << ", threads: ";
  if (plan.options.threads == 0) {
    os << "auto (" << ThreadPool::HardwareThreads() << ")";
  } else {
    os << plan.options.threads;
  }
  os << "\n";

  size_t n_s = 0, n_t = 0;
  for (const OneVarConstraint& c : plan.query.one_var) {
    (c.var == Var::kS ? n_s : n_t)++;
  }
  os << "  1-var constraints pushed into CAP: " << n_s << " on S, " << n_t
     << " on T\n";
  for (const OneVarConstraint& c : plan.query.one_var) {
    const OneVarProperties p = Classify(c, plan.options.nonnegative);
    os << "    " << ToString(c) << "  [succinct=" << (p.succinct ? "y" : "n")
       << " anti-monotone=" << (p.anti_monotone ? "y" : "n") << "]\n";
  }

  for (const TwoVarRoute& r : plan.routes) {
    os << "  2-var " << ToString(r.constraint) << ":\n";
    if (r.quasi_succinct) {
      os << "    quasi-succinct: reduce to succinct 1-var conditions after "
            "level 1 (Sec. 4)\n";
    } else if (std::holds_alternative<DomainConstraint2>(r.constraint) ||
               Classify(r.constraint, plan.options.nonnegative)
                   .quasi_succinct) {
      os << "    quasi-succinct reduction disabled; verify at pair "
            "formation only\n";
    } else {
      for (const TwoVarConstraint& w : r.induced) {
        os << "    induced weaker constraint " << ToString(w)
           << " (Sec. 5.1), reduced after level 1\n";
      }
      if (r.loose_reduction) {
        os << "    loose level-1 bounds from L1 aggregates (Sec. 5.1)\n";
      }
      if (r.jmax_prunes_s) {
        os << "    Jmax V^k series from the T lattice bounds "
           << AggFnName(std::get<AggConstraint2>(r.constraint).agg_s)
           << "(S) (Sec. 5.2"
           << (r.jmax_s_bound_anti_monotone ? ", anti-monotone prune"
                                            : ", output filter")
           << ")\n";
      }
      if (r.jmax_prunes_t) {
        os << "    Jmax V^k series from the S lattice bounds "
           << AggFnName(std::get<AggConstraint2>(r.constraint).agg_t)
           << "(T) (Sec. 5.2"
           << (r.jmax_t_bound_anti_monotone ? ", anti-monotone prune"
                                            : ", output filter")
           << ")\n";
      }
    }
    os << "    verified on every candidate pair at pair formation\n";
  }
  return os.str();
}

}  // namespace cfq
