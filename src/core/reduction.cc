#include "core/reduction.h"

#include <algorithm>
#include <cmath>

#include "constraints/eval.h"
#include "obs/trace.h"

namespace cfq {

namespace {

Status ValidateAttr(const std::string& attr, const ItemCatalog& catalog) {
  if (!catalog.HasAttr(attr)) {
    return Status::NotFound("unknown attribute '" + attr + "'");
  }
  return Status::Ok();
}

// Distinct attribute values over the frequent singletons.
std::vector<AttrValue> DistinctValues(const std::string& attr,
                                      const Itemset& l1,
                                      const ItemCatalog& catalog) {
  auto values = ProjectSet(attr, l1, catalog);
  return values.ok() ? values.value() : std::vector<AttrValue>{};
}

// --- Domain-constraint reduction (Figure 2 rows + exact variants). ------

// Builds C1(S) for `cmp` where the S side is `attr_x` (values X = CS.A)
// and `lvals` are the distinct values on the other side's frequent
// singletons (L = L1T.B). Symmetric for C2(T) with mirrored `cmp`.
void ReduceDomainSide(Var var, const std::string& attr_x, SetCmp cmp,
                      const std::vector<AttrValue>& lvals, ReducedSide* out) {
  switch (cmp) {
    case SetCmp::kDisjoint:
      // Lemmas 2 & 3: valid iff X does not contain all of L.
      out->constraints.push_back(
          MakeDomain1(var, attr_x, SetCmp::kNotSuperset, lvals));
      break;
    case SetCmp::kIntersects:
      out->constraints.push_back(
          MakeDomain1(var, attr_x, SetCmp::kIntersects, lvals));
      break;
    case SetCmp::kSubset:
      // X ⊆ T.B for some frequent T requires X ⊆ L. Sound; tight only
      // when a single frequent witness set covers X (not guaranteed for
      // |X| >= 2), hence the paper-caveat flag.
      out->constraints.push_back(
          MakeDomain1(var, attr_x, SetCmp::kSubset, lvals));
      out->tight = false;
      break;
    case SetCmp::kNotSubset:
      // Exact form of the paper's "(CS ≠ ∅)" entry: with >= 2 distinct
      // values on the other side a singleton witness always exists;
      // with exactly one value {b}, X must not be {b}, i.e. X ⊄ {b}.
      if (lvals.size() == 1) {
        out->constraints.push_back(
            MakeDomain1(var, attr_x, SetCmp::kNotSubset, lvals));
      }
      // lvals.size() >= 2: trivially satisfiable by any non-empty X.
      break;
    case SetCmp::kSuperset:
      // X ⊇ T.B holds for the singleton {t} iff t.B ∈ X.
      out->constraints.push_back(
          MakeDomain1(var, attr_x, SetCmp::kIntersects, lvals));
      break;
    case SetCmp::kNotSuperset:
      // X ⊉ {t.B} for some frequent singleton iff some L value is
      // missing from X.
      out->constraints.push_back(
          MakeDomain1(var, attr_x, SetCmp::kNotSuperset, lvals));
      break;
    case SetCmp::kEqual:
      out->constraints.push_back(
          MakeDomain1(var, attr_x, SetCmp::kSubset, lvals));
      out->tight = false;  // Needs a frequent multi-item witness.
      break;
    case SetCmp::kNotEqual:
      // With one distinct value {b} on the other side every frequent
      // set projects to {b}; X must differ, i.e. contain a non-b value.
      if (lvals.size() == 1) {
        out->constraints.push_back(
            MakeDomain1(var, attr_x, SetCmp::kNotSubset, lvals));
      }
      break;
  }
}

// --- Aggregate-constraint reduction (Figure 3 generalized). -------------

// Builds the condition "∃ achievable v with agg_x(X) cmp v" where the
// achievable values of the other side lie in `other`.
void ReduceAggSide(Var var, AggFn agg_x, const std::string& attr_x, CmpOp cmp,
                   const AchievableInterval& other, ReducedSide* out) {
  switch (cmp) {
    case CmpOp::kLe:
      out->constraints.push_back(
          MakeAgg1(var, agg_x, attr_x, CmpOp::kLe, other.hi));
      out->tight = out->tight && other.hi_tight;
      break;
    case CmpOp::kLt:
      out->constraints.push_back(
          MakeAgg1(var, agg_x, attr_x, CmpOp::kLt, other.hi));
      out->tight = out->tight && other.hi_tight;
      break;
    case CmpOp::kGe:
      out->constraints.push_back(
          MakeAgg1(var, agg_x, attr_x, CmpOp::kGe, other.lo));
      out->tight = out->tight && other.lo_tight;
      break;
    case CmpOp::kGt:
      out->constraints.push_back(
          MakeAgg1(var, agg_x, attr_x, CmpOp::kGt, other.lo));
      out->tight = out->tight && other.lo_tight;
      break;
    case CmpOp::kEq:
      out->constraints.push_back(
          MakeAgg1(var, agg_x, attr_x, CmpOp::kGe, other.lo));
      out->constraints.push_back(
          MakeAgg1(var, agg_x, attr_x, CmpOp::kLe, other.hi));
      out->tight = false;
      break;
    case CmpOp::kNe:
      if (other.lo == other.hi && other.lo_tight && other.hi_tight) {
        // Every frequent set on the other side has the same aggregate.
        out->constraints.push_back(
            MakeAgg1(var, agg_x, attr_x, CmpOp::kNe, other.lo));
      } else if (!(other.lo < other.hi && other.lo_tight &&
                   other.hi_tight)) {
        // Cannot prove two distinct achievable values: stay trivial
        // (sound) but not tight.
        out->tight = false;
      }
      break;
  }
}

}  // namespace

Result<AchievableInterval> AchievableAgg(AggFn agg, const std::string& attr,
                                         const Itemset& l1,
                                         const ItemCatalog& catalog,
                                         bool nonnegative) {
  CFQ_RETURN_IF_ERROR(ValidateAttr(attr, catalog));
  AchievableInterval out;
  if (l1.empty()) return out;
  out.empty = false;
  auto projected = catalog.Project(attr, l1);
  if (!projected.ok()) return projected.status();
  const std::vector<AttrValue>& vals = projected.value();
  const double vmin = *std::min_element(vals.begin(), vals.end());
  const double vmax = *std::max_element(vals.begin(), vals.end());
  switch (agg) {
    case AggFn::kMin:
    case AggFn::kMax:
    case AggFn::kAvg:
      // Singletons achieve every L1 value, and any frequent set's
      // min/max/avg lies within [vmin, vmax].
      out.lo = vmin;
      out.hi = vmax;
      out.lo_tight = true;
      out.hi_tight = true;
      break;
    case AggFn::kSum: {
      if (nonnegative) {
        // sum >= its largest element >= vmin; the singleton of the
        // cheapest item achieves vmin. Upper end: sum over all of L1
        // (Section 5.1's loose bound; Jmax later tightens it).
        out.lo = vmin;
        out.lo_tight = true;
        double total = 0;
        for (AttrValue v : vals) total += v;
        out.hi = total;
        out.hi_tight = false;
      } else {
        double neg = 0, pos = 0;
        for (AttrValue v : vals) (v < 0 ? neg : pos) += v;
        out.lo = std::min(neg, vmin);
        out.hi = std::max(pos, vmax);
        out.lo_tight = false;
        out.hi_tight = false;
      }
      break;
    }
    case AggFn::kCount: {
      out.lo = 1;
      out.lo_tight = true;  // Any frequent singleton.
      std::vector<AttrValue> distinct = vals;
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      out.hi = static_cast<double>(distinct.size());
      out.hi_tight = false;
      break;
    }
  }
  return out;
}

static Result<Reduction> ReduceTwoVarImpl(const TwoVarConstraint& c,
                                          const Itemset& l1_s,
                                          const Itemset& l1_t,
                                          const ItemCatalog& catalog,
                                          bool nonnegative) {
  Reduction out;
  // No frequent set on one side means no valid set on the other
  // (Definition 3 requires a frequent witness).
  if (l1_t.empty()) out.s.satisfiable = false;
  if (l1_s.empty()) out.t.satisfiable = false;

  if (const auto* d = std::get_if<DomainConstraint2>(&c)) {
    CFQ_RETURN_IF_ERROR(ValidateAttr(d->attr_s, catalog));
    CFQ_RETURN_IF_ERROR(ValidateAttr(d->attr_t, catalog));
    const std::vector<AttrValue> ltb = DistinctValues(d->attr_t, l1_t, catalog);
    const std::vector<AttrValue> lsa = DistinctValues(d->attr_s, l1_s, catalog);
    if (out.s.satisfiable) {
      ReduceDomainSide(Var::kS, d->attr_s, d->cmp, ltb, &out.s);
    }
    if (out.t.satisfiable) {
      // C(S, T) reads X cmp Y with X = S.A; from T's perspective the
      // comparison mirrors: Y cmp' X with subset/superset swapped.
      SetCmp mirrored = d->cmp;
      switch (d->cmp) {
        case SetCmp::kSubset:
          mirrored = SetCmp::kSuperset;
          break;
        case SetCmp::kSuperset:
          mirrored = SetCmp::kSubset;
          break;
        case SetCmp::kNotSubset:
          mirrored = SetCmp::kNotSuperset;
          break;
        case SetCmp::kNotSuperset:
          mirrored = SetCmp::kNotSubset;
          break;
        default:
          break;  // Symmetric comparisons.
      }
      ReduceDomainSide(Var::kT, d->attr_t, mirrored, lsa, &out.t);
    }
    return out;
  }

  const auto& a = std::get<AggConstraint2>(c);
  CFQ_RETURN_IF_ERROR(ValidateAttr(a.attr_s, catalog));
  CFQ_RETURN_IF_ERROR(ValidateAttr(a.attr_t, catalog));
  if (out.s.satisfiable) {
    auto other = AchievableAgg(a.agg_t, a.attr_t, l1_t, catalog, nonnegative);
    if (!other.ok()) return other.status();
    ReduceAggSide(Var::kS, a.agg_s, a.attr_s, a.cmp, other.value(), &out.s);
  }
  if (out.t.satisfiable) {
    auto other = AchievableAgg(a.agg_s, a.attr_s, l1_s, catalog, nonnegative);
    if (!other.ok()) return other.status();
    ReduceAggSide(Var::kT, a.agg_t, a.attr_t, MirrorCmp(a.cmp), other.value(),
                  &out.t);
  }
  return out;
}

Result<Reduction> ReduceTwoVar(const TwoVarConstraint& c, const Itemset& l1_s,
                               const Itemset& l1_t, const ItemCatalog& catalog,
                               bool nonnegative, obs::Tracer* tracer) {
  obs::TraceSpan span(tracer, "reduce_two_var");
  auto out = ReduceTwoVarImpl(c, l1_s, l1_t, catalog, nonnegative);
  if (tracer != nullptr && out.ok()) {
    if (!out.value().s.satisfiable) tracer->Instant("reduction/unsatisfiable_S");
    if (!out.value().t.satisfiable) tracer->Instant("reduction/unsatisfiable_T");
  }
  return out;
}

std::vector<TwoVarConstraint> InduceWeaker(const TwoVarConstraint& c,
                                           bool nonnegative) {
  const auto* a = std::get_if<AggConstraint2>(&c);
  if (a == nullptr) return {};

  const bool s_needs = a->agg_s == AggFn::kSum || a->agg_s == AggFn::kAvg;
  const bool t_needs = a->agg_t == AggFn::kSum || a->agg_t == AggFn::kAvg;
  if (!s_needs && !t_needs) return {};  // Already min/max (or count).

  // Rewrites an aggregate so the original constraint implies the new
  // one, for the "lhs cmp rhs" direction given by `le` (true: <=/<).
  // Returns false when no implied min/max rewrite exists.
  auto rewrite = [&](AggFn agg, bool lhs, bool le,
                     AggFn* out_agg) -> bool {
    switch (agg) {
      case AggFn::kMin:
      case AggFn::kMax:
        *out_agg = agg;
        return true;
      case AggFn::kAvg:
        // min <= avg <= max: shrinking lhs / growing rhs weakens.
        *out_agg = (lhs == le) ? AggFn::kMin : AggFn::kMax;
        return true;
      case AggFn::kSum:
        // On a nonnegative domain max <= sum; only the "shrink the
        // large side" direction yields a weaker constraint.
        if (!nonnegative) return false;
        if (lhs == le) {
          *out_agg = AggFn::kMax;  // sum(lhs) <= x  =>  max(lhs) <= x.
          return true;
        }
        return false;
      case AggFn::kCount:
        return false;
    }
    return false;
  };

  auto induce_direction = [&](CmpOp cmp) -> std::optional<TwoVarConstraint> {
    const bool le = cmp == CmpOp::kLe || cmp == CmpOp::kLt;
    AggFn new_s = a->agg_s;
    AggFn new_t = a->agg_t;
    if (!rewrite(a->agg_s, /*lhs=*/true, le, &new_s)) return std::nullopt;
    if (!rewrite(a->agg_t, /*lhs=*/false, le, &new_t)) return std::nullopt;
    return MakeAgg2(new_s, a->attr_s, cmp, new_t, a->attr_t);
  };

  std::vector<TwoVarConstraint> out;
  switch (a->cmp) {
    case CmpOp::kLe:
    case CmpOp::kLt:
    case CmpOp::kGe:
    case CmpOp::kGt:
      if (auto w = induce_direction(a->cmp)) out.push_back(*w);
      break;
    case CmpOp::kEq:
      // agg1 = agg2 implies both agg1 <= agg2 and agg1 >= agg2.
      if (auto w = induce_direction(CmpOp::kLe)) out.push_back(*w);
      if (auto w = induce_direction(CmpOp::kGe)) out.push_back(*w);
      break;
    case CmpOp::kNe:
      break;  // No useful induced form.
  }
  return out;
}

}  // namespace cfq
