// Horizontal hash-based support counting (see counter.h).

#ifndef CFQ_MINING_HASH_COUNTER_H_
#define CFQ_MINING_HASH_COUNTER_H_

#include <vector>

#include "mining/counter.h"

namespace cfq {

// Counts several candidate batches (each of uniform size, but sizes may
// differ across batches) in ONE pass over the transaction file — the
// shared scan of dovetailed execution (Section 5.2). Returns one
// support vector per batch, aligned with `batches`. Accounts exactly
// one scan in `stats` (sets_counted and counted-log accounting is the
// caller's business, since the batches belong to different lattices).
// With a pool the single scan is sharded across threads; supports are
// identical at every thread count.
std::vector<std::vector<uint64_t>> CountBatchesSharedScan(
    const TransactionDb& db,
    const std::vector<const std::vector<Itemset>*>& batches, CccStats* stats,
    ThreadPool* pool = nullptr);

class HashCounter : public SupportCounter {
 public:
  // Does not take ownership; `db` and `pool` must outlive the counter.
  explicit HashCounter(const TransactionDb* db, ThreadPool* pool = nullptr)
      : db_(db), pool_(pool) {}

  std::vector<uint64_t> Count(const std::vector<Itemset>& candidates,
                              CccStats* stats) override;

 private:
  const TransactionDb* db_;
  ThreadPool* pool_;
};

}  // namespace cfq

#endif  // CFQ_MINING_HASH_COUNTER_H_
