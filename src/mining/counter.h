// Support-counting backends.
//
// Counting dominates the cost of frequent-set mining; the library ships
// two interchangeable exact backends:
//   * HashCounter  — horizontal: one pass over the transactions per
//     level, enumerating candidate-sized subsets (the classic layout the
//     paper's SPARC-10 experiments used, with per-level I/O scans).
//   * BitmapCounter — vertical: per-item TID bitmaps; a candidate's
//     support is a word-parallel AND + popcount (pays one scan up front
//     to build the index).
// Both produce identical supports; tests cross-check them.

#ifndef CFQ_MINING_COUNTER_H_
#define CFQ_MINING_COUNTER_H_

#include <memory>
#include <vector>

#include "common/itemset.h"
#include "data/transaction_db.h"
#include "mining/ccc_stats.h"

namespace cfq {

enum class CounterKind {
  kHash,      // Horizontal, per-transaction subset enumeration.
  kHashTree,  // Horizontal, classic Apriori hash tree.
  kBitmap,    // Vertical TID bitmaps.
};

class SupportCounter {
 public:
  virtual ~SupportCounter() = default;

  // Counts the support of each candidate (all of equal size k >= 1,
  // canonical). Returns supports aligned with `candidates` and accounts
  // the work in `stats` (sets_counted, io).
  virtual std::vector<uint64_t> Count(const std::vector<Itemset>& candidates,
                                      CccStats* stats) = 0;
};

// Factory. The BitmapCounter builds the vertical index on first use if
// the database does not have one yet.
std::unique_ptr<SupportCounter> MakeCounter(CounterKind kind,
                                            TransactionDb* db);

}  // namespace cfq

#endif  // CFQ_MINING_COUNTER_H_
