// Support-counting backends.
//
// Counting dominates the cost of frequent-set mining; the library ships
// three interchangeable exact backends:
//   * HashCounter  — horizontal: one pass over the transactions per
//     level, enumerating candidate-sized subsets (the classic layout the
//     paper's SPARC-10 experiments used, with per-level I/O scans).
//   * HashTreeCounter — horizontal, classic Apriori hash tree.
//   * BitmapCounter — vertical: per-item TID bitmaps; a candidate's
//     support is a word-parallel AND + popcount (pays one scan up front
//     to build the index).
// All produce identical supports; tests cross-check them.
//
// Every backend counts shard-parallel when handed a ThreadPool: the
// horizontal counters split the transaction range into per-thread
// shards with thread-local support arrays merged in shard order, the
// vertical counter splits the candidate range. Shard boundaries depend
// only on the input sizes, so supports are bit-identical at every
// thread count. A null pool (or a one-thread pool) counts serially.

#ifndef CFQ_MINING_COUNTER_H_
#define CFQ_MINING_COUNTER_H_

#include <memory>
#include <vector>

#include "common/itemset.h"
#include "data/transaction_db.h"
#include "mining/ccc_stats.h"

namespace cfq {

class ThreadPool;

enum class CounterKind {
  kHash,      // Horizontal, per-transaction subset enumeration.
  kHashTree,  // Horizontal, classic Apriori hash tree.
  kBitmap,    // Vertical TID bitmaps.
};

class SupportCounter {
 public:
  virtual ~SupportCounter() = default;

  // Counts the support of each candidate (all of equal size k >= 1,
  // canonical). Returns supports aligned with `candidates` and accounts
  // the work in `stats` (sets_counted, io).
  virtual std::vector<uint64_t> Count(const std::vector<Itemset>& candidates,
                                      CccStats* stats) = 0;
};

// Factory. `pool` (not owned, may be null) enables sharded counting.
// Constructing a BitmapCounter eagerly builds the database's vertical
// index if it is missing — construction is the single-threaded setup
// point, so concurrent Count calls never race on the index.
std::unique_ptr<SupportCounter> MakeCounter(CounterKind kind,
                                            TransactionDb* db,
                                            ThreadPool* pool = nullptr);

}  // namespace cfq

#endif  // CFQ_MINING_COUNTER_H_
