// Apriori candidate generation.

#ifndef CFQ_MINING_CANDIDATE_GEN_H_
#define CFQ_MINING_CANDIDATE_GEN_H_

#include <cstdint>
#include <vector>

#include "common/itemset.h"

namespace cfq {

// Classic Apriori-gen: joins lexicographically sorted frequent k-sets
// sharing a k-1 prefix, then prunes candidates having any infrequent
// k-subset. `frequent_k` must be sorted and of uniform size. When
// `pruned_subset` is non-null it is incremented by the number of joined
// sets discarded by the subset-frequency prune (the infrequent-subset
// share of the pruning-attribution tables).
std::vector<Itemset> GenerateCandidatesJoinPrune(
    const std::vector<Itemset>& frequent_k,
    uint64_t* pruned_subset = nullptr);

// Extension-based generation used by CAP when mandatory-group succinct
// constraints reshape the lattice (a valid set's lexicographic-prefix
// subsets need not be valid, so the classic join is incomplete).
// Produces every set `f ∪ {i}` with f in `base_k` (uniform size k) and
// i a frequent singleton from `extension_items`, deduplicated and
// sorted. The caller applies its own pruning.
std::vector<Itemset> GenerateCandidatesExtend(
    const std::vector<Itemset>& base_k, const Itemset& extension_items);

}  // namespace cfq

#endif  // CFQ_MINING_CANDIDATE_GEN_H_
