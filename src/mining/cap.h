// CAP: Constrained APriori (Ng, Lakshmanan, Han, Pang — SIGMOD'98).
//
// CAP pushes 1-var constraints into the levelwise computation:
//   * Exact succinct forms (mgf.h) restrict the item universe
//     ("allowed") and reshape candidate generation around mandatory
//     groups, operating generate-only — the original constraint is never
//     re-checked on multi-item sets (ccc condition 2).
//   * Anti-monotone, non-succinct constraints (e.g. sum(S.A) <= c on a
//     nonnegative domain) drop candidates before support counting.
//   * Everything else is verified on the mined frequent sets (they
//     cannot prune the lattice soundly).
//
// The paper's Figure-7 optimizer reuses CAP for the reduced 1-var
// constraints of quasi-succinct 2-var constraints, and hooks into each
// level for the Jmax dynamic pruning of Section 5.2; `CapLevelHooks`
// provides those extension points.

#ifndef CFQ_MINING_CAP_H_
#define CFQ_MINING_CAP_H_

#include <vector>

#include "common/cancellation.h"
#include "common/itemset.h"
#include "common/result.h"
#include "constraints/one_var.h"
#include "data/item_catalog.h"
#include "mining/apriori.h"

namespace cfq {

struct CapOptions {
  CounterKind counter = CounterKind::kBitmap;
  size_t max_level = 0;     // 0 = unlimited.
  bool nonnegative = true;  // Enables the sum <= c pushdowns.
  // Shard-parallel counting pool (thread_pool.h). Not owned; null
  // counts serially. Supports are identical either way.
  ThreadPool* pool = nullptr;
  // Ablation toggles: disable individual pushdowns to measure their
  // contribution. With both off CAP degenerates to Apriori+.
  bool push_succinct = true;
  bool push_anti_monotone = true;
  // Optional evidence stream for the ccc auditor: every support-counted
  // candidate is appended. Not owned; may be null.
  std::vector<Itemset>* counted_log = nullptr;
  // Optional tracing sink (obs/trace.h): per-level pruning attribution,
  // count spans and scan events. Not owned; null disables tracing.
  obs::Tracer* tracer = nullptr;
  // Optional metrics sink (obs/metrics.h): per-level gen/count latency
  // histograms and per-scan bytes. Not owned; null disables recording.
  obs::MetricsRegistry* metrics = nullptr;
  // Optional cooperative cancellation token, polled before each level.
  // Not owned; null never cancels.
  const CancelToken* cancel = nullptr;
};

// Per-level extension points used by the dovetailed CFQ executor.
class CapLevelHooks {
 public:
  virtual ~CapLevelHooks() = default;

  // Invoked before counting level `level` candidates. May erase
  // candidates; only sound (anti-monotone) filters may do so.
  virtual void FilterCandidates(size_t level,
                                std::vector<Itemset>* candidates) {
    (void)level;
    (void)candidates;
  }

  // Invoked after `level` completes with every frequent set of that
  // level (valid or not).
  virtual void OnLevelComplete(size_t level,
                               const std::vector<FrequentSet>& frequent) {
    (void)level;
    (void)frequent;
  }
};

struct CapResult {
  // Frequent sets from `domain` satisfying every given 1-var constraint.
  std::vector<FrequentSet> valid_frequent;
  CccStats stats;
};

// Runs CAP for variable `var` over `domain`. Constraints bound to the
// other variable are ignored. Fails if a constraint references an
// unknown attribute.
Result<CapResult> RunCap(TransactionDb* db, const ItemCatalog& catalog,
                         const Itemset& domain, Var var,
                         const std::vector<OneVarConstraint>& constraints,
                         uint64_t min_support, const CapOptions& options = {},
                         CapLevelHooks* hooks = nullptr);

}  // namespace cfq

#endif  // CFQ_MINING_CAP_H_
