// ConstrainedLattice: stepwise CAP.
//
// The CFQ optimizer needs more control than a run-to-completion miner:
//   * quasi-succinct 2-var constraints decouple into 1-var constraints
//     only after level 1 has been counted (their constants come from
//     L1^S / L1^T), so constraints must be injectable mid-run;
//   * the Jmax iterative pruning of Section 5.2 dovetails the S and T
//     lattices, feeding a decreasing bound V^k from one into the other
//     between levels.
//
// ConstrainedLattice exposes one CAP lattice as a steppable object:
// constraints can be added after any level, and dynamic anti-monotone
// bounds can be tightened between steps. RunCap (cap.h) is a thin
// wrapper that steps a lattice to completion.

#ifndef CFQ_MINING_LATTICE_H_
#define CFQ_MINING_LATTICE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/itemset.h"
#include "common/result.h"
#include "constraints/mgf.h"
#include "constraints/one_var.h"
#include "data/item_catalog.h"
#include "mining/apriori.h"
#include "mining/cap.h"
#include "obs/mechanism.h"

namespace cfq {

class ConstrainedLattice {
 public:
  // `db` and `catalog` must outlive the lattice. Fails on unknown
  // attributes or zero support.
  static Result<std::unique_ptr<ConstrainedLattice>> Create(
      TransactionDb* db, const ItemCatalog& catalog, const Itemset& domain,
      Var var, std::vector<OneVarConstraint> constraints,
      uint64_t min_support, const CapOptions& options = {});

  // Counts the next level. Returns false (and does nothing) once the
  // lattice is exhausted or max_level was reached.
  bool Step();

  // Split-phase stepping, used by the executor's shared-scan dovetail
  // path (Section 5.2: "dovetailing ... allows for sharing of scans on
  // the transaction database"): PrepareLevel() applies the dynamic
  // prunes and exposes the candidates to count; the caller counts them
  // (possibly in one scan together with the other lattice's batch) and
  // hands the supports to CompleteLevel(), which also does the
  // sets_counted / counted-log accounting. PrepareLevel() returns an
  // empty batch when the lattice is done.
  const std::vector<Itemset>& PrepareLevel();
  void CompleteLevel(const std::vector<uint64_t>& supports);
  // Attributes symbolic I/O performed on this lattice's behalf by an
  // external (shared-scan) counting pass.
  void AccountIo(uint64_t scans, uint64_t pages) {
    stats_.io.scans += scans;
    stats_.io.pages_read += pages;
  }

  bool done() const { return done_; }
  // Number of completed levels.
  size_t level() const { return level_; }

  // Frequent sets (valid or not) found by the last Step().
  const std::vector<FrequentSet>& last_level_frequent() const {
    return last_level_frequent_;
  }
  // All frequent sets satisfying every constraint seen so far.
  const std::vector<FrequentSet>& valid_frequent() const {
    return valid_frequent_;
  }
  const CccStats& stats() const { return stats_; }

  // Injects additional 1-var constraints (bound to this lattice's
  // variable; others are ignored). Already-collected valid sets and the
  // generation basis are re-filtered, so this is sound at any point.
  // `mechanism` attributes any candidates these constraints prune
  // (kOneVar for the query's own constraints, kQuasiSuccinct / kInduced
  // for reductions injected by the executor).
  Status AddConstraints(const std::vector<OneVarConstraint>& more,
                        obs::Mechanism mechanism = obs::Mechanism::kOneVar);

  // Installs or tightens a dynamic bound agg(X.attr) <= bound. When
  // `prunable` (sum on a nonnegative domain: anti-monotone), failing
  // candidates are dropped before counting; otherwise the bound only
  // filters the validity of mined sets. Bounds may only decrease;
  // attempts to raise an existing bound are ignored.
  void SetDynamicBound(AggFn agg, const std::string& attr, double bound,
                       bool prunable);

 private:
  ConstrainedLattice(TransactionDb* db, const ItemCatalog& catalog,
                     Itemset domain, Var var, uint64_t min_support,
                     const CapOptions& options);

  Status Init(std::vector<OneVarConstraint> constraints);
  Status DispatchConstraint(const OneVarConstraint& c,
                            obs::Mechanism mechanism);
  void RefilterState(obs::Mechanism mechanism);
  void RebuildMasks();
  bool WithinAllowed(const Itemset& x) const;
  // Mechanism that disallowed (the first disallowed item of) `x`.
  obs::Mechanism AllowedKillerOf(const Itemset& x) const;
  bool SatisfiesFormFast(const Itemset& x) const;
  void CompleteLevelInternal(const std::vector<uint64_t>& supports,
                             bool account_counted);
  bool PassesCandidateFilters(const Itemset& x,
                              obs::Mechanism* killer = nullptr);
  bool PassesDynamicPrune(const Itemset& x);
  bool IsValidOutput(const Itemset& x);
  std::vector<Itemset> GenerateNext();

  struct DynamicBound {
    AggFn agg;
    std::string attr;
    double bound;
    bool prunable;
  };

  TransactionDb* db_;
  const ItemCatalog& catalog_;
  Itemset domain_;
  Var var_;
  uint64_t min_support_;
  CapOptions options_;

  std::unique_ptr<SupportCounter> counter_;
  // Constraints stored stably so dispatch pointers remain valid. Each
  // candidate filter carries the mechanism that injected it so every
  // pruned candidate can be attributed.
  std::vector<std::unique_ptr<OneVarConstraint>> owned_constraints_;
  std::vector<std::pair<const OneVarConstraint*, obs::Mechanism>>
      candidate_filters_;
  std::vector<const OneVarConstraint*> output_filters_;
  SuccinctForm form_;
  // O(1) membership views of form_: one byte per catalog item. Rebuilt
  // whenever form_ changes; they turn the subset/intersection tests on
  // the hot candidate paths into per-item lookups.
  std::vector<char> allowed_mask_;
  std::vector<std::vector<char>> group_masks_;
  // Index into form_.groups of the group driving candidate generation,
  // or -1 when generation is the classic join+prune.
  int structural_group_ = -1;
  // Per catalog item: mechanism of the succinct form that disallowed it
  // (meaningful only where allowed_mask_ is 0).
  std::vector<uint8_t> allowed_killer_;
  std::vector<DynamicBound> dynamic_bounds_;
  // Attribution for the level whose candidates are currently pending:
  // how many were generated for it and who killed the ones discarded
  // before counting. Folded into stats_/LevelEvent when the level
  // completes.
  uint64_t cur_generated_ = 0;
  obs::PruneCounts cur_prunes_;

  std::vector<Itemset> pending_candidates_;
  std::vector<Itemset> generation_basis_;
  Itemset frequent_singletons_;
  std::vector<FrequentSet> last_level_frequent_;
  std::vector<FrequentSet> valid_frequent_;
  CccStats stats_;
  size_t level_ = 0;
  bool done_ = false;
};

}  // namespace cfq

#endif  // CFQ_MINING_LATTICE_H_
