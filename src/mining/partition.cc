#include "mining/partition.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

#include "common/rng.h"
#include "mining/candidate_gen.h"
#include "mining/hash_counter.h"

namespace cfq {

namespace {

// Counts `candidates` (mixed sizes allowed) against `db`, batching by
// size for the uniform-size counter API. With a horizontal backend the
// batches share a single scan (the verification pass of the two-pass
// algorithms is one pass over the file, whatever the candidate sizes).
std::vector<uint64_t> CountMixed(TransactionDb* db,
                                 const std::vector<Itemset>& candidates,
                                 CounterKind kind, CccStats* stats) {
  std::map<size_t, std::vector<size_t>> by_size;  // size -> indices.
  for (size_t i = 0; i < candidates.size(); ++i) {
    by_size[candidates[i].size()].push_back(i);
  }
  std::vector<std::vector<Itemset>> batches;
  batches.reserve(by_size.size());
  for (const auto& [size, indices] : by_size) {
    (void)size;
    std::vector<Itemset> batch;
    batch.reserve(indices.size());
    for (size_t i : indices) batch.push_back(candidates[i]);
    batches.push_back(std::move(batch));
  }

  std::vector<uint64_t> supports(candidates.size(), 0);
  auto scatter = [&](size_t batch_index,
                     const std::vector<uint64_t>& counted) {
    size_t b = 0;
    for (const auto& [size, indices] : by_size) {
      (void)size;
      if (b++ != batch_index) continue;
      for (size_t j = 0; j < indices.size(); ++j) {
        supports[indices[j]] = counted[j];
      }
      break;
    }
  };

  if (kind == CounterKind::kHash) {
    std::vector<const std::vector<Itemset>*> views;
    views.reserve(batches.size());
    for (const auto& batch : batches) views.push_back(&batch);
    const auto counted = CountBatchesSharedScan(*db, views, stats);
    if (stats != nullptr) {
      for (const auto& batch : batches) {
        stats->sets_counted += batch.size();
      }
    }
    for (size_t b = 0; b < counted.size(); ++b) scatter(b, counted[b]);
    return supports;
  }
  auto counter = MakeCounter(kind, db);
  for (size_t b = 0; b < batches.size(); ++b) {
    scatter(b, counter->Count(batches[b], stats));
  }
  return supports;
}

}  // namespace

Result<PartitionResult> MineFrequentPartitioned(
    TransactionDb* db, const Itemset& domain, uint64_t min_support,
    const PartitionOptions& options) {
  if (min_support == 0) {
    return Status::InvalidArgument("min_support must be positive");
  }
  if (options.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  const size_t n = db->num_transactions();
  const size_t parts = std::min(options.num_partitions, std::max<size_t>(n, 1));

  PartitionResult result;
  // Pass 1: mine each partition's locally frequent sets.
  std::unordered_set<Itemset, ItemsetHash> global_pool;
  for (size_t p = 0; p < parts; ++p) {
    const size_t begin = n * p / parts;
    const size_t end = n * (p + 1) / parts;
    if (begin == end) continue;
    TransactionDb partition(db->num_items());
    for (size_t t = begin; t < end; ++t) {
      partition.Add(db->transaction(t));
    }
    // Local threshold: a globally frequent set must be locally frequent
    // in at least one partition at the proportional threshold.
    const auto local_support = static_cast<uint64_t>(std::max<double>(
        1.0, std::ceil(static_cast<double>(min_support) *
                       static_cast<double>(end - begin) /
                       static_cast<double>(n))));
    AprioriOptions local_options;
    local_options.counter = options.counter;
    AprioriResult local =
        MineFrequent(&partition, domain, local_support, local_options);
    // Local mining happens in memory: the partition is read from disk
    // once, not once per level. Keep the counting/check counters but
    // replace the per-level I/O with a single read of the partition.
    local.stats.io = IoStats{};
    local.stats.io.AddScan(partition.PagesPerScan());
    result.stats.MergeFrom(local.stats);
    for (FrequentSet& f : local.frequent) {
      global_pool.insert(std::move(f.items));
    }
  }

  // Pass 2: verify the unioned pool against the full database.
  std::vector<Itemset> candidates(global_pool.begin(), global_pool.end());
  std::sort(candidates.begin(), candidates.end());
  result.global_candidates = candidates.size();
  const std::vector<uint64_t> supports =
      CountMixed(db, candidates, options.counter, &result.stats);
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (supports[i] >= min_support) {
      result.frequent.push_back(FrequentSet{candidates[i], supports[i]});
    }
  }
  std::sort(result.frequent.begin(), result.frequent.end(),
            [](const FrequentSet& a, const FrequentSet& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  return result;
}

Result<SampleResult> MineFrequentSampled(TransactionDb* db,
                                         const Itemset& domain,
                                         uint64_t min_support,
                                         const SampleOptions& options) {
  if (min_support == 0) {
    return Status::InvalidArgument("min_support must be positive");
  }
  if (options.sample_fraction <= 0 || options.sample_fraction > 1) {
    return Status::InvalidArgument("sample_fraction must be in (0, 1]");
  }
  if (options.safety <= 0 || options.safety > 1) {
    return Status::InvalidArgument("safety must be in (0, 1]");
  }
  const size_t n = db->num_transactions();
  if (n == 0) return SampleResult{};

  SampleResult result;
  // Draw the sample (with replacement) and mine it at a lowered
  // threshold.
  Rng rng(options.seed);
  const size_t sample_size = std::max<size_t>(
      1, static_cast<size_t>(std::llround(
             options.sample_fraction * static_cast<double>(n))));
  TransactionDb sample(db->num_items());
  for (size_t t = 0; t < sample_size; ++t) {
    sample.Add(db->transaction(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1))));
  }
  const auto sample_support = static_cast<uint64_t>(std::max<double>(
      1.0, std::floor(static_cast<double>(min_support) *
                      static_cast<double>(sample_size) /
                      static_cast<double>(n) * options.safety)));
  AprioriOptions sample_options;
  sample_options.counter = options.counter;
  AprioriResult mined =
      MineFrequent(&sample, domain, sample_support, sample_options);
  result.stats.MergeFrom(mined.stats);
  result.sample_candidates = mined.frequent.size();

  // Candidate pool: sample-frequent sets plus their negative border
  // (minimal sets not in the pool whose subsets all are).
  std::unordered_set<Itemset, ItemsetHash> pool;
  for (const FrequentSet& f : mined.frequent) pool.insert(f.items);
  std::unordered_set<Itemset, ItemsetHash> border;
  for (ItemId item : domain) {
    if (pool.find(Itemset{item}) == pool.end()) border.insert({item});
  }
  for (const FrequentSet& f : mined.frequent) {
    for (ItemId item : domain) {
      if (Contains(f.items, item)) continue;
      Itemset extended = Union(f.items, {item});
      if (pool.find(extended) != pool.end()) continue;
      bool all_subsets_in_pool = true;
      for (size_t drop = 0; drop < extended.size() && all_subsets_in_pool;
           ++drop) {
        if (pool.find(WithoutIndex(extended, drop)) == pool.end()) {
          all_subsets_in_pool = false;
        }
      }
      if (all_subsets_in_pool) border.insert(std::move(extended));
    }
  }

  // Verify pool + border against the full database.
  std::vector<Itemset> candidates(pool.begin(), pool.end());
  candidates.insert(candidates.end(), border.begin(), border.end());
  std::sort(candidates.begin(), candidates.end());
  const std::vector<uint64_t> supports =
      CountMixed(db, candidates, options.counter, &result.stats);
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (supports[i] < min_support) continue;
    if (border.find(candidates[i]) != border.end()) ++result.misses;
    result.frequent.push_back(FrequentSet{candidates[i], supports[i]});
  }

  if (result.misses > 0) {
    // The sample missed part of the lattice: recompute exactly so the
    // result is always correct (Toivonen's "second pass" fallback).
    AprioriOptions exact_options;
    exact_options.counter = options.counter;
    AprioriResult exact = MineFrequent(db, domain, min_support, exact_options);
    result.stats.MergeFrom(exact.stats);
    result.frequent = std::move(exact.frequent);
    return result;
  }
  std::sort(result.frequent.begin(), result.frequent.end(),
            [](const FrequentSet& a, const FrequentSet& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  return result;
}

}  // namespace cfq
