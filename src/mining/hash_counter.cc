#include "mining/hash_counter.h"

#include <algorithm>
#include <unordered_map>

#include "common/combinatorics.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cfq {

namespace {

// Below this many transactions a sharded scan costs more in fork/join
// than it saves; counting stays serial (results are identical either
// way — sharding only splits the transaction range).
constexpr size_t kMinTransactionsPerShard = 256;

// Recursively enumerates the size-k subsets of `txn` that are present in
// `index`, bumping their supports. Prunes on remaining length.
void CountSubsets(const Itemset& txn, size_t start, size_t k, Itemset* prefix,
                  const std::unordered_map<Itemset, size_t, ItemsetHash>& index,
                  std::vector<uint64_t>* supports) {
  if (k == 0) {
    auto it = index.find(*prefix);
    if (it != index.end()) ++(*supports)[it->second];
    return;
  }
  for (size_t i = start; i + k <= txn.size(); ++i) {
    prefix->push_back(txn[i]);
    CountSubsets(txn, i + 1, k - 1, prefix, index, supports);
    prefix->pop_back();
  }
}

// Counts one transaction against one uniform-size candidate batch,
// choosing per transaction between direct candidate probing and subset
// enumeration. The workhorse of both the serial and the sharded scans;
// `index` is read-only and shared across shards.
void CountTransaction(
    const Itemset& txn, size_t k, const std::vector<Itemset>& candidates,
    const std::unordered_map<Itemset, size_t, ItemsetHash>& index,
    std::vector<uint64_t>* supports) {
  if (txn.size() < k) return;
  // When a transaction has far more k-subsets than there are
  // candidates, testing candidates directly is cheaper.
  const uint64_t subsets = BinomialSaturating(txn.size(), k);
  if (subsets > 4 * candidates.size()) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (IsSubset(candidates[i], txn)) ++(*supports)[i];
    }
  } else {
    Itemset prefix;
    prefix.reserve(k);
    CountSubsets(txn, 0, k, &prefix, index, supports);
  }
}

size_t ShardCount(ThreadPool* pool, size_t num_transactions) {
  if (pool == nullptr || pool->num_threads() <= 1) return 1;
  if (num_transactions < 2 * kMinTransactionsPerShard) return 1;
  return std::min(pool->num_threads(),
                  num_transactions / kMinTransactionsPerShard);
}

}  // namespace

std::vector<std::vector<uint64_t>> CountBatchesSharedScan(
    const TransactionDb& db,
    const std::vector<const std::vector<Itemset>*>& batches, CccStats* stats,
    ThreadPool* pool) {
  obs::TraceSpan span(stats != nullptr ? stats->tracer : nullptr,
                      "count/shared_scan");
  struct BatchIndex {
    size_t k = 0;
    std::unordered_map<Itemset, size_t, ItemsetHash> index;
  };
  std::vector<BatchIndex> indexes(batches.size());
  for (size_t b = 0; b < batches.size(); ++b) {
    const std::vector<Itemset>& candidates = *batches[b];
    if (candidates.empty()) continue;
    indexes[b].k = candidates[0].size();
    indexes[b].index.reserve(candidates.size() * 2);
    for (size_t i = 0; i < candidates.size(); ++i) {
      indexes[b].index.emplace(candidates[i], i);
    }
  }

  const std::vector<Itemset>& transactions = db.transactions();
  const size_t shards = ShardCount(pool, transactions.size());
  // partial[shard][batch] — per-shard accumulators, merged shard-major
  // so the result is independent of scheduling.
  std::vector<std::vector<std::vector<uint64_t>>> partial(shards);
  auto scan_shard = [&](size_t shard, size_t begin, size_t end) {
    std::vector<std::vector<uint64_t>>& local = partial[shard];
    local.resize(batches.size());
    for (size_t b = 0; b < batches.size(); ++b) {
      local[b].assign(batches[b]->size(), 0);
    }
    for (size_t t = begin; t < end; ++t) {
      for (size_t b = 0; b < batches.size(); ++b) {
        if (batches[b]->empty()) continue;
        CountTransaction(transactions[t], indexes[b].k, *batches[b],
                         indexes[b].index, &local[b]);
      }
    }
  };
  if (shards <= 1) {
    scan_shard(0, 0, transactions.size());
  } else {
    pool->ParallelChunks(transactions.size(), shards, scan_shard);
  }

  std::vector<std::vector<uint64_t>> out(batches.size());
  for (size_t b = 0; b < batches.size(); ++b) {
    out[b].assign(batches[b]->size(), 0);
    for (size_t shard = 0; shard < shards; ++shard) {
      for (size_t i = 0; i < out[b].size(); ++i) {
        out[b][i] += partial[shard][b][i];
      }
    }
  }

  if (stats != nullptr) {
    stats->io.AddScan(db.PagesPerScan());
    if (stats->tracer != nullptr) {
      stats->tracer->RecordScan(obs::ScanEvent{1, db.PagesPerScan()});
    }
    if (stats->metrics != nullptr) {
      stats->metrics->Observe(
          "scan.bytes", static_cast<double>(db.PagesPerScan() *
                                            IoModel().page_size_bytes));
    }
  }
  return out;
}

std::vector<uint64_t> HashCounter::Count(const std::vector<Itemset>& candidates,
                                         CccStats* stats) {
  obs::TraceSpan span(stats != nullptr ? stats->tracer : nullptr,
                      "count/hash");
  std::vector<uint64_t> supports(candidates.size(), 0);
  if (candidates.empty()) return supports;
  const size_t k = candidates[0].size();

  std::unordered_map<Itemset, size_t, ItemsetHash> index;
  index.reserve(candidates.size() * 2);
  for (size_t i = 0; i < candidates.size(); ++i) index.emplace(candidates[i], i);

  const std::vector<Itemset>& transactions = db_->transactions();
  const size_t shards = ShardCount(pool_, transactions.size());
  if (shards <= 1) {
    for (const Itemset& txn : transactions) {
      CountTransaction(txn, k, candidates, index, &supports);
    }
  } else {
    std::vector<std::vector<uint64_t>> partial(
        shards, std::vector<uint64_t>(candidates.size(), 0));
    pool_->ParallelChunks(
        transactions.size(), shards,
        [&](size_t shard, size_t begin, size_t end) {
          for (size_t t = begin; t < end; ++t) {
            CountTransaction(transactions[t], k, candidates, index,
                             &partial[shard]);
          }
        });
    for (size_t shard = 0; shard < shards; ++shard) {
      for (size_t i = 0; i < supports.size(); ++i) {
        supports[i] += partial[shard][i];
      }
    }
  }

  if (stats != nullptr) {
    stats->sets_counted += candidates.size();
    stats->io.AddScan(db_->PagesPerScan());
    if (stats->tracer != nullptr) {
      stats->tracer->RecordScan(obs::ScanEvent{1, db_->PagesPerScan()});
    }
    if (stats->metrics != nullptr) {
      stats->metrics->Observe(
          "scan.bytes", static_cast<double>(db_->PagesPerScan() *
                                            IoModel().page_size_bytes));
    }
    if (stats->counted_log != nullptr) {
      stats->counted_log->insert(stats->counted_log->end(),
                                 candidates.begin(), candidates.end());
    }
  }
  return supports;
}

}  // namespace cfq
