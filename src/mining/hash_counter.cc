#include "mining/hash_counter.h"

#include <unordered_map>

#include "common/combinatorics.h"
#include "obs/trace.h"

namespace cfq {

namespace {

// Recursively enumerates the size-k subsets of `txn` that are present in
// `index`, bumping their supports. Prunes on remaining length.
void CountSubsets(const Itemset& txn, size_t start, size_t k, Itemset* prefix,
                  const std::unordered_map<Itemset, size_t, ItemsetHash>& index,
                  std::vector<uint64_t>* supports) {
  if (k == 0) {
    auto it = index.find(*prefix);
    if (it != index.end()) ++(*supports)[it->second];
    return;
  }
  for (size_t i = start; i + k <= txn.size(); ++i) {
    prefix->push_back(txn[i]);
    CountSubsets(txn, i + 1, k - 1, prefix, index, supports);
    prefix->pop_back();
  }
}

}  // namespace

std::vector<std::vector<uint64_t>> CountBatchesSharedScan(
    const TransactionDb& db,
    const std::vector<const std::vector<Itemset>*>& batches,
    CccStats* stats) {
  obs::TraceSpan span(stats != nullptr ? stats->tracer : nullptr,
                      "count/shared_scan");
  struct BatchState {
    size_t k = 0;
    std::unordered_map<Itemset, size_t, ItemsetHash> index;
    std::vector<uint64_t> supports;
  };
  std::vector<BatchState> states(batches.size());
  for (size_t b = 0; b < batches.size(); ++b) {
    const std::vector<Itemset>& candidates = *batches[b];
    states[b].supports.assign(candidates.size(), 0);
    if (candidates.empty()) continue;
    states[b].k = candidates[0].size();
    states[b].index.reserve(candidates.size() * 2);
    for (size_t i = 0; i < candidates.size(); ++i) {
      states[b].index.emplace(candidates[i], i);
    }
  }

  for (const Itemset& txn : db.transactions()) {
    for (size_t b = 0; b < batches.size(); ++b) {
      BatchState& state = states[b];
      const std::vector<Itemset>& candidates = *batches[b];
      if (candidates.empty() || txn.size() < state.k) continue;
      const uint64_t subsets = BinomialSaturating(txn.size(), state.k);
      if (subsets > 4 * candidates.size()) {
        for (size_t i = 0; i < candidates.size(); ++i) {
          if (IsSubset(candidates[i], txn)) ++state.supports[i];
        }
      } else {
        Itemset prefix;
        prefix.reserve(state.k);
        CountSubsets(txn, 0, state.k, &prefix, state.index,
                     &state.supports);
      }
    }
  }

  if (stats != nullptr) {
    stats->io.AddScan(db.PagesPerScan());
    if (stats->tracer != nullptr) {
      stats->tracer->RecordScan(obs::ScanEvent{1, db.PagesPerScan()});
    }
  }
  std::vector<std::vector<uint64_t>> out;
  out.reserve(states.size());
  for (BatchState& state : states) out.push_back(std::move(state.supports));
  return out;
}

std::vector<uint64_t> HashCounter::Count(const std::vector<Itemset>& candidates,
                                         CccStats* stats) {
  obs::TraceSpan span(stats != nullptr ? stats->tracer : nullptr,
                      "count/hash");
  std::vector<uint64_t> supports(candidates.size(), 0);
  if (candidates.empty()) return supports;
  const size_t k = candidates[0].size();

  std::unordered_map<Itemset, size_t, ItemsetHash> index;
  index.reserve(candidates.size() * 2);
  for (size_t i = 0; i < candidates.size(); ++i) index.emplace(candidates[i], i);

  for (const Itemset& txn : db_->transactions()) {
    if (txn.size() < k) continue;
    // When a transaction has far more k-subsets than there are
    // candidates, testing candidates directly is cheaper.
    const uint64_t subsets = BinomialSaturating(txn.size(), k);
    if (subsets > 4 * candidates.size()) {
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (IsSubset(candidates[i], txn)) ++supports[i];
      }
    } else {
      Itemset prefix;
      prefix.reserve(k);
      CountSubsets(txn, 0, k, &prefix, index, &supports);
    }
  }

  if (stats != nullptr) {
    stats->sets_counted += candidates.size();
    stats->io.AddScan(db_->PagesPerScan());
    if (stats->tracer != nullptr) {
      stats->tracer->RecordScan(obs::ScanEvent{1, db_->PagesPerScan()});
    }
    if (stats->counted_log != nullptr) {
      stats->counted_log->insert(stats->counted_log->end(),
                                 candidates.begin(), candidates.end());
    }
  }
  return supports;
}

}  // namespace cfq
