// Apriori+: the paper's baseline. Computes ALL frequent sets first, then
// checks each against the constraints (generate-and-test).

#ifndef CFQ_MINING_APRIORI_PLUS_H_
#define CFQ_MINING_APRIORI_PLUS_H_

#include <vector>

#include "common/result.h"
#include "constraints/one_var.h"
#include "data/item_catalog.h"
#include "mining/apriori.h"

namespace cfq {

struct AprioriPlusResult {
  std::vector<FrequentSet> valid_frequent;
  // All frequent sets (pre-filter); the Section 7.1 per-level table
  // reports both counts.
  std::vector<FrequentSet> all_frequent;
  CccStats stats;
};

// Mines frequent sets from `domain` then filters by the 1-var
// constraints bound to `var`. Every frequent set costs one constraint
// check, which is what makes Apriori+ generally not ccc-optimal.
Result<AprioriPlusResult> RunAprioriPlus(
    TransactionDb* db, const ItemCatalog& catalog, const Itemset& domain,
    Var var, const std::vector<OneVarConstraint>& constraints,
    uint64_t min_support, const AprioriOptions& options = {});

}  // namespace cfq

#endif  // CFQ_MINING_APRIORI_PLUS_H_
