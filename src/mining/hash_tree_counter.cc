#include "mining/hash_tree_counter.h"

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cfq {

void HashTreeCounter::Insert(Node* node, size_t depth, size_t candidate,
                             const std::vector<Itemset>& candidates) {
  if (!node->leaf) {
    const size_t child =
        candidates[candidate][depth] % branch_;
    Insert(node->children[child].get(), depth + 1, candidate, candidates);
    return;
  }
  node->bucket.push_back(candidate);
  // Split when over capacity and there is still an item position left
  // to hash on.
  if (node->bucket.size() > leaf_capacity_ && depth < k_) {
    node->leaf = false;
    node->children.resize(branch_);
    for (auto& child : node->children) child = std::make_unique<Node>();
    std::vector<size_t> bucket = std::move(node->bucket);
    node->bucket.clear();
    for (size_t c : bucket) {
      const size_t child = candidates[c][depth] % branch_;
      Insert(node->children[child].get(), depth + 1, c, candidates);
    }
  }
}

size_t HashTreeCounter::AssignLeafIds(Node* node, size_t next) {
  if (node->leaf) {
    node->leaf_id = next;
    return next + 1;
  }
  for (auto& child : node->children) {
    next = AssignLeafIds(child.get(), next);
  }
  return next;
}

void HashTreeCounter::Visit(const Node& node, size_t depth, const Itemset& txn,
                            size_t start, size_t txn_id,
                            const std::vector<Itemset>& candidates,
                            std::vector<size_t>* stamps,
                            std::vector<uint64_t>* supports) const {
  if (node.leaf) {
    if ((*stamps)[node.leaf_id] == txn_id) return;  // Already counted.
    (*stamps)[node.leaf_id] = txn_id;
    for (size_t c : node.bucket) {
      const Itemset& candidate = candidates[c];
      // The first `depth` items already matched the hash path; verify
      // the candidate is contained in the transaction suffix. (Hash
      // collisions mean the path match is necessary, not sufficient.)
      if (IsSubset(candidate, txn)) ++(*supports)[c];
    }
    return;
  }
  // Interior: try every remaining transaction item as the next hashed
  // position, as long as enough items remain to complete a k-set.
  for (size_t i = start; i < txn.size(); ++i) {
    if (txn.size() - i < k_ - depth) break;
    const size_t child = txn[i] % branch_;
    Visit(*node.children[child], depth + 1, txn, i + 1, txn_id, candidates,
          stamps, supports);
  }
}

std::vector<uint64_t> HashTreeCounter::Count(
    const std::vector<Itemset>& candidates, CccStats* stats) {
  obs::TraceSpan span(stats != nullptr ? stats->tracer : nullptr,
                      "count/hashtree");
  std::vector<uint64_t> supports(candidates.size(), 0);
  if (candidates.empty()) return supports;
  k_ = candidates[0].size();

  Node root;
  for (size_t c = 0; c < candidates.size(); ++c) {
    Insert(&root, 0, c, candidates);
  }
  const size_t leaf_count = AssignLeafIds(&root, 0);
  const auto& transactions = db_->transactions();
  const size_t shards =
      (pool_ == nullptr || pool_->num_threads() <= 1 ||
       transactions.size() < 512)
          ? 1
          : pool_->num_threads();
  if (shards <= 1) {
    std::vector<size_t> stamps(leaf_count, static_cast<size_t>(-1));
    for (size_t t = 0; t < transactions.size(); ++t) {
      if (transactions[t].size() < k_) continue;
      Visit(root, 0, transactions[t], 0, t, candidates, &stamps, &supports);
    }
  } else {
    // The tree is read-only during the walk; each shard gets its own
    // stamp array (txn ids are globally unique, so stamps never need
    // resetting) and support accumulator, merged in shard order.
    std::vector<std::vector<uint64_t>> partial(
        shards, std::vector<uint64_t>(candidates.size(), 0));
    pool_->ParallelChunks(
        transactions.size(), shards,
        [&](size_t shard, size_t begin, size_t end) {
          std::vector<size_t> stamps(leaf_count, static_cast<size_t>(-1));
          for (size_t t = begin; t < end; ++t) {
            if (transactions[t].size() < k_) continue;
            Visit(root, 0, transactions[t], 0, t, candidates, &stamps,
                  &partial[shard]);
          }
        });
    for (size_t shard = 0; shard < shards; ++shard) {
      for (size_t i = 0; i < supports.size(); ++i) {
        supports[i] += partial[shard][i];
      }
    }
  }

  if (stats != nullptr) {
    stats->sets_counted += candidates.size();
    stats->io.AddScan(db_->PagesPerScan());
    if (stats->tracer != nullptr) {
      stats->tracer->RecordScan(obs::ScanEvent{1, db_->PagesPerScan()});
    }
    if (stats->metrics != nullptr) {
      stats->metrics->Observe(
          "scan.bytes", static_cast<double>(db_->PagesPerScan() *
                                            IoModel().page_size_bytes));
    }
    if (stats->counted_log != nullptr) {
      stats->counted_log->insert(stats->counted_log->end(),
                                 candidates.begin(), candidates.end());
    }
  }
  return supports;
}

}  // namespace cfq
