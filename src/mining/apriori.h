// Apriori: levelwise frequent-set mining over an item domain.
//
// This is the substrate algorithm (Agrawal & Srikant, VLDB'94) that both
// the Apriori+ baseline and CAP build on.

#ifndef CFQ_MINING_APRIORI_H_
#define CFQ_MINING_APRIORI_H_

#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "common/itemset.h"
#include "data/transaction_db.h"
#include "mining/ccc_stats.h"
#include "mining/counter.h"

namespace cfq {

// One mined set with its absolute support.
struct FrequentSet {
  Itemset items;
  uint64_t support = 0;
};

struct AprioriOptions {
  CounterKind counter = CounterKind::kBitmap;
  // 0 = unlimited. Otherwise stop after this lattice level.
  size_t max_level = 0;
  // Shard-parallel counting pool (thread_pool.h). Not owned; null
  // counts serially. Supports are identical either way.
  ThreadPool* pool = nullptr;
  // Optional evidence stream for the ccc auditor (see CccStats).
  std::vector<Itemset>* counted_log = nullptr;
  // Optional tracing sink; `var_label` tags this run's LevelEvents
  // ('S'/'T' when mining one side of a CFQ). Not owned; may be null.
  obs::Tracer* tracer = nullptr;
  // Optional metrics sink (obs/metrics.h): per-level gen/count latency
  // histograms and per-scan bytes. Not owned; null disables recording.
  obs::MetricsRegistry* metrics = nullptr;
  char var_label = '?';
  // Optional cooperative cancellation token, polled before each level.
  // Not owned; null never cancels.
  const CancelToken* cancel = nullptr;
};

struct AprioriResult {
  std::vector<FrequentSet> frequent;  // All levels, ascending size.
  CccStats stats;
  // True when options.cancel expired mid-run; `frequent` holds only the
  // levels completed before the boundary check fired.
  bool cancelled = false;
};

// Mines all frequent itemsets drawn from `domain` with absolute support
// >= `min_support` (> 0). Items outside `domain` are ignored.
AprioriResult MineFrequent(TransactionDb* db, const Itemset& domain,
                           uint64_t min_support,
                           const AprioriOptions& options = {});

// Brute-force oracle: enumerates every non-empty subset of `domain` and
// keeps those with support >= min_support. Exponential; tests only.
std::vector<FrequentSet> MineFrequentBruteForce(const TransactionDb& db,
                                                const Itemset& domain,
                                                uint64_t min_support);

}  // namespace cfq

#endif  // CFQ_MINING_APRIORI_H_
