#include "mining/candidate_gen.h"

#include <algorithm>
#include <unordered_set>

namespace cfq {

std::vector<Itemset> GenerateCandidatesJoinPrune(
    const std::vector<Itemset>& frequent_k, uint64_t* pruned_subset) {
  std::vector<Itemset> candidates;
  if (frequent_k.empty()) return candidates;
  const size_t k = frequent_k[0].size();

  std::unordered_set<Itemset, ItemsetHash> frequent_index(frequent_k.begin(),
                                                          frequent_k.end());
  // Join step: sets sharing the first k-1 items form a contiguous block
  // in the sorted input.
  for (size_t i = 0; i < frequent_k.size(); ++i) {
    for (size_t j = i + 1; j < frequent_k.size(); ++j) {
      Itemset joined;
      if (!AprioriJoin(frequent_k[i], frequent_k[j], &joined)) break;
      // Prune step: all k-subsets must be frequent. The two generators
      // are subsets by construction; check the rest.
      bool all_frequent = true;
      for (size_t drop = 0; drop + 2 < joined.size() && all_frequent;
           ++drop) {
        if (frequent_index.find(WithoutIndex(joined, drop)) ==
            frequent_index.end()) {
          all_frequent = false;
        }
      }
      // k == 1: no additional subsets to check.
      if (k >= 1 && all_frequent) {
        candidates.push_back(std::move(joined));
      } else if (pruned_subset != nullptr) {
        ++*pruned_subset;
      }
    }
  }
  return candidates;
}

std::vector<Itemset> GenerateCandidatesExtend(
    const std::vector<Itemset>& base_k, const Itemset& extension_items) {
  std::unordered_set<Itemset, ItemsetHash> seen;
  std::vector<Itemset> candidates;
  for (const Itemset& base : base_k) {
    for (ItemId item : extension_items) {
      if (Contains(base, item)) continue;
      Itemset extended = Union(base, Itemset{item});
      if (seen.insert(extended).second) {
        candidates.push_back(std::move(extended));
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

}  // namespace cfq
