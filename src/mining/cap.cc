#include "mining/cap.h"

#include <string>

#include "mining/lattice.h"

namespace cfq {

Result<CapResult> RunCap(TransactionDb* db, const ItemCatalog& catalog,
                         const Itemset& domain, Var var,
                         const std::vector<OneVarConstraint>& constraints,
                         uint64_t min_support, const CapOptions& options,
                         CapLevelHooks* hooks) {
  auto lattice = ConstrainedLattice::Create(db, catalog, domain, var,
                                            constraints, min_support, options);
  if (!lattice.ok()) return lattice.status();
  ConstrainedLattice& l = **lattice;
  while (!l.done()) {
    CFQ_RETURN_IF_ERROR(CheckCancel(
        options.cancel, "cap level boundary (level " +
                            std::to_string(l.level() + 1) + ")"));
    if (!l.Step()) break;
    if (hooks != nullptr) {
      hooks->OnLevelComplete(l.level(), l.last_level_frequent());
    }
  }
  CapResult result;
  result.valid_frequent = l.valid_frequent();
  result.stats = l.stats();
  return result;
}

}  // namespace cfq
