#include "mining/apriori_plus.h"

#include "constraints/eval.h"
#include "obs/trace.h"

namespace cfq {

Result<AprioriPlusResult> RunAprioriPlus(
    TransactionDb* db, const ItemCatalog& catalog, const Itemset& domain,
    Var var, const std::vector<OneVarConstraint>& constraints,
    uint64_t min_support, const AprioriOptions& options) {
  if (min_support == 0) {
    return Status::InvalidArgument("min_support must be positive");
  }
  AprioriPlusResult result;
  AprioriResult mined = MineFrequent(db, domain, min_support, options);
  if (mined.cancelled) {
    return CancelToken::ExpiredError(std::string("apriori level boundary (") +
                                     options.var_label + ")");
  }
  result.stats = std::move(mined.stats);
  result.all_frequent = std::move(mined.frequent);

  bool any = false;
  for (const OneVarConstraint& c : constraints) {
    if (c.var == var) any = true;
  }
  // Apriori+ checks constraints only after mining: a generate-and-test
  // phase the optimized strategies avoid (visible as this span).
  obs::TraceSpan span(options.tracer, "apriori_plus/validate");
  for (const FrequentSet& f : result.all_frequent) {
    if (any) ++result.stats.constraint_checks;
    auto ok = EvalAll(constraints, var, f.items, catalog);
    if (!ok.ok()) return ok.status();
    if (ok.value()) result.valid_frequent.push_back(f);
  }
  return result;
}

}  // namespace cfq
