// ccc accounting: "constraint checking and counting" (Section 6.2).
//
// The paper's cost model counts (i) the number of candidate sets whose
// support is counted and (ii) the number of invocations of the
// constraint-checking operation. Every miner in this library reports
// both, making ccc-optimality (Definition 6) an observable property.
//
// Pruning attribution: in addition to the counted/frequent series, the
// per-level `generated_per_level` / `pruned_per_level` vectors record
// how many candidates each level generated and which mechanism
// discarded everyone who never reached the counter, so that
//   generated - pruned.Total() == candidates (counted)
// holds per level (the EXPLAIN ANALYZE identity).

#ifndef CFQ_MINING_CCC_STATS_H_
#define CFQ_MINING_CCC_STATS_H_

#include <cstdint>
#include <vector>

#include "common/itemset.h"
#include "data/io_model.h"
#include "obs/mechanism.h"

namespace cfq {

namespace obs {
class Tracer;
class MetricsRegistry;
}  // namespace obs

struct CccStats {
  // When non-null, counters append every support-counted candidate here
  // (the evidence stream for the ccc-optimality auditor). Not owned; not
  // merged by MergeFrom.
  std::vector<Itemset>* counted_log = nullptr;
  // When non-null, counters emit count spans and ScanEvents here. Not
  // owned; not merged by MergeFrom.
  obs::Tracer* tracer = nullptr;
  // When non-null, counters observe per-scan bytes scanned (histogram
  // `scan.bytes`) here and miners record their per-level latencies.
  // Not owned; not merged by MergeFrom.
  obs::MetricsRegistry* metrics = nullptr;
  // Candidate sets for which support counting was performed.
  uint64_t sets_counted = 0;
  // Invocations of the constraint-checking operation. Evaluating the
  // whole constraint conjunction on one set counts as one invocation,
  // following the paper's granularity. MGF set-up work (building the
  // allowed/group item lists) is counted as one check per singleton.
  uint64_t constraint_checks = 0;
  // Per level (index 0 = level 1): candidates counted and survivors.
  std::vector<uint64_t> candidates_per_level;
  std::vector<uint64_t> frequent_per_level;
  // Per level: candidates generated (before any pruning) and the
  // per-mechanism attribution of those discarded before counting.
  std::vector<uint64_t> generated_per_level;
  std::vector<obs::PruneCounts> pruned_per_level;
  // Symbolic I/O (one scan per level for horizontal counting; the
  // vertical backend pays one scan to build its index).
  IoStats io;

  // Miners without candidate-side pruning: every generated candidate
  // gets counted.
  void RecordLevel(uint64_t candidates, uint64_t frequent) {
    RecordLevel(candidates, obs::PruneCounts{}, candidates, frequent);
  }

  void RecordLevel(uint64_t generated, const obs::PruneCounts& pruned,
                   uint64_t counted, uint64_t frequent) {
    generated_per_level.push_back(generated);
    pruned_per_level.push_back(pruned);
    candidates_per_level.push_back(counted);
    frequent_per_level.push_back(frequent);
  }

  // Merges another run's counters into this one (used when a strategy
  // runs one lattice per variable).
  void MergeFrom(const CccStats& other) {
    sets_counted += other.sets_counted;
    constraint_checks += other.constraint_checks;
    io.MergeFrom(other.io);
    for (size_t i = 0; i < other.candidates_per_level.size(); ++i) {
      if (i >= candidates_per_level.size()) {
        candidates_per_level.push_back(other.candidates_per_level[i]);
        frequent_per_level.push_back(other.frequent_per_level[i]);
        generated_per_level.push_back(other.generated_per_level[i]);
        pruned_per_level.push_back(other.pruned_per_level[i]);
      } else {
        candidates_per_level[i] += other.candidates_per_level[i];
        frequent_per_level[i] += other.frequent_per_level[i];
        generated_per_level[i] += other.generated_per_level[i];
        pruned_per_level[i].MergeFrom(other.pruned_per_level[i]);
      }
    }
  }
};

}  // namespace cfq

#endif  // CFQ_MINING_CCC_STATS_H_
