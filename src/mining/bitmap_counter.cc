#include "mining/bitmap_counter.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "mining/hash_counter.h"
#include "mining/hash_tree_counter.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cfq {

BitmapCounter::BitmapCounter(TransactionDb* db, ThreadPool* pool)
    : db_(db), pool_(pool) {
  db_->EnsureVerticalIndex(pool_);
}

void BitmapCounter::CountRange(const std::vector<Itemset>& candidates,
                               size_t begin, size_t end,
                               std::vector<uint64_t>* supports) const {
  // Candidates arriving from the Apriori join are lexicographically
  // sorted, so consecutive candidates usually share their k-1 prefix;
  // compute the prefix intersection once per run and count the whole
  // run of siblings through the fused multi-way kernel, which loads the
  // prefix words once per candidate block instead of once per
  // candidate. Each chunk starts its own run detection, so supports are
  // chunk-independent.
  Bitset64 prefix_bits;
  std::vector<const Bitset64*> tails;
  size_t i = begin;
  while (i < end) {
    const Itemset& c = candidates[i];
    if (c.size() == 1) {
      (*supports)[i] = db_->vertical(c[0]).Count();
      ++i;
      continue;
    }
    // Extent of the run sharing c's size and k-1 prefix.
    size_t run_end = i + 1;
    while (run_end < end && candidates[run_end].size() == c.size() &&
           std::equal(c.begin(), c.end() - 1, candidates[run_end].begin())) {
      ++run_end;
    }
    prefix_bits = db_->vertical(c[0]);
    for (size_t j = 1; j + 1 < c.size(); ++j) {
      prefix_bits.AndWith(db_->vertical(c[j]));
    }
    tails.clear();
    for (size_t j = i; j < run_end; ++j) {
      tails.push_back(&db_->vertical(candidates[j].back()));
    }
    Bitset64::AndCountMany(prefix_bits, tails.data(), tails.size(),
                           supports->data() + i);
    i = run_end;
  }
}

std::vector<uint64_t> BitmapCounter::Count(
    const std::vector<Itemset>& candidates, CccStats* stats) {
  obs::TraceSpan span(stats != nullptr ? stats->tracer : nullptr,
                      "count/bitmap");
  std::vector<uint64_t> supports(candidates.size(), 0);
  // A caller may have invalidated the index by adding transactions
  // after construction; that only happens in single-threaded setup
  // code, so rebuilding here is safe.
  db_->EnsureVerticalIndex(pool_);
  if (stats != nullptr && !index_scan_accounted_) {
    stats->io.AddScan(db_->PagesPerScan());
    index_scan_accounted_ = true;
    if (stats->tracer != nullptr) {
      // The one scan that builds the vertical index.
      stats->tracer->RecordScan(obs::ScanEvent{1, db_->PagesPerScan()});
    }
    if (stats->metrics != nullptr) {
      stats->metrics->Observe(
          "scan.bytes", static_cast<double>(db_->PagesPerScan() *
                                            IoModel().page_size_bytes));
    }
  }
  if (candidates.empty()) return supports;

  if (pool_ == nullptr || pool_->num_threads() <= 1 ||
      candidates.size() < 64) {
    CountRange(candidates, 0, candidates.size(), &supports);
  } else {
    pool_->ParallelFor(candidates.size(),
                       [&](size_t begin, size_t end) {
                         CountRange(candidates, begin, end, &supports);
                       });
  }
  if (stats != nullptr) {
    stats->sets_counted += candidates.size();
    if (stats->counted_log != nullptr) {
      stats->counted_log->insert(stats->counted_log->end(),
                                 candidates.begin(), candidates.end());
    }
  }
  return supports;
}

std::unique_ptr<SupportCounter> MakeCounter(CounterKind kind,
                                            TransactionDb* db,
                                            ThreadPool* pool) {
  switch (kind) {
    case CounterKind::kHash:
      return std::make_unique<HashCounter>(db, pool);
    case CounterKind::kHashTree:
      return std::make_unique<HashTreeCounter>(db, /*branch=*/16,
                                               /*leaf_capacity=*/32, pool);
    case CounterKind::kBitmap:
      break;
  }
  return std::make_unique<BitmapCounter>(db, pool);
}

}  // namespace cfq
