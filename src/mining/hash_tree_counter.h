// Hash-tree support counting — the classic Apriori candidate structure
// (Agrawal & Srikant, VLDB'94), closest to what the paper's own C
// implementation used. Interior nodes hash one item position; leaves
// hold small candidate buckets. Counting walks each transaction through
// the tree, visiting only subtrees reachable from the transaction's
// items, so the per-transaction cost scales with matching candidates
// rather than with C(|t|, k).

#ifndef CFQ_MINING_HASH_TREE_COUNTER_H_
#define CFQ_MINING_HASH_TREE_COUNTER_H_

#include <memory>
#include <vector>

#include "mining/counter.h"

namespace cfq {

class HashTreeCounter : public SupportCounter {
 public:
  // `branch`: fan-out of interior nodes; `leaf_capacity`: bucket size
  // above which a leaf splits (when items remain to hash on). The tree
  // is built serially per Count call; with a pool the transaction walk
  // is sharded (per-shard stamps and supports, merged in shard order).
  explicit HashTreeCounter(const TransactionDb* db, size_t branch = 16,
                           size_t leaf_capacity = 32,
                           ThreadPool* pool = nullptr)
      : db_(db), branch_(branch), leaf_capacity_(leaf_capacity),
        pool_(pool) {}

  std::vector<uint64_t> Count(const std::vector<Itemset>& candidates,
                              CccStats* stats) override;

 private:
  struct Node {
    bool leaf = true;
    size_t leaf_id = 0;                           // Assigned post-build.
    std::vector<size_t> bucket;                   // Candidate indices.
    std::vector<std::unique_ptr<Node>> children;  // When interior.
  };

  void Insert(Node* node, size_t depth, size_t candidate,
              const std::vector<Itemset>& candidates);
  size_t AssignLeafIds(Node* node, size_t next);
  // `stamps` guards against counting a leaf twice for one transaction:
  // hash collisions can route a transaction to the same leaf along
  // several item choices.
  void Visit(const Node& node, size_t depth, const Itemset& txn,
             size_t start, size_t txn_id,
             const std::vector<Itemset>& candidates,
             std::vector<size_t>* stamps,
             std::vector<uint64_t>* supports) const;

  const TransactionDb* db_;
  size_t branch_;
  size_t leaf_capacity_;
  ThreadPool* pool_;  // Not owned; null counts serially.
  size_t k_ = 0;      // Candidate size of the current Count call.
};

}  // namespace cfq

#endif  // CFQ_MINING_HASH_TREE_COUNTER_H_
