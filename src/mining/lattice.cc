#include "mining/lattice.h"

#include <algorithm>
#include <unordered_set>

#include "common/stopwatch.h"
#include "constraints/classify.h"
#include "constraints/eval.h"
#include "mining/candidate_gen.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cfq {

namespace {

const std::string& AttrOf(const OneVarConstraint& c) {
  if (const auto* d = std::get_if<DomainConstraint1>(&c.body)) return d->attr;
  return std::get<AggConstraint1>(c.body).attr;
}

}  // namespace

ConstrainedLattice::ConstrainedLattice(TransactionDb* db,
                                       const ItemCatalog& catalog,
                                       Itemset domain, Var var,
                                       uint64_t min_support,
                                       const CapOptions& options)
    : db_(db),
      catalog_(catalog),
      domain_(std::move(domain)),
      var_(var),
      min_support_(min_support),
      options_(options),
      counter_(MakeCounter(options.counter, db, options.pool)) {
  form_.allowed = domain_;
  stats_.counted_log = options.counted_log;
  stats_.tracer = options.tracer;
  stats_.metrics = options.metrics;
  allowed_killer_.assign(catalog.num_items(),
                         static_cast<uint8_t>(obs::Mechanism::kOneVar));
}

Result<std::unique_ptr<ConstrainedLattice>> ConstrainedLattice::Create(
    TransactionDb* db, const ItemCatalog& catalog, const Itemset& domain,
    Var var, std::vector<OneVarConstraint> constraints, uint64_t min_support,
    const CapOptions& options) {
  if (min_support == 0) {
    return Status::InvalidArgument("min_support must be positive");
  }
  std::unique_ptr<ConstrainedLattice> lattice(new ConstrainedLattice(
      db, catalog, domain, var, min_support, options));
  CFQ_RETURN_IF_ERROR(lattice->Init(std::move(constraints)));
  return lattice;
}

Status ConstrainedLattice::Init(std::vector<OneVarConstraint> constraints) {
  bool any = false;
  for (OneVarConstraint& c : constraints) {
    if (c.var != var_) continue;
    any = true;
    CFQ_RETURN_IF_ERROR(DispatchConstraint(c, obs::Mechanism::kOneVar));
  }
  // MGF set-up touches each domain singleton once (ccc condition 2).
  if (any) stats_.constraint_checks += domain_.size();
  RebuildMasks();

  // Level 1 generates every domain singleton; those outside the
  // succinct form's allowed universe were pruned by the constraint
  // that disallowed them.
  cur_generated_ = domain_.size();
  cur_prunes_ = obs::PruneCounts{};
  if (form_.Unsatisfiable()) {
    cur_prunes_.Add(obs::Mechanism::kOneVar, domain_.size());
    done_ = true;
    return Status::Ok();
  }
  for (ItemId item : domain_) {
    if (!allowed_mask_[item]) {
      cur_prunes_.Add(static_cast<obs::Mechanism>(allowed_killer_[item]));
    }
  }
  pending_candidates_.clear();
  for (ItemId item : form_.allowed) {
    Itemset singleton{item};
    obs::Mechanism killer = obs::Mechanism::kOneVar;
    if (PassesCandidateFilters(singleton, &killer)) {
      pending_candidates_.push_back(std::move(singleton));
    } else {
      cur_prunes_.Add(killer);
    }
  }
  done_ = pending_candidates_.empty();
  return Status::Ok();
}

Status ConstrainedLattice::DispatchConstraint(const OneVarConstraint& c,
                                              obs::Mechanism mechanism) {
  if (!catalog_.HasAttr(AttrOf(c))) {
    return Status::NotFound("constraint references unknown attribute '" +
                            AttrOf(c) + "'");
  }
  owned_constraints_.push_back(std::make_unique<OneVarConstraint>(c));
  const OneVarConstraint* stored = owned_constraints_.back().get();

  bool captured = false;
  if (options_.push_succinct) {
    auto one =
        ComputeSuccinctForm(*stored, domain_, catalog_, options_.nonnegative);
    if (!one.ok()) return one.status();
    captured = one.value().exact;
    const Itemset before = form_.allowed;
    form_ = CombineForms(form_, one.value());
    // Items this constraint just disallowed carry its mechanism.
    Itemset removed;
    std::set_difference(before.begin(), before.end(), form_.allowed.begin(),
                        form_.allowed.end(), std::back_inserter(removed));
    for (ItemId item : removed) {
      allowed_killer_[item] = static_cast<uint8_t>(mechanism);
    }
    if (structural_group_ == -1 && !form_.groups.empty()) {
      structural_group_ = 0;
    }
  }
  if (captured) return Status::Ok();
  const OneVarProperties props = Classify(*stored, options_.nonnegative);
  if (props.anti_monotone && options_.push_anti_monotone) {
    candidate_filters_.emplace_back(stored, mechanism);
  } else {
    output_filters_.push_back(stored);
  }
  return Status::Ok();
}

Status ConstrainedLattice::AddConstraints(
    const std::vector<OneVarConstraint>& more, obs::Mechanism mechanism) {
  bool any = false;
  for (const OneVarConstraint& c : more) {
    if (c.var != var_) continue;
    any = true;
    CFQ_RETURN_IF_ERROR(DispatchConstraint(c, mechanism));
  }
  if (!any) return Status::Ok();
  // Setting up the injected constraints re-examines the (current)
  // allowed singletons once.
  stats_.constraint_checks += form_.allowed.size();
  RefilterState(mechanism);
  return Status::Ok();
}

void ConstrainedLattice::SetDynamicBound(AggFn agg, const std::string& attr,
                                         double bound, bool prunable) {
  for (DynamicBound& b : dynamic_bounds_) {
    if (b.agg == agg && b.attr == attr && b.prunable == prunable) {
      b.bound = std::min(b.bound, bound);  // Bounds may only tighten.
      return;
    }
  }
  dynamic_bounds_.push_back(DynamicBound{agg, attr, bound, prunable});
}

void ConstrainedLattice::RebuildMasks() {
  allowed_mask_.assign(catalog_.num_items(), 0);
  for (ItemId item : form_.allowed) allowed_mask_[item] = 1;
  group_masks_.clear();
  group_masks_.reserve(form_.groups.size());
  for (const Itemset& g : form_.groups) {
    std::vector<char> mask(catalog_.num_items(), 0);
    for (ItemId item : g) mask[item] = 1;
    group_masks_.push_back(std::move(mask));
  }
}

bool ConstrainedLattice::WithinAllowed(const Itemset& x) const {
  for (ItemId item : x) {
    if (!allowed_mask_[item]) return false;
  }
  return true;
}

obs::Mechanism ConstrainedLattice::AllowedKillerOf(const Itemset& x) const {
  for (ItemId item : x) {
    if (!allowed_mask_[item]) {
      return static_cast<obs::Mechanism>(allowed_killer_[item]);
    }
  }
  return obs::Mechanism::kOneVar;
}

bool ConstrainedLattice::SatisfiesFormFast(const Itemset& x) const {
  if (!WithinAllowed(x)) return false;
  for (const std::vector<char>& mask : group_masks_) {
    bool hit = false;
    for (ItemId item : x) {
      if (mask[item]) {
        hit = true;
        break;
      }
    }
    if (!hit) return false;
  }
  return true;
}

void ConstrainedLattice::RefilterState(obs::Mechanism mechanism) {
  if (form_.Unsatisfiable()) {
    cur_prunes_.Add(mechanism, pending_candidates_.size());
    pending_candidates_.clear();
    generation_basis_.clear();
    valid_frequent_.clear();
    done_ = true;
    return;
  }
  RebuildMasks();
  // Sets containing a now-disallowed item can never be subsets of a
  // valid set: drop them from everything. Pending candidates were
  // generated but will no longer be counted, so each drop is
  // attributed to the mechanism that killed it.
  std::erase_if(pending_candidates_, [&](const Itemset& x) {
    if (!WithinAllowed(x)) {
      cur_prunes_.Add(AllowedKillerOf(x));
      return true;
    }
    obs::Mechanism killer = obs::Mechanism::kOneVar;
    if (!PassesCandidateFilters(x, &killer)) {
      cur_prunes_.Add(killer);
      return true;
    }
    return false;
  });
  std::erase_if(generation_basis_, [&](const Itemset& x) {
    if (!WithinAllowed(x)) return true;
    // An injected anti-monotone filter dooms every superset too, so a
    // failing basis set can be dropped from generation.
    if (!PassesCandidateFilters(x)) return true;
    // Basis sets must intersect the structural group (if adopted).
    if (structural_group_ >= 0 &&
        Disjoint(x, form_.groups[static_cast<size_t>(structural_group_)])) {
      return true;
    }
    return false;
  });
  std::erase_if(frequent_singletons_,
                [&](ItemId item) { return !allowed_mask_[item]; });
  // Retroactively re-validate collected results. Unlike the steady
  // state (where candidate filters were enforced before counting),
  // injected filters must also be re-applied here.
  std::erase_if(valid_frequent_, [&](const FrequentSet& f) {
    return !IsValidOutput(f.items) || !PassesCandidateFilters(f.items);
  });
  if (pending_candidates_.empty()) done_ = true;
}

bool ConstrainedLattice::PassesCandidateFilters(const Itemset& x,
                                                obs::Mechanism* killer) {
  for (const auto& [c, mechanism] : candidate_filters_) {
    ++stats_.constraint_checks;
    auto ok = Eval(*c, x, catalog_);
    if (!ok.ok() || !ok.value()) {
      if (killer != nullptr) *killer = mechanism;
      return false;
    }
  }
  return true;
}

bool ConstrainedLattice::PassesDynamicPrune(const Itemset& x) {
  for (const DynamicBound& b : dynamic_bounds_) {
    if (!b.prunable) continue;
    ++stats_.constraint_checks;
    auto v = AggregateOver(b.agg, b.attr, x, catalog_);
    if (!v.ok() || v.value() > b.bound) return false;
  }
  return true;
}

bool ConstrainedLattice::IsValidOutput(const Itemset& x) {
  if (!SatisfiesFormFast(x)) return false;
  for (const OneVarConstraint* c : output_filters_) {
    ++stats_.constraint_checks;
    auto ok = Eval(*c, x, catalog_);
    if (!ok.ok() || !ok.value()) return false;
  }
  for (const DynamicBound& b : dynamic_bounds_) {
    auto v = AggregateOver(b.agg, b.attr, x, catalog_);
    if (!v.ok() || v.value() > b.bound) return false;
  }
  return true;
}

std::vector<Itemset> ConstrainedLattice::GenerateNext() {
  if (structural_group_ < 0) {
    uint64_t pruned_subset = 0;
    std::vector<Itemset> out =
        GenerateCandidatesJoinPrune(generation_basis_, &pruned_subset);
    cur_generated_ = out.size() + pruned_subset;
    cur_prunes_.Add(obs::Mechanism::kInfrequentSubset, pruned_subset);
    return out;
  }
  const std::vector<char>& group_mask =
      group_masks_[static_cast<size_t>(structural_group_)];
  auto hits_group = [&](const Itemset& x) {
    for (ItemId item : x) {
      if (group_mask[item]) return true;
    }
    return false;
  };
  std::unordered_set<Itemset, ItemsetHash> basis_index(
      generation_basis_.begin(), generation_basis_.end());
  std::vector<Itemset> extended =
      GenerateCandidatesExtend(generation_basis_, frequent_singletons_);
  cur_generated_ = extended.size();
  std::vector<Itemset> out;
  for (Itemset& x : extended) {
    bool ok = true;
    for (size_t drop = 0; drop < x.size() && ok; ++drop) {
      Itemset sub = WithoutIndex(x, drop);
      // Subsets that intersect the structural group must themselves be
      // frequent basis sets; group-free subsets were never counted.
      if (hits_group(sub) && basis_index.find(sub) == basis_index.end()) {
        ok = false;
      }
    }
    if (ok) {
      out.push_back(std::move(x));
    } else {
      cur_prunes_.Add(obs::Mechanism::kInfrequentSubset);
    }
  }
  return out;
}

const std::vector<Itemset>& ConstrainedLattice::PrepareLevel() {
  static const std::vector<Itemset> kEmpty;
  if (done_) return kEmpty;
  if (options_.max_level != 0 && level_ >= options_.max_level) {
    done_ = true;
    return kEmpty;
  }
  // Dynamic bounds may have tightened since generation; only the Jmax
  // V^k series installs prunable bounds.
  std::erase_if(pending_candidates_, [&](const Itemset& x) {
    if (PassesDynamicPrune(x)) return false;
    cur_prunes_.Add(obs::Mechanism::kJmax);
    return true;
  });
  if (pending_candidates_.empty()) {
    done_ = true;
    return kEmpty;
  }
  return pending_candidates_;
}

bool ConstrainedLattice::Step() {
  if (PrepareLevel().empty()) return false;
  // The counter accounts sets_counted / io / counted-log itself.
  CccStats scratch;
  scratch.counted_log = stats_.counted_log;
  scratch.tracer = stats_.tracer;
  scratch.metrics = stats_.metrics;
  Stopwatch count_wall;
  CpuStopwatch count_cpu;
  const std::vector<uint64_t> supports =
      counter_->Count(pending_candidates_, &scratch);
  if (stats_.metrics != nullptr) {
    const char* prefix = var_ == Var::kS ? "s" : "t";
    stats_.metrics->Observe(std::string(prefix) + ".level.count_seconds",
                            count_wall.ElapsedSeconds());
    stats_.metrics->Observe(std::string(prefix) + ".level.count_cpu_seconds",
                            count_cpu.ElapsedSeconds());
  }
  scratch.counted_log = nullptr;
  stats_.sets_counted += scratch.sets_counted;
  stats_.io.MergeFrom(scratch.io);
  CompleteLevelInternal(supports, /*account_counted=*/false);
  return true;
}

void ConstrainedLattice::CompleteLevel(
    const std::vector<uint64_t>& supports) {
  CompleteLevelInternal(supports, /*account_counted=*/true);
}

void ConstrainedLattice::CompleteLevelInternal(
    const std::vector<uint64_t>& supports, bool account_counted) {
  if (account_counted) {
    stats_.sets_counted += pending_candidates_.size();
    if (stats_.counted_log != nullptr) {
      stats_.counted_log->insert(stats_.counted_log->end(),
                                 pending_candidates_.begin(),
                                 pending_candidates_.end());
    }
  }
  last_level_frequent_.clear();
  std::vector<Itemset> next_basis;
  const bool use_groups = structural_group_ >= 0;
  const std::vector<char>* group_mask =
      use_groups ? &group_masks_[static_cast<size_t>(structural_group_)]
                 : nullptr;
  auto hits_group = [&](const Itemset& x) {
    for (ItemId item : x) {
      if ((*group_mask)[item]) return true;
    }
    return false;
  };
  ++level_;
  for (size_t i = 0; i < pending_candidates_.size(); ++i) {
    if (supports[i] < min_support_) continue;
    const Itemset& items = pending_candidates_[i];
    last_level_frequent_.push_back(FrequentSet{items, supports[i]});
    if (level_ == 1) frequent_singletons_.push_back(items[0]);
    if (!use_groups || hits_group(items)) next_basis.push_back(items);
    if (IsValidOutput(items)) {
      valid_frequent_.push_back(FrequentSet{items, supports[i]});
    }
  }
  stats_.RecordLevel(cur_generated_, cur_prunes_, pending_candidates_.size(),
                     last_level_frequent_.size());
  if (stats_.tracer != nullptr) {
    obs::LevelEvent event;
    event.var = var_ == Var::kS ? 'S' : 'T';
    event.level = static_cast<uint32_t>(level_);
    event.candidates = cur_generated_;
    event.counted = pending_candidates_.size();
    event.frequent = last_level_frequent_.size();
    event.pruned_by = cur_prunes_;
    stats_.tracer->RecordLevel(event);
  }
  generation_basis_ = std::move(next_basis);

  // Generate the next level's candidates; GenerateNext resets
  // cur_generated_ and accounts the subset-frequency prunes.
  cur_generated_ = 0;
  cur_prunes_ = obs::PruneCounts{};
  Stopwatch gen_wall;
  std::vector<Itemset> generated = GenerateNext();
  pending_candidates_.clear();
  for (Itemset& x : generated) {
    obs::Mechanism killer = obs::Mechanism::kOneVar;
    if (PassesCandidateFilters(x, &killer)) {
      pending_candidates_.push_back(std::move(x));
    } else {
      cur_prunes_.Add(killer);
    }
  }
  if (stats_.metrics != nullptr) {
    stats_.metrics->Observe(
        std::string(var_ == Var::kS ? "s" : "t") + ".level.gen_seconds",
        gen_wall.ElapsedSeconds());
  }
  if (pending_candidates_.empty()) done_ = true;
}

}  // namespace cfq
