#include "mining/apriori.h"

#include <algorithm>
#include <string>

#include "common/stopwatch.h"
#include "mining/candidate_gen.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cfq {

AprioriResult MineFrequent(TransactionDb* db, const Itemset& domain,
                           uint64_t min_support, const AprioriOptions& options) {
  AprioriResult result;
  result.stats.counted_log = options.counted_log;
  result.stats.tracer = options.tracer;
  result.stats.metrics = options.metrics;
  // Histogram prefix: 's'/'t' when mining one side of a CFQ, else "u".
  const std::string metric_prefix =
      options.var_label == 'S' || options.var_label == 's'
          ? "s"
          : (options.var_label == 'T' || options.var_label == 't' ? "t" : "u");
  auto counter = MakeCounter(options.counter, db, options.pool);

  // Level 1: all domain singletons.
  std::vector<Itemset> candidates;
  candidates.reserve(domain.size());
  for (ItemId item : domain) candidates.push_back(Itemset{item});

  size_t level = 1;
  // Candidates discarded by the subset-frequency prune while generating
  // the level being counted (zero at level 1).
  uint64_t pruned_subset = 0;
  while (!candidates.empty()) {
    if (options.cancel != nullptr && options.cancel->Expired()) {
      result.cancelled = true;
      return result;
    }
    Stopwatch count_wall;
    CpuStopwatch count_cpu;
    const std::vector<uint64_t> supports =
        counter->Count(candidates, &result.stats);
    if (options.metrics != nullptr) {
      options.metrics->Observe(metric_prefix + ".level.count_seconds",
                               count_wall.ElapsedSeconds());
      options.metrics->Observe(metric_prefix + ".level.count_cpu_seconds",
                               count_cpu.ElapsedSeconds());
    }
    std::vector<Itemset> frequent_level;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (supports[i] >= min_support) {
        frequent_level.push_back(candidates[i]);
        result.frequent.push_back(FrequentSet{candidates[i], supports[i]});
      }
    }
    obs::PruneCounts pruned;
    pruned.Add(obs::Mechanism::kInfrequentSubset, pruned_subset);
    result.stats.RecordLevel(candidates.size() + pruned_subset, pruned,
                             candidates.size(), frequent_level.size());
    if (options.tracer != nullptr) {
      obs::LevelEvent event;
      event.var = options.var_label;
      event.level = static_cast<uint32_t>(level);
      event.candidates = candidates.size() + pruned_subset;
      event.counted = candidates.size();
      event.frequent = frequent_level.size();
      event.pruned_by = pruned;
      options.tracer->RecordLevel(event);
    }
    if (options.max_level != 0 && level >= options.max_level) break;
    pruned_subset = 0;
    Stopwatch gen_wall;
    candidates = GenerateCandidatesJoinPrune(frequent_level, &pruned_subset);
    if (options.metrics != nullptr) {
      options.metrics->Observe(metric_prefix + ".level.gen_seconds",
                               gen_wall.ElapsedSeconds());
    }
    ++level;
  }
  return result;
}

std::vector<FrequentSet> MineFrequentBruteForce(const TransactionDb& db,
                                                const Itemset& domain,
                                                uint64_t min_support) {
  std::vector<FrequentSet> out;
  ForEachNonEmptySubset(domain, [&](const Itemset& subset) {
    const uint64_t support = db.CountSupport(subset);
    if (support >= min_support) out.push_back(FrequentSet{subset, support});
  });
  std::sort(out.begin(), out.end(),
            [](const FrequentSet& a, const FrequentSet& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  return out;
}

}  // namespace cfq
