// Alternative frequent-set miners from the literature the paper builds
// on (Section 1's "performance and efficiency" group):
//
//   * MineFrequentPartitioned — the partition algorithm of Savasere,
//     Omiecinski & Navathe (VLDB'95): split the transaction file into
//     partitions that fit in memory, mine each partition's locally
//     frequent sets at a scaled-down threshold, union the local results
//     into a global candidate pool, and verify it with one more pass.
//     Exactly two scans of the database regardless of lattice depth.
//
//   * MineFrequentSampled — Toivonen's sampling algorithm (VLDB'96):
//     mine a random sample at a lowered threshold, then verify the
//     sample-frequent sets AND their negative border against the full
//     database; if a negative-border set turns out frequent the sample
//     missed something and the caller is told (`misses`), in which case
//     this implementation falls back to exact Apriori so the result is
//     always exact.
//
// Both return exactly the same frequent sets as MineFrequent (tests
// enforce it); they trade candidate-pool size for scan count.

#ifndef CFQ_MINING_PARTITION_H_
#define CFQ_MINING_PARTITION_H_

#include <cstdint>

#include "common/result.h"
#include "mining/apriori.h"

namespace cfq {

struct PartitionOptions {
  size_t num_partitions = 4;
  CounterKind counter = CounterKind::kBitmap;
};

struct PartitionResult {
  std::vector<FrequentSet> frequent;
  // Size of the unioned candidate pool verified in the second scan.
  uint64_t global_candidates = 0;
  CccStats stats;
};

// Exact frequent-set mining in two passes. `min_support` is absolute;
// a set is locally frequent in a partition holding fraction f of the
// transactions when its local support reaches ceil(f * min_support).
Result<PartitionResult> MineFrequentPartitioned(
    TransactionDb* db, const Itemset& domain, uint64_t min_support,
    const PartitionOptions& options = {});

struct SampleOptions {
  // Fraction of transactions sampled (with replacement).
  double sample_fraction = 0.1;
  // The sample is mined at min_support * sample_fraction * safety.
  double safety = 0.8;
  uint64_t seed = 1;
  CounterKind counter = CounterKind::kBitmap;
};

struct SampleResult {
  std::vector<FrequentSet> frequent;
  // Negative-border sets found frequent in the full data (the sample
  // missed them). When nonzero the result was recomputed exactly.
  uint64_t misses = 0;
  uint64_t sample_candidates = 0;  // Sets mined from the sample.
  CccStats stats;
};

Result<SampleResult> MineFrequentSampled(TransactionDb* db,
                                         const Itemset& domain,
                                         uint64_t min_support,
                                         const SampleOptions& options = {});

}  // namespace cfq

#endif  // CFQ_MINING_PARTITION_H_
