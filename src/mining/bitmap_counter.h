// Vertical TID-bitmap support counting (see counter.h).

#ifndef CFQ_MINING_BITMAP_COUNTER_H_
#define CFQ_MINING_BITMAP_COUNTER_H_

#include <vector>

#include "common/bitset64.h"
#include "mining/counter.h"

namespace cfq {

class BitmapCounter : public SupportCounter {
 public:
  // Eagerly builds the vertical index if the database lacks one (the
  // constructor is the single-threaded setup point; building lazily on
  // first Count was a data race once two threads counted). The build
  // scan is accounted on the first Count call that carries stats.
  // `db` and `pool` must outlive the counter.
  explicit BitmapCounter(TransactionDb* db, ThreadPool* pool = nullptr);

  // With a pool, parallel across candidates: each chunk of the sorted
  // candidate list batches runs of siblings (same k-1 prefix) through
  // one prefix intersection plus a fused AndCountMany, and chunks
  // write disjoint ranges of the result.
  std::vector<uint64_t> Count(const std::vector<Itemset>& candidates,
                              CccStats* stats) override;

 private:
  // Counts candidates[begin, end) into (*supports)[begin, end).
  void CountRange(const std::vector<Itemset>& candidates, size_t begin,
                  size_t end, std::vector<uint64_t>* supports) const;

  TransactionDb* db_;
  ThreadPool* pool_;
  bool index_scan_accounted_ = false;
};

}  // namespace cfq

#endif  // CFQ_MINING_BITMAP_COUNTER_H_
