// Vertical TID-bitmap support counting (see counter.h).

#ifndef CFQ_MINING_BITMAP_COUNTER_H_
#define CFQ_MINING_BITMAP_COUNTER_H_

#include <vector>

#include "common/bitset64.h"
#include "mining/counter.h"

namespace cfq {

class BitmapCounter : public SupportCounter {
 public:
  // Builds the vertical index if missing (accounted as one scan on the
  // first Count call). `db` must outlive the counter.
  explicit BitmapCounter(TransactionDb* db) : db_(db) {}

  std::vector<uint64_t> Count(const std::vector<Itemset>& candidates,
                              CccStats* stats) override;

 private:
  TransactionDb* db_;
  bool index_scan_accounted_ = false;
};

}  // namespace cfq

#endif  // CFQ_MINING_BITMAP_COUNTER_H_
