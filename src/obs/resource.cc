#include "obs/resource.h"

#include <sys/resource.h>
#include <sys/time.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace cfq::obs {

namespace {

double TvSeconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) * 1e-6;
}

double WallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

rusage SelfUsage() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru;
}

std::string Fmt(double value, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace

void ResourceUsage::MergeFrom(const ResourceUsage& other) {
  wall_seconds += other.wall_seconds;
  user_cpu_seconds += other.user_cpu_seconds;
  sys_cpu_seconds += other.sys_cpu_seconds;
  max_rss_kb = std::max(max_rss_kb, other.max_rss_kb);
  minor_faults += other.minor_faults;
  major_faults += other.major_faults;
  voluntary_ctx_switches += other.voluntary_ctx_switches;
  involuntary_ctx_switches += other.involuntary_ctx_switches;
}

ResourceTracker::ResourceTracker() {
  const rusage ru = SelfUsage();
  wall_start_ = WallNow();
  user_start_ = TvSeconds(ru.ru_utime);
  sys_start_ = TvSeconds(ru.ru_stime);
  minflt_start_ = static_cast<uint64_t>(ru.ru_minflt);
  majflt_start_ = static_cast<uint64_t>(ru.ru_majflt);
  nvcsw_start_ = static_cast<uint64_t>(ru.ru_nvcsw);
  nivcsw_start_ = static_cast<uint64_t>(ru.ru_nivcsw);
}

ResourceUsage ResourceTracker::Finish() const {
  const rusage ru = SelfUsage();
  ResourceUsage out;
  out.wall_seconds = WallNow() - wall_start_;
  out.user_cpu_seconds = TvSeconds(ru.ru_utime) - user_start_;
  out.sys_cpu_seconds = TvSeconds(ru.ru_stime) - sys_start_;
  // ru_maxrss is kilobytes on Linux (bytes on macOS, where this would
  // need dividing; the toolchain here is Linux-only).
  out.max_rss_kb = static_cast<uint64_t>(ru.ru_maxrss);
  out.minor_faults = static_cast<uint64_t>(ru.ru_minflt) - minflt_start_;
  out.major_faults = static_cast<uint64_t>(ru.ru_majflt) - majflt_start_;
  out.voluntary_ctx_switches =
      static_cast<uint64_t>(ru.ru_nvcsw) - nvcsw_start_;
  out.involuntary_ctx_switches =
      static_cast<uint64_t>(ru.ru_nivcsw) - nivcsw_start_;
  return out;
}

void ExportResource(const ResourceUsage& usage, MetricsRegistry* registry) {
  registry->SetGauge("resource.wall_seconds", usage.wall_seconds);
  registry->SetGauge("resource.user_cpu_seconds", usage.user_cpu_seconds);
  registry->SetGauge("resource.sys_cpu_seconds", usage.sys_cpu_seconds);
  registry->SetGauge("resource.max_rss_kb",
                     static_cast<double>(usage.max_rss_kb));
  registry->Add("resource.minor_faults", usage.minor_faults);
  registry->Add("resource.major_faults", usage.major_faults);
  registry->Add("resource.ctx_switches.voluntary",
                usage.voluntary_ctx_switches);
  registry->Add("resource.ctx_switches.involuntary",
                usage.involuntary_ctx_switches);
}

void ExportPoolStats(const ThreadPoolStats& stats, MetricsRegistry* registry) {
  registry->SetGauge("pool.workers", static_cast<double>(stats.workers));
  registry->Add("pool.tasks", stats.tasks);
  registry->Add("pool.chunks", stats.chunks);
  registry->SetGauge("pool.busy_seconds", stats.busy_seconds);
  registry->SetGauge("pool.idle_seconds", stats.idle_seconds);
}

std::string RenderResourceUsage(const ResourceUsage& usage,
                                const ThreadPoolStats& pool) {
  std::string out = "resources: wall " + Fmt(usage.wall_seconds, 4) +
                    "s, user " + Fmt(usage.user_cpu_seconds, 4) + "s, sys " +
                    Fmt(usage.sys_cpu_seconds, 4) + "s, peak RSS " +
                    Fmt(static_cast<double>(usage.max_rss_kb) / 1024.0, 1) +
                    " MB, faults " + std::to_string(usage.minor_faults) +
                    " minor / " + std::to_string(usage.major_faults) +
                    " major, ctx " +
                    std::to_string(usage.voluntary_ctx_switches) +
                    " voluntary / " +
                    std::to_string(usage.involuntary_ctx_switches) +
                    " involuntary\n";
  if (pool.workers > 0) {
    out += "pool: " + std::to_string(pool.workers) + " threads, " +
           std::to_string(pool.tasks) + " tasks, " +
           std::to_string(pool.chunks) + " chunks, busy " +
           Fmt(pool.busy_seconds, 4) + "s, idle " +
           Fmt(pool.idle_seconds, 4) + "s\n";
  }
  return out;
}

}  // namespace cfq::obs
