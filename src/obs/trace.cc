#include "obs/trace.h"

namespace cfq::obs {

Tracer::Tracer(size_t capacity)
    : start_(std::chrono::steady_clock::now()),
      ring_(capacity == 0 ? 1 : capacity) {}

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void Tracer::Push(const char* name, EventPhase phase, EventPayload payload) {
  // Timestamp outside the lock so contention does not skew ts ordering
  // more than it has to; slot claim + fill inside so a wrapped slot is
  // never written by two threads at once and snapshots see whole
  // events.
  const int64_t ts = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent& slot = ring_[next_ % ring_.size()];
  ++next_;
  slot.name = name;
  slot.phase = phase;
  slot.ts_us = ts;
  slot.payload = std::move(payload);
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t total = next_;
  const uint64_t n = ring_.size();
  std::vector<TraceEvent> out;
  if (total <= n) {
    out.assign(ring_.begin(), ring_.begin() + static_cast<size_t>(total));
    return out;
  }
  out.reserve(n);
  const uint64_t head = total % n;  // Oldest surviving slot.
  out.insert(out.end(), ring_.begin() + static_cast<size_t>(head),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<size_t>(head));
  return out;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_ > ring_.size() ? next_ - ring_.size() : 0;
}

}  // namespace cfq::obs
