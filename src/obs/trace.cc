#include "obs/trace.h"

namespace cfq::obs {

Tracer::Tracer(size_t capacity)
    : start_(std::chrono::steady_clock::now()),
      ring_(capacity == 0 ? 1 : capacity) {}

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void Tracer::Push(const char* name, EventPhase phase, EventPayload payload) {
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  TraceEvent& slot = ring_[seq % ring_.size()];
  slot.name = name;
  slot.phase = phase;
  slot.ts_us = NowMicros();
  slot.payload = std::move(payload);
}

std::vector<TraceEvent> Tracer::Events() const {
  const uint64_t total = next_.load(std::memory_order_relaxed);
  const uint64_t n = ring_.size();
  std::vector<TraceEvent> out;
  if (total <= n) {
    out.assign(ring_.begin(), ring_.begin() + static_cast<size_t>(total));
    return out;
  }
  out.reserve(n);
  const uint64_t head = total % n;  // Oldest surviving slot.
  out.insert(out.end(), ring_.begin() + static_cast<size_t>(head),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<size_t>(head));
  return out;
}

uint64_t Tracer::dropped() const {
  const uint64_t total = next_.load(std::memory_order_relaxed);
  return total > ring_.size() ? total - ring_.size() : 0;
}

}  // namespace cfq::obs
