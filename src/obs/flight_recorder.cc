#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/export.h"

namespace cfq::obs {

namespace {

std::string SecondsString(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

}  // namespace

FlightRecorder::FlightRecorder(const FlightRecorderOptions& options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {}

int64_t FlightRecorder::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void FlightRecorder::Record(CompletedQueryTrace trace) {
  trace.slow = trace.elapsed_seconds >= options_.slow_threshold_seconds;
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_total_;
  if (trace.slow) {
    ++slow_total_;
    if (options_.slow_capacity > 0) {
      slow_.push_back(trace);
      while (slow_.size() > options_.slow_capacity) slow_.pop_front();
    }
  }
  if (options_.recent_capacity > 0) {
    recent_.push_back(std::move(trace));
    while (recent_.size() > options_.recent_capacity) recent_.pop_front();
  }
}

FlightRecorderSummary FlightRecorder::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  FlightRecorderSummary summary;
  summary.recorded_total = recorded_total_;
  summary.slow_total = slow_total_;
  summary.recent_size = recent_.size();
  summary.slow_size = slow_.size();
  summary.slow_threshold_seconds = options_.slow_threshold_seconds;
  return summary;
}

std::vector<CompletedQueryTrace> FlightRecorder::Snapshot() const {
  std::vector<CompletedQueryTrace> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(recent_.size() + slow_.size());
    out.insert(out.end(), recent_.begin(), recent_.end());
    out.insert(out.end(), slow_.begin(), slow_.end());
  }
  // A slow trace sits in both rings until the recent ring rotates past
  // it; ids are unique, so sort + unique dedups the overlap.
  std::sort(out.begin(), out.end(),
            [](const CompletedQueryTrace& a, const CompletedQueryTrace& b) {
              return a.id < b.id;
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const CompletedQueryTrace& a,
                           const CompletedQueryTrace& b) {
                          return a.id == b.id;
                        }),
            out.end());
  return out;
}

void FlightRecorder::WriteChromeTrace(std::ostream& os) const {
  const std::vector<CompletedQueryTrace> traces = Snapshot();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const CompletedQueryTrace& trace : traces) {
    // Ids start at 1, so a pid never collides with a lone-tracer dump's
    // pid 1... except for trace 1, which IS that query. Each query gets
    // its own process lane, labeled for the Perfetto process list.
    const int pid = static_cast<int>(trace.id);
    std::string label = "query " + std::to_string(trace.id);
    if (trace.slow) label += " SLOW";
    if (!trace.dataset.empty()) label += " dataset=" + trace.dataset;
    if (!trace.strategy.empty()) label += " strategy=" + trace.strategy;
    if (!trace.source.empty()) label += " source=" + trace.source;
    if (!trace.status.empty()) label += " status=" + trace.status;
    label += " elapsed=" + SecondsString(trace.elapsed_seconds) + "s";
    if (!trace.client_trace_id.empty()) {
      label += " client_trace_id=" + trace.client_trace_id;
    }
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"args\":{\"name\":\"" << TraceJsonEscape(label) << "\"}}";
    AppendChromeEvents(trace.events, pid, trace.start_us, &first, os);
  }
  os << "\n]}\n";
}

}  // namespace cfq::obs
