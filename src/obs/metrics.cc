#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cfq::obs {

namespace {

// Shortest-roundtrip-ish double formatting that is always valid JSON
// (no inf/nan; those become 0).
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// Index of the first bucket whose upper bound 2^e satisfies value <=
// 2^e, clamped to the histogram's range. Non-positive values land in
// bucket 0 (they are legal observations — an empty level can complete
// in under the clock's resolution).
size_t BucketIndex(double value) {
  if (!(value > 0)) return 0;
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);
  // frexp: value = mantissa * 2^exp with mantissa in [0.5, 1). A value
  // exactly equal to 2^(exp-1) belongs in that bucket (le semantics).
  if (mantissa == 0.5) --exp;
  const int clamped =
      std::clamp(exp, Histogram::kMinExp, Histogram::kMaxExp);
  return static_cast<size_t>(clamped - Histogram::kMinExp);
}

}  // namespace

double Histogram::BucketUpperBound(size_t i) {
  return std::ldexp(1.0, kMinExp + static_cast<int>(i));
}

void Histogram::Observe(double value) {
  ++buckets_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based, ceil(q * count) >= 1.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += buckets_[i];
    if (cumulative < rank) continue;
    // Interpolate inside the bucket between its bounds; the edge
    // buckets' nominal bounds can be far from the data, so clamp to
    // the exact observed range.
    const double lo = i == 0 ? 0 : BucketUpperBound(i - 1);
    const double hi = BucketUpperBound(i);
    const double frac = static_cast<double>(rank - before) /
                        static_cast<double>(buckets_[i]);
    return std::clamp(lo + frac * (hi - lo), min_, max_);
  }
  return max_;
}

void Histogram::MergeFrom(const Histogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void MetricsRegistry::Add(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].Observe(value);
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

Histogram MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Lock ordering: `other` is snapshotted first so the two mutexes are
  // never held together (self-merge is a no-op by contract).
  if (&other == this) return;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    counters = other.counters_;
    gauges = other.gauges_;
    histograms = other.histograms_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : counters) counters_[name] += value;
  for (const auto& [name, value] : gauges) gauges_[name] = value;
  for (const auto& [name, h] : histograms) histograms_[name].MergeFrom(h);
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, value] : counters_) {
    Sample s;
    s.name = name;
    s.kind = SampleKind::kCounter;
    s.count = value;
    out.push_back(std::move(s));
  }
  for (const auto& [name, value] : gauges_) {
    Sample s;
    s.name = name;
    s.kind = SampleKind::kGauge;
    s.value = value;
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    Sample s;
    s.name = name;
    s.kind = SampleKind::kHistogram;
    s.histogram = h;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

void MetricsRegistry::WriteJsonl(std::ostream& os) const {
  // Names are dotted identifiers (no quotes/backslashes), so plain
  // interpolation is safe; values are numbers.
  for (const Sample& s : Snapshot()) {
    switch (s.kind) {
      case SampleKind::kCounter:
        os << "{\"name\":\"" << s.name << "\",\"type\":\"counter\",\"value\":"
           << s.count << "}\n";
        break;
      case SampleKind::kGauge:
        os << "{\"name\":\"" << s.name << "\",\"type\":\"gauge\",\"value\":"
           << JsonNumber(s.value) << "}\n";
        break;
      case SampleKind::kHistogram: {
        const Histogram& h = s.histogram;
        os << "{\"name\":\"" << s.name << "\",\"type\":\"histogram\""
           << ",\"count\":" << h.count() << ",\"sum\":" << JsonNumber(h.sum())
           << ",\"min\":" << JsonNumber(h.min())
           << ",\"max\":" << JsonNumber(h.max())
           << ",\"p50\":" << JsonNumber(h.Quantile(0.50))
           << ",\"p90\":" << JsonNumber(h.Quantile(0.90))
           << ",\"p99\":" << JsonNumber(h.Quantile(0.99)) << "}\n";
        break;
      }
    }
  }
}

}  // namespace cfq::obs
