#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

namespace cfq::obs {

namespace {

// Shortest-roundtrip-ish double formatting that is always valid JSON
// (no inf/nan; those become 0).
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

void MetricsRegistry::Add(const std::string& name, uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  gauges_[name] = value;
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size());
  auto c = counters_.begin();
  auto g = gauges_.begin();
  while (c != counters_.end() || g != gauges_.end()) {
    const bool take_counter =
        g == gauges_.end() || (c != counters_.end() && c->first <= g->first);
    Sample s;
    if (take_counter) {
      s.name = c->first;
      s.is_counter = true;
      s.count = c->second;
      ++c;
    } else {
      s.name = g->first;
      s.is_counter = false;
      s.value = g->second;
      ++g;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::WriteJsonl(std::ostream& os) const {
  // Names are dotted identifiers (no quotes/backslashes), so plain
  // interpolation is safe; values are numbers.
  for (const Sample& s : Snapshot()) {
    os << "{\"name\":\"" << s.name << "\",\"type\":\""
       << (s.is_counter ? "counter" : "gauge") << "\",\"value\":";
    if (s.is_counter) {
      os << s.count;
    } else {
      os << JsonNumber(s.value);
    }
    os << "}\n";
  }
}

}  // namespace cfq::obs
