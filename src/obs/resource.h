// Per-query resource accounting.
//
// ResourceTracker snapshots getrusage(RUSAGE_SELF) plus a wall clock at
// construction; Finish() returns the deltas as a ResourceUsage —
// user/sys CPU seconds, minor/major page faults, context switches —
// along with the process's peak RSS (an absolute high-water mark, not a
// delta: the kernel only reports the lifetime peak). The executor runs
// one tracker per query and stores the result in StrategyStats, which
// is how `EXPLAIN ANALYZE` and the shell's `analyze` command surface
// where a query's time actually went.
//
// ExportResource flattens a ResourceUsage (and the ThreadPool's
// busy/idle/task counters) into a MetricsRegistry under stable dotted
// names (resource.user_cpu_seconds, pool.busy_seconds, ...).

#ifndef CFQ_OBS_RESOURCE_H_
#define CFQ_OBS_RESOURCE_H_

#include <cstdint>
#include <string>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace cfq::obs {

struct ResourceUsage {
  double wall_seconds = 0;
  double user_cpu_seconds = 0;
  double sys_cpu_seconds = 0;
  // Process peak RSS in kilobytes (lifetime high-water mark at the time
  // the tracker finished, not a delta).
  uint64_t max_rss_kb = 0;
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;
  uint64_t voluntary_ctx_switches = 0;
  uint64_t involuntary_ctx_switches = 0;

  // Accumulates another run's usage (repeated harness iterations):
  // times and fault counts add, peak RSS takes the max.
  void MergeFrom(const ResourceUsage& other);
};

class ResourceTracker {
 public:
  // Takes the starting snapshot.
  ResourceTracker();

  // Usage since construction. May be called repeatedly; each call
  // reports the delta from construction, so take the last.
  ResourceUsage Finish() const;

 private:
  double wall_start_;
  double user_start_;
  double sys_start_;
  uint64_t minflt_start_;
  uint64_t majflt_start_;
  uint64_t nvcsw_start_;
  uint64_t nivcsw_start_;
};

// Exports `usage` into `registry`: gauges resource.wall_seconds,
// resource.user_cpu_seconds, resource.sys_cpu_seconds,
// resource.max_rss_kb; counters resource.minor_faults,
// resource.major_faults, resource.ctx_switches.{voluntary,involuntary}.
void ExportResource(const ResourceUsage& usage, MetricsRegistry* registry);

// Exports a pool's counters: gauge pool.workers; counters pool.tasks,
// pool.chunks; gauges pool.busy_seconds, pool.idle_seconds.
void ExportPoolStats(const ThreadPoolStats& stats, MetricsRegistry* registry);

// Two-line human-readable summary used by EXPLAIN ANALYZE:
//   resources: wall 0.12s, user 0.40s, sys 0.01s, peak RSS 34.2 MB, ...
//   pool: 8 threads, 12 tasks, 96 chunks, busy 0.80s, idle 0.15s
// The pool line is omitted when `pool.workers` is 0.
std::string RenderResourceUsage(const ResourceUsage& usage,
                                const ThreadPoolStats& pool);

}  // namespace cfq::obs

#endif  // CFQ_OBS_RESOURCE_H_
