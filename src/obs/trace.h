// Structured tracing for the mining stack.
//
// A Tracer collects typed events (per-level pruning attribution, Jmax
// V^k series points, database scans, pair-formation summaries) plus
// RAII begin/end spans into a fixed-capacity ring buffer. Recording is
// thread-safe: a short mutex-guarded critical section claims the slot
// and fills it, so concurrent lattice threads and sharded counters can
// share one tracer and a snapshot never observes a torn event (the
// memory model the attribution identity tests rely on). When the ring
// wraps, the oldest events are overwritten and counted in dropped().
// A null Tracer* everywhere means tracing is off and costs one pointer
// test per site, so instrumentation stays compiled in.
//
// Exporters (export.h) turn a snapshot into Chrome trace_event JSON
// (chrome://tracing, Perfetto) or JSONL for harnesses and CI.

#ifndef CFQ_OBS_TRACE_H_
#define CFQ_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <variant>
#include <vector>

#include "obs/mechanism.h"

namespace cfq::obs {

// One completed lattice level: `candidates` were generated, `pruned_by`
// attributes everyone discarded before counting, `counted` had their
// support computed, `frequent` met the threshold. Invariant:
// candidates - pruned_by.Total() == counted.
struct LevelEvent {
  char var = '?';  // 'S' or 'T' ('?' for an unbound miner).
  uint32_t level = 0;
  uint64_t candidates = 0;
  uint64_t counted = 0;
  uint64_t frequent = 0;
  PruneCounts pruned_by;
};

// One point of the decreasing V^k series (Theorem 5): computed from
// `source_var`'s level-`level` frequent sets, bounding sum() on the
// other side. `v_k` is the running bound after this level (monotone
// non-increasing); `jmax_k` is the Figure-5 J bound behind it.
struct JmaxEvent {
  char source_var = '?';
  uint32_t level = 0;
  int64_t jmax_k = -1;
  double v_k = 0;
};

// One (symbolic) pass over the transaction file.
struct ScanEvent {
  uint64_t scans = 0;
  uint64_t pages = 0;
};

// Pair-formation summary: `checks` candidate pairs verified against the
// 2-var constraints, `kept` survived.
struct PairPhaseEvent {
  uint64_t checks = 0;
  uint64_t kept = 0;
  double seconds = 0;
};

// One FUP-style incremental refresh (src/incremental/): the mining
// state moved from `from_generation` to `to_generation` by recounting
// `recounted` known sets over `delta_transactions` appended
// transactions, fully counting `fresh` previously-unseen candidates,
// and reusing `reused` supports untouched; `promoted`/`demoted` sets
// crossed minsup in either direction.
struct DeltaEvent {
  uint64_t from_generation = 0;
  uint64_t to_generation = 0;
  uint64_t delta_transactions = 0;
  uint64_t recounted = 0;
  uint64_t fresh = 0;
  uint64_t reused = 0;
  uint64_t promoted = 0;
  uint64_t demoted = 0;
};

enum class EventPhase : uint8_t {
  kSpanBegin,  // Chrome "B"
  kSpanEnd,    // Chrome "E"
  kInstant,    // Chrome "i"; typed payloads export as instants.
};

using EventPayload = std::variant<std::monostate, LevelEvent, JmaxEvent,
                                  ScanEvent, PairPhaseEvent, DeltaEvent>;

struct TraceEvent {
  const char* name = "";  // Must have static storage duration.
  EventPhase phase = EventPhase::kInstant;
  int64_t ts_us = 0;  // Microseconds since Tracer construction.
  EventPayload payload;
};

class Tracer {
 public:
  explicit Tracer(size_t capacity = 1 << 16);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void BeginSpan(const char* name) {
    Push(name, EventPhase::kSpanBegin, std::monostate{});
  }
  void EndSpan(const char* name) {
    Push(name, EventPhase::kSpanEnd, std::monostate{});
  }
  void Instant(const char* name) {
    Push(name, EventPhase::kInstant, std::monostate{});
  }
  void RecordLevel(const LevelEvent& e) {
    Push("level", EventPhase::kInstant, e);
  }
  void RecordJmax(const JmaxEvent& e) { Push("jmax", EventPhase::kInstant, e); }
  void RecordScan(const ScanEvent& e) { Push("scan", EventPhase::kInstant, e); }
  void RecordPairPhase(const PairPhaseEvent& e) {
    Push("pair_phase", EventPhase::kInstant, e);
  }
  void RecordDelta(const DeltaEvent& e) {
    Push("delta", EventPhase::kInstant, e);
  }

  // Snapshot in record order, oldest surviving event first. Safe
  // against concurrent writers (events recorded while snapshotting are
  // either fully included or fully absent, never torn).
  std::vector<TraceEvent> Events() const;

  // Events overwritten because the ring wrapped.
  uint64_t dropped() const;

 private:
  void Push(const char* name, EventPhase phase, EventPayload payload);
  int64_t NowMicros() const;

  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  uint64_t next_ = 0;  // Total events ever recorded; guarded by mu_.
};

// RAII span; a null tracer makes both ends no-ops.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name) : tracer_(tracer), name_(name) {
    if (tracer_ != nullptr) tracer_->BeginSpan(name_);
  }
  ~TraceSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(name_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
};

}  // namespace cfq::obs

#endif  // CFQ_OBS_TRACE_H_
