// Trace and metrics exporters.
//
// WriteChromeTrace emits the Chrome trace_event JSON object format
// (loadable in chrome://tracing and https://ui.perfetto.dev): spans as
// B/E duration events, typed events as instants with their fields in
// "args", and per-variable candidates/frequent counter tracks.
//
// WriteTraceJsonl emits one flat JSON object per event per line, the
// format the bench harnesses and CI consume.
//
// WritePrometheus emits a MetricsRegistry snapshot in the Prometheus
// text exposition format (version 0.0.4): dotted names become
// underscored with a `cfq_` prefix, histograms get cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`.

#ifndef CFQ_OBS_EXPORT_H_
#define CFQ_OBS_EXPORT_H_

#include <ostream>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cfq::obs {

// Escapes `s` for embedding inside a JSON string literal (no quotes
// added) — shared by the trace exporters and the flight recorder.
std::string TraceJsonEscape(const std::string& s);

// Appends the Chrome trace_event objects for `events` (B/E spans,
// typed instants, and the per-variable counter tracks) to an already
// open "traceEvents" array on `os`. `pid` keys the process lane —
// multi-query dumps give each query its own pid so spans and counter
// tracks from different queries never interleave — and `ts_offset_us`
// shifts the events' tracer-relative timestamps onto a shared
// timeline. `*first` carries comma state across calls.
void AppendChromeEvents(const std::vector<TraceEvent>& events, int pid,
                        int64_t ts_offset_us, bool* first, std::ostream& os);

void WriteChromeTrace(const std::vector<TraceEvent>& events, std::ostream& os);
void WriteTraceJsonl(const std::vector<TraceEvent>& events, std::ostream& os);

void WritePrometheus(const MetricsRegistry& registry, std::ostream& os);

// Snapshots the counting-kernel dispatcher state (common/simd.h) into
// `registry`: an info-style gauge `simd.kernel.<name>` = 1 for the
// active kernel, plus per-op `simd.<op>.calls` and `simd.<op>.bytes`
// gauges. Gauges, not counters: the simd totals are process-cumulative,
// so re-exporting overwrites (and MergeFrom keeps the latest snapshot)
// instead of double-counting.
void ExportSimdMetrics(MetricsRegistry* registry);

inline void WriteChromeTrace(const Tracer& tracer, std::ostream& os) {
  WriteChromeTrace(tracer.Events(), os);
}
inline void WriteTraceJsonl(const Tracer& tracer, std::ostream& os) {
  WriteTraceJsonl(tracer.Events(), os);
}

}  // namespace cfq::obs

#endif  // CFQ_OBS_EXPORT_H_
