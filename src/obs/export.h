// Trace and metrics exporters.
//
// WriteChromeTrace emits the Chrome trace_event JSON object format
// (loadable in chrome://tracing and https://ui.perfetto.dev): spans as
// B/E duration events, typed events as instants with their fields in
// "args", and per-variable candidates/frequent counter tracks.
//
// WriteTraceJsonl emits one flat JSON object per event per line, the
// format the bench harnesses and CI consume.
//
// WritePrometheus emits a MetricsRegistry snapshot in the Prometheus
// text exposition format (version 0.0.4): dotted names become
// underscored with a `cfq_` prefix, histograms get cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`.

#ifndef CFQ_OBS_EXPORT_H_
#define CFQ_OBS_EXPORT_H_

#include <ostream>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cfq::obs {

void WriteChromeTrace(const std::vector<TraceEvent>& events, std::ostream& os);
void WriteTraceJsonl(const std::vector<TraceEvent>& events, std::ostream& os);

void WritePrometheus(const MetricsRegistry& registry, std::ostream& os);

inline void WriteChromeTrace(const Tracer& tracer, std::ostream& os) {
  WriteChromeTrace(tracer.Events(), os);
}
inline void WriteTraceJsonl(const Tracer& tracer, std::ostream& os) {
  WriteTraceJsonl(tracer.Events(), os);
}

}  // namespace cfq::obs

#endif  // CFQ_OBS_EXPORT_H_
