// MetricsRegistry: named monotonic counters and gauges.
//
// The machine-readable sibling of the paper-facing CccStats /
// StrategyStats structs: miners account their work in those structs as
// before, and the registry holds the same numbers (plus anything else a
// harness adds) under stable dotted names so they can be exported as
// JSONL and diffed across runs in CI.

#ifndef CFQ_OBS_METRICS_H_
#define CFQ_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace cfq::obs {

class MetricsRegistry {
 public:
  // Bumps monotonic counter `name` by `delta`.
  void Add(const std::string& name, uint64_t delta = 1);
  // Sets gauge `name` (last write wins).
  void SetGauge(const std::string& name, double value);

  // 0 / 0.0 for names never written.
  uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;

  struct Sample {
    std::string name;
    bool is_counter = true;
    uint64_t count = 0;  // Valid when is_counter.
    double value = 0;    // Valid when !is_counter.
  };

  // All samples, sorted by name (counters and gauges interleaved).
  std::vector<Sample> Snapshot() const;

  // One JSON object per line:
  //   {"name":"s.sets_counted","type":"counter","value":123}
  //   {"name":"elapsed_seconds","type":"gauge","value":0.42}
  void WriteJsonl(std::ostream& os) const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
};

}  // namespace cfq::obs

#endif  // CFQ_OBS_METRICS_H_
