// MetricsRegistry: named monotonic counters, gauges and log-bucketed
// latency/size histograms.
//
// The machine-readable sibling of the paper-facing CccStats /
// StrategyStats structs: miners account their work in those structs as
// before, and the registry holds the same numbers (plus anything else a
// harness adds) under stable dotted names so they can be exported as
// JSONL or Prometheus text and diffed across runs in CI.
//
// Thread safety: every public method takes an internal mutex, so the
// sharded counters and the concurrent S/T lattice threads may share one
// registry. For deterministic output the executor instead gives each
// lattice thread its own registry and folds them together with
// MergeFrom once the threads have joined.

#ifndef CFQ_OBS_METRICS_H_
#define CFQ_OBS_METRICS_H_

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace cfq::obs {

// Log-bucketed histogram: power-of-two buckets spanning ~1 microsecond
// (2^-20) to ~1 terabyte (2^40), which covers both phase latencies in
// seconds and per-scan byte volumes. Observation `v` lands in the first
// bucket whose upper bound 2^e satisfies v <= 2^e; values outside the
// range clamp to the edge buckets. Alongside the buckets the histogram
// keeps exact count/sum/min/max, and quantiles are estimated by linear
// interpolation inside the selected bucket (clamped to [min, max]).
class Histogram {
 public:
  // Power-of-two exponents of the smallest and largest finite bucket
  // upper bounds.
  static constexpr int kMinExp = -20;
  static constexpr int kMaxExp = 40;
  static constexpr size_t kNumBuckets =
      static_cast<size_t>(kMaxExp - kMinExp + 1);

  void Observe(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  // 0 when empty.
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  }

  // Estimated q-quantile (q in [0, 1]); 0 when empty.
  double Quantile(double q) const;

  // Upper bound of bucket `i`: 2^(kMinExp + i).
  static double BucketUpperBound(size_t i);
  // Per-bucket (non-cumulative) counts, index 0 = smallest bound.
  const uint64_t* bucket_counts() const { return buckets_; }

  void MergeFrom(const Histogram& other);

 private:
  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Bumps monotonic counter `name` by `delta`.
  void Add(const std::string& name, uint64_t delta = 1);
  // Sets gauge `name` (last write wins).
  void SetGauge(const std::string& name, double value);
  // Records one observation into histogram `name`.
  void Observe(const std::string& name, double value);

  // 0 / 0.0 / empty for names never written.
  uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  Histogram histogram(const std::string& name) const;

  // Folds `other` into this registry: counters add, histograms merge,
  // gauges take `other`'s value (last write wins). The merge order is
  // the caller's to fix, which is what makes per-thread registries
  // deterministic where a shared one would interleave gauge writes.
  void MergeFrom(const MetricsRegistry& other);

  enum class SampleKind : uint8_t { kCounter, kGauge, kHistogram };

  struct Sample {
    std::string name;
    SampleKind kind = SampleKind::kCounter;
    uint64_t count = 0;    // kCounter value.
    double value = 0;      // kGauge value.
    Histogram histogram;   // kHistogram payload.
  };

  // All samples, sorted by name (kinds interleaved).
  std::vector<Sample> Snapshot() const;

  // One JSON object per line:
  //   {"name":"s.sets_counted","type":"counter","value":123}
  //   {"name":"elapsed_seconds","type":"gauge","value":0.42}
  //   {"name":"s.level.count_seconds","type":"histogram","count":4,
  //    "sum":0.2,"min":...,"max":...,"p50":...,"p90":...,"p99":...}
  void WriteJsonl(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace cfq::obs

#endif  // CFQ_OBS_METRICS_H_
