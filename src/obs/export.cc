#include "obs/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "common/simd.h"

namespace cfq::obs {

namespace {

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string JsonEscape(const char* s) { return TraceJsonEscape(s); }

// Renders the typed payload's fields as JSON members (no braces),
// e.g. `"var":"S","level":2,...`. Empty for plain spans/instants.
std::string PayloadFields(const EventPayload& payload) {
  std::string out;
  if (const auto* level = std::get_if<LevelEvent>(&payload)) {
    out += "\"var\":\"";
    out += level->var;
    out += "\",\"level\":" + std::to_string(level->level);
    out += ",\"candidates\":" + std::to_string(level->candidates);
    out += ",\"counted\":" + std::to_string(level->counted);
    out += ",\"frequent\":" + std::to_string(level->frequent);
    out += ",\"pruned\":{";
    for (size_t m = 0; m < kNumMechanisms; ++m) {
      if (m > 0) out += ',';
      out += '"';
      out += MechanismName(static_cast<Mechanism>(m));
      out += "\":" + std::to_string(level->pruned_by.by[m]);
    }
    out += '}';
  } else if (const auto* jmax = std::get_if<JmaxEvent>(&payload)) {
    out += "\"source_var\":\"";
    out += jmax->source_var;
    out += "\",\"level\":" + std::to_string(jmax->level);
    out += ",\"jmax_k\":" + std::to_string(jmax->jmax_k);
    out += ",\"v_k\":" + JsonNumber(jmax->v_k);
  } else if (const auto* scan = std::get_if<ScanEvent>(&payload)) {
    out += "\"scans\":" + std::to_string(scan->scans);
    out += ",\"pages\":" + std::to_string(scan->pages);
  } else if (const auto* pair = std::get_if<PairPhaseEvent>(&payload)) {
    out += "\"checks\":" + std::to_string(pair->checks);
    out += ",\"kept\":" + std::to_string(pair->kept);
    out += ",\"seconds\":" + JsonNumber(pair->seconds);
  } else if (const auto* delta = std::get_if<DeltaEvent>(&payload)) {
    out += "\"from_generation\":" + std::to_string(delta->from_generation);
    out += ",\"to_generation\":" + std::to_string(delta->to_generation);
    out += ",\"delta_transactions\":" +
           std::to_string(delta->delta_transactions);
    out += ",\"recounted\":" + std::to_string(delta->recounted);
    out += ",\"fresh\":" + std::to_string(delta->fresh);
    out += ",\"reused\":" + std::to_string(delta->reused);
    out += ",\"promoted\":" + std::to_string(delta->promoted);
    out += ",\"demoted\":" + std::to_string(delta->demoted);
  }
  return out;
}

}  // namespace

std::string TraceJsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void AppendChromeEvents(const std::vector<TraceEvent>& events, int pid,
                        int64_t ts_offset_us, bool* first, std::ostream& os) {
  const std::string common =
      "\"pid\":" + std::to_string(pid) + ",\"tid\":1";
  auto emit = [&](const std::string& body) {
    if (!*first) os << ',';
    *first = false;
    os << "\n{" << body << '}';
  };
  for (const TraceEvent& e : events) {
    const int64_t ts = e.ts_us + ts_offset_us;
    std::string body = "\"name\":\"" + JsonEscape(e.name) + "\",";
    switch (e.phase) {
      case EventPhase::kSpanBegin:
        body += "\"ph\":\"B\",";
        break;
      case EventPhase::kSpanEnd:
        body += "\"ph\":\"E\",";
        break;
      case EventPhase::kInstant:
        body += "\"ph\":\"i\",\"s\":\"t\",";
        break;
    }
    body += common + ",\"ts\":" + std::to_string(ts);
    const std::string fields = PayloadFields(e.payload);
    if (!fields.empty()) body += ",\"args\":{" + fields + '}';
    emit(body);
    // Counter tracks make the level series visible as graphs in
    // Perfetto without digging into instant args.
    if (const auto* level = std::get_if<LevelEvent>(&e.payload)) {
      std::string track = "\"name\":\"lattice ";
      track += level->var;
      track += "\",\"ph\":\"C\",";
      track += common + ",\"ts\":" + std::to_string(ts);
      track += ",\"args\":{\"candidates\":" +
               std::to_string(level->candidates) +
               ",\"frequent\":" + std::to_string(level->frequent) + '}';
      emit(track);
    }
  }
}

void WriteChromeTrace(const std::vector<TraceEvent>& events,
                      std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  AppendChromeEvents(events, /*pid=*/1, /*ts_offset_us=*/0, &first, os);
  os << "\n]}\n";
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
// names map onto that by replacing every other character with '_' and
// prefixing the exporter namespace.
std::string PromName(const std::string& dotted) {
  std::string out = "cfq_";
  for (char c : dotted) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

// Prometheus floats: the text format accepts C-style doubles; inf/nan
// are legal there, but the registry never produces them.
std::string PromNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

void WritePrometheus(const MetricsRegistry& registry, std::ostream& os) {
  using Kind = MetricsRegistry::SampleKind;
  for (const MetricsRegistry::Sample& s : registry.Snapshot()) {
    const std::string name = PromName(s.name);
    switch (s.kind) {
      case Kind::kCounter:
        os << "# TYPE " << name << " counter\n"
           << name << " " << s.count << "\n";
        break;
      case Kind::kGauge:
        os << "# TYPE " << name << " gauge\n"
           << name << " " << PromNumber(s.value) << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = s.histogram;
        os << "# TYPE " << name << " histogram\n";
        // Emit the populated sub-range of the power-of-two ladder:
        // buckets are cumulative, and the mandatory +Inf bucket equals
        // _count. An empty histogram still gets +Inf/_sum/_count.
        size_t first = Histogram::kNumBuckets, last = 0;
        for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
          if (h.bucket_counts()[i] == 0) continue;
          first = std::min(first, i);
          last = i;
        }
        uint64_t cumulative = 0;
        for (size_t i = first; i < Histogram::kNumBuckets && i <= last; ++i) {
          cumulative += h.bucket_counts()[i];
          os << name << "_bucket{le=\""
             << PromNumber(Histogram::BucketUpperBound(i)) << "\"} "
             << cumulative << "\n";
        }
        os << name << "_bucket{le=\"+Inf\"} " << h.count() << "\n"
           << name << "_sum " << PromNumber(h.sum()) << "\n"
           << name << "_count " << h.count() << "\n";
        break;
      }
    }
  }
}

void WriteTraceJsonl(const std::vector<TraceEvent>& events, std::ostream& os) {
  for (const TraceEvent& e : events) {
    const char* type = "instant";
    switch (e.phase) {
      case EventPhase::kSpanBegin:
        type = "span_begin";
        break;
      case EventPhase::kSpanEnd:
        type = "span_end";
        break;
      case EventPhase::kInstant:
        break;
    }
    if (e.phase == EventPhase::kInstant &&
        !std::holds_alternative<std::monostate>(e.payload)) {
      type = e.name;  // Typed events use their kind as the type tag.
    }
    os << "{\"type\":\"" << JsonEscape(type) << "\",\"name\":\""
       << JsonEscape(e.name) << "\",\"ts_us\":" << e.ts_us;
    const std::string fields = PayloadFields(e.payload);
    if (!fields.empty()) os << ',' << fields;
    os << "}\n";
  }
}

void ExportSimdMetrics(MetricsRegistry* registry) {
  registry->SetGauge(
      std::string("simd.kernel.") + simd::KernelName(simd::ActiveKernel()),
      1.0);
  for (size_t i = 0; i < simd::kNumOps; ++i) {
    const auto op = static_cast<simd::Op>(i);
    const simd::OpCounters counters = simd::CountersFor(op);
    const std::string base = std::string("simd.") + simd::OpName(op);
    registry->SetGauge(base + ".calls", static_cast<double>(counters.calls));
    registry->SetGauge(base + ".bytes",
                       static_cast<double>(counters.words * 8));
  }
}

}  // namespace cfq::obs
