// Pruning-mechanism taxonomy for candidate attribution.
//
// Every candidate set discarded before support counting is attributed
// to exactly one mechanism — the first check that killed it — so the
// per-level identity  generated - sum(pruned_by) = counted  holds and
// the EXPLAIN ANALYZE table can show which optimization earned which
// share of the pruning (the paper's Figures 8a/8b speedups decomposed).

#ifndef CFQ_OBS_MECHANISM_H_
#define CFQ_OBS_MECHANISM_H_

#include <cstddef>
#include <cstdint>

namespace cfq::obs {

enum class Mechanism : uint8_t {
  // Apriori subset-frequency prune (a size-(k-1) subset is infrequent).
  kInfrequentSubset = 0,
  // A 1-var constraint of the query itself, pushed by CAP (succinct
  // item-universe restriction or anti-monotone candidate filter).
  kOneVar = 1,
  // A 1-var constraint reduced from a quasi-succinct 2-var constraint
  // after level 1 (Section 4, Figures 2 & 3).
  kQuasiSuccinct = 2,
  // A Section-5.1 relaxation: induced weaker constraint (Figure 4) or
  // the loose level-1 bound of a sum/avg constraint.
  kInduced = 3,
  // The Jmax V^k dynamic bound fed across lattices (Section 5.2).
  kJmax = 4,
};

inline constexpr size_t kNumMechanisms = 5;

inline const char* MechanismName(Mechanism m) {
  switch (m) {
    case Mechanism::kInfrequentSubset:
      return "infrequent-subset";
    case Mechanism::kOneVar:
      return "1-var";
    case Mechanism::kQuasiSuccinct:
      return "quasi-succinct";
    case Mechanism::kInduced:
      return "induced";
    case Mechanism::kJmax:
      return "jmax";
  }
  return "unknown";
}

// Per-mechanism pruned-candidate counts for one lattice level.
struct PruneCounts {
  uint64_t by[kNumMechanisms] = {};

  void Add(Mechanism m, uint64_t n = 1) { by[static_cast<size_t>(m)] += n; }
  uint64_t Get(Mechanism m) const { return by[static_cast<size_t>(m)]; }

  uint64_t Total() const {
    uint64_t total = 0;
    for (uint64_t n : by) total += n;
    return total;
  }

  void MergeFrom(const PruneCounts& other) {
    for (size_t i = 0; i < kNumMechanisms; ++i) by[i] += other.by[i];
  }
};

}  // namespace cfq::obs

#endif  // CFQ_OBS_MECHANISM_H_
