// Stable result digests: FNV-1a 64 over canonically-ordered rows.
//
// A digest is the serving layer's cheap answer-identity check: two runs
// of the same query — on different counter backends, thread counts,
// SIMD kernels, builds, or machines — must produce the same digest, or
// one of them is wrong. The definition is deliberately simple enough to
// recompute anywhere:
//
//   digest = FNV-1a-64 over the result rows sorted lexicographically
//            (byte order), each row followed by one '\n'
//
// Sorting first makes the digest independent of enumeration order,
// which legitimately differs between strategies and between pair- and
// cross-product-shaped answers; the trailing '\n' per row keeps row
// boundaries unambiguous ("ab"+"c" != "a"+"bc"). An empty result
// digests to the FNV-1a offset basis.
//
// Digests render as 16 lowercase hex digits (DigestHex) everywhere:
// wire responses, audit logs, EXPLAIN ANALYZE, and cfq_replay's
// --verify-digests comparison.

#ifndef CFQ_OBS_DIGEST_H_
#define CFQ_OBS_DIGEST_H_

#include <cstdint>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cfq::obs {

// Incremental FNV-1a 64-bit hasher (offset basis 0xcbf29ce484222325,
// prime 0x100000001b3).
class Fnv1a {
 public:
  void Update(const void* data, size_t size);
  void Update(std::string_view text) { Update(text.data(), text.size()); }
  uint64_t digest() const { return state_; }

 private:
  uint64_t state_ = 0xcbf29ce484222325ULL;
};

// The canonical result digest: rows are copied, sorted, and hashed with
// a '\n' terminator each. `rows` itself is untouched.
uint64_t DigestRows(const std::vector<std::string>& rows);

// 16 lowercase hex digits, zero padded ("00f3a9..."): the one rendering
// used on every surface so digests compare as strings.
std::string DigestHex(uint64_t digest);

// DigestHex(DigestRows(rows)) — the common case in one call.
std::string RowsDigestHex(const std::vector<std::string>& rows);

}  // namespace cfq::obs

#endif  // CFQ_OBS_DIGEST_H_
