// Slow-query flight recorder: bounded retention of completed query
// traces, dumpable retroactively as one Chrome trace_event file.
//
// The serving daemon gives every query its own small Tracer plus a
// PhaseAccumulator; when the query completes, the service folds both
// into a CompletedQueryTrace and hands it to the FlightRecorder. The
// recorder keeps two bounded rings: the last `recent_capacity`
// completed queries (whatever their latency), and the last
// `slow_capacity` queries whose wall time met the slow threshold —
// so a production slowdown stays explainable after the fast traffic
// that followed it has rotated the recent ring.
//
// WriteChromeTrace() lays every retained trace on one shared timeline
// (each query gets its own Chrome pid lane, labeled via process_name
// metadata), so chrome://tracing or Perfetto shows the query roots,
// their phase spans, and the nested lattice/level events per query.
// If a query's tracer ring wrapped (dropped events), its span stream
// may be unbalanced; with the default per-query capacity this does
// not happen for realistic queries.
//
// All public methods are thread-safe; PhaseAccumulator/ScopedPhase are
// per-query single-threaded helpers.

#ifndef CFQ_OBS_FLIGHT_RECORDER_H_
#define CFQ_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace cfq::obs {

// One named slice of a query's wall time, in seconds. Top-level phases
// (no '.' in the name: parse, catalog, cache, admission, plan, execute,
// render) partition the measured wall time; dotted names
// (execute.refresh.recount, ...) are finer attributions nested inside a
// top-level phase and must not be summed with them.
struct QueryPhase {
  std::string name;
  double seconds = 0;
};

// Accumulates phase timings for one query, merging repeated names (a
// phase entered once per lattice level accumulates across levels).
// Insertion order is preserved — the order phases first started.
class PhaseAccumulator {
 public:
  void Add(const std::string& name, double seconds) {
    for (QueryPhase& p : phases_) {
      if (p.name == name) {
        p.seconds += seconds;
        return;
      }
    }
    phases_.push_back(QueryPhase{name, seconds});
  }

  // Sum of the top-level (undotted) phases — the portion of the query's
  // wall time attributed to named phases.
  double TopLevelSeconds() const {
    double total = 0;
    for (const QueryPhase& p : phases_) {
      if (p.name.find('.') == std::string::npos) total += p.seconds;
    }
    return total;
  }

  const std::vector<QueryPhase>& phases() const { return phases_; }

 private:
  std::vector<QueryPhase> phases_;
};

// RAII phase: opens a span on `tracer` (null ok) and accumulates the
// elapsed wall time under `name` when it ends. `name` must have static
// storage duration (it is handed to the Tracer verbatim).
class ScopedPhase {
 public:
  ScopedPhase(PhaseAccumulator* phases, Tracer* tracer, const char* name)
      : phases_(phases),
        tracer_(tracer),
        name_(name),
        start_(std::chrono::steady_clock::now()) {
    if (tracer_ != nullptr) tracer_->BeginSpan(name_);
  }
  ~ScopedPhase() { End(); }

  // Ends the phase early; subsequent End()/destruction are no-ops.
  void End() {
    if (ended_) return;
    ended_ = true;
    if (tracer_ != nullptr) tracer_->EndSpan(name_);
    if (phases_ != nullptr) {
      phases_->Add(name_,
                   std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
    }
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseAccumulator* phases_;
  Tracer* tracer_;
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  bool ended_ = false;
};

// Everything retained about one completed query.
struct CompletedQueryTrace {
  uint64_t id = 0;          // FlightRecorder::NextTraceId().
  int64_t start_us = 0;     // Query start, microseconds on the
                            // recorder's clock (NowMicros()).
  double elapsed_seconds = 0;
  bool slow = false;        // Set by Record() from the threshold.
  std::string dataset;
  std::string strategy;
  std::string source;       // hit | incremental-refresh | cold.
  std::string status;       // Protocol status (OK, TIMEOUT, ...).
  std::string client_trace_id;  // Request "trace_id" echo; may be "".
  std::vector<QueryPhase> phases;
  std::vector<TraceEvent> events;  // Per-query tracer snapshot.
};

struct FlightRecorderOptions {
  size_t recent_capacity = 32;
  size_t slow_capacity = 32;
  double slow_threshold_seconds = 1.0;
};

struct FlightRecorderSummary {
  uint64_t recorded_total = 0;
  uint64_t slow_total = 0;
  size_t recent_size = 0;
  size_t slow_size = 0;
  double slow_threshold_seconds = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(const FlightRecorderOptions& options = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Monotone 1-based trace ids.
  uint64_t NextTraceId() { return next_id_.fetch_add(1) + 1; }

  // Microseconds since recorder construction — the shared timeline
  // every retained trace's events are laid out on.
  int64_t NowMicros() const;

  // Takes ownership of one completed trace: classifies it against the
  // slow threshold and retires the oldest entries past each capacity.
  void Record(CompletedQueryTrace trace);

  FlightRecorderSummary Summary() const;

  // Every retained trace (recent ∪ slow, deduplicated), ascending id.
  std::vector<CompletedQueryTrace> Snapshot() const;

  // One Chrome trace_event JSON document covering every retained trace.
  void WriteChromeTrace(std::ostream& os) const;

  double slow_threshold_seconds() const {
    return options_.slow_threshold_seconds;
  }

 private:
  const FlightRecorderOptions options_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> next_id_{0};
  mutable std::mutex mu_;
  std::deque<CompletedQueryTrace> recent_;
  std::deque<CompletedQueryTrace> slow_;
  uint64_t recorded_total_ = 0;
  uint64_t slow_total_ = 0;
};

}  // namespace cfq::obs

#endif  // CFQ_OBS_FLIGHT_RECORDER_H_
