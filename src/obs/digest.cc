#include "obs/digest.h"

#include <algorithm>
#include <cstdio>

namespace cfq::obs {

void Fnv1a::Update(const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t state = state_;
  for (size_t i = 0; i < size; ++i) {
    state ^= static_cast<uint64_t>(bytes[i]);
    state *= 0x100000001b3ULL;
  }
  state_ = state;
}

uint64_t DigestRows(const std::vector<std::string>& rows) {
  std::vector<const std::string*> order;
  order.reserve(rows.size());
  for (const std::string& row : rows) order.push_back(&row);
  std::sort(order.begin(), order.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  Fnv1a hash;
  for (const std::string* row : order) {
    hash.Update(*row);
    hash.Update("\n", 1);
  }
  return hash.digest();
}

std::string DigestHex(uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

std::string RowsDigestHex(const std::vector<std::string>& rows) {
  return DigestHex(DigestRows(rows));
}

}  // namespace cfq::obs
