// Saturating binomial coefficients, used by the Jmax bound (Fig. 5 of the
// paper): J_i^k is the largest j with N_i^k >= C(k+j-1, k-1).

#ifndef CFQ_COMMON_COMBINATORICS_H_
#define CFQ_COMMON_COMBINATORICS_H_

#include <cstdint>

namespace cfq {

// C(n, k), saturating at uint64 max instead of overflowing.
// Returns 0 when k > n; returns 1 when k == 0 or k == n.
uint64_t BinomialSaturating(uint64_t n, uint64_t k);

// Largest j >= 0 such that count >= C(k+j-1, k-1), i.e. the J_i^k bound
// of Figure 5: an element appearing in `count` frequent k-sets can appear
// in a frequent set of size at most k + j. `max_j` caps the search (the
// answer cannot exceed the number of items). Requires k >= 1.
//
// Note C(k+0-1, k-1) = 1, so any element contained in at least one
// frequent k-set gets j >= 0. Returns -1 when count == 0.
int64_t LargestJForCount(uint64_t count, uint64_t k, uint64_t max_j);

}  // namespace cfq

#endif  // CFQ_COMMON_COMBINATORICS_H_
