#include "common/version.h"

#include "common/build_info.h"
#include "common/simd.h"

namespace cfq {

const char* BuildGitDescribe() { return CFQ_BUILD_GIT_DESCRIBE; }

const char* BuildType() { return CFQ_BUILD_TYPE; }

std::string VersionLine(const std::string& binary) {
  return binary + " " + BuildGitDescribe() + " (" + BuildType() +
         ", simd=" + simd::KernelName(simd::ActiveKernel()) + ")";
}

}  // namespace cfq
