// Lightweight status type for recoverable errors.
//
// The CFQ library does not throw exceptions on its hot paths. Operations
// that can fail for reasons the caller should handle (bad query, unknown
// attribute, invalid generator parameters) return a `Status` or a
// `Result<T>` (see result.h). Programming errors are checked with
// CFQ_DCHECK-style assertions in debug builds.

#ifndef CFQ_COMMON_STATUS_H_
#define CFQ_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace cfq {

// Broad error categories, modeled on absl::StatusCode but minimal.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kDeadlineExceeded = 7,
};

// Returns a short stable name ("OK", "INVALID_ARGUMENT", ...) for `code`.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

// Value type carrying a StatusCode plus a human-readable message.
// The default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>" for diagnostics and test failure output.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace cfq

// Propagates a non-OK Status from an expression to the caller.
#define CFQ_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::cfq::Status cfq_status_ = (expr);          \
    if (!cfq_status_.ok()) return cfq_status_;   \
  } while (false)

#endif  // CFQ_COMMON_STATUS_H_
