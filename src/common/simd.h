// Vectorized counting kernels for the vertical (TID-bitmap) backend.
//
// Support counting in the bitmap backend reduces to popcount(a & b)
// over arrays of 64-bit words — the innermost loop of cfq_mine and the
// serving daemon. This header exposes that loop (and its fused
// variants) as free functions over raw word arrays, dispatched once at
// startup to the widest instruction set the CPU supports:
//
//   * AVX2 on x86-64 (vpshufb nibble-LUT popcount, 256-bit lanes),
//     selected via __builtin_cpu_supports at runtime — the binary
//     stays runnable on pre-AVX2 machines;
//   * NEON on aarch64 (vcntq_u8 + pairwise widening adds), always
//     available there;
//   * an unrolled-scalar fallback everywhere else.
//
// Every kernel computes the same exact integer, so the engine's
// bit-identical-answers contract extends across kernels: answers,
// supports, and per-level counts are identical under scalar, AVX2 and
// NEON (tests/simd_test.cc and CI enforce this).
//
// Overrides, strongest first:
//   1. SetKernel("scalar"|"avx2"|"neon") — tools map --no-simd onto
//      SetKernel("scalar"); tests use it to cross-check kernels.
//   2. The CFQ_SIMD environment variable (off|scalar|avx2|neon),
//      read once when the dispatcher first initializes.
//   3. CPU feature detection (DetectBestKernel()).
//
// SetKernel is a single-threaded setup call (flag parsing, test
// set-up); the dispatch table itself is an atomic pointer, so counting
// threads that race with nothing read a consistent kernel.
//
// Accounting: every public entry point bumps a process-wide relaxed
// per-op {calls, words} counter pair (CountersFor). obs/export.h
// snapshots them into a MetricsRegistry as simd.<op>.calls /
// simd.<op>.bytes so EXPLAIN ANALYZE and /metrics show which path ran
// and how much data it touched.

#ifndef CFQ_COMMON_SIMD_H_
#define CFQ_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace cfq::simd {

enum class Kernel : uint8_t { kScalar = 0, kAvx2 = 1, kNeon = 2 };
inline constexpr size_t kNumKernels = 3;

// "scalar", "avx2", "neon".
const char* KernelName(Kernel kernel);

// True when this CPU (and build) can run `kernel`. kScalar is always
// supported.
bool KernelSupported(Kernel kernel);

// The widest kernel this CPU supports, ignoring every override.
Kernel DetectBestKernel();

// The kernel all ops currently dispatch to. First call initializes the
// dispatcher (CFQ_SIMD override, else DetectBestKernel()).
Kernel ActiveKernel();

// Pins the dispatcher to the named kernel ("off" is an alias for
// "scalar"). Returns false — and changes nothing — for unknown names
// and for kernels this CPU cannot run. Single-threaded setup only.
bool SetKernel(const char* name);

// --- Kernels over arrays of 64-bit words -----------------------------
//
// `n` is a length in words. All pointers must be valid for `n` words;
// they need no particular alignment (the vector paths use unaligned
// loads). n == 0 is fine.

// Total set bits in w[0..n).
uint64_t Count(const uint64_t* w, size_t n);

// popcount(a & b) without materializing the intersection.
uint64_t AndCount(const uint64_t* a, const uint64_t* b, size_t n);

// out[i] = a[i] & b[i]; returns the popcount of the result. `out` may
// alias `a` or `b`.
uint64_t AndInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                 size_t n);

// a[i] &= b[i].
void AndWith(uint64_t* a, const uint64_t* b, size_t n);

// Fused multi-way AND-popcount: counts[j] = popcount(base & others[j])
// for j in [0, num_others). One pass over `base` per block of four
// candidates, so the base words are loaded once where a naive loop
// loads them num_others times — the hot shape of Apriori counting,
// where many sibling candidates share one prefix intersection.
void AndCountMany(const uint64_t* base, const uint64_t* const* others,
                  size_t num_others, size_t n, uint64_t* counts);

// --- Accounting ------------------------------------------------------

enum class Op : uint8_t {
  kCount = 0,
  kAndCount = 1,
  kAndInto = 2,
  kAndWith = 3,
  kAndCountMany = 4,
};
inline constexpr size_t kNumOps = 5;

// "count", "and_count", "and_into", "and_with", "and_count_many".
const char* OpName(Op op);

struct OpCounters {
  uint64_t calls = 0;
  uint64_t words = 0;  // Words processed (n, or n * num_others).
};

// Process-cumulative totals for one op, across all threads and all
// kernels (relaxed counters: totals are exact once threads quiesce).
OpCounters CountersFor(Op op);

}  // namespace cfq::simd

#endif  // CFQ_COMMON_SIMD_H_
