// ThreadPool: a fixed-size worker pool driving chunked parallel loops.
//
// The mining stack's parallelism is deliberately simple — no work
// stealing, no futures. Every parallel site is a loop over a range
// (transactions to scan, candidates to intersect, S-rows of the pair
// matrix), so the pool exposes exactly that: ParallelChunks splits
// [0, n) into contiguous chunks handed out through a shared atomic
// cursor; the calling thread participates, which both bounds latency
// and guarantees progress when every worker is busy with another
// caller's loop (the concurrent S/T lattices share one pool).
//
// Determinism contract: chunk boundaries depend only on (n, chunks),
// never on scheduling, so per-chunk accumulators merged in chunk order
// produce bit-identical results at every thread count. A pool built
// with one thread runs every chunk inline on the caller with no
// synchronization at all.
//
// Loop bodies must not throw (the library reports errors via Status)
// and must not submit nested loops to the same pool from inside a
// chunk — concurrent top-level submissions from different threads are
// fine.

#ifndef CFQ_COMMON_THREAD_POOL_H_
#define CFQ_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace cfq {

// Lifetime counters for one pool thread (a spawned worker or the
// caller slot). Busy time is wall time spent inside chunk bodies; idle
// time is wall time a spawned worker spent parked waiting for work
// (always 0 for the caller slot — between submissions the caller is
// off doing its own work, not idling in the pool).
struct ThreadPoolWorkerStats {
  uint64_t chunks = 0;
  double busy_seconds = 0;
  double idle_seconds = 0;
};

// Pool-wide aggregate of the per-worker counters.
struct ThreadPoolStats {
  size_t workers = 0;      // Spawned workers + the caller slot.
  uint64_t tasks = 0;      // ParallelChunks/ParallelFor submissions.
  uint64_t chunks = 0;
  double busy_seconds = 0;
  double idle_seconds = 0;

  void MergeFrom(const ThreadPoolStats& other) {
    workers = std::max(workers, other.workers);
    tasks += other.tasks;
    chunks += other.chunks;
    busy_seconds += other.busy_seconds;
    idle_seconds += other.idle_seconds;
  }
};

class ThreadPool {
 public:
  // Spawns `num_threads - 1` workers (the caller is the remaining
  // thread). 0 means HardwareThreads().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  // std::thread::hardware_concurrency(), never less than 1.
  static size_t HardwareThreads();

  // Splits [0, n) into `chunks` contiguous near-equal ranges and runs
  // fn(chunk_index, begin, end) for each, blocking until all complete.
  // Chunk indices are dense in [0, chunks'), chunks' = min(chunks, n),
  // so fn may index a per-chunk accumulator array of that size.
  void ParallelChunks(size_t n, size_t chunks,
                      const std::function<void(size_t, size_t, size_t)>& fn);

  // Load-balanced loop without per-chunk identity: fn(begin, end) over
  // a finer-grained partition of [0, n). Use when fn writes only to
  // disjoint per-index state.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

  // The chunk range ParallelChunks hands to chunk `c` of `chunks` over
  // [0, n). Exposed so callers can pre-size per-chunk state.
  static std::pair<size_t, size_t> ChunkRange(size_t n, size_t chunks,
                                              size_t c);

  // Lifetime busy/idle/chunk counters, per pool thread: spawned workers
  // first, the caller slot last. Counters are atomics, so reading while
  // loops run elsewhere is safe (values are a consistent-enough
  // snapshot for accounting, not a barrier).
  std::vector<ThreadPoolWorkerStats> worker_stats() const;
  // The per-worker counters aggregated, plus the submission count.
  ThreadPoolStats stats() const;

 private:
  // One ParallelChunks call in flight. Workers and the submitter pull
  // chunk indices from `next`; the last finisher signals `cv`.
  struct Task {
    std::function<void(size_t)> run_chunk;
    size_t num_chunks = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };

  // One pool thread's counters. Nanosecond integers instead of atomic
  // doubles so relaxed adds work on every platform; the caller slot is
  // shared by concurrent submitters, hence atomics even though spawned
  // workers are each their slot's only writer.
  struct Slot {
    std::atomic<uint64_t> chunks{0};
    std::atomic<uint64_t> busy_ns{0};
    std::atomic<uint64_t> idle_ns{0};
  };

  void WorkerLoop(Slot* slot);
  static void RunChunks(Task* task, Slot* slot);

  size_t num_threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Task>> tasks_;
  bool stop_ = false;
  // Spawned workers first, caller slot last; sized before workers
  // start and never resized.
  std::vector<Slot> slots_;
  std::atomic<uint64_t> tasks_submitted_{0};
  std::vector<std::thread> workers_;
};

}  // namespace cfq

#endif  // CFQ_COMMON_THREAD_POOL_H_
