// Result<T>: a value or a Status, modeled on absl::StatusOr<T>.

#ifndef CFQ_COMMON_RESULT_H_
#define CFQ_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace cfq {

// Holds either a T (when status().ok()) or an error Status. Accessing
// value() on an error Result is a programming error (asserted in debug).
template <typename T>
class Result {
 public:
  // Implicit conversions mirror absl::StatusOr so call sites can
  // `return value;` or `return Status::InvalidArgument(...)`.
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : status_(std::move(status)) {     // NOLINT
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace cfq

// Assigns the value of a Result expression to `lhs`, or propagates its
// error Status. Usage: CFQ_ASSIGN_OR_RETURN(auto db, BuildDb(params));
#define CFQ_ASSIGN_OR_RETURN(lhs, expr)                       \
  CFQ_ASSIGN_OR_RETURN_IMPL_(                                 \
      CFQ_RESULT_CONCAT_(cfq_result_, __LINE__), lhs, expr)
#define CFQ_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()
#define CFQ_RESULT_CONCAT_(a, b) CFQ_RESULT_CONCAT_IMPL_(a, b)
#define CFQ_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // CFQ_COMMON_RESULT_H_
