#include "common/simd.h"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CFQ_SIMD_X86_64 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define CFQ_SIMD_AARCH64 1
#include <arm_neon.h>
#endif

namespace cfq::simd {

namespace {

// ---------------------------------------------------------------------
// Scalar kernels (unrolled by four). These are also the reference
// semantics: every vector kernel must produce the same exact integers.
// ---------------------------------------------------------------------

inline uint64_t Pop(uint64_t w) {
  return static_cast<uint64_t>(std::popcount(w));
}

uint64_t ScalarCount(const uint64_t* w, size_t n) {
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += Pop(w[i]);
    c1 += Pop(w[i + 1]);
    c2 += Pop(w[i + 2]);
    c3 += Pop(w[i + 3]);
  }
  uint64_t total = c0 + c1 + c2 + c3;
  for (; i < n; ++i) total += Pop(w[i]);
  return total;
}

uint64_t ScalarAndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += Pop(a[i] & b[i]);
    c1 += Pop(a[i + 1] & b[i + 1]);
    c2 += Pop(a[i + 2] & b[i + 2]);
    c3 += Pop(a[i + 3] & b[i + 3]);
  }
  uint64_t total = c0 + c1 + c2 + c3;
  for (; i < n; ++i) total += Pop(a[i] & b[i]);
  return total;
}

uint64_t ScalarAndInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                       size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t w = a[i] & b[i];
    out[i] = w;
    total += Pop(w);
  }
  return total;
}

void ScalarAndWith(uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a[i] &= b[i];
    a[i + 1] &= b[i + 1];
    a[i + 2] &= b[i + 2];
    a[i + 3] &= b[i + 3];
  }
  for (; i < n; ++i) a[i] &= b[i];
}

void ScalarAndCountMany(const uint64_t* base, const uint64_t* const* others,
                        size_t num_others, size_t n, uint64_t* counts) {
  size_t j = 0;
  // Four candidates per pass: each base word is loaded once and ANDed
  // against four candidate words while it is hot.
  for (; j + 4 <= num_others; j += 4) {
    const uint64_t* o0 = others[j];
    const uint64_t* o1 = others[j + 1];
    const uint64_t* o2 = others[j + 2];
    const uint64_t* o3 = others[j + 3];
    uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t bw = base[i];
      c0 += Pop(bw & o0[i]);
      c1 += Pop(bw & o1[i]);
      c2 += Pop(bw & o2[i]);
      c3 += Pop(bw & o3[i]);
    }
    counts[j] = c0;
    counts[j + 1] = c1;
    counts[j + 2] = c2;
    counts[j + 3] = c3;
  }
  for (; j < num_others; ++j) counts[j] = ScalarAndCount(base, others[j], n);
}

// ---------------------------------------------------------------------
// AVX2 kernels (x86-64). Compiled with per-function target attributes
// so the translation unit builds without -mavx2 and the binary stays
// runnable on pre-AVX2 CPUs; the dispatcher only installs these after
// __builtin_cpu_supports("avx2") says yes.
// ---------------------------------------------------------------------

#if CFQ_SIMD_X86_64

// Per-64-bit-lane popcount of a 256-bit vector via the classic vpshufb
// nibble lookup, horizontally summed per lane by vpsadbw.
__attribute__((target("avx2"))) inline __m256i PopcntLanes256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline uint64_t HorizontalSum256(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(sum, 1));
}

__attribute__((target("avx2,popcnt")))
uint64_t Avx2Count(const uint64_t* w, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i + 4));
    acc = _mm256_add_epi64(
        acc, _mm256_add_epi64(PopcntLanes256(v0), PopcntLanes256(v1)));
  }
  uint64_t total = HorizontalSum256(acc);
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(w[i]));
  }
  return total;
}

__attribute__((target("avx2,popcnt")))
uint64_t Avx2AndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v0 = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    const __m256i v1 = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 4)));
    acc = _mm256_add_epi64(
        acc, _mm256_add_epi64(PopcntLanes256(v0), PopcntLanes256(v1)));
  }
  uint64_t total = HorizontalSum256(acc);
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return total;
}

__attribute__((target("avx2,popcnt")))
uint64_t Avx2AndInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                     size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    acc = _mm256_add_epi64(acc, PopcntLanes256(v));
  }
  uint64_t total = HorizontalSum256(acc);
  for (; i < n; ++i) {
    const uint64_t w = a[i] & b[i];
    out[i] = w;
    total += static_cast<uint64_t>(__builtin_popcountll(w));
  }
  return total;
}

__attribute__((target("avx2")))
void Avx2AndWith(uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i), v);
  }
  for (; i < n; ++i) a[i] &= b[i];
}

__attribute__((target("avx2,popcnt")))
void Avx2AndCountMany(const uint64_t* base, const uint64_t* const* others,
                      size_t num_others, size_t n, uint64_t* counts) {
  size_t j = 0;
  for (; j + 4 <= num_others; j += 4) {
    const uint64_t* o0 = others[j];
    const uint64_t* o1 = others[j + 1];
    const uint64_t* o2 = others[j + 2];
    const uint64_t* o3 = others[j + 3];
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256i bw =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + i));
      acc0 = _mm256_add_epi64(
          acc0, PopcntLanes256(_mm256_and_si256(
                    bw, _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(o0 + i)))));
      acc1 = _mm256_add_epi64(
          acc1, PopcntLanes256(_mm256_and_si256(
                    bw, _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(o1 + i)))));
      acc2 = _mm256_add_epi64(
          acc2, PopcntLanes256(_mm256_and_si256(
                    bw, _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(o2 + i)))));
      acc3 = _mm256_add_epi64(
          acc3, PopcntLanes256(_mm256_and_si256(
                    bw, _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(o3 + i)))));
    }
    uint64_t c0 = HorizontalSum256(acc0);
    uint64_t c1 = HorizontalSum256(acc1);
    uint64_t c2 = HorizontalSum256(acc2);
    uint64_t c3 = HorizontalSum256(acc3);
    for (; i < n; ++i) {
      const uint64_t bw = base[i];
      c0 += static_cast<uint64_t>(__builtin_popcountll(bw & o0[i]));
      c1 += static_cast<uint64_t>(__builtin_popcountll(bw & o1[i]));
      c2 += static_cast<uint64_t>(__builtin_popcountll(bw & o2[i]));
      c3 += static_cast<uint64_t>(__builtin_popcountll(bw & o3[i]));
    }
    counts[j] = c0;
    counts[j + 1] = c1;
    counts[j + 2] = c2;
    counts[j + 3] = c3;
  }
  for (; j < num_others; ++j) counts[j] = Avx2AndCount(base, others[j], n);
}

#endif  // CFQ_SIMD_X86_64

// ---------------------------------------------------------------------
// NEON kernels (aarch64, where NEON is architecturally guaranteed).
// vcntq_u8 counts per byte; three pairwise widening adds fold the
// byte counts into per-64-bit-lane sums.
// ---------------------------------------------------------------------

#if CFQ_SIMD_AARCH64

inline uint64x2_t NeonPopcntLanes(uint64x2_t v) {
  return vpaddlq_u32(
      vpaddlq_u16(vpaddlq_u8(vcntq_u8(vreinterpretq_u8_u64(v)))));
}

uint64_t NeonCount(const uint64_t* w, size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = vaddq_u64(acc, NeonPopcntLanes(vld1q_u64(w + i)));
    acc = vaddq_u64(acc, NeonPopcntLanes(vld1q_u64(w + i + 2)));
  }
  uint64_t total = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i < n; ++i) total += Pop(w[i]);
  return total;
}

uint64_t NeonAndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = vaddq_u64(
        acc, NeonPopcntLanes(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i))));
    acc = vaddq_u64(acc, NeonPopcntLanes(vandq_u64(vld1q_u64(a + i + 2),
                                                   vld1q_u64(b + i + 2))));
  }
  uint64_t total = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i < n; ++i) total += Pop(a[i] & b[i]);
  return total;
}

uint64_t NeonAndInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                     size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    vst1q_u64(out + i, v);
    acc = vaddq_u64(acc, NeonPopcntLanes(v));
  }
  uint64_t total = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i < n; ++i) {
    const uint64_t w = a[i] & b[i];
    out[i] = w;
    total += Pop(w);
  }
  return total;
}

void NeonAndWith(uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(a + i, vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) a[i] &= b[i];
}

void NeonAndCountMany(const uint64_t* base, const uint64_t* const* others,
                      size_t num_others, size_t n, uint64_t* counts) {
  size_t j = 0;
  for (; j + 4 <= num_others; j += 4) {
    const uint64_t* o0 = others[j];
    const uint64_t* o1 = others[j + 1];
    const uint64_t* o2 = others[j + 2];
    const uint64_t* o3 = others[j + 3];
    uint64x2_t acc0 = vdupq_n_u64(0), acc1 = vdupq_n_u64(0);
    uint64x2_t acc2 = vdupq_n_u64(0), acc3 = vdupq_n_u64(0);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const uint64x2_t bw = vld1q_u64(base + i);
      acc0 = vaddq_u64(acc0, NeonPopcntLanes(vandq_u64(bw, vld1q_u64(o0 + i))));
      acc1 = vaddq_u64(acc1, NeonPopcntLanes(vandq_u64(bw, vld1q_u64(o1 + i))));
      acc2 = vaddq_u64(acc2, NeonPopcntLanes(vandq_u64(bw, vld1q_u64(o2 + i))));
      acc3 = vaddq_u64(acc3, NeonPopcntLanes(vandq_u64(bw, vld1q_u64(o3 + i))));
    }
    uint64_t c0 = vgetq_lane_u64(acc0, 0) + vgetq_lane_u64(acc0, 1);
    uint64_t c1 = vgetq_lane_u64(acc1, 0) + vgetq_lane_u64(acc1, 1);
    uint64_t c2 = vgetq_lane_u64(acc2, 0) + vgetq_lane_u64(acc2, 1);
    uint64_t c3 = vgetq_lane_u64(acc3, 0) + vgetq_lane_u64(acc3, 1);
    for (; i < n; ++i) {
      const uint64_t bw = base[i];
      c0 += Pop(bw & o0[i]);
      c1 += Pop(bw & o1[i]);
      c2 += Pop(bw & o2[i]);
      c3 += Pop(bw & o3[i]);
    }
    counts[j] = c0;
    counts[j + 1] = c1;
    counts[j + 2] = c2;
    counts[j + 3] = c3;
  }
  for (; j < num_others; ++j) counts[j] = NeonAndCount(base, others[j], n);
}

#endif  // CFQ_SIMD_AARCH64

// ---------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------

struct KernelTable {
  uint64_t (*count)(const uint64_t*, size_t);
  uint64_t (*and_count)(const uint64_t*, const uint64_t*, size_t);
  uint64_t (*and_into)(const uint64_t*, const uint64_t*, uint64_t*, size_t);
  void (*and_with)(uint64_t*, const uint64_t*, size_t);
  void (*and_count_many)(const uint64_t*, const uint64_t* const*, size_t,
                         size_t, uint64_t*);
};

constexpr KernelTable kScalarTable = {ScalarCount, ScalarAndCount,
                                      ScalarAndInto, ScalarAndWith,
                                      ScalarAndCountMany};
#if CFQ_SIMD_X86_64
constexpr KernelTable kAvx2Table = {Avx2Count, Avx2AndCount, Avx2AndInto,
                                    Avx2AndWith, Avx2AndCountMany};
#endif
#if CFQ_SIMD_AARCH64
constexpr KernelTable kNeonTable = {NeonCount, NeonAndCount, NeonAndInto,
                                    NeonAndWith, NeonAndCountMany};
#endif

const KernelTable* TableFor(Kernel kernel) {
  switch (kernel) {
    case Kernel::kScalar:
      return &kScalarTable;
    case Kernel::kAvx2:
#if CFQ_SIMD_X86_64
      return &kAvx2Table;
#else
      return nullptr;
#endif
    case Kernel::kNeon:
#if CFQ_SIMD_AARCH64
      return &kNeonTable;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

std::atomic<const KernelTable*> g_table{&kScalarTable};
std::atomic<Kernel> g_kernel{Kernel::kScalar};

void Install(Kernel kernel) {
  g_table.store(TableFor(kernel), std::memory_order_relaxed);
  g_kernel.store(kernel, std::memory_order_relaxed);
}

bool ParseKernelName(const char* name, Kernel* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0 || std::strcmp(name, "off") == 0) {
    *out = Kernel::kScalar;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = Kernel::kAvx2;
    return true;
  }
  if (std::strcmp(name, "neon") == 0) {
    *out = Kernel::kNeon;
    return true;
  }
  return false;
}

// One-time selection: CFQ_SIMD when it names a supported kernel (a bad
// value warns and falls through), else the CPU's best.
void SelectStartupKernel() {
  if (const char* env = std::getenv("CFQ_SIMD"); env != nullptr &&
      env[0] != '\0') {
    Kernel requested;
    if (ParseKernelName(env, &requested) && KernelSupported(requested)) {
      Install(requested);
      return;
    }
    std::fprintf(stderr,
                 "warning: CFQ_SIMD='%s' is unknown or unsupported on this "
                 "CPU (want off|scalar|avx2|neon); auto-detecting\n",
                 env);
  }
  Install(DetectBestKernel());
}

const KernelTable* Active() {
  static const bool initialized = [] {
    SelectStartupKernel();
    return true;
  }();
  (void)initialized;
  return g_table.load(std::memory_order_relaxed);
}

std::atomic<uint64_t> g_calls[kNumOps] = {};
std::atomic<uint64_t> g_words[kNumOps] = {};

inline void Account(Op op, uint64_t words) {
  const auto i = static_cast<size_t>(op);
  g_calls[i].fetch_add(1, std::memory_order_relaxed);
  g_words[i].fetch_add(words, std::memory_order_relaxed);
}

}  // namespace

const char* KernelName(Kernel kernel) {
  switch (kernel) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kAvx2:
      return "avx2";
    case Kernel::kNeon:
      return "neon";
  }
  return "?";
}

bool KernelSupported(Kernel kernel) {
  switch (kernel) {
    case Kernel::kScalar:
      return true;
    case Kernel::kAvx2:
#if CFQ_SIMD_X86_64
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Kernel::kNeon:
#if CFQ_SIMD_AARCH64
      return true;  // NEON is part of the aarch64 baseline.
#else
      return false;
#endif
  }
  return false;
}

Kernel DetectBestKernel() {
  if (KernelSupported(Kernel::kAvx2)) return Kernel::kAvx2;
  if (KernelSupported(Kernel::kNeon)) return Kernel::kNeon;
  return Kernel::kScalar;
}

Kernel ActiveKernel() {
  (void)Active();
  return g_kernel.load(std::memory_order_relaxed);
}

bool SetKernel(const char* name) {
  (void)Active();  // Run startup selection first so it cannot override.
  Kernel requested;
  if (!ParseKernelName(name, &requested) || !KernelSupported(requested)) {
    return false;
  }
  Install(requested);
  return true;
}

uint64_t Count(const uint64_t* w, size_t n) {
  Account(Op::kCount, n);
  return Active()->count(w, n);
}

uint64_t AndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  Account(Op::kAndCount, n);
  return Active()->and_count(a, b, n);
}

uint64_t AndInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                 size_t n) {
  Account(Op::kAndInto, n);
  return Active()->and_into(a, b, out, n);
}

void AndWith(uint64_t* a, const uint64_t* b, size_t n) {
  Account(Op::kAndWith, n);
  Active()->and_with(a, b, n);
}

void AndCountMany(const uint64_t* base, const uint64_t* const* others,
                  size_t num_others, size_t n, uint64_t* counts) {
  Account(Op::kAndCountMany, num_others * n);
  Active()->and_count_many(base, others, num_others, n, counts);
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kCount:
      return "count";
    case Op::kAndCount:
      return "and_count";
    case Op::kAndInto:
      return "and_into";
    case Op::kAndWith:
      return "and_with";
    case Op::kAndCountMany:
      return "and_count_many";
  }
  return "?";
}

OpCounters CountersFor(Op op) {
  const auto i = static_cast<size_t>(op);
  OpCounters out;
  out.calls = g_calls[i].load(std::memory_order_relaxed);
  out.words = g_words[i].load(std::memory_order_relaxed);
  return out;
}

}  // namespace cfq::simd
