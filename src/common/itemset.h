// Itemset: the fundamental value type of the library.
//
// An itemset is an immutable-by-convention, strictly sorted, duplicate-free
// vector of ItemId. Keeping the sorted invariant makes subset tests,
// intersections and the Apriori join linear-time merges.

#ifndef CFQ_COMMON_ITEMSET_H_
#define CFQ_COMMON_ITEMSET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cfq {

// Dense item identifier, an index into an ItemCatalog.
using ItemId = uint32_t;

// Strictly increasing sequence of ItemIds.
using Itemset = std::vector<ItemId>;

// True iff `s` is strictly sorted (the Itemset invariant).
bool IsCanonical(const Itemset& s);

// Sorts and deduplicates `items` into a canonical Itemset.
Itemset MakeItemset(std::vector<ItemId> items);

// True iff every element of `a` occurs in `b`. Both canonical.
bool IsSubset(const Itemset& a, const Itemset& b);

// True iff `a` and `b` share no element. Both canonical.
bool Disjoint(const Itemset& a, const Itemset& b);

// True iff `item` occurs in canonical `s` (binary search).
bool Contains(const Itemset& s, ItemId item);

// Merge-based set operations on canonical itemsets; results canonical.
Itemset Union(const Itemset& a, const Itemset& b);
Itemset Intersect(const Itemset& a, const Itemset& b);
Itemset Difference(const Itemset& a, const Itemset& b);

// Returns `s` minus the element at `index` (0-based). Used by the
// Apriori prune step to enumerate the k-1 subsets of a k-candidate.
Itemset WithoutIndex(const Itemset& s, size_t index);

// Apriori join: if `a` and `b` (both of size k, canonical) share their
// first k-1 elements and a.back() < b.back(), returns true and writes the
// size-k+1 join into `out`. Otherwise returns false.
bool AprioriJoin(const Itemset& a, const Itemset& b, Itemset* out);

// "{1, 5, 9}" rendering for logs and tests.
std::string ToString(const Itemset& s);

// Lexicographic comparison for use as map keys.
struct ItemsetLess {
  bool operator()(const Itemset& a, const Itemset& b) const { return a < b; }
};

// FNV-1a hash over the id sequence, for unordered containers.
struct ItemsetHash {
  size_t operator()(const Itemset& s) const;
};

// Enumerates every non-empty subset of `universe` (canonical), invoking
// `fn(subset)`. Intended for brute-force oracles on small universes; the
// caller is responsible for keeping |universe| small (<= ~20).
template <typename Fn>
void ForEachNonEmptySubset(const Itemset& universe, Fn&& fn) {
  const size_t n = universe.size();
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    Itemset subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) subset.push_back(universe[i]);
    }
    fn(subset);
  }
}

// Enumerates every size-k subset of `universe` in lexicographic order.
template <typename Fn>
void ForEachSubsetOfSize(const Itemset& universe, size_t k, Fn&& fn) {
  const size_t n = universe.size();
  if (k == 0 || k > n) return;
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    Itemset subset(k);
    for (size_t i = 0; i < k; ++i) subset[i] = universe[idx[i]];
    fn(subset);
    // Advance the combination.
    size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
  }
}

}  // namespace cfq

#endif  // CFQ_COMMON_ITEMSET_H_
