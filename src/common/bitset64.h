// Bitset64: a fixed-size dynamic bitset used as a TID (transaction id)
// list in the vertical counting backend. Support counting reduces to
// AND + popcount over 64-bit words.

#ifndef CFQ_COMMON_BITSET64_H_
#define CFQ_COMMON_BITSET64_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cfq {

class Bitset64 {
 public:
  Bitset64() = default;
  // Creates a bitset holding `num_bits` bits, all clear.
  explicit Bitset64(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t num_bits() const { return num_bits_; }

  void Set(size_t pos) { words_[pos >> 6] |= (uint64_t{1} << (pos & 63)); }
  void Clear(size_t pos) { words_[pos >> 6] &= ~(uint64_t{1} << (pos & 63)); }
  bool Test(size_t pos) const {
    return (words_[pos >> 6] >> (pos & 63)) & 1;
  }

  // Grows (or shrinks) to `num_bits`, preserving the bits that remain
  // and clearing any newly added ones. Used by the vertical index when
  // transactions are appended to an already-indexed database.
  void Resize(size_t num_bits);

  // Number of set bits.
  size_t Count() const;

  // this &= other. Both bitsets must have the same size.
  void AndWith(const Bitset64& other);

  // Writes a & b into *out (resized as needed) and returns popcount(a & b).
  // Fused so support counting does one pass.
  static size_t AndInto(const Bitset64& a, const Bitset64& b, Bitset64* out);

  // popcount(a & b) without materializing the intersection.
  static size_t AndCount(const Bitset64& a, const Bitset64& b);

  friend bool operator==(const Bitset64& a, const Bitset64& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace cfq

#endif  // CFQ_COMMON_BITSET64_H_
