// Bitset64: a fixed-size dynamic bitset used as a TID (transaction id)
// list in the vertical counting backend. Support counting reduces to
// AND + popcount over 64-bit words, dispatched through the vectorized
// kernels of common/simd.h (AVX2 / NEON / unrolled scalar).
//
// Tail invariant: in the last word, every bit at a position >= num_bits()
// is zero, always. The counting kernels rely on it — they process full
// words with no per-element masking, so a stale tail bit would corrupt
// supports. The invariant is maintained by construction (words start
// zeroed), by Set/Clear (positions must be < num_bits(), asserted), and
// by Resize (which re-zeroes the boundary word on both shrink and
// grow). TransactionDb::Append leans on this: extending an indexed
// database is Resize + Set with no rebuild.

#ifndef CFQ_COMMON_BITSET64_H_
#define CFQ_COMMON_BITSET64_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cfq {

class Bitset64 {
 public:
  Bitset64() = default;
  // Creates a bitset holding `num_bits` bits, all clear.
  explicit Bitset64(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t num_bits() const { return num_bits_; }

  void Set(size_t pos) {
    assert(pos < num_bits_);
    words_[pos >> 6] |= (uint64_t{1} << (pos & 63));
  }
  void Clear(size_t pos) {
    assert(pos < num_bits_);
    words_[pos >> 6] &= ~(uint64_t{1} << (pos & 63));
  }
  bool Test(size_t pos) const {
    return (words_[pos >> 6] >> (pos & 63)) & 1;
  }

  // Grows (or shrinks) to `num_bits`, preserving the bits that remain
  // and clearing any newly added ones. Re-establishes the tail
  // invariant in both directions. Used by the vertical index when
  // transactions are appended to an already-indexed database.
  void Resize(size_t num_bits);

  // The raw word array (num_words() words, tail bits zero per the
  // invariant above). For callers that run the simd.h kernels over a
  // word subrange, e.g. the incremental delta recount.
  const uint64_t* words() const { return words_.data(); }
  size_t num_words() const { return words_.size(); }

  // Number of set bits.
  size_t Count() const;

  // Number of set bits at positions [bit_begin, bit_end) (bit_end is
  // clamped to num_bits()). Boundary words are masked; the interior
  // runs the vectorized kernel.
  size_t CountRange(size_t bit_begin, size_t bit_end) const;

  // this &= other. Both bitsets must have the same size.
  void AndWith(const Bitset64& other);

  // Writes a & b into *out (resized as needed) and returns popcount(a & b).
  // Fused so support counting does one pass.
  static size_t AndInto(const Bitset64& a, const Bitset64& b, Bitset64* out);

  // popcount(a & b) without materializing the intersection.
  static size_t AndCount(const Bitset64& a, const Bitset64& b);

  // popcount(a & b) restricted to positions [bit_begin, bit_end)
  // (clamped to the size). Boundary words masked, interior vectorized.
  static size_t AndCountRange(const Bitset64& a, const Bitset64& b,
                              size_t bit_begin, size_t bit_end);

  // counts[j] = popcount(base & *others[j]) for j in [0, count). All
  // bitsets must have base's size. Fused multi-way kernel: the base
  // words are loaded once per block of candidates, which is the hot
  // shape of Apriori counting (sibling candidates share a prefix).
  static void AndCountMany(const Bitset64& base,
                           const Bitset64* const* others, size_t count,
                           uint64_t* counts);

  friend bool operator==(const Bitset64& a, const Bitset64& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

 private:
  // Zeroes the bits of the last word at positions >= num_bits_.
  void ClearTail() {
    if ((num_bits_ & 63) != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << (num_bits_ & 63)) - 1;
    }
  }

  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace cfq

#endif  // CFQ_COMMON_BITSET64_H_
