// Deterministic random number helpers. All randomized components of the
// library (synthetic data generation, property tests) take an explicit
// seed so runs are reproducible.

#ifndef CFQ_COMMON_RNG_H_
#define CFQ_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace cfq {

// Thin wrapper over mt19937_64 with the distribution helpers the
// generator needs. Copyable so generator state can be forked.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Poisson with the given mean (> 0).
  int64_t Poisson(double mean) {
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  // Exponential with the given mean (> 0).
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Bernoulli with probability p of returning true.
  bool Flip(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cfq

#endif  // CFQ_COMMON_RNG_H_
