// Build/version identity for every binary in the toolchain.
//
// The git describe string and build type are baked in at CMake
// configure time (src/common/build_info.h.in); the active counting
// kernel is resolved at call time, after ApplySimdArgs / CFQ_SIMD have
// had their say. All three surface in `--version` output, the daemon's
// stats command, and GET /stats — so a captured workload or a BENCH
// file can always be tied back to the exact build that produced it.

#ifndef CFQ_COMMON_VERSION_H_
#define CFQ_COMMON_VERSION_H_

#include <string>

namespace cfq {

// "git describe --always --dirty --tags" at configure time; "unknown"
// when the source tree was not a git checkout.
const char* BuildGitDescribe();

// CMAKE_BUILD_TYPE at configure time ("RelWithDebInfo", "Debug", ...).
const char* BuildType();

// One human line: "<binary> <describe> (<build type>, simd=<kernel>)".
// The standard --version body.
std::string VersionLine(const std::string& binary);

}  // namespace cfq

#endif  // CFQ_COMMON_VERSION_H_
