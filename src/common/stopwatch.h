// Wall-clock and thread-CPU stopwatches for the benchmark harnesses
// and the per-phase resource accounting.

#ifndef CFQ_COMMON_STOPWATCH_H_
#define CFQ_COMMON_STOPWATCH_H_

#include <chrono>
#include <ctime>

namespace cfq {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// CPU time consumed by the calling thread. Paired with a wall-clock
// Stopwatch this makes wall-vs-CPU skew visible per phase: a sharded
// count whose wall time stays flat while its thread CPU time shrinks
// is offloading work to the pool; one whose CPU time stays put is
// blocked, not computing. Both stopwatches must be read on the thread
// that constructed them.
class CpuStopwatch {
 public:
  CpuStopwatch() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  // Thread CPU seconds since construction or the last Restart().
  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }

  double start_;
};

}  // namespace cfq

#endif  // CFQ_COMMON_STOPWATCH_H_
