#include "common/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace cfq {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TablePrinter::Fmt(uint64_t value) { return std::to_string(value); }
std::string TablePrinter::Fmt(int64_t value) { return std::to_string(value); }

}  // namespace cfq
