// CancelToken: cooperative cancellation with an optional deadline.
//
// The serving layer runs queries with per-query deadlines; the mining
// engine has no preemption, so cancellation is cooperative: long-running
// strategies poll a shared token at level boundaries (the natural unit
// of progress — a level is one generate+count round) and between pair-
// formation shards, and bail out with StatusCode::kDeadlineExceeded.
//
// A token is safe to poll from any thread (the concurrent dovetail mines
// S and T on two threads against one token) and to cancel from a thread
// that is not running the query (an admission controller or a signal
// path). Expiry is sticky: once Expired() has returned true it returns
// true forever, even if the deadline is later extended.

#ifndef CFQ_COMMON_CANCELLATION_H_
#define CFQ_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace cfq {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Requests cancellation explicitly (drain paths, client disconnect).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  // Arms a deadline `budget` from now. A non-positive budget expires
  // immediately.
  void SetDeadline(std::chrono::nanoseconds budget) {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch() + budget)
            .count(),
        std::memory_order_relaxed);
  }

  // True once cancelled or past the deadline. Polled on level
  // boundaries; one relaxed load plus a clock read, cheap enough for
  // every check site.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline == kNoDeadline) return false;
    const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            Clock::now().time_since_epoch())
                            .count();
    if (now < deadline) return false;
    cancelled_.store(true, std::memory_order_relaxed);  // Sticky.
    return true;
  }

  // The error every check site returns, so callers can map it to one
  // protocol status (`context` names the boundary that noticed).
  static Status ExpiredError(const std::string& context) {
    return Status(StatusCode::kDeadlineExceeded,
                  "query cancelled at " + context);
  }

 private:
  static constexpr int64_t kNoDeadline = INT64_MAX;

  mutable std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
};

// Shared poll helper: OK when `token` is null or still live.
inline Status CheckCancel(const CancelToken* token,
                          const std::string& context) {
  if (token != nullptr && token->Expired()) {
    return CancelToken::ExpiredError(context);
  }
  return Status::Ok();
}

}  // namespace cfq

#endif  // CFQ_COMMON_CANCELLATION_H_
