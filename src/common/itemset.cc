#include "common/itemset.h"

#include <algorithm>
#include <sstream>

namespace cfq {

bool IsCanonical(const Itemset& s) {
  for (size_t i = 1; i < s.size(); ++i) {
    if (s[i - 1] >= s[i]) return false;
  }
  return true;
}

Itemset MakeItemset(std::vector<ItemId> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  return items;
}

bool IsSubset(const Itemset& a, const Itemset& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool Disjoint(const Itemset& a, const Itemset& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return false;
    }
  }
  return true;
}

bool Contains(const Itemset& s, ItemId item) {
  return std::binary_search(s.begin(), s.end(), item);
}

Itemset Union(const Itemset& a, const Itemset& b) {
  Itemset out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

Itemset Intersect(const Itemset& a, const Itemset& b) {
  Itemset out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

Itemset Difference(const Itemset& a, const Itemset& b) {
  Itemset out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

Itemset WithoutIndex(const Itemset& s, size_t index) {
  Itemset out;
  out.reserve(s.size() - 1);
  for (size_t i = 0; i < s.size(); ++i) {
    if (i != index) out.push_back(s[i]);
  }
  return out;
}

bool AprioriJoin(const Itemset& a, const Itemset& b, Itemset* out) {
  if (a.size() != b.size() || a.empty()) return false;
  const size_t k = a.size();
  for (size_t i = 0; i + 1 < k; ++i) {
    if (a[i] != b[i]) return false;
  }
  if (a[k - 1] >= b[k - 1]) return false;
  *out = a;
  out->push_back(b[k - 1]);
  return true;
}

std::string ToString(const Itemset& s) {
  std::ostringstream os;
  os << '{';
  for (size_t i = 0; i < s.size(); ++i) {
    if (i > 0) os << ", ";
    os << s[i];
  }
  os << '}';
  return os.str();
}

size_t ItemsetHash::operator()(const Itemset& s) const {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis.
  for (ItemId id : s) {
    h ^= id;
    h *= 1099511628211ull;  // FNV prime.
  }
  return static_cast<size_t>(h);
}

}  // namespace cfq
