// Console table rendering for the benchmark harnesses, which print the
// same rows/series as the paper's tables and figures.

#ifndef CFQ_COMMON_TABLE_PRINTER_H_
#define CFQ_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace cfq {

// Collects rows of string cells and prints them with aligned columns.
//
//   TablePrinter t({"% overlap", "speedup"});
//   t.AddRow({"16.6", "4.05"});
//   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Renders the table with a header underline. Cells are left-aligned.
  void Print(std::ostream& os) const;

  // Convenience formatters.
  static std::string Fmt(double value, int precision = 2);
  static std::string Fmt(uint64_t value);
  static std::string Fmt(int64_t value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cfq

#endif  // CFQ_COMMON_TABLE_PRINTER_H_
