#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace cfq {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? HardwareThreads() : num_threads),
      slots_(num_threads_) {
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(&slots_[i]); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

std::pair<size_t, size_t> ThreadPool::ChunkRange(size_t n, size_t chunks,
                                                 size_t c) {
  chunks = std::min(std::max<size_t>(chunks, 1), std::max<size_t>(n, 1));
  const size_t base = n / chunks;
  const size_t rem = n % chunks;
  const size_t begin = c * base + std::min(c, rem);
  return {begin, begin + base + (c < rem ? 1 : 0)};
}

std::vector<ThreadPoolWorkerStats> ThreadPool::worker_stats() const {
  std::vector<ThreadPoolWorkerStats> out(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    out[i].chunks = slots_[i].chunks.load(std::memory_order_relaxed);
    out[i].busy_seconds =
        static_cast<double>(slots_[i].busy_ns.load(std::memory_order_relaxed)) *
        1e-9;
    out[i].idle_seconds =
        static_cast<double>(slots_[i].idle_ns.load(std::memory_order_relaxed)) *
        1e-9;
  }
  return out;
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats out;
  out.workers = slots_.size();
  out.tasks = tasks_submitted_.load(std::memory_order_relaxed);
  for (const ThreadPoolWorkerStats& w : worker_stats()) {
    out.chunks += w.chunks;
    out.busy_seconds += w.busy_seconds;
    out.idle_seconds += w.idle_seconds;
  }
  return out;
}

void ThreadPool::RunChunks(Task* task, Slot* slot) {
  size_t c;
  while ((c = task->next.fetch_add(1, std::memory_order_relaxed)) <
         task->num_chunks) {
    const uint64_t start = NowNs();
    task->run_chunk(c);
    slot->busy_ns.fetch_add(NowNs() - start, std::memory_order_relaxed);
    slot->chunks.fetch_add(1, std::memory_order_relaxed);
    if (task->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        task->num_chunks) {
      // Briefly take the task lock so the notify cannot slip between a
      // waiter's predicate check and its wait.
      std::lock_guard<std::mutex> lock(task->mu);
      task->cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop(Slot* slot) {
  for (;;) {
    std::shared_ptr<Task> task;
    {
      const uint64_t wait_start = NowNs();
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      slot->idle_ns.fetch_add(NowNs() - wait_start,
                              std::memory_order_relaxed);
      if (stop_) return;
      task = tasks_.front();
      if (task->next.load(std::memory_order_relaxed) >= task->num_chunks) {
        // Fully claimed; in-flight chunks are the claimers' business.
        tasks_.pop_front();
        continue;
      }
    }
    RunChunks(task.get(), slot);
  }
}

void ThreadPool::ParallelChunks(
    size_t n, size_t chunks,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  chunks = std::min(std::max<size_t>(chunks, 1), n);
  Slot* caller_slot = &slots_.back();
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (num_threads_ <= 1 || chunks == 1) {
    const uint64_t start = NowNs();
    for (size_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = ChunkRange(n, chunks, c);
      fn(c, begin, end);
    }
    caller_slot->busy_ns.fetch_add(NowNs() - start, std::memory_order_relaxed);
    caller_slot->chunks.fetch_add(chunks, std::memory_order_relaxed);
    return;
  }
  auto task = std::make_shared<Task>();
  task->num_chunks = chunks;
  task->run_chunk = [&fn, n, chunks](size_t c) {
    const auto [begin, end] = ChunkRange(n, chunks, c);
    fn(c, begin, end);
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(task);
  }
  cv_.notify_all();
  RunChunks(task.get(), caller_slot);  // The caller is one of the pool's threads.
  std::unique_lock<std::mutex> lock(task->mu);
  task->cv.wait(lock, [&task] {
    return task->done.load(std::memory_order_acquire) >= task->num_chunks;
  });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  // 4 chunks per thread smooths uneven per-index cost without hurting
  // the single-thread inline path.
  ParallelChunks(n, num_threads_ * 4,
                 [&fn](size_t, size_t begin, size_t end) { fn(begin, end); });
}

}  // namespace cfq
