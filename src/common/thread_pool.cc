#include "common/thread_pool.h"

#include <algorithm>

namespace cfq {

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? HardwareThreads() : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

std::pair<size_t, size_t> ThreadPool::ChunkRange(size_t n, size_t chunks,
                                                 size_t c) {
  chunks = std::min(std::max<size_t>(chunks, 1), std::max<size_t>(n, 1));
  const size_t base = n / chunks;
  const size_t rem = n % chunks;
  const size_t begin = c * base + std::min(c, rem);
  return {begin, begin + base + (c < rem ? 1 : 0)};
}

void ThreadPool::RunChunks(Task* task) {
  size_t c;
  while ((c = task->next.fetch_add(1, std::memory_order_relaxed)) <
         task->num_chunks) {
    task->run_chunk(c);
    if (task->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        task->num_chunks) {
      // Briefly take the task lock so the notify cannot slip between a
      // waiter's predicate check and its wait.
      std::lock_guard<std::mutex> lock(task->mu);
      task->cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_) return;
      task = tasks_.front();
      if (task->next.load(std::memory_order_relaxed) >= task->num_chunks) {
        // Fully claimed; in-flight chunks are the claimers' business.
        tasks_.pop_front();
        continue;
      }
    }
    RunChunks(task.get());
  }
}

void ThreadPool::ParallelChunks(
    size_t n, size_t chunks,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  chunks = std::min(std::max<size_t>(chunks, 1), n);
  if (num_threads_ <= 1 || chunks == 1) {
    for (size_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = ChunkRange(n, chunks, c);
      fn(c, begin, end);
    }
    return;
  }
  auto task = std::make_shared<Task>();
  task->num_chunks = chunks;
  task->run_chunk = [&fn, n, chunks](size_t c) {
    const auto [begin, end] = ChunkRange(n, chunks, c);
    fn(c, begin, end);
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(task);
  }
  cv_.notify_all();
  RunChunks(task.get());  // The caller is one of the pool's threads.
  std::unique_lock<std::mutex> lock(task->mu);
  task->cv.wait(lock, [&task] {
    return task->done.load(std::memory_order_acquire) >= task->num_chunks;
  });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  // 4 chunks per thread smooths uneven per-index cost without hurting
  // the single-thread inline path.
  ParallelChunks(n, num_threads_ * 4,
                 [&fn](size_t, size_t begin, size_t end) { fn(begin, end); });
}

}  // namespace cfq
