#include "common/bitset64.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "common/simd.h"

namespace cfq {
namespace {

// Mask selecting bit positions [0, bit) of a word; bit in [1, 63].
inline uint64_t LowMask(size_t bit) { return (uint64_t{1} << bit) - 1; }

}  // namespace

void Bitset64::Resize(size_t num_bits) {
  if (num_bits > num_bits_) {
    // Defensive: the tail should already be zero per the invariant, but
    // a stale bit here would silently become a live bit after growth.
    ClearTail();
  }
  words_.resize((num_bits + 63) / 64, 0);
  num_bits_ = num_bits;
  ClearTail();
}

size_t Bitset64::Count() const {
  return static_cast<size_t>(simd::Count(words_.data(), words_.size()));
}

size_t Bitset64::CountRange(size_t bit_begin, size_t bit_end) const {
  bit_end = std::min(bit_end, num_bits_);
  if (bit_begin >= bit_end) return 0;
  const size_t w0 = bit_begin >> 6;
  const size_t w1 = (bit_end - 1) >> 6;  // Last word with bits in range.
  const uint64_t head = (bit_begin & 63) ? ~LowMask(bit_begin & 63) : ~uint64_t{0};
  const uint64_t tail = (bit_end & 63) ? LowMask(bit_end & 63) : ~uint64_t{0};
  if (w0 == w1) {
    return static_cast<size_t>(std::popcount(words_[w0] & head & tail));
  }
  size_t total = static_cast<size_t>(std::popcount(words_[w0] & head)) +
                 static_cast<size_t>(std::popcount(words_[w1] & tail));
  total += static_cast<size_t>(simd::Count(words_.data() + w0 + 1, w1 - w0 - 1));
  return total;
}

void Bitset64::AndWith(const Bitset64& other) {
  assert(num_bits_ == other.num_bits_);
  simd::AndWith(words_.data(), other.words_.data(), words_.size());
}

size_t Bitset64::AndInto(const Bitset64& a, const Bitset64& b, Bitset64* out) {
  assert(a.num_bits_ == b.num_bits_);
  out->num_bits_ = a.num_bits_;
  out->words_.resize(a.words_.size());
  return static_cast<size_t>(simd::AndInto(a.words_.data(), b.words_.data(),
                                           out->words_.data(),
                                           a.words_.size()));
}

size_t Bitset64::AndCount(const Bitset64& a, const Bitset64& b) {
  assert(a.num_bits_ == b.num_bits_);
  return static_cast<size_t>(
      simd::AndCount(a.words_.data(), b.words_.data(), a.words_.size()));
}

size_t Bitset64::AndCountRange(const Bitset64& a, const Bitset64& b,
                               size_t bit_begin, size_t bit_end) {
  assert(a.num_bits_ == b.num_bits_);
  bit_end = std::min(bit_end, a.num_bits_);
  if (bit_begin >= bit_end) return 0;
  const size_t w0 = bit_begin >> 6;
  const size_t w1 = (bit_end - 1) >> 6;
  const uint64_t head = (bit_begin & 63) ? ~LowMask(bit_begin & 63) : ~uint64_t{0};
  const uint64_t tail = (bit_end & 63) ? LowMask(bit_end & 63) : ~uint64_t{0};
  if (w0 == w1) {
    return static_cast<size_t>(
        std::popcount(a.words_[w0] & b.words_[w0] & head & tail));
  }
  size_t total =
      static_cast<size_t>(std::popcount(a.words_[w0] & b.words_[w0] & head)) +
      static_cast<size_t>(std::popcount(a.words_[w1] & b.words_[w1] & tail));
  total += static_cast<size_t>(simd::AndCount(
      a.words_.data() + w0 + 1, b.words_.data() + w0 + 1, w1 - w0 - 1));
  return total;
}

void Bitset64::AndCountMany(const Bitset64& base, const Bitset64* const* others,
                            size_t count, uint64_t* counts) {
  if (count == 0) return;
  // Gather raw word pointers; stack buffer covers the common batch sizes.
  constexpr size_t kStackPtrs = 64;
  const uint64_t* stack_ptrs[kStackPtrs];
  std::vector<const uint64_t*> heap_ptrs;
  const uint64_t** ptrs = stack_ptrs;
  if (count > kStackPtrs) {
    heap_ptrs.resize(count);
    ptrs = heap_ptrs.data();
  }
  for (size_t j = 0; j < count; ++j) {
    assert(others[j]->num_bits_ == base.num_bits_);
    ptrs[j] = others[j]->words_.data();
  }
  simd::AndCountMany(base.words_.data(), ptrs, count, base.words_.size(),
                     counts);
}

}  // namespace cfq
