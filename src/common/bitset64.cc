#include "common/bitset64.h"

#include <bit>
#include <cassert>

namespace cfq {

void Bitset64::Resize(size_t num_bits) {
  words_.resize((num_bits + 63) / 64, 0);
  if (num_bits < num_bits_ && num_bits % 64 != 0) {
    // Clear the tail of the last surviving word so equality and
    // popcount never see bits beyond num_bits().
    words_.back() &= (uint64_t{1} << (num_bits & 63)) - 1;
  }
  num_bits_ = num_bits;
}

size_t Bitset64::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(std::popcount(w));
  return total;
}

void Bitset64::AndWith(const Bitset64& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

size_t Bitset64::AndInto(const Bitset64& a, const Bitset64& b, Bitset64* out) {
  assert(a.num_bits_ == b.num_bits_);
  out->num_bits_ = a.num_bits_;
  out->words_.resize(a.words_.size());
  size_t total = 0;
  for (size_t i = 0; i < a.words_.size(); ++i) {
    const uint64_t w = a.words_[i] & b.words_[i];
    out->words_[i] = w;
    total += static_cast<size_t>(std::popcount(w));
  }
  return total;
}

size_t Bitset64::AndCount(const Bitset64& a, const Bitset64& b) {
  assert(a.num_bits_ == b.num_bits_);
  size_t total = 0;
  for (size_t i = 0; i < a.words_.size(); ++i) {
    total += static_cast<size_t>(std::popcount(a.words_[i] & b.words_[i]));
  }
  return total;
}

}  // namespace cfq
