#include "common/combinatorics.h"

#include <limits>

namespace cfq {

uint64_t BinomialSaturating(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  uint64_t result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    const uint64_t numer = n - k + i;
    // result = result * numer / i. The division is exact at every step
    // (prefix binomials are integers); guard the multiply.
    const uint64_t g = result / i;        // quotient part
    const uint64_t r = result % i;        // remainder part
    // result*numer = (g*i + r)*numer = g*numer*i + r*numer; divided by i:
    // g*numer + (r*numer)/i with exact division overall.
    if (g != 0 && numer > kMax / g) return kMax;
    uint64_t term = g * numer;
    const uint64_t rest = (r * numer) / i;
    if (term > kMax - rest) return kMax;
    result = term + rest;
  }
  return result;
}

int64_t LargestJForCount(uint64_t count, uint64_t k, uint64_t max_j) {
  if (count == 0) return -1;
  if (k == 0) return -1;
  int64_t best = -1;
  for (uint64_t j = 0; j <= max_j; ++j) {
    // Needs C(k+j-1, k-1) frequent k-sets.
    const uint64_t needed = BinomialSaturating(k + j - 1, k - 1);
    if (count >= needed) {
      best = static_cast<int64_t>(j);
    } else {
      break;  // needed is nondecreasing in j.
    }
  }
  return best;
}

}  // namespace cfq
