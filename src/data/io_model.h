// Page-based I/O cost model.
//
// The paper's experiments report CPU + I/O time with a 4 KB page size.
// Our substrate is in-memory, so miners account I/O symbolically: each
// full pass over the transaction file costs the number of pages the file
// occupies on disk under a simple record layout (4-byte TID + length +
// 4 bytes per item, records not split across pages).

#ifndef CFQ_DATA_IO_MODEL_H_
#define CFQ_DATA_IO_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace cfq {

struct IoModel {
  size_t page_size_bytes = 4096;
  size_t bytes_per_item = 4;
  size_t record_header_bytes = 8;  // TID + item count.

  // Pages needed for one transaction record.
  size_t RecordBytes(size_t num_items_in_txn) const {
    return record_header_bytes + bytes_per_item * num_items_in_txn;
  }
};

// Accumulated symbolic I/O for one mining run.
struct IoStats {
  uint64_t scans = 0;        // Full passes over the transaction file.
  uint64_t pages_read = 0;   // Total pages fetched.

  void AddScan(uint64_t pages_per_scan) {
    ++scans;
    pages_read += pages_per_scan;
  }

  // Field-complete merge; CccStats::MergeFrom delegates here so a field
  // added to IoStats cannot be silently dropped on merge.
  void MergeFrom(const IoStats& other) {
    scans += other.scans;
    pages_read += other.pages_read;
  }
};

}  // namespace cfq

#endif  // CFQ_DATA_IO_MODEL_H_
