#include "data/transaction_db.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace cfq {

TransactionDb::TransactionDb(size_t num_items) : num_items_(num_items) {}

void TransactionDb::Add(std::vector<ItemId> items) {
  items.erase(std::remove_if(items.begin(), items.end(),
                             [this](ItemId id) { return id >= num_items_; }),
              items.end());
  transactions_.push_back(MakeItemset(std::move(items)));
  vertical_.clear();  // Invalidate any stale index.
}

size_t TransactionDb::Append(const std::vector<std::vector<ItemId>>& batch) {
  const size_t first_tid = transactions_.size();
  transactions_.reserve(first_tid + batch.size());
  for (std::vector<ItemId> items : batch) {
    items.erase(std::remove_if(items.begin(), items.end(),
                               [this](ItemId id) { return id >= num_items_; }),
                items.end());
    transactions_.push_back(MakeItemset(std::move(items)));
  }
  if (!vertical_.empty()) {
    for (Bitset64& bits : vertical_) bits.Resize(transactions_.size());
    for (size_t tid = first_tid; tid < transactions_.size(); ++tid) {
      for (ItemId item : transactions_[tid]) vertical_[item].Set(tid);
    }
  }
  return first_tid;
}

uint64_t TransactionDb::CountSupport(const Itemset& s) const {
  uint64_t count = 0;
  for (const Itemset& t : transactions_) {
    if (IsSubset(s, t)) ++count;
  }
  return count;
}

void TransactionDb::BuildVerticalIndex(ThreadPool* pool) {
  vertical_.assign(num_items_, Bitset64(transactions_.size()));
  if (pool == nullptr || pool->num_threads() <= 1 ||
      transactions_.size() < 1024) {
    for (size_t tid = 0; tid < transactions_.size(); ++tid) {
      for (ItemId item : transactions_[tid]) {
        vertical_[item].Set(tid);
      }
    }
    return;
  }
  // Shard by 64-aligned TID blocks: each shard handles a contiguous
  // run of whole bitmap words, so two shards never touch the same word
  // of any bitmap and the transaction list is scanned exactly once in
  // total (the old item-range sharding scanned it once per shard).
  const size_t n = transactions_.size();
  const size_t num_blocks = (n + 63) / 64;
  pool->ParallelChunks(
      num_blocks, pool->num_threads(),
      [this, n](size_t, size_t block_begin, size_t block_end) {
        const size_t tid_begin = block_begin * 64;
        const size_t tid_end = std::min(n, block_end * 64);
        for (size_t tid = tid_begin; tid < tid_end; ++tid) {
          for (ItemId item : transactions_[tid]) {
            vertical_[item].Set(tid);
          }
        }
      });
}

uint64_t TransactionDb::PagesPerScan(const IoModel& model) const {
  // Records are packed into pages without splitting.
  uint64_t pages = 0;
  size_t bytes_left = 0;
  for (const Itemset& t : transactions_) {
    const size_t rec = model.RecordBytes(t.size());
    if (rec > bytes_left) {
      ++pages;
      bytes_left = model.page_size_bytes;
    }
    bytes_left -= std::min(rec, bytes_left);
  }
  return pages;
}

}  // namespace cfq
