#include "data/attribute_gen.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace cfq {

Status AssignUniformPrices(ItemCatalog* catalog, const std::string& attr,
                           int64_t lo, int64_t hi, uint64_t seed) {
  if (lo > hi) return Status::InvalidArgument("price range is empty");
  Rng rng(seed);
  std::vector<AttrValue> prices(catalog->num_items());
  for (AttrValue& p : prices) {
    p = static_cast<AttrValue>(rng.UniformInt(lo, hi));
  }
  return catalog->AddNumericAttr(attr, std::move(prices));
}

Status AssignSplitUniformPrices(ItemCatalog* catalog, const std::string& attr,
                                int64_t s_lo, int64_t s_hi, int64_t t_lo,
                                int64_t t_hi, uint64_t seed,
                                ExperimentDomains* domains) {
  if (s_lo > s_hi || t_lo > t_hi) {
    return Status::InvalidArgument("price range is empty");
  }
  Rng rng(seed);
  const size_t n = catalog->num_items();
  std::vector<AttrValue> prices(n);
  ExperimentDomains out;
  for (ItemId item = 0; item < n; ++item) {
    const bool s_side = (item % 2 == 0);
    if (s_side) {
      prices[item] = static_cast<AttrValue>(rng.UniformInt(s_lo, s_hi));
      out.s_domain.push_back(item);
    } else {
      prices[item] = static_cast<AttrValue>(rng.UniformInt(t_lo, t_hi));
      out.t_domain.push_back(item);
    }
  }
  CFQ_RETURN_IF_ERROR(catalog->AddNumericAttr(attr, std::move(prices)));
  if (domains != nullptr) *domains = std::move(out);
  return Status::Ok();
}

Status AssignSplitNormalPrices(ItemCatalog* catalog, const std::string& attr,
                               double s_mean, double t_mean, double sigma,
                               uint64_t seed, ExperimentDomains* domains) {
  if (sigma < 0) return Status::InvalidArgument("sigma must be nonnegative");
  Rng rng(seed);
  const size_t n = catalog->num_items();
  std::vector<AttrValue> prices(n);
  ExperimentDomains out;
  for (ItemId item = 0; item < n; ++item) {
    const bool s_side = (item % 2 == 0);
    const double mean = s_side ? s_mean : t_mean;
    const double draw = std::max(0.0, rng.Normal(mean, sigma));
    prices[item] = std::round(draw);
    (s_side ? out.s_domain : out.t_domain).push_back(item);
  }
  CFQ_RETURN_IF_ERROR(catalog->AddNumericAttr(attr, std::move(prices)));
  if (domains != nullptr) *domains = std::move(out);
  return Status::Ok();
}

Status AssignTypesWithOverlap(ItemCatalog* catalog, const std::string& attr,
                              const ExperimentDomains& domains,
                              int32_t num_types_per_side,
                              double overlap_percent, uint64_t seed) {
  if (num_types_per_side <= 0) {
    return Status::InvalidArgument("num_types_per_side must be positive");
  }
  if (overlap_percent < 0 || overlap_percent > 100) {
    return Status::InvalidArgument("overlap_percent must be in [0, 100]");
  }
  // S-side types are [0, k). T-side types are [k - shared, 2k - shared),
  // so exactly `shared` values are common to both sides.
  const int32_t k = num_types_per_side;
  const int32_t shared = static_cast<int32_t>(
      std::lround(overlap_percent / 100.0 * static_cast<double>(k)));
  const int32_t t_start = k - shared;

  Rng rng(seed);
  std::vector<int32_t> codes(catalog->num_items(), 0);
  for (size_t i = 0; i < domains.s_domain.size(); ++i) {
    codes[domains.s_domain[i]] =
        static_cast<int32_t>(rng.UniformInt(0, k - 1));
  }
  for (size_t i = 0; i < domains.t_domain.size(); ++i) {
    codes[domains.t_domain[i]] =
        t_start + static_cast<int32_t>(rng.UniformInt(0, k - 1));
  }
  return catalog->AddCategoricalAttr(attr, std::move(codes));
}

Status AssignBandedTypes(ItemCatalog* catalog, const std::string& type_attr,
                         const std::string& price_attr, double s_lo,
                         double t_hi, int32_t num_types_per_side,
                         double overlap_percent, uint64_t seed) {
  if (num_types_per_side <= 0) {
    return Status::InvalidArgument("num_types_per_side must be positive");
  }
  if (overlap_percent < 0 || overlap_percent > 100) {
    return Status::InvalidArgument("overlap_percent must be in [0, 100]");
  }
  if (!catalog->HasAttr(price_attr)) {
    return Status::NotFound("unknown attribute '" + price_attr + "'");
  }
  const int32_t k = num_types_per_side;
  const int32_t shared = static_cast<int32_t>(
      std::lround(overlap_percent / 100.0 * static_cast<double>(k)));
  // S pool: [0, k). T pool: [k - shared, 2k - shared).
  // Intersection: [k - shared, k).
  const int32_t t_start = k - shared;

  Rng rng(seed);
  std::vector<int32_t> codes(catalog->num_items(), 0);
  bool flip = false;
  for (ItemId i = 0; i < catalog->num_items(); ++i) {
    const AttrValue price = catalog->ValueUnchecked(price_attr, i);
    if (price > t_hi) {
      codes[i] = static_cast<int32_t>(rng.UniformInt(0, k - 1));  // S pool.
    } else if (price < s_lo) {
      codes[i] =
          t_start + static_cast<int32_t>(rng.UniformInt(0, k - 1));  // T pool.
    } else if (shared > 0) {
      codes[i] =
          t_start + static_cast<int32_t>(rng.UniformInt(0, shared - 1));
    } else {
      // Disjoint pools: alternate, accepting slight pollution.
      codes[i] = flip
                     ? static_cast<int32_t>(rng.UniformInt(0, k - 1))
                     : t_start + static_cast<int32_t>(rng.UniformInt(0, k - 1));
      flip = !flip;
    }
  }
  return catalog->AddCategoricalAttr(type_attr, std::move(codes));
}

}  // namespace cfq
