// Attribute generators reproducing the itemInfo(Item, Type, Price)
// setups of the paper's Section 7 experiments.
//
// The experiments control (a) the Price range/distribution of the items
// the S and T variables range over and (b) the overlap between the Type
// values on the two sides. We model this by splitting the item universe
// into an S-eligible and a T-eligible half and assigning attributes per
// half; the returned ExperimentDomains carry the per-variable domains.

#ifndef CFQ_DATA_ATTRIBUTE_GEN_H_
#define CFQ_DATA_ATTRIBUTE_GEN_H_

#include <cstdint>

#include "common/itemset.h"
#include "common/status.h"
#include "data/item_catalog.h"

namespace cfq {

// The item subsets the S and T variables range over.
struct ExperimentDomains {
  Itemset s_domain;
  Itemset t_domain;
};

// Assigns integer prices uniformly in [lo, hi] to every item.
Status AssignUniformPrices(ItemCatalog* catalog, const std::string& attr,
                           int64_t lo, int64_t hi, uint64_t seed);

// Section 7.1 setup (Figure 8(a)): even items are S-eligible with Price
// uniform in [s_lo, s_hi]; odd items are T-eligible with Price uniform
// in [t_lo, t_hi]. Interleaving (rather than splitting into halves)
// keeps the two sides statistically identical w.r.t. the generator's
// pattern structure.
Status AssignSplitUniformPrices(ItemCatalog* catalog, const std::string& attr,
                                int64_t s_lo, int64_t s_hi, int64_t t_lo,
                                int64_t t_hi, uint64_t seed,
                                ExperimentDomains* domains);

// Section 7.3 setup (Jmax): even items get Price ~ Normal(s_mean, sigma),
// odd items ~ Normal(t_mean, sigma), clamped to be nonnegative (the
// induced-constraint theory of Section 5 assumes nonnegative domains).
Status AssignSplitNormalPrices(ItemCatalog* catalog, const std::string& attr,
                               double s_mean, double t_mean, double sigma,
                               uint64_t seed, ExperimentDomains* domains);

// Section 7.2 setup (Figure 8(b)): assigns `num_types_per_side` types to
// each side such that the two sides' type sets overlap in
// `overlap_percent` percent of the values. Types are distributed
// round-robin within a side. Domains are the full sides.
Status AssignTypesWithOverlap(ItemCatalog* catalog, const std::string& attr,
                              const ExperimentDomains& domains,
                              int32_t num_types_per_side,
                              double overlap_percent, uint64_t seed);

// Section 7.2 setup over GLOBAL prices: the sides are defined by price
// bands rather than by item identity. Items priced above `t_hi` are
// S-only and draw their type from the S pool; items priced below `s_lo`
// are T-only (T pool); items in the shared band [s_lo, t_hi] qualify
// for both sides and draw from the intersection of the two pools, so
// that the type overlap observed between the sides equals
// `overlap_percent` of the `num_types_per_side` values. When the pools
// are disjoint (0% overlap) shared-band items alternate between the two
// pools, slightly polluting both sides (documented approximation).
Status AssignBandedTypes(ItemCatalog* catalog, const std::string& type_attr,
                         const std::string& price_attr, double s_lo,
                         double t_hi, int32_t num_types_per_side,
                         double overlap_percent, uint64_t seed);

}  // namespace cfq

#endif  // CFQ_DATA_ATTRIBUTE_GEN_H_
