// ItemCatalog: the auxiliary item information relation of the paper,
// itemInfo(Item, Type, Price). Generalized to any number of named
// numeric attributes (e.g. "Price") and categorical attributes (e.g.
// "Type", stored as dense codes with a value-name table).
//
// Constraints refer to attributes by name; the catalog resolves the name
// to a column. The pseudo-attribute "Item" (kItemAttr) always exists and
// maps every item to its own id, so raw set constraints like
// `S intersect T = {}` are expressed as attribute constraints over it.

#ifndef CFQ_DATA_ITEM_CATALOG_H_
#define CFQ_DATA_ITEM_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/itemset.h"
#include "common/result.h"
#include "common/status.h"

namespace cfq {

// All attribute values are doubles. Categorical codes are stored as
// exact small integers, so equality comparisons are safe.
using AttrValue = double;

// Name of the built-in identity attribute.
inline constexpr char kItemAttr[] = "Item";

class ItemCatalog {
 public:
  // Creates a catalog for items [0, num_items).
  explicit ItemCatalog(size_t num_items);

  size_t num_items() const { return num_items_; }

  // Registers a numeric attribute column. `values` must have one entry
  // per item. Replaces any existing column with the same name.
  Status AddNumericAttr(const std::string& name,
                        std::vector<AttrValue> values);

  // Registers a categorical attribute column; `codes[i]` is the category
  // of item i and `value_names` (optional) names each code.
  Status AddCategoricalAttr(const std::string& name,
                            std::vector<int32_t> codes,
                            std::vector<std::string> value_names = {});

  bool HasAttr(const std::string& name) const;

  // Value of attribute `name` for `item`. Returns an error for unknown
  // attributes or out-of-range items. The "Item" attribute returns the
  // item id itself.
  Result<AttrValue> Value(const std::string& name, ItemId item) const;

  // Unchecked fast-path accessor: the caller must have validated the
  // attribute via HasAttr/Value once. "Item" returns the id.
  AttrValue ValueUnchecked(const std::string& name, ItemId item) const;

  // Projects an itemset to its multiset of attribute values (in item
  // order, duplicates preserved): the S.A of the paper.
  Result<std::vector<AttrValue>> Project(const std::string& name,
                                         const Itemset& s) const;

  // Items whose attribute `name` lies in [lo, hi] (numeric selection
  // sigma_p(Item), the building block of succinct sets).
  Result<Itemset> SelectRange(const std::string& name, AttrValue lo,
                              AttrValue hi) const;

  // Human-readable name of a categorical code, or the number itself.
  std::string ValueName(const std::string& attr, AttrValue value) const;

  // All attribute names the catalog resolves (sorted; "Item" included).
  // Used for error hints when a query references an unknown attribute.
  std::vector<std::string> AttrNames() const;

  // Registered column names by kind (sorted, "Item" excluded) — what
  // serialization needs to persist a catalog without being told which
  // attributes exist.
  std::vector<std::string> NumericAttrNames() const;
  std::vector<std::string> CategoricalAttrNames() const;

 private:
  struct CategoricalColumn {
    std::vector<int32_t> codes;
    std::vector<std::string> value_names;
  };

  size_t num_items_;
  std::unordered_map<std::string, std::vector<AttrValue>> numeric_;
  std::unordered_map<std::string, CategoricalColumn> categorical_;
};

}  // namespace cfq

#endif  // CFQ_DATA_ITEM_CATALOG_H_
