#include "data/synthetic_gen.h"

#include <algorithm>
#include <cmath>

namespace cfq {

namespace {

Status ValidateParams(const QuestParams& p) {
  if (p.num_items == 0) {
    return Status::InvalidArgument("num_items must be positive");
  }
  if (p.num_patterns == 0) {
    return Status::InvalidArgument("num_patterns must be positive");
  }
  if (p.avg_transaction_size <= 0) {
    return Status::InvalidArgument("avg_transaction_size must be positive");
  }
  if (p.avg_pattern_size <= 0) {
    return Status::InvalidArgument("avg_pattern_size must be positive");
  }
  if (p.avg_pattern_size > static_cast<double>(p.num_items)) {
    return Status::InvalidArgument(
        "avg_pattern_size cannot exceed num_items");
  }
  if (p.correlation < 0 || p.correlation > 1) {
    return Status::InvalidArgument("correlation must be in [0, 1]");
  }
  if (p.corruption_mean < 0 || p.corruption_mean > 1) {
    return Status::InvalidArgument("corruption_mean must be in [0, 1]");
  }
  return Status::Ok();
}

// Draws a pattern-size sample: Poisson clamped to [1, num_items].
size_t DrawSize(Rng& rng, double mean, uint64_t cap) {
  int64_t size = rng.Poisson(mean);
  if (size < 1) size = 1;
  if (size > static_cast<int64_t>(cap)) size = static_cast<int64_t>(cap);
  return static_cast<size_t>(size);
}

QuestPatterns DrawPatterns(const QuestParams& p, Rng& rng) {
  QuestPatterns out;
  out.patterns.reserve(p.num_patterns);
  Itemset previous;
  for (uint64_t i = 0; i < p.num_patterns; ++i) {
    const size_t size = DrawSize(rng, p.avg_pattern_size, p.num_items);
    std::vector<ItemId> items;
    items.reserve(size);
    if (!previous.empty() && p.correlation > 0) {
      // Reuse an exponentially distributed fraction of the previous
      // pattern, as in the Quest generator.
      double frac = rng.Exponential(p.correlation);
      frac = std::min(frac, 1.0);
      size_t reuse = std::min(
          static_cast<size_t>(std::lround(frac * static_cast<double>(size))),
          previous.size());
      for (size_t j = 0; j < reuse; ++j) {
        items.push_back(previous[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(previous.size()) - 1))]);
      }
    }
    while (items.size() < size) {
      items.push_back(static_cast<ItemId>(
          rng.UniformInt(0, static_cast<int64_t>(p.num_items) - 1)));
    }
    Itemset pattern = MakeItemset(std::move(items));
    previous = pattern;
    out.patterns.push_back(std::move(pattern));
  }

  // Exponential weights, normalized.
  out.weights.resize(out.patterns.size());
  double total = 0;
  for (double& w : out.weights) {
    w = rng.Exponential(1.0);
    total += w;
  }
  for (double& w : out.weights) w /= total;

  // Corruption levels.
  out.corruption.resize(out.patterns.size());
  for (double& c : out.corruption) {
    c = std::clamp(rng.Normal(p.corruption_mean, p.corruption_sigma), 0.0,
                   1.0);
  }
  return out;
}

// Picks a pattern index by weight via inverse-CDF on a prefix-sum table.
class WeightedPicker {
 public:
  explicit WeightedPicker(const std::vector<double>& weights) {
    cumulative_.reserve(weights.size());
    double run = 0;
    for (double w : weights) {
      run += w;
      cumulative_.push_back(run);
    }
  }

  size_t Pick(Rng& rng) const {
    const double u = rng.UniformReal(0.0, cumulative_.back());
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<size_t>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

}  // namespace

Result<TransactionDb> GenerateQuestDbWithPatterns(const QuestParams& p,
                                                  QuestPatterns* patterns) {
  CFQ_RETURN_IF_ERROR(ValidateParams(p));
  Rng rng(p.seed);
  QuestPatterns table = DrawPatterns(p, rng);
  const WeightedPicker picker(table.weights);

  TransactionDb db(p.num_items);
  std::vector<ItemId> carry;  // Overflow pattern carried to the next txn.
  for (uint64_t t = 0; t < p.num_transactions; ++t) {
    const size_t target = DrawSize(rng, p.avg_transaction_size, p.num_items);
    std::vector<ItemId> txn;
    txn.reserve(target + 8);
    if (!carry.empty()) {
      txn = std::move(carry);
      carry.clear();
    }
    // Guard against pathological parameter combinations where corruption
    // keeps emptying patterns.
    int attempts = 0;
    while (txn.size() < target && attempts < 64) {
      ++attempts;
      const size_t pick = picker.Pick(rng);
      std::vector<ItemId> chunk = table.patterns[pick];
      // Corrupt: drop items while the coin keeps coming up heads.
      while (!chunk.empty() && rng.Flip(table.corruption[pick])) {
        const size_t victim = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(chunk.size()) - 1));
        chunk.erase(chunk.begin() + static_cast<int64_t>(victim));
      }
      if (chunk.empty()) continue;
      if (txn.size() + chunk.size() > target && !txn.empty()) {
        // Half the time include the overflowing pattern anyway, else
        // carry it over, as in the original generator.
        if (rng.Flip(0.5)) {
          txn.insert(txn.end(), chunk.begin(), chunk.end());
        } else {
          carry = std::move(chunk);
        }
        break;
      }
      txn.insert(txn.end(), chunk.begin(), chunk.end());
    }
    if (txn.empty()) {
      // Ensure no empty transactions: add one random item.
      txn.push_back(static_cast<ItemId>(
          rng.UniformInt(0, static_cast<int64_t>(p.num_items) - 1)));
    }
    db.Add(std::move(txn));
  }
  if (patterns != nullptr) *patterns = std::move(table);
  return db;
}

Result<TransactionDb> GenerateQuestDb(const QuestParams& params) {
  return GenerateQuestDbWithPatterns(params, nullptr);
}

}  // namespace cfq
