// TransactionDb: the trans(TID, Itemset) relation.
//
// Stores transactions horizontally (one canonical Itemset per TID) and
// can materialize a vertical index (one TID-bitmap per item) for the
// bitmap counting backend. Also computes the page footprint used by the
// symbolic I/O model.
//
// Thread model: loading (Add) and index building are single-threaded
// setup; once mining starts the database is read-only and every
// accessor is safe to call from concurrent counting shards. Index
// construction must therefore happen eagerly, before threads fan out —
// EnsureVerticalIndex() is the explicit setup point (BitmapCounter
// calls it from its constructor).

#ifndef CFQ_DATA_TRANSACTION_DB_H_
#define CFQ_DATA_TRANSACTION_DB_H_

#include <cstdint>
#include <vector>

#include "common/bitset64.h"
#include "common/itemset.h"
#include "data/io_model.h"

namespace cfq {

class ThreadPool;

class TransactionDb {
 public:
  // `num_items`: size of the item universe; every item id in every
  // transaction must be < num_items.
  explicit TransactionDb(size_t num_items);

  // Adds a transaction; the items are canonicalized (sorted, deduped).
  // Items >= num_items() are dropped.
  void Add(std::vector<ItemId> items);

  // Appends a batch of transactions (each canonicalized like Add) and
  // returns the TID of the first appended transaction. Unlike Add, a
  // vertical index that already exists is EXTENDED in place — every
  // item bitmap grows to the new transaction count and only the new
  // TIDs' bits are set — so growing an indexed database costs O(delta)
  // instead of an O(|DB|) rebuild. Not safe concurrently with readers;
  // append is part of the single-threaded setup phase for the next
  // generation (the serving catalog copies, appends, then publishes).
  size_t Append(const std::vector<std::vector<ItemId>>& batch);

  size_t num_items() const { return num_items_; }
  size_t num_transactions() const { return transactions_.size(); }
  const std::vector<Itemset>& transactions() const { return transactions_; }
  const Itemset& transaction(size_t tid) const { return transactions_[tid]; }

  // Exact support (absolute transaction count) of `s` by a horizontal
  // scan. O(|DB|) — intended for oracles and tests.
  uint64_t CountSupport(const Itemset& s) const;

  // Builds (or rebuilds) the vertical index. Must be called after the
  // last Add() before vertical(item) is used, and never concurrently
  // with readers. With a pool the TID range is sharded into 64-aligned
  // blocks: each shard owns whole bitmap words, so writes are disjoint
  // and the transaction list is scanned exactly once in total.
  void BuildVerticalIndex(ThreadPool* pool = nullptr);
  // Builds the vertical index only if missing — the idempotent form
  // setup code calls once before counting threads start.
  void EnsureVerticalIndex(ThreadPool* pool = nullptr) {
    if (!has_vertical_index()) BuildVerticalIndex(pool);
  }
  bool has_vertical_index() const { return !vertical_.empty(); }
  // TID-bitmap of `item`; BuildVerticalIndex() must have been called.
  const Bitset64& vertical(ItemId item) const { return vertical_[item]; }

  // Pages a full scan of this database reads under `model`.
  uint64_t PagesPerScan(const IoModel& model = IoModel()) const;

 private:
  size_t num_items_;
  std::vector<Itemset> transactions_;
  std::vector<Bitset64> vertical_;
};

}  // namespace cfq

#endif  // CFQ_DATA_TRANSACTION_DB_H_
