// Plain-text persistence for transaction databases and item catalogs.
//
// A downstream user needs to get real data in and out; the format is a
// deliberately simple line-oriented text format:
//
//   transactions file:            catalog file:
//     cfqdb 1 <items> <txns>        cfqcat 1 <items>
//     3 17 92                       numeric Price 10 20 30 ...
//     5                             categorical Type 2 Snacks Beers
//     ...one line per basket        codes 0 1 0 ...
//
// Both Save functions write atomically-enough for tooling (write then
// close); Load functions validate counts and ranges and fail with a
// descriptive Status.

#ifndef CFQ_DATA_SERIALIZE_H_
#define CFQ_DATA_SERIALIZE_H_

#include <string>

#include "common/result.h"
#include "data/item_catalog.h"
#include "data/transaction_db.h"

namespace cfq {

Status SaveTransactions(const TransactionDb& db, const std::string& path);
Result<TransactionDb> LoadTransactions(const std::string& path);

// Saves every attribute column registered on the catalog.
// Note: attribute names and categorical value names must not contain
// whitespace (enforced on save).
Status SaveCatalog(const ItemCatalog& catalog,
                   const std::vector<std::string>& numeric_attrs,
                   const std::vector<std::string>& categorical_attrs,
                   const std::string& path);
Result<ItemCatalog> LoadCatalog(const std::string& path);

// A transaction database together with its item catalog — the unit
// every consumer (cfq_mine, the shell, the query daemon) actually loads.
struct Dataset {
  TransactionDb db;
  ItemCatalog catalog;
};

// Loads both halves and validates that they agree on the item universe.
Result<Dataset> LoadDataset(const std::string& db_path,
                            const std::string& catalog_path);

// Saves both halves; every registered catalog column is persisted
// (attribute lists come from the catalog itself).
Status SaveDataset(const TransactionDb& db, const ItemCatalog& catalog,
                   const std::string& db_path,
                   const std::string& catalog_path);

}  // namespace cfq

#endif  // CFQ_DATA_SERIALIZE_H_
