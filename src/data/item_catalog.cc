#include "data/item_catalog.h"

#include <algorithm>
#include <cmath>

namespace cfq {

ItemCatalog::ItemCatalog(size_t num_items) : num_items_(num_items) {}

Status ItemCatalog::AddNumericAttr(const std::string& name,
                                   std::vector<AttrValue> values) {
  if (name == kItemAttr) {
    return Status::InvalidArgument("'Item' is a reserved attribute name");
  }
  if (values.size() != num_items_) {
    return Status::InvalidArgument("attribute '" + name + "' has " +
                                   std::to_string(values.size()) +
                                   " values, catalog has " +
                                   std::to_string(num_items_) + " items");
  }
  categorical_.erase(name);
  numeric_[name] = std::move(values);
  return Status::Ok();
}

Status ItemCatalog::AddCategoricalAttr(const std::string& name,
                                       std::vector<int32_t> codes,
                                       std::vector<std::string> value_names) {
  if (name == kItemAttr) {
    return Status::InvalidArgument("'Item' is a reserved attribute name");
  }
  if (codes.size() != num_items_) {
    return Status::InvalidArgument("attribute '" + name + "' has " +
                                   std::to_string(codes.size()) +
                                   " codes, catalog has " +
                                   std::to_string(num_items_) + " items");
  }
  numeric_.erase(name);
  categorical_[name] =
      CategoricalColumn{std::move(codes), std::move(value_names)};
  return Status::Ok();
}

bool ItemCatalog::HasAttr(const std::string& name) const {
  return name == kItemAttr || numeric_.count(name) > 0 ||
         categorical_.count(name) > 0;
}

Result<AttrValue> ItemCatalog::Value(const std::string& name,
                                     ItemId item) const {
  if (item >= num_items_) {
    return Status::OutOfRange("item " + std::to_string(item) +
                              " outside catalog of " +
                              std::to_string(num_items_));
  }
  if (name == kItemAttr) return static_cast<AttrValue>(item);
  if (auto it = numeric_.find(name); it != numeric_.end()) {
    return it->second[item];
  }
  if (auto it = categorical_.find(name); it != categorical_.end()) {
    return static_cast<AttrValue>(it->second.codes[item]);
  }
  return Status::NotFound("unknown attribute '" + name + "'");
}

AttrValue ItemCatalog::ValueUnchecked(const std::string& name,
                                      ItemId item) const {
  if (name == kItemAttr) return static_cast<AttrValue>(item);
  if (auto it = numeric_.find(name); it != numeric_.end()) {
    return it->second[item];
  }
  return static_cast<AttrValue>(categorical_.at(name).codes[item]);
}

Result<std::vector<AttrValue>> ItemCatalog::Project(const std::string& name,
                                                    const Itemset& s) const {
  if (!HasAttr(name)) {
    return Status::NotFound("unknown attribute '" + name + "'");
  }
  std::vector<AttrValue> out;
  out.reserve(s.size());
  for (ItemId item : s) {
    if (item >= num_items_) {
      return Status::OutOfRange("item " + std::to_string(item) +
                                " outside catalog");
    }
    out.push_back(ValueUnchecked(name, item));
  }
  return out;
}

Result<Itemset> ItemCatalog::SelectRange(const std::string& name, AttrValue lo,
                                         AttrValue hi) const {
  if (!HasAttr(name)) {
    return Status::NotFound("unknown attribute '" + name + "'");
  }
  Itemset out;
  for (ItemId item = 0; item < num_items_; ++item) {
    const AttrValue v = ValueUnchecked(name, item);
    if (v >= lo && v <= hi) out.push_back(item);
  }
  return out;
}

std::string ItemCatalog::ValueName(const std::string& attr,
                                   AttrValue value) const {
  if (auto it = categorical_.find(attr); it != categorical_.end()) {
    const auto code = static_cast<size_t>(value);
    if (code < it->second.value_names.size()) {
      return it->second.value_names[code];
    }
  }
  // Render integers without a trailing ".000000".
  if (value == std::floor(value)) {
    return std::to_string(static_cast<int64_t>(value));
  }
  return std::to_string(value);
}

std::vector<std::string> ItemCatalog::AttrNames() const {
  std::vector<std::string> out;
  out.reserve(numeric_.size() + categorical_.size() + 1);
  out.push_back(kItemAttr);
  for (const auto& [name, column] : numeric_) out.push_back(name);
  for (const auto& [name, column] : categorical_) out.push_back(name);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::string> ItemCatalog::NumericAttrNames() const {
  std::vector<std::string> out;
  out.reserve(numeric_.size());
  for (const auto& [name, column] : numeric_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> ItemCatalog::CategoricalAttrNames() const {
  std::vector<std::string> out;
  out.reserve(categorical_.size());
  for (const auto& [name, column] : categorical_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cfq
