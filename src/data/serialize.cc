#include "data/serialize.h"

#include <fstream>
#include <sstream>

namespace cfq {

namespace {

bool HasWhitespace(const std::string& s) {
  return s.find_first_of(" \t\n\r") != std::string::npos;
}

}  // namespace

Status SaveTransactions(const TransactionDb& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for write");
  out << "cfqdb 1 " << db.num_items() << ' ' << db.num_transactions()
      << '\n';
  for (const Itemset& txn : db.transactions()) {
    for (size_t i = 0; i < txn.size(); ++i) {
      if (i > 0) out << ' ';
      out << txn[i];
    }
    out << '\n';
  }
  out.close();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::Ok();
}

Result<TransactionDb> LoadTransactions(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::string magic;
  int version = 0;
  size_t num_items = 0, num_txns = 0;
  in >> magic >> version >> num_items >> num_txns;
  if (!in || magic != "cfqdb") {
    return Status::InvalidArgument("'" + path + "' is not a cfqdb file");
  }
  if (version != 1) {
    return Status::InvalidArgument("unsupported cfqdb version " +
                                   std::to_string(version));
  }
  std::string rest;
  std::getline(in, rest);  // Consume the header's newline.

  TransactionDb db(num_items);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::vector<ItemId> items;
    uint64_t item = 0;
    while (fields >> item) {
      if (item >= num_items) {
        return Status::OutOfRange("item " + std::to_string(item) +
                                  " outside declared universe of " +
                                  std::to_string(num_items));
      }
      items.push_back(static_cast<ItemId>(item));
    }
    if (!fields.eof()) {
      return Status::InvalidArgument("malformed transaction line: " + line);
    }
    db.Add(std::move(items));
  }
  if (db.num_transactions() != num_txns) {
    return Status::InvalidArgument(
        "declared " + std::to_string(num_txns) + " transactions, found " +
        std::to_string(db.num_transactions()));
  }
  return db;
}

Status SaveCatalog(const ItemCatalog& catalog,
                   const std::vector<std::string>& numeric_attrs,
                   const std::vector<std::string>& categorical_attrs,
                   const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for write");
  out << "cfqcat 1 " << catalog.num_items() << '\n';
  for (const std::string& attr : numeric_attrs) {
    if (HasWhitespace(attr)) {
      return Status::InvalidArgument("attribute name '" + attr +
                                     "' contains whitespace");
    }
    if (!catalog.HasAttr(attr)) {
      return Status::NotFound("unknown attribute '" + attr + "'");
    }
    out << "numeric " << attr;
    for (ItemId i = 0; i < catalog.num_items(); ++i) {
      out << ' ' << catalog.ValueUnchecked(attr, i);
    }
    out << '\n';
  }
  for (const std::string& attr : categorical_attrs) {
    if (HasWhitespace(attr)) {
      return Status::InvalidArgument("attribute name '" + attr +
                                     "' contains whitespace");
    }
    if (!catalog.HasAttr(attr)) {
      return Status::NotFound("unknown attribute '" + attr + "'");
    }
    // Collect the code range and names.
    int32_t max_code = 0;
    for (ItemId i = 0; i < catalog.num_items(); ++i) {
      max_code = std::max(
          max_code, static_cast<int32_t>(catalog.ValueUnchecked(attr, i)));
    }
    out << "categorical " << attr << ' ' << max_code + 1;
    for (int32_t code = 0; code <= max_code; ++code) {
      std::string name = catalog.ValueName(attr, code);
      if (HasWhitespace(name)) {
        return Status::InvalidArgument("value name '" + name +
                                       "' contains whitespace");
      }
      out << ' ' << name;
    }
    out << "\ncodes";
    for (ItemId i = 0; i < catalog.num_items(); ++i) {
      out << ' ' << static_cast<int32_t>(catalog.ValueUnchecked(attr, i));
    }
    out << '\n';
  }
  out.close();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::Ok();
}

Result<ItemCatalog> LoadCatalog(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::string magic;
  int version = 0;
  size_t num_items = 0;
  in >> magic >> version >> num_items;
  if (!in || magic != "cfqcat") {
    return Status::InvalidArgument("'" + path + "' is not a cfqcat file");
  }
  if (version != 1) {
    return Status::InvalidArgument("unsupported cfqcat version " +
                                   std::to_string(version));
  }
  ItemCatalog catalog(num_items);
  std::string kind;
  while (in >> kind) {
    if (kind == "numeric") {
      std::string attr;
      in >> attr;
      std::vector<AttrValue> values(num_items);
      for (AttrValue& v : values) in >> v;
      if (!in) {
        return Status::InvalidArgument("truncated numeric column '" + attr +
                                       "'");
      }
      CFQ_RETURN_IF_ERROR(catalog.AddNumericAttr(attr, std::move(values)));
    } else if (kind == "categorical") {
      std::string attr;
      size_t num_values = 0;
      in >> attr >> num_values;
      std::vector<std::string> names(num_values);
      for (std::string& name : names) in >> name;
      std::string codes_tag;
      in >> codes_tag;
      if (!in || codes_tag != "codes") {
        return Status::InvalidArgument("expected 'codes' row for '" + attr +
                                       "'");
      }
      std::vector<int32_t> codes(num_items);
      for (int32_t& code : codes) {
        in >> code;
        if (code < 0 || static_cast<size_t>(code) >= num_values) {
          return Status::OutOfRange("code outside declared value range in '" +
                                    attr + "'");
        }
      }
      if (!in) {
        return Status::InvalidArgument("truncated categorical column '" +
                                       attr + "'");
      }
      CFQ_RETURN_IF_ERROR(catalog.AddCategoricalAttr(attr, std::move(codes),
                                                     std::move(names)));
    } else {
      return Status::InvalidArgument("unknown column kind '" + kind + "'");
    }
  }
  return catalog;
}

Result<Dataset> LoadDataset(const std::string& db_path,
                            const std::string& catalog_path) {
  auto db = LoadTransactions(db_path);
  if (!db.ok()) return db.status();
  auto catalog = LoadCatalog(catalog_path);
  if (!catalog.ok()) return catalog.status();
  if (catalog->num_items() != db->num_items()) {
    return Status::InvalidArgument(
        "catalog '" + catalog_path + "' has " +
        std::to_string(catalog->num_items()) + " items but database '" +
        db_path + "' declares " + std::to_string(db->num_items()));
  }
  return Dataset{std::move(db).value(), std::move(catalog).value()};
}

Status SaveDataset(const TransactionDb& db, const ItemCatalog& catalog,
                   const std::string& db_path,
                   const std::string& catalog_path) {
  if (catalog.num_items() != db.num_items()) {
    return Status::InvalidArgument(
        "catalog has " + std::to_string(catalog.num_items()) +
        " items but the database declares " +
        std::to_string(db.num_items()));
  }
  CFQ_RETURN_IF_ERROR(SaveTransactions(db, db_path));
  return SaveCatalog(catalog, catalog.NumericAttrNames(),
                     catalog.CategoricalAttrNames(), catalog_path);
}

}  // namespace cfq
