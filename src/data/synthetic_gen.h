// Quest-style synthetic market-basket generator.
//
// The paper generated its transaction databases with the IBM Almaden
// Quest program of Agrawal & Srikant (VLDB'94). That binary is not
// distributable, so this module reimplements the published generation
// process:
//
//   1. Draw |L| maximal potentially-large itemsets. Pattern sizes are
//      Poisson with mean |I|; after the first, each pattern reuses a
//      random prefix fraction (exponential with the `correlation` mean)
//      of the previous pattern's items, the rest drawn uniformly.
//   2. Each pattern gets a weight (exponential, normalized to sum 1) and
//      a corruption level (normal, mean/sigma configurable).
//   3. Each transaction draws a size from Poisson(|T|) and fills it with
//      whole patterns chosen by weight; each chosen pattern is corrupted
//      by dropping items while a coin with the pattern's corruption level
//      comes up heads. An overflowing final pattern is included anyway
//      half the time, otherwise queued for the next transaction.
//
// With default parameters this matches the T10.I4 family used across the
// Apriori literature; the paper's setup (100k transactions, 1000 items)
// corresponds to QuestParams{.num_transactions=100000, .num_items=1000}.

#ifndef CFQ_DATA_SYNTHETIC_GEN_H_
#define CFQ_DATA_SYNTHETIC_GEN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/transaction_db.h"

namespace cfq {

struct QuestParams {
  uint64_t num_transactions = 100000;  // |D|
  double avg_transaction_size = 10;    // |T|
  double avg_pattern_size = 4;         // |I|
  uint64_t num_patterns = 2000;        // |L|
  uint64_t num_items = 1000;           // N
  double correlation = 0.5;            // Mean fraction reused across patterns.
  double corruption_mean = 0.5;        // Mean per-pattern corruption level.
  double corruption_sigma = 0.1;
  uint64_t seed = 42;
};

// Generates a database; fails on out-of-range parameters (zero items,
// nonpositive sizes, pattern size above the universe, ...).
Result<TransactionDb> GenerateQuestDb(const QuestParams& params);

// The potentially-large patterns underlying a generated database;
// exposed for tests that check frequent patterns actually emerge.
struct QuestPatterns {
  std::vector<Itemset> patterns;
  std::vector<double> weights;     // Normalized to sum 1.
  std::vector<double> corruption;  // In [0, 1].
};

// As GenerateQuestDb, also returning the pattern table used.
Result<TransactionDb> GenerateQuestDbWithPatterns(const QuestParams& params,
                                                  QuestPatterns* patterns);

}  // namespace cfq

#endif  // CFQ_DATA_SYNTHETIC_GEN_H_
