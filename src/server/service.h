// QueryService: the daemon's protocol brain, independent of sockets.
//
// Handle() takes one decoded request object and returns one response
// object; the TCP layer (server.h) only frames lines and moves bytes.
// Keeping the service transport-free is what lets tests drive the full
// parse -> canonicalize -> cache -> admit -> plan -> execute path
// in-process, without ports.
//
// Commands (see docs/SERVING.md for the full grammar):
//   ping | load | gen | save | drop | datasets | append | query | stats |
//   shutdown
//
// Every response carries "status": OK, or one of PARSE_ERROR,
// PLAN_ERROR, EXEC_ERROR, TIMEOUT, REJECTED, NOT_FOUND, BAD_REQUEST,
// SHUTTING_DOWN, plus "error" text on failures.

#ifndef CFQ_SERVER_SERVICE_H_
#define CFQ_SERVER_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/cancellation.h"
#include "core/executor.h"
#include "incremental/state_cache.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "server/admission.h"
#include "server/audit_log.h"
#include "server/catalog.h"
#include "server/http.h"
#include "server/json.h"
#include "server/result_cache.h"

namespace cfq::server {

struct ServiceOptions {
  // Per-query mining parallelism (PlanOptions::threads; 0 = hardware).
  size_t threads = 1;
  // Admission control: concurrent executing queries / waiting queries.
  size_t max_concurrent = 4;
  size_t max_queued = 16;
  // Result cache entries (0 disables caching).
  size_t cache_capacity = 64;
  // Deadline applied when the request names none / upper bound on any
  // requested deadline.
  uint64_t default_deadline_ms = 60000;
  uint64_t max_deadline_ms = 600000;
  // Default/upper bound for rows returned by one `query` response.
  uint64_t max_rows = 100000;
  // Maintained mining states kept per daemon for strategy=incremental
  // (0 disables the state cache; every incremental query mines cold).
  size_t state_cache_capacity = 8;
  // Flight recorder retention: the last N completed queries plus the
  // last N queries at or over the slow threshold (0 disables a ring).
  size_t flight_recorder_recent = 32;
  size_t flight_recorder_slow = 32;
  double slow_query_threshold_seconds = 1.0;
  // Per-query tracer ring capacity (events retained per trace). The
  // ring is preallocated per query, so keep it modest.
  size_t query_trace_capacity = 4096;
  // Workload capture: when non-empty, every served query (success or
  // error) is appended to rotating audit-*.jsonl files in this
  // directory (server/audit_log.h); cfq_replay re-drives them.
  std::string audit_log_dir;
  uint64_t audit_rotate_mb = 64;
};

class QueryService {
 public:
  // `metrics` (not owned, required) is the daemon-lifetime registry:
  // cache and admission counters, per-query mining stats merged in,
  // and the source of the STATS command's Prometheus text.
  QueryService(const ServiceOptions& options, obs::MetricsRegistry* metrics);

  // Decodes and executes one request. Never throws; malformed requests
  // get BAD_REQUEST responses.
  JsonValue Handle(const JsonValue& request);

  // True once a `shutdown` command was served; the transport layer
  // polls this to start the drain.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  // Stops admitting new queries (drain phase 1); in-flight queries
  // finish normally. Also flushes the audit log, so every drain path
  // (shutdown command, SIGTERM, fatal accept error) durably lands the
  // records captured so far.
  void BeginDrain() {
    admission_.Shutdown();
    if (audit_log_ != nullptr) audit_log_->Flush();
  }

  // Serves the telemetry listener: GET /metrics (live Prometheus
  // text), /healthz (503 while draining), /stats (JSON summaries),
  // /trace (the flight recorder as a Chrome trace).
  HttpResponse HandleHttp(const std::string& path);

  DatasetCatalog& catalog() { return catalog_; }
  ResultCache& cache() { return cache_; }
  incremental::MiningStateCache& state_cache() { return state_cache_; }
  AdmissionController& admission() { return admission_; }
  obs::FlightRecorder& flight_recorder() { return flight_recorder_; }
  obs::MetricsRegistry* metrics() { return metrics_; }
  const ServiceOptions& options() const { return options_; }
  // Null unless ServiceOptions::audit_log_dir was set and Open succeeded.
  AuditLog* audit_log() { return audit_log_.get(); }

  // Whole seconds since this service was constructed (daemon start).
  uint64_t uptime_seconds() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - started_)
            .count());
  }

 private:
  struct QueryTrace;  // Per-query tracer + phase accumulator (service.cc).

  JsonValue HandleLoad(const JsonValue& request);
  JsonValue HandleGen(const JsonValue& request);
  JsonValue HandleSave(const JsonValue& request);
  JsonValue HandleDrop(const JsonValue& request);
  JsonValue HandleDatasets();
  JsonValue HandleAppend(const JsonValue& request);
  JsonValue HandleQuery(const JsonValue& request);
  JsonValue::Object ExecuteQuery(const JsonValue& request, QueryTrace* trace);
  JsonValue HandleStats();
  JsonValue HandleDumpTrace();

  // The cache/admission/state-cache/flight-recorder summaries shared
  // by the `stats` command and GET /stats.
  JsonValue::Object StatsJson();

  // Serves strategy=incremental: resolves a MiningState for the
  // entry's generation (state-cache hit, FUP refresh from a lineage
  // ancestor, or cold build), answers from it, and reports which of
  // those happened via `source`.
  Result<CfqResult> RunIncremental(const std::string& name,
                                   const CatalogEntry& entry,
                                   const CfqQuery& query,
                                   const CancelToken* cancel,
                                   obs::MetricsRegistry* query_metrics,
                                   QueryTrace* trace, std::string* source);

  const ServiceOptions options_;
  obs::MetricsRegistry* const metrics_;
  DatasetCatalog catalog_;
  ResultCache cache_;
  incremental::MiningStateCache state_cache_;
  AdmissionController admission_;
  obs::FlightRecorder flight_recorder_;
  std::unique_ptr<AuditLog> audit_log_;
  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
  std::atomic<bool> shutdown_requested_{false};
};

}  // namespace cfq::server

#endif  // CFQ_SERVER_SERVICE_H_
