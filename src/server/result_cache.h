// ResultCache: an LRU over fully-computed query answers.
//
// The key is built by the service from everything that determines the
// answer bytes: dataset name, the generation id of the dataset the
// answer was computed against, the execution strategy, the effective
// row cap, and the canonicalized query text (core/cfq.h
// CanonicalizeQuery) — so `freq(S,20)&freq(T,20)` and the same query
// with shuffled conjuncts and extra whitespace share one entry.
// Thread count and counter backend are deliberately NOT part of the
// key: mining results are bit-identical across them.
//
// Values are shared_ptr<const CachedAnswer>, so an entry evicted while
// a response is still being serialized stays alive until that response
// finishes. Hits, misses and evictions are counted locally (for the
// STATS command) and mirrored into an optional MetricsRegistry under
// server.cache.* names.

#ifndef CFQ_SERVER_RESULT_CACHE_H_
#define CFQ_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace cfq::server {

// The response payload of a successful `query`, already rendered to the
// protocol's row strings ("s_items;t_items;s_support;t_support").
struct CachedAnswer {
  std::vector<std::string> rows;
  uint64_t s_sets = 0;
  uint64_t t_sets = 0;
  uint64_t num_pairs = 0;   // Pre-cap pair count (cross products expanded).
  bool cross_product = false;
  bool truncated = false;   // rows hit the row cap.
  std::string canonical_query;
  // FNV-1a digest of `rows` in canonical (sorted) order, 16 hex digits
  // (obs/digest.h). Computed once when the answer is rendered so cache
  // hits return the identical digest without touching the rows again.
  std::string digest;
};

class ResultCache {
 public:
  // `capacity` = max entries; 0 disables caching (every Get misses,
  // Put is a no-op). `metrics` (not owned, may be null) receives
  // server.cache.{hits,misses,evictions} counters and a
  // server.cache.size gauge.
  explicit ResultCache(size_t capacity,
                       obs::MetricsRegistry* metrics = nullptr)
      : capacity_(capacity), metrics_(metrics) {}

  // Returns the cached answer and promotes it to most-recent, or null.
  std::shared_ptr<const CachedAnswer> Get(const std::string& key);

  // Inserts (or replaces) `answer` under `key`, evicting the least
  // recently used entry when over capacity.
  void Put(const std::string& key, std::shared_ptr<const CachedAnswer> answer);

  void Clear();

  // Drops every entry whose key starts with `prefix` (the service uses
  // "<dataset>@" when a dataset is dropped, so answers cannot outlive
  // the data they were computed from). Returns the number removed and
  // counts them under server.cache.evict.dropped.
  size_t PurgePrefix(const std::string& prefix);

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedAnswer> answer;
  };

  const size_t capacity_;
  obs::MetricsRegistry* const metrics_;
  mutable std::mutex mu_;
  // Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace cfq::server

#endif  // CFQ_SERVER_RESULT_CACHE_H_
