// Minimal JSON codec for the newline-delimited query protocol.
//
// The daemon speaks one JSON object per line in both directions
// (docs/SERVING.md). This is a deliberately small, dependency-free
// implementation: a recursive-descent parser into a JsonValue variant
// and an object writer with proper string escaping. It is not a general
// JSON library — no streaming, no comments, documents are expected to
// fit in one protocol line — but it accepts any RFC 8259 text (nested
// values, \uXXXX escapes including surrogate pairs) up to a fixed
// nesting depth.

#ifndef CFQ_SERVER_JSON_H_
#define CFQ_SERVER_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace cfq::server {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  // std::map keeps Write() output deterministic (sorted keys).
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}                          // null
  JsonValue(bool b) : value_(b) {}                          // NOLINT
  JsonValue(double n) : value_(n) {}                        // NOLINT
  JsonValue(int64_t n) : value_(static_cast<double>(n)) {}  // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}        // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}      // NOLINT
  JsonValue(Array a) : value_(std::move(a)) {}              // NOLINT
  JsonValue(Object o) : value_(std::move(o)) {}             // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }

  // Object member lookup; null when this is not an object or the key is
  // absent.
  const JsonValue* Find(const std::string& key) const;

  // Typed member accessors with fallbacks (for request decoding):
  // missing keys or wrong-typed values return the fallback.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  double GetNumber(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  // Serializes this value on one line (keys sorted, minimal spacing).
  std::string Write() const;

  // Parses exactly one JSON document; trailing non-whitespace is an
  // error, as is nesting beyond `max_depth`.
  static Result<JsonValue> Parse(const std::string& text,
                                 size_t max_depth = 64);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

// Escapes `s` for inclusion in a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

// Canonical number rendering: integers bare, otherwise the shortest
// round-tripping decimal.
std::string JsonNumber(double v);

}  // namespace cfq::server

#endif  // CFQ_SERVER_JSON_H_
