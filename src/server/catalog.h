// DatasetCatalog: the daemon's named, shared, read-only datasets.
//
// Each entry pairs a TransactionDb with its ItemCatalog (data/serialize
// Dataset) under a client-chosen name. Entries are immutable once
// registered: the catalog eagerly builds the vertical index at
// registration so the bitmap counting backend never mutates the shared
// database mid-query, after which any number of concurrent queries may
// read one entry through its shared_ptr.
//
// Rebinding a name (load/gen over an existing dataset) or dropping it
// does not disturb in-flight queries — they keep their shared_ptr —
// but it does bump the entry's generation id. The ResultCache keys on
// (name, generation), so cached answers die with the data they were
// computed from.

#ifndef CFQ_SERVER_CATALOG_H_
#define CFQ_SERVER_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/serialize.h"
#include "data/synthetic_gen.h"
#include "incremental/delta_log.h"

namespace cfq::server {

// One registered dataset plus its generation id and append lineage.
struct CatalogEntry {
  std::shared_ptr<const Dataset> data;
  uint64_t generation = 0;
  // The generations this binding moved through via Append (rebinding
  // with load/gen/Register starts a fresh lineage). Never null once
  // registered; shared so in-flight queries and the mining-state cache
  // can resolve delta spans against a stable snapshot.
  std::shared_ptr<const incremental::DeltaLog> log;
};

// Summary row for the `datasets` protocol command.
struct DatasetInfo {
  std::string name;
  uint64_t generation = 0;
  uint64_t num_transactions = 0;
  uint64_t num_items = 0;
  std::vector<std::string> attrs;
};

class DatasetCatalog {
 public:
  // Registers `dataset` under `name`, replacing any existing binding.
  // Builds the vertical index before publication. Returns the new
  // generation id.
  uint64_t Register(const std::string& name, Dataset dataset);

  // Loads the serialized pair via data/serialize and registers it.
  Result<uint64_t> Load(const std::string& name, const std::string& db_path,
                        const std::string& catalog_path);

  // Generates a Quest database with uniform [1, 1000] prices ("Price")
  // and 8 round-robin categories ("Type") — the same demo schema as
  // cfq_mine — and registers it.
  Result<uint64_t> Generate(const std::string& name,
                            const QuestParams& params);

  // Appends `batch` transactions to `name`, publishing a NEW dataset
  // snapshot under a bumped generation whose DeltaLog records the
  // appended TID range. Copy-on-write: in-flight queries keep reading
  // the snapshot they started with; the copy's vertical index is
  // extended in place (O(delta)) before publication. Returns the new
  // generation.
  Result<uint64_t> Append(const std::string& name,
                          const std::vector<std::vector<ItemId>>& batch);

  Result<CatalogEntry> Get(const std::string& name) const;
  Status Drop(const std::string& name);
  std::vector<DatasetInfo> List() const;
  size_t size() const;

  // Generation watermark: the highest generation id this catalog has
  // handed out (0 before any load/gen/append). Monotone across drops,
  // so it doubles as a "how much has the data moved" health signal.
  uint64_t max_generation() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_generation_ - 1;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, CatalogEntry> entries_;
  uint64_t next_generation_ = 1;
};

}  // namespace cfq::server

#endif  // CFQ_SERVER_CATALOG_H_
