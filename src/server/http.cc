#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cfq::server {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string RenderResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.0 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace

HttpServer::HttpServer(const HttpOptions& options, HttpHandler handler)
    : options_(options), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad telemetry address '" + options_.host +
                                   "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Status::Internal(
        "bind " + options_.host + ":" + std::to_string(options_.port) + ": " +
        std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, options_.backlog) != 0) {
    const Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status status =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return Status::Ok();
}

void HttpServer::ServeLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listen fd closed by Stop() (or fatal).
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval timeout{};
  timeout.tv_sec = options_.recv_timeout_ms / 1000;
  timeout.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  // Read until the end of the header block; the request line is all we
  // use, but consuming the headers keeps clients that await the
  // response after a full send happy.
  std::string request;
  char chunk[4096];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos &&
         request.size() < 64 * 1024) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // Timeout, error, or close.
    request.append(chunk, static_cast<size_t>(n));
    // A bare request line with no headers is legal HTTP/1.0.
    if (request.find('\n') != std::string::npos) break;
  }
  const size_t line_end = request.find('\n');
  if (line_end == std::string::npos) return;  // Nothing parseable.
  std::string line = request.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.pop_back();

  const size_t method_end = line.find(' ');
  const size_t path_end =
      method_end == std::string::npos ? std::string::npos
                                      : line.find(' ', method_end + 1);
  HttpResponse response;
  if (method_end == std::string::npos) {
    response = HttpResponse{400, "text/plain; charset=utf-8",
                            "malformed request line\n"};
  } else if (line.substr(0, method_end) != "GET") {
    response = HttpResponse{405, "text/plain; charset=utf-8",
                            "telemetry endpoints are GET-only\n"};
  } else {
    std::string path =
        path_end == std::string::npos
            ? line.substr(method_end + 1)
            : line.substr(method_end + 1, path_end - method_end - 1);
    const size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    response = handler_(path);
  }
  (void)SendAll(fd, RenderResponse(response));
}

void HttpServer::Stop() {
  stopping_.store(true, std::memory_order_release);
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (thread_.joinable()) thread_.join();
}

}  // namespace cfq::server
