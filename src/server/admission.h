// AdmissionController: bounded concurrency for query execution.
//
// At most `max_concurrent` queries execute at once; up to `max_queued`
// more may wait for a slot. A query arriving with the queue full is
// rejected immediately (kFailedPrecondition — the protocol's REJECTED
// status) rather than piling latency onto everyone behind it. A waiter
// whose CancelToken deadline expires before a slot frees leaves the
// queue with kDeadlineExceeded (TIMEOUT), and waiters are released with
// an error when the controller shuts down for drain.
//
// Admit() returns an RAII Permit; the slot is released when the Permit
// is destroyed.

#ifndef CFQ_SERVER_ADMISSION_H_
#define CFQ_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/cancellation.h"
#include "common/result.h"
#include "obs/metrics.h"

namespace cfq::server {

class AdmissionController;

// Movable slot holder; releases its slot on destruction.
class Permit {
 public:
  Permit() = default;
  explicit Permit(AdmissionController* controller) : controller_(controller) {}
  Permit(Permit&& other) noexcept : controller_(other.controller_) {
    other.controller_ = nullptr;
  }
  Permit& operator=(Permit&& other) noexcept;
  Permit(const Permit&) = delete;
  Permit& operator=(const Permit&) = delete;
  ~Permit() { Release(); }

  void Release();

 private:
  AdmissionController* controller_ = nullptr;
};

class AdmissionController {
 public:
  // `metrics` (not owned; may be null) receives the
  // server.admission.queue_wait_seconds histogram: one observation per
  // admitted query, zero when a slot was free on arrival.
  AdmissionController(size_t max_concurrent, size_t max_queued,
                      obs::MetricsRegistry* metrics = nullptr)
      : max_concurrent_(max_concurrent == 0 ? 1 : max_concurrent),
        max_queued_(max_queued),
        metrics_(metrics) {}

  // Blocks until a slot is free. `cancel` (may be null) bounds the
  // wait: an expired token returns kDeadlineExceeded. A full queue
  // returns kFailedPrecondition without waiting; a shut-down
  // controller returns kFailedPrecondition("shutting down").
  Result<Permit> Admit(const CancelToken* cancel);

  // Releases all waiters with an error and rejects future Admits.
  // In-flight permits stay valid (drain finishes running queries).
  void Shutdown();

  size_t active() const;
  size_t queued() const;
  uint64_t rejected_total() const;
  size_t max_concurrent() const { return max_concurrent_; }
  size_t max_queued() const { return max_queued_; }

  // True once Shutdown() ran — the daemon is draining (the /healthz
  // readiness signal).
  bool shutting_down() const;

 private:
  friend class Permit;
  void ReleaseSlot();

  const size_t max_concurrent_;
  const size_t max_queued_;
  obs::MetricsRegistry* const metrics_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t active_ = 0;
  size_t queued_ = 0;
  uint64_t rejected_ = 0;
  bool shutdown_ = false;
};

}  // namespace cfq::server

#endif  // CFQ_SERVER_ADMISSION_H_
