#include "server/result_cache.h"

#include <utility>

namespace cfq::server {

std::shared_ptr<const CachedAnswer> ResultCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    if (metrics_ != nullptr) metrics_->Add("server.cache.misses");
    return nullptr;
  }
  ++hits_;
  if (metrics_ != nullptr) metrics_->Add("server.cache.hits");
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->answer;
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const CachedAnswer> answer) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->answer = std::move(answer);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(answer)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    if (metrics_ != nullptr) metrics_->Add("server.cache.evictions");
  }
  if (metrics_ != nullptr) {
    metrics_->SetGauge("server.cache.size", static_cast<double>(lru_.size()));
  }
}

size_t ResultCache::PurgePrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t purged = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.compare(0, prefix.size(), prefix) == 0) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  if (metrics_ != nullptr) {
    if (purged > 0) metrics_->Add("server.cache.evict.dropped", purged);
    metrics_->SetGauge("server.cache.size", static_cast<double>(lru_.size()));
  }
  return purged;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  if (metrics_ != nullptr) metrics_->SetGauge("server.cache.size", 0);
}

uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace cfq::server
