// Server: the daemon's TCP transport.
//
// One accept thread plus one thread per connection; each connection
// speaks the newline-delimited JSON protocol (one request object per
// line, one response object per line, in order). All protocol logic
// lives in QueryService — this layer only frames lines, isolates
// per-connection errors (a malformed line gets a BAD_REQUEST response;
// a broken peer closes only its own connection), and implements the
// drain sequence:
//
//   RequestShutdown():  stop accepting (close the listen fd), stop
//                       admitting queries, half-close every connection
//                       (shutdown SHUT_RD) so in-flight requests finish
//                       and their responses are still written.
//   Wait():             join the accept thread and every connection
//                       thread; returns when the last response is out.
//
// Binding port 0 picks an ephemeral port (port() reports the real one),
// which is how tests and benches avoid fixed-port collisions.

#ifndef CFQ_SERVER_SERVER_H_
#define CFQ_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "server/service.h"

namespace cfq::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral.
  int backlog = 64;
  // One protocol line (request or response) may not exceed this.
  size_t max_line_bytes = 8 * 1024 * 1024;
};

class Server {
 public:
  // `service` not owned; must outlive the server.
  Server(const ServerOptions& options, QueryService* service);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens and starts the accept thread.
  Status Start();

  // The bound port (after Start); the requested one unless it was 0.
  uint16_t port() const { return port_; }

  // Begins the drain (idempotent; safe from any thread, including a
  // connection thread serving the `shutdown` command).
  void RequestShutdown();

  // Blocks until the drain completes and every thread has joined.
  void Wait();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  const ServerOptions options_;
  QueryService* const service_;
  std::atomic<bool> shutting_down_{false};
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::thread> connection_threads_;
  std::map<int, bool> open_fds_;  // fd -> still open.
};

}  // namespace cfq::server

#endif  // CFQ_SERVER_SERVER_H_
