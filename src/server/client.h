// Client: a blocking connection to a cfq_served daemon.
//
// One request out, one response line back, in order — the transport
// counterpart of QueryService::Handle. Used by tools/cfq_client, the
// server tests and bench/server_throughput; it is intentionally
// synchronous (no pipelining) so its call latency is the protocol's
// round-trip time.

#ifndef CFQ_SERVER_CLIENT_H_
#define CFQ_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "server/json.h"

namespace cfq::server {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects over IPv4; `host` is a dotted-quad address.
  static Result<Client> Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  // Sends one request object and blocks for its response object.
  Result<JsonValue> Call(const JsonValue& request);

  // Raw variant (no JSON encode of the request): sends `line` plus a
  // newline, returns the raw response line. Lets tests exercise the
  // daemon's handling of malformed input.
  Result<std::string> CallRaw(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;  // Bytes received past the last response line.
};

}  // namespace cfq::server

#endif  // CFQ_SERVER_CLIENT_H_
