#include "server/admission.h"

#include <chrono>

namespace cfq::server {

Permit& Permit::operator=(Permit&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = other.controller_;
    other.controller_ = nullptr;
  }
  return *this;
}

void Permit::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

Result<Permit> AdmissionController::Admit(const CancelToken* cancel) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) return Status::FailedPrecondition("server is shutting down");
  if (active_ < max_concurrent_) {
    ++active_;
    // A free slot means zero queue wait; observing it anyway makes the
    // histogram's _count equal the admitted-query count, so the mean
    // is over all admissions, not just the queued ones.
    if (metrics_ != nullptr) {
      metrics_->Observe("server.admission.queue_wait_seconds", 0.0);
    }
    return Permit(this);
  }
  if (queued_ >= max_queued_) {
    ++rejected_;
    return Status::FailedPrecondition(
        "admission queue full (" + std::to_string(active_) + " active, " +
        std::to_string(queued_) + " queued)");
  }
  ++queued_;
  const auto wait_started = std::chrono::steady_clock::now();
  const auto waited_seconds = [&wait_started] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wait_started)
        .count();
  };
  // Deadlines live in the CancelToken, not the cv, so wake periodically
  // to poll it — the same cooperative cadence the executor uses.
  while (true) {
    cv_.wait_for(lock, std::chrono::milliseconds(10));
    if (shutdown_) {
      --queued_;
      return Status::FailedPrecondition("server is shutting down");
    }
    if (cancel != nullptr && cancel->Expired()) {
      --queued_;
      return CancelToken::ExpiredError("admission queue");
    }
    if (active_ < max_concurrent_) {
      --queued_;
      ++active_;
      if (metrics_ != nullptr) {
        metrics_->Observe("server.admission.queue_wait_seconds",
                          waited_seconds());
      }
      return Permit(this);
    }
  }
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

void AdmissionController::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
  }
  cv_.notify_one();
}

size_t AdmissionController::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

uint64_t AdmissionController::rejected_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

bool AdmissionController::shutting_down() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

}  // namespace cfq::server
