#include "server/catalog.h"

#include <utility>

#include "data/attribute_gen.h"

namespace cfq::server {

uint64_t DatasetCatalog::Register(const std::string& name, Dataset dataset) {
  // Index before publication: shared readers must never trigger a
  // rebuild (TransactionDb is only thread-safe once read-only).
  dataset.db.EnsureVerticalIndex();
  auto shared = std::make_shared<const Dataset>(std::move(dataset));
  std::lock_guard<std::mutex> lock(mu_);
  CatalogEntry& entry = entries_[name];
  entry.data = std::move(shared);
  entry.generation = next_generation_++;
  entry.log = std::make_shared<const incremental::DeltaLog>(
      incremental::DeltaLog::Base(entry.generation,
                                  entry.data->db.num_transactions()));
  return entry.generation;
}

Result<uint64_t> DatasetCatalog::Append(
    const std::string& name, const std::vector<std::vector<ItemId>>& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no dataset named '" + name + "'");
  }
  CatalogEntry& entry = it->second;
  // Copy-on-write under the catalog lock: the copy (including its
  // vertical index, which Append extends rather than rebuilds) is
  // private until published, so concurrent readers of the old snapshot
  // are undisturbed and the new snapshot is read-only from birth.
  Dataset grown = *entry.data;
  const size_t before = grown.db.num_transactions();
  grown.db.Append(batch);
  const size_t appended = grown.db.num_transactions() - before;
  entry.data = std::make_shared<const Dataset>(std::move(grown));
  entry.generation = next_generation_++;
  entry.log = std::make_shared<const incremental::DeltaLog>(
      entry.log->Extend(entry.generation, appended));
  return entry.generation;
}

Result<uint64_t> DatasetCatalog::Load(const std::string& name,
                                      const std::string& db_path,
                                      const std::string& catalog_path) {
  auto dataset = LoadDataset(db_path, catalog_path);
  if (!dataset.ok()) return dataset.status();
  return Register(name, std::move(dataset).value());
}

Result<uint64_t> DatasetCatalog::Generate(const std::string& name,
                                          const QuestParams& params) {
  auto db = GenerateQuestDb(params);
  if (!db.ok()) return db.status();
  Dataset dataset{std::move(db).value(),
                  ItemCatalog(static_cast<size_t>(params.num_items))};
  CFQ_RETURN_IF_ERROR(AssignUniformPrices(&dataset.catalog, "Price", 1, 1000,
                                          params.seed + 1));
  std::vector<int32_t> types(params.num_items);
  for (size_t i = 0; i < types.size(); ++i) {
    types[i] = static_cast<int32_t>(i % 8);
  }
  CFQ_RETURN_IF_ERROR(
      dataset.catalog.AddCategoricalAttr("Type", std::move(types)));
  return Register(name, std::move(dataset));
}

Result<CatalogEntry> DatasetCatalog::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no dataset named '" + name + "'");
  }
  return it->second;
}

Status DatasetCatalog::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.erase(name) == 0) {
    return Status::NotFound("no dataset named '" + name + "'");
  }
  return Status::Ok();
}

std::vector<DatasetInfo> DatasetCatalog::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DatasetInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    DatasetInfo info;
    info.name = name;
    info.generation = entry.generation;
    info.num_transactions = entry.data->db.num_transactions();
    info.num_items = entry.data->db.num_items();
    info.attrs = entry.data->catalog.AttrNames();
    out.push_back(std::move(info));
  }
  return out;
}

size_t DatasetCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace cfq::server
