#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "server/json.h"

namespace cfq::server {

namespace {

// Writes all of `data`, retrying short writes and EINTR.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string ErrorLine(const std::string& status, const std::string& error) {
  JsonValue::Object response;
  response["status"] = status;
  response["error"] = error;
  return JsonValue(std::move(response)).Write() + "\n";
}

}  // namespace

Server::Server(const ServerOptions& options, QueryService* service)
    : options_(options), service_(service) {}

Server::~Server() {
  RequestShutdown();
  Wait();
}

Status Server::Start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address '" + options_.host +
                                   "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Status::Internal(
        "bind " + options_.host + ":" + std::to_string(options_.port) +
        ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, options_.backlog) != 0) {
    const Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status status =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::AcceptLoop() {
  while (!shutting_down_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listen fd closed by RequestShutdown (or fatal).
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    open_fds_[fd] = true;
    connection_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
  // However the loop ended — drain request or a fatal accept error —
  // run the full drain (idempotent). On the fatal path this is what
  // unblocks main's Wait() and gets the metrics/audit flush to run
  // instead of the daemon wedging with a dead listener.
  RequestShutdown();
}

void Server::ServeConnection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // Per-connection error isolation means these faults never surface
  // past this function; the counter is what keeps them from being
  // swallowed invisibly.
  const auto count_error = [this] {
    service_->metrics()->Add("server.conn.errors");
  };
  std::string buffer;
  char chunk[64 * 1024];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      count_error();
      break;
    }
    if (n == 0) break;  // Peer closed (or drain half-closed us).
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.size() > options_.max_line_bytes &&
        buffer.find('\n') == std::string::npos) {
      count_error();
      (void)SendAll(fd, ErrorLine("BAD_REQUEST", "request line too long"));
      break;
    }
    size_t start = 0;
    size_t newline;
    while ((newline = buffer.find('\n', start)) != std::string::npos) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response_line;
      auto request = JsonValue::Parse(line);
      if (!request.ok()) {
        // Per-connection error isolation: a malformed line produces a
        // BAD_REQUEST response, not a dropped connection.
        count_error();
        response_line =
            ErrorLine("BAD_REQUEST", request.status().ToString());
      } else {
        response_line = service_->Handle(request.value()).Write() + "\n";
      }
      if (!SendAll(fd, response_line)) {
        count_error();
        open = false;
        break;
      }
      if (service_->shutdown_requested()) {
        // The `shutdown` command drains the whole daemon, after its
        // own response has been written.
        RequestShutdown();
      }
    }
    buffer.erase(0, start);
  }
  // Mark closed and close under the lock so RequestShutdown can never
  // shut down a recycled fd number.
  std::lock_guard<std::mutex> lock(mu_);
  open_fds_[fd] = false;
  ::close(fd);
}

void Server::RequestShutdown() {
  bool expected = false;
  if (!shutting_down_.compare_exchange_strong(expected, true)) return;
  service_->BeginDrain();
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    // Closing wakes the blocked accept(); new connections stop here.
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [fd, is_open] : open_fds_) {
    // Half-close: the pending recv returns 0 once buffered requests
    // are consumed, while responses still flow out.
    if (is_open) ::shutdown(fd, SHUT_RD);
  }
}

void Server::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // Connection threads only exit after their last response is written,
  // so joining them is what makes the drain graceful.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace cfq::server
