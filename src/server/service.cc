#include "server/service.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "common/cancellation.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "common/version.h"
#include "core/analyze.h"
#include "core/cfq.h"
#include "core/executor.h"
#include "core/optimizer.h"
#include "incremental/answer.h"
#include "incremental/refresh.h"
#include "obs/digest.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "parser/parser.h"

namespace cfq::server {

namespace {

JsonValue::Object ErrorObject(const std::string& status,
                              const std::string& error) {
  JsonValue::Object response;
  response["status"] = status;
  response["error"] = error;
  return response;
}

JsonValue ErrorResponse(const std::string& status, const std::string& error) {
  return ErrorObject(status, error);
}

std::string JoinItems(const Itemset& items) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(items[i]);
  }
  return out;
}

// One protocol row per answer pair, same shape as cfq_mine's CSV body.
std::string PairRow(const FrequentSet& s, const FrequentSet& t) {
  return JoinItems(s.items) + ';' + JoinItems(t.items) + ';' +
         std::to_string(s.support) + ';' + std::to_string(t.support);
}

}  // namespace

// The per-query trace: its own small event ring (so one query's spans
// never interleave with another's) plus the phase accumulator whose
// entries become the response's "trace" breakdown. The request's
// identity fields ride along so every early-error return still records
// a complete flight-recorder entry.
struct QueryService::QueryTrace {
  explicit QueryTrace(size_t capacity) : tracer(capacity) {}

  uint64_t id = 0;
  int64_t start_us = 0;
  obs::Tracer tracer;
  obs::PhaseAccumulator phases;
  std::string dataset;
  std::string strategy;
  std::string source = "cold";
  std::string client_trace_id;
};

QueryService::QueryService(const ServiceOptions& options,
                           obs::MetricsRegistry* metrics)
    : options_(options),
      metrics_(metrics),
      cache_(options.cache_capacity, metrics),
      state_cache_(options.state_cache_capacity, metrics),
      admission_(options.max_concurrent, options.max_queued, metrics),
      flight_recorder_(obs::FlightRecorderOptions{
          options.flight_recorder_recent, options.flight_recorder_slow,
          options.slow_query_threshold_seconds}) {
  if (!options.audit_log_dir.empty()) {
    AuditLogOptions audit;
    audit.dir = options.audit_log_dir;
    audit.rotate_mb = std::max<uint64_t>(options.audit_rotate_mb, 1);
    audit_log_ = std::make_unique<AuditLog>(audit, metrics);
    if (Status s = audit_log_->Open(); !s.ok()) {
      // Capture is best-effort: a daemon that can serve but not record
      // stays up, and the failure is visible in the metrics surface.
      metrics_->Add("server.audit.open_errors");
      audit_log_.reset();
    }
  }
}

JsonValue QueryService::Handle(const JsonValue& request) {
  metrics_->Add("server.requests_total");
  if (!request.is_object()) {
    return ErrorResponse("BAD_REQUEST", "request must be a JSON object");
  }
  const std::string cmd = request.GetString("cmd", "");
  JsonValue response = JsonValue::Object{};
  if (cmd == "ping") {
    JsonValue::Object pong;
    pong["status"] = "OK";
    pong["pong"] = true;
    response = std::move(pong);
  } else if (cmd == "load") {
    response = HandleLoad(request);
  } else if (cmd == "gen") {
    response = HandleGen(request);
  } else if (cmd == "save") {
    response = HandleSave(request);
  } else if (cmd == "drop") {
    response = HandleDrop(request);
  } else if (cmd == "datasets") {
    response = HandleDatasets();
  } else if (cmd == "append") {
    response = HandleAppend(request);
  } else if (cmd == "query") {
    response = HandleQuery(request);
  } else if (cmd == "stats") {
    response = HandleStats();
  } else if (cmd == "dumptrace") {
    response = HandleDumpTrace();
  } else if (cmd == "shutdown") {
    shutdown_requested_.store(true, std::memory_order_release);
    JsonValue::Object ok;
    ok["status"] = "OK";
    ok["draining"] = true;
    response = std::move(ok);
  } else {
    response = ErrorResponse(
        "BAD_REQUEST", cmd.empty() ? "missing \"cmd\" field"
                                   : "unknown cmd '" + cmd + "'");
  }
  metrics_->Add("server.responses." +
                response.GetString("status", "INTERNAL"));
  return response;
}

JsonValue QueryService::HandleLoad(const JsonValue& request) {
  const std::string name = request.GetString("dataset", "");
  const std::string db_path = request.GetString("db", "");
  const std::string catalog_path = request.GetString("catalog", "");
  if (name.empty() || db_path.empty() || catalog_path.empty()) {
    return ErrorResponse("BAD_REQUEST",
                         "load needs \"dataset\", \"db\" and \"catalog\"");
  }
  auto generation = catalog_.Load(name, db_path, catalog_path);
  if (!generation.ok()) {
    return ErrorResponse(
        generation.status().code() == StatusCode::kNotFound ? "NOT_FOUND"
                                                            : "BAD_REQUEST",
        generation.status().ToString());
  }
  metrics_->Add("server.datasets.loaded");
  auto entry = catalog_.Get(name);
  JsonValue::Object response;
  response["status"] = "OK";
  response["dataset"] = name;
  response["generation"] = static_cast<int64_t>(generation.value());
  if (entry.ok()) {
    response["num_transactions"] =
        static_cast<int64_t>(entry->data->db.num_transactions());
    response["num_items"] = static_cast<int64_t>(entry->data->db.num_items());
  }
  return response;
}

JsonValue QueryService::HandleGen(const JsonValue& request) {
  const std::string name = request.GetString("dataset", "");
  if (name.empty()) {
    return ErrorResponse("BAD_REQUEST", "gen needs \"dataset\"");
  }
  QuestParams params;
  params.num_transactions = static_cast<uint64_t>(
      request.GetInt("num_transactions", 10000));
  params.num_items =
      static_cast<uint64_t>(request.GetInt("num_items", 1000));
  params.avg_transaction_size =
      request.GetNumber("avg_transaction_size", 10);
  params.avg_pattern_size = request.GetNumber("avg_pattern_size", 4);
  params.num_patterns =
      static_cast<uint64_t>(request.GetInt("num_patterns", 500));
  params.seed = static_cast<uint64_t>(request.GetInt("seed", 42));
  auto generation = catalog_.Generate(name, params);
  if (!generation.ok()) {
    return ErrorResponse("BAD_REQUEST", generation.status().ToString());
  }
  metrics_->Add("server.datasets.generated");
  JsonValue::Object response;
  response["status"] = "OK";
  response["dataset"] = name;
  response["generation"] = static_cast<int64_t>(generation.value());
  response["num_transactions"] =
      static_cast<int64_t>(params.num_transactions);
  response["num_items"] = static_cast<int64_t>(params.num_items);
  return response;
}

JsonValue QueryService::HandleSave(const JsonValue& request) {
  const std::string name = request.GetString("dataset", "");
  const std::string db_path = request.GetString("db", "");
  const std::string catalog_path = request.GetString("catalog", "");
  if (name.empty() || db_path.empty() || catalog_path.empty()) {
    return ErrorResponse("BAD_REQUEST",
                         "save needs \"dataset\", \"db\" and \"catalog\"");
  }
  auto entry = catalog_.Get(name);
  if (!entry.ok()) {
    return ErrorResponse("NOT_FOUND", entry.status().ToString());
  }
  if (auto s = SaveDataset(entry->data->db, entry->data->catalog, db_path,
                           catalog_path);
      !s.ok()) {
    return ErrorResponse("EXEC_ERROR", s.ToString());
  }
  JsonValue::Object response;
  response["status"] = "OK";
  response["dataset"] = name;
  response["db"] = db_path;
  response["catalog"] = catalog_path;
  return response;
}

JsonValue QueryService::HandleDrop(const JsonValue& request) {
  const std::string name = request.GetString("dataset", "");
  if (name.empty()) {
    return ErrorResponse("BAD_REQUEST", "drop needs \"dataset\"");
  }
  if (auto s = catalog_.Drop(name); !s.ok()) {
    return ErrorResponse("NOT_FOUND", s.ToString());
  }
  // The data is gone: cached answers and maintained mining states for
  // it must not survive (a later re-register reuses the name — and
  // although generations never repeat, dead entries would otherwise
  // squat in both LRUs until natural eviction).
  const size_t purged_answers = cache_.PurgePrefix(name + "@");
  const size_t purged_states = state_cache_.PurgeDataset(name);
  JsonValue::Object response;
  response["status"] = "OK";
  response["dataset"] = name;
  response["purged_answers"] = static_cast<int64_t>(purged_answers);
  response["purged_states"] = static_cast<int64_t>(purged_states);
  return response;
}

JsonValue QueryService::HandleAppend(const JsonValue& request) {
  const std::string name = request.GetString("dataset", "");
  const JsonValue* transactions = request.Find("transactions");
  if (name.empty() || transactions == nullptr || !transactions->is_array()) {
    return ErrorResponse(
        "BAD_REQUEST",
        "append needs \"dataset\" and a \"transactions\" array of item-id "
        "arrays");
  }
  std::vector<std::vector<ItemId>> batch;
  batch.reserve(transactions->as_array().size());
  for (const JsonValue& txn : transactions->as_array()) {
    if (!txn.is_array()) {
      return ErrorResponse("BAD_REQUEST",
                           "each transaction must be an array of item ids");
    }
    std::vector<ItemId> items;
    items.reserve(txn.as_array().size());
    for (const JsonValue& item : txn.as_array()) {
      if (!item.is_number() || item.as_number() < 0) {
        return ErrorResponse("BAD_REQUEST",
                             "item ids must be non-negative numbers");
      }
      items.push_back(static_cast<ItemId>(item.as_number()));
    }
    batch.push_back(std::move(items));
  }
  auto generation = catalog_.Append(name, batch);
  if (!generation.ok()) {
    return ErrorResponse("NOT_FOUND", generation.status().ToString());
  }
  metrics_->Add("server.datasets.appends");
  metrics_->Add("server.datasets.appended_transactions", batch.size());
  auto entry = catalog_.Get(name);
  JsonValue::Object response;
  response["status"] = "OK";
  response["dataset"] = name;
  response["generation"] = static_cast<int64_t>(generation.value());
  response["appended"] = static_cast<int64_t>(batch.size());
  if (entry.ok()) {
    response["num_transactions"] =
        static_cast<int64_t>(entry->data->db.num_transactions());
  }
  return response;
}

JsonValue QueryService::HandleDatasets() {
  JsonValue::Array rows;
  for (const DatasetInfo& info : catalog_.List()) {
    JsonValue::Object row;
    row["name"] = info.name;
    row["generation"] = static_cast<int64_t>(info.generation);
    row["num_transactions"] = static_cast<int64_t>(info.num_transactions);
    row["num_items"] = static_cast<int64_t>(info.num_items);
    JsonValue::Array attrs;
    for (const std::string& attr : info.attrs) attrs.push_back(attr);
    row["attrs"] = std::move(attrs);
    rows.push_back(std::move(row));
  }
  JsonValue::Object response;
  response["status"] = "OK";
  response["datasets"] = std::move(rows);
  return response;
}

JsonValue QueryService::HandleQuery(const JsonValue& request) {
  const auto started = std::chrono::steady_clock::now();
  QueryTrace trace(std::max<size_t>(options_.query_trace_capacity, 64));
  trace.id = flight_recorder_.NextTraceId();
  trace.start_us = flight_recorder_.NowMicros();
  trace.dataset = request.GetString("dataset", "");
  trace.strategy = request.GetString("strategy", "optimized");
  trace.client_trace_id = request.GetString("trace_id", "");

  trace.tracer.BeginSpan("query");
  JsonValue::Object response = ExecuteQuery(request, &trace);
  trace.tracer.EndSpan("query");

  const double elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  const auto status_it = response.find("status");
  const std::string status =
      status_it != response.end() && status_it->second.is_string()
          ? status_it->second.as_string()
          : "INTERNAL";
  if (status == "OK") {
    const auto cached_it = response.find("cached");
    const bool cached =
        cached_it != response.end() && cached_it->second.is_bool() &&
        cached_it->second.as_bool();
    metrics_->Add("server.queries_total");
    metrics_->Add("server.reuse." +
                  (trace.source == "incremental-refresh"
                       ? std::string("incremental_refresh")
                       : trace.source));
    metrics_->Observe(cached ? "server.query_seconds.cache_hit"
                             : "server.query_seconds.cold",
                      elapsed_seconds);
    response["elapsed_seconds"] = elapsed_seconds;
  }

  // Every query response — success or error — carries its trace id and
  // the per-phase wall-time breakdown. Top-level (undotted) phases
  // partition the wall time; dotted entries attribute time INSIDE
  // their parent phase and must not be added to the top-level sum.
  JsonValue::Object phases;
  for (const obs::QueryPhase& phase : trace.phases.phases()) {
    phases[phase.name] = phase.seconds;
  }
  JsonValue::Object trace_json;
  trace_json["id"] = static_cast<int64_t>(trace.id);
  if (!trace.client_trace_id.empty()) {
    trace_json["client_trace_id"] = trace.client_trace_id;
  }
  trace_json["slow"] =
      elapsed_seconds >= flight_recorder_.slow_threshold_seconds();
  trace_json["phases"] = std::move(phases);
  response["trace"] = std::move(trace_json);

  obs::CompletedQueryTrace completed;
  completed.id = trace.id;
  completed.start_us = trace.start_us;
  completed.elapsed_seconds = elapsed_seconds;
  completed.dataset = trace.dataset;
  completed.strategy = trace.strategy;
  completed.source = trace.source;
  completed.status = status;
  completed.client_trace_id = trace.client_trace_id;
  completed.phases = trace.phases.phases();
  completed.events = trace.tracer.Events();
  flight_recorder_.Record(std::move(completed));

  // Workload capture: one JSONL record per served query, success or
  // error. Requests with no query text at all (protocol misuse) carry
  // nothing replayable and are not recorded.
  if (audit_log_ != nullptr) {
    AuditRecord record;
    // Replay the canonical text when parsing succeeded — it keys the
    // result cache identically — and the raw text otherwise.
    const auto canonical = response.find("canonical_query");
    record.query =
        canonical != response.end() && canonical->second.is_string()
            ? canonical->second.as_string()
            : request.GetString("query", "");
    if (!record.query.empty()) {
      record.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
      record.trace_id = trace.id;
      record.client_trace_id = trace.client_trace_id;
      record.dataset = trace.dataset.empty() ? "-" : trace.dataset;
      record.strategy = trace.strategy;
      record.status = status;
      record.source = trace.source;
      record.elapsed_seconds = elapsed_seconds;
      const auto get_int = [&response](const char* key) -> uint64_t {
        const auto it = response.find(key);
        return it != response.end() && it->second.is_number()
                   ? static_cast<uint64_t>(it->second.as_number())
                   : 0;
      };
      record.generation = get_int("generation");
      record.num_pairs = get_int("num_pairs");
      const auto rows = response.find("rows");
      if (rows != response.end() && rows->second.is_array()) {
        record.rows = rows->second.as_array().size();
      }
      const auto cached_flag = response.find("cached");
      record.cached = cached_flag != response.end() &&
                      cached_flag->second.is_bool() &&
                      cached_flag->second.as_bool();
      const auto digest = response.find("digest");
      if (digest != response.end() && digest->second.is_string()) {
        record.digest = digest->second.as_string();
      }
      // Only the request's explicit cap/deadline (0 = server default),
      // so replay against a differently configured daemon still sends
      // what the client sent.
      record.max_rows = static_cast<uint64_t>(request.GetInt("max_rows", 0));
      record.deadline_ms =
          static_cast<uint64_t>(request.GetInt("deadline_ms", 0));
      for (const obs::QueryPhase& phase : trace.phases.phases()) {
        record.phases[phase.name] = phase.seconds;
      }
      audit_log_->Append(record);
    }
  }

  return response;
}

JsonValue::Object QueryService::ExecuteQuery(const JsonValue& request,
                                             QueryTrace* trace) {
  const std::string name = trace->dataset;
  const std::string query_text = request.GetString("query", "");
  if (name.empty() || query_text.empty()) {
    return ErrorObject("BAD_REQUEST", "query needs \"dataset\" and \"query\"");
  }
  const std::string strategy = trace->strategy;
  if (strategy != "optimized" && strategy != "cap" && strategy != "apriori" &&
      strategy != "incremental") {
    return ErrorObject("BAD_REQUEST",
                       "unknown strategy '" + strategy +
                           "' (want optimized|cap|apriori|incremental)");
  }

  auto entry = [&] {
    obs::ScopedPhase phase(&trace->phases, &trace->tracer, "catalog");
    return catalog_.Get(name);
  }();
  if (!entry.ok()) {
    return ErrorObject("NOT_FOUND", entry.status().ToString());
  }

  obs::ScopedPhase parse_phase(&trace->phases, &trace->tracer, "parse");
  auto parsed = ParseCfq(query_text);
  if (!parsed.ok()) {
    return ErrorObject("PARSE_ERROR", parsed.status().ToString());
  }
  CfqQuery query = std::move(parsed).value();
  for (ItemId i = 0; i < entry->data->db.num_items(); ++i) {
    query.s_domain.push_back(i);
    query.t_domain.push_back(i);
  }
  const std::string canonical = CanonicalizeQuery(query);
  parse_phase.End();

  uint64_t max_rows =
      static_cast<uint64_t>(request.GetInt("max_rows",
                                           static_cast<int64_t>(
                                               options_.max_rows)));
  if (max_rows > options_.max_rows) max_rows = options_.max_rows;

  // The cache key covers exactly what determines the answer bytes; see
  // result_cache.h.
  const std::string cache_key =
      name + '@' + std::to_string(entry->generation) + '|' + strategy +
      "|rows=" + std::to_string(max_rows) + '|' + canonical;

  auto answer = [&] {
    obs::ScopedPhase phase(&trace->phases, &trace->tracer, "cache");
    return cache_.Get(cache_key);
  }();
  bool cached = answer != nullptr;
  // How this answer was obtained: a result-cache "hit", an
  // "incremental-refresh" riding a maintained mining state, or a "cold"
  // computation from the raw transactions.
  trace->source = cached ? "hit" : "cold";
  if (!cached) {
    // Miss: admit, run, populate.
    uint64_t deadline_ms = static_cast<uint64_t>(
        request.GetInt("deadline_ms",
                       static_cast<int64_t>(options_.default_deadline_ms)));
    if (deadline_ms == 0 || deadline_ms > options_.max_deadline_ms) {
      deadline_ms = options_.max_deadline_ms;
    }
    CancelToken cancel;
    cancel.SetDeadline(std::chrono::milliseconds(deadline_ms));

    auto permit = [&] {
      obs::ScopedPhase phase(&trace->phases, &trace->tracer, "admission");
      return admission_.Admit(&cancel);
    }();
    if (!permit.ok()) {
      if (permit.status().code() == StatusCode::kDeadlineExceeded) {
        metrics_->Add("server.admission.timeouts");
        return ErrorObject("TIMEOUT", permit.status().ToString());
      }
      const bool draining =
          permit.status().message().find("shutting down") !=
          std::string::npos;
      metrics_->Add(draining ? "server.admission.drained"
                             : "server.admission.rejected");
      return ErrorObject(draining ? "SHUTTING_DOWN" : "REJECTED",
                         permit.status().ToString());
    }

    PlanOptions plan_options;
    plan_options.threads = options_.threads;
    plan_options.cancel = &cancel;
    obs::MetricsRegistry query_metrics;
    plan_options.metrics = &query_metrics;
    // The executor's lattice/level/Jmax events nest under this query's
    // execute span in the flight recorder.
    plan_options.tracer = &trace->tracer;

    // The catalog pre-built the vertical index, so execution treats the
    // shared database as read-only despite the non-const signature.
    TransactionDb* db = const_cast<TransactionDb*>(&entry->data->db);
    Result<CfqResult> result = Status::Internal("unreachable");
    if (strategy == "optimized") {
      auto plan = [&] {
        obs::ScopedPhase phase(&trace->phases, &trace->tracer, "plan");
        return BuildPlan(query, plan_options);
      }();
      if (!plan.ok()) {
        return ErrorObject("PLAN_ERROR", plan.status().ToString());
      }
      obs::ScopedPhase phase(&trace->phases, &trace->tracer, "execute");
      result = ExecutePlan(db, entry->data->catalog, plan.value());
    } else if (strategy == "cap") {
      obs::ScopedPhase phase(&trace->phases, &trace->tracer, "execute");
      result = ExecuteCapOneVar(db, entry->data->catalog, query,
                                plan_options);
    } else if (strategy == "incremental") {
      obs::ScopedPhase phase(&trace->phases, &trace->tracer, "execute");
      result = RunIncremental(name, *entry, query, &cancel, &query_metrics,
                              trace, &trace->source);
    } else {
      obs::ScopedPhase phase(&trace->phases, &trace->tracer, "execute");
      result = ExecuteAprioriPlus(db, entry->data->catalog, query,
                                  plan_options);
    }
    if (!result.ok()) {
      if (result.status().code() == StatusCode::kDeadlineExceeded) {
        metrics_->Add("server.query.timeouts");
        return ErrorObject("TIMEOUT", result.status().ToString());
      }
      return ErrorObject(result.status().code() == StatusCode::kNotFound
                             ? "PLAN_ERROR"
                             : "EXEC_ERROR",
                         result.status().ToString());
    }

    // Finer attribution inside the execute phase, from the per-query
    // registry the mining stack observed into. Dotted names mark them
    // as sub-phases of `execute`.
    const auto sub_phase = [&](const char* phase_name, const char* metric) {
      const double seconds = query_metrics.histogram(metric).sum();
      if (seconds > 0) trace->phases.Add(phase_name, seconds);
    };
    if (strategy == "incremental") {
      sub_phase("execute.build", "incr.build_seconds");
      sub_phase("execute.refresh", "incr.refresh_seconds");
      sub_phase("execute.refresh.recount", "incr.delta.recount_seconds");
      sub_phase("execute.refresh.expand", "incr.expand.count_seconds");
      sub_phase("execute.refresh.partition", "incr.level.partition_seconds");
      sub_phase("execute.refresh.candidate_gen",
                "incr.level.candidate_gen_seconds");
      sub_phase("execute.answer", "incr.answer_seconds");
      sub_phase("execute.answer.filter", "incr.answer.filter_seconds");
      sub_phase("execute.answer.reduce", "incr.answer.reduce_seconds");
      sub_phase("execute.answer.audit", "incr.answer.audit_seconds");
      sub_phase("execute.answer.pair", "incr.answer.pair_seconds");
    } else {
      if (result->stats.mining_seconds > 0) {
        trace->phases.Add("execute.mine", result->stats.mining_seconds);
      }
      if (result->stats.pair_seconds > 0) {
        trace->phases.Add("execute.pair", result->stats.pair_seconds);
      }
    }

    obs::ScopedPhase render_phase(&trace->phases, &trace->tracer, "render");
    auto fresh = std::make_shared<CachedAnswer>();
    fresh->canonical_query = canonical;
    fresh->s_sets = result->s_sets.size();
    fresh->t_sets = result->t_sets.size();
    fresh->cross_product = result->cross_product;
    if (result->cross_product) {
      fresh->num_pairs = static_cast<uint64_t>(result->s_sets.size()) *
                         static_cast<uint64_t>(result->t_sets.size());
      for (const FrequentSet& s : result->s_sets) {
        for (const FrequentSet& t : result->t_sets) {
          if (fresh->rows.size() >= max_rows) break;
          fresh->rows.push_back(PairRow(s, t));
        }
        if (fresh->rows.size() >= max_rows) break;
      }
    } else {
      fresh->num_pairs = result->pairs.size();
      for (const auto& [i, j] : result->pairs) {
        if (fresh->rows.size() >= max_rows) break;
        fresh->rows.push_back(
            PairRow(result->s_sets[i], result->t_sets[j]));
      }
    }
    fresh->truncated = fresh->rows.size() < fresh->num_pairs;
    // The stable answer identity: FNV-1a over the response rows in
    // sorted order (obs/digest.h). Computed once here; cache hits and
    // the audit log reuse it byte-for-byte.
    fresh->digest = obs::RowsDigestHex(fresh->rows);

    ExportMetrics(result->stats, &query_metrics);
    metrics_->MergeFrom(query_metrics);
    cache_.Put(cache_key, fresh);
    answer = std::move(fresh);
    render_phase.End();
  }

  JsonValue::Object response;
  response["status"] = "OK";
  response["dataset"] = name;
  response["generation"] = static_cast<int64_t>(entry->generation);
  response["strategy"] = strategy;
  response["source"] = trace->source;
  response["canonical_query"] = answer->canonical_query;
  response["cached"] = cached;
  response["s_sets"] = static_cast<int64_t>(answer->s_sets);
  response["t_sets"] = static_cast<int64_t>(answer->t_sets);
  response["num_pairs"] = static_cast<int64_t>(answer->num_pairs);
  response["cross_product"] = answer->cross_product;
  response["truncated"] = answer->truncated;
  response["digest"] = answer->digest;
  JsonValue::Array rows;
  rows.reserve(answer->rows.size());
  for (const std::string& row : answer->rows) rows.push_back(row);
  response["rows"] = std::move(rows);
  return response;
}

Result<CfqResult> QueryService::RunIncremental(
    const std::string& name, const CatalogEntry& entry, const CfqQuery& query,
    const CancelToken* cancel, obs::MetricsRegistry* query_metrics,
    QueryTrace* trace, std::string* source) {
  // One maintained state serves both sides: mine the union of the two
  // domains at the lower of the two thresholds, then AnswerFromState
  // filters each side down (its requirements are exactly these bounds).
  const uint64_t state_minsup =
      std::min(query.min_support_s, query.min_support_t);
  Itemset domain = query.s_domain;
  domain.insert(domain.end(), query.t_domain.begin(), query.t_domain.end());
  std::sort(domain.begin(), domain.end());
  domain.erase(std::unique(domain.begin(), domain.end()), domain.end());

  // A cached state is only usable if it covers the query's items — an
  // append can widen the item universe, which silently invalidates
  // every narrower state in the lineage.
  const auto covers =
      [&domain](const std::shared_ptr<const incremental::CachedState>& c) {
        return c != nullptr &&
               std::includes(c->state.domain.begin(), c->state.domain.end(),
                             domain.begin(), domain.end());
      };

  TransactionDb* db = const_cast<TransactionDb*>(&entry.data->db);
  ThreadPool pool(options_.threads);
  incremental::IncrOptions incr;
  incr.pool = &pool;
  incr.metrics = query_metrics;
  incr.cancel = cancel;
  incr.tracer = &trace->tracer;

  const incremental::MiningState* state = nullptr;
  std::shared_ptr<incremental::StateAnswerContext> ctx;
  // Keeps a cache hit's state alive / owns a freshly produced one.
  std::shared_ptr<const incremental::CachedState> hit =
      state_cache_.Get(name, entry.generation, state_minsup);
  incremental::MiningState owned;

  if (covers(hit)) {
    state = &hit->state;
    ctx = hit->ctx;
    *source = "incremental-refresh";
  } else {
    bool refreshed = false;
    auto ancestor =
        entry.log == nullptr
            ? nullptr
            : state_cache_.FindAncestor(name, *entry.log, entry.generation,
                                        state_minsup);
    if (covers(ancestor)) {
      // The delta span the ancestor must advance across. The defensive
      // size checks only fail if the cache and catalog disagree about
      // the lineage — then mining cold is correct, refreshing is not.
      auto span =
          entry.log->Between(ancestor->state.generation, entry.generation);
      if (span.has_value() &&
          ancestor->state.num_transactions == span->tid_begin &&
          db->num_transactions() == span->tid_end) {
        auto outcome = [&] {
          obs::TraceSpan refresh_span(&trace->tracer, "refresh");
          return incremental::RefreshMiningState(
              ancestor->state, db, span->tid_begin, span->tid_end,
              entry.generation, state_minsup, incr);
        }();
        if (!outcome.ok()) return outcome.status();
        owned = std::move(outcome.value().state);
        ctx = ancestor->ctx;
        refreshed = true;
        *source = "incremental-refresh";
      }
    }
    if (!refreshed) {
      auto built = [&] {
        obs::TraceSpan build_span(&trace->tracer, "build_state");
        return incremental::BuildMiningState(db, domain, state_minsup,
                                             entry.generation, incr);
      }();
      if (!built.ok()) return built.status();
      owned = std::move(built).value();
      ctx = state_cache_.ContextFor(name);
      *source = "cold";
    }
    state_cache_.Put(name, owned, ctx);
    state = &owned;
  }

  incremental::ReuseStats reuse;
  incremental::StateAnswerOptions answer_options;
  answer_options.ctx = ctx.get();
  answer_options.reuse = &reuse;
  answer_options.metrics = query_metrics;
  answer_options.cancel = cancel;
  answer_options.tracer = &trace->tracer;
  obs::TraceSpan answer_span(&trace->tracer, "answer");
  return incremental::AnswerFromState(*state, entry.data->catalog, query,
                                      answer_options);
}

JsonValue::Object QueryService::StatsJson() {
  JsonValue::Object cache;
  cache["hits"] = static_cast<int64_t>(cache_.hits());
  cache["misses"] = static_cast<int64_t>(cache_.misses());
  cache["evictions"] = static_cast<int64_t>(cache_.evictions());
  cache["size"] = static_cast<int64_t>(cache_.size());
  cache["capacity"] = static_cast<int64_t>(cache_.capacity());

  JsonValue::Object admission;
  admission["active"] = static_cast<int64_t>(admission_.active());
  admission["queued"] = static_cast<int64_t>(admission_.queued());
  admission["rejected_total"] =
      static_cast<int64_t>(admission_.rejected_total());
  admission["max_concurrent"] =
      static_cast<int64_t>(admission_.max_concurrent());
  admission["max_queued"] = static_cast<int64_t>(admission_.max_queued());

  JsonValue::Object state_cache;
  state_cache["hits"] = static_cast<int64_t>(state_cache_.hits());
  state_cache["misses"] = static_cast<int64_t>(state_cache_.misses());
  state_cache["evictions"] = static_cast<int64_t>(state_cache_.evictions());
  state_cache["size"] = static_cast<int64_t>(state_cache_.size());
  state_cache["capacity"] = static_cast<int64_t>(state_cache_.capacity());

  const obs::FlightRecorderSummary recorder = flight_recorder_.Summary();
  JsonValue::Object flight;
  flight["recorded_total"] = static_cast<int64_t>(recorder.recorded_total);
  flight["slow_total"] = static_cast<int64_t>(recorder.slow_total);
  flight["recent_size"] = static_cast<int64_t>(recorder.recent_size);
  flight["slow_size"] = static_cast<int64_t>(recorder.slow_size);
  flight["slow_threshold_seconds"] = recorder.slow_threshold_seconds;

  // The build that is serving: configure-time git describe and build
  // type plus the runtime-dispatched counting kernel, so any scraped
  // stats snapshot identifies the binary it came from.
  JsonValue::Object build;
  build["git_describe"] = std::string(BuildGitDescribe());
  build["build_type"] = std::string(BuildType());
  build["simd_kernel"] = std::string(simd::KernelName(simd::ActiveKernel()));

  JsonValue::Object audit;
  audit["enabled"] = audit_log_ != nullptr;
  if (audit_log_ != nullptr) {
    audit["appended"] = static_cast<int64_t>(audit_log_->appended());
    audit["rotations"] = static_cast<int64_t>(audit_log_->rotations());
    audit["errors"] = static_cast<int64_t>(audit_log_->errors());
    audit["current_path"] = audit_log_->current_path();
  }

  JsonValue::Object stats;
  stats["cache"] = std::move(cache);
  stats["admission"] = std::move(admission);
  stats["state_cache"] = std::move(state_cache);
  stats["flight_recorder"] = std::move(flight);
  stats["build"] = std::move(build);
  stats["audit"] = std::move(audit);
  stats["datasets"] = static_cast<int64_t>(catalog_.size());
  stats["max_generation"] = static_cast<int64_t>(catalog_.max_generation());
  stats["uptime_seconds"] = static_cast<int64_t>(uptime_seconds());
  stats["simd_kernel"] = std::string(simd::KernelName(simd::ActiveKernel()));
  return stats;
}

JsonValue QueryService::HandleStats() {
  JsonValue::Object response = StatsJson();
  response["status"] = "OK";

  // The same registry the daemon flushes at drain, in the same
  // Prometheus text the rest of the toolchain exports. The simd.*
  // families are refreshed first so the snapshot reflects counting
  // work up to this request.
  obs::ExportSimdMetrics(metrics_);
  std::ostringstream prometheus;
  obs::WritePrometheus(*metrics_, prometheus);
  response["prometheus"] = prometheus.str();
  return response;
}

JsonValue QueryService::HandleDumpTrace() {
  std::ostringstream os;
  flight_recorder_.WriteChromeTrace(os);
  JsonValue::Object response;
  response["status"] = "OK";
  response["traces"] =
      static_cast<int64_t>(flight_recorder_.Snapshot().size());
  response["chrome_trace"] = os.str();
  return response;
}

HttpResponse QueryService::HandleHttp(const std::string& path) {
  metrics_->Add("server.http.requests");
  HttpResponse response;
  if (path == "/healthz") {
    // First token stays "ok"/"draining" (probes grep for it); the rest
    // of the line is liveness context for humans and smoke tests.
    const std::string detail =
        " uptime_seconds=" + std::to_string(uptime_seconds()) +
        " datasets=" + std::to_string(catalog_.size()) +
        " max_generation=" + std::to_string(catalog_.max_generation());
    if (admission_.shutting_down()) {
      response.status = 503;
      response.body = "draining" + detail + "\n";
    } else {
      response.body = "ok" + detail + "\n";
    }
    return response;
  }
  if (path == "/metrics") {
    obs::ExportSimdMetrics(metrics_);
    std::ostringstream os;
    obs::WritePrometheus(*metrics_, os);
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = os.str();
    return response;
  }
  if (path == "/stats") {
    JsonValue::Object stats = StatsJson();
    stats["status"] = "OK";
    response.content_type = "application/json";
    response.body = JsonValue(std::move(stats)).Write() + "\n";
    return response;
  }
  if (path == "/trace") {
    std::ostringstream os;
    flight_recorder_.WriteChromeTrace(os);
    response.content_type = "application/json";
    response.body = os.str();
    return response;
  }
  response.status = 404;
  response.body = "not found (try /metrics, /healthz, /stats, /trace)\n";
  return response;
}

}  // namespace cfq::server
