#include "server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cfq::server {

namespace {

class Parser {
 public:
  Parser(const std::string& text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> Run() {
    auto value = ParseValue(0);
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(size_t depth) {
    if (depth > max_depth_) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      auto s = ParseString();
      if (!s.ok()) return s.status();
      return JsonValue(std::move(s).value());
    }
    if (ConsumeWord("null")) return JsonValue();
    if (ConsumeWord("true")) return JsonValue(true);
    if (ConsumeWord("false")) return JsonValue(false);
    return ParseNumber();
  }

  Result<JsonValue> ParseObject(size_t depth) {
    ++pos_;  // '{'
    JsonValue::Object object;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(object));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      object[std::move(key).value()] = std::move(value).value();
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue(std::move(object));
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(size_t depth) {
    ++pos_;  // '['
    JsonValue::Array array;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(array));
    while (true) {
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      array.push_back(std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue(std::move(array));
      return Error("expected ',' or ']'");
    }
  }

  // Appends `code` (a Unicode scalar value) to `out` as UTF-8.
  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    return code;
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            auto hi = ParseHex4();
            if (!hi.ok()) return hi.status();
            uint32_t code = hi.value();
            if (code >= 0xD800 && code <= 0xDBFF) {  // Surrogate pair.
              if (!(Consume('\\') && Consume('u'))) {
                return Error("unpaired surrogate");
              }
              auto lo = ParseHex4();
              if (!lo.ok()) return lo.status();
              if (lo.value() < 0xDC00 || lo.value() > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (lo.value() - 0xDC00);
            }
            AppendUtf8(code, &out);
            break;
          }
          default:
            --pos_;
            return Error("invalid escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      out.push_back(c);
      ++pos_;
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return Error("expected a value");
    pos_ += static_cast<size_t>(end - start);
    if (!std::isfinite(v)) return Error("number out of range");
    return JsonValue(v);
  }

  const std::string& text_;
  const size_t max_depth_;
  size_t pos_ = 0;
};

void WriteValue(const JsonValue& value, std::string* out) {
  if (value.is_null()) {
    *out += "null";
  } else if (value.is_bool()) {
    *out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    *out += JsonNumber(value.as_number());
  } else if (value.is_string()) {
    *out += '"';
    *out += JsonEscape(value.as_string());
    *out += '"';
  } else if (value.is_array()) {
    *out += '[';
    bool first = true;
    for (const JsonValue& v : value.as_array()) {
      if (!first) *out += ',';
      first = false;
      WriteValue(v, out);
    }
    *out += ']';
  } else {
    *out += '{';
    bool first = true;
    for (const auto& [key, v] : value.as_object()) {
      if (!first) *out += ',';
      first = false;
      *out += '"';
      *out += JsonEscape(key);
      *out += "\":";
      WriteValue(v, out);
    }
    *out += '}';
  }
}

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Object& object = as_object();
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

int64_t JsonValue::GetInt(const std::string& key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number()
             ? static_cast<int64_t>(v->as_number())
             : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

std::string JsonValue::Write() const {
  std::string out;
  WriteValue(*this, &out);
  return out;
}

Result<JsonValue> JsonValue::Parse(const std::string& text, size_t max_depth) {
  return Parser(text, max_depth).Run();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no Inf/NaN.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace cfq::server
