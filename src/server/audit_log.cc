#include "server/audit_log.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <sstream>
#include <system_error>

namespace cfq::server {

namespace fs = std::filesystem;

namespace {

constexpr char kFilePrefix[] = "audit-";
constexpr char kFileSuffix[] = ".jsonl";

std::string FileName(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%06llu%s", kFilePrefix,
                static_cast<unsigned long long>(index), kFileSuffix);
  return buf;
}

// audit-000042.jsonl -> 42; nullopt for anything else.
std::optional<uint64_t> ParseIndex(const std::string& name) {
  const size_t prefix = sizeof(kFilePrefix) - 1;
  const size_t suffix = sizeof(kFileSuffix) - 1;
  if (name.size() <= prefix + suffix) return std::nullopt;
  if (name.compare(0, prefix, kFilePrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix, suffix, kFileSuffix) != 0) {
    return std::nullopt;
  }
  uint64_t index = 0;
  for (size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    index = index * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return index;
}

}  // namespace

JsonValue AuditRecord::ToJson() const {
  JsonValue::Object obj;
  obj["ts_us"] = JsonValue(static_cast<int64_t>(ts_us));
  obj["trace_id"] = JsonValue(static_cast<int64_t>(trace_id));
  if (!client_trace_id.empty()) {
    obj["client_trace_id"] = JsonValue(client_trace_id);
  }
  obj["dataset"] = JsonValue(dataset);
  obj["generation"] = JsonValue(static_cast<int64_t>(generation));
  obj["strategy"] = JsonValue(strategy);
  obj["status"] = JsonValue(status);
  if (!source.empty()) obj["source"] = JsonValue(source);
  obj["cached"] = JsonValue(cached);
  obj["query"] = JsonValue(query);
  if (!digest.empty()) obj["digest"] = JsonValue(digest);
  obj["rows"] = JsonValue(static_cast<int64_t>(rows));
  obj["num_pairs"] = JsonValue(static_cast<int64_t>(num_pairs));
  if (max_rows > 0) obj["max_rows"] = JsonValue(static_cast<int64_t>(max_rows));
  if (deadline_ms > 0) {
    obj["deadline_ms"] = JsonValue(static_cast<int64_t>(deadline_ms));
  }
  obj["elapsed_seconds"] = JsonValue(elapsed_seconds);
  if (!phases.empty()) obj["phases"] = JsonValue(phases);
  return JsonValue(std::move(obj));
}

std::string AuditRecord::ToJsonLine() const { return ToJson().Write(); }

Result<AuditRecord> AuditRecord::Parse(const std::string& line) {
  CFQ_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(line));
  if (!json.is_object()) {
    return Status::InvalidArgument("audit record is not a JSON object");
  }
  AuditRecord r;
  r.dataset = json.GetString("dataset", "");
  r.query = json.GetString("query", "");
  r.status = json.GetString("status", "");
  if (r.dataset.empty() || r.query.empty() || r.status.empty()) {
    return Status::InvalidArgument(
        "audit record missing dataset/query/status");
  }
  r.ts_us = json.GetInt("ts_us", 0);
  r.trace_id = static_cast<uint64_t>(json.GetInt("trace_id", 0));
  r.client_trace_id = json.GetString("client_trace_id", "");
  r.generation = static_cast<uint64_t>(json.GetInt("generation", 0));
  r.strategy = json.GetString("strategy", "");
  r.source = json.GetString("source", "");
  r.cached = json.GetBool("cached", false);
  r.digest = json.GetString("digest", "");
  r.rows = static_cast<uint64_t>(json.GetInt("rows", 0));
  r.num_pairs = static_cast<uint64_t>(json.GetInt("num_pairs", 0));
  r.max_rows = static_cast<uint64_t>(json.GetInt("max_rows", 0));
  r.deadline_ms = static_cast<uint64_t>(json.GetInt("deadline_ms", 0));
  r.elapsed_seconds = json.GetNumber("elapsed_seconds", 0);
  if (const JsonValue* phases = json.Find("phases");
      phases != nullptr && phases->is_object()) {
    r.phases = phases->as_object();
  }
  return r;
}

AuditLog::AuditLog(const AuditLogOptions& options,
                   obs::MetricsRegistry* metrics)
    : options_(options), metrics_(metrics) {}

Status AuditLog::Open() {
  if (options_.dir.empty()) {
    return Status::FailedPrecondition("audit log has no directory");
  }
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return Status::Internal("cannot create audit dir " + options_.dir + ": " +
                            ec.message());
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Number past any files already present so restarts never overwrite
  // an earlier run's capture.
  for (const fs::directory_entry& entry :
       fs::directory_iterator(options_.dir, ec)) {
    if (const auto index = ParseIndex(entry.path().filename().string())) {
      next_index_ = std::max(next_index_, *index + 1);
    }
  }
  RotateLocked();
  if (!file_.is_open()) {
    return Status::Internal("cannot open audit file " + current_path_);
  }
  return Status::Ok();
}

void AuditLog::RotateLocked() {
  if (file_.is_open()) {
    file_.flush();
    file_.close();
  }
  current_path_ =
      (fs::path(options_.dir) / FileName(next_index_)).string();
  ++next_index_;
  bytes_written_ = 0;
  file_.open(current_path_, std::ios::out | std::ios::app);
}

void AuditLog::Append(const AuditRecord& record) {
  std::string line = record.ToJsonLine();
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(mu_);
  if (!file_.is_open()) {
    ++errors_;
    if (metrics_ != nullptr) metrics_->Add("server.audit.errors", 1);
    return;
  }
  if (bytes_written_ > 0 &&
      bytes_written_ + line.size() > options_.rotate_mb * 1024 * 1024) {
    RotateLocked();
    ++rotations_;
    if (metrics_ != nullptr) metrics_->Add("server.audit.rotations", 1);
  }
  file_.write(line.data(), static_cast<std::streamsize>(line.size()));
  if (!file_.good()) {
    ++errors_;
    if (metrics_ != nullptr) metrics_->Add("server.audit.errors", 1);
    file_.clear();
    return;
  }
  bytes_written_ += line.size();
  ++appended_;
  if (metrics_ != nullptr) {
    metrics_->Add("server.audit.appended", 1);
    metrics_->SetGauge("server.audit.bytes",
                       static_cast<double>(bytes_written_));
  }
}

void AuditLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_.is_open()) file_.flush();
}

uint64_t AuditLog::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

uint64_t AuditLog::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

uint64_t AuditLog::errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return errors_;
}

std::string AuditLog::current_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_path_;
}

Result<std::vector<AuditRecord>> ReadAuditLog(const std::string& path,
                                              AuditReadStats* stats) {
  std::error_code ec;
  std::vector<std::string> files;
  if (fs::is_directory(path, ec)) {
    for (const fs::directory_entry& entry : fs::directory_iterator(path, ec)) {
      if (ParseIndex(entry.path().filename().string()).has_value()) {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      return Status::NotFound("no audit-*.jsonl files in " + path);
    }
  } else {
    files.push_back(path);
  }

  AuditReadStats local;
  std::vector<AuditRecord> records;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in.is_open()) {
      return Status::NotFound("cannot open audit log " + file);
    }
    ++local.files;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      Result<AuditRecord> record = AuditRecord::Parse(line);
      if (!record.ok()) {
        ++local.malformed;
        continue;
      }
      records.push_back(std::move(record).value());
      ++local.records;
    }
  }
  if (stats != nullptr) *stats = local;
  return records;
}

}  // namespace cfq::server
