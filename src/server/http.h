// HttpServer: a minimal GET-only HTTP/1.0 listener for telemetry.
//
// The daemon's query protocol is newline-delimited JSON; Prometheus
// scrapers and load balancers speak HTTP. This listener bridges the
// gap on a second port without pulling in an HTTP library: it accepts
// one connection at a time on its own thread, parses the request line
// of a GET, hands the path to a handler, and writes one
// Connection: close response. That is exactly enough for `curl`,
// `prometheus`, and a readiness probe — it is not a general web server
// (no keep-alive, no pipelining, no request bodies), and a slow client
// can delay the next probe by at most the per-connection receive
// timeout.
//
// The handler runs on the listener thread and must be thread-safe
// against the daemon's query threads (the QueryService endpoints only
// touch mutex-guarded registries and caches).

#ifndef CFQ_SERVER_HTTP_H_
#define CFQ_SERVER_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/result.h"

namespace cfq::server {

struct HttpOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral.
  int backlog = 16;
  // recv() timeout per connection; bounds how long a stalled client
  // can hold the (single) service loop.
  int recv_timeout_ms = 2000;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// Receives the request path with any "?query" suffix stripped.
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

class HttpServer {
 public:
  HttpServer(const HttpOptions& options, HttpHandler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens, and starts the service thread.
  Status Start();

  // The bound port (after Start); the requested one unless it was 0.
  uint16_t port() const { return port_; }

  // Closes the listener and joins the service thread (idempotent).
  void Stop();

 private:
  void ServeLoop();
  void ServeConnection(int fd);

  const HttpOptions options_;
  const HttpHandler handler_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace cfq::server

#endif  // CFQ_SERVER_HTTP_H_
