// AuditLog: durable workload capture for the serving daemon.
//
// Every query QueryService serves — success or error — is appended as
// one JSON object per line to a rotating audit log, so the workload
// survives the process: the query mix can be summarized offline, a new
// build or backend can be proven answer-identical under production
// traffic, and latency can be compared replay-vs-capture. The record
// carries everything tools/cfq_replay needs to re-drive the query (the
// canonical query text, dataset, strategy, row cap, deadline) plus
// everything needed to verify and compare the replay (the FNV-1a
// result digest, response status/source, per-phase timings, completion
// timestamp for pacing).
//
// Files are `audit-NNNNNN.jsonl` in the configured directory; a new
// file starts when the current one passes `rotate_mb` (and at every
// daemon start, so one file never mixes runs). Appends are serialized
// by a mutex and never fail a query: I/O errors are counted
// (server.audit.errors) and the query response proceeds untouched.
//
// ReadAuditLog is the symmetric reader used by cfq_replay and tests:
// it accepts a single file or a directory (all audit-*.jsonl, in name
// order) and skips — but counts — malformed lines, so a torn final
// line from a crashed daemon does not poison the capture.

#ifndef CFQ_SERVER_AUDIT_LOG_H_
#define CFQ_SERVER_AUDIT_LOG_H_

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "server/json.h"

namespace cfq::server {

struct AuditLogOptions {
  std::string dir;        // Empty disables the log entirely.
  uint64_t rotate_mb = 64;  // Rotate when the current file exceeds this.
};

// One served query. Field names match the JSONL keys one to one.
struct AuditRecord {
  int64_t ts_us = 0;  // Unix epoch microseconds at query completion.
  uint64_t trace_id = 0;
  std::string client_trace_id;
  std::string dataset;
  uint64_t generation = 0;
  std::string strategy;
  std::string status;   // OK | PARSE_ERROR | TIMEOUT | ...
  std::string source;   // hit | cold | incremental-refresh.
  bool cached = false;
  std::string query;    // Canonical text when available, else as sent.
  std::string digest;   // 16 hex digits (obs/digest.h); empty on errors.
  uint64_t rows = 0;       // Rows in the response body.
  uint64_t num_pairs = 0;  // Pre-cap answer pairs.
  uint64_t max_rows = 0;     // Request's row cap; 0 = server default.
  uint64_t deadline_ms = 0;  // Request's deadline; 0 = server default.
  double elapsed_seconds = 0;
  JsonValue::Object phases;  // Phase name -> seconds (trace breakdown).

  JsonValue ToJson() const;
  std::string ToJsonLine() const;  // ToJson().Write(), no newline.

  // Decodes one line; malformed JSON or missing required fields
  // (dataset, query, status) are errors the reader skips.
  static Result<AuditRecord> Parse(const std::string& line);
};

class AuditLog {
 public:
  // `metrics` (not owned, may be null) receives server.audit.appended /
  // .rotations / .errors counters and a server.audit.bytes gauge.
  explicit AuditLog(const AuditLogOptions& options,
                    obs::MetricsRegistry* metrics = nullptr);

  // Creates the directory if needed and opens a fresh file numbered
  // after any existing audit-*.jsonl. Call once before Append.
  Status Open();

  // Appends one record (thread-safe). Never throws; write failures are
  // counted and dropped so serving is never blocked on the log.
  void Append(const AuditRecord& record);

  // Flushes the current file to the OS — the drain hook. Safe to call
  // repeatedly and on a never-opened log.
  void Flush();

  uint64_t appended() const;
  uint64_t rotations() const;
  uint64_t errors() const;
  std::string current_path() const;

 private:
  void RotateLocked();  // Opens audit-<next_index_>.jsonl.

  const AuditLogOptions options_;
  obs::MetricsRegistry* const metrics_;
  mutable std::mutex mu_;
  std::ofstream file_;
  std::string current_path_;
  uint64_t next_index_ = 1;
  uint64_t bytes_written_ = 0;  // In the current file.
  uint64_t appended_ = 0;
  uint64_t rotations_ = 0;
  uint64_t errors_ = 0;
};

struct AuditReadStats {
  size_t files = 0;
  size_t records = 0;
  size_t malformed = 0;  // Lines skipped (bad JSON / missing fields).
};

// Reads `path` — one .jsonl file, or a directory holding audit-*.jsonl
// (read in name order, which is rotation order). Malformed lines are
// skipped and counted in `stats` (may be null). Fails only when the
// path is unreadable or yields no audit files at all.
Result<std::vector<AuditRecord>> ReadAuditLog(const std::string& path,
                                              AuditReadStats* stats = nullptr);

}  // namespace cfq::server

#endif  // CFQ_SERVER_AUDIT_LOG_H_
