#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cfq::server {

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Status::Internal(
        "connect " + host + ":" + std::to_string(port) + ": " +
        std::strerror(errno));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Client client;
  client.fd_ = fd;
  return client;
}

Result<std::string> Client::CallRaw(const std::string& line) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  const std::string out = line + "\n";
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  char chunk[64 * 1024];
  while (true) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return response;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::Internal("server closed the connection mid-response");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<JsonValue> Client::Call(const JsonValue& request) {
  auto line = CallRaw(request.Write());
  if (!line.ok()) return line.status();
  return JsonValue::Parse(line.value());
}

}  // namespace cfq::server
