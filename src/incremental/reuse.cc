#include "incremental/reuse.h"

#include <algorithm>
#include <limits>

#include "obs/trace.h"

namespace cfq::incremental {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void FnvMix(uint64_t* h, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    *h ^= (value >> shift) & 0xff;
    *h *= kFnvPrime;
  }
}

}  // namespace

uint64_t FingerprintItemsets(const std::vector<Itemset>& sets) {
  uint64_t h = kFnvOffset;
  for (const Itemset& s : sets) {
    FnvMix(&h, s.size());
    for (ItemId item : s) FnvMix(&h, item);
  }
  return h;
}

uint64_t FingerprintFrequent(const std::vector<FrequentSet>& sets) {
  uint64_t h = kFnvOffset;
  for (const FrequentSet& f : sets) {
    FnvMix(&h, f.items.size());
    for (ItemId item : f.items) FnvMix(&h, item);
  }
  return h;
}

namespace {

uint64_t FingerprintItems(const Itemset& items) {
  uint64_t h = kFnvOffset;
  for (ItemId item : items) FnvMix(&h, item);
  return h;
}

}  // namespace

Result<Reduction> StateAnswerContext::GetReduction(
    const TwoVarConstraint& c, const Itemset& l1_s, const Itemset& l1_t,
    const ItemCatalog& catalog, bool nonnegative, ReuseStats* stats) {
  const std::string key = ToString(c) + "|" +
                          std::to_string(FingerprintItems(l1_s)) + "|" +
                          std::to_string(FingerprintItems(l1_t)) + "|" +
                          (nonnegative ? "n" : "z");
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = reductions_.find(key);
    if (it != reductions_.end()) {
      if (stats != nullptr) ++stats->reductions_reused;
      return it->second;
    }
  }
  auto reduction = ReduceTwoVar(c, l1_s, l1_t, catalog, nonnegative);
  if (!reduction.ok()) return reduction.status();
  if (stats != nullptr) ++stats->reductions_recomputed;
  std::lock_guard<std::mutex> lock(mu_);
  reductions_.emplace(key, reduction.value());
  return std::move(reduction).value();
}

Result<VkDetail> StateAnswerContext::GetVkDetail(
    const std::vector<FrequentSet>& frequent_k, size_t k,
    const std::string& attr, const ItemCatalog& catalog, ReuseStats* stats) {
  const std::string key = attr + "|" + std::to_string(k) + "|" +
                          std::to_string(FingerprintFrequent(frequent_k));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = vk_.find(key);
    if (it != vk_.end()) {
      if (stats != nullptr) ++stats->vk_levels_reused;
      return it->second;
    }
  }
  auto detail = ComputeVkDetail(frequent_k, k, attr, catalog);
  if (!detail.ok()) return detail.status();
  if (stats != nullptr) ++stats->vk_levels_recomputed;
  std::lock_guard<std::mutex> lock(mu_);
  vk_.emplace(key, detail.value());
  return std::move(detail).value();
}

size_t StateAnswerContext::reduction_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reductions_.size();
}

size_t StateAnswerContext::vk_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return vk_.size();
}

Result<VkAudit> AuditVkSeries(const std::vector<std::vector<FrequentSet>>& levels,
                              const std::string& attr,
                              const ItemCatalog& catalog,
                              StateAnswerContext* ctx, ReuseStats* stats,
                              obs::Tracer* tracer, char source_var) {
  VkAudit audit;
  // Exact max of sum(attr) per level, and suffix maxima: the truth each
  // V^k must dominate.
  std::vector<double> level_max(levels.size(),
                                -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < levels.size(); ++i) {
    for (const FrequentSet& f : levels[i]) {
      double sum = 0;
      for (ItemId item : f.items) {
        CFQ_ASSIGN_OR_RETURN(const double v, catalog.Value(attr, item));
        sum += v;
      }
      level_max[i] = std::max(level_max[i], sum);
    }
    audit.exact_max = std::max(audit.exact_max, level_max[i]);
  }
  std::vector<double> suffix_max(levels.size() + 1,
                                 -std::numeric_limits<double>::infinity());
  for (size_t i = levels.size(); i > 0; --i) {
    suffix_max[i - 1] = std::max(suffix_max[i], level_max[i - 1]);
  }

  double prefix_max = levels.empty()
                          ? 0
                          : std::max(0.0, level_max[0]);  // Levels < k.
  double folded = std::numeric_limits<double>::infinity();
  for (size_t k = 2; k <= levels.size(); ++k) {
    const std::vector<FrequentSet>& frequent_k = levels[k - 1];
    if (frequent_k.empty()) break;  // No set of size >= k exists.
    VkDetail detail;
    if (ctx != nullptr) {
      CFQ_ASSIGN_OR_RETURN(detail,
                           ctx->GetVkDetail(frequent_k, k, attr, catalog, stats));
    } else {
      CFQ_ASSIGN_OR_RETURN(detail, ComputeVkDetail(frequent_k, k, attr, catalog));
      if (stats != nullptr) ++stats->vk_levels_recomputed;
    }
    if (tracer != nullptr) {
      tracer->RecordJmax(obs::JmaxEvent{source_var, static_cast<uint32_t>(k),
                                        detail.jmax, detail.v_k});
    }
    audit.v_k.push_back(detail.v_k);
    folded = std::min(folded, detail.v_k);
    audit.folded.push_back(folded);
    // Soundness at level k: everything of size >= k is bounded by V^k.
    if (suffix_max[k - 1] > detail.v_k + 1e-9) audit.sound = false;
    // The in-force bound combines V^k with the exact max over the
    // already-enumerated shallower levels.
    if (audit.exact_max > std::max(prefix_max, detail.v_k) + 1e-9) {
      audit.sound = false;
    }
    prefix_max = std::max(prefix_max, level_max[k - 1]);
  }
  return audit;
}

}  // namespace cfq::incremental
