#include "incremental/refresh.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "mining/candidate_gen.h"
#include "obs/trace.h"

namespace cfq::incremental {

namespace {

// Recorded generation-g knowledge about one itemset.
struct OldEntry {
  uint64_t support = 0;
  bool was_frequent = false;
};

using OldLevelMap = std::unordered_map<Itemset, OldEntry, ItemsetHash>;

OldLevelMap IndexLevel(const LevelState& level) {
  OldLevelMap map;
  map.reserve(level.frequent.size() + level.border.size());
  for (const FrequentSet& f : level.frequent) {
    map.emplace(f.items, OldEntry{f.support, true});
  }
  for (const FrequentSet& f : level.border) {
    map.emplace(f.items, OldEntry{f.support, false});
  }
  return map;
}

// Delta supports for the bitmap backend, computed directly on the FULL
// database's vertical index restricted to the delta's word range
// [delta_begin >> 6, num_words). No delta copy of the database is
// built: the delta ends at the database tail, so the tail invariant of
// Bitset64 means only the head word needs a mask and the vectorized
// kernels run unmasked over the rest. Exact integers, so results match
// counting a materialized delta database bit for bit.
std::vector<uint64_t> CountDeltaRanged(TransactionDb* db,
                                       const std::vector<Itemset>& batch,
                                       size_t delta_begin, ThreadPool* pool) {
  std::vector<uint64_t> supports(batch.size(), 0);
  if (batch.empty()) return supports;
  db->EnsureVerticalIndex(pool);
  const size_t delta_end = db->num_transactions();
  const size_t w0 = delta_begin >> 6;
  const size_t len = (delta_end + 63) / 64 - w0;
  const uint64_t head_mask = (delta_begin & 63)
                                 ? (~uint64_t{0} << (delta_begin & 63))
                                 : ~uint64_t{0};
  // Same shape as BitmapCounter::CountRange: runs of sorted siblings
  // share one prefix intersection (over the delta words only) and are
  // counted through the fused multi-way kernel.
  auto count_range = [&](size_t begin, size_t end) {
    std::vector<uint64_t> prefix(len);
    std::vector<const uint64_t*> tails;
    size_t i = begin;
    while (i < end) {
      const Itemset& c = batch[i];
      if (c.size() == 1) {
        supports[i] = db->vertical(c[0]).CountRange(delta_begin, delta_end);
        ++i;
        continue;
      }
      size_t run_end = i + 1;
      while (run_end < end && batch[run_end].size() == c.size() &&
             std::equal(c.begin(), c.end() - 1, batch[run_end].begin())) {
        ++run_end;
      }
      const uint64_t* first = db->vertical(c[0]).words() + w0;
      std::copy(first, first + len, prefix.begin());
      prefix[0] &= head_mask;
      for (size_t j = 1; j + 1 < c.size(); ++j) {
        simd::AndWith(prefix.data(), db->vertical(c[j]).words() + w0, len);
      }
      tails.clear();
      for (size_t j = i; j < run_end; ++j) {
        tails.push_back(db->vertical(batch[j].back()).words() + w0);
      }
      simd::AndCountMany(prefix.data(), tails.data(), tails.size(), len,
                         supports.data() + i);
      i = run_end;
    }
  };
  if (pool == nullptr || pool->num_threads() <= 1 || batch.size() < 64) {
    count_range(0, batch.size());
  } else {
    pool->ParallelFor(batch.size(), count_range);
  }
  return supports;
}

}  // namespace

size_t RefreshStats::LevelsChanged() const {
  size_t n = 0;
  for (bool changed : level_changed) {
    if (changed) ++n;
  }
  return n;
}

Result<RefreshOutcome> RefreshMiningState(const MiningState& old_state,
                                          TransactionDb* db,
                                          size_t delta_begin, size_t delta_end,
                                          uint64_t new_generation,
                                          uint64_t new_min_support,
                                          const IncrOptions& options) {
  if (new_min_support == 0) {
    return Status::InvalidArgument("min_support must be > 0");
  }
  if (old_state.num_transactions != delta_begin) {
    return Status::InvalidArgument(
        "delta does not start at the old state's boundary: state covers " +
        std::to_string(old_state.num_transactions) + " transactions, delta " +
        "begins at " + std::to_string(delta_begin));
  }
  if (delta_end < delta_begin || db->num_transactions() != delta_end) {
    return Status::InvalidArgument(
        "delta [" + std::to_string(delta_begin) + ", " +
        std::to_string(delta_end) + ") does not end at the database tail (" +
        std::to_string(db->num_transactions()) + " transactions)");
  }

  Stopwatch wall;
  RefreshOutcome out;
  RefreshStats& stats = out.stats;
  stats.delta_transactions = delta_end - delta_begin;

  MiningState& state = out.state;
  state.generation = new_generation;
  state.min_support = new_min_support;
  state.num_transactions = delta_end;
  state.domain = old_state.domain;

  // Delta supports are exact integers either way, so both paths are
  // bit-identical at every thread count. The bitmap backend counts the
  // delta in place on the full database's vertical index, restricted to
  // the delta's word range (CountDeltaRanged above); hash backends
  // still materialize the delta as its own little database.
  const bool has_delta = delta_end > delta_begin;
  const bool ranged_delta =
      has_delta && options.counter == CounterKind::kBitmap;
  TransactionDb delta_db(db->num_items());
  std::unique_ptr<SupportCounter> delta_counter;
  if (has_delta && !ranged_delta) {
    for (size_t tid = delta_begin; tid < delta_end; ++tid) {
      delta_db.Add(db->transaction(tid));
    }
    delta_counter = MakeCounter(options.counter, &delta_db, options.pool);
  }
  // Full-database counter for never-before-counted candidates, built
  // lazily: a refresh that promotes nothing never pays for it (for the
  // bitmap backend, construction materializes the vertical index).
  std::unique_ptr<SupportCounter> full_counter;

  // Same candidate recurrence as a scratch run: domain singletons, then
  // join+prune over the NEW frequent sets. That makes the refreshed
  // state's candidate stream — and so its border — identical to
  // BuildMiningState on the grown database.
  std::vector<Itemset> candidates;
  candidates.reserve(state.domain.size());
  for (ItemId item : state.domain) candidates.push_back(Itemset{item});

  size_t level_index = 0;  // k - 1
  while (!candidates.empty()) {
    Status live = CheckCancel(options.cancel, "incremental refresh level");
    if (!live.ok()) return live;

    const OldLevelMap old_map =
        level_index < old_state.levels.size()
            ? IndexLevel(old_state.levels[level_index])
            : OldLevelMap{};

    // Partition this level's candidates by provenance, preserving the
    // candidate order for the final merge.
    obs::TraceSpan level_span(options.tracer, "refresh.level");
    std::vector<size_t> known_idx, fresh_idx;
    std::vector<const OldEntry*> known_entries;
    for (size_t i = 0; i < candidates.size(); ++i) {
      auto it = old_map.find(candidates[i]);
      if (it != old_map.end()) {
        known_idx.push_back(i);
        known_entries.push_back(&it->second);
      } else {
        fresh_idx.push_back(i);
      }
    }

    std::vector<uint64_t> supports(candidates.size(), 0);
    if (!known_idx.empty()) {
      if (has_delta) {
        obs::TraceSpan recount_span(options.tracer, "refresh.recount");
        Stopwatch recount_wall;
        std::vector<Itemset> batch;
        batch.reserve(known_idx.size());
        for (size_t i : known_idx) batch.push_back(candidates[i]);
        const std::vector<uint64_t> delta_supports =
            ranged_delta
                ? CountDeltaRanged(db, batch, delta_begin, options.pool)
                : delta_counter->Count(batch, nullptr);
        for (size_t j = 0; j < known_idx.size(); ++j) {
          supports[known_idx[j]] =
              known_entries[j]->support + delta_supports[j];
        }
        stats.recounted += known_idx.size();
        if (options.metrics != nullptr) {
          options.metrics->Observe("incr.delta.recount_seconds",
                                   recount_wall.ElapsedSeconds());
          if (ranged_delta) {
            options.metrics->Add("incr.delta.ranged_recounts");
          }
        }
      } else {
        for (size_t j = 0; j < known_idx.size(); ++j) {
          supports[known_idx[j]] = known_entries[j]->support;
        }
        stats.reused += known_idx.size();
      }
    }
    if (!fresh_idx.empty()) {
      // Bounded re-expansion: these candidates exist only because the
      // delta promoted one of their subsets, so they were never counted
      // at the old generation and need the full database.
      obs::TraceSpan expand_span(options.tracer, "refresh.expand");
      Stopwatch expand_wall;
      if (full_counter == nullptr) {
        full_counter = MakeCounter(options.counter, db, options.pool);
      }
      std::vector<Itemset> batch;
      batch.reserve(fresh_idx.size());
      for (size_t i : fresh_idx) batch.push_back(candidates[i]);
      const std::vector<uint64_t> full_supports =
          full_counter->Count(batch, nullptr);
      for (size_t j = 0; j < fresh_idx.size(); ++j) {
        supports[fresh_idx[j]] = full_supports[j];
      }
      stats.fresh += fresh_idx.size();
      if (options.metrics != nullptr) {
        options.metrics->Observe("incr.expand.count_seconds",
                                 expand_wall.ElapsedSeconds());
      }
    }

    LevelState level;
    {
      Stopwatch partition_wall;
      obs::TraceSpan partition_span(options.tracer, "refresh.partition");
      for (size_t i = 0; i < candidates.size(); ++i) {
        FrequentSet set{candidates[i], supports[i]};
        const bool frequent_now = supports[i] >= new_min_support;
        auto it = old_map.find(candidates[i]);
        const bool was_frequent =
            it != old_map.end() && it->second.was_frequent;
        if (frequent_now && !was_frequent) ++stats.promoted;
        if (frequent_now) {
          level.frequent.push_back(std::move(set));
        } else {
          level.border.push_back(std::move(set));
        }
      }

      // Demotions and the changed-level flag compare against the old
      // FREQUENT list as a whole: an old frequent set that was not even
      // regenerated (its subset demoted first) still counts as demoted.
      bool changed = level_index >= old_state.levels.size();
      uint64_t kept_old = 0;
      if (!changed) {
        const std::vector<FrequentSet>& old_frequent =
            old_state.levels[level_index].frequent;
        for (const FrequentSet& f : level.frequent) {
          auto it = old_map.find(f.items);
          if (it != old_map.end() && it->second.was_frequent) ++kept_old;
        }
        stats.demoted += old_frequent.size() - kept_old;
        changed = old_frequent.size() != level.frequent.size() ||
                  kept_old != old_frequent.size();
      }
      stats.level_changed.push_back(changed);
      if (options.metrics != nullptr) {
        options.metrics->Observe("incr.level.partition_seconds",
                                 partition_wall.ElapsedSeconds());
      }
    }

    {
      Stopwatch candidate_wall;
      obs::TraceSpan candidate_span(options.tracer, "refresh.candidate_gen");
      std::vector<Itemset> frequent_items;
      frequent_items.reserve(level.frequent.size());
      for (const FrequentSet& f : level.frequent) {
        frequent_items.push_back(f.items);
      }
      state.levels.push_back(std::move(level));
      candidates = GenerateCandidatesJoinPrune(frequent_items);
      if (options.metrics != nullptr) {
        options.metrics->Observe("incr.level.candidate_gen_seconds",
                                 candidate_wall.ElapsedSeconds());
      }
    }
    ++level_index;
  }

  // Old levels past the last refreshed one died in a demotion cascade:
  // their every frequent set lost a frequent subset, so none were
  // regenerated. They are all demotions, and those levels changed.
  for (size_t k = state.levels.size(); k < old_state.levels.size(); ++k) {
    stats.demoted += old_state.levels[k].frequent.size();
    stats.level_changed.push_back(!old_state.levels[k].frequent.empty());
  }

  stats.seconds = wall.ElapsedSeconds();
  if (options.tracer != nullptr) {
    obs::DeltaEvent event;
    event.from_generation = old_state.generation;
    event.to_generation = new_generation;
    event.delta_transactions = stats.delta_transactions;
    event.recounted = stats.recounted;
    event.fresh = stats.fresh;
    event.reused = stats.reused;
    event.promoted = stats.promoted;
    event.demoted = stats.demoted;
    options.tracer->RecordDelta(event);
  }
  if (options.metrics != nullptr) {
    options.metrics->Observe("incr.refresh_seconds", stats.seconds);
    options.metrics->Add("incr.refreshes");
    options.metrics->Add("incr.sets.recounted", stats.recounted);
    options.metrics->Add("incr.sets.reused", stats.reused);
    options.metrics->Add("incr.sets.fresh", stats.fresh);
    options.metrics->Add("incr.promoted", stats.promoted);
    options.metrics->Add("incr.demoted", stats.demoted);
  }
  return out;
}

}  // namespace cfq::incremental
