#include "incremental/state_cache.h"

#include <utility>
#include <vector>

namespace cfq::incremental {

std::string MiningStateCache::Key(const std::string& dataset,
                                  uint64_t generation, uint64_t min_support) {
  return dataset + "@" + std::to_string(generation) +
         "|minsup=" + std::to_string(min_support);
}

std::shared_ptr<const CachedState> MiningStateCache::Get(
    const std::string& dataset, uint64_t generation, uint64_t min_support) {
  const std::string key = Key(dataset, generation, min_support);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    if (metrics_ != nullptr) metrics_->Add("incr.state_cache.misses");
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  if (metrics_ != nullptr) metrics_->Add("incr.state_cache.hits");
  return it->second->value;
}

std::shared_ptr<const CachedState> MiningStateCache::FindAncestor(
    const std::string& dataset, const DeltaLog& log,
    uint64_t target_generation, uint64_t min_support) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t gen : log.GenerationsNewestFirst()) {
    if (gen > target_generation) continue;
    // Closest usable threshold at this generation: the largest cached
    // minsup not exceeding the required one.
    const Entry* best = nullptr;
    for (const Entry& e : lru_) {
      if (e.dataset != dataset || e.generation != gen ||
          e.min_support > min_support) {
        continue;
      }
      if (best == nullptr || e.min_support > best->min_support) best = &e;
    }
    if (best != nullptr) return best->value;
  }
  return nullptr;
}

void MiningStateCache::Put(const std::string& dataset, MiningState state,
                           std::shared_ptr<StateAnswerContext> ctx) {
  if (capacity_ == 0) return;
  Entry entry;
  entry.key = Key(dataset, state.generation, state.min_support);
  entry.dataset = dataset;
  entry.generation = state.generation;
  entry.min_support = state.min_support;
  auto cached = std::make_shared<CachedState>();
  cached->state = std::move(state);
  cached->ctx = std::move(ctx);
  entry.value = std::move(cached);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(entry.key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    *it->second = std::move(entry);
    RecordGauge();
    return;
  }
  lru_.push_front(std::move(entry));
  index_[lru_.front().key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    if (metrics_ != nullptr) metrics_->Add("incr.state_cache.evictions");
  }
  RecordGauge();
}

size_t MiningStateCache::PurgeDataset(const std::string& dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t purged = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->dataset == dataset) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  if (purged > 0 && metrics_ != nullptr) {
    metrics_->Add("incr.state_cache.purged", purged);
  }
  RecordGauge();
  return purged;
}

std::shared_ptr<StateAnswerContext> MiningStateCache::ContextFor(
    const std::string& dataset) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : lru_) {
      if (e.dataset == dataset && e.value != nullptr &&
          e.value->ctx != nullptr) {
        return e.value->ctx;
      }
    }
  }
  return std::make_shared<StateAnswerContext>();
}

uint64_t MiningStateCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t MiningStateCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t MiningStateCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t MiningStateCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void MiningStateCache::RecordGauge() {
  if (metrics_ != nullptr) {
    metrics_->SetGauge("incr.state_cache.size",
                       static_cast<double>(lru_.size()));
  }
}

}  // namespace cfq::incremental
