// DeltaLog: the append lineage of a growing transaction database.
//
// A dataset that grows in place moves through generations: generation g
// covers transactions [0, size_at(g)), and each append extends the tail
// and bumps the generation. The log records one contiguous TID range
// per append so the incremental miner (refresh.h) can ask "what changed
// between generation g and generation g'?" and recount exactly those
// transactions instead of re-mining the world.
//
// Logs are value types: Extend returns a new log sharing the history,
// so the serving catalog can publish an immutable log per generation
// while in-flight queries keep reading the one they started with.

#ifndef CFQ_INCREMENTAL_DELTA_LOG_H_
#define CFQ_INCREMENTAL_DELTA_LOG_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace cfq::incremental {

// One append: `generation` first covers TIDs [tid_begin, tid_end).
struct DeltaRange {
  uint64_t generation = 0;
  size_t tid_begin = 0;
  size_t tid_end = 0;
};

// The contiguous tail appended between two generations of one lineage.
struct DeltaSpan {
  size_t tid_begin = 0;
  size_t tid_end = 0;
  size_t size() const { return tid_end - tid_begin; }
  bool empty() const { return tid_begin == tid_end; }
};

class DeltaLog {
 public:
  // A fresh lineage: `generation` covers [0, num_transactions) with no
  // recorded appends (load/gen/register start here).
  static DeltaLog Base(uint64_t generation, size_t num_transactions);

  // Returns a log extended by one append of `appended` transactions
  // under `new_generation`. Generations must be strictly increasing
  // along the lineage.
  DeltaLog Extend(uint64_t new_generation, size_t appended) const;

  uint64_t base_generation() const { return base_generation_; }
  uint64_t generation() const {
    return ranges_.empty() ? base_generation_ : ranges_.back().generation;
  }
  const std::vector<DeltaRange>& ranges() const { return ranges_; }

  // True when `generation` is a recorded point of this lineage (the
  // base or any append).
  bool Contains(uint64_t generation) const;

  // Database size as of `generation`; nullopt when the generation is
  // not part of this lineage.
  std::optional<size_t> SizeAt(uint64_t generation) const;

  // The TID span appended after `from_generation`, up to and including
  // `to_generation`. Empty span when the generations are equal; nullopt
  // when either generation is not part of this lineage or they are out
  // of order. Appends are contiguous at the tail, so the union of the
  // intervening ranges is always one span.
  std::optional<DeltaSpan> Between(uint64_t from_generation,
                                   uint64_t to_generation) const;

  // Generations of this lineage, newest first (for ancestor lookups in
  // the mining-state cache).
  std::vector<uint64_t> GenerationsNewestFirst() const;

 private:
  uint64_t base_generation_ = 0;
  size_t base_size_ = 0;
  std::vector<DeltaRange> ranges_;
};

}  // namespace cfq::incremental

#endif  // CFQ_INCREMENTAL_DELTA_LOG_H_
