// FUP-style incremental maintenance of a MiningState.
//
// When a database grows from generation g (N transactions) to
// generation g' (N' transactions) by appending the tail [N, N'), the
// support of every itemset decomposes as
//
//   sup_{g'}(X) = sup_g(X) + sup_delta(X)
//
// so any set whose generation-g support is already recorded — every
// frequent set AND every negative-border set in the MiningState — needs
// only a count over the delta, which is typically a small fraction of
// the database. Only candidates the old run never counted (their
// generation was blocked by a then-infrequent subset that the delta
// promoted) require a full count, and bounded re-expansion touches just
// those.
//
// The refresh also accepts a NEW minimum support. Appends can only grow
// absolute supports, so at a fixed threshold demotion is impossible;
// raising the threshold is how previously frequent sets demote (and how
// the server re-thresholds a cached lower-minsup state, possibly over
// an empty delta). The recurrence is identical either way.
//
// Identity guarantee: the refreshed state is bit-identical — same
// levels, same sets in the same order, same supports — to
// BuildMiningState run from scratch on the grown database at the new
// threshold. Candidates are regenerated level by level with the same
// join+prune as a scratch run; only the SOURCE of each support differs
// (reuse + delta count vs full count). tests/incremental_test.cc holds
// this across backends and thread counts.

#ifndef CFQ_INCREMENTAL_REFRESH_H_
#define CFQ_INCREMENTAL_REFRESH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/transaction_db.h"
#include "incremental/mining_state.h"

namespace cfq::incremental {

struct RefreshStats {
  uint64_t delta_transactions = 0;
  // Support provenance, in sets: `recounted` had a recorded old support
  // plus a delta count, `reused` had a recorded old support and an
  // empty delta (no counting at all), `fresh` were never counted at the
  // old generation and got a full count.
  uint64_t recounted = 0;
  uint64_t reused = 0;
  uint64_t fresh = 0;
  // Sets that crossed the (possibly new) threshold: promoted are
  // frequent now but were not frequent before; demoted were frequent
  // before but are not now (only reachable with a raised threshold).
  uint64_t promoted = 0;
  uint64_t demoted = 0;
  double seconds = 0;
  // level_changed[k-1] is true when the size-k FREQUENT ITEMSETS (items
  // only; supports are expected to move) differ from the old state.
  // Downstream per-level derivations (Vk series, reductions) only need
  // recomputing for changed levels — reuse.h keys off this.
  std::vector<bool> level_changed;
  size_t LevelsChanged() const;
};

struct RefreshOutcome {
  MiningState state;
  RefreshStats stats;
};

// Advances `old_state` across the appended TID range [delta_begin,
// delta_end) of `db` (which must already contain the delta), producing
// the state at `new_generation` / `new_min_support`.
//
// Requirements: old_state.num_transactions == delta_begin,
// db->num_transactions() == delta_end, new_min_support > 0, and the
// domain is the old state's domain. An empty delta with a changed
// threshold is the pure re-threshold refresh.
Result<RefreshOutcome> RefreshMiningState(const MiningState& old_state,
                                          TransactionDb* db,
                                          size_t delta_begin, size_t delta_end,
                                          uint64_t new_generation,
                                          uint64_t new_min_support,
                                          const IncrOptions& options = {});

}  // namespace cfq::incremental

#endif  // CFQ_INCREMENTAL_REFRESH_H_
