// Generation-aware reuse of per-level derivations.
//
// The expensive by-products of answering a CFQ from a MiningState —
// quasi-succinct reductions (whose constants come from the level-1
// frequent singletons) and the Jmax V^k series (one bound per lattice
// level) — depend only on WHICH itemsets are frequent, not on their
// supports. After an incremental refresh most levels' frequent sets are
// unchanged, so a StateAnswerContext caches each derivation under a
// fingerprint of its actual inputs: a reduction under the two L1 item
// lists, a V^k value under that level's frequent itemsets. A refresh
// that changes two levels recomputes exactly two V^k entries and hits
// the cache for the rest; ReuseStats reports the split.
//
// AuditVkSeries is the monotonicity/soundness check the refresh path
// re-runs over changed levels: the folded V^k series must be
// non-increasing, and at every level k the bound max(exact max below k,
// V^k) must dominate the exact max of sum(attr) over frequent sets of
// size >= k. A violation means a maintained state diverged from what
// the bound was derived for — it is surfaced as an error, not a warning.

#ifndef CFQ_INCREMENTAL_REUSE_H_
#define CFQ_INCREMENTAL_REUSE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/itemset.h"
#include "common/result.h"
#include "core/jmax.h"
#include "core/reduction.h"
#include "data/item_catalog.h"
#include "mining/apriori.h"

namespace cfq::obs {
class Tracer;
}  // namespace cfq::obs

namespace cfq::incremental {

struct ReuseStats {
  uint64_t reductions_reused = 0;
  uint64_t reductions_recomputed = 0;
  uint64_t vk_levels_reused = 0;
  uint64_t vk_levels_recomputed = 0;

  void MergeFrom(const ReuseStats& other) {
    reductions_reused += other.reductions_reused;
    reductions_recomputed += other.reductions_recomputed;
    vk_levels_reused += other.vk_levels_reused;
    vk_levels_recomputed += other.vk_levels_recomputed;
  }
};

// FNV-1a over the itemset stream (each set's size then its ids), so two
// level snapshots with the same sets in the same order collide only by
// hash accident. Supports are deliberately excluded: the derivations
// cached under these fingerprints do not read them.
uint64_t FingerprintItemsets(const std::vector<Itemset>& sets);
uint64_t FingerprintFrequent(const std::vector<FrequentSet>& sets);

// Shared, thread-safe derivation cache. One context is scoped to a
// dataset LINEAGE (the ItemCatalog never changes across appends), so
// the mining-state cache threads the same context through every
// generation of a dataset and cross-generation reuse falls out of the
// fingerprint keys.
class StateAnswerContext {
 public:
  // ReduceTwoVar memoized under (constraint text, fp(l1_s), fp(l1_t),
  // nonnegative). `stats` (may be null) is bumped on the hit/miss path.
  Result<Reduction> GetReduction(const TwoVarConstraint& c,
                                 const Itemset& l1_s, const Itemset& l1_t,
                                 const ItemCatalog& catalog, bool nonnegative,
                                 ReuseStats* stats);

  // ComputeVkDetail memoized under (attr, k, fp(frequent_k items)).
  Result<VkDetail> GetVkDetail(const std::vector<FrequentSet>& frequent_k,
                               size_t k, const std::string& attr,
                               const ItemCatalog& catalog, ReuseStats* stats);

  size_t reduction_entries() const;
  size_t vk_entries() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, Reduction> reductions_;
  std::unordered_map<std::string, VkDetail> vk_;
};

struct VkAudit {
  // v_k[i] bounds levels >= i + 2 (the series starts at k = 2).
  std::vector<double> v_k;
  // Min-prefix fold of v_k — the bound actually in force at each level,
  // non-increasing by construction.
  std::vector<double> folded;
  double exact_max = 0;  // Max sum(attr) over every frequent set.
  bool sound = true;
};

// Computes the V^k series over `levels` (levels[k-1] = frequent size-k
// sets) for `attr`, through `ctx`'s cache when non-null, and verifies
// soundness level by level. Emits a JmaxEvent per computed level when
// `tracer` is non-null, tagged `source_var`.
Result<VkAudit> AuditVkSeries(const std::vector<std::vector<FrequentSet>>& levels,
                              const std::string& attr,
                              const ItemCatalog& catalog,
                              StateAnswerContext* ctx, ReuseStats* stats,
                              obs::Tracer* tracer = nullptr,
                              char source_var = '?');

}  // namespace cfq::incremental

#endif  // CFQ_INCREMENTAL_REUSE_H_
