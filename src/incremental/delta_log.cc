#include "incremental/delta_log.h"

#include <cassert>

namespace cfq::incremental {

DeltaLog DeltaLog::Base(uint64_t generation, size_t num_transactions) {
  DeltaLog log;
  log.base_generation_ = generation;
  log.base_size_ = num_transactions;
  return log;
}

DeltaLog DeltaLog::Extend(uint64_t new_generation, size_t appended) const {
  assert(new_generation > generation());
  DeltaLog out = *this;
  const size_t tail = out.ranges_.empty() ? out.base_size_
                                          : out.ranges_.back().tid_end;
  out.ranges_.push_back({new_generation, tail, tail + appended});
  return out;
}

bool DeltaLog::Contains(uint64_t generation) const {
  return SizeAt(generation).has_value();
}

std::optional<size_t> DeltaLog::SizeAt(uint64_t generation) const {
  if (generation == base_generation_) return base_size_;
  for (const DeltaRange& r : ranges_) {
    if (r.generation == generation) return r.tid_end;
  }
  return std::nullopt;
}

std::optional<DeltaSpan> DeltaLog::Between(uint64_t from_generation,
                                           uint64_t to_generation) const {
  const std::optional<size_t> from = SizeAt(from_generation);
  const std::optional<size_t> to = SizeAt(to_generation);
  if (!from.has_value() || !to.has_value() || *from > *to ||
      from_generation > to_generation) {
    return std::nullopt;
  }
  return DeltaSpan{*from, *to};
}

std::vector<uint64_t> DeltaLog::GenerationsNewestFirst() const {
  std::vector<uint64_t> out;
  out.reserve(ranges_.size() + 1);
  for (auto it = ranges_.rbegin(); it != ranges_.rend(); ++it) {
    out.push_back(it->generation);
  }
  out.push_back(base_generation_);
  return out;
}

}  // namespace cfq::incremental
