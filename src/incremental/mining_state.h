// MiningState: the persistent artifact of one frequent-set mining run,
// rich enough to be maintained incrementally.
//
// A plain AprioriResult keeps only the frequent sets; FUP-style
// maintenance (Cheung et al., ICDE'96) additionally needs the NEGATIVE
// BORDER — every candidate that was generated and counted but fell
// short of minsup — with its exact support. When transactions are
// appended, the supports of both groups over the delta are enough to
// decide every promotion; only candidates that were never counted at
// all (those whose generation was blocked by a then-infrequent subset)
// need a full count, and there are few of them. refresh.h implements
// that recurrence; this header defines the state it maintains and the
// from-scratch construction it must stay bit-identical to.

#ifndef CFQ_INCREMENTAL_MINING_STATE_H_
#define CFQ_INCREMENTAL_MINING_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/itemset.h"
#include "common/result.h"
#include "data/transaction_db.h"
#include "mining/apriori.h"
#include "mining/counter.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cfq::incremental {

// One lattice level k (stored at levels[k-1]): the frequent size-k sets
// and the counted-but-infrequent ones (the negative border at this
// level). Both are in candidate-generation order, which is
// lexicographic — the order every from-scratch run produces — so state
// equality is plain vector equality.
struct LevelState {
  std::vector<FrequentSet> frequent;
  std::vector<FrequentSet> border;
};

struct MiningState {
  uint64_t generation = 0;
  uint64_t min_support = 0;
  // Database size this state was counted over; an incremental refresh
  // must start exactly at this TID.
  uint64_t num_transactions = 0;
  Itemset domain;
  std::vector<LevelState> levels;

  // All frequent sets flattened in level order — the same shape
  // MineFrequent returns, for handoff into the answer pipeline.
  std::vector<FrequentSet> AllFrequent() const;
  size_t TotalFrequent() const;
  size_t TotalBorder() const;
};

// Shared knobs for state construction and refresh.
struct IncrOptions {
  CounterKind counter = CounterKind::kBitmap;
  // Shard-parallel counting pool (not owned; null counts serially).
  // Supports are bit-identical at every thread count.
  ThreadPool* pool = nullptr;
  obs::Tracer* tracer = nullptr;          // Not owned; may be null.
  obs::MetricsRegistry* metrics = nullptr;  // Not owned; may be null.
  const CancelToken* cancel = nullptr;    // Polled at level boundaries.
};

// Mines `domain` over the full database from scratch, keeping the
// negative border alongside the frequent sets. The frequent sets equal
// MineFrequent(db, domain, min_support) exactly (same candidates, same
// counts, same order). `generation` is recorded verbatim.
Result<MiningState> BuildMiningState(TransactionDb* db, const Itemset& domain,
                                     uint64_t min_support, uint64_t generation,
                                     const IncrOptions& options = {});

// Deep equality including supports; used by the identity tests and the
// incremental-vs-scratch correctness gate.
bool StatesIdentical(const MiningState& a, const MiningState& b);

// Human-readable one-line summary ("gen=3 minsup=5 levels=4 freq=120
// border=37") for logs and test failure messages.
std::string Summarize(const MiningState& state);

}  // namespace cfq::incremental

#endif  // CFQ_INCREMENTAL_MINING_STATE_H_
