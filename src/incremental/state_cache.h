// MiningStateCache: LRU of maintained MiningStates, keyed by dataset
// lineage, generation and threshold.
//
// The serving layer uses this to turn appends into incremental work:
// when a query arrives for dataset@g' and no state exists there, the
// cache walks the dataset's DeltaLog lineage newest-first looking for
// an ancestor state — same dataset, generation <= g', threshold <= the
// required one (FUP can raise a threshold over a delta but never lower
// it, because supports below the old threshold were never retained
// below the border) — and the service refreshes from that ancestor over
// the recorded delta span instead of mining from scratch.
//
// Entries are immutable after Put (shared_ptr<const CachedState>), so a
// refresh in one request never perturbs a concurrent reader. The
// per-lineage StateAnswerContext rides along: every generation of a
// dataset shares one derivation cache, which is what makes unchanged-
// level V^k values and reductions survive appends.

#ifndef CFQ_INCREMENTAL_STATE_CACHE_H_
#define CFQ_INCREMENTAL_STATE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "incremental/delta_log.h"
#include "incremental/mining_state.h"
#include "incremental/reuse.h"
#include "obs/metrics.h"

namespace cfq::incremental {

struct CachedState {
  MiningState state;
  // Lineage-shared derivation cache (never null for a cache-produced
  // entry); internally synchronized.
  std::shared_ptr<StateAnswerContext> ctx;
};

class MiningStateCache {
 public:
  // `capacity` = max entries; 0 disables caching. `metrics` (not owned,
  // may be null) receives incr.state_cache.{hits,misses,evictions,
  // purged} counters and an incr.state_cache.size gauge.
  explicit MiningStateCache(size_t capacity,
                            obs::MetricsRegistry* metrics = nullptr)
      : capacity_(capacity), metrics_(metrics) {}

  static std::string Key(const std::string& dataset, uint64_t generation,
                         uint64_t min_support);

  // Exact lookup; promotes to most-recent. Null on miss.
  std::shared_ptr<const CachedState> Get(const std::string& dataset,
                                         uint64_t generation,
                                         uint64_t min_support);

  // Best refresh ancestor for (dataset, target_generation, min_support):
  // walks `log`'s generations newest-first (skipping those newer than
  // the target) and within a generation prefers the largest cached
  // threshold <= min_support (the closest state, so the re-threshold
  // demotes the least). Does NOT promote the entry (a refresh source is
  // not a serving hit). Null when no usable ancestor is cached.
  std::shared_ptr<const CachedState> FindAncestor(const std::string& dataset,
                                                  const DeltaLog& log,
                                                  uint64_t target_generation,
                                                  uint64_t min_support);

  // Inserts `state` (with its lineage context) for `dataset`, evicting
  // the least recently used entry when over capacity.
  void Put(const std::string& dataset, MiningState state,
           std::shared_ptr<StateAnswerContext> ctx);

  // Drops every entry of `dataset` (catalog Drop / rebind). Returns the
  // number purged.
  size_t PurgeDataset(const std::string& dataset);

  // The lineage's shared derivation context: returns the context any
  // cached entry of `dataset` carries, or a fresh one (not yet attached
  // to anything) when none is cached.
  std::shared_ptr<StateAnswerContext> ContextFor(const std::string& dataset);

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    std::string dataset;
    uint64_t generation = 0;
    uint64_t min_support = 0;
    std::shared_ptr<const CachedState> value;
  };

  void RecordGauge();  // mu_ held.

  const size_t capacity_;
  obs::MetricsRegistry* const metrics_;
  mutable std::mutex mu_;
  // Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace cfq::incremental

#endif  // CFQ_INCREMENTAL_STATE_CACHE_H_
