#include "incremental/answer.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "constraints/eval.h"
#include "core/reduction.h"
#include "obs/trace.h"

namespace cfq::incremental {

namespace {

// Filters the state's frequent sets into one query side, preserving the
// state's (level-ascending, lex-within-level) order — the order mining
// the side directly would produce. `closed_by_level` receives the sets
// surviving the ANTI-MONOTONE filters only (domain restriction and the
// side threshold); that family is frequency-closed, which is what the
// reduction constants and the V^k audit require — the returned side
// sets additionally pass the (not necessarily anti-monotone) 1-var
// constraints and are what the answer reports.
Result<std::vector<FrequentSet>> FilterSide(
    const MiningState& state, const Itemset& domain, Var var,
    uint64_t min_support, const std::vector<OneVarConstraint>& one_var,
    const ItemCatalog& catalog,
    std::vector<std::vector<FrequentSet>>* closed_by_level) {
  std::vector<FrequentSet> out;
  for (const LevelState& level : state.levels) {
    std::vector<FrequentSet> closed;
    for (const FrequentSet& f : level.frequent) {
      if (f.support < min_support || !IsSubset(f.items, domain)) continue;
      closed.push_back(f);
      CFQ_ASSIGN_OR_RETURN(const bool valid,
                           EvalAll(one_var, var, f.items, catalog));
      if (valid) out.push_back(f);
    }
    closed_by_level->push_back(std::move(closed));
  }
  // Closure means a trailing empty level implies nothing deeper; keep
  // the level list tight for the audit.
  while (!closed_by_level->empty() && closed_by_level->back().empty()) {
    closed_by_level->pop_back();
  }
  return out;
}

Itemset SingletonItems(const std::vector<std::vector<FrequentSet>>& by_level) {
  Itemset out;
  if (by_level.empty()) return out;
  out.reserve(by_level[0].size());
  for (const FrequentSet& f : by_level[0]) out.push_back(f.items[0]);
  return MakeItemset(std::move(out));
}

}  // namespace

Result<CfqResult> AnswerFromState(const MiningState& state,
                                  const ItemCatalog& catalog,
                                  const CfqQuery& query,
                                  const StateAnswerOptions& options) {
  if (!IsSubset(query.s_domain, state.domain) ||
      !IsSubset(query.t_domain, state.domain)) {
    return Status::InvalidArgument(
        "query domain is not covered by the mining state's domain");
  }
  if (query.min_support_s < state.min_support ||
      query.min_support_t < state.min_support) {
    return Status::InvalidArgument(
        "query threshold " +
        std::to_string(std::min(query.min_support_s, query.min_support_t)) +
        " is below the mining state's " + std::to_string(state.min_support) +
        "; the state cannot contain all frequent sets");
  }
  Stopwatch timer;
  CfqResult result;
  std::vector<std::vector<FrequentSet>> s_closed, t_closed;
  {
    obs::TraceSpan filter_span(options.tracer, "answer.filter");
    CFQ_ASSIGN_OR_RETURN(
        result.s_sets,
        FilterSide(state, query.s_domain, Var::kS, query.min_support_s,
                   query.one_var, catalog, &s_closed));
    CFQ_ASSIGN_OR_RETURN(
        result.t_sets,
        FilterSide(state, query.t_domain, Var::kT, query.min_support_t,
                   query.one_var, catalog, &t_closed));
  }
  result.stats.mining_seconds = timer.ElapsedSeconds();
  if (options.metrics != nullptr) {
    options.metrics->Observe("incr.answer.filter_seconds",
                             result.stats.mining_seconds);
  }

  if (query.two_var.empty()) {
    result.cross_product = true;
    result.stats.elapsed_seconds = timer.ElapsedSeconds();
    if (options.metrics != nullptr) {
      options.metrics->Observe("incr.answer_seconds",
                               result.stats.elapsed_seconds);
    }
    return result;
  }

  Status live = CheckCancel(options.cancel, "state answer: pair setup");
  if (!live.ok()) return live;

  // Sound participant prefilters from the quasi-succinct reductions: a
  // side set failing its reduced condition belongs to no valid pair, so
  // it can skip exact verification without changing the answer. The
  // constants are derived from the frequency-closed sides' L1
  // singletons (a superset of any answer participant's items, which is
  // what keeps the reduction sound) and come from the lineage's shared
  // cache when one is threaded through.
  const Itemset l1_s = SingletonItems(s_closed);
  const Itemset l1_t = SingletonItems(t_closed);
  ReuseStats local_reuse;
  std::vector<OneVarConstraint> s_conditions, t_conditions;
  bool s_unsat = false, t_unsat = false;
  {
    Stopwatch reduce_wall;
    obs::TraceSpan reduce_span(options.tracer, "answer.reduce");
    for (const TwoVarConstraint& c : query.two_var) {
      Reduction reduction;
      if (options.ctx != nullptr) {
        CFQ_ASSIGN_OR_RETURN(
            reduction, options.ctx->GetReduction(c, l1_s, l1_t, catalog,
                                                 options.nonnegative,
                                                 &local_reuse));
      } else {
        CFQ_ASSIGN_OR_RETURN(reduction,
                             ReduceTwoVar(c, l1_s, l1_t, catalog,
                                          options.nonnegative));
        ++local_reuse.reductions_recomputed;
      }
      s_unsat = s_unsat || !reduction.s.satisfiable;
      t_unsat = t_unsat || !reduction.t.satisfiable;
      for (const OneVarConstraint& rc : reduction.s.constraints) {
        s_conditions.push_back(rc);
      }
      for (const OneVarConstraint& rc : reduction.t.constraints) {
        t_conditions.push_back(rc);
      }
    }
    if (options.metrics != nullptr) {
      options.metrics->Observe("incr.answer.reduce_seconds",
                               reduce_wall.ElapsedSeconds());
    }
  }

  // Jmax V^k audit for every sum aggregate a 2-var constraint bounds:
  // re-derives the series over the source side's (possibly refreshed)
  // closed levels — levels whose frequent sets are unchanged come back
  // from the cache — and fails loudly if the maintained state broke the
  // bound's monotone soundness.
  {
    Stopwatch audit_wall;
    obs::TraceSpan audit_span(options.tracer, "answer.audit");
    for (const TwoVarConstraint& c : query.two_var) {
      const auto* agg = std::get_if<AggConstraint2>(&c);
      if (agg == nullptr) continue;
      if (agg->agg_s == AggFn::kSum && s_closed.size() >= 2) {
        CFQ_ASSIGN_OR_RETURN(
            const VkAudit audit,
            AuditVkSeries(s_closed, agg->attr_s, catalog, options.ctx,
                          &local_reuse, options.tracer, 'S'));
        if (!audit.sound) {
          return Status::Internal("V^k series over S is unsound for attr " +
                                  agg->attr_s + "; state diverged");
        }
      }
      if (agg->agg_t == AggFn::kSum && t_closed.size() >= 2) {
        CFQ_ASSIGN_OR_RETURN(
            const VkAudit audit,
            AuditVkSeries(t_closed, agg->attr_t, catalog, options.ctx,
                          &local_reuse, options.tracer, 'T'));
        if (!audit.sound) {
          return Status::Internal("V^k series over T is unsound for attr " +
                                  agg->attr_t + "; state diverged");
        }
      }
    }
    if (options.metrics != nullptr) {
      options.metrics->Observe("incr.answer.audit_seconds",
                               audit_wall.ElapsedSeconds());
    }
  }
  if (options.reuse != nullptr) options.reuse->MergeFrom(local_reuse);

  // Pair formation: row-major exact verification over prefilter
  // survivors; emitted (i, j) index the FULL side lists, so surviving
  // pairs appear in exactly the order an unfiltered scan would emit.
  Stopwatch pair_timer;
  obs::TraceSpan pair_span(options.tracer, "answer.pair");
  uint64_t prefiltered = 0;
  std::vector<char> s_ok(result.s_sets.size(), 1);
  std::vector<char> t_ok(result.t_sets.size(), 1);
  if (s_unsat || t_unsat) {
    // Some constraint is unsatisfiable on one side: no valid pair
    // exists at all.
    std::fill(s_ok.begin(), s_ok.end(), 0);
    std::fill(t_ok.begin(), t_ok.end(), 0);
    prefiltered = result.s_sets.size() + result.t_sets.size();
  } else {
    for (size_t i = 0; i < result.s_sets.size(); ++i) {
      CFQ_ASSIGN_OR_RETURN(
          const bool ok,
          EvalAll(s_conditions, Var::kS, result.s_sets[i].items, catalog));
      if (!ok) {
        s_ok[i] = 0;
        ++prefiltered;
      }
    }
    for (size_t j = 0; j < result.t_sets.size(); ++j) {
      CFQ_ASSIGN_OR_RETURN(
          const bool ok,
          EvalAll(t_conditions, Var::kT, result.t_sets[j].items, catalog));
      if (!ok) {
        t_ok[j] = 0;
        ++prefiltered;
      }
    }
  }
  for (uint32_t i = 0; i < result.s_sets.size(); ++i) {
    if (s_ok[i] == 0) continue;
    Status row_live = CheckCancel(options.cancel, "state answer: pair row");
    if (!row_live.ok()) return row_live;
    for (uint32_t j = 0; j < result.t_sets.size(); ++j) {
      if (t_ok[j] == 0) continue;
      ++result.stats.pair_checks;
      CFQ_ASSIGN_OR_RETURN(
          const bool match,
          EvalAllPairs(query.two_var, result.s_sets[i].items,
                       result.t_sets[j].items, catalog));
      if (match) result.pairs.emplace_back(i, j);
    }
  }
  result.stats.pair_seconds = pair_timer.ElapsedSeconds();
  if (options.metrics != nullptr) {
    options.metrics->Observe("incr.answer.pair_seconds",
                             result.stats.pair_seconds);
  }
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  if (options.tracer != nullptr) {
    options.tracer->RecordPairPhase(obs::PairPhaseEvent{
        result.stats.pair_checks, result.pairs.size(),
        result.stats.pair_seconds});
  }
  if (options.metrics != nullptr) {
    options.metrics->Observe("incr.answer_seconds",
                             result.stats.elapsed_seconds);
    options.metrics->Add("incr.pair.checks", result.stats.pair_checks);
    options.metrics->Add("incr.pair.prefiltered", prefiltered);
    options.metrics->Add("incr.reductions.reused",
                         local_reuse.reductions_reused);
    options.metrics->Add("incr.reductions.recomputed",
                         local_reuse.reductions_recomputed);
    options.metrics->Add("incr.vk.levels_reused",
                         local_reuse.vk_levels_reused);
    options.metrics->Add("incr.vk.levels_recomputed",
                         local_reuse.vk_levels_recomputed);
  }
  return result;
}

}  // namespace cfq::incremental
