// Answering a CFQ from a maintained MiningState.
//
// A MiningState mined over a superset domain at a threshold no higher
// than the query's contains, by Apriori closure, every frequent set
// either side of the query can produce. AnswerFromState therefore
// never touches the transaction database: it filters the state's
// frequent sets into the two sides (domain restriction, per-side
// minsup, 1-var constraints — exactly Apriori+'s generate-and-test
// semantics) and verifies the 2-var constraints on candidate pairs.
//
// Answer identity: the side sets equal ExecuteAprioriPlus's and the
// answer PAIRS equal every strategy's (pairs are strategy-invariant).
// The quasi-succinct reductions are used only as sound PARTICIPANT
// prefilters before exact pair verification — a pruned set provably
// belongs to no valid pair — so they change the work, never the answer.

#ifndef CFQ_INCREMENTAL_ANSWER_H_
#define CFQ_INCREMENTAL_ANSWER_H_

#include "common/cancellation.h"
#include "common/result.h"
#include "core/cfq.h"
#include "core/executor.h"
#include "data/item_catalog.h"
#include "incremental/mining_state.h"
#include "incremental/reuse.h"

namespace cfq::incremental {

struct StateAnswerOptions {
  bool nonnegative = true;
  // Derivation cache shared across the state's lineage (not owned; null
  // recomputes everything).
  StateAnswerContext* ctx = nullptr;
  ReuseStats* reuse = nullptr;            // Accumulated when non-null.
  obs::Tracer* tracer = nullptr;          // Not owned; may be null.
  obs::MetricsRegistry* metrics = nullptr;
  const CancelToken* cancel = nullptr;
};

// Requirements: both query domains ⊆ state.domain and both per-side
// thresholds >= state.min_support (otherwise the state provably cannot
// contain all needed sets and the call fails with InvalidArgument).
Result<CfqResult> AnswerFromState(const MiningState& state,
                                  const ItemCatalog& catalog,
                                  const CfqQuery& query,
                                  const StateAnswerOptions& options = {});

}  // namespace cfq::incremental

#endif  // CFQ_INCREMENTAL_ANSWER_H_
