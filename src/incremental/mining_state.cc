#include "incremental/mining_state.h"

#include <string>

#include "common/stopwatch.h"
#include "mining/candidate_gen.h"

namespace cfq::incremental {

std::vector<FrequentSet> MiningState::AllFrequent() const {
  std::vector<FrequentSet> out;
  out.reserve(TotalFrequent());
  for (const LevelState& level : levels) {
    out.insert(out.end(), level.frequent.begin(), level.frequent.end());
  }
  return out;
}

size_t MiningState::TotalFrequent() const {
  size_t n = 0;
  for (const LevelState& level : levels) n += level.frequent.size();
  return n;
}

size_t MiningState::TotalBorder() const {
  size_t n = 0;
  for (const LevelState& level : levels) n += level.border.size();
  return n;
}

Result<MiningState> BuildMiningState(TransactionDb* db, const Itemset& domain,
                                     uint64_t min_support, uint64_t generation,
                                     const IncrOptions& options) {
  if (min_support == 0) {
    return Status::InvalidArgument("min_support must be > 0");
  }
  Stopwatch wall;
  MiningState state;
  state.generation = generation;
  state.min_support = min_support;
  state.num_transactions = db->num_transactions();
  state.domain = domain;

  auto counter = MakeCounter(options.counter, db, options.pool);

  // Level 1: all domain singletons — identical to MineFrequent, so the
  // candidate stream (and therefore the frequent sets AND the border)
  // matches a plain Apriori run level for level.
  std::vector<Itemset> candidates;
  candidates.reserve(domain.size());
  for (ItemId item : domain) candidates.push_back(Itemset{item});

  while (!candidates.empty()) {
    Status live = CheckCancel(options.cancel, "incremental build level");
    if (!live.ok()) return live;
    const std::vector<uint64_t> supports = counter->Count(candidates, nullptr);
    LevelState level;
    for (size_t i = 0; i < candidates.size(); ++i) {
      FrequentSet set{candidates[i], supports[i]};
      if (supports[i] >= min_support) {
        level.frequent.push_back(std::move(set));
      } else {
        level.border.push_back(std::move(set));
      }
    }
    std::vector<Itemset> frequent_items;
    frequent_items.reserve(level.frequent.size());
    for (const FrequentSet& f : level.frequent) frequent_items.push_back(f.items);
    state.levels.push_back(std::move(level));
    candidates = GenerateCandidatesJoinPrune(frequent_items);
  }
  if (options.metrics != nullptr) {
    options.metrics->Observe("incr.build_seconds", wall.ElapsedSeconds());
    options.metrics->Add("incr.builds");
  }
  return state;
}

namespace {

bool SetsIdentical(const std::vector<FrequentSet>& a,
                   const std::vector<FrequentSet>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].items != b[i].items || a[i].support != b[i].support) return false;
  }
  return true;
}

}  // namespace

bool StatesIdentical(const MiningState& a, const MiningState& b) {
  if (a.min_support != b.min_support ||
      a.num_transactions != b.num_transactions || a.domain != b.domain ||
      a.levels.size() != b.levels.size()) {
    return false;
  }
  for (size_t k = 0; k < a.levels.size(); ++k) {
    if (!SetsIdentical(a.levels[k].frequent, b.levels[k].frequent) ||
        !SetsIdentical(a.levels[k].border, b.levels[k].border)) {
      return false;
    }
  }
  return true;
}

std::string Summarize(const MiningState& state) {
  return "gen=" + std::to_string(state.generation) +
         " minsup=" + std::to_string(state.min_support) +
         " txns=" + std::to_string(state.num_transactions) +
         " levels=" + std::to_string(state.levels.size()) +
         " freq=" + std::to_string(state.TotalFrequent()) +
         " border=" + std::to_string(state.TotalBorder());
}

}  // namespace cfq::incremental
