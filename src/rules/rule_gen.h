// Rule formation from a CFQ answer.

#ifndef CFQ_RULES_RULE_GEN_H_
#define CFQ_RULES_RULE_GEN_H_

#include <vector>

#include "common/result.h"
#include "core/executor.h"
#include "data/transaction_db.h"
#include "rules/rule.h"

namespace cfq {

struct RuleOptions {
  double min_confidence = 0.0;  // Keep rules with confidence >= this.
  double min_lift = 0.0;        // ... and lift >= this.
  // Classic association rules need disjoint sides; CFQ pairs may
  // overlap, and overlapping pairs are skipped unless this is false.
  bool require_disjoint = true;
  CounterKind counter = CounterKind::kBitmap;
  // 0 = unlimited. Otherwise keep only the top-k by confidence
  // (ties broken by lift, then support).
  size_t top_k = 0;
};

// Turns a CFQ result's answer pairs into rules S => T, counting the
// union supports against `db` in one batch. For a cross_product result
// every (s, t) combination is considered.
Result<std::vector<AssociationRule>> FormRules(TransactionDb* db,
                                               const CfqResult& result,
                                               const RuleOptions& options = {});

}  // namespace cfq

#endif  // CFQ_RULES_RULE_GEN_H_
