#include "rules/rule_gen.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "mining/counter.h"

namespace cfq {

std::string ToString(const AssociationRule& rule) {
  std::ostringstream os;
  os << ToString(rule.antecedent) << " => " << ToString(rule.consequent)
     << " (conf " << rule.confidence << ", lift " << rule.lift << ")";
  return os.str();
}

Result<std::vector<AssociationRule>> FormRules(TransactionDb* db,
                                               const CfqResult& result,
                                               const RuleOptions& options) {
  if (db->num_transactions() == 0) {
    return Status::FailedPrecondition("empty transaction database");
  }
  const double n = static_cast<double>(db->num_transactions());

  // Collect the candidate (i, j) index pairs.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  if (result.cross_product) {
    pairs.reserve(result.s_sets.size() * result.t_sets.size());
    for (uint32_t i = 0; i < result.s_sets.size(); ++i) {
      for (uint32_t j = 0; j < result.t_sets.size(); ++j) {
        pairs.emplace_back(i, j);
      }
    }
  } else {
    pairs = result.pairs;
  }

  // Deduplicate union sets so each distinct union is counted once.
  std::map<Itemset, uint64_t> union_support;
  std::vector<Itemset> kept_union;          // Aligned with kept_pairs.
  std::vector<std::pair<uint32_t, uint32_t>> kept_pairs;
  for (const auto& [i, j] : pairs) {
    const Itemset& s = result.s_sets[i].items;
    const Itemset& t = result.t_sets[j].items;
    if (options.require_disjoint && !Disjoint(s, t)) continue;
    kept_pairs.emplace_back(i, j);
    Itemset u = Union(s, t);
    union_support.emplace(u, 0);
    kept_union.push_back(std::move(u));
  }

  // One batched count per union size (counters require uniform size).
  std::map<size_t, std::vector<Itemset>> by_size;
  for (const auto& [u, support] : union_support) {
    (void)support;
    by_size[u.size()].push_back(u);
  }
  auto counter = MakeCounter(options.counter, db);
  for (auto& [size, candidates] : by_size) {
    (void)size;
    std::sort(candidates.begin(), candidates.end());
    const std::vector<uint64_t> supports = counter->Count(candidates, nullptr);
    for (size_t c = 0; c < candidates.size(); ++c) {
      union_support[candidates[c]] = supports[c];
    }
  }

  std::vector<AssociationRule> rules;
  rules.reserve(kept_pairs.size());
  for (size_t p = 0; p < kept_pairs.size(); ++p) {
    const auto& [i, j] = kept_pairs[p];
    AssociationRule rule;
    rule.antecedent = result.s_sets[i].items;
    rule.consequent = result.t_sets[j].items;
    rule.support_antecedent = result.s_sets[i].support;
    rule.support_consequent = result.t_sets[j].support;
    rule.support_union = union_support[kept_union[p]];
    rule.support = static_cast<double>(rule.support_union) / n;
    rule.confidence = rule.support_antecedent == 0
                          ? 0
                          : static_cast<double>(rule.support_union) /
                                static_cast<double>(rule.support_antecedent);
    const double consequent_frequency =
        static_cast<double>(rule.support_consequent) / n;
    rule.lift = consequent_frequency == 0
                    ? 0
                    : rule.confidence / consequent_frequency;
    if (rule.confidence < options.min_confidence) continue;
    if (rule.lift < options.min_lift) continue;
    rules.push_back(std::move(rule));
  }

  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.lift != b.lift) return a.lift > b.lift;
              if (a.support_union != b.support_union) {
                return a.support_union > b.support_union;
              }
              if (a.antecedent != b.antecedent) {
                return a.antecedent < b.antecedent;
              }
              return a.consequent < b.consequent;
            });
  if (options.top_k != 0 && rules.size() > options.top_k) {
    rules.resize(options.top_k);
  }
  return rules;
}

}  // namespace cfq
