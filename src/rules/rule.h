// Association rules — phase II of the paper's two-phase architecture.
//
// The CFQ machinery (phase I) computes the constrained frequent pairs
// (S, T); this module forms the final rules S => T with the classic
// quality measures. The paper deliberately keeps this phase cheap
// ("the computation cost of finding (constrained) frequent sets far
// dominates the cost of forming the final rules"), and so does this
// implementation: one batched support count for the unions.

#ifndef CFQ_RULES_RULE_H_
#define CFQ_RULES_RULE_H_

#include <cstdint>
#include <string>

#include "common/itemset.h"

namespace cfq {

struct AssociationRule {
  Itemset antecedent;  // S
  Itemset consequent;  // T
  uint64_t support_antecedent = 0;  // |{t : S ⊆ t}|
  uint64_t support_consequent = 0;  // |{t : T ⊆ t}|
  uint64_t support_union = 0;       // |{t : S ∪ T ⊆ t}|
  // Derived measures (database size N):
  double support = 0;     // support_union / N
  double confidence = 0;  // support_union / support_antecedent
  double lift = 0;        // confidence / (support_consequent / N)
};

// "{1, 2} => {5} (conf 0.82, lift 3.1)" rendering.
std::string ToString(const AssociationRule& rule);

}  // namespace cfq

#endif  // CFQ_RULES_RULE_H_
