// Constraint evaluation: the ground-truth satisfaction semantics that
// every optimization in the library must preserve.

#ifndef CFQ_CONSTRAINTS_EVAL_H_
#define CFQ_CONSTRAINTS_EVAL_H_

#include <vector>

#include "common/itemset.h"
#include "common/result.h"
#include "constraints/one_var.h"
#include "constraints/two_var.h"
#include "data/item_catalog.h"

namespace cfq {

// Projects `s` onto `attr` as a sorted, deduplicated VALUE SET (domain
// constraints compare value sets, not multisets).
Result<std::vector<AttrValue>> ProjectSet(const std::string& attr,
                                          const Itemset& s,
                                          const ItemCatalog& catalog);

// Applies a set comparison to two sorted, deduplicated value sets.
bool EvalSetCmp(const std::vector<AttrValue>& x, SetCmp cmp,
                const std::vector<AttrValue>& y);

// Does `s` satisfy the 1-var constraint? Undefined aggregates (min/max/
// avg over an empty projection) make the constraint false rather than an
// error, matching "the empty set trivially fails"; genuine errors
// (unknown attribute) still surface as Status.
Result<bool> Eval(const OneVarConstraint& c, const Itemset& s,
                  const ItemCatalog& catalog);

// Does the pair (s, t) satisfy the 2-var constraint?
Result<bool> EvalPair(const TwoVarConstraint& c, const Itemset& s,
                      const Itemset& t, const ItemCatalog& catalog);

// Conjunction helpers used by miners and oracles. Constraints not bound
// to `var` are skipped.
Result<bool> EvalAll(const std::vector<OneVarConstraint>& cs, Var var,
                     const Itemset& s, const ItemCatalog& catalog);
Result<bool> EvalAllPairs(const std::vector<TwoVarConstraint>& cs,
                          const Itemset& s, const Itemset& t,
                          const ItemCatalog& catalog);

}  // namespace cfq

#endif  // CFQ_CONSTRAINTS_EVAL_H_
