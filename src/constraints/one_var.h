// 1-variable constraints (the [15] constraint language).
//
// A 1-var constraint restricts a single set variable against a query
// constant:
//   * domain constraints:    S.A  setcmp  V        (V a constant set)
//   * aggregate constraints: agg(S.A)  cmp  c      (c a constant scalar)
//
// Class constraints like count(S.Type) = 1 are aggregate constraints
// with AggFn::kCount (count is over distinct values, see agg.h).

#ifndef CFQ_CONSTRAINTS_ONE_VAR_H_
#define CFQ_CONSTRAINTS_ONE_VAR_H_

#include <string>
#include <variant>
#include <vector>

#include "constraints/agg.h"
#include "constraints/domain_op.h"
#include "data/item_catalog.h"

namespace cfq {

// Which CFQ variable a constraint applies to.
enum class Var { kS, kT };

inline const char* VarName(Var v) { return v == Var::kS ? "S" : "T"; }

// S.A setcmp V. `constant` is kept sorted and deduplicated.
struct DomainConstraint1 {
  std::string attr;
  SetCmp cmp;
  std::vector<AttrValue> constant;
};

// agg(S.A) cmp c.
struct AggConstraint1 {
  AggFn agg;
  std::string attr;
  CmpOp cmp;
  double constant;
};

// The body of a 1-var constraint.
using OneVarBody = std::variant<DomainConstraint1, AggConstraint1>;

// A 1-var constraint bound to a variable.
struct OneVarConstraint {
  Var var = Var::kS;
  OneVarBody body;
};

// Builder helpers.
OneVarConstraint MakeDomain1(Var var, std::string attr, SetCmp cmp,
                             std::vector<AttrValue> constant);
OneVarConstraint MakeAgg1(Var var, AggFn agg, std::string attr, CmpOp cmp,
                          double constant);

// "sum(S.Price) <= 100" style rendering.
std::string ToString(const OneVarConstraint& c);

}  // namespace cfq

#endif  // CFQ_CONSTRAINTS_ONE_VAR_H_
