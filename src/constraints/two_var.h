// 2-variable constraints — the subject of the paper.
//
// A 2-var constraint relates the two CFQ variables through attributes in
// a common domain:
//   * domain constraints:    S.A  setcmp  T.B
//   * aggregate constraints: agg1(S.A)  cmp  agg2(T.B)
//
// By convention the S side is always written on the left; MirrorCmp
// converts queries written the other way around.

#ifndef CFQ_CONSTRAINTS_TWO_VAR_H_
#define CFQ_CONSTRAINTS_TWO_VAR_H_

#include <string>
#include <variant>

#include "constraints/agg.h"
#include "constraints/domain_op.h"

namespace cfq {

// S.attr_s setcmp T.attr_t.
struct DomainConstraint2 {
  std::string attr_s;  // A
  std::string attr_t;  // B
  SetCmp cmp;
};

// agg_s(S.attr_s) cmp agg_t(T.attr_t).
struct AggConstraint2 {
  AggFn agg_s;
  std::string attr_s;
  CmpOp cmp;
  AggFn agg_t;
  std::string attr_t;
};

using TwoVarConstraint = std::variant<DomainConstraint2, AggConstraint2>;

// Builder helpers.
TwoVarConstraint MakeDomain2(std::string attr_s, SetCmp cmp,
                             std::string attr_t);
TwoVarConstraint MakeAgg2(AggFn agg_s, std::string attr_s, CmpOp cmp,
                          AggFn agg_t, std::string attr_t);

// "max(S.Price) <= min(T.Price)" style rendering.
std::string ToString(const TwoVarConstraint& c);

}  // namespace cfq

#endif  // CFQ_CONSTRAINTS_TWO_VAR_H_
