#include "constraints/mgf.h"

#include <algorithm>

namespace cfq {

namespace {

// Items of `domain` whose attribute value satisfies `pred`.
template <typename Pred>
Itemset Filter(const Itemset& domain, const std::string& attr,
               const ItemCatalog& catalog, Pred pred) {
  Itemset out;
  for (ItemId item : domain) {
    if (pred(catalog.ValueUnchecked(attr, item))) out.push_back(item);
  }
  return out;
}

bool InSet(const std::vector<AttrValue>& sorted_values, AttrValue v) {
  return std::binary_search(sorted_values.begin(), sorted_values.end(), v);
}

SuccinctForm FormForDomain(const DomainConstraint1& d, const Itemset& domain,
                           const ItemCatalog& catalog) {
  SuccinctForm f;
  f.allowed = domain;
  switch (d.cmp) {
    case SetCmp::kSubset:
      f.allowed = Filter(domain, d.attr, catalog,
                         [&](AttrValue v) { return InSet(d.constant, v); });
      break;
    case SetCmp::kDisjoint:
      f.allowed = Filter(domain, d.attr, catalog,
                         [&](AttrValue v) { return !InSet(d.constant, v); });
      break;
    case SetCmp::kSuperset:
      // One mandatory group per required value.
      for (AttrValue v : d.constant) {
        f.groups.push_back(Filter(domain, d.attr, catalog,
                                  [&](AttrValue x) { return x == v; }));
      }
      break;
    case SetCmp::kIntersects:
      f.groups.push_back(Filter(domain, d.attr, catalog, [&](AttrValue v) {
        return InSet(d.constant, v);
      }));
      break;
    case SetCmp::kNotSubset:
      f.groups.push_back(Filter(domain, d.attr, catalog, [&](AttrValue v) {
        return !InSet(d.constant, v);
      }));
      break;
    case SetCmp::kEqual:
      f.allowed = Filter(domain, d.attr, catalog,
                         [&](AttrValue v) { return InSet(d.constant, v); });
      for (AttrValue v : d.constant) {
        f.groups.push_back(Filter(f.allowed, d.attr, catalog,
                                  [&](AttrValue x) { return x == v; }));
      }
      break;
    case SetCmp::kNotSuperset:
    case SetCmp::kNotEqual:
      // Succinct per the formal definition (needs set union), but not
      // expressible in the conjunctive normal form: sound relaxation.
      f.exact = false;
      break;
  }
  return f;
}

SuccinctForm FormForAgg(const AggConstraint1& a, const Itemset& domain,
                        const ItemCatalog& catalog, bool nonnegative) {
  SuccinctForm f;
  f.allowed = domain;
  auto filter = [&](auto pred) { return Filter(domain, a.attr, catalog, pred); };
  const double c = a.constant;
  switch (a.agg) {
    case AggFn::kMin:
      switch (a.cmp) {
        case CmpOp::kGe:
          f.allowed = filter([&](AttrValue v) { return v >= c; });
          break;
        case CmpOp::kGt:
          f.allowed = filter([&](AttrValue v) { return v > c; });
          break;
        case CmpOp::kLe:
          f.groups.push_back(filter([&](AttrValue v) { return v <= c; }));
          break;
        case CmpOp::kLt:
          f.groups.push_back(filter([&](AttrValue v) { return v < c; }));
          break;
        case CmpOp::kEq:
          f.allowed = filter([&](AttrValue v) { return v >= c; });
          f.groups.push_back(filter([&](AttrValue v) { return v == c; }));
          break;
        case CmpOp::kNe:
          f.exact = false;  // Union form: min < c or min > c.
          break;
      }
      break;
    case AggFn::kMax:
      switch (a.cmp) {
        case CmpOp::kLe:
          f.allowed = filter([&](AttrValue v) { return v <= c; });
          break;
        case CmpOp::kLt:
          f.allowed = filter([&](AttrValue v) { return v < c; });
          break;
        case CmpOp::kGe:
          f.groups.push_back(filter([&](AttrValue v) { return v >= c; }));
          break;
        case CmpOp::kGt:
          f.groups.push_back(filter([&](AttrValue v) { return v > c; }));
          break;
        case CmpOp::kEq:
          f.allowed = filter([&](AttrValue v) { return v <= c; });
          f.groups.push_back(filter([&](AttrValue v) { return v == c; }));
          break;
        case CmpOp::kNe:
          f.exact = false;
          break;
      }
      break;
    case AggFn::kSum:
      f.exact = false;  // sum is not succinct (Lemma 1).
      if (nonnegative && (a.cmp == CmpOp::kLe || a.cmp == CmpOp::kLt ||
                          a.cmp == CmpOp::kEq)) {
        // Any item with value above the budget can never appear:
        // sum(X) >= max(X) on a nonnegative domain.
        const bool strict = a.cmp == CmpOp::kLt;
        f.allowed = filter(
            [&](AttrValue v) { return strict ? v < c : v <= c; });
      }
      break;
    case AggFn::kCount:
      f.exact = false;  // Not succinct in general.
      if ((a.cmp == CmpOp::kLe && c < 1) || (a.cmp == CmpOp::kLt && c <= 1) ||
          (a.cmp == CmpOp::kEq && c == 0)) {
        // count(X) = 0 is impossible for non-empty X.
        f.allowed.clear();
        f.exact = true;
      } else if ((a.cmp == CmpOp::kGe && c <= 1) ||
                 (a.cmp == CmpOp::kGt && c < 1)) {
        f.exact = true;  // Trivially true for non-empty sets.
      }
      break;
    case AggFn::kAvg:
      f.exact = false;  // No item-level filter: extremes can be offset.
      break;
  }
  return f;
}

}  // namespace

bool SuccinctForm::Unsatisfiable() const {
  if (allowed.empty()) return true;
  for (const Itemset& g : groups) {
    if (g.empty()) return true;
  }
  return false;
}

Result<SuccinctForm> ComputeSuccinctForm(const OneVarConstraint& c,
                                         const Itemset& domain,
                                         const ItemCatalog& catalog,
                                         bool nonnegative) {
  const std::string& attr = std::holds_alternative<DomainConstraint1>(c.body)
                                ? std::get<DomainConstraint1>(c.body).attr
                                : std::get<AggConstraint1>(c.body).attr;
  if (!catalog.HasAttr(attr)) {
    return Status::NotFound("unknown attribute '" + attr + "'");
  }
  if (const auto* d = std::get_if<DomainConstraint1>(&c.body)) {
    return FormForDomain(*d, domain, catalog);
  }
  return FormForAgg(std::get<AggConstraint1>(c.body), domain, catalog,
                    nonnegative);
}

SuccinctForm CombineForms(const SuccinctForm& a, const SuccinctForm& b) {
  SuccinctForm out;
  out.allowed = Intersect(a.allowed, b.allowed);
  out.exact = a.exact && b.exact;
  for (const auto* src : {&a.groups, &b.groups}) {
    for (const Itemset& g : *src) {
      out.groups.push_back(Intersect(g, out.allowed));
    }
  }
  return out;
}

Result<SuccinctForm> ComputeCombinedForm(
    const std::vector<OneVarConstraint>& constraints, Var var,
    const Itemset& domain, const ItemCatalog& catalog, bool nonnegative) {
  SuccinctForm combined;
  combined.allowed = domain;
  for (const OneVarConstraint& c : constraints) {
    if (c.var != var) continue;
    auto form = ComputeSuccinctForm(c, domain, catalog, nonnegative);
    if (!form.ok()) return form.status();
    combined = CombineForms(combined, form.value());
  }
  return combined;
}

bool SatisfiesForm(const SuccinctForm& form, const Itemset& x) {
  if (!IsSubset(x, form.allowed)) return false;
  for (const Itemset& g : form.groups) {
    if (Disjoint(x, g)) return false;
  }
  return true;
}

}  // namespace cfq
