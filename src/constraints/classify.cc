#include "constraints/classify.h"

namespace cfq {

namespace {

OneVarProperties ClassifyDomain1(const DomainConstraint1& d) {
  OneVarProperties p;
  p.succinct = true;  // All 1-var domain constraints are succinct.
  switch (d.cmp) {
    case SetCmp::kSubset:        // Growing S.A can only break ⊆.
    case SetCmp::kDisjoint:      // ... or break disjointness.
    case SetCmp::kNotSuperset:   // Violation (⊇) persists under growth.
      p.anti_monotone = true;
      break;
    case SetCmp::kSuperset:      // Growing S.A can only help ⊇.
    case SetCmp::kIntersects:
    case SetCmp::kNotSubset:
      p.monotone = true;
      break;
    case SetCmp::kEqual:
    case SetCmp::kNotEqual:
      break;  // Neither.
  }
  return p;
}

OneVarProperties ClassifyAgg1(const AggConstraint1& a, bool nonnegative) {
  OneVarProperties p;
  switch (a.agg) {
    case AggFn::kMin:
      p.succinct = true;
      // min(S.A) is nonincreasing under growth.
      if (a.cmp == CmpOp::kGe || a.cmp == CmpOp::kGt) p.anti_monotone = true;
      if (a.cmp == CmpOp::kLe || a.cmp == CmpOp::kLt) p.monotone = true;
      break;
    case AggFn::kMax:
      p.succinct = true;
      // max(S.A) is nondecreasing under growth.
      if (a.cmp == CmpOp::kLe || a.cmp == CmpOp::kLt) p.anti_monotone = true;
      if (a.cmp == CmpOp::kGe || a.cmp == CmpOp::kGt) p.monotone = true;
      break;
    case AggFn::kCount:
      // count(S.A) (distinct values) is nondecreasing under growth.
      if (a.cmp == CmpOp::kLe || a.cmp == CmpOp::kLt) p.anti_monotone = true;
      if (a.cmp == CmpOp::kGe || a.cmp == CmpOp::kGt) p.monotone = true;
      break;
    case AggFn::kSum:
      // With a nonnegative domain, sum is nondecreasing under growth.
      if (nonnegative) {
        if (a.cmp == CmpOp::kLe || a.cmp == CmpOp::kLt) p.anti_monotone = true;
        if (a.cmp == CmpOp::kGe || a.cmp == CmpOp::kGt) p.monotone = true;
      }
      break;
    case AggFn::kAvg:
      break;  // Neither anti-monotone, monotone, nor succinct.
  }
  return p;
}

}  // namespace

OneVarProperties Classify(const OneVarConstraint& c, bool nonnegative) {
  if (const auto* d = std::get_if<DomainConstraint1>(&c.body)) {
    return ClassifyDomain1(*d);
  }
  return ClassifyAgg1(std::get<AggConstraint1>(c.body), nonnegative);
}

TwoVarProperties Classify(const TwoVarConstraint& c, bool nonnegative) {
  (void)nonnegative;  // No sum/avg 2-var constraint is AM or QS anyway.
  TwoVarProperties p;
  if (const auto* d = std::get_if<DomainConstraint2>(&c)) {
    // All 2-var domain constraints are quasi-succinct (Section 4.2).
    p.quasi_succinct = true;
    // Only disjointness is anti-monotone (Figure 1): a violation
    // S0.A ∩ T.B ≠ ∅ is preserved as either side grows.
    if (d->cmp == SetCmp::kDisjoint) {
      p.anti_monotone_s = true;
      p.anti_monotone_t = true;
    }
    return p;
  }
  const auto& a = std::get<AggConstraint2>(c);
  const bool min_max_only =
      (a.agg_s == AggFn::kMin || a.agg_s == AggFn::kMax) &&
      (a.agg_t == AggFn::kMin || a.agg_t == AggFn::kMax);
  p.quasi_succinct = min_max_only;
  // max(S.A) <= min(T.B): max is nondecreasing in S, min nonincreasing
  // in T, so a universal violation persists as either side grows. The
  // mirrored orientation min(S.A) >= max(T.B) is the same constraint.
  const bool max_le_min =
      a.agg_s == AggFn::kMax && a.agg_t == AggFn::kMin &&
      (a.cmp == CmpOp::kLe || a.cmp == CmpOp::kLt);
  const bool min_ge_max =
      a.agg_s == AggFn::kMin && a.agg_t == AggFn::kMax &&
      (a.cmp == CmpOp::kGe || a.cmp == CmpOp::kGt);
  if (max_le_min || min_ge_max) {
    p.anti_monotone_s = true;
    p.anti_monotone_t = true;
  }
  return p;
}

}  // namespace cfq
