#include "constraints/agg.h"

#include <algorithm>

namespace cfq {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
    case AggFn::kSum:
      return "sum";
    case AggFn::kAvg:
      return "avg";
    case AggFn::kCount:
      return "count";
  }
  return "?";
}

Result<double> Aggregate(AggFn fn, const std::vector<AttrValue>& values) {
  switch (fn) {
    case AggFn::kSum: {
      double total = 0;
      for (AttrValue v : values) total += v;
      return total;
    }
    case AggFn::kCount: {
      std::vector<AttrValue> distinct = values;
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      return static_cast<double>(distinct.size());
    }
    case AggFn::kMin:
    case AggFn::kMax:
    case AggFn::kAvg:
      break;
  }
  if (values.empty()) {
    return Status::FailedPrecondition(
        std::string(AggFnName(fn)) + "() over an empty projection");
  }
  switch (fn) {
    case AggFn::kMin:
      return *std::min_element(values.begin(), values.end());
    case AggFn::kMax:
      return *std::max_element(values.begin(), values.end());
    case AggFn::kAvg: {
      double total = 0;
      for (AttrValue v : values) total += v;
      return total / static_cast<double>(values.size());
    }
    default:
      return Status::Internal("unreachable aggregate");
  }
}

Result<double> AggregateOver(AggFn fn, const std::string& attr,
                             const Itemset& s, const ItemCatalog& catalog) {
  auto projected = catalog.Project(attr, s);
  if (!projected.ok()) return projected.status();
  return Aggregate(fn, projected.value());
}

}  // namespace cfq
