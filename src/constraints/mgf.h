// Member-generating-function (MGF) normal forms for succinct constraints.
//
// The paper ([15], Definition 2) characterizes succinct constraints as
// those whose solution space is expressible from the powersets of a few
// selected item sets. For mining we use an operational normal form over
// NON-EMPTY candidate sets:
//
//    valid(X)  <=>  X ⊆ allowed  AND  (X ∩ g ≠ ∅ for every group g)
//
// `allowed` drives generate-only candidate enumeration (items outside it
// can never appear in a valid set) and `groups` drive CAP's mandatory-
// item candidate generation. When a constraint's solution space is not
// expressible in this conjunctive form (e.g. S.A ⊉ V needs a union), or
// the constraint is not succinct at all (sum/avg), the returned form is
// a sound RELAXATION and `exact` is false; miners must then verify the
// original constraint on the final sets.

#ifndef CFQ_CONSTRAINTS_MGF_H_
#define CFQ_CONSTRAINTS_MGF_H_

#include <vector>

#include "common/itemset.h"
#include "common/result.h"
#include "constraints/one_var.h"
#include "data/item_catalog.h"

namespace cfq {

struct SuccinctForm {
  Itemset allowed;              // Valid sets draw only from these items.
  std::vector<Itemset> groups;  // Valid sets intersect every group.
  bool exact = true;            // Form == solution space on non-empty sets.

  // True iff no non-empty set can satisfy the form (empty `allowed`, or
  // some group is empty).
  bool Unsatisfiable() const;
};

// Computes the form of `c` over the items of `domain` (the item subset
// the variable ranges over). `nonnegative` enables the sum(X) <= c item
// filter, valid only for nonnegative attribute domains.
Result<SuccinctForm> ComputeSuccinctForm(const OneVarConstraint& c,
                                         const Itemset& domain,
                                         const ItemCatalog& catalog,
                                         bool nonnegative = true);

// Conjunction of forms: intersects `allowed`, concatenates `groups`
// (groups are re-clipped to the combined allowed set), ANDs `exact`.
SuccinctForm CombineForms(const SuccinctForm& a, const SuccinctForm& b);

// Form over a whole constraint conjunction for `var`.
Result<SuccinctForm> ComputeCombinedForm(
    const std::vector<OneVarConstraint>& constraints, Var var,
    const Itemset& domain, const ItemCatalog& catalog,
    bool nonnegative = true);

// Evaluates the form on a candidate (used by tests and by CAP's group
// filtering). X must be canonical.
bool SatisfiesForm(const SuccinctForm& form, const Itemset& x);

}  // namespace cfq

#endif  // CFQ_CONSTRAINTS_MGF_H_
