// Aggregate functions over attribute projections.
//
// Semantics (matching the paper's usage):
//   * min/max/sum/avg aggregate per item: S.A is projected item-by-item,
//     so two items with the same price both contribute to sum/avg.
//     (min and max are insensitive to the distinction.)
//   * count aggregates DISTINCT values: count(S.Type) = 1 is the paper's
//     class constraint "all items in S have the same type".
//   * min/max/avg over an empty projection are undefined; Aggregate
//     returns an error, and constraint evaluation treats the constraint
//     as violated. sum over empty is 0 and count is 0.

#ifndef CFQ_CONSTRAINTS_AGG_H_
#define CFQ_CONSTRAINTS_AGG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/item_catalog.h"

namespace cfq {

enum class AggFn {
  kMin,
  kMax,
  kSum,
  kAvg,
  kCount,
};

const char* AggFnName(AggFn fn);

// Applies `fn` to `values` (a per-item projection, duplicates allowed).
Result<double> Aggregate(AggFn fn, const std::vector<AttrValue>& values);

// Convenience: project `s` onto `attr` in `catalog`, then aggregate.
Result<double> AggregateOver(AggFn fn, const std::string& attr,
                             const Itemset& s, const ItemCatalog& catalog);

}  // namespace cfq

#endif  // CFQ_CONSTRAINTS_AGG_H_
