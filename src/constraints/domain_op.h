// Comparison operators shared by the constraint ASTs.

#ifndef CFQ_CONSTRAINTS_DOMAIN_OP_H_
#define CFQ_CONSTRAINTS_DOMAIN_OP_H_

namespace cfq {

// Set comparison between two value sets X and Y (the paper's domain
// constraints). X is always the variable side in 1-var constraints
// (X = S.A, Y = the query constant), and the S side in 2-var
// constraints (X = S.A, Y = T.B).
enum class SetCmp {
  kDisjoint,     // X ∩ Y = ∅
  kIntersects,   // X ∩ Y ≠ ∅
  kSubset,       // X ⊆ Y
  kNotSubset,    // X ⊄ Y
  kSuperset,     // X ⊇ Y
  kNotSuperset,  // X ⊉ Y
  kEqual,        // X = Y
  kNotEqual,     // X ≠ Y
};

const char* SetCmpName(SetCmp cmp);

// Scalar comparison for aggregate constraints.
enum class CmpOp {
  kLe,  // <=
  kGe,  // >=
  kLt,  // <
  kGt,  // >
  kEq,  // ==
  kNe,  // !=
};

const char* CmpOpName(CmpOp op);

// Applies `op` to scalars.
inline bool CompareScalar(double lhs, CmpOp op, double rhs) {
  switch (op) {
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
  }
  return false;
}

// Mirrors an operator across the comparison: `x op y` iff
// `y Mirror(op) x`. (kLe <-> kGe, kLt <-> kGt, kEq/kNe unchanged.)
inline CmpOp MirrorCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGe:
      return CmpOp::kLe;
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kEq:
    case CmpOp::kNe:
      return op;
  }
  return op;
}

}  // namespace cfq

#endif  // CFQ_CONSTRAINTS_DOMAIN_OP_H_
