#include "constraints/two_var.h"

#include <sstream>

namespace cfq {

TwoVarConstraint MakeDomain2(std::string attr_s, SetCmp cmp,
                             std::string attr_t) {
  return DomainConstraint2{std::move(attr_s), std::move(attr_t), cmp};
}

TwoVarConstraint MakeAgg2(AggFn agg_s, std::string attr_s, CmpOp cmp,
                          AggFn agg_t, std::string attr_t) {
  return AggConstraint2{agg_s, std::move(attr_s), cmp, agg_t,
                        std::move(attr_t)};
}

std::string ToString(const TwoVarConstraint& c) {
  std::ostringstream os;
  if (const auto* d = std::get_if<DomainConstraint2>(&c)) {
    os << "S." << d->attr_s << ' ' << SetCmpName(d->cmp) << " T."
       << d->attr_t;
  } else {
    const auto& a = std::get<AggConstraint2>(c);
    os << AggFnName(a.agg_s) << "(S." << a.attr_s << ") " << CmpOpName(a.cmp)
       << ' ' << AggFnName(a.agg_t) << "(T." << a.attr_t << ')';
  }
  return os.str();
}

}  // namespace cfq
