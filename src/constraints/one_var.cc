#include "constraints/one_var.h"

#include <algorithm>
#include <sstream>

namespace cfq {

const char* SetCmpName(SetCmp cmp) {
  switch (cmp) {
    case SetCmp::kDisjoint:
      return "disjoint";
    case SetCmp::kIntersects:
      return "intersects";
    case SetCmp::kSubset:
      return "subset";
    case SetCmp::kNotSubset:
      return "not-subset";
    case SetCmp::kSuperset:
      return "superset";
    case SetCmp::kNotSuperset:
      return "not-superset";
    case SetCmp::kEqual:
      return "=";
    case SetCmp::kNotEqual:
      return "!=";
  }
  return "?";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
  }
  return "?";
}

OneVarConstraint MakeDomain1(Var var, std::string attr, SetCmp cmp,
                             std::vector<AttrValue> constant) {
  std::sort(constant.begin(), constant.end());
  constant.erase(std::unique(constant.begin(), constant.end()),
                 constant.end());
  return OneVarConstraint{
      var, DomainConstraint1{std::move(attr), cmp, std::move(constant)}};
}

OneVarConstraint MakeAgg1(Var var, AggFn agg, std::string attr, CmpOp cmp,
                          double constant) {
  return OneVarConstraint{var,
                          AggConstraint1{agg, std::move(attr), cmp, constant}};
}

namespace {

std::string ValueSetToString(const std::vector<AttrValue>& values) {
  std::ostringstream os;
  os << '{';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ", ";
    os << values[i];
  }
  os << '}';
  return os.str();
}

}  // namespace

std::string ToString(const OneVarConstraint& c) {
  std::ostringstream os;
  const char* var = VarName(c.var);
  if (const auto* d = std::get_if<DomainConstraint1>(&c.body)) {
    os << var << '.' << d->attr << ' ' << SetCmpName(d->cmp) << ' '
       << ValueSetToString(d->constant);
  } else {
    const auto& a = std::get<AggConstraint1>(c.body);
    os << AggFnName(a.agg) << '(' << var << '.' << a.attr << ") "
       << CmpOpName(a.cmp) << ' ' << a.constant;
  }
  return os.str();
}

}  // namespace cfq
