#include "constraints/eval.h"

#include <algorithm>

namespace cfq {

namespace {

// Sorted-set helpers over value vectors.
bool SetDisjoint(const std::vector<AttrValue>& x,
                 const std::vector<AttrValue>& y) {
  auto ix = x.begin();
  auto iy = y.begin();
  while (ix != x.end() && iy != y.end()) {
    if (*ix < *iy) {
      ++ix;
    } else if (*iy < *ix) {
      ++iy;
    } else {
      return false;
    }
  }
  return true;
}

bool SetSubset(const std::vector<AttrValue>& x,
               const std::vector<AttrValue>& y) {
  return std::includes(y.begin(), y.end(), x.begin(), x.end());
}

}  // namespace

Result<std::vector<AttrValue>> ProjectSet(const std::string& attr,
                                          const Itemset& s,
                                          const ItemCatalog& catalog) {
  auto projected = catalog.Project(attr, s);
  if (!projected.ok()) return projected.status();
  std::vector<AttrValue> values = std::move(projected).value();
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

bool EvalSetCmp(const std::vector<AttrValue>& x, SetCmp cmp,
                const std::vector<AttrValue>& y) {
  switch (cmp) {
    case SetCmp::kDisjoint:
      return SetDisjoint(x, y);
    case SetCmp::kIntersects:
      return !SetDisjoint(x, y);
    case SetCmp::kSubset:
      return SetSubset(x, y);
    case SetCmp::kNotSubset:
      return !SetSubset(x, y);
    case SetCmp::kSuperset:
      return SetSubset(y, x);
    case SetCmp::kNotSuperset:
      return !SetSubset(y, x);
    case SetCmp::kEqual:
      return x == y;
    case SetCmp::kNotEqual:
      return x != y;
  }
  return false;
}

Result<bool> Eval(const OneVarConstraint& c, const Itemset& s,
                  const ItemCatalog& catalog) {
  if (const auto* d = std::get_if<DomainConstraint1>(&c.body)) {
    auto x = ProjectSet(d->attr, s, catalog);
    if (!x.ok()) return x.status();
    return EvalSetCmp(x.value(), d->cmp, d->constant);
  }
  const auto& a = std::get<AggConstraint1>(c.body);
  auto projected = catalog.Project(a.attr, s);
  if (!projected.ok()) return projected.status();
  auto value = Aggregate(a.agg, projected.value());
  if (!value.ok()) {
    // Undefined aggregate over the empty projection: constraint fails.
    if (value.status().code() == StatusCode::kFailedPrecondition) {
      return false;
    }
    return value.status();
  }
  return CompareScalar(value.value(), a.cmp, a.constant);
}

Result<bool> EvalPair(const TwoVarConstraint& c, const Itemset& s,
                      const Itemset& t, const ItemCatalog& catalog) {
  if (const auto* d = std::get_if<DomainConstraint2>(&c)) {
    auto x = ProjectSet(d->attr_s, s, catalog);
    if (!x.ok()) return x.status();
    auto y = ProjectSet(d->attr_t, t, catalog);
    if (!y.ok()) return y.status();
    return EvalSetCmp(x.value(), d->cmp, y.value());
  }
  const auto& a = std::get<AggConstraint2>(c);
  auto lhs_proj = catalog.Project(a.attr_s, s);
  if (!lhs_proj.ok()) return lhs_proj.status();
  auto rhs_proj = catalog.Project(a.attr_t, t);
  if (!rhs_proj.ok()) return rhs_proj.status();
  auto lhs = Aggregate(a.agg_s, lhs_proj.value());
  auto rhs = Aggregate(a.agg_t, rhs_proj.value());
  for (const auto* r : {&lhs, &rhs}) {
    if (!r->ok()) {
      if (r->status().code() == StatusCode::kFailedPrecondition) {
        return false;  // Undefined aggregate: pair fails the constraint.
      }
      return r->status();
    }
  }
  return CompareScalar(lhs.value(), a.cmp, rhs.value());
}

Result<bool> EvalAll(const std::vector<OneVarConstraint>& cs, Var var,
                     const Itemset& s, const ItemCatalog& catalog) {
  for (const OneVarConstraint& c : cs) {
    if (c.var != var) continue;
    auto ok = Eval(c, s, catalog);
    if (!ok.ok()) return ok.status();
    if (!ok.value()) return false;
  }
  return true;
}

Result<bool> EvalAllPairs(const std::vector<TwoVarConstraint>& cs,
                          const Itemset& s, const Itemset& t,
                          const ItemCatalog& catalog) {
  for (const TwoVarConstraint& c : cs) {
    auto ok = EvalPair(c, s, t, catalog);
    if (!ok.ok()) return ok.status();
    if (!ok.value()) return false;
  }
  return true;
}

}  // namespace cfq
