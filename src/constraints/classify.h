// Constraint property classification.
//
// 1-var: the anti-monotonicity / succinctness characterization of
// Ng et al. (SIGMOD'98) — Lemma 1 of this paper: domain and min()/max()
// constraints are succinct, sum()/avg() are not. We additionally track
// monotonicity (satisfied sets stay satisfied under growth), which lets
// miners skip re-checks.
//
// 2-var: the Figure-1 characterization — S.A ∩ T.B = ∅ and
// max(S.A) <= min(T.B) (in either orientation) are the only
// anti-monotone constraints; all domain constraints plus all aggregate
// constraints using only min()/max() are quasi-succinct.
//
// sum() rows assume nonnegative attribute domains, as the paper does
// (Section 5: "the results in this section assume that the domains of A
// and B are non-negative"). Pass `nonnegative = false` to drop those
// rows to the conservative classification.

#ifndef CFQ_CONSTRAINTS_CLASSIFY_H_
#define CFQ_CONSTRAINTS_CLASSIFY_H_

#include "constraints/one_var.h"
#include "constraints/two_var.h"

namespace cfq {

struct OneVarProperties {
  bool anti_monotone = false;
  bool monotone = false;
  bool succinct = false;
};

struct TwoVarProperties {
  // Anti-monotone w.r.t. S and w.r.t. T (Definition 4). For every
  // constraint in the paper's Figure 1 the two coincide.
  bool anti_monotone_s = false;
  bool anti_monotone_t = false;
  bool quasi_succinct = false;
};

OneVarProperties Classify(const OneVarConstraint& c, bool nonnegative = true);
TwoVarProperties Classify(const TwoVarConstraint& c, bool nonnegative = true);

}  // namespace cfq

#endif  // CFQ_CONSTRAINTS_CLASSIFY_H_
