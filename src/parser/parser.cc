#include "parser/parser.h"

#include <cctype>
#include <optional>
#include <vector>

namespace cfq {

namespace {

// ---------------------------------------------------------------------
// Lexer.

enum class TokenKind {
  kIdent,    // letters/digits/underscore, starting with a letter
  kNumber,   // [-]digits[.digits]
  kSymbol,   // one of { } ( ) | & , . and comparison operators
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t position = 0;  // Byte offset in the input, for error messages.
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size()) break;
      const size_t start = pos_;
      const char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ++pos_;
        }
        tokens.push_back(
            {TokenKind::kIdent, text_.substr(start, pos_ - start), start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && pos_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.')) {
          ++pos_;
        }
        tokens.push_back(
            {TokenKind::kNumber, text_.substr(start, pos_ - start), start});
        continue;
      }
      // Two-character operators first.
      if (pos_ + 1 < text_.size()) {
        const std::string two = text_.substr(pos_, 2);
        if (two == "<=" || two == ">=" || two == "!=" || two == "==") {
          pos_ += 2;
          tokens.push_back(
              {TokenKind::kSymbol, two == "==" ? "=" : two, start});
          continue;
        }
      }
      if (std::string("{}()|&,.<>=").find(c) != std::string::npos) {
        ++pos_;
        tokens.push_back({TokenKind::kSymbol, std::string(1, c), start});
        continue;
      }
      return Status::InvalidArgument("unexpected character '" +
                                     std::string(1, c) + "' at position " +
                                     std::to_string(start));
    }
    tokens.push_back({TokenKind::kEnd, "", text_.size()});
    return tokens;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Parser.

// One side of a relation, before semantic resolution.
struct Operand {
  enum class Kind { kAggOfVar, kSetOfVar, kScalar, kLiteralSet };
  Kind kind;
  Var var = Var::kS;            // kAggOfVar / kSetOfVar.
  AggFn agg = AggFn::kMin;      // kAggOfVar.
  std::string attr;             // kAggOfVar / kSetOfVar.
  double scalar = 0;            // kScalar.
  std::vector<AttrValue> literal;  // kLiteralSet.
  size_t position = 0;
};

// A relation operator: either a scalar comparison or a set comparison.
struct RelOp {
  bool is_set_op = false;
  CmpOp cmp = CmpOp::kLe;
  SetCmp set = SetCmp::kSubset;
  size_t position = 0;
};

SetCmp MirrorSetCmp(SetCmp cmp) {
  switch (cmp) {
    case SetCmp::kSubset:
      return SetCmp::kSuperset;
    case SetCmp::kSuperset:
      return SetCmp::kSubset;
    case SetCmp::kNotSubset:
      return SetCmp::kNotSuperset;
    case SetCmp::kNotSuperset:
      return SetCmp::kNotSubset;
    default:
      return cmp;  // Symmetric.
  }
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<CfqQuery> Run() {
    CfqQuery query;
    // Optional "{(S, T) |" header.
    if (PeekSymbol("{") && tokens_.size() > 1 &&
        tokens_[1].text == "(") {
      CFQ_RETURN_IF_ERROR(ExpectSymbol("{"));
      CFQ_RETURN_IF_ERROR(ExpectSymbol("("));
      CFQ_RETURN_IF_ERROR(ExpectIdent("S"));
      CFQ_RETURN_IF_ERROR(ExpectSymbol(","));
      CFQ_RETURN_IF_ERROR(ExpectIdent("T"));
      CFQ_RETURN_IF_ERROR(ExpectSymbol(")"));
      CFQ_RETURN_IF_ERROR(ExpectSymbol("|"));
      header_ = true;
    }
    CFQ_RETURN_IF_ERROR(ParseConjunct(&query));
    while (PeekSymbol("&")) {
      ++pos_;
      CFQ_RETURN_IF_ERROR(ParseConjunct(&query));
    }
    if (header_) CFQ_RETURN_IF_ERROR(ExpectSymbol("}"));
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool PeekSymbol(const std::string& text) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == text;
  }
  bool PeekIdent(const std::string& text) const {
    return Peek().kind == TokenKind::kIdent && Peek().text == text;
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        message + " at position " + std::to_string(Peek().position) +
        (Peek().text.empty() ? "" : " near '" + Peek().text + "'"));
  }
  Status ExpectSymbol(const std::string& text) {
    if (!PeekSymbol(text)) return Error("expected '" + text + "'");
    ++pos_;
    return Status::Ok();
  }
  Status ExpectIdent(const std::string& text) {
    if (!PeekIdent(text)) return Error("expected '" + text + "'");
    ++pos_;
    return Status::Ok();
  }

  std::optional<Var> AsVar(const Token& token) const {
    if (token.kind != TokenKind::kIdent) return std::nullopt;
    if (token.text == "S") return Var::kS;
    if (token.text == "T") return Var::kT;
    return std::nullopt;
  }

  std::optional<AggFn> AsAgg(const Token& token) const {
    if (token.kind != TokenKind::kIdent) return std::nullopt;
    if (token.text == "min") return AggFn::kMin;
    if (token.text == "max") return AggFn::kMax;
    if (token.text == "sum") return AggFn::kSum;
    if (token.text == "avg") return AggFn::kAvg;
    if (token.text == "count") return AggFn::kCount;
    return std::nullopt;
  }

  Status ParseConjunct(CfqQuery* query) {
    if (PeekIdent("freq")) return ParseFreq(query);
    Operand lhs;
    CFQ_RETURN_IF_ERROR(ParseOperand(&lhs));
    RelOp op;
    CFQ_RETURN_IF_ERROR(ParseRelOp(&op));
    Operand rhs;
    CFQ_RETURN_IF_ERROR(ParseOperand(&rhs));
    return Resolve(lhs, op, rhs, query);
  }

  Status ParseFreq(CfqQuery* query) {
    ++pos_;  // 'freq'
    CFQ_RETURN_IF_ERROR(ExpectSymbol("("));
    const auto var = AsVar(Peek());
    if (!var) return Error("expected S or T in freq()");
    ++pos_;
    uint64_t threshold = 1;
    if (PeekSymbol(",")) {
      ++pos_;
      if (Peek().kind != TokenKind::kNumber) {
        return Error("expected a support threshold");
      }
      const double value = std::stod(Peek().text);
      if (value < 1) return Error("support threshold must be >= 1");
      threshold = static_cast<uint64_t>(value);
      ++pos_;
    }
    CFQ_RETURN_IF_ERROR(ExpectSymbol(")"));
    (*var == Var::kS ? query->min_support_s : query->min_support_t) =
        threshold;
    return Status::Ok();
  }

  Status ParseOperand(Operand* out) {
    out->position = Peek().position;
    if (const auto agg = AsAgg(Peek())) {
      ++pos_;
      CFQ_RETURN_IF_ERROR(ExpectSymbol("("));
      const auto var = AsVar(Peek());
      if (!var) return Error("expected S or T inside aggregate");
      ++pos_;
      CFQ_RETURN_IF_ERROR(ExpectSymbol("."));
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected an attribute name");
      }
      out->kind = Operand::Kind::kAggOfVar;
      out->agg = *agg;
      out->var = *var;
      out->attr = Peek().text;
      ++pos_;
      return ExpectSymbol(")");
    }
    if (const auto var = AsVar(Peek())) {
      ++pos_;
      CFQ_RETURN_IF_ERROR(ExpectSymbol("."));
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected an attribute name");
      }
      out->kind = Operand::Kind::kSetOfVar;
      out->var = *var;
      out->attr = Peek().text;
      ++pos_;
      return Status::Ok();
    }
    if (Peek().kind == TokenKind::kNumber) {
      out->kind = Operand::Kind::kScalar;
      out->scalar = std::stod(Peek().text);
      ++pos_;
      return Status::Ok();
    }
    if (PeekSymbol("{")) {
      ++pos_;
      out->kind = Operand::Kind::kLiteralSet;
      if (!PeekSymbol("}")) {
        while (true) {
          if (Peek().kind != TokenKind::kNumber) {
            return Error("expected a number in set literal");
          }
          out->literal.push_back(std::stod(Peek().text));
          ++pos_;
          if (!PeekSymbol(",")) break;
          ++pos_;
        }
      }
      return ExpectSymbol("}");
    }
    return Error("expected an operand");
  }

  Status ParseRelOp(RelOp* out) {
    out->position = Peek().position;
    if (Peek().kind == TokenKind::kSymbol) {
      const std::string& text = Peek().text;
      if (text == "<=") out->cmp = CmpOp::kLe;
      else if (text == ">=") out->cmp = CmpOp::kGe;
      else if (text == "<") out->cmp = CmpOp::kLt;
      else if (text == ">") out->cmp = CmpOp::kGt;
      else if (text == "=") out->cmp = CmpOp::kEq;
      else if (text == "!=") out->cmp = CmpOp::kNe;
      else return Error("expected a comparison operator");
      ++pos_;
      return Status::Ok();
    }
    if (Peek().kind == TokenKind::kIdent) {
      const std::string& text = Peek().text;
      out->is_set_op = true;
      if (text == "subset") out->set = SetCmp::kSubset;
      else if (text == "superset") out->set = SetCmp::kSuperset;
      else if (text == "disjoint") out->set = SetCmp::kDisjoint;
      else if (text == "intersects") out->set = SetCmp::kIntersects;
      else if (text == "not") {
        ++pos_;
        if (PeekIdent("subset")) out->set = SetCmp::kNotSubset;
        else if (PeekIdent("superset")) out->set = SetCmp::kNotSuperset;
        else return Error("expected 'subset' or 'superset' after 'not'");
      } else {
        return Error("expected a comparison or set operator");
      }
      ++pos_;
      return Status::Ok();
    }
    return Error("expected an operator");
  }

  // Maps the (lhs, op, rhs) triple onto the constraint ASTs.
  Status Resolve(Operand lhs, RelOp op, Operand rhs, CfqQuery* query) {
    using Kind = Operand::Kind;
    // Normalize: put any variable-bearing operand on the left.
    if ((lhs.kind == Kind::kScalar || lhs.kind == Kind::kLiteralSet) &&
        (rhs.kind == Kind::kAggOfVar || rhs.kind == Kind::kSetOfVar)) {
      std::swap(lhs, rhs);
      if (op.is_set_op) {
        op.set = MirrorSetCmp(op.set);
      } else {
        op.cmp = MirrorCmp(op.cmp);
      }
    }
    // Sugar: set term vs scalar under a comparison.
    if (lhs.kind == Kind::kSetOfVar && rhs.kind == Kind::kScalar &&
        !op.is_set_op) {
      switch (op.cmp) {
        case CmpOp::kLe:
        case CmpOp::kLt:
          lhs.kind = Kind::kAggOfVar;
          lhs.agg = AggFn::kMax;  // Every value <= c.
          break;
        case CmpOp::kGe:
        case CmpOp::kGt:
          lhs.kind = Kind::kAggOfVar;
          lhs.agg = AggFn::kMin;  // Every value >= c.
          break;
        case CmpOp::kEq:
        case CmpOp::kNe:
          // S.Type = 3 means S.Type = {3}.
          rhs.kind = Kind::kLiteralSet;
          rhs.literal = {rhs.scalar};
          op.is_set_op = true;
          op.set = op.cmp == CmpOp::kEq ? SetCmp::kEqual : SetCmp::kNotEqual;
          break;
      }
    }
    // '='/'!=' between two set terms is set equality.
    if (lhs.kind == Kind::kSetOfVar &&
        (rhs.kind == Kind::kSetOfVar || rhs.kind == Kind::kLiteralSet) &&
        !op.is_set_op && (op.cmp == CmpOp::kEq || op.cmp == CmpOp::kNe)) {
      op.is_set_op = true;
      op.set = op.cmp == CmpOp::kEq ? SetCmp::kEqual : SetCmp::kNotEqual;
    }

    if (lhs.kind == Kind::kAggOfVar && !op.is_set_op) {
      if (rhs.kind == Kind::kScalar) {
        query->one_var.push_back(
            MakeAgg1(lhs.var, lhs.agg, lhs.attr, op.cmp, rhs.scalar));
        return Status::Ok();
      }
      if (rhs.kind == Kind::kAggOfVar) {
        if (lhs.var == rhs.var) {
          return Status::InvalidArgument(
              "aggregate comparisons within one variable are not supported "
              "(position " + std::to_string(op.position) + ")");
        }
        if (lhs.var == Var::kT) {  // Normalize S to the left.
          std::swap(lhs, rhs);
          op.cmp = MirrorCmp(op.cmp);
        }
        query->two_var.push_back(
            MakeAgg2(lhs.agg, lhs.attr, op.cmp, rhs.agg, rhs.attr));
        return Status::Ok();
      }
      return Status::InvalidArgument(
          "aggregates compare against scalars or other aggregates "
          "(position " + std::to_string(rhs.position) + ")");
    }

    if (lhs.kind == Kind::kSetOfVar && op.is_set_op) {
      if (rhs.kind == Kind::kLiteralSet) {
        query->one_var.push_back(
            MakeDomain1(lhs.var, lhs.attr, op.set, rhs.literal));
        return Status::Ok();
      }
      if (rhs.kind == Kind::kSetOfVar) {
        if (lhs.var == rhs.var) {
          return Status::InvalidArgument(
              "set comparisons within one variable are not supported "
              "(position " + std::to_string(op.position) + ")");
        }
        if (lhs.var == Var::kT) {
          std::swap(lhs, rhs);
          op.set = MirrorSetCmp(op.set);
        }
        query->two_var.push_back(MakeDomain2(lhs.attr, op.set, rhs.attr));
        return Status::Ok();
      }
      return Status::InvalidArgument(
          "set operators compare against set literals or set terms "
          "(position " + std::to_string(rhs.position) + ")");
    }

    return Status::InvalidArgument(
        "cannot combine these operands with this operator (position " +
        std::to_string(op.position) + ")");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool header_ = false;
};

}  // namespace

Result<CfqQuery> ParseCfq(const std::string& text) {
  Lexer lexer(text);
  auto tokens = lexer.Run();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Run();
}

}  // namespace cfq
